module github.com/edge-immersion/coic

go 1.23
