// Package coic is a reproduction of "Immersion on the Edge: A Cooperative
// Framework for Mobile Immersive Computing" (Lai, Cui, Wang, Hu —
// SIGCOMM Posters & Demos 2018): an edge cache for computation-intensive
// Immersive Computing tasks, keyed by feature descriptors so that similar
// or redundant work across applications and users is shared instead of
// recomputed in the cloud.
//
// # Package tour (v2 API)
//
// The package is a context-first facade over the internal implementation.
//
// A System wires mobile clients, an Edge cache and a Cloud over a
// simulated network and executes IC tasks in deterministic virtual time.
// Build one with functional options and drive it through the unified
// task API:
//
//	sys, _ := coic.New(coic.WithClients(2), coic.WithCachePolicy("gdsf"))
//	res, err := sys.Do(ctx, 0, coic.RecognizeTask(coic.ClassStopSign, 42))
//	res, err = sys.Do(ctx, 1, coic.PanoTask("concert", 7, vp).WithDeadline(50*time.Millisecond))
//
// A Request is a tagged union over the three workloads of the paper —
// recognition, 3D-model rendering, VR panorama streaming — with
// per-request Mode (CoIC versus the Origin baseline) and a virtual
// latency Deadline; DoBatch runs a sequence. System.Stats returns one
// coherent SystemStats snapshot (store, logical queries, miss
// coalescing, federation).
//
// The same protocol runs over real TCP. Servers are assembled from
// options and serve until their context dies, then drain gracefully:
//
//	go coic.NewCloudServer(coic.WithListenAddr(":9090")).Serve(ctx)
//	err := coic.NewEdgeServer(
//		coic.WithListenAddr(":9091"),
//		coic.WithCloud("localhost:9090"),
//		coic.WithCloudShape("rate 20mbit delay 10ms"),
//	).Serve(ctx)
//
// Clients are stream-first: NewClient dials a demultiplexed connection
// from DialOptions, and Client.Stream opens a bounded window of
// in-flight requests whose completions arrive out of band and out of
// order:
//
//	cli, _ := coic.NewClient(ctx, "localhost:9091")
//	st, _ := cli.Stream(ctx, coic.WithWindow(8))
//	st.Submit(ctx, coic.PanoTask("coaster", 3, vp).
//		WithQoS(coic.QoSInteractive).WithDeadline(100*time.Millisecond))
//	for comp := range st.Results() { ... }
//
// A Request's QoS class and wall-clock deadline travel on the wire: the
// edge (and, for forwarded misses, the cloud) dispatches queued work
// strictly by class, earliest-deadline-first within a class, and sheds
// a request unexecuted — ErrDeadlineExceeded, no worker, no upstream
// fetch — if its budget expires in the queue. The per-task client
// methods (RecognizeContext / RenderContext / PanoContext) remain as
// one-request conveniences; cancelling a request's context sends a
// cancel frame (see docs/PROTOCOL.md) and the connection stays usable.
// Below the facade, cancellation reaches every layer: a cache miss
// coalesced across N concurrent requests keeps exactly one cloud fetch
// alive, which survives individual departures and aborts — withdrawing
// the upstream round trip — when its last waiter is gone.
//
// The Run* functions (experiments.go) regenerate every figure of the
// paper plus this reproduction's ablations; cmd/ holds the deployable
// daemons. The v1 entry points (New with a Config literal is now
// NewFromConfig, the per-task System methods, ServeCloud / ServeEdge /
// Dial / DialContext) remain as thin deprecated wrappers — see
// docs/MIGRATION.md.
package coic

import (
	"context"
	"fmt"
	"io"
	"net"
	"time"

	"github.com/edge-immersion/coic/internal/cache"
	"github.com/edge-immersion/coic/internal/core"
	"github.com/edge-immersion/coic/internal/feature"
	"github.com/edge-immersion/coic/internal/netsim"
	"github.com/edge-immersion/coic/internal/pano"
	"github.com/edge-immersion/coic/internal/track"
	"github.com/edge-immersion/coic/internal/vision"
)

// Re-exported types: the public API speaks these names; the internal
// packages own the implementations.
type (
	// Params carries every calibration constant of the reproduction.
	Params = core.Params
	// Breakdown decomposes one request's latency.
	Breakdown = core.Breakdown
	// Mode selects CoIC or the paper's Origin baseline.
	Mode = core.Mode
	// Condition is a (B_M→E, B_E→C) network condition from Figure 2a.
	Condition = netsim.Condition
	// Class is a recognisable object category.
	Class = vision.Class
	// Viewport is a VR viewing direction.
	Viewport = pano.Viewport
	// Outcome classifies a cache lookup (miss / exact / similar).
	Outcome = cache.Outcome
)

// Execution modes.
const (
	ModeOrigin = core.ModeOrigin
	ModeCoIC   = core.ModeCoIC
)

// Object classes recognisable by the reference model.
const (
	ClassStopSign     = vision.ClassStopSign
	ClassCar          = vision.ClassCar
	ClassAvatar       = vision.ClassAvatar
	ClassTree         = vision.ClassTree
	ClassBuilding     = vision.ClassBuilding
	ClassTrafficLight = vision.ClassTrafficLight
	ClassPerson       = vision.ClassPerson
	ClassDog          = vision.ClassDog
)

// On-device tracking (never cached, per the paper: tracking is cheap
// enough to run locally between recognitions).
type (
	// Frame is a raw RGBA camera frame.
	Frame = vision.Frame
	// Tracker follows a template across frames on the device.
	Tracker = track.Tracker
	// Box is a tracked region in pixel coordinates.
	Box = track.Box
)

// NewTracker starts tracking the target box in the first frame.
func NewTracker(first *Frame, target Box, searchRadius int) (*Tracker, error) {
	return track.New(first, target, searchRadius)
}

// CaptureFrame renders what the client's camera sees: an object of the
// given class under a viewSeed-derived viewpoint. AR examples use it to
// drive the recognise-then-track loop.
func (s *System) CaptureFrame(client int, class Class, viewSeed uint64) (*Frame, error) {
	sess, err := s.session(client)
	if err != nil {
		return nil, err
	}
	return sess.Client.CaptureFrame(class, viewSeed), nil
}

// DefaultParams returns the calibrated reproduction parameters
// (see DESIGN.md for the calibration rationale).
func DefaultParams() Params { return core.DefaultParams() }

// Fig2aConditions returns the five network conditions of Figure 2a.
func Fig2aConditions() []Condition { return netsim.Fig2aConditions() }

// AnnotationModelID names the AR overlay model served after recognising
// an object of the given class.
func AnnotationModelID(class Class) string {
	return core.AnnotationModelID(class.String())
}

// SceneModelID names a Figure 2b ladder model by its size in KB (one of
// 231, 1073, 1949, 7050, 13072, 15053).
func SceneModelID(kb int) string { return core.Fig2bModelID(kb) }

// Config assembles a System.
//
// Deprecated: build systems with New and functional options (WithParams,
// WithClients, ...). Config remains as the carrier those options write
// into and for NewFromConfig.
type Config struct {
	// Params defaults to DefaultParams() when zero-valued.
	Params Params
	// Condition defaults to the 200/20 Mbps mid-sweep condition.
	Condition Condition
	// CachePolicy selects eviction: "lru" (default), "lfu", "fifo",
	// "gdsf".
	CachePolicy string
	// Index selects the descriptor matcher: "linear" (default) or
	// "lsh".
	Index string
	// Clients is how many mobile clients to attach (default 1).
	Clients int
	// PrivacyK enables the k-anonymity sharing gate: cached results are
	// only shared with strangers once K distinct users have requested
	// them (0 or 1 disables; see the A-privacy ablation).
	PrivacyK int
}

// System is an assembled CoIC deployment in virtual time: clients, one
// edge, one cloud, and the network between them.
type System struct {
	Params    Params
	Condition Condition

	cloud    *core.Cloud
	edge     *core.Edge
	topo     *netsim.Topology
	sessions []*core.Session
	now      time.Time
	qos      QoSStats
}

// NewFromConfig builds a System from cfg. Unset fields default sensibly.
//
// Deprecated: use New with functional options; this is the v1
// constructor kept for mechanical migration (it was named New before
// v2).
func NewFromConfig(cfg Config) (*System, error) {
	p := cfg.Params
	if p.CameraW == 0 { // zero value: caller wants defaults
		p = DefaultParams()
	}
	cond := cfg.Condition
	if cond.MobileEdge == 0 {
		cond = Condition{Name: "200/20", MobileEdge: 200, EdgeCloud: 20}
	}
	var opts []core.EdgeOption
	switch cfg.CachePolicy {
	case "", "lru":
	case "lfu":
		opts = append(opts, core.WithCachePolicy(cache.NewLFU()))
	case "fifo":
		opts = append(opts, core.WithCachePolicy(cache.NewFIFO()))
	case "gdsf":
		opts = append(opts, core.WithCachePolicy(cache.NewGDSF()))
	default:
		return nil, fmt.Errorf("coic: unknown cache policy %q", cfg.CachePolicy)
	}
	switch cfg.Index {
	case "", "linear":
	case "lsh":
		opts = append(opts, core.WithCacheIndex(feature.NewLSH(64, 8, 12, p.Seed)))
	default:
		return nil, fmt.Errorf("coic: unknown index %q", cfg.Index)
	}
	if cfg.PrivacyK > 1 {
		opts = append(opts, core.WithPrivacyK(cfg.PrivacyK))
	}

	clients := cfg.Clients
	if clients <= 0 {
		clients = 1
	}
	s := &System{
		Params:    p,
		Condition: cond,
		cloud:     core.NewCloud(p),
		edge:      core.NewEdge(p, opts...),
		topo:      netsim.NewTopology(cond, p.Seed),
		now:       time.Date(2018, 8, 20, 9, 0, 0, 0, time.UTC),
	}
	for i := 0; i < clients; i++ {
		client := core.NewClient(i, p)
		s.sessions = append(s.sessions, core.NewSession(client, s.edge, s.cloud, s.topo))
	}
	return s, nil
}

// Now reports the system's virtual time.
func (s *System) Now() time.Time { return s.now }

// Advance moves virtual time forward (requests issued later see an idle
// network again).
func (s *System) Advance(d time.Duration) { s.now = s.now.Add(d) }

func (s *System) session(client int) (*core.Session, error) {
	if client < 0 || client >= len(s.sessions) {
		return nil, fmt.Errorf("coic: client %d of %d", client, len(s.sessions))
	}
	return s.sessions[client], nil
}

// Recognize runs one recognition task for the given client.
//
// Deprecated: use Do with RecognizeTask, which adds cancellation and
// per-request deadlines.
func (s *System) Recognize(client int, class Class, viewSeed uint64, mode Mode) (Breakdown, RecognitionResult, error) {
	res, err := s.Do(context.Background(), client, Request{
		Recognize: &RecognizeSpec{Class: class, ViewSeed: viewSeed},
		Mode:      mode,
	})
	if err != nil {
		return res.Breakdown, RecognitionResult{}, err
	}
	return res.Breakdown, *res.Recognition, nil
}

// RecognitionResult is the public form of a recognition answer.
type RecognitionResult struct {
	Label             string
	Confidence        float64
	AnnotationModelID string
}

// Render runs one 3D model load-and-draw task for the given client.
//
// Deprecated: use Do with RenderTask.
func (s *System) Render(client int, modelID string, mode Mode) (Breakdown, error) {
	res, err := s.Do(context.Background(), client, Request{
		Render: &RenderSpec{ModelID: modelID},
		Mode:   mode,
	})
	return res.Breakdown, err
}

// Pano runs one VR panorama fetch-and-crop task for the given client.
//
// Deprecated: use Do with PanoTask.
func (s *System) Pano(client int, videoID string, frame int, vp Viewport, mode Mode) (Breakdown, error) {
	res, err := s.Do(context.Background(), client, Request{
		Pano: &PanoSpec{VideoID: videoID, Frame: frame, Viewport: vp},
		Mode: mode,
	})
	return res.Breakdown, err
}

// CacheStats reports the edge cache's hit ratio and resident bytes.
//
// Deprecated: use Stats, which returns every counter coherently
// (including the similarity-hit counter this method discards).
func (s *System) CacheStats() (hitRatio float64, usedBytes int64, entries int) {
	st := s.Stats()
	return s.edge.Stats().HitRatio(), st.Store.BytesUsed, st.Store.Entries
}

// SaveCache snapshots the edge cache (all resident IC results with their
// descriptors) so a restarted edge can start warm.
func (s *System) SaveCache(w io.Writer) error { return s.edge.Cache.Snapshot(w) }

// LoadCache restores a snapshot written by SaveCache into the edge cache,
// returning how many entries were adopted (oversized ones are skipped).
func (s *System) LoadCache(r io.Reader) (int, error) { return s.edge.Cache.Restore(r) }

// --- real-socket deployment (v1 wrappers) -----------------------------
//
// The v2 deployment surface lives in server.go (NewEdgeServer /
// NewCloudServer / DialContext). These wrappers keep v1 callers
// compiling; they serve with a background context, so they never shut
// down gracefully — only by closing the listener.

// ServeConfig tunes the pipelined TCP servers.
//
// Deprecated: pass WithWorkers / WithQueueDepth / WithFetchTimeout to
// NewEdgeServer / NewCloudServer.
type ServeConfig struct {
	// Workers bounds concurrent request processing per connection
	// (core.DefaultWorkers when 0).
	Workers int
	// QueueDepth bounds requests buffered awaiting a worker
	// (core.DefaultQueueDepth when 0).
	QueueDepth int
	// FetchTimeout bounds one edge→cloud fetch, failing any coalesced
	// waiters fast when the cloud hangs (core.DefaultFetchTimeout when 0;
	// cloud servers ignore it).
	FetchTimeout time.Duration
}

// ServeCloud runs a CoIC cloud on ln until the listener closes.
//
// Deprecated: use NewCloudServer(WithListener(ln)).Serve(ctx).
func ServeCloud(ln net.Listener, p Params) error {
	return ServeCloudWith(ln, p, ServeConfig{})
}

// ServeCloudWith runs a CoIC cloud with explicit serving tunables.
//
// Deprecated: use NewCloudServer with options.
func ServeCloudWith(ln net.Listener, p Params, cfg ServeConfig) error {
	return NewCloudServer(
		WithListener(ln),
		WithServeParams(p),
		WithWorkers(cfg.Workers),
		WithQueueDepth(cfg.QueueDepth),
	).Serve(context.Background())
}

// ShapeSpec is a tc-style link spec ("rate 90mbit delay 5ms"), applied as
// a token-bucket shaper; empty means unshaped.
type ShapeSpec string

func (s ShapeSpec) wrapper() (core.ConnWrapper, error) {
	if s == "" {
		return nil, nil
	}
	cfg, err := netsim.ParseTC(string(s))
	if err != nil {
		return nil, err
	}
	return func(c net.Conn) net.Conn {
		return netsim.NewShaper(c, cfg.BandwidthBPS, cfg.PropDelay)
	}, nil
}

// ServeEdge runs a CoIC edge on ln, forwarding misses to cloudAddr.
// cloudShape conditions the edge→cloud uplink (the B_E→C knob).
//
// Deprecated: use NewEdgeServer(WithListener(ln), WithCloud(cloudAddr),
// WithCloudShape(cloudShape)).Serve(ctx).
func ServeEdge(ln net.Listener, p Params, cloudAddr string, cloudShape ShapeSpec) error {
	return ServeEdgeWith(ln, p, cloudAddr, cloudShape, "", nil, ServeConfig{})
}

// ServeEdgeFederated runs a CoIC edge that is a member of a cache
// federation; see WithFederation for the membership rules.
//
// Deprecated: use NewEdgeServer with WithFederation.
func ServeEdgeFederated(ln net.Listener, p Params, cloudAddr string, cloudShape ShapeSpec, self string, peers []string) error {
	return ServeEdgeWith(ln, p, cloudAddr, cloudShape, self, peers, ServeConfig{})
}

// ServeEdgeWith is ServeEdgeFederated with explicit serving tunables.
//
// Deprecated: use NewEdgeServer with options; the seven positional
// parameters here are exactly why v2 exists.
func ServeEdgeWith(ln net.Listener, p Params, cloudAddr string, cloudShape ShapeSpec, self string, peers []string, cfg ServeConfig) error {
	opts := []ServerOption{
		WithListener(ln),
		WithServeParams(p),
		WithCloud(cloudAddr),
		WithCloudShape(cloudShape),
		WithWorkers(cfg.Workers),
		WithQueueDepth(cfg.QueueDepth),
		WithFetchTimeout(cfg.FetchTimeout),
	}
	if len(peers) > 0 {
		opts = append(opts, WithFederation(self, peers...))
	}
	return NewEdgeServer(opts...).Serve(context.Background())
}

// Dial connects a mobile client to a running edge. clientShape conditions
// the client→edge link (the B_M→E knob).
//
// Deprecated: use NewClient with DialOptions.
func Dial(edgeAddr string, p Params, mode Mode, clientShape ShapeSpec) (*Client, error) {
	return DialContext(context.Background(), edgeAddr, p, mode, clientShape)
}
