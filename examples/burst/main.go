// Burst: a crowd of users fires requests at the edge in the same instant
// — everyone at a landmark recognising the same statue, an audience
// jumping to the same VR scene. This example drives a real burst through
// the streaming API against a live TCP edge: one Stream submits the
// whole burst without waiting for replies (that is what a streaming
// window is for), duplicate misses coalesce into a single cloud fetch,
// and completions arrive out of band. The virtual-time counterpart —
// with the serial no-coalescing baseline — is `coic-bench -experiment
// burst`.
//
//	go run ./examples/burst
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	coic "github.com/edge-immersion/coic"
)

func main() {
	p := coic.DefaultParams()
	// Shrink payloads so the example runs in moments; the coalescing
	// behaviour is size-independent.
	p.PanoWidth = 512

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go coic.NewCloudServer(coic.WithListener(cloudLn), coic.WithServeParams(p)).Serve(ctx)
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	edge := coic.NewEdgeServer(
		coic.WithListener(edgeLn),
		coic.WithServeParams(p),
		coic.WithCloud(cloudLn.Addr().String()),
		coic.WithCloudShape("rate 100mbit delay 25ms"),
		coic.WithWorkers(16),
	)
	go edge.Serve(ctx)

	cli, err := coic.NewClient(ctx, edgeLn.Addr().String(), coic.WithDialParams(p))
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	const burst = 16
	stream, err := cli.Stream(ctx, coic.WithWindow(burst))
	if err != nil {
		log.Fatal(err)
	}
	results := stream.Results()

	// The whole burst wants the same uncached frame: without coalescing
	// this would be 16 cloud renders; with it, one.
	fmt.Printf("burst of %d duplicate pano fetches, submitted back-to-back:\n", burst)
	start := time.Now()
	for i := 0; i < burst; i++ {
		req := coic.PanoTask("landmark", 0, coic.Viewport{Yaw: float64(i) * 0.2, FOV: 1.6})
		if _, err := stream.Submit(ctx, req); err != nil {
			log.Fatal(err)
		}
	}
	submitAll := time.Since(start)

	var fromCloud, fromEdge int
	for i := 0; i < burst; i++ {
		comp := <-results
		if comp.Err != nil {
			log.Fatal(comp.Err)
		}
		if comp.Source == coic.SourceCloud {
			fromCloud++
		} else {
			fromEdge++
		}
	}
	wall := time.Since(start)
	stream.Close()

	stats := edge.Stats()
	fmt.Printf("  submitted in %v (no reply waits inside the window)\n", submitAll.Round(time.Microsecond))
	fmt.Printf("  completed in %v wall clock\n", wall.Round(time.Millisecond))
	fmt.Printf("  cloud fetches: %d (leader), served from edge: %d (coalesced waiters)\n", fromCloud, fromEdge)
	fmt.Printf("  edge counters: %d cloud fetches for %d requests\n", stats.CloudFetches, burst)
	fmt.Println()
	fmt.Println("Every duplicate joined the leader's in-flight fetch: the cloud rendered")
	fmt.Println("the panorama exactly once and the burst finished in about one round")
	fmt.Println("trip. Compare `coic-bench -experiment burst` for the serial baseline,")
	fmt.Println("and `coic-bench -experiment qos` for what class scheduling adds when a")
	fmt.Println("burst of background traffic competes with interactive frames.")
}
