// Burst: a crowd of users fires requests at the edge in the same instant
// — everyone at a landmark recognising the same statue, an audience
// jumping to the same VR scene. Without miss coalescing every concurrent
// duplicate pays its own cloud fetch (the result is not cached yet when
// the next request arrives); with it, the duplicates join the one
// in-flight fetch and the cloud computes each result exactly once.
//
//	go run ./examples/burst
package main

import (
	"fmt"
	"log"
	"os"

	coic "github.com/edge-immersion/coic"
)

func main() {
	p := coic.DefaultParams()
	// Shrink payloads so the example runs in moments; the coalescing
	// behaviour is size-independent.
	p.CameraW, p.CameraH = 256, 256
	p.DNNInput = 32
	p.PanoWidth = 512

	fmt.Println("One burst, two policies: serial (no coalescing) vs coalesce.")
	fmt.Println()
	table, err := coic.RunBurst(p, []int{8, 32}, []float64{0, 0.75, 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Read dup_ratio=1.00 rows pairwise: serial pays one cloud fetch per user,")
	fmt.Println("coalesce pays exactly one for the whole burst (saved = users-1) and its")
	fmt.Println("p99 drops because nobody queues behind redundant WAN transfers. The TCP")
	fmt.Println("edge applies the same policy via its in-flight table (see -workers on")
	fmt.Println("cmd/coic-edge and docs/PROTOCOL.md).")
}
