// VR streaming: several users watch the same panoramic VR video through
// one edge. The cloud renders each panoramic frame once; every other
// viewer's fetch hits the edge cache, and each client crops its own
// viewport locally (the paper's third workload, after FlashBack/Furion).
// Each fetch carries a per-request deadline — a VR viewer that misses its
// frame budget has missed the frame, cached bytes or not.
//
//	go run ./examples/vr-streaming
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	coic "github.com/edge-immersion/coic"
)

func main() {
	ctx := context.Background()
	const viewers = 4
	sys, err := coic.New(coic.WithClients(viewers))
	if err != nil {
		log.Fatal(err)
	}

	video := "rollercoaster"
	// An interactive budget between the cold path (a cloud render plus a
	// WAN transfer) and a warm edge hit: cold frames miss it, edge hits
	// never do.
	const frameBudget = 100 * time.Millisecond
	var cloudFetches, edgeHits, lateFrames int
	var firstUserTotal, otherUsersTotal time.Duration

	for frame := 0; frame < 6; frame++ {
		for user := 0; user < viewers; user++ {
			// Every viewer looks somewhere different; the panorama is
			// shared, the crop is personal.
			vp := coic.Viewport{
				Yaw:   float64(user)*1.5 - 2.2,
				Pitch: 0.1 * float64(user%3),
				FOV:   1.6,
			}
			res, err := sys.Do(ctx, user,
				coic.PanoTask(video, frame, vp).WithDeadline(frameBudget))
			if errors.Is(err, coic.ErrDeadlineExceeded) {
				lateFrames++ // the result exists but arrived too late
			} else if err != nil {
				log.Fatal(err)
			}
			b := res.Breakdown
			if b.Outcome.String() == "miss" {
				cloudFetches++
			} else {
				edgeHits++
			}
			if user == 0 {
				firstUserTotal += b.Total()
			} else {
				otherUsersTotal += b.Total()
			}
		}
		sys.Advance(33 * time.Millisecond) // next frame at 30 fps
	}

	fmt.Printf("%d viewers x 6 frames of %q (budget %v/frame)\n", viewers, video, frameBudget)
	fmt.Printf("cloud renders: %d (one per frame)\n", cloudFetches)
	fmt.Printf("edge hits:     %d (every other view)\n", edgeHits)
	fmt.Printf("late frames:   %d\n", lateFrames)
	fmt.Printf("first viewer mean:  %v/frame\n",
		(firstUserTotal / 6).Round(time.Millisecond))
	fmt.Printf("other viewers mean: %v/frame\n",
		(otherUsersTotal / (6 * (viewers - 1))).Round(time.Millisecond))
}
