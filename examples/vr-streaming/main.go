// VR streaming over the stream API: several viewers watch the same
// panoramic video through one live TCP edge. Each viewer holds a Stream
// whose submits are interactive-class with a per-frame motion-to-photon
// budget: the cloud renders each panoramic frame once, every other
// viewer's fetch hits the edge cache (or coalesces onto the in-flight
// render), each client crops its own viewport locally, and a frame whose
// budget expires while queued is shed at the edge without burning a
// worker — for a VR display a late frame is a missed frame, cached bytes
// or not.
//
//	go run ./examples/vr-streaming
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	coic "github.com/edge-immersion/coic"
)

func main() {
	p := coic.DefaultParams()
	// Shrink payloads so the example runs in moments.
	p.PanoWidth = 512

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// An in-process deployment: cloud, then an edge whose WAN uplink
	// pays a realistic delay — what makes cold frames miss the budget.
	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go coic.NewCloudServer(coic.WithListener(cloudLn), coic.WithServeParams(p)).Serve(ctx)
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	edge := coic.NewEdgeServer(
		coic.WithListener(edgeLn),
		coic.WithServeParams(p),
		coic.WithCloud(cloudLn.Addr().String()),
		coic.WithCloudShape("rate 100mbit delay 20ms"),
	)
	go edge.Serve(ctx)

	const (
		viewers     = 4
		frames      = 6
		video       = "rollercoaster"
		frameBudget = 150 * time.Millisecond
	)

	type viewer struct {
		cli    *coic.Client
		stream *coic.Stream
	}
	vs := make([]viewer, viewers)
	for i := range vs {
		cli, err := coic.NewClient(ctx, edgeLn.Addr().String(),
			coic.WithDialParams(p), coic.WithClientID(i))
		if err != nil {
			log.Fatal(err)
		}
		defer cli.Close()
		st, err := cli.Stream(ctx, coic.WithWindow(2))
		if err != nil {
			log.Fatal(err)
		}
		vs[i] = viewer{cli: cli, stream: st}
	}

	var cloudRenders, edgeHits, lateFrames int
	var firstViewer, otherViewers time.Duration
	var firstViewerN, otherViewersN int
	for frame := 0; frame < frames; frame++ {
		// All viewers ask for the same panoramic frame at display time;
		// each crops a personal viewport from the shared panorama.
		tickets := make([]*coic.Ticket, viewers)
		for u := range vs {
			vp := coic.Viewport{
				Yaw:   float64(u)*1.5 - 2.2,
				Pitch: 0.1 * float64(u%3),
				FOV:   1.6,
			}
			req := coic.PanoTask(video, frame, vp).
				WithQoS(coic.QoSInteractive).
				WithDeadline(frameBudget)
			t, err := vs[u].stream.Submit(ctx, req)
			if err != nil {
				log.Fatal(err)
			}
			tickets[u] = t
		}
		for u, t := range tickets {
			comp, err := t.Await(ctx)
			switch {
			case errors.Is(err, coic.ErrDeadlineExceeded):
				lateFrames++ // shed at the edge, or landed past the budget
				continue
			case err != nil:
				log.Fatal(err)
			}
			if comp.Source == coic.SourceCloud {
				cloudRenders++
			} else {
				edgeHits++
			}
			if u == 0 {
				firstViewer += comp.Latency
				firstViewerN++
			} else {
				otherViewers += comp.Latency
				otherViewersN++
			}
		}
		time.Sleep(33 * time.Millisecond) // next frame at 30 fps
	}

	stats := edge.Stats()
	fmt.Printf("%d viewers x %d frames of %q (budget %v/frame, interactive class)\n",
		viewers, frames, video, frameBudget)
	fmt.Printf("cloud renders:  %d (ideally one per frame; concurrent viewers coalesce)\n", cloudRenders)
	fmt.Printf("edge hits:      %d (every other view)\n", edgeHits)
	fmt.Printf("late frames:    %d (edge shed %d of them unexecuted)\n", lateFrames, stats.DeadlineSheds)
	fmt.Printf("cloud fetches:  %d for %d views\n", stats.CloudFetches, viewers*frames)
	if firstViewerN > 0 {
		fmt.Printf("first viewer mean:  %v/frame over %d on-time frames\n",
			(firstViewer / time.Duration(firstViewerN)).Round(time.Millisecond), firstViewerN)
	}
	if otherViewersN > 0 {
		fmt.Printf("other viewers mean: %v/frame over %d on-time frames\n",
			(otherViewers / time.Duration(otherViewersN)).Round(time.Millisecond), otherViewersN)
	}
}
