// VR streaming: several users watch the same panoramic VR video through
// one edge. The cloud renders each panoramic frame once; every other
// viewer's fetch hits the edge cache, and each client crops its own
// viewport locally (the paper's third workload, after FlashBack/Furion).
//
//	go run ./examples/vr-streaming
package main

import (
	"fmt"
	"log"
	"time"

	coic "github.com/edge-immersion/coic"
)

func main() {
	const viewers = 4
	sys, err := coic.New(coic.Config{Clients: viewers})
	if err != nil {
		log.Fatal(err)
	}

	video := "rollercoaster"
	var cloudFetches, edgeHits int
	var firstUserTotal, otherUsersTotal time.Duration

	for frame := 0; frame < 6; frame++ {
		for user := 0; user < viewers; user++ {
			// Every viewer looks somewhere different; the panorama is
			// shared, the crop is personal.
			vp := coic.Viewport{
				Yaw:   float64(user)*1.5 - 2.2,
				Pitch: 0.1 * float64(user%3),
				FOV:   1.6,
			}
			b, err := sys.Pano(user, video, frame, vp, coic.ModeCoIC)
			if err != nil {
				log.Fatal(err)
			}
			if b.Outcome.String() == "miss" {
				cloudFetches++
			} else {
				edgeHits++
			}
			if user == 0 {
				firstUserTotal += b.Total()
			} else {
				otherUsersTotal += b.Total()
			}
		}
		sys.Advance(33 * time.Millisecond) // next frame at 30 fps
	}

	fmt.Printf("%d viewers x 6 frames of %q\n", viewers, video)
	fmt.Printf("cloud renders: %d (one per frame)\n", cloudFetches)
	fmt.Printf("edge hits:     %d (every other view)\n", edgeHits)
	fmt.Printf("first viewer mean:  %v/frame\n",
		(firstUserTotal / 6).Round(time.Millisecond))
	fmt.Printf("other viewers mean: %v/frame\n",
		(otherUsersTotal / (6 * (viewers - 1))).Round(time.Millisecond))
}
