// Quickstart: assemble a CoIC system, issue the same recognition from two
// "users" through the unified v2 task API, and watch the second one come
// back from the edge cache instead of the cloud. Then do the same for a
// 3D model.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	coic "github.com/edge-immersion/coic"
)

func main() {
	ctx := context.Background()

	// Two mobile clients behind one edge on the paper's mid-sweep
	// network (200 Mbps to the edge, 20 Mbps edge to cloud).
	sys, err := coic.New(coic.WithClients(2))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== recognition ==")
	// User 0 looks at a stop sign. Cold cache: the request goes to the
	// cloud (a CoIC "cache miss").
	res, err := sys.Do(ctx, 0, coic.RecognizeTask(coic.ClassStopSign, 42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user 0: %-9s -> %q (%.0f%% conf) in %v\n",
		res.Breakdown.Outcome, res.Recognition.Label, res.Recognition.Confidence*100,
		res.Breakdown.Total().Round(time.Millisecond))

	// User 1 looks at the same sign from a different angle moments
	// later. The descriptor lands within the similarity threshold and
	// the edge answers directly.
	sys.Advance(2 * time.Second)
	res, err = sys.Do(ctx, 1, coic.RecognizeTask(coic.ClassStopSign, 99))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user 1: %-9s -> %q (%.0f%% conf) in %v\n",
		res.Breakdown.Outcome, res.Recognition.Label, res.Recognition.Confidence*100,
		res.Breakdown.Total().Round(time.Millisecond))

	// The Origin baseline (full offload, no cache) for comparison.
	sys.Advance(2 * time.Second)
	res, err = sys.Do(ctx, 1, coic.RecognizeTask(coic.ClassStopSign, 7).WithMode(coic.ModeOrigin))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("origin: %-9s -> cloud round trip in %v\n", "baseline",
		res.Breakdown.Total().Round(time.Millisecond))

	fmt.Println("\n== 3D model loading ==")
	model := coic.SceneModelID(1073) // a ~1 MB scene model
	for _, who := range []int{0, 1} {
		sys.Advance(2 * time.Second)
		res, err := sys.Do(ctx, who, coic.RenderTask(model))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user %d: %-9s loaded %s in %v\n",
			who, res.Breakdown.Outcome, model, res.Breakdown.Total().Round(time.Millisecond))
	}

	st := sys.Stats()
	fmt.Printf("\nedge cache: hit ratio %.2f (%d exact + %d similar of %d queries), %d entries, %.1f MB resident\n",
		st.Queries.HitRatio(), st.Queries.ExactHits, st.Queries.SimilarHits, st.Queries.Queries,
		st.Store.Entries, float64(st.Store.BytesUsed)/(1<<20))
}
