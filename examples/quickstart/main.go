// Quickstart: assemble a CoIC system, issue the same recognition from two
// "users", and watch the second one come back from the edge cache instead
// of the cloud. Then do the same for a 3D model.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	coic "github.com/edge-immersion/coic"
)

func main() {
	// Two mobile clients behind one edge on the paper's mid-sweep
	// network (200 Mbps to the edge, 20 Mbps edge to cloud).
	sys, err := coic.New(coic.Config{Clients: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== recognition ==")
	// User 0 looks at a stop sign. Cold cache: the request goes to the
	// cloud (a CoIC "cache miss").
	b, res, err := sys.Recognize(0, coic.ClassStopSign, 42, coic.ModeCoIC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user 0: %-9s -> %q (%.0f%% conf) in %v\n",
		b.Outcome, res.Label, res.Confidence*100, b.Total().Round(time.Millisecond))

	// User 1 looks at the same sign from a different angle moments
	// later. The descriptor lands within the similarity threshold and
	// the edge answers directly.
	sys.Advance(2 * time.Second)
	b, res, err = sys.Recognize(1, coic.ClassStopSign, 99, coic.ModeCoIC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user 1: %-9s -> %q (%.0f%% conf) in %v\n",
		b.Outcome, res.Label, res.Confidence*100, b.Total().Round(time.Millisecond))

	// The Origin baseline (full offload, no cache) for comparison.
	sys.Advance(2 * time.Second)
	b, _, err = sys.Recognize(1, coic.ClassStopSign, 7, coic.ModeOrigin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("origin: %-9s -> cloud round trip in %v\n", "baseline", b.Total().Round(time.Millisecond))

	fmt.Println("\n== 3D model loading ==")
	model := coic.SceneModelID(1073) // a ~1 MB scene model
	for _, who := range []int{0, 1} {
		sys.Advance(2 * time.Second)
		b, err := sys.Render(who, model, coic.ModeCoIC)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user %d: %-9s loaded %s in %v\n",
			who, b.Outcome, model, b.Total().Round(time.Millisecond))
	}

	hitRatio, used, entries := sys.CacheStats()
	fmt.Printf("\nedge cache: hit ratio %.2f, %d entries, %.1f MB resident\n",
		hitRatio, entries, float64(used)/(1<<20))
}
