// Finegrained: the paper's §4 "ongoing work" — identifying reusable IC
// workload at the granularity of a single DNN layer rather than a whole
// task. This example runs a request stream through a plain network and a
// layer-memoised one and reports the layer hit rate and real speedup.
//
//	go run ./examples/finegrained
package main

import (
	"fmt"
	"log"
	"os"

	coic "github.com/edge-immersion/coic"
)

func main() {
	p := coic.DefaultParams()
	fmt.Println("per-layer DNN result reuse (CachedRunner) vs whole-network inference:")
	table := coic.RunFinegrained(p, []int{1, 4, 16, 64}, 128)
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwith identical inputs every layer hits; as the input pool grows the")
	fmt.Println("hit rate tracks input reuse — the whole-task cache in the edge is the")
	fmt.Println("coarse-grained special case of this mechanism.")
}
