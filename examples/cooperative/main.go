// Cooperative: the paper's motivating claim made visible — as more users
// share a place, more IC computation is redundant, and CoIC's shared edge
// cache turns that redundancy into latency savings. This example sweeps
// the user count and prints the hit ratio and mean-latency speedup.
//
//	go run ./examples/cooperative
package main

import (
	"fmt"
	"log"
	"os"

	coic "github.com/edge-immersion/coic"
)

func main() {
	// Trace-driven multi-user replay with small payloads (this example
	// replays thousands of requests).
	p := coic.DefaultParams()
	p.CameraW, p.CameraH = 256, 256
	p.DNNInput = 32
	p.PanoWidth = 512
	p.MobileGFLOPS *= 4

	fmt.Println("sweeping co-located user counts (locality 0.7)...")
	table, err := coic.RunHitRatio(p, []int{1, 2, 4, 8, 16}, 0.7, p.Seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nand with users spread thin (locality 0.1) for contrast...")
	table, err = coic.RunHitRatio(p, []int{4, 16}, 0.1, p.Seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
