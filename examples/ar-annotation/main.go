// AR annotation: the demo application of the paper's §3 — "renders
// high-quality 3D annotations to label objects recognized in the camera
// view". The loop is the classic mobile-AR split the paper assumes:
//
//   - recognition goes through CoIC (expensive, cacheable);
//
//   - the 3D annotation model is fetched through CoIC (big, cacheable);
//
//   - frame-to-frame tracking runs on the device (cheap, never cached).
//
//     go run ./examples/ar-annotation
package main

import (
	"fmt"
	"log"
	"time"

	coic "github.com/edge-immersion/coic"
)

func main() {
	sys, err := coic.New(coic.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// The driver points the phone at a car.
	fmt.Println("frame 0: recognising through CoIC...")
	b, res, err := sys.Recognize(0, coic.ClassCar, 1, coic.ModeCoIC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s: %q -> annotation model %s (%v)\n",
		b.Outcome, res.Label, res.AnnotationModelID, b.Total().Round(time.Millisecond))

	// Fetch and draw the 3D annotation overlay for the recognised label.
	rb, err := sys.Render(0, res.AnnotationModelID, coic.ModeCoIC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  annotation loaded+drawn in %v (%s)\n",
		rb.Total().Round(time.Millisecond), rb.Outcome)

	// Between recognitions, the object is tracked locally: no network,
	// no cache, exactly as §2 prescribes ("tracking is doable to be
	// efficiently and accurately executed on mobile devices").
	first, err := sys.CaptureFrame(0, coic.ClassCar, 1)
	if err != nil {
		log.Fatal(err)
	}
	box := coic.Box{X: first.W/2 - 90, Y: first.H/2 - 90, W: 180, H: 180}
	tracker, err := coic.NewTracker(first, box, 24)
	if err != nil {
		log.Fatal(err)
	}
	for frame := 1; frame <= 5; frame++ {
		// The car drifts slightly in view; seeds give nearby viewpoints.
		next, err := sys.CaptureFrame(0, coic.ClassCar, uint64(100+frame))
		if err != nil {
			log.Fatal(err)
		}
		got, score, ok := tracker.Track(next)
		cx, cy := got.Center()
		fmt.Printf("frame %d: tracked locally at (%d,%d), ncc=%.2f ok=%v\n",
			frame, cx, cy, score, ok)
	}

	// A second user walks up to the same car: their recognition and
	// annotation both come from the edge.
	sys.Advance(3 * time.Second)
	b2, res2, err := sys.Recognize(0, coic.ClassCar, 777, coic.ModeCoIC)
	if err != nil {
		log.Fatal(err)
	}
	rb2, err := sys.Render(0, res2.AnnotationModelID, coic.ModeCoIC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second user: recognition %s in %v, annotation %s in %v\n",
		b2.Outcome, b2.Total().Round(time.Millisecond),
		rb2.Outcome, rb2.Total().Round(time.Millisecond))
	fmt.Printf("speedup vs first contact: %.1fx\n",
		float64(b.Total()+rb.Total())/float64(b2.Total()+rb2.Total()))
}
