// AR annotation: the demo application of the paper's §3 — "renders
// high-quality 3D annotations to label objects recognized in the camera
// view". The loop is the classic mobile-AR split the paper assumes:
//
//   - recognition goes through CoIC (expensive, cacheable);
//
//   - the 3D annotation model is fetched through CoIC (big, cacheable);
//
//   - frame-to-frame tracking runs on the device (cheap, never cached).
//
// The batch form (DoBatch) runs the recognise-then-annotate pair as one
// sequence, and a per-request deadline shows how an interactive app
// declares its motion-to-photon budget.
//
//	go run ./examples/ar-annotation
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	coic "github.com/edge-immersion/coic"
)

func main() {
	ctx := context.Background()
	sys, err := coic.New()
	if err != nil {
		log.Fatal(err)
	}

	// The driver points the phone at a car: recognise, then fetch and
	// draw the 3D annotation for the recognised label.
	fmt.Println("frame 0: recognising through CoIC...")
	res, err := sys.Do(ctx, 0, coic.RecognizeTask(coic.ClassCar, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s: %q -> annotation model %s (%v)\n",
		res.Breakdown.Outcome, res.Recognition.Label, res.Recognition.AnnotationModelID,
		res.Breakdown.Total().Round(time.Millisecond))

	rres, err := sys.Do(ctx, 0, coic.RenderTask(res.Recognition.AnnotationModelID))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  annotation loaded+drawn in %v (%s)\n",
		rres.Breakdown.Total().Round(time.Millisecond), rres.Breakdown.Outcome)
	firstContact := res.Breakdown.Total() + rres.Breakdown.Total()

	// Between recognitions, the object is tracked locally: no network,
	// no cache, exactly as §2 prescribes ("tracking is doable to be
	// efficiently and accurately executed on mobile devices").
	first, err := sys.CaptureFrame(0, coic.ClassCar, 1)
	if err != nil {
		log.Fatal(err)
	}
	box := coic.Box{X: first.W/2 - 90, Y: first.H/2 - 90, W: 180, H: 180}
	tracker, err := coic.NewTracker(first, box, 24)
	if err != nil {
		log.Fatal(err)
	}
	for frame := 1; frame <= 5; frame++ {
		// The car drifts slightly in view; seeds give nearby viewpoints.
		next, err := sys.CaptureFrame(0, coic.ClassCar, uint64(100+frame))
		if err != nil {
			log.Fatal(err)
		}
		got, score, ok := tracker.Track(next)
		cx, cy := got.Center()
		fmt.Printf("frame %d: tracked locally at (%d,%d), ncc=%.2f ok=%v\n",
			frame, cx, cy, score, ok)
	}

	// A second user walks up to the same car: recognition and annotation
	// both come from the edge, inside a one-second budget the cold path
	// above (a multi-second first contact) would have blown.
	sys.Advance(3 * time.Second)
	results, err := sys.DoBatch(ctx, 0, []coic.Request{
		coic.RecognizeTask(coic.ClassCar, 777).WithDeadline(time.Second),
		coic.RenderTask(res.Recognition.AnnotationModelID).WithDeadline(time.Second),
	})
	if err != nil {
		log.Fatal(err)
	}
	b2, rb2 := results[0].Breakdown, results[1].Breakdown
	fmt.Printf("second user: recognition %s in %v, annotation %s in %v (both under the 1s budget)\n",
		b2.Outcome, b2.Total().Round(time.Millisecond),
		rb2.Outcome, rb2.Total().Round(time.Millisecond))
	fmt.Printf("speedup vs first contact: %.1fx\n",
		float64(firstContact)/float64(b2.Total()+rb2.Total()))
}
