// Shared AR: two users stand in front of the same statue and see each
// other's annotations — the collaborative extension of the paper's AR
// scenario. Each client joins the same edge-hosted scene; one recognises
// the object and publishes the result as a scene key, the other places a
// pose anchor. Every write lands in a versioned per-key document on the
// edge (last-writer-wins by edge-assigned sequence number) and is pushed
// to all members as a server-initiated event, so both mirrors converge
// no matter how the pushes interleave.
//
//	go run ./examples/shared-ar
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	coic "github.com/edge-immersion/coic"
)

func main() {
	p := coic.DefaultParams()
	p.CameraW, p.CameraH = 256, 256 // small frames keep the example snappy
	p.DNNInput = 32

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go coic.NewCloudServer(coic.WithListener(cloudLn), coic.WithServeParams(p)).Serve(ctx)
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go coic.NewEdgeServer(
		coic.WithListener(edgeLn),
		coic.WithServeParams(p),
		coic.WithCloud(cloudLn.Addr().String()),
	).Serve(ctx)

	// Two phones at the landmark, each on its own connection.
	alice, err := coic.NewClient(ctx, edgeLn.Addr().String(), coic.WithDialParams(p))
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()
	bob, err := coic.NewClient(ctx, edgeLn.Addr().String(), coic.WithDialParams(p))
	if err != nil {
		log.Fatal(err)
	}
	defer bob.Close()

	// Both join the statue's scene; the second joiner gets the current
	// document as its snapshot, then live pushes keep both in sync.
	aScene, err := alice.JoinScene(ctx, "statue-plaza")
	if err != nil {
		log.Fatal(err)
	}
	bScene, err := bob.JoinScene(ctx, "statue-plaza")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice and bob joined scene \"statue-plaza\"")

	// Alice recognises the statue through CoIC and shares the label.
	res, _, err := alice.RecognizeContext(ctx, coic.ClassAvatar, 1)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := aScene.Publish(ctx, "annotation/statue",
		[]byte(res.Label+" -> "+res.AnnotationModelID))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice recognised %q and published it (seq %d)\n", res.Label, seq)

	// Bob drops a pose anchor next to it.
	if _, err := bScene.Publish(ctx, "anchor/bob", []byte("pose{x:1.2,y:0.0,z:3.4}")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("bob published his pose anchor")

	// Each member sees the other's write arrive as a server push.
	fmt.Println("\nserver-pushed events:")
	for _, m := range []struct {
		name string
		sc   *coic.Scene
	}{{"alice", aScene}, {"bob", bScene}} {
		for i := 0; i < 2; i++ {
			select {
			case ev := <-m.sc.Events():
				fmt.Printf("  %s got %-20s = %-40q seq=%d trace=%016x\n",
					m.name, ev.Key, ev.Value, ev.Seq, ev.TraceID)
			case <-time.After(5 * time.Second):
				log.Fatalf("%s: no push within 5s", m.name)
			}
		}
	}

	// Both mirrors hold the same document: equal version vectors.
	waitConverged(aScene, bScene)
	entries, version := bScene.Snapshot()
	fmt.Printf("\nconverged at version %d; bob's mirror:\n", version)
	for _, e := range entries {
		fmt.Printf("  %-20s = %q (seq %d)\n", e.Key, e.Value, e.Seq)
	}

	if err := aScene.Leave(ctx); err != nil {
		log.Fatal(err)
	}
	if err := bScene.Leave(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nboth left; the edge garbage-collects the empty room")
}

// waitConverged blocks until both mirrors report identical version
// vectors (they already do by the time the pushes above were consumed;
// this is the belt to that suspender).
func waitConverged(a, b *coic.Scene) {
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		av, bv := a.VersionVector(), b.VersionVector()
		if len(av) == len(bv) {
			same := true
			for k, s := range av {
				if bv[k] != s {
					same = false
					break
				}
			}
			if same {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatal("mirrors did not converge within 5s")
}
