package coic

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/edge-immersion/coic/internal/cache"
	"github.com/edge-immersion/coic/internal/core"
	"github.com/edge-immersion/coic/internal/dnn"
	"github.com/edge-immersion/coic/internal/feature"
	"github.com/edge-immersion/coic/internal/metrics"
	"github.com/edge-immersion/coic/internal/netsim"
	"github.com/edge-immersion/coic/internal/tensor"
	"github.com/edge-immersion/coic/internal/trace"
	"github.com/edge-immersion/coic/internal/vision"
	"github.com/edge-immersion/coic/internal/wire"
	"github.com/edge-immersion/coic/internal/xrand"
)

// Table is a renderable experiment result (text or CSV).
type Table = metrics.Table

// Fig2aRow and Fig2bRow are the structured results behind the paper's two
// figures.
type (
	Fig2aRow = core.Fig2aRow
	Fig2bRow = core.Fig2bRow
)

// TraceConfig parameterises synthetic workloads for the ablations.
type TraceConfig = trace.Config

// TaskMix weights recognition/render/pano tasks in a workload.
type TaskMix = trace.TaskMix

// RunFig2a regenerates Figure 2a (recognition latency across network
// conditions).
func RunFig2a(p Params) ([]Fig2aRow, error) { return core.RunFig2a(p) }

// RunFig2b regenerates Figure 2b (model load latency across sizes).
func RunFig2b(p Params) ([]Fig2bRow, error) { return core.RunFig2b(p) }

// RunFig2bSizes runs Figure 2b over a subset of the size ladder.
func RunFig2bSizes(p Params, sizesKB []int) ([]Fig2bRow, error) {
	return core.RunFig2bSizes(p, sizesKB)
}

func msCol(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

// Fig2aTable renders Figure 2a rows the way the paper's chart is read:
// one row per network condition, one column per bar.
func Fig2aTable(rows []Fig2aRow) *Table {
	t := metrics.NewTable(
		"Figure 2a — recognition latency (ms): Origin vs CoIC Cache Hit vs Cache Miss",
		"condition", "origin_ms", "hit_ms", "miss_ms", "reduction_%")
	var maxRed float64
	for _, r := range rows {
		red := r.Reduction() * 100
		if red > maxRed {
			maxRed = red
		}
		t.AddRow(r.Condition.String(), msCol(r.Origin.Total()), msCol(r.Hit.Total()),
			msCol(r.Miss.Total()), fmt.Sprintf("%.2f", red))
	}
	t.AddNote("paper reports up to 52.28%% reduction; this reproduction peaks at %.2f%%", maxRed)
	return t
}

// Fig2bTable renders Figure 2b rows.
func Fig2bTable(rows []Fig2bRow) *Table {
	t := metrics.NewTable(
		"Figure 2b — 3D model load latency (ms): Origin vs CoIC Cache Hit vs Cache Miss",
		"model_KB", "objx_KB", "cmf_KB", "origin_ms", "hit_ms", "miss_ms", "reduction_%")
	var maxRed float64
	for _, r := range rows {
		red := r.Reduction() * 100
		if red > maxRed {
			maxRed = red
		}
		t.AddRow(r.ModelKB, r.OBJXBytes/1024, r.CMFBytes/1024,
			msCol(r.Origin.Total()), msCol(r.Hit.Total()), msCol(r.Miss.Total()),
			fmt.Sprintf("%.2f", red))
	}
	t.AddNote("paper reports up to 75.86%% reduction; this reproduction peaks at %.2f%%", maxRed)
	return t
}

// RunHitRatio measures cache hit ratio and mean latency as the number of
// co-located users grows (the §1.2 redundancy claim made quantitative).
func RunHitRatio(p Params, userCounts []int, locality float64, seed uint64) (*Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("T-hit — hit ratio vs co-located users (locality=%.2f)", locality),
		"users", "events", "hit_ratio", "coic_mean_ms", "origin_mean_ms", "speedup")
	for _, users := range userCounts {
		events, err := trace.Generate(trace.Config{
			Users: users, Cells: 4, Duration: 30 * time.Second,
			RatePerUser: 1, Objects: 64, ZipfAlpha: 0.8,
			Locality: locality, HotSetSize: 8,
			TaskMix: trace.TaskMix{Recognize: 0.5, Render: 0.3, Pano: 0.2},
			Seed:    seed,
		})
		if err != nil {
			return nil, err
		}
		coicRes, err := core.RunTrace(p, cond200, events, ModeCoIC)
		if err != nil {
			return nil, err
		}
		originRes, err := core.RunTrace(p, cond200, events, ModeOrigin)
		if err != nil {
			return nil, err
		}
		speedup := float64(originRes.All.Mean()) / float64(coicRes.All.Mean())
		t.AddRow(users, coicRes.Events,
			fmt.Sprintf("%.3f", coicRes.HitRatio()),
			msCol(coicRes.All.Mean()), msCol(originRes.All.Mean()),
			fmt.Sprintf("%.2fx", speedup))
	}
	return t, nil
}

var cond200 = Condition{Name: "200/20", MobileEdge: 200, EdgeCloud: 20}

// RunPolicyAblation compares eviction policies on one trace across cache
// capacities (the paper's "simple cache management policy" axis).
func RunPolicyAblation(p Params, capacitiesMB []int, seed uint64) (*Table, error) {
	events, err := trace.Generate(trace.Config{
		Users: 12, Cells: 3, Duration: 40 * time.Second,
		RatePerUser: 1, Objects: 96, ZipfAlpha: 0.9,
		Locality: 0.6, HotSetSize: 10,
		TaskMix: trace.TaskMix{Recognize: 0.4, Render: 0.4, Pano: 0.2},
		Seed:    seed,
	})
	if err != nil {
		return nil, err
	}
	policies := []struct {
		name string
		mk   func() cache.Policy
	}{
		{"lru", cache.NewLRU}, {"lfu", cache.NewLFU},
		{"fifo", cache.NewFIFO}, {"gdsf", cache.NewGDSF},
	}
	t := metrics.NewTable("A-policy — eviction policy vs hit ratio",
		"capacity_MB", "policy", "hit_ratio", "mean_ms", "evictions")
	for _, mb := range capacitiesMB {
		for _, pol := range policies {
			pp := p
			pp.EdgeCacheBytes = int64(mb) << 20
			res, err := core.RunTrace(pp, cond200, events, ModeCoIC, core.WithCachePolicy(pol.mk()))
			if err != nil {
				return nil, err
			}
			t.AddRow(mb, pol.name,
				fmt.Sprintf("%.3f", res.HitRatio()),
				msCol(res.All.Mean()),
				res.Events-res.Errors)
		}
	}
	return t, nil
}

// RunThresholdSweep measures descriptor separation: true-hit vs false-hit
// rates across candidate similarity thresholds.
func RunThresholdSweep(p Params, thresholds []float64, pairs int) *Table {
	pts := core.RunThresholdSweep(p, thresholds, pairs)
	t := metrics.NewTable("A-threshold — similarity threshold sensitivity",
		"threshold", "true_hit_rate", "false_hit_rate")
	for _, pt := range pts {
		t.AddRow(fmt.Sprintf("%.3f", pt.Threshold),
			fmt.Sprintf("%.3f", pt.TruePositive),
			fmt.Sprintf("%.3f", pt.FalsePositive))
	}
	t.AddNote("configured threshold: %.3f", p.Threshold)
	return t
}

// RunIndexAblation compares exact linear scan against LSH lookup cost as
// the number of cached descriptors grows, measuring real wall-clock
// lookup time and LSH recall.
func RunIndexAblation(dim int, sizes []int, queries int, seed uint64) *Table {
	t := metrics.NewTable("A-index — descriptor index lookup cost",
		"cached_vectors", "linear_us", "lsh_us", "lsh_recall")
	rng := xrand.New(seed)
	mkVec := func() []float32 {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		return feature.NewVector(v).Vec
	}
	for _, n := range sizes {
		lin := feature.NewLinear()
		lsh := feature.NewLSH(dim, 8, 14, seed)
		vecs := make([][]float32, n)
		for i := 0; i < n; i++ {
			vecs[i] = mkVec()
			lin.Add(uint64(i+1), vecs[i])
			lsh.Add(uint64(i+1), vecs[i])
		}
		qs := make([][]float32, queries)
		want := make([]uint64, queries)
		for i := range qs {
			target := rng.Intn(n)
			q := make([]float32, dim)
			copy(q, vecs[target])
			q[0] += 0.01
			qs[i] = feature.NewVector(q).Vec
			want[i] = uint64(target + 1)
		}
		start := time.Now()
		for _, q := range qs {
			lin.Nearest(q)
		}
		linPer := time.Since(start) / time.Duration(queries)

		recall := 0
		start = time.Now()
		for i, q := range qs {
			if id, _, ok := lsh.Nearest(q); ok && id == want[i] {
				recall++
			}
		}
		lshPer := time.Since(start) / time.Duration(queries)

		t.AddRow(n,
			fmt.Sprintf("%.1f", float64(linPer)/float64(time.Microsecond)),
			fmt.Sprintf("%.1f", float64(lshPer)/float64(time.Microsecond)),
			fmt.Sprintf("%.2f", float64(recall)/float64(queries)))
	}
	return t
}

// RunCooperation measures the effect of edge-to-edge peering: users
// behind different edges requesting overlapping content, with and
// without cooperation.
func RunCooperation(p Params, edgeCounts []int, requestsPerEdge int) (*Table, error) {
	t := metrics.NewTable("A-coop — edge-to-edge cooperation",
		"edges", "peered", "hit_ratio", "peer_hits", "cloud_fetches")
	for _, n := range edgeCounts {
		for _, peered := range []bool{false, true} {
			hitRatio, peerHits, cloudFetches, err := runCoop(p, n, requestsPerEdge, peered)
			if err != nil {
				return nil, err
			}
			t.AddRow(n, peered, fmt.Sprintf("%.3f", hitRatio), peerHits, cloudFetches)
		}
	}
	return t, nil
}

func runCoop(p Params, edges, requestsPerEdge int, peered bool) (float64, uint64, int, error) {
	cloud := core.NewCloud(p)
	es := make([]*core.Edge, edges)
	for i := range es {
		es[i] = core.NewEdge(p)
	}
	if peered {
		for i := range es {
			for j := range es {
				if i != j {
					es[i].Peer(es[j])
				}
			}
		}
	}
	at := time.Date(2018, 8, 20, 9, 0, 0, 0, time.UTC)
	cloudFetches := 0
	modelIDs := []string{AnnotationModelID(ClassCar), AnnotationModelID(ClassTree), AnnotationModelID(ClassDog)}
	var totalLookups, totalHits uint64
	for i := 0; i < edges; i++ {
		topo := netsim.NewTopology(cond200, p.Seed+uint64(i))
		sess := core.NewSession(core.NewClient(i, p), es[i], cloud, topo)
		for r := 0; r < requestsPerEdge; r++ {
			// Every edge's users want the same popular content.
			b, err := sess.Render(context.Background(), at.Add(time.Duration(r)*time.Second), modelIDs[r%len(modelIDs)], ModeCoIC)
			if err != nil {
				return 0, 0, 0, err
			}
			if b.Cloud > 0 {
				cloudFetches++
			}
		}
	}
	var peerHits uint64
	for _, e := range es {
		st := e.Stats()
		peerHits += st.PeerHits
		for _, v := range st.Lookups {
			totalLookups += v
		}
		for _, v := range st.Exact {
			totalHits += v
		}
		for _, v := range st.Similar {
			totalHits += v
		}
	}
	ratio := 0.0
	if totalLookups > 0 {
		ratio = float64(totalHits) / float64(totalLookups)
	}
	return ratio, peerHits, cloudFetches, nil
}

// FederationRow is one point of the multi-edge federation ablation.
type FederationRow = core.FederationRow

// RunFederation is the multi-edge ablation: one workload of overlapping
// user interest replayed over 1..N edges × client placement, with edges
// federated via consistent hashing against an isolated baseline. Per-edge
// cache capacity is deliberately constrained (capacityMB per edge) so a
// lone edge cannot hold the working set: federating edges both pools
// capacity (the partitioned keyspace spreads residency) and bridges
// placement (a user behind edge B reuses what edge A's users computed),
// so the aggregate hit ratio rises and cloud fetches fall as edges are
// added.
func RunFederation(p Params, edgeCounts []int, users, capacityMB int, seed uint64) (*Table, error) {
	events, err := trace.Generate(trace.Config{
		Users: users, Cells: 8, Duration: 40 * time.Second,
		RatePerUser: 1, Objects: 96, ZipfAlpha: 0.8,
		Locality: 0.7, HotSetSize: 12,
		TaskMix: trace.TaskMix{Recognize: 0.4, Render: 0.4, Pano: 0.2},
		Seed:    seed,
	})
	if err != nil {
		return nil, err
	}
	pp := p
	pp.EdgeCacheBytes = int64(capacityMB) << 20
	rows, err := core.RunFederation(pp, core.FederationConfigExp{
		EdgeCounts: edgeCounts,
		Events:     events,
		Baseline:   true,
	})
	if err != nil {
		return nil, err
	}
	return FederationTable(rows), nil
}

// FederationTable renders federation ablation rows.
func FederationTable(rows []FederationRow) *Table {
	t := metrics.NewTable(
		"A-federation — multi-edge cache federation (consistent hashing + peer lookup)",
		"edges", "placement", "federated", "hit_ratio", "peer_hits", "published", "cloud_fetches", "p50_ms", "p99_ms")
	for _, r := range rows {
		t.AddRow(r.Edges, r.Placement.String(), r.Federated,
			fmt.Sprintf("%.3f", r.HitRatio), r.PeerHits, r.Published,
			r.CloudFetches, msCol(r.P50), msCol(r.P99))
	}
	t.AddNote("federated edges resolve misses at the key's home edge (one LAN hop) before the cloud")
	return t
}

// ChurnRow is one point of the membership-churn ablation.
type ChurnRow = core.ChurnRow

// RunChurn is the dynamic-membership ablation: a replicated federation
// (rf-way publish) replays one workload while members crash and rejoin
// mid-run, comparing a ring that follows the membership — rebuilt on
// every change, moved keys migrated from surviving replicas — against
// the static boot-time ring, where a dead member's arc of the keyspace
// degrades to cloud fetches until it returns. The hit-ratio and p99 gap
// between the rows is what gossip-driven membership buys the fleet.
func RunChurn(p Params, cycleCounts []int, edges, rf, users, capacityMB int, seed uint64) (*Table, error) {
	events, err := trace.Generate(trace.Config{
		Users: users, Cells: 8, Duration: 40 * time.Second,
		RatePerUser: 1, Objects: 96, ZipfAlpha: 0.8,
		Locality: 0.7, HotSetSize: 12,
		TaskMix: trace.TaskMix{Recognize: 0.4, Render: 0.4, Pano: 0.2},
		Seed:    seed,
	})
	if err != nil {
		return nil, err
	}
	pp := p
	pp.EdgeCacheBytes = int64(capacityMB) << 20
	rows, err := core.RunChurn(pp, core.ChurnConfigExp{
		Edges:       edges,
		RF:          rf,
		CycleCounts: cycleCounts,
		Events:      events,
		Baseline:    true,
	})
	if err != nil {
		return nil, err
	}
	return ChurnTable(rows), nil
}

// ChurnTable renders churn ablation rows.
func ChurnTable(rows []ChurnRow) *Table {
	t := metrics.NewTable(
		"A-churn — membership churn: dynamic ring + migration vs static ring",
		"edges", "cycles", "mode", "rf", "hit_ratio", "peer_hits", "repaired", "migrated", "ring_ver", "cloud_fetches", "p50_ms", "p99_ms")
	for _, r := range rows {
		mode := "static"
		if r.Dynamic {
			mode = "dynamic"
		}
		t.AddRow(r.Edges, r.Cycles, mode, r.RF,
			fmt.Sprintf("%.3f", r.HitRatio), r.PeerHits, r.Repaired, r.Migrated,
			r.RingVersion, r.CloudFetches, msCol(r.P50), msCol(r.P99))
	}
	t.AddNote("dynamic = ring rebuilt on every crash/rejoin and moved keys migrated; static = boot-time ring, dead arcs fall through to the cloud")
	return t
}

// BurstRow is one point of the burst-coalescing ablation.
type BurstRow = core.BurstRow

// RunBurst is the miss-coalescing ablation: K users fire requests at the
// edge in the same instant (the correlated bursts of multi-user immersive
// workloads) at each duplication ratio, replayed under the honest serial
// miss policy and under in-flight coalescing. It reports cloud fetches
// (and fetches saved) plus p50/p99 latency — the virtual-time counterpart
// of the TCP edge's singleflight table.
func RunBurst(p Params, userCounts []int, dupRatios []float64) (*Table, error) {
	rows, err := core.RunBurstExp(p, core.BurstConfig{
		UserCounts: userCounts,
		DupRatios:  dupRatios,
	})
	if err != nil {
		return nil, err
	}
	return BurstTable(rows), nil
}

// BurstTable renders burst ablation rows.
func BurstTable(rows []BurstRow) *Table {
	core.SortBurstRows(rows)
	t := metrics.NewTable(
		"A-burst — concurrent-miss coalescing under correlated bursts",
		"users", "dup_ratio", "mode", "distinct", "cloud_fetches", "saved", "coalesced", "p50_ms", "p99_ms")
	for _, r := range rows {
		t.AddRow(r.Users, fmt.Sprintf("%.2f", r.DupRatio), r.Mode.String(), r.Distinct,
			r.CloudFetches, r.SavedFetches(), r.CoalescedJoins,
			msCol(r.P50), msCol(r.P99))
	}
	t.AddNote("serial = every in-flight duplicate pays its own cloud fetch; coalesce = duplicates join the one in-flight fetch")
	return t
}

// RunFinegrained measures the paper's future-work extension: per-DNN-layer
// result reuse. A pool of inputs with repetition runs through a plain
// network and a layer-memoised one; the table reports layer hit rate and
// real compute speedup.
func RunFinegrained(p Params, poolSizes []int, requests int) *Table {
	t := metrics.NewTable("A-layer — fine-grained per-layer DNN caching (future work §4)",
		"distinct_inputs", "requests", "layer_hit_rate", "plain_ms", "cached_ms", "speedup")
	net := dnn.NewEdgeNet(vision.ClassNames, p.DNNInput, p.Seed)
	for _, pool := range poolSizes {
		inputs := make([]*tensor.Tensor, pool)
		for i := range inputs {
			frame := vision.RenderObject(vision.Class(i%int(vision.NumClasses)), vision.CanonicalView(), 64, 64)
			inputs[i] = vision.ToTensor(frame, p.DNNInput)
		}
		start := time.Now()
		for r := 0; r < requests; r++ {
			net.Forward(inputs[r%pool])
		}
		plain := time.Since(start)

		cr := dnn.NewCachedRunner(net, 0)
		start = time.Now()
		for r := 0; r < requests; r++ {
			cr.Forward(inputs[r%pool])
		}
		cached := time.Since(start)
		hits, misses := cr.Stats()
		rate := float64(hits) / float64(hits+misses)
		t.AddRow(pool, requests,
			fmt.Sprintf("%.2f", rate),
			msCol(plain), msCol(cached),
			fmt.Sprintf("%.2fx", float64(plain)/float64(cached)))
	}
	return t
}

// RunBatch measures the batched DNN executor against serial dispatch:
// batches of camera frames (every other frame a bit-identical duplicate,
// the co-located-users workload batching targets) run through N serial
// Forward passes and one ForwardBatch pass. Workers are pinned to one so
// the speedup column is per-core algorithmic gain — blocked matmuls plus
// intra-batch sharing — not parallelism.
func RunBatch(p Params, batchSizes []int, rounds int) *Table {
	t := metrics.NewTable("Batched DNN execution — serial vs ForwardBatch (per core)",
		"batch", "rounds", "serial_ms", "batched_ms", "serial_fps", "batched_fps", "speedup")
	defer tensor.SetMaxWorkers(tensor.SetMaxWorkers(1))
	net := dnn.NewEdgeNet(vision.ClassNames, p.DNNInput, p.Seed)
	for _, bs := range batchSizes {
		inputs := make([]*tensor.Tensor, bs)
		for i := range inputs {
			// Every other member duplicates the previous frame exactly —
			// co-located users viewing the same object.
			src := i
			if i%2 == 1 {
				src = i - 1
			}
			frame := vision.RenderObject(vision.Class(src%int(vision.NumClasses)), vision.CanonicalView(), 64, 64)
			inputs[i] = vision.ToTensor(frame, p.DNNInput)
		}
		start := time.Now()
		for r := 0; r < rounds; r++ {
			for _, in := range inputs {
				net.Forward(in)
			}
		}
		serial := time.Since(start)

		start = time.Now()
		for r := 0; r < rounds; r++ {
			net.ForwardBatch(inputs)
		}
		batched := time.Since(start)

		items := float64(bs * rounds)
		t.AddRow(bs, rounds,
			msCol(serial), msCol(batched),
			fmt.Sprintf("%.1f", items/serial.Seconds()),
			fmt.Sprintf("%.1f", items/batched.Seconds()),
			fmt.Sprintf("%.2fx", float64(serial)/float64(batched)))
	}
	t.AddNote("single tensor worker; half of each batch duplicates the other half bit-exactly")
	return t
}

// RunPanoStreaming measures the VR path: N users watching the same video
// through one edge, CoIC vs Origin.
func RunPanoStreaming(p Params, users, framesPerUser int) (*Table, error) {
	t := metrics.NewTable("A-pano — shared VR panorama streaming",
		"mode", "users", "frames", "mean_ms", "p95_ms", "hit_ratio")
	for _, mode := range []Mode{ModeOrigin, ModeCoIC} {
		events, err := trace.Generate(trace.Config{
			Users: users, Cells: 1, Duration: time.Duration(framesPerUser) * 200 * time.Millisecond,
			RatePerUser: 5, Objects: 2, Locality: 1, HotSetSize: 2,
			TaskMix: trace.TaskMix{Pano: 1},
			Seed:    p.Seed,
		})
		if err != nil {
			return nil, err
		}
		res, err := core.RunTrace(p, cond200, events, mode)
		if err != nil {
			return nil, err
		}
		t.AddRow(mode.String(), users, res.Events,
			msCol(res.All.Mean()), msCol(res.All.P95()),
			fmt.Sprintf("%.3f", res.HitRatio()))
	}
	return t, nil
}

// RunPrivacy measures the privacy/utility trade-off of the k-anonymity
// sharing gate (this reproduction's take on the paper's §4
// "security/privacy protection" future work): higher K withholds more
// cross-user sharing, lowering the hit ratio.
func RunPrivacy(p Params, ks []int, seed uint64) (*Table, error) {
	events, err := trace.Generate(trace.Config{
		Users: 12, Cells: 2, Duration: 30 * time.Second,
		RatePerUser: 1, Objects: 24, ZipfAlpha: 0.9,
		Locality: 0.8, HotSetSize: 6,
		TaskMix: trace.TaskMix{Recognize: 0.4, Render: 0.4, Pano: 0.2},
		Seed:    seed,
	})
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("A-privacy — k-anonymity sharing gate vs cache utility",
		"privacy_k", "hit_ratio", "blocked", "mean_ms")
	for _, k := range ks {
		var opts []core.EdgeOption
		if k > 1 {
			opts = append(opts, core.WithPrivacyK(k))
		}
		res, err := core.RunTrace(p, cond200, events, ModeCoIC, opts...)
		if err != nil {
			return nil, err
		}
		t.AddRow(k,
			fmt.Sprintf("%.3f", res.HitRatio()),
			res.Edge.PrivacyBlocked,
			msCol(res.All.Mean()))
	}
	t.AddNote("K=0 disables the gate; blocked = hits withheld from strangers")
	return t, nil
}

// RunQoE scores a mixed workload on the paper's own currency — quality of
// experience — per task and mode, using per-task latency-MOS curves
// (internal/metrics/qoe.go). This is the summary view of "improve QoE of
// immersive computing by cooperatively sharing ... intermediate IC
// results".
func RunQoE(p Params, users int, seed uint64) (*Table, error) {
	events, err := trace.Generate(trace.Config{
		Users: users, Cells: 3, Duration: 30 * time.Second,
		RatePerUser: 1, Objects: 48, ZipfAlpha: 0.9,
		Locality: 0.7, HotSetSize: 8,
		TaskMix: trace.TaskMix{Recognize: 0.4, Render: 0.3, Pano: 0.3},
		Seed:    seed,
	})
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable(
		fmt.Sprintf("QoE — mean opinion score (1-5) per task, %d users", users),
		"task", "origin_qoe", "coic_qoe", "origin_p95_ms", "coic_p95_ms")
	coicRes, err := core.RunTrace(p, cond200, events, ModeCoIC)
	if err != nil {
		return nil, err
	}
	originRes, err := core.RunTrace(p, cond200, events, ModeOrigin)
	if err != nil {
		return nil, err
	}
	rows := []struct {
		task wire.Task
		q    metrics.QoE
	}{
		{wire.TaskRecognize, metrics.QoERecognition},
		{wire.TaskRender, metrics.QoERender},
		{wire.TaskPano, metrics.QoEPano},
	}
	for _, r := range rows {
		o, c := originRes.PerTask[r.task], coicRes.PerTask[r.task]
		t.AddRow(r.task.String(),
			fmt.Sprintf("%.2f", r.q.MeanScore(o)),
			fmt.Sprintf("%.2f", r.q.MeanScore(c)),
			msCol(o.P95()), msCol(c.P95()))
	}
	return t, nil
}

// GenerateTrace builds a workload trace for custom experiments.
func GenerateTrace(cfg TraceConfig) ([]trace.Event, error) { return trace.Generate(cfg) }

// RunQoS is the deadline-aware scheduling ablation, run on a live
// in-process TCP stack through the public streaming API. One client
// holds two streams on one connection: a background stream flooding the
// edge with distinct (always-miss) panorama fetches, and a foreground
// stream issuing one request at a time against a motion-to-photon
// budget. The edge runs a single worker over a delay-dominated cloud
// link, so queued work — not CPU — is what the foreground waits on.
// Three rows isolate what the scheduler buys:
//
//   - none: no background load — the foreground floor.
//   - fifo: foreground and background both carry no QoS metadata — the
//     pre-QoS edge. The foreground absorbs the whole backlog and blows
//     its budget (lateness is scored client-side against the same
//     deadline).
//   - qos:  background QoSBestEffort, foreground QoSInteractive with the
//     deadline on the wire — the scheduler dispatches every queued
//     interactive request first and sheds it unexecuted if the budget
//     expires in the queue.
//
// interactiveN is how many foreground requests to measure per row;
// deadline is their budget. Latencies are wall clock, so exact numbers
// vary by host; the fifo vs qos contrast is the result.
func RunQoS(p Params, interactiveN int, deadline time.Duration) (*Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("A-qos — interactive latency under best-effort background load (budget %v)", deadline),
		"scheduling", "interactive_n", "p50_ms", "p99_ms", "late_or_shed", "edge_sheds", "bg_admitted", "bg_completed")
	rows := []struct {
		name string
		load bool
		qos  bool // encode class + deadline on the wire
	}{
		{"none", false, true},
		{"fifo", true, false},
		{"qos", true, true},
	}
	for _, row := range rows {
		if err := runQoSRow(p, t, row.name, row.load, row.qos, interactiveN, deadline); err != nil {
			return nil, err
		}
	}
	t.AddNote("fifo = no QoS metadata on the wire (the pre-QoS edge); qos = interactive class + deadline")
	t.AddNote("late_or_shed = foreground completions past their budget (shed at the edge or landed late)")
	return t, nil
}

// qosHarness is the live in-process TCP stack the RunQoS ablation and
// BenchmarkStreamServe share, so the two measurements cannot drift
// apart: a one-worker edge over a ~40ms-RTT shaped link (queued
// requests wait on the wire, not the CPU, so scheduling order is what
// decides the foreground's fate) and one client connection both streams
// ride on.
type qosHarness struct {
	Edge   *Server
	Client *Client
	addr   string
	params Params
	ctx    context.Context
	cancel context.CancelFunc
}

// newQoSHarness boots the stack; extra server options (tenant quotas,
// worker counts, upstream limits) are appended to the base edge
// configuration, so later options win.
func newQoSHarness(p Params, extra ...ServerOption) (*qosHarness, error) {
	// Delay-dominated service: small panoramas keep render and crop
	// cheap; the shaped link supplies the latency.
	p.PanoWidth = 256
	ctx, cancel := context.WithCancel(context.Background())
	ok := false
	defer func() {
		if !ok {
			cancel()
		}
	}()
	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go NewCloudServer(WithListener(cloudLn), WithServeParams(p)).Serve(ctx)
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	edge := NewEdgeServer(append([]ServerOption{
		WithListener(edgeLn),
		WithServeParams(p),
		WithCloud(cloudLn.Addr().String()),
		WithCloudShape("rate 200mbit delay 20ms"),
		WithWorkers(1),
		WithQueueDepth(64),
	}, extra...)...)
	go edge.Serve(ctx)
	cli, err := NewClient(ctx, edgeLn.Addr().String(), WithDialParams(p))
	if err != nil {
		return nil, err
	}
	ok = true
	return &qosHarness{
		Edge: edge, Client: cli,
		addr: edgeLn.Addr().String(), params: p,
		ctx: ctx, cancel: cancel,
	}, nil
}

// Dial opens an additional client connection to the harness edge (the
// noisy-neighbor ablation gives each tenant its own connection, which
// is how real apps arrive).
func (h *qosHarness) Dial(opts ...DialOption) (*Client, error) {
	return NewClient(h.ctx, h.addr, append([]DialOption{WithDialParams(h.params)}, opts...)...)
}

// Close tears the stack down (servers drain, the client connection
// closes).
func (h *qosHarness) Close() {
	h.Client.Close()
	h.cancel()
}

// StartBackground floods the connection with distinct (always-miss)
// pano fetches through a standing window; each one costs a shaped cloud
// fetch, building a backlog in the edge's scheduler. tagged submits
// them as QoSBestEffort; untagged carries no QoS metadata (the pre-QoS
// FIFO baseline). The returned stop function ends the load, drains the
// stream, and reports how many background fetches completed. It also
// waits ~300ms so callers measure against an established backlog.
func (h *qosHarness) StartBackground(tagged bool) (stop func() int, err error) {
	stopOn, err := h.startBackgroundOn(h.Client, tagged, 6)
	if err != nil {
		return nil, err
	}
	return func() int { n, _ := stopOn(); return n }, nil
}

// startBackgroundOn is StartBackground through an arbitrary client
// connection (the noisy-neighbor ablation floods through its own tenant
// connection). The returned stop reports how many background fetches
// completed and how many were rejected by per-tenant admission quota.
func (h *qosHarness) startBackgroundOn(cli *Client, tagged bool, window int) (stop func() (completed, rejected int), err error) {
	bgCtx, bgStop := context.WithCancel(h.ctx)
	bg, err := cli.Stream(bgCtx, WithWindow(window))
	if err != nil {
		bgStop()
		return nil, err
	}
	results := bg.Results()
	type tally struct{ completed, rejected int }
	done := make(chan tally, 1)
	go func() {
		var n tally
		for comp := range results {
			switch {
			case comp.Err == nil:
				n.completed++
			case errors.Is(comp.Err, ErrQuotaExceeded):
				n.rejected++
			}
		}
		done <- n
	}()
	go func() {
		for frame := 0; ; frame++ {
			req := PanoTask("qos-bg", frame, Viewport{FOV: 1.6})
			if tagged {
				req = req.WithQoS(QoSBestEffort)
			}
			if _, err := bg.Submit(bgCtx, req); err != nil {
				return
			}
		}
	}()
	time.Sleep(300 * time.Millisecond) // let the backlog build
	return func() (int, int) {
		bgStop()
		bg.Close()
		n := <-done
		return n.completed, n.rejected
	}, nil
}

func runQoSRow(p Params, t *Table, name string, load, qos bool, interactiveN int, deadline time.Duration) error {
	h, err := newQoSHarness(p)
	if err != nil {
		return err
	}
	defer h.Close()

	bgCompleted := 0
	stopBG := func() {}
	if load {
		stop, err := h.StartBackground(qos)
		if err != nil {
			return err
		}
		stopped := false
		stopBG = func() { // idempotent: called explicitly and deferred
			if !stopped {
				stopped = true
				bgCompleted = stop()
			}
		}
		defer stopBG()
	}

	fg, err := h.Client.Stream(h.ctx, WithWindow(1))
	if err != nil {
		return err
	}
	defer fg.Close()
	hist := &metrics.Histogram{}
	late := 0
	for i := 0; i < interactiveN; i++ {
		req := PanoTask("qos-fg", i, Viewport{FOV: 1.6})
		if qos {
			req = req.WithQoS(QoSInteractive).WithDeadline(deadline)
		}
		ticket, err := fg.Submit(h.ctx, req)
		if err != nil {
			return err
		}
		comp, err := ticket.Await(h.ctx)
		switch {
		case errors.Is(err, ErrDeadlineExceeded):
			late++
		case err != nil:
			return fmt.Errorf("coic: qos row %s: %w", name, err)
		case !qos && comp.Latency > deadline:
			late++ // fifo row: score the same budget client-side
		}
		hist.Record(comp.Latency)
		time.Sleep(2 * time.Millisecond) // display-rate pacing
	}

	stopBG() // drain the background stream so bg_completed is final
	stats := h.Edge.Stats()
	t.AddRow(name, interactiveN,
		msCol(hist.Median()), msCol(hist.P99()),
		late, stats.DeadlineSheds,
		stats.AdmittedBestEffort+stats.AdmittedInteractive-uint64(interactiveN), bgCompleted)
	return nil
}

// RunNoisyNeighbor is the multi-tenant isolation ablation. Two tenants
// share one edge from separate connections — which is how distinct apps
// arrive, so the per-connection QoS scheduler cannot arbitrate between
// them: their traffic meets at the edge's shared upstream link. The
// noisy tenant floods best-effort always-miss panorama fetches; the
// victim issues paced interactive requests and its p99 is the result.
// Four rows isolate what each tenant mechanism buys:
//
//   - solo:   no noisy tenant — the victim's uncontended floor.
//   - pooled: both tenants land on the default tenant (the pre-tenant
//     edge). The flood owns every upstream slot and the victim's
//     fetches wait behind the whole backlog.
//   - fair:   tenants authenticate via WithTenant and the edge caps
//     each tenant at its weighted share of the upstream slots — the
//     flood can no longer hold every slot, so the victim finds one
//     free (or at worst one in-service residual away) instead of
//     waiting behind the whole backlog.
//   - quota:  fair plus a token-bucket admission rate on the noisy
//     tenant, so most of the flood is rejected with CodeQuotaExceeded
//     before it ever competes for a slot.
//
// victimN is how many victim requests to measure per row; budget is
// the latency each completion is scored against (client-side — victim
// requests carry no wire deadline, so p99 reflects true service time,
// never an early shed).
func RunNoisyNeighbor(p Params, victimN int, budget time.Duration) (*Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("A-noisy — victim interactive latency under a competing tenant's flood (budget %v)", budget),
		"isolation", "victim_n", "p50_ms", "p99_ms", "over_budget",
		"victim_admitted", "noisy_admitted", "noisy_quota_rejected", "noisy_completed")
	rows := []struct {
		name    string
		load    bool // run the noisy tenant's flood
		tenants bool // authenticate tenants and weight the upstream gate
		quota   bool // rate-limit the noisy tenant's admission
	}{
		{"solo", false, true, false},
		{"pooled", true, false, false},
		{"fair", true, true, false},
		{"quota", true, true, true},
	}
	for _, row := range rows {
		if err := runNoisyRow(p, t, row.name, row.load, row.tenants, row.quota, victimN, budget); err != nil {
			return nil, err
		}
	}
	t.AddNote("pooled = tenantless dials sharing the default tenant (the pre-tenant edge)")
	t.AddNote("fair = WithTenant dials + weighted fair upstream slots; quota = fair + noisy admission rate cap")
	t.AddNote("over_budget = victim completions slower than the budget, scored client-side")
	return t, nil
}

func runNoisyRow(p Params, t *Table, name string, load, tenants, quota bool, victimN int, budget time.Duration) error {
	// Eight workers per connection let the flood actually reach the
	// upstream gate concurrently; three slots make the gate — not the
	// per-connection pool — the contended resource, as it is when many
	// connections share one uplink.
	serverOpts := []ServerOption{WithWorkers(8), WithMaxUpstream(3)}
	if tenants {
		serverOpts = append(serverOpts,
			WithTenantQuota("victim", TenantConfig{Weight: 4}),
			WithTenantWeight("noisy", 1))
	}
	if quota {
		serverOpts = append(serverOpts,
			WithTenantQuota("noisy", TenantConfig{Rate: 10, Burst: 2, Weight: 1}))
	}
	h, err := newQoSHarness(p, serverOpts...)
	if err != nil {
		return err
	}
	defer h.Close()

	victimTenant, noisyTenant := DefaultTenant, DefaultTenant
	var victimDial, noisyDial []DialOption
	if tenants {
		victimTenant, noisyTenant = "victim", "noisy"
		victimDial = append(victimDial, WithTenant("victim", ""))
		noisyDial = append(noisyDial, WithTenant("noisy", ""))
	}
	victim, err := h.Dial(victimDial...)
	if err != nil {
		return err
	}
	defer victim.Close()

	// One unrecorded warmup fetch before the flood exists: it pays the
	// lazy upstream-mux dial so the solo floor (and every other row)
	// measures steady-state service, not connection setup.
	warm, err := victim.Stream(h.ctx, WithWindow(1))
	if err != nil {
		return err
	}
	ticket, err := warm.Submit(h.ctx, PanoTask("noisy-warm", 0, Viewport{FOV: 1.6}))
	if err != nil {
		return err
	}
	if _, err := ticket.Await(h.ctx); err != nil {
		return fmt.Errorf("coic: noisy row %s warmup: %w", name, err)
	}
	warm.Close()

	bgCompleted := 0
	stopBG := func() {}
	if load {
		noisy, err := h.Dial(noisyDial...)
		if err != nil {
			return err
		}
		defer noisy.Close()
		stop, err := h.startBackgroundOn(noisy, true, 12)
		if err != nil {
			return err
		}
		stopped := false
		stopBG = func() { // idempotent: called explicitly and deferred
			if !stopped {
				stopped = true
				bgCompleted, _ = stop()
			}
		}
		defer stopBG()
	}

	fg, err := victim.Stream(h.ctx, WithWindow(1))
	if err != nil {
		return err
	}
	defer fg.Close()
	hist := &metrics.Histogram{}
	over := 0
	for i := 0; i < victimN; i++ {
		req := PanoTask("noisy-fg", i, Viewport{FOV: 1.6}).WithQoS(QoSInteractive)
		ticket, err := fg.Submit(h.ctx, req)
		if err != nil {
			return err
		}
		comp, err := ticket.Await(h.ctx)
		if err != nil {
			return fmt.Errorf("coic: noisy row %s: %w", name, err)
		}
		if comp.Latency > budget {
			over++
		}
		hist.Record(comp.Latency)
		time.Sleep(2 * time.Millisecond) // display-rate pacing
	}

	stopBG() // drain the flood so noisy_completed is final
	stats := h.Edge.Stats()
	t.AddRow(name, victimN,
		msCol(hist.Median()), msCol(hist.P99()), over,
		stats.Tenants[victimTenant].AdmittedInteractive,
		stats.Tenants[noisyTenant].AdmittedBestEffort,
		stats.Tenants[noisyTenant].QuotaRejections,
		bgCompleted)
	return nil
}

// RunSharedScene is the collaborative-session ablation: one edge hosts a
// shared scene, M members join it over real TCP connections, and one of
// them publishes a stream of updates. Each update is a unique key, so
// every member's arrival can be correlated with the publish that caused
// it; propagation is wall-clock time from the Publish call to the pushed
// event landing on a member (the publisher's own loopback push
// included). At quiesce the row verifies convergence — every member's
// mirror holds the publisher's exact version vector — which is the
// CRDT-lite guarantee the fan-out is supposed to deliver.
//
// memberCounts sizes the room per row (the paper's shared-immersion
// scenario is a handful of co-located users; 32 stresses the fan-out);
// updates is how many publishes each row measures.
func RunSharedScene(p Params, memberCounts []int, updates int) (*Table, error) {
	t := metrics.NewTable(
		"A-scene — shared-scene update propagation vs room size",
		"members", "updates", "deliveries", "p50_ms", "p99_ms", "converged")
	for _, m := range memberCounts {
		if err := runSceneRow(p, t, m, updates); err != nil {
			return nil, err
		}
	}
	t.AddNote("propagation = Publish call to pushed event arrival, across all members (publisher included)")
	t.AddNote("converged = every member's version vector equals the publisher's at quiesce")
	return t, nil
}

func runSceneRow(p Params, t *Table, members, updates int) error {
	h, err := newQoSHarness(p, WithWorkers(4))
	if err != nil {
		return err
	}
	defer h.Close()

	// t0[i] is when update i was published, stamped (atomically — the
	// member goroutines read it on arrival) before the publish ships.
	t0 := make([]atomic.Int64, updates)

	clients := []*Client{h.Client}
	for i := 1; i < members; i++ {
		cli, err := h.Dial()
		if err != nil {
			return err
		}
		defer cli.Close()
		clients = append(clients, cli)
	}
	scenes := make([]*Scene, len(clients))
	for i, cli := range clients {
		sc, err := cli.JoinScene(h.ctx, "bench", WithSceneWindow(updates+1))
		if err != nil {
			return fmt.Errorf("coic: scene row %d members: join: %w", members, err)
		}
		scenes[i] = sc
	}

	// Every member (the publisher too — its own update comes back as a
	// push) records each update's propagation delay.
	hist := &metrics.Histogram{}
	var histMu sync.Mutex
	var wg sync.WaitGroup
	for _, sc := range scenes {
		wg.Add(1)
		go func(sc *Scene) {
			defer wg.Done()
			seen := 0
			for ev := range sc.Events() {
				var idx int
				if _, err := fmt.Sscanf(ev.Key, "u%d", &idx); err != nil || idx >= updates {
					continue
				}
				d := time.Duration(time.Now().UnixNano() - t0[idx].Load())
				histMu.Lock()
				hist.Record(d)
				histMu.Unlock()
				if seen++; seen == updates {
					return
				}
			}
		}(sc)
	}

	pub := scenes[0]
	for i := 0; i < updates; i++ {
		t0[i].Store(time.Now().UnixNano())
		if _, err := pub.Publish(h.ctx, fmt.Sprintf("u%d", i), []byte{byte(i)}); err != nil {
			return fmt.Errorf("coic: scene row %d members: publish: %w", members, err)
		}
		time.Sleep(2 * time.Millisecond) // display-rate pacing
	}
	wg.Wait() // every member saw every update

	want := pub.VersionVector()
	converged := true
	for _, sc := range scenes {
		if !maps.Equal(sc.VersionVector(), want) {
			converged = false
		}
	}
	t.AddRow(members, updates, hist.Count(),
		msCol(hist.Median()), msCol(hist.P99()), converged)
	return nil
}
