package coic

// End-to-end tests for gossip membership at the public surface: a
// gossiped edge exposes its ring version, member counts and migration
// counter through /metrics (promlint-clean) in agreement with
// ServerStats, and declaring a static fleet while asking for discovery
// is rejected at Serve.

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/obs"
)

func TestGossipEdgeExposesMembershipMetrics(t *testing.T) {
	p := testConfig().Params
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go NewCloudServer(WithListener(cloudLn), WithServeParams(p)).Serve(ctx)

	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A seed node: gossips as itself with nobody to contact, booting on a
	// single-member ring it would grow as joiners find it.
	self := edgeLn.Addr().String()
	edge := NewEdgeServer(
		WithListener(edgeLn),
		WithServeParams(p),
		WithCloud(cloudLn.Addr().String()),
		WithGossip(self),
		WithReplication(2),
	)
	go edge.Serve(ctx)

	ops := httptest.NewServer(edge.OpsHandler())
	defer ops.Close()

	cli := streamClient(t, self)
	defer cli.Close()
	if _, err := cli.Render(AnnotationModelID(ClassTree)); err != nil {
		t.Fatalf("render through a gossiped edge: %v", err)
	}

	var metrics map[string]float64
	waitForStats(t, "membership metrics to appear", func() bool {
		status, body := scrape(t, ops.URL, "/metrics")
		if status != http.StatusOK {
			t.Fatalf("/metrics status = %d", status)
		}
		metrics = parseMetrics(t, body)
		return metrics["coic_member_alive"] == 1
	})
	for sample, want := range map[string]float64{
		"coic_member_alive":         1,
		"coic_member_suspect":       0,
		"coic_member_dead":          0,
		"coic_migration_keys_total": 0, // nobody joined, nothing re-homed
	} {
		if got, ok := metrics[sample]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", sample, got, ok, want)
		}
	}
	if metrics["coic_ring_version"] < 1 {
		t.Errorf("coic_ring_version = %v, want >= 1 on a gossiped edge", metrics["coic_ring_version"])
	}

	// The scrape must agree with the server's own counters.
	stats := edge.Stats()
	if float64(stats.RingVersion) != metrics["coic_ring_version"] {
		t.Errorf("ServerStats.RingVersion = %d, /metrics says %v", stats.RingVersion, metrics["coic_ring_version"])
	}
	if stats.MembersAlive != 1 {
		t.Errorf("ServerStats.MembersAlive = %d, want 1", stats.MembersAlive)
	}
	if stats.MigratedKeys != 0 {
		t.Errorf("ServerStats.MigratedKeys = %d, want 0", stats.MigratedKeys)
	}

	// The new families must be exposition-clean alongside everything else.
	_, body := scrape(t, ops.URL, "/metrics")
	if problems := obs.Lint(strings.NewReader(body)); len(problems) > 0 {
		t.Errorf("metrics payload fails lint: %v", problems)
	}
}

// TestGossipAndFederationAreMutuallyExclusive pins the configuration
// guard: an edge must either declare its fleet (WithFederation) or
// discover it (WithGossip), never both — silently preferring one would
// hide an operator error.
func TestGossipAndFederationAreMutuallyExclusive(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	self := ln.Addr().String()
	edge := NewEdgeServer(
		WithListener(ln),
		WithServeParams(testConfig().Params),
		WithCloud("localhost:1"),
		WithFederation(self, "127.0.0.1:2"),
		WithGossip(self),
	)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = edge.Serve(ctx)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("Serve with both topologies = %v, want mutually-exclusive error", err)
	}
}
