package coic

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/edge-immersion/coic/internal/core"
	"github.com/edge-immersion/coic/internal/wire"
)

// This file is the streaming client surface: a real Client type over a
// demultiplexed connection, built by NewClient from DialOptions. The v1
// Dial / DialContext entry points remain as deprecated wrappers, and the
// v1 per-task methods (RecognizeContext / RenderContext / PanoContext
// and their context-free forms) are preserved on the new type — they are
// one-request windows over the same connection. Continuous workloads
// should open a Stream (stream.go) instead.

// DialOption configures a Client built by NewClient.
type DialOption func(*dialConfig) error

type dialConfig struct {
	params      Params
	paramsSet   bool
	mode        Mode
	shape       ShapeSpec
	clientID    int
	tenant      string
	tenantToken string
}

// WithDialParams overrides the reproduction parameters the client runs
// with (DefaultParams() otherwise). The client's DNN trunk must match the
// serving tier's for descriptors to be comparable.
func WithDialParams(p Params) DialOption {
	return func(c *dialConfig) error { c.params = p; c.paramsSet = true; return nil }
}

// WithDialMode selects the execution mode announced at connection time:
// ModeCoIC (default) or the paper's ModeOrigin baseline.
func WithDialMode(m Mode) DialOption {
	return func(c *dialConfig) error { c.mode = m; return nil }
}

// WithDialShape conditions the client→edge link with a tc-style spec
// (the B_M→E knob); empty means unshaped.
func WithDialShape(spec ShapeSpec) DialOption {
	return func(c *dialConfig) error { c.shape = spec; return nil }
}

// WithClientID distinguishes this client in multi-user runs; it seeds
// nothing security-relevant (identity is not authenticated).
func WithClientID(id int) DialOption {
	return func(c *dialConfig) error { c.clientID = id; return nil }
}

// WithTenant authenticates the connection as tenant id with token. The
// claim travels in the versioned hello and the server validates it
// before serving any request: a bad token fails NewClient with the
// server's error. Connections without WithTenant run as the server's
// default tenant, which is also where every legacy (pre-hello-v1)
// client lands — so tenanted and tenantless clients share one edge.
// The token is required only for tenants the server configured with
// one (TenantConfig.Token); pass "" otherwise.
func WithTenant(id, token string) DialOption {
	return func(c *dialConfig) error {
		c.tenant = id
		c.tenantToken = token
		return nil
	}
}

// Client drives requests against a live edge over TCP, measuring
// wall-clock latency (the role of the paper's Pixel phone). The
// connection is demultiplexed: any number of requests may be in flight,
// matched to their replies by request ID, so one Client supports both
// the lock-step per-task methods and any number of concurrent Streams.
// Build one with NewClient; the exported fields mirror the v1 client.
type Client struct {
	// Client is the on-device half: frame capture, descriptor
	// extraction, model loading and drawing, panorama cropping.
	Client *core.Client
	// Mode is the execution mode announced at connection time.
	Mode Mode

	mux *core.MuxClient

	// Open shared-scene memberships, keyed by scene name; lazily built on
	// the first JoinScene, which also installs the push handler (scene.go).
	sceneMu sync.Mutex
	scenes  map[string]*Scene
}

// NewClient connects a mobile client to a running edge. ctx bounds the
// dial and hello exchange only; per-request cancellation is the ctx on
// each method or Submit call.
func NewClient(ctx context.Context, edgeAddr string, opts ...DialOption) (*Client, error) {
	cfg := dialConfig{mode: ModeCoIC}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if !cfg.paramsSet {
		cfg.params = DefaultParams()
	}
	wrap, err := cfg.shape.wrapper()
	if err != nil {
		return nil, err
	}
	mux, err := core.DialMuxEdgeTenant(ctx, edgeAddr, core.NewClient(cfg.clientID, cfg.params), cfg.mode, wrap,
		cfg.tenant, cfg.tenantToken)
	if err != nil {
		return nil, err
	}
	return &Client{Client: mux.Client, Mode: cfg.mode, mux: mux}, nil
}

// Close releases the connection; in-flight requests and open streams
// fail promptly.
func (c *Client) Close() error { return c.mux.Close() }

// ErrOverloaded reports a request rejected by server admission control
// (the connection's worker pool and queue were full of live work). The
// connection stays healthy; retry after backing off.
var ErrOverloaded = errors.New("coic: server overloaded")

// ErrQuotaExceeded reports a request rejected by the connection's
// per-tenant admission quota (TenantConfig.Rate): the tenant's token
// bucket was empty. The connection stays healthy and other tenants are
// unaffected; retry after the bucket refills.
var ErrQuotaExceeded = errors.New("coic: tenant quota exceeded")

// mapRemoteErr converts protocol error codes into the package's typed
// errors so callers can errors.Is against semantics, not numbers.
func mapRemoteErr(err error) error {
	if err == nil {
		return nil
	}
	var re *core.RemoteError
	if !errors.As(err, &re) {
		return err
	}
	switch re.Code {
	case wire.CodeDeadlineExceeded:
		return fmt.Errorf("%w: shed at the edge: %s", ErrDeadlineExceeded, re.Msg)
	case wire.CodeOverloaded:
		return fmt.Errorf("%w: %s", ErrOverloaded, re.Msg)
	case wire.CodeQuotaExceeded:
		return fmt.Errorf("%w: %s", ErrQuotaExceeded, re.Msg)
	case wire.CodeCanceled:
		return fmt.Errorf("request canceled remotely: %s: %w", re.Msg, context.Canceled)
	default:
		return err
	}
}

// RecognizeContext captures a frame, extracts the descriptor (CoIC
// mode), ships the request and returns the result with measured
// wall-clock latency, honouring ctx for cancellation and deadline.
func (c *Client) RecognizeContext(ctx context.Context, class Class, viewSeed uint64) (wire.RecognitionResult, time.Duration, error) {
	start := time.Now()
	msg, err := c.mux.BuildRecognize(class, viewSeed, wire.QoSBestEffort, time.Time{}, 0)
	if err != nil {
		return wire.RecognitionResult{}, 0, err
	}
	reply, err := c.mux.RoundTrip(ctx, msg)
	if err != nil {
		return wire.RecognitionResult{}, 0, mapRemoteErr(err)
	}
	res, _, err := c.mux.FinishRecognize(reply)
	return res, time.Since(start), mapRemoteErr(err)
}

// Recognize is RecognizeContext without cancellation.
func (c *Client) Recognize(class Class, viewSeed uint64) (wire.RecognitionResult, time.Duration, error) {
	return c.RecognizeContext(context.Background(), class, viewSeed)
}

// RenderContext fetches, loads and draws a model, returning measured
// latency, honouring ctx for cancellation and deadline.
func (c *Client) RenderContext(ctx context.Context, modelID string) (time.Duration, error) {
	start := time.Now()
	msg, err := c.mux.BuildRender(modelID, wire.QoSBestEffort, time.Time{}, 0)
	if err != nil {
		return 0, err
	}
	reply, err := c.mux.RoundTrip(ctx, msg)
	if err != nil {
		return 0, mapRemoteErr(err)
	}
	if _, err := c.mux.FinishRender(reply); err != nil {
		return 0, mapRemoteErr(err)
	}
	return time.Since(start), nil
}

// Render is RenderContext without cancellation.
func (c *Client) Render(modelID string) (time.Duration, error) {
	return c.RenderContext(context.Background(), modelID)
}

// PanoContext fetches a panoramic frame and crops the viewport,
// returning measured latency, honouring ctx for cancellation and
// deadline.
func (c *Client) PanoContext(ctx context.Context, videoID string, frameIdx int, vp Viewport) (time.Duration, error) {
	start := time.Now()
	msg, err := c.mux.BuildPano(videoID, frameIdx, wire.QoSBestEffort, time.Time{}, 0)
	if err != nil {
		return 0, err
	}
	reply, err := c.mux.RoundTrip(ctx, msg)
	if err != nil {
		return 0, mapRemoteErr(err)
	}
	if _, err := c.mux.FinishPano(reply, vp); err != nil {
		return 0, mapRemoteErr(err)
	}
	return time.Since(start), nil
}

// Pano is PanoContext without cancellation.
func (c *Client) Pano(videoID string, frameIdx int, vp Viewport) (time.Duration, error) {
	return c.PanoContext(context.Background(), videoID, frameIdx, vp)
}
