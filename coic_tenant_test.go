package coic

// Multi-tenant tests at the public surface: the fairness ablation's
// ordering (pooled degrades, fair and quota hold the victim near its
// uncontended floor), legacy-hello interop (a pre-tenant client against
// a tenant-aware edge), and token authentication on the handshake. All
// run under -race in CI.

import (
	"context"
	"errors"
	"net"
	"strconv"
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/wire"
)

// noisyRows runs the noisy-neighbor ablation and indexes its rows by the
// isolation column.
func noisyRows(t *testing.T, victimN int, budget time.Duration) map[string][]string {
	t.Helper()
	tab, err := RunNoisyNeighbor(testConfig().Params, victimN, budget)
	if err != nil {
		t.Fatal(err)
	}
	rows := make(map[string][]string)
	for _, r := range tab.Rows() {
		rows[r[0]] = r
	}
	return rows
}

func cellFloat(t *testing.T, row []string, idx int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(row[idx], 64)
	if err != nil {
		t.Fatalf("row %v cell %d: %v", row, idx, err)
	}
	return v
}

// TestTenantFairShareUnderFlood is the tentpole acceptance test: with a
// competing tenant flooding best-effort misses from its own connection,
// weighted fair-share keeps the victim tenant's interactive p99 within
// 2x of its uncontended floor, while the pooled (tenantless) edge lets
// the flood own every upstream slot. Thresholds carry slack for -race
// and loaded CI hosts; the structural gap they witness is ~5x vs ~1x.
func TestTenantFairShareUnderFlood(t *testing.T) {
	const victimN = 20
	rows := noisyRows(t, victimN, 150*time.Millisecond)
	const (
		p99Col      = 3
		admittedCol = 5
		rejectedCol = 7
	)
	solo := cellFloat(t, rows["solo"], p99Col)
	pooled := cellFloat(t, rows["pooled"], p99Col)
	fair := cellFloat(t, rows["fair"], p99Col)
	quota := cellFloat(t, rows["quota"], p99Col)
	t.Logf("victim p99 ms: solo %.1f, pooled %.1f, fair %.1f, quota %.1f", solo, pooled, fair, quota)

	// The acceptance bound is 2x the uncontended floor. Under the race
	// detector the flooded rows pay heavy instrumentation overhead on
	// top of scheduling, so the bound widens: the ordering, not the
	// exact ratio, is what -race is here to witness.
	ratio, slack := 2.0, 15.0
	if raceEnabled {
		ratio, slack = 6.0, 60.0
	}

	// The victim's paced interactive stream must be admitted in full in
	// every row — fairness must not come from shedding the victim.
	for name, row := range rows {
		if got := cellFloat(t, row, admittedCol); got != victimN {
			t.Errorf("%s row: victim admitted %v of %d requests", name, got, victimN)
		}
	}

	// Isolation holds: fair stays within the bound of the uncontended
	// floor (absolute slack absorbs scheduler jitter at ms scale).
	if limit := ratio*solo + slack; fair > limit {
		t.Errorf("fair p99 %.1fms exceeds %.0fx solo floor %.1fms (+%.0fms slack)", fair, ratio, solo, slack)
	}
	if limit := ratio*solo + slack; quota > limit {
		t.Errorf("quota p99 %.1fms exceeds %.0fx solo floor %.1fms (+%.0fms slack)", quota, ratio, solo, slack)
	}
	// The pooled edge visibly degrades — the contrast fairness buys.
	if pooled < 1.5*fair {
		t.Errorf("pooled p99 %.1fms not clearly worse than fair %.1fms — flood had no effect", pooled, fair)
	}
	// The quota row actually rejected flood admissions.
	if got := cellFloat(t, rows["quota"], rejectedCol); got == 0 {
		t.Error("quota row rejected nothing — the noisy bucket never emptied")
	}
}

// TestParseTenantQuota covers the daemons' -tenant-quota flag grammar.
func TestParseTenantQuota(t *testing.T) {
	name, cfg, err := ParseTenantQuota("acme:token=s3cret,rate=100,burst=20,weight=4,cache=1048576")
	if err != nil {
		t.Fatal(err)
	}
	want := TenantConfig{Token: "s3cret", Rate: 100, Burst: 20, Weight: 4, CacheBytes: 1 << 20}
	if name != "acme" || cfg != want {
		t.Fatalf("got %q %+v, want acme %+v", name, cfg, want)
	}

	name, cfg, err = ParseTenantQuota("guest")
	if err != nil || name != "guest" || cfg != (TenantConfig{}) {
		t.Fatalf("bare name: got %q %+v, %v", name, cfg, err)
	}

	for _, bad := range []string{"", ":rate=1", "a:rate", "a:rate=x", "a:speed=9"} {
		if _, _, err := ParseTenantQuota(bad); err == nil {
			t.Errorf("ParseTenantQuota(%q) accepted", bad)
		}
	}
}

// TestLegacyHelloRunsAsDefaultTenant speaks the pre-tenant wire protocol
// by hand — a version-0 one-byte hello, then a pano fetch — against an
// edge with tenants configured, and asserts the connection runs as the
// default tenant with its traffic admitted and accounted there.
func TestLegacyHelloRunsAsDefaultTenant(t *testing.T) {
	p := testConfig().Params
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go NewCloudServer(WithListener(cloudLn), WithServeParams(p)).Serve(ctx)

	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	edge := NewEdgeServer(
		WithListener(edgeLn),
		WithServeParams(p),
		WithCloud(cloudLn.Addr().String()),
		WithTenantQuota("victim", TenantConfig{Token: "tok", Weight: 4}),
	)
	go edge.Serve(ctx)

	conn, err := net.Dial("tcp", edgeLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	// The legacy preamble: exactly the bytes a pre-tenant client sent.
	helloBody, err := wire.Hello{Version: 0, Mode: wire.HelloModeCoIC}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(helloBody) > 2 {
		t.Fatalf("legacy hello body is %d bytes, want the old 0-2 byte form", len(helloBody))
	}
	if err := wire.WriteMessage(conn, wire.Message{Type: wire.MsgHello, RequestID: 1, Body: helloBody}); err != nil {
		t.Fatal(err)
	}
	fetch, err := wire.PanoFetch{VideoID: "legacy-vid", FrameIndex: 3}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteMessage(conn, wire.Message{Type: wire.MsgPanoFetch, RequestID: 2, Body: fetch}); err != nil {
		t.Fatal(err)
	}

	for {
		msg, err := wire.ReadMessage(conn)
		if err != nil {
			t.Fatalf("reading reply: %v", err)
		}
		if msg.RequestID == 1 {
			continue // hello ack
		}
		if msg.RequestID != 2 {
			t.Fatalf("unexpected reply id %d (type %v)", msg.RequestID, msg.Type)
		}
		if msg.Type != wire.MsgPanoReply {
			t.Fatalf("pano fetch answered with %v", msg.Type)
		}
		pr, err := wire.UnmarshalPanoReply(msg.Body)
		if err != nil {
			t.Fatal(err)
		}
		if len(pr.Data) == 0 {
			t.Fatal("empty pano frame")
		}
		break
	}

	stats := edge.Stats()
	def := stats.Tenants[DefaultTenant]
	if def.AdmittedBestEffort+def.AdmittedInteractive == 0 {
		t.Fatalf("legacy connection's traffic not accounted to %q: %+v", DefaultTenant, stats.Tenants)
	}
}

// TestTenantTokenHandshake dials with WithTenant against an edge whose
// tenant requires a token: the right token connects and the tenant's
// traffic lands in its own stats bucket; the wrong token is refused at
// the handshake.
func TestTenantTokenHandshake(t *testing.T) {
	p := testConfig().Params
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go NewCloudServer(WithListener(cloudLn), WithServeParams(p)).Serve(ctx)

	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	edge := NewEdgeServer(
		WithListener(edgeLn),
		WithServeParams(p),
		WithCloud(cloudLn.Addr().String()),
		WithTenantQuota("acme", TenantConfig{Token: "opensesame"}),
	)
	go edge.Serve(ctx)
	addr := edgeLn.Addr().String()

	if _, err := NewClient(ctx, addr, WithDialParams(p), WithTenant("acme", "wrong")); err == nil {
		t.Fatal("bad token connected")
	}

	cli, err := NewClient(ctx, addr, WithDialParams(p), WithTenant("acme", "opensesame"))
	if err != nil {
		t.Fatalf("good token refused: %v", err)
	}
	defer cli.Close()
	if _, err := cli.PanoContext(ctx, "vid-a", 1, Viewport{FOV: 1.6}); err != nil {
		t.Fatal(err)
	}
	if got := edge.Stats().Tenants["acme"]; got.AdmittedInteractive+got.AdmittedBestEffort == 0 {
		t.Fatalf("acme traffic not accounted: %+v", edge.Stats().Tenants)
	}
}

// TestTenantQuotaRejectionSurfacesToClient floods past a tiny bucket and
// checks the client sees ErrQuotaExceeded while the edge counts the
// rejections against the tenant.
func TestTenantQuotaRejectionSurfacesToClient(t *testing.T) {
	p := testConfig().Params
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go NewCloudServer(WithListener(cloudLn), WithServeParams(p)).Serve(ctx)

	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	edge := NewEdgeServer(
		WithListener(edgeLn),
		WithServeParams(p),
		WithCloud(cloudLn.Addr().String()),
		WithTenantQuota("metered", TenantConfig{Rate: 0.001, Burst: 2}),
	)
	go edge.Serve(ctx)

	cli, err := NewClient(ctx, edgeLn.Addr().String(), WithDialParams(p), WithTenant("metered", ""))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var rejected bool
	for i := 0; i < 10; i++ {
		_, err := cli.PanoContext(ctx, "vid-q", i, Viewport{FOV: 1.6})
		if errors.Is(err, ErrQuotaExceeded) {
			rejected = true
			break
		}
		if err != nil {
			t.Fatalf("fetch %d: unexpected error %v", i, err)
		}
	}
	if !rejected {
		t.Fatal("no fetch rejected with ErrQuotaExceeded past a burst of 2")
	}
	if got := edge.Stats().QuotaRejections; got == 0 {
		t.Fatal("edge counted no quota rejections")
	}
}
