package coic

import "github.com/edge-immersion/coic/internal/cache"

// This file is the v2 observability surface: one coherent snapshot
// struct instead of the v1 tuple-returning methods (whose CacheStats
// silently discarded the similarity-hit counter of the edge cache).

// Re-exported counter types: the public API speaks these names; the
// internal packages own the implementations.
type (
	// InflightStats counts miss-coalescing outcomes (wall-clock TCP
	// serving joins these through the edge's in-flight table).
	InflightStats = cache.InflightStats
	// FederationStats counts cooperative peer-lookup outcomes.
	FederationStats = cache.FederationStats
	// TenantCacheStats counts one tenant's cache traffic and resident
	// footprint (lookups are tenant-blind — a hit on another tenant's
	// entry still counts as this tenant's hit — while bytes are owned by
	// whichever tenant inserted the entry).
	TenantCacheStats = cache.TenantCacheStats
)

// StoreStats describes the edge cache's resident state and raw store
// traffic.
type StoreStats struct {
	// BytesUsed / Capacity are resident bytes versus the byte budget.
	BytesUsed int64
	Capacity  int64
	// Entries is how many results are resident.
	Entries int
	// Insertions / Evictions / Expirations count store churn.
	Insertions  uint64
	Evictions   uint64
	Expirations uint64
}

// QueryStats counts logical cache lookups — one outcome per query, which
// is what hit ratios are computed from. SimilarHits is the counter the
// deprecated CacheStats discarded: queries answered by a *different*
// descriptor within the similarity threshold, the cross-user redundancy
// the paper is built around.
type QueryStats struct {
	Queries     uint64
	ExactHits   uint64
	SimilarHits uint64
}

// HitRatio reports (exact+similar)/queries, or 0 with no traffic.
func (q QueryStats) HitRatio() float64 {
	if q.Queries == 0 {
		return 0
	}
	return float64(q.ExactHits+q.SimilarHits) / float64(q.Queries)
}

// QoSStats counts per-class traffic and deadline outcomes. For a
// virtual System it tallies Do calls (there is no queue to schedule in
// virtual time, so nothing sheds — misses are results that completed
// past their budget); the TCP servers' scheduler counters live in
// ServerStats instead.
type QoSStats struct {
	// Interactive / BestEffort count executed requests per class.
	Interactive uint64
	BestEffort  uint64
	// DeadlineMisses counts requests whose result completed after the
	// Request's Deadline budget (ErrDeadlineExceeded).
	DeadlineMisses uint64
}

// SystemStats is one coherent snapshot of a System's edge: the cache
// store, the logical query counters, the miss-coalescing table and the
// federation, taken together so related counters are mutually
// consistent enough for dashboards and tests.
type SystemStats struct {
	// Store is the resident cache state and raw store churn.
	Store StoreStats
	// Queries are the logical lookup counters (hit ratio lives here).
	Queries QueryStats
	// Inflight counts wall-clock miss coalescing (TCP serving); virtual
	// systems leave it zero.
	Inflight InflightStats
	// Federation counts peer cooperation; zero when standalone.
	Federation FederationStats
	// PrivacyBlocked counts hits withheld by the k-anonymity gate.
	PrivacyBlocked uint64
	// Coalesced counts virtual-time lookups that joined an in-flight
	// fetch (InflightCoalesce mode).
	Coalesced uint64
	// QoS counts per-class traffic and deadline misses (System.Do).
	QoS QoSStats
	// Tenants breaks cache traffic and resident bytes down by tenant,
	// read in the same lock epoch as Store and Queries so the per-tenant
	// ledger cannot skew against the totals. Tenantless traffic appears
	// under "default".
	Tenants map[string]TenantCacheStats
}

// Stats snapshots the system's edge-side counters. Store and query
// counters are read in one lock epoch (cache.StatsSnapshot), so the two
// sides cannot skew against each other under concurrent traffic.
func (s *System) Stats() SystemStats {
	snap := s.edge.Cache.StatsSnapshot()
	es := s.edge.Stats()
	out := SystemStats{
		Store: StoreStats{
			BytesUsed:   snap.Store.BytesUsed,
			Capacity:    snap.Capacity,
			Entries:     snap.Store.Entries,
			Insertions:  snap.Store.Insertions,
			Evictions:   snap.Store.Evictions,
			Expirations: snap.Store.Expirations,
		},
		Queries: QueryStats{
			Queries:     snap.Queries,
			ExactHits:   snap.ExactHits,
			SimilarHits: snap.SimilarHits,
		},
		Inflight:       s.edge.Inflight().Stats(),
		PrivacyBlocked: es.PrivacyBlocked,
		Coalesced:      es.Coalesced,
		QoS:            s.qos,
		Tenants:        snap.Tenants,
	}
	if fed := s.edge.Federation(); fed != nil {
		out.Federation = fed.Stats()
	}
	return out
}
