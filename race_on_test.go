//go:build race

package coic

// raceEnabled reports that this binary was built with -race. The
// fairness ablation test keeps running under the detector but with
// widened latency bounds: instrumentation slows the flooded data path
// ~5x, which inflates every row's tail without changing the ordering
// the test actually witnesses.
const raceEnabled = true
