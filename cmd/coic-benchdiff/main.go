// Command coic-benchdiff structurally compares two coic-bench -json
// artifacts. Absolute numbers in bench tables are runner-dependent, so a
// committed baseline cannot pin values; what it pins is the shape of the
// experiment: the set and order of tables, each table's columns, the
// number of rows and each row's key (its first cell — the sweep point).
// CI diffs every fresh bench table against the committed baseline, so an
// experiment that silently drops a sweep point, renames a column or
// reorders its output fails the build instead of drifting unnoticed.
//
// Exit status: 0 structures match, 1 structural drift (differences are
// listed), 2 usage or unreadable input.
//
// Usage:
//
//	coic-benchdiff BENCH_stream.json bench-qos.json
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/edge-immersion/coic/internal/metrics"
)

func load(path string) ([]metrics.TableJSON, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tables []metrics.TableJSON
	if err := json.Unmarshal(data, &tables); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tables, nil
}

// diff appends one line per structural difference between the baseline
// and current table lists.
func diff(base, cur []metrics.TableJSON) []string {
	var out []string
	if len(base) != len(cur) {
		out = append(out, fmt.Sprintf("table count: baseline has %d, current has %d", len(base), len(cur)))
	}
	n := min(len(base), len(cur))
	for i := 0; i < n; i++ {
		b, c := base[i], cur[i]
		at := fmt.Sprintf("table %d (%q)", i, b.Title)
		if b.Title != c.Title {
			out = append(out, fmt.Sprintf("%s: title changed to %q", at, c.Title))
			continue // rows of a different experiment are not comparable
		}
		if !equalStrings(b.Columns, c.Columns) {
			out = append(out, fmt.Sprintf("%s: columns %v -> %v", at, b.Columns, c.Columns))
		}
		if len(b.Rows) != len(c.Rows) {
			out = append(out, fmt.Sprintf("%s: row count %d -> %d", at, len(b.Rows), len(c.Rows)))
		}
		for r := 0; r < min(len(b.Rows), len(c.Rows)); r++ {
			bk, ck := rowKey(b.Rows[r]), rowKey(c.Rows[r])
			if bk != ck {
				out = append(out, fmt.Sprintf("%s row %d: key %q -> %q", at, r, bk, ck))
			}
		}
	}
	return out
}

func rowKey(row []string) string {
	if len(row) == 0 {
		return ""
	}
	return row[0]
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: coic-benchdiff <baseline.json> <current.json>")
		os.Exit(2)
	}
	base, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "coic-benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintf(os.Stderr, "coic-benchdiff: %v\n", err)
		os.Exit(2)
	}
	problems := diff(base, cur)
	if len(problems) > 0 {
		fmt.Printf("coic-benchdiff: %s and %s diverge structurally:\n", os.Args[1], os.Args[2])
		for _, p := range problems {
			fmt.Println("  " + p)
		}
		fmt.Println("If the experiment changed intentionally, regenerate the baseline:")
		fmt.Printf("  go run ./cmd/coic-bench -experiment qos,noisy,batch,scene,churn -json > %s\n", os.Args[1])
		os.Exit(1)
	}
	fmt.Printf("coic-benchdiff: %s matches the structure of %s (%d tables)\n", os.Args[2], os.Args[1], len(base))
}
