// Command coic-edge runs the CoIC mobile-edge tier: the IC cache plus
// miss forwarding to the cloud, served over TCP. The -cloud-shape flag
// plays the role of the paper's tc conditioning on the edge-cloud link.
//
// Usage:
//
//	coic-edge -listen :9091 -cloud localhost:9090 -cloud-shape "rate 20mbit delay 10ms"
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	coic "github.com/edge-immersion/coic"
)

func main() {
	listen := flag.String("listen", ":9091", "address to serve clients on")
	cloud := flag.String("cloud", "localhost:9090", "cloud address to forward misses to")
	cloudShape := flag.String("cloud-shape", "", `tc-style spec for the edge->cloud link, e.g. "rate 20mbit delay 10ms"`)
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("coic-edge: %v", err)
	}
	fmt.Printf("coic-edge: serving on %s, cloud at %s\n", ln.Addr(), *cloud)
	if err := coic.ServeEdge(ln, coic.DefaultParams(), *cloud, coic.ShapeSpec(*cloudShape)); err != nil {
		log.Fatalf("coic-edge: %v", err)
	}
}
