// Command coic-edge runs the CoIC mobile-edge tier: the IC cache plus
// miss forwarding to the cloud, served over TCP. The -cloud-shape flag
// plays the role of the paper's tc conditioning on the edge-cloud link.
//
// With -peers, the edge joins a cache federation: the listed edges and
// this one partition the descriptor keyspace via consistent hashing, a
// local miss probes the key's home edge before paying for the cloud, and
// fresh results are published to their home. Every member must list every
// other member, and -self must be this edge's address exactly as the
// others list it.
//
// With -gossip-seeds, membership is discovered instead of declared: the
// edge joins by contacting any listed seed (a seed node lists itself and
// waits to be found), learns the fleet over SWIM-lite gossip, rebuilds
// the consistent-hash ring on every join, failure or leave, and migrates
// cached keys whose ownership moved. -rf replicates each published key
// across that many ring owners so one member's death loses nothing.
// SIGTERM decommissions gracefully: home keys drain to their successors
// and a member-leave broadcast retires this edge without a suspicion
// phase.
//
// Each client connection is served pipelined by a bounded worker pool
// (-workers / -queue) behind a deadline-aware scheduler: queued requests
// dispatch strictly by QoS class (interactive before best-effort),
// earliest-deadline-first within a class, and a request whose wall-clock
// deadline passed while queued is shed unexecuted — no worker, no cloud
// fetch (admission/shed counters print at shutdown). Concurrent misses
// on the same descriptor coalesce into one cloud fetch, and every fetch
// is bounded by -fetch-timeout so a hung cloud sheds load instead of
// wedging connections. A client's MsgCancel frame (or disconnect)
// cancels its in-flight requests, and a coalesced fetch aborts when its
// last waiter departs.
//
// With -http, the edge also serves a live operations plane on a sidecar
// HTTP listener: Prometheus text metrics at /metrics, liveness at
// /healthz, readiness at /readyz (listener up AND the cloud reachable),
// the slow/failed request ring at /debug/requests, and net/http/pprof
// under /debug/pprof/. The wire protocol and the ops plane never share
// a port.
//
// SIGINT/SIGTERM triggers graceful shutdown: the listener closes,
// in-flight requests drain, replies flush, then the process exits.
//
// Usage:
//
//	coic-edge -listen :9091 -cloud localhost:9090 -cloud-shape "rate 20mbit delay 10ms"
//	coic-edge -listen :9091 -self localhost:9091 -peers localhost:9092,localhost:9093
//	coic-edge -listen :9091 -workers 32 -queue 128 -fetch-timeout 5s
//	coic-edge -listen :9091 -http :9191 -slow 250ms
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	coic "github.com/edge-immersion/coic"
)

func main() {
	listen := flag.String("listen", ":9091", "address to serve clients on")
	cloud := flag.String("cloud", "localhost:9090", "cloud address to forward misses to")
	cloudShape := flag.String("cloud-shape", "", `tc-style spec for the edge->cloud link, e.g. "rate 20mbit delay 10ms"`)
	peers := flag.String("peers", "", "comma-separated peer edge addresses to federate with (static membership)")
	self := flag.String("self", "", "this edge's advertised address in the federation (required with -peers or -gossip-seeds; must be how other members dial this edge)")
	gossipSeeds := flag.String("gossip-seeds", "", "comma-separated seed addresses for gossip-discovered federation membership; a seed node lists itself")
	rf := flag.Int("rf", 0, "federation replication factor: copies of each published key across ring owners (0 or 1 = home only)")
	workers := flag.Int("workers", 0, "concurrent requests per client connection (0 = default)")
	queue := flag.Int("queue", 0, "requests buffered per connection before overload replies (0 = default)")
	batch := flag.Int("batch", 0, "max exec requests one worker dispatches together, coalescing duplicates and bursting misses upstream (0 or 1 = serial)")
	batchSlack := flag.Duration("batch-slack", 2*time.Millisecond, "longest a best-effort request waits for batchmates (interactive never waits); needs -batch")
	fetchTimeout := flag.Duration("fetch-timeout", 0, "per-fetch cloud timeout (0 = default)")
	httpAddr := flag.String("http", "", "ops sidecar address for /metrics, /healthz, /readyz, /debug (empty = disabled)")
	slow := flag.Duration("slow", time.Second, "latency above which a successful request enters /debug/requests")
	var tenantOpts []coic.ServerOption
	flag.Func("tenant-quota", `tenant limits as "name:key=value,..." (keys: token, rate, burst, weight, cache); repeatable`, func(spec string) error {
		name, cfg, err := coic.ParseTenantQuota(spec)
		if err != nil {
			return err
		}
		tenantOpts = append(tenantOpts, coic.WithTenantQuota(name, cfg))
		return nil
	})
	flag.Func("tenant-weight", `tenant fair-share weight as "name=weight"; repeatable, merges with -tenant-quota`, func(spec string) error {
		name, val, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("%q is not name=weight", spec)
		}
		w, err := strconv.Atoi(val)
		if err != nil {
			return err
		}
		tenantOpts = append(tenantOpts, coic.WithTenantWeight(name, w))
		return nil
	})
	flag.Parse()

	splitAddrs := func(list string) []string {
		var out []string
		for _, p := range strings.Split(list, ",") {
			if p = strings.TrimSpace(p); p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	peerAddrs := splitAddrs(*peers)
	seedAddrs := splitAddrs(*gossipSeeds)
	if len(peerAddrs) > 0 && len(seedAddrs) > 0 {
		log.Fatal("coic-edge: -peers and -gossip-seeds are mutually exclusive — declare the fleet or discover it, not both")
	}
	// -self must be explicit: every member hashes the same address
	// strings into the ring, and a defaulted listen address like ":9091"
	// is neither dialable by peers nor equal to how they name this edge —
	// the federation would silently mis-home every key.
	if len(peerAddrs) > 0 && *self == "" {
		log.Fatal("coic-edge: -peers requires -self, the dialable address the other members list for this edge")
	}
	if len(seedAddrs) > 0 && *self == "" {
		log.Fatal("coic-edge: -gossip-seeds requires -self, the dialable address gossip advertises for this edge")
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("coic-edge: %v", err)
	}
	switch {
	case len(peerAddrs) > 0:
		fmt.Printf("coic-edge: serving on %s, cloud at %s, federated as %s with %v\n",
			ln.Addr(), *cloud, *self, peerAddrs)
	case len(seedAddrs) > 0:
		fmt.Printf("coic-edge: serving on %s, cloud at %s, gossiping as %s via seeds %v\n",
			ln.Addr(), *cloud, *self, seedAddrs)
	default:
		fmt.Printf("coic-edge: serving on %s, cloud at %s\n", ln.Addr(), *cloud)
	}
	opts := []coic.ServerOption{
		coic.WithListener(ln),
		coic.WithServeParams(coic.DefaultParams()),
		coic.WithCloud(*cloud),
		coic.WithCloudShape(coic.ShapeSpec(*cloudShape)),
		coic.WithWorkers(*workers),
		coic.WithQueueDepth(*queue),
		coic.WithBatch(*batch),
		coic.WithBatchSlack(*batchSlack),
		coic.WithFetchTimeout(*fetchTimeout),
		coic.WithSlowRequestThreshold(*slow),
	}
	opts = append(opts, tenantOpts...)
	if len(peerAddrs) > 0 {
		opts = append(opts, coic.WithFederation(*self, peerAddrs...))
	}
	if len(seedAddrs) > 0 {
		opts = append(opts, coic.WithGossip(*self, seedAddrs...))
	}
	if *rf > 1 {
		opts = append(opts, coic.WithReplication(*rf))
	}
	srv := coic.NewEdgeServer(opts...)
	if *httpAddr != "" {
		opsLn, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("coic-edge: ops listener: %v", err)
		}
		ops := &http.Server{Handler: srv.OpsHandler()}
		defer ops.Close()
		go func() {
			if err := ops.Serve(opsLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("coic-edge: ops plane: %v", err)
			}
		}()
		fmt.Printf("coic-edge: ops plane on http://%s/metrics\n", opsLn.Addr())
	}
	if err := srv.Serve(ctx); err != nil {
		log.Fatalf("coic-edge: %v", err)
	}
	st := srv.Stats()
	fmt.Printf("coic-edge: served %d interactive + %d best-effort requests, %d cloud fetches, shed %d expired deadlines, %d overloads\n",
		st.AdmittedInteractive, st.AdmittedBestEffort, st.CloudFetches, st.DeadlineSheds, st.Overloads)
	if st.Batches > 0 {
		fmt.Printf("coic-edge: executed %d batches carrying %d requests\n", st.Batches, st.BatchedRequests)
	}
	if len(seedAddrs) > 0 {
		fmt.Printf("coic-edge: decommissioned at ring version %d, %d keys migrated\n", st.RingVersion, st.MigratedKeys)
	}
	fmt.Println("coic-edge: shut down cleanly")
}
