package main

import (
	"bufio"
	"context"
	"net"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	coic "github.com/edge-immersion/coic"
	"github.com/edge-immersion/coic/internal/core"
	"github.com/edge-immersion/coic/internal/netsim"
)

// TestGracefulShutdownOnSIGINT is the daemon-level shutdown test: it runs
// the real main() in-process against a deliberately slow cloud, puts a
// request in flight, delivers an actual SIGINT to the process, and
// asserts that the request still completes (drained, not dropped), that
// main returns, and that it reports a clean shutdown.
func TestGracefulShutdownOnSIGINT(t *testing.T) {
	p := coic.DefaultParams()

	// A cloud whose link adds 500ms each way: the pano fetch below is in
	// flight for over a second, a wide window to interrupt inside.
	cloud := core.NewCloud(p)
	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cloudLn.Close()
	go (&core.CloudServer{
		Cloud: cloud,
		Wrap:  func(c net.Conn) net.Conn { return netsim.NewShaper(c, 0, 500*time.Millisecond) },
	}).Serve(cloudLn)

	// Run the real daemon entry point with its own argv, capturing stdout
	// to learn the ephemeral port and to observe the shutdown message.
	oldArgs, oldStdout := os.Args, os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Args = []string{"coic-edge", "-listen", "127.0.0.1:0", "-cloud", cloudLn.Addr().String()}
	os.Stdout = w
	defer func() { os.Args, os.Stdout = oldArgs, oldStdout }()

	lines := make(chan string, 16)
	var scanWg sync.WaitGroup
	scanWg.Add(1)
	go func() {
		defer scanWg.Done()
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()

	mainDone := make(chan struct{})
	go func() {
		defer close(mainDone)
		main()
	}()

	var addr string
	select {
	case line := <-lines:
		const marker = "serving on "
		i := strings.Index(line, marker)
		if i < 0 {
			t.Fatalf("unexpected startup line %q", line)
		}
		addr = line[i+len(marker):]
		if j := strings.Index(addr, ","); j >= 0 {
			addr = addr[:j]
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never announced its listen address")
	}

	cli, err := coic.DialContext(context.Background(), addr, p, coic.ModeCoIC, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	panoErr := make(chan error, 1)
	go func() {
		_, err := cli.Pano("shutdown-video", 1, coic.Viewport{Yaw: 0.3, FOV: 1.5})
		panoErr <- err
	}()
	// Give the request time to reach the edge and its cloud fetch to
	// start; the fetch itself then stays in flight for >1s.
	time.Sleep(300 * time.Millisecond)

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-panoErr:
		if err != nil {
			t.Fatalf("in-flight request lost during SIGINT shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("in-flight request never completed after SIGINT")
	}
	select {
	case <-mainDone:
	case <-time.After(15 * time.Second):
		t.Fatal("main did not return after SIGINT")
	}

	// New connections must be refused once shutdown has begun.
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("edge still accepting connections after shutdown")
	}

	w.Close()
	os.Stdout = oldStdout
	sawClean := false
	for line := range lines {
		if strings.Contains(line, "shut down cleanly") {
			sawClean = true
		}
	}
	scanWg.Wait()
	if !sawClean {
		t.Fatal("daemon did not report a clean shutdown")
	}
}
