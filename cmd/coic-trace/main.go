// Command coic-trace generates and inspects CoIC workload traces: the
// user populations, Zipf popularity and spatial locality behind the
// trace-driven experiments. Traces serialise as JSON lines, so they can
// be versioned, diffed and replayed.
//
// Usage:
//
//	coic-trace -users 16 -duration 60s -locality 0.7 > workload.jsonl
//	coic-trace -analyze workload.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/edge-immersion/coic/internal/trace"
)

func main() {
	users := flag.Int("users", 8, "population size")
	cells := flag.Int("cells", 4, "number of locations")
	duration := flag.Duration("duration", 30*time.Second, "trace length")
	rate := flag.Float64("rate", 1, "requests/second per user")
	objects := flag.Int("objects", 64, "object universe size")
	alpha := flag.Float64("alpha", 0.9, "Zipf popularity exponent")
	locality := flag.Float64("locality", 0.7, "probability of requesting the cell hot set")
	hotset := flag.Int("hotset", 8, "objects per cell hot set")
	move := flag.Float64("move", 0.05, "per-request relocation probability")
	interactive := flag.Float64("interactive", 0, "share of events tagged QoSInteractive (0..1) in the emitted JSONL; -analyze reports the split (replay paths do not consume the tag yet)")
	seed := flag.Uint64("seed", 1, "generator seed")
	analyze := flag.String("analyze", "", "analyze an existing JSONL trace instead of generating")
	flag.Parse()

	// SIGINT/SIGTERM aborts before the write phase so an interrupted run
	// never emits a truncated trace to stdout.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *analyze != "" {
		f, err := os.Open(*analyze)
		if err != nil {
			log.Fatalf("coic-trace: %v", err)
		}
		defer f.Close()
		events, err := trace.ReadJSONL(f)
		if err != nil {
			log.Fatalf("coic-trace: %v", err)
		}
		printStats(trace.Analyze(events))
		return
	}

	events, err := trace.Generate(trace.Config{
		Users: *users, Cells: *cells, Duration: *duration,
		RatePerUser: *rate, Objects: *objects, ZipfAlpha: *alpha,
		Locality: *locality, HotSetSize: *hotset, MoveProb: *move,
		TaskMix:          trace.TaskMix{Recognize: 0.5, Render: 0.3, Pano: 0.2},
		InteractiveShare: *interactive,
		Seed:             *seed,
	})
	if err != nil {
		log.Fatalf("coic-trace: %v", err)
	}
	if ctx.Err() != nil {
		log.Fatal("coic-trace: interrupted before writing; no partial trace emitted")
	}
	if err := trace.WriteJSONL(os.Stdout, events); err != nil {
		log.Fatalf("coic-trace: %v", err)
	}
	printStats(trace.Analyze(events))
}

func printStats(st trace.Stats) {
	fmt.Fprintf(os.Stderr, "events=%d users=%d unique_objects=%d span=%v redundancy=%.1f%% interactive=%d\n",
		st.Events, st.Users, st.UniqueObjs, st.Duration.Round(time.Millisecond), st.RedundantPct, st.Interactive)
	for task, n := range st.PerTask {
		fmt.Fprintf(os.Stderr, "  %-10s %d\n", task, n)
	}
}
