// Command coic-promlint validates a Prometheus text exposition payload —
// the promtool-style gate CI runs against a live /metrics endpoint
// without pulling the Prometheus toolchain into the module. It checks
// HELP/TYPE ordering, metric and label name syntax, histogram
// completeness (+Inf bucket, _sum, _count) and the counter _total naming
// convention (obs.Lint, the same checks the registry's own tests run).
//
// -require additionally asserts that named metric families are present
// with a nonzero total across their samples, which is how the CI smoke
// step proves real traffic flowed through the daemon it scraped.
//
// Exit status: 0 clean, 1 lint problems or a failed -require, 2 usage or
// fetch errors.
//
// Usage:
//
//	coic-promlint -url http://localhost:9191/metrics
//	coic-promlint -url http://localhost:9191/metrics -require coic_requests_total,coic_connections_total
//	curl -s http://localhost:9191/metrics | coic-promlint
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/edge-immersion/coic/internal/obs"
)

func main() {
	url := flag.String("url", "", "metrics endpoint to fetch (empty = read stdin)")
	require := flag.String("require", "", "comma-separated metric families that must be present with a nonzero total")
	flag.Parse()

	payload, err := fetch(*url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coic-promlint: %v\n", err)
		os.Exit(2)
	}

	failed := false
	if problems := obs.Lint(strings.NewReader(payload)); len(problems) > 0 {
		failed = true
		fmt.Printf("coic-promlint: %d lint problem(s):\n", len(problems))
		for _, p := range problems {
			fmt.Println("  " + p)
		}
	}

	totals := familyTotals(payload)
	for _, name := range strings.Split(*require, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		total, ok := totals[name]
		switch {
		case !ok:
			failed = true
			fmt.Printf("coic-promlint: required family %q is absent\n", name)
		case total == 0:
			failed = true
			fmt.Printf("coic-promlint: required family %q is present but zero across all samples\n", name)
		default:
			fmt.Printf("coic-promlint: %s total = %s\n", name, strconv.FormatFloat(total, 'g', -1, 64))
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("coic-promlint: payload clean")
}

func fetch(url string) (string, error) {
	if url == "" {
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
	client := http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// familyTotals sums sample values per metric family, ignoring lines the
// linter will already have flagged. Histogram series fold into their
// base family name so -require works on the family, not the suffix.
func familyTotals(payload string) map[string]float64 {
	totals := map[string]float64{}
	for _, line := range strings.Split(payload, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		} else if i := strings.IndexByte(name, ' '); i >= 0 {
			name = name[:i]
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		totals[name] += v
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				totals[strings.TrimSuffix(name, suffix)] += v
			}
		}
	}
	return totals
}
