// Command coic-client plays the mobile device against a live edge: it
// streams recognition, render or panorama requests and prints wall-clock
// latency statistics. The -shape flag conditions the client-edge link the
// way the paper's 802.11ac + tc setup does.
//
// Requests flow through the streaming API: up to -window are in flight
// at once and completions arrive out of order. -qos selects the service
// class the edge schedules the stream under, and -deadline attaches a
// per-request motion-to-photon budget — the edge sheds a request
// unexecuted if the budget expires while it queues (those show up as
// "late" below, mirrored by the edge's own shed counter).
//
// Every request travels under a trace ID that each tier logs: pass
// -request-id to pin a known base (request i goes out as base+i), or
// omit it and the stream mints random IDs, printed per completion —
// either way the printed trace=... token is greppable in the edge and
// cloud logs and /debug/requests rings.
//
// -scene switches the client to the collaborative surface: it joins the
// named shared scene and prints every server-pushed update with the
// publishing request's trace ID (the same trace=... token the tiers
// log). With -publish-rate it also writes -n updates into the scene at
// that rate; at 0 it listens until interrupted.
//
// SIGINT/SIGTERM cancels the run: in-flight requests are aborted with
// MsgCancel frames (the edge stops working on them) and the client exits
// after printing the statistics gathered so far.
//
// Usage:
//
//	coic-client -edge localhost:9091 -task recognize -n 20
//	coic-client -edge localhost:9091 -task pano -n 60 -window 8 -qos interactive -deadline 100ms
//	coic-client -edge localhost:9091 -task render -model scene/1073kb -mode origin
//	coic-client -edge localhost:9091 -scene lobby                       # listen
//	coic-client -edge localhost:9091 -scene lobby -publish-rate 5 -n 20 # write too
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	coic "github.com/edge-immersion/coic"
)

func main() {
	edge := flag.String("edge", "localhost:9091", "edge address")
	mode := flag.String("mode", "coic", "coic or origin")
	task := flag.String("task", "recognize", "recognize, render or pano")
	model := flag.String("model", "", "model id for -task render (default: per-class annotations)")
	video := flag.String("video", "demo-video", "video id for -task pano")
	n := flag.Int("n", 10, "number of requests")
	window := flag.Int("window", 4, "requests kept in flight (stream window)")
	qos := flag.String("qos", "besteffort", "service class: besteffort or interactive")
	deadline := flag.Duration("deadline", 0, "per-request wall-clock budget (0 = none); expired queued requests are shed at the edge")
	shape := flag.String("shape", "", `tc-style spec for the client->edge link, e.g. "rate 200mbit delay 1ms"`)
	reqID := flag.String("request-id", "", "base trace ID (decimal or 0x-hex); request i is sent as base+i and shows up under that ID in every tier's logs. Empty: the stream mints random IDs, printed per completion")
	tenant := flag.String("tenant", "", "tenant to authenticate as on the hello handshake (empty = the default tenant)")
	tenantToken := flag.String("tenant-token", "", "shared secret for -tenant, when the edge requires one")
	sceneName := flag.String("scene", "", "join this shared scene instead of streaming -task requests; pushed updates print their trace IDs")
	publishRate := flag.Float64("publish-rate", 0, "updates per second to publish into -scene (-n bounds the count; 0 = listen until interrupted)")
	flag.Parse()

	var traceBase uint64
	if *reqID != "" {
		var err error
		traceBase, err = strconv.ParseUint(*reqID, 0, 64)
		if err != nil || traceBase == 0 {
			log.Fatalf("coic-client: -request-id must be a nonzero decimal or 0x-hex uint64, got %q", *reqID)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	m := coic.ModeCoIC
	if *mode == "origin" {
		m = coic.ModeOrigin
	}
	var class coic.QoS
	switch *qos {
	case "besteffort":
		class = coic.QoSBestEffort
	case "interactive":
		class = coic.QoSInteractive
	default:
		log.Fatalf("coic-client: unknown -qos %q (besteffort or interactive)", *qos)
	}

	p := coic.DefaultParams()
	cli, err := coic.NewClient(ctx, *edge,
		coic.WithDialParams(p),
		coic.WithDialMode(m),
		coic.WithDialShape(coic.ShapeSpec(*shape)),
		coic.WithTenant(*tenant, *tenantToken))
	if err != nil {
		log.Fatalf("coic-client: %v", err)
	}
	defer cli.Close()

	if *sceneName != "" {
		runScene(ctx, cli, *sceneName, *publishRate, *n)
		return
	}

	stream, err := cli.Stream(ctx, coic.WithWindow(*window))
	if err != nil {
		log.Fatalf("coic-client: %v", err)
	}
	results := stream.Results()

	classes := []coic.Class{
		coic.ClassStopSign, coic.ClassCar, coic.ClassAvatar, coic.ClassTree,
	}
	buildReq := func(i int) (coic.Request, error) {
		var req coic.Request
		switch *task {
		case "recognize":
			req = coic.RecognizeTask(classes[i%len(classes)], uint64(1000+i))
		case "render":
			id := *model
			if id == "" {
				id = coic.AnnotationModelID(classes[i%len(classes)])
			}
			req = coic.RenderTask(id)
		case "pano":
			req = coic.PanoTask(*video, i, coic.Viewport{Yaw: float64(i) * 0.3, FOV: 1.6})
		default:
			return req, fmt.Errorf("unknown task %q", *task)
		}
		// The execution mode is connection-level (WithDialMode above);
		// only class, deadline and trace ID ride per-request on a stream.
		req = req.WithQoS(class)
		if *deadline > 0 {
			req = req.WithDeadline(*deadline)
		}
		if traceBase != 0 {
			req = req.WithTraceID(traceBase + uint64(i))
		}
		return req, nil
	}

	// Submit on one goroutine (window backpressure paces it), collect
	// out-of-order completions here.
	submitted := make(chan int, 1)
	go func() {
		sent := 0
		defer func() { submitted <- sent }()
		for i := 0; i < *n; i++ {
			req, err := buildReq(i)
			if err != nil {
				log.Fatalf("coic-client: %v", err)
			}
			if _, err := stream.Submit(ctx, req); err != nil {
				if ctx.Err() != nil {
					return // interrupted; in-flight requests are cancelled
				}
				log.Fatalf("coic-client: submit %d: %v", i, err)
			}
			sent++
		}
	}()

	var total, min, max time.Duration
	done, late, canceled, shed := 0, 0, 0, 0
	collect := func(comp coic.Completion) {
		// Every completion carries the trace ID the request travelled
		// under (the -request-id passthrough, or the stream-minted one) —
		// grep the edge/cloud logs and /debug/requests rings for it.
		trace := fmt.Sprintf("trace=%016x", comp.TraceID)
		switch {
		case errors.Is(comp.Err, coic.ErrDeadlineExceeded):
			late++
			fmt.Printf("late %-24s %8.1fms %s (budget %v blown)\n", comp.Request, ms(comp.Latency), trace, *deadline)
			return
		case errors.Is(comp.Err, context.Canceled):
			canceled++
			return
		case errors.Is(comp.Err, coic.ErrOverloaded):
			// Admission control rejected it: the run outpaced the edge's
			// workers+queue. Count it and keep measuring — aborting
			// would discard every statistic gathered so far.
			shed++
			fmt.Printf("shed %-24s %s (server overloaded; lower -window or raise edge -workers/-queue)\n", comp.Request, trace)
			return
		case comp.Err != nil:
			log.Fatalf("coic-client: %s: %v", comp.Request, comp.Err)
		}
		src := "cloud"
		if comp.Source == coic.SourceEdge {
			src = "edge"
		}
		if comp.Recognition != nil {
			fmt.Printf("done %-24s -> %-14s conf=%.2f  %8.1fms (%s) %s\n",
				comp.Request, comp.Recognition.Label, comp.Recognition.Confidence, ms(comp.Latency), src, trace)
		} else {
			fmt.Printf("done %-24s %8.1fms (%s) %s\n", comp.Request, ms(comp.Latency), src, trace)
		}
		done++
		total += comp.Latency
		if min == 0 || comp.Latency < min {
			min = comp.Latency
		}
		if comp.Latency > max {
			max = comp.Latency
		}
	}

	outstanding := -1 // unknown until the submitter reports
	received := 0
	for outstanding == -1 || received < outstanding {
		select {
		case sent := <-submitted:
			outstanding = sent
		case comp, ok := <-results:
			if !ok {
				outstanding = received
				break
			}
			collect(comp)
			received++
		}
	}
	if ctx.Err() != nil {
		fmt.Println("coic-client: interrupted; in-flight requests cancelled at the edge")
	}
	stream.Close()

	if done > 0 {
		fmt.Printf("\n%d done / %d late / %d overloaded / %d canceled (%s, %s, qos=%s, window=%d): mean=%.1fms min=%.1fms max=%.1fms\n",
			done, late, shed, canceled, *task, *mode, *qos, *window,
			ms(total/time.Duration(done)), ms(min), ms(max))
	} else {
		fmt.Printf("\n0 done / %d late / %d overloaded / %d canceled\n", late, shed, canceled)
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// runScene drives the collaborative surface: join the scene, print every
// pushed update (with its trace ID, like task completions), and — at a
// nonzero rate — publish n timestamped updates of our own. Our writes
// come back as pushes like everyone else's, so the printed stream is the
// converged view every member sees.
func runScene(ctx context.Context, cli *coic.Client, name string, rate float64, n int) {
	sc, err := cli.JoinScene(ctx, name)
	if err != nil {
		log.Fatalf("coic-client: join scene %q: %v", name, err)
	}
	entries, version := sc.Snapshot()
	fmt.Printf("joined scene %q: %d keys at version %d\n", name, len(entries), version)

	events := make(chan struct{})
	go func() {
		defer close(events)
		for ev := range sc.Events() {
			fmt.Printf("push %-24s = %-16q seq=%-6d v=%-6d trace=%016x\n",
				name+"/"+ev.Key, truncate(ev.Value, 16), ev.Seq, ev.Version, ev.TraceID)
		}
	}()

	published := 0
	if rate > 0 {
		tick := time.NewTicker(time.Duration(float64(time.Second) / rate))
		defer tick.Stop()
		for i := 0; i < n && ctx.Err() == nil; i++ {
			val := []byte(time.Now().Format(time.RFC3339Nano))
			if _, err := sc.Publish(ctx, fmt.Sprintf("k%d", i), val); err != nil {
				if ctx.Err() != nil {
					break
				}
				log.Fatalf("coic-client: publish: %v", err)
			}
			published++
			select {
			case <-tick.C:
			case <-ctx.Done():
			}
		}
		// Give our last write's push a beat to land before leaving.
		select {
		case <-time.After(200 * time.Millisecond):
		case <-ctx.Done():
		}
	} else {
		<-ctx.Done() // listen-only: run until interrupted
	}

	leaveCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	sc.Leave(leaveCtx)
	<-events
	_, version = sc.Snapshot()
	fmt.Printf("\nleft scene %q: %d published, mirror at version %d\n", name, published, version)
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		return string(b[:n]) + "…"
	}
	return string(b)
}
