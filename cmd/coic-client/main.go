// Command coic-client plays the mobile device against a live edge: it
// issues recognition, render or panorama requests and prints wall-clock
// latency statistics. The -shape flag conditions the client-edge link the
// way the paper's 802.11ac + tc setup does.
//
// SIGINT/SIGTERM cancels the run: an in-flight request is aborted with a
// MsgCancel frame (the edge stops working on it) and the client exits
// after printing the statistics gathered so far.
//
// Usage:
//
//	coic-client -edge localhost:9091 -task recognize -n 20
//	coic-client -edge localhost:9091 -task render -model scene/1073kb -mode origin
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"syscall"
	"time"

	coic "github.com/edge-immersion/coic"
)

func main() {
	edge := flag.String("edge", "localhost:9091", "edge address")
	mode := flag.String("mode", "coic", "coic or origin")
	task := flag.String("task", "recognize", "recognize, render or pano")
	model := flag.String("model", "", "model id for -task render (default: per-class annotations)")
	video := flag.String("video", "demo-video", "video id for -task pano")
	n := flag.Int("n", 10, "number of requests")
	shape := flag.String("shape", "", `tc-style spec for the client->edge link, e.g. "rate 200mbit delay 1ms"`)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	m := coic.ModeCoIC
	if *mode == "origin" {
		m = coic.ModeOrigin
	}
	p := coic.DefaultParams()
	cli, err := coic.DialContext(ctx, *edge, p, m, coic.ShapeSpec(*shape))
	if err != nil {
		log.Fatalf("coic-client: %v", err)
	}
	defer cli.Close()

	classes := []coic.Class{
		coic.ClassStopSign, coic.ClassCar, coic.ClassAvatar, coic.ClassTree,
	}
	var total, min, max time.Duration
	done := 0
	for i := 0; i < *n; i++ {
		var lat time.Duration
		var err error
		switch *task {
		case "recognize":
			class := classes[i%len(classes)]
			res, rlat, rerr := cli.RecognizeContext(ctx, class, uint64(1000+i))
			lat, err = rlat, rerr
			if err == nil {
				fmt.Printf("#%02d recognize %-14s -> %-14s conf=%.2f  %8.1fms\n",
					i, class, res.Label, res.Confidence, ms(lat))
			}
		case "render":
			id := *model
			if id == "" {
				id = coic.AnnotationModelID(classes[i%len(classes)])
			}
			lat, err = cli.RenderContext(ctx, id)
			if err == nil {
				fmt.Printf("#%02d render %-24s %8.1fms\n", i, id, ms(lat))
			}
		case "pano":
			lat, err = cli.PanoContext(ctx, *video, i, coic.Viewport{Yaw: float64(i) * 0.3, FOV: 1.6})
			if err == nil {
				fmt.Printf("#%02d pano %s frame %-4d %8.1fms\n", i, *video, i, ms(lat))
			}
		default:
			log.Fatalf("coic-client: unknown task %q", *task)
		}
		if errors.Is(err, context.Canceled) {
			fmt.Println("coic-client: interrupted; in-flight request cancelled at the edge")
			break
		}
		if err != nil {
			log.Fatalf("coic-client: request %d: %v", i, err)
		}
		done++
		total += lat
		if min == 0 || lat < min {
			min = lat
		}
		if lat > max {
			max = lat
		}
	}
	if done == 0 {
		return
	}
	fmt.Printf("\n%d requests (%s, %s): mean=%.1fms min=%.1fms max=%.1fms\n",
		done, *task, *mode, ms(total/time.Duration(done)), ms(min), ms(max))
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
