// Command coic-bench regenerates every table and figure of the CoIC
// reproduction: Figure 2a, Figure 2b, and the ablation experiments listed
// in DESIGN.md. Output is aligned text by default, CSV with -csv, or
// machine-readable JSON with -json (one array of {title, columns, rows,
// notes} objects — what CI uploads as the pinned bench artifact).
//
// Usage:
//
//	coic-bench                     # run everything
//	coic-bench -experiment fig2a   # one experiment
//	coic-bench -experiment fig2b -csv > fig2b.csv
//	coic-bench -experiment qos -json > bench.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	coic "github.com/edge-immersion/coic"
	"github.com/edge-immersion/coic/internal/metrics"
)

func main() {
	experiment := flag.String("experiment", "all",
		"comma-separated experiments to run: all, fig2a, fig2b, hitratio, policy, threshold, index, coop, federation, churn, burst, qos, noisy, finegrained, batch, pano, privacy, qoe, scene")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	jsonOut := flag.Bool("json", false, "emit a JSON array of {title, columns, rows, notes} objects")
	seed := flag.Uint64("seed", 0, "override the reproduction seed (0 = default)")
	flag.Parse()
	if *csv && *jsonOut {
		fmt.Fprintln(os.Stderr, "coic-bench: -csv and -json are mutually exclusive")
		os.Exit(2)
	}

	// SIGINT/SIGTERM stops the sweep at the next experiment boundary
	// (each experiment is seconds, so this is prompt enough for a CLI).
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	p := coic.DefaultParams()
	if *seed != 0 {
		p.Seed = *seed
	}

	runners := []struct {
		name string
		run  func() (*coic.Table, error)
	}{
		{"fig2a", func() (*coic.Table, error) {
			rows, err := coic.RunFig2a(p)
			if err != nil {
				return nil, err
			}
			return coic.Fig2aTable(rows), nil
		}},
		{"fig2b", func() (*coic.Table, error) {
			rows, err := coic.RunFig2b(p)
			if err != nil {
				return nil, err
			}
			return coic.Fig2bTable(rows), nil
		}},
		{"hitratio", func() (*coic.Table, error) {
			return coic.RunHitRatio(scaled(p), []int{1, 2, 4, 8, 16, 32}, 0.7, p.Seed)
		}},
		{"policy", func() (*coic.Table, error) {
			return coic.RunPolicyAblation(scaled(p), []int{1, 4, 16, 64}, p.Seed)
		}},
		{"threshold", func() (*coic.Table, error) {
			return coic.RunThresholdSweep(p,
				[]float64{0.02, 0.05, 0.08, 0.12, 0.2, 0.3, 0.5}, 32), nil
		}},
		{"index", func() (*coic.Table, error) {
			return coic.RunIndexAblation(64, []int{100, 1000, 10000, 50000}, 200, p.Seed), nil
		}},
		{"coop", func() (*coic.Table, error) {
			return coic.RunCooperation(scaled(p), []int{2, 4, 8}, 12)
		}},
		{"federation", func() (*coic.Table, error) {
			return coic.RunFederation(scaled(p), []int{1, 2, 4, 8}, 24, 2, p.Seed)
		}},
		{"churn", func() (*coic.Table, error) {
			return coic.RunChurn(scaled(p), []int{0, 1, 2}, 4, 2, 24, 2, p.Seed)
		}},
		{"burst", func() (*coic.Table, error) {
			return coic.RunBurst(scaled(p), []int{4, 16, 64}, []float64{0, 0.5, 1})
		}},
		{"qos", func() (*coic.Table, error) {
			return coic.RunQoS(scaled(p), 24, 120*time.Millisecond)
		}},
		{"noisy", func() (*coic.Table, error) {
			return coic.RunNoisyNeighbor(scaled(p), 30, 150*time.Millisecond)
		}},
		{"finegrained", func() (*coic.Table, error) {
			return coic.RunFinegrained(p, []int{1, 4, 16, 64}, 256), nil
		}},
		{"batch", func() (*coic.Table, error) {
			return coic.RunBatch(scaled(p), []int{1, 2, 4, 8, 16}, 12), nil
		}},
		{"pano", func() (*coic.Table, error) {
			return coic.RunPanoStreaming(scaled(p), 8, 40)
		}},
		{"privacy", func() (*coic.Table, error) {
			return coic.RunPrivacy(scaled(p), []int{0, 2, 3, 5, 8}, p.Seed)
		}},
		{"qoe", func() (*coic.Table, error) {
			return coic.RunQoE(scaled(p), 12, p.Seed)
		}},
		{"scene", func() (*coic.Table, error) {
			return coic.RunSharedScene(scaled(p), []int{2, 8, 32}, 24)
		}},
	}

	// -experiment takes a comma-separated subset; tables render in the
	// runner order above regardless of how the flag orders the names.
	selected := map[string]bool{}
	for _, name := range strings.Split(*experiment, ",") {
		if name = strings.TrimSpace(name); name != "" {
			selected[name] = true
		}
	}

	ran := 0
	var jsonTables []metrics.TableJSON
	for _, r := range runners {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "coic-bench: interrupted")
			os.Exit(130)
		}
		if !selected["all"] && !selected[r.name] {
			continue
		}
		ran++
		table, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "coic-bench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		switch {
		case *jsonOut:
			jsonTables = append(jsonTables, table.JSON())
		case *csv:
			if err := table.RenderCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "coic-bench: %v\n", err)
				os.Exit(1)
			}
		default:
			if err := table.Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "coic-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "coic-bench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonTables); err != nil {
			fmt.Fprintf(os.Stderr, "coic-bench: %v\n", err)
			os.Exit(1)
		}
	}
}

// scaled shrinks per-request payloads for the trace-driven ablations,
// which replay thousands of requests; the full-size figures (fig2a,
// fig2b) keep paper-scale payloads.
func scaled(p coic.Params) coic.Params {
	p.CameraW, p.CameraH = 256, 256
	p.DNNInput = 32
	p.PanoWidth = 512
	p.MobileGFLOPS *= 4
	return p
}
