// Command coic-cloud runs the CoIC cloud tier: the full recognition DNN,
// the 3D model repository, and the VR panorama source, served over TCP.
//
// Usage:
//
//	coic-cloud -listen :9090
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	coic "github.com/edge-immersion/coic"
)

func main() {
	listen := flag.String("listen", ":9090", "address to serve on")
	workers := flag.Int("workers", 0, "concurrent requests per connection (0 = default); one edge funnels all its misses over one multiplexed connection, so this bounds its fetch parallelism")
	queue := flag.Int("queue", 0, "requests buffered per connection before overload replies (0 = default)")
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("coic-cloud: %v", err)
	}
	fmt.Printf("coic-cloud: serving on %s\n", ln.Addr())
	if err := coic.ServeCloudWith(ln, coic.DefaultParams(), coic.ServeConfig{Workers: *workers, QueueDepth: *queue}); err != nil {
		log.Fatalf("coic-cloud: %v", err)
	}
}
