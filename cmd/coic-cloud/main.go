// Command coic-cloud runs the CoIC cloud tier: the full recognition DNN,
// the 3D model repository, and the VR panorama source, served over TCP.
//
// With -http, the cloud also serves a live operations plane on a sidecar
// HTTP listener: Prometheus text metrics at /metrics, liveness at
// /healthz, readiness at /readyz, the slow/failed request ring at
// /debug/requests, and net/http/pprof under /debug/pprof/.
//
// SIGINT/SIGTERM triggers graceful shutdown: the listener closes,
// in-flight requests drain, replies flush, then the process exits.
//
// Usage:
//
//	coic-cloud -listen :9090
//	coic-cloud -listen :9090 -http :9190 -slow 500ms
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	coic "github.com/edge-immersion/coic"
)

func main() {
	listen := flag.String("listen", ":9090", "address to serve on")
	workers := flag.Int("workers", 0, "concurrent requests per connection (0 = default); one edge funnels all its misses over one multiplexed connection, so this bounds its fetch parallelism")
	queue := flag.Int("queue", 0, "requests buffered per connection before overload replies (0 = default)")
	batch := flag.Int("batch", 0, "max exec requests one worker executes as a single batched DNN pass (0 or 1 = serial)")
	batchSlack := flag.Duration("batch-slack", 2*time.Millisecond, "longest a best-effort request waits for batchmates (interactive never waits); needs -batch")
	httpAddr := flag.String("http", "", "ops sidecar address for /metrics, /healthz, /readyz, /debug (empty = disabled)")
	slow := flag.Duration("slow", time.Second, "latency above which a successful request enters /debug/requests")
	var tenantOpts []coic.ServerOption
	flag.Func("tenant-quota", `tenant limits as "name:key=value,..." (keys: token, rate, burst, weight; cache is edge-only); repeatable`, func(spec string) error {
		name, cfg, err := coic.ParseTenantQuota(spec)
		if err != nil {
			return err
		}
		tenantOpts = append(tenantOpts, coic.WithTenantQuota(name, cfg))
		return nil
	})
	flag.Func("tenant-weight", `tenant fair-share weight as "name=weight"; repeatable, merges with -tenant-quota`, func(spec string) error {
		name, val, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("%q is not name=weight", spec)
		}
		w, err := strconv.Atoi(val)
		if err != nil {
			return err
		}
		tenantOpts = append(tenantOpts, coic.WithTenantWeight(name, w))
		return nil
	})
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("coic-cloud: %v", err)
	}
	fmt.Printf("coic-cloud: serving on %s\n", ln.Addr())
	opts := []coic.ServerOption{
		coic.WithListener(ln),
		coic.WithServeParams(coic.DefaultParams()),
		coic.WithWorkers(*workers),
		coic.WithQueueDepth(*queue),
		coic.WithBatch(*batch),
		coic.WithBatchSlack(*batchSlack),
		coic.WithSlowRequestThreshold(*slow),
	}
	opts = append(opts, tenantOpts...)
	srv := coic.NewCloudServer(opts...)
	if *httpAddr != "" {
		opsLn, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("coic-cloud: ops listener: %v", err)
		}
		ops := &http.Server{Handler: srv.OpsHandler()}
		defer ops.Close()
		go func() {
			if err := ops.Serve(opsLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("coic-cloud: ops plane: %v", err)
			}
		}()
		fmt.Printf("coic-cloud: ops plane on http://%s/metrics\n", opsLn.Addr())
	}
	if err := srv.Serve(ctx); err != nil {
		log.Fatalf("coic-cloud: %v", err)
	}
	// The cloud schedules by the same QoS trailer the edge forwards, so
	// its shed counters show deadline pressure that reached the WAN.
	st := srv.Stats()
	fmt.Printf("coic-cloud: served %d interactive + %d best-effort requests, shed %d expired deadlines, %d overloads\n",
		st.AdmittedInteractive, st.AdmittedBestEffort, st.DeadlineSheds, st.Overloads)
	if st.Batches > 0 {
		fmt.Printf("coic-cloud: executed %d batches carrying %d requests\n", st.Batches, st.BatchedRequests)
	}
	fmt.Println("coic-cloud: shut down cleanly")
}
