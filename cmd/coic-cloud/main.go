// Command coic-cloud runs the CoIC cloud tier: the full recognition DNN,
// the 3D model repository, and the VR panorama source, served over TCP.
//
// Usage:
//
//	coic-cloud -listen :9090
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	coic "github.com/edge-immersion/coic"
)

func main() {
	listen := flag.String("listen", ":9090", "address to serve on")
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("coic-cloud: %v", err)
	}
	fmt.Printf("coic-cloud: serving on %s\n", ln.Addr())
	if err := coic.ServeCloud(ln, coic.DefaultParams()); err != nil {
		log.Fatalf("coic-cloud: %v", err)
	}
}
