package coic

// End-to-end tests for shared-scene collaborative sessions: a live
// cloud+edge stack over real TCP, clients joining edge-hosted rooms,
// publishes fanning out as server-push frames. The invariants under
// test are the subsystem's contract: convergence (every surviving
// member's version vector equals every other's at quiesce, however the
// pushes interleaved), room garbage collection (the last member out
// releases everything), and the per-connection writer's two-producer
// discipline (pushes interleave with in-order replies frame-whole —
// corruption would surface as decode errors on either path).

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"math/rand/v2"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/wire"
)

// sceneStack boots a cloud+edge pair for scene tests and returns the
// edge, its address, and a stop func.
func sceneStack(t testing.TB, opts ...ServerOption) (*Server, string, func()) {
	t.Helper()
	p := testConfig().Params
	ctx, cancel := context.WithCancel(context.Background())
	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go NewCloudServer(WithListener(cloudLn), WithServeParams(p)).Serve(ctx)
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	edge := NewEdgeServer(append([]ServerOption{
		WithListener(edgeLn),
		WithServeParams(p),
		WithCloud(cloudLn.Addr().String()),
		WithWorkers(4),
	}, opts...)...)
	go edge.Serve(ctx)
	return edge, edgeLn.Addr().String(), cancel
}

// waitConverged polls until every scene's version vector equals want.
func waitConverged(t *testing.T, what string, want map[string]uint64, scenes []*Scene) {
	t.Helper()
	waitForStats(t, what, func() bool {
		for _, sc := range scenes {
			if !maps.Equal(sc.VersionVector(), want) {
				return false
			}
		}
		return true
	})
}

func TestSceneJoinPublishLeaveEndToEnd(t *testing.T) {
	edge, addr, stop := sceneStack(t)
	defer stop()

	a := streamClient(t, addr)
	defer a.Close()
	ctx := context.Background()

	sa, err := a.JoinScene(ctx, "plaza")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := sa.Publish(ctx, "anchor/a", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("first publish got seq %d, want 1", seq)
	}

	// The publisher's own write comes back as a push.
	select {
	case ev := <-sa.Events():
		if ev.Scene != "plaza" || ev.Key != "anchor/a" || string(ev.Value) != "v1" || ev.Seq != 1 {
			t.Fatalf("unexpected event %+v", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("publisher never saw its own push")
	}

	// A late joiner is seeded from the snapshot, not the event stream.
	b := streamClient(t, addr)
	defer b.Close()
	sb, err := b.JoinScene(ctx, "plaza")
	if err != nil {
		t.Fatal(err)
	}
	entries, version := sb.Snapshot()
	if len(entries) != 1 || version != 1 || entries[0].Key != "anchor/a" {
		t.Fatalf("late joiner snapshot = %v at v%d, want anchor/a at v1", entries, version)
	}

	// Cross-member fan-out: b's write reaches a.
	if _, err := sb.Publish(ctx, "anchor/b", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sa.Events():
		if ev.Key != "anchor/b" || ev.Seq != 2 {
			t.Fatalf("unexpected cross-member event %+v", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cross-member push never arrived")
	}

	if rooms, members, publishes := edgeSceneStats(edge); rooms != 1 || members != 2 || publishes != 2 {
		t.Fatalf("SceneStats = %d rooms / %d members / %d publishes, want 1/2/2", rooms, members, publishes)
	}

	// Leave closes the Events channel and the last member out GCs the room.
	if err := sa.Leave(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sa.Leave(ctx); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, ok := <-sa.Events(); ok {
		// Drain anything buffered; the channel must eventually close.
		for range sa.Events() {
		}
	}
	if err := sb.Leave(ctx); err != nil {
		t.Fatal(err)
	}
	waitForStats(t, "room GC after the last leave", func() bool {
		rooms, members, _ := edgeSceneStats(edge)
		return rooms == 0 && members == 0
	})

	// Publishing into a scene we left is a membership error, not a hang.
	if _, err := sb.Publish(ctx, "anchor/b", []byte("v3")); err == nil {
		t.Fatal("publish after leave succeeded, want rejection")
	}
}

func edgeSceneStats(edge *Server) (rooms, members int, publishes uint64) {
	st := edge.Stats()
	return st.SceneRooms, st.SceneMembers, st.ScenePublishes
}

// TestSceneConvergence32Members is the acceptance bar: a 32-member room
// over real TCP sustains publishes from several members at once and, at
// quiesce, every member's mirror holds the identical version vector.
func TestSceneConvergence32Members(t *testing.T) {
	const members = 32
	const publishers = 4
	const updatesEach = 25 // 100 publishes total

	_, addr, stop := sceneStack(t)
	defer stop()
	ctx := context.Background()

	clients := make([]*Client, members)
	scenes := make([]*Scene, members)
	for i := range clients {
		clients[i] = streamClient(t, addr)
		defer clients[i].Close()
		sc, err := clients[i].JoinScene(ctx, "plenary", WithSceneWindow(4))
		if err != nil {
			t.Fatalf("member %d join: %v", i, err)
		}
		scenes[i] = sc
	}

	var wg sync.WaitGroup
	errs := make(chan error, publishers)
	for pub := 0; pub < publishers; pub++ {
		wg.Add(1)
		go func(pub int) {
			defer wg.Done()
			for i := 0; i < updatesEach; i++ {
				key := fmt.Sprintf("p%d/k%d", pub, i%5) // overwrites exercise LWW
				if _, err := scenes[pub].Publish(ctx, key, []byte{byte(pub), byte(i)}); err != nil {
					errs <- fmt.Errorf("publisher %d: %w", pub, err)
					return
				}
			}
		}(pub)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesce: the highest sequence number equals the publish total, and
	// every member converges to the same vector (publisher 0's, which
	// itself only advances via pushed events — one code path for all).
	waitForStats(t, "all mirrors to reach the final version", func() bool {
		for _, sc := range scenes {
			if sc.Version() != publishers*updatesEach {
				return false
			}
		}
		return true
	})
	want := scenes[0].VersionVector()
	if len(want) != publishers*5 {
		t.Fatalf("version vector has %d keys, want %d", len(want), publishers*5)
	}
	waitConverged(t, "all 32 version vectors to agree", want, scenes)
}

// TestSceneChurnUnderPublish is the -race churn test: members join,
// leave and hard-disconnect while others publish. Survivors converge,
// the room garbage-collects once everyone is gone, and no goroutines
// leak.
func TestSceneChurnUnderPublish(t *testing.T) {
	baseline := runtime.NumGoroutine()
	edge, addr, stop := sceneStack(t)
	defer stop()
	ctx := context.Background()

	const survivors = 6
	const churners = 8
	const updates = 60

	stay := make([]*Client, survivors)
	scenes := make([]*Scene, survivors)
	for i := range stay {
		stay[i] = streamClient(t, addr)
		sc, err := stay[i].JoinScene(ctx, "churn")
		if err != nil {
			t.Fatal(err)
		}
		scenes[i] = sc
	}

	// Publisher: survivor 0 writes continuously through the churn.
	pubErr := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < updates; i++ {
			if _, err := scenes[0].Publish(ctx, fmt.Sprintf("k%d", i%7), []byte{byte(i)}); err != nil {
				pubErr <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
		close(pubErr)
	}()

	// Churners: join, maybe publish once, then leave politely or slam
	// the connection shut (exercising the Disconnect sweep).
	rng := rand.New(rand.NewPCG(7, 7))
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < churners; i++ {
			cli, err := NewClient(ctx, addr, WithDialParams(testConfig().Params))
			if err != nil {
				continue // churn against a busy edge may race shutdown; survivors are the assertion
			}
			sc, err := cli.JoinScene(ctx, "churn")
			if err != nil {
				cli.Close()
				continue
			}
			if rng.IntN(2) == 0 {
				sc.Publish(ctx, fmt.Sprintf("churner%d", i), []byte("hi"))
			}
			if rng.IntN(2) == 0 {
				sc.Leave(ctx)
			}
			cli.Close() // hard disconnect for the non-leavers
			time.Sleep(2 * time.Millisecond)
		}
	}()

	wg.Wait()
	if err, ok := <-pubErr; ok && err != nil {
		t.Fatalf("publisher failed mid-churn: %v", err)
	}

	// Survivors converge on the publisher's vector despite the churn.
	waitForStats(t, "survivor mirrors to quiesce", func() bool {
		want := scenes[0].VersionVector()
		for _, sc := range scenes[1:] {
			if !maps.Equal(sc.VersionVector(), want) {
				return false
			}
		}
		return len(want) > 0
	})

	// Everyone out: the room and its memberships disappear.
	for i, sc := range scenes {
		if err := sc.Leave(ctx); err != nil {
			t.Fatalf("survivor %d leave: %v", i, err)
		}
	}
	waitForStats(t, "scene GC after churn", func() bool {
		rooms, members, _ := edgeSceneStats(edge)
		return rooms == 0 && members == 0
	})
	for _, cli := range stay {
		cli.Close()
	}

	// No goroutine leaks: closed members' pumps, writers and readers all
	// exit. Generous slack absorbs unrelated runtime/test goroutines.
	waitForStats(t, "goroutines to drain after the last member", func() bool {
		return runtime.NumGoroutine() <= baseline+15
	})
}

// TestSceneWriterInterleavingGuard pins the per-connection writer's
// two-producer contract: with a stream of in-order replies and a flood
// of scene pushes sharing one connection, every frame on the wire stays
// whole — any interleaving inside a frame would surface as a decode
// error or a corrupted completion on either path.
func TestSceneWriterInterleavingGuard(t *testing.T) {
	_, addr, stop := sceneStack(t)
	defer stop()
	ctx := context.Background()

	victim := streamClient(t, addr)
	defer victim.Close()
	noisy := streamClient(t, addr)
	defer noisy.Close()

	sv, err := victim.JoinScene(ctx, "interleave", WithSceneWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	sn, err := noisy.JoinScene(ctx, "interleave")
	if err != nil {
		t.Fatal(err)
	}

	// Noisy floods publishes; each one lands on victim's writer as a
	// push, racing the stream replies below.
	floodCtx, stopFlood := context.WithCancel(ctx)
	defer stopFlood()
	flooderDone := make(chan struct{})
	go func() {
		defer close(flooderDone)
		for i := 0; floodCtx.Err() == nil; i++ {
			if _, err := sn.Publish(floodCtx, fmt.Sprintf("k%d", i%3), []byte{byte(i)}); err != nil {
				return
			}
		}
	}()

	// Victim runs a busy request stream on the same connection the
	// pushes arrive on. Every completion must decode and succeed.
	st, err := victim.Stream(ctx, WithWindow(8))
	if err != nil {
		t.Fatal(err)
	}
	const requests = 60
	results := st.Results()
	go func() {
		for i := 0; i < requests; i++ {
			if _, err := st.Submit(ctx, PanoTask("interleave-vid", i, Viewport{FOV: 1.5})); err != nil {
				return
			}
		}
	}()
	for i := 0; i < requests; i++ {
		comp := <-results
		if comp.Err != nil {
			t.Fatalf("completion %d: %v (framing corrupted?)", i, comp.Err)
		}
	}
	st.Close()
	stopFlood()
	<-flooderDone

	// And the pushes that raced those replies still converge the mirror.
	waitConverged(t, "victim mirror to match the flooder's", sn.VersionVector(), []*Scene{sv})
}

// TestSceneOrderedClientRejected pins the compatibility contract: a
// connection that did not negotiate completion-order replies
// (HelloFlagUnordered) never receives a push — its join is rejected up
// front with CodeBadRequest.
func TestSceneOrderedClientRejected(t *testing.T) {
	_, addr, stop := sceneStack(t)
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello, err := (wire.Hello{Version: wire.HelloVersion, Mode: uint8(ModeCoIC)}).Marshal() // Flags: 0 — ordered replies
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteMessage(conn, wire.Message{Type: wire.MsgHello, RequestID: 1, Body: hello}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadMessage(conn); err != nil { // hello ack
		t.Fatal(err)
	}
	join, err := (wire.SceneJoin{Scene: "plaza"}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteMessage(conn, wire.Message{Type: wire.MsgSceneJoin, RequestID: 2, Body: join}); err != nil {
		t.Fatal(err)
	}
	reply, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.MsgError {
		t.Fatalf("ordered join got %v, want an error reply", reply.Type)
	}
	er, err := wire.UnmarshalErrorReply(reply.Body)
	if err != nil {
		t.Fatal(err)
	}
	if er.Code != wire.CodeBadRequest {
		t.Fatalf("ordered join rejected with code %d, want CodeBadRequest (%d)", er.Code, wire.CodeBadRequest)
	}
}

// TestSceneTenantQuotas covers the tenancy riders: scenes are scoped per
// tenant, member counts admit through TenantConfig.SceneMembers, and
// publish rates spend the same token bucket as every other request.
func TestSceneTenantQuotas(t *testing.T) {
	_, addr, stop := sceneStack(t,
		WithTenantQuota("ar", TenantConfig{SceneMembers: 2}),
		WithTenantQuota("slow", TenantConfig{Rate: 1, Burst: 3}))
	defer stop()
	ctx := context.Background()
	p := testConfig().Params

	dial := func(tenant string) *Client {
		t.Helper()
		cli, err := NewClient(ctx, addr, WithDialParams(p), WithTenant(tenant, ""))
		if err != nil {
			t.Fatal(err)
		}
		return cli
	}

	// Member cap: the third concurrent member of tenant "ar" is refused
	// with the quota error, across rooms.
	a, b, c := dial("ar"), dial("ar"), dial("ar")
	defer a.Close()
	defer b.Close()
	defer c.Close()
	if _, err := a.JoinScene(ctx, "room1"); err != nil {
		t.Fatal(err)
	}
	sb, err := b.JoinScene(ctx, "room2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.JoinScene(ctx, "room1"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third member join = %v, want ErrQuotaExceeded", err)
	}
	// Leaving frees the slot.
	if err := sb.Leave(ctx); err != nil {
		t.Fatal(err)
	}
	sc, err := c.JoinScene(ctx, "room1")
	if err != nil {
		t.Fatalf("join after a slot freed: %v", err)
	}

	// Tenant scoping: another tenant's same-named room is a different
	// document.
	other := dial("")
	defer other.Close()
	so, err := other.JoinScene(ctx, "room1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Publish(ctx, "shared", []byte("ar's")); err != nil {
		t.Fatal(err)
	}
	waitForStats(t, "ar's write to land in its own mirror", func() bool { return sc.Version() == 1 })
	if v := so.Version(); v != 0 {
		t.Fatalf("default tenant's room1 saw tenant ar's write (version %d)", v)
	}

	// Publish rate: tenant "slow" (1 rps, burst 3) blows its bucket —
	// the join spends one token, so a burst of publishes hits the quota.
	s := dial("slow")
	defer s.Close()
	ss, err := s.JoinScene(ctx, "room1")
	if err != nil {
		t.Fatal(err)
	}
	var quotaErr error
	for i := 0; i < 10 && quotaErr == nil; i++ {
		_, err := ss.Publish(ctx, "k", []byte{byte(i)})
		if errors.Is(err, ErrQuotaExceeded) {
			quotaErr = err
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if quotaErr == nil {
		t.Fatal("10 instant publishes at rate 1/burst 3 never hit the tenant quota")
	}
}
