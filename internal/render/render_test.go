package render

import (
	"image/color"
	"math"
	"testing"

	"github.com/edge-immersion/coic/internal/mesh"
)

func TestMat4Identity(t *testing.T) {
	v := mesh.Vec3{X: 1, Y: 2, Z: 3}
	x, y, z, w := Identity().Apply(v)
	if x != 1 || y != 2 || z != 3 || w != 1 {
		t.Fatalf("identity mangled point: %v %v %v %v", x, y, z, w)
	}
}

func TestMat4MulOrder(t *testing.T) {
	// Translate then scale vs scale then translate must differ.
	ts := Scale(2).Mul(Translate(mesh.Vec3{X: 1}))
	st := Translate(mesh.Vec3{X: 1}).Mul(Scale(2))
	x1, _, _, _ := ts.Apply(mesh.Vec3{})
	x2, _, _, _ := st.Apply(mesh.Vec3{})
	if x1 != 2 || x2 != 1 {
		t.Fatalf("composition order broken: %v %v", x1, x2)
	}
}

func TestRotateY(t *testing.T) {
	x, _, z, _ := RotateY(math.Pi / 2).Apply(mesh.Vec3{X: 1})
	if math.Abs(float64(x)) > 1e-6 || math.Abs(float64(z)+1) > 1e-6 {
		t.Fatalf("RotateY(90°)·X = (%v, %v)", x, z)
	}
}

func TestRotateXPreservesX(t *testing.T) {
	x, y, z, _ := RotateX(math.Pi / 2).Apply(mesh.Vec3{X: 1})
	if x != 1 || math.Abs(float64(y)) > 1e-6 || math.Abs(float64(z)) > 1e-6 {
		t.Fatalf("RotateX moved the X axis: %v %v %v", x, y, z)
	}
}

func TestLookAtPutsTargetOnAxis(t *testing.T) {
	view := LookAt(mesh.Vec3{Z: 5}, mesh.Vec3{}, mesh.Vec3{Y: 1})
	x, y, z, _ := view.Apply(mesh.Vec3{})
	if math.Abs(float64(x)) > 1e-5 || math.Abs(float64(y)) > 1e-5 {
		t.Fatalf("target off axis: (%v, %v, %v)", x, y, z)
	}
	if z >= 0 {
		t.Fatalf("target not in front of camera (z=%v)", z)
	}
}

func TestPerspectiveDepthOrdering(t *testing.T) {
	proj := Perspective(math.Pi/3, 1, 0.1, 100)
	_, _, zn, wn := proj.Apply(mesh.Vec3{Z: -1})
	_, _, zf, wf := proj.Apply(mesh.Vec3{Z: -50})
	if wn <= 0 || wf <= 0 {
		t.Fatalf("w not positive: %v %v", wn, wf)
	}
	if zn/wn >= zf/wf {
		t.Fatalf("NDC depth not increasing with distance: %v vs %v", zn/wn, zf/wf)
	}
}

func TestDrawProducesPixels(t *testing.T) {
	m := mesh.Generate(mesh.Spec{Name: "ball", Segments: 10, TextureSize: 8, TextureCount: 1, Seed: 1})
	r := New(96, 96)
	st := r.Draw(m, Identity(), DefaultCamera())
	if st.Triangles != len(m.Tris) {
		t.Fatalf("submitted %d of %d triangles", st.Triangles, len(m.Tris))
	}
	if st.Rasterised == 0 || st.Pixels == 0 {
		t.Fatalf("nothing rendered: %+v", st)
	}
	if st.Culled == 0 {
		t.Fatal("no back-faces culled on a closed mesh — cull broken")
	}
	// The frame must no longer be uniformly the clear colour.
	clear := color.RGBA{R: 30, G: 34, B: 40, A: 255}
	changed := 0
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			if r.Frame.At(x, y) != clear {
				changed++
			}
		}
	}
	if changed == 0 {
		t.Fatal("framebuffer untouched")
	}
	if changed != st.Pixels {
		// Every depth-passing pixel wrote a non-clear colour exactly once
		// per final visible surface; changed can be less than Pixels
		// (overdraw) but never more.
		if changed > st.Pixels {
			t.Fatalf("more changed pixels (%d) than writes (%d)", changed, st.Pixels)
		}
	}
}

func TestDrawDeterministic(t *testing.T) {
	m := mesh.Generate(mesh.Spec{Name: "d", Segments: 8, Seed: 2})
	a, b := New(64, 64), New(64, 64)
	a.Draw(m, Identity(), DefaultCamera())
	b.Draw(m, Identity(), DefaultCamera())
	for i := range a.Frame.Pix {
		if a.Frame.Pix[i] != b.Frame.Pix[i] {
			t.Fatal("rendering not deterministic")
		}
	}
}

func TestDepthBufferOcclusion(t *testing.T) {
	// Two triangles at different depths: the nearer one must win where
	// they overlap regardless of draw order.
	tri := func(z float32, col uint8) *mesh.Mesh {
		return &mesh.Mesh{
			Name: "t",
			Verts: []mesh.Vertex{
				{Pos: mesh.Vec3{X: -1, Y: -1, Z: z}, Normal: mesh.Vec3{Z: 1}},
				{Pos: mesh.Vec3{X: 1, Y: -1, Z: z}, Normal: mesh.Vec3{Z: 1}},
				{Pos: mesh.Vec3{X: 0, Y: 1, Z: z}, Normal: mesh.Vec3{Z: 1}},
			},
			Tris:      []mesh.Triangle{{A: 0, B: 1, C: 2}},
			Materials: []mesh.Material{{Name: "m", R: col, G: col, B: col, Texture: -1}},
		}
	}
	cam := Camera{
		Eye: mesh.Vec3{Z: 5}, Target: mesh.Vec3{}, Up: mesh.Vec3{Y: 1},
		FOVY: math.Pi / 3, Near: 0.1, Far: 100,
	}
	for _, order := range [][2]*mesh.Mesh{
		{tri(0, 255), tri(2, 10)}, // far then near (near z=2 is closer to eye at z=5)
		{tri(2, 10), tri(0, 255)}, // near then far
	} {
		r := New(64, 64)
		r.Ambient = 1 // flat shading so colours are exact
		r.Draw(order[0], Identity(), cam)
		r.Draw(order[1], Identity(), cam)
		centre := r.Frame.At(32, 40)
		if centre.R != 10 {
			t.Fatalf("occlusion broken: centre = %+v", centre)
		}
	}
}

func TestBehindCameraCulled(t *testing.T) {
	m := &mesh.Mesh{
		Name: "behind",
		Verts: []mesh.Vertex{
			{Pos: mesh.Vec3{X: -1, Y: -1, Z: 10}, Normal: mesh.Vec3{Z: -1}},
			{Pos: mesh.Vec3{X: 1, Y: -1, Z: 10}, Normal: mesh.Vec3{Z: -1}},
			{Pos: mesh.Vec3{X: 0, Y: 1, Z: 10}, Normal: mesh.Vec3{Z: -1}},
		},
		Tris:      []mesh.Triangle{{A: 0, B: 1, C: 2}},
		Materials: []mesh.Material{{Name: "m", R: 1, G: 1, B: 1, Texture: -1}},
	}
	cam := Camera{Eye: mesh.Vec3{Z: 5}, Target: mesh.Vec3{Z: 6}, Up: mesh.Vec3{Y: 1}, FOVY: 1, Near: 0.1, Far: 100}
	// Camera at z=5 looking toward +z; triangle at z=10 is in front now,
	// so flip: look toward -z instead, putting it behind.
	cam.Target = mesh.Vec3{Z: 0}
	r := New(32, 32)
	st := r.Draw(m, Identity(), cam)
	if st.Pixels != 0 {
		t.Fatalf("behind-camera triangle rendered %d pixels", st.Pixels)
	}
}

func TestSampleTextureWraps(t *testing.T) {
	tex := &mesh.Texture{Name: "t", W: 2, H: 2, Pix: []uint8{
		255, 0, 0, 0, 255, 0,
		0, 0, 255, 255, 255, 255,
	}}
	r, g, b := sampleTexture(tex, 0, 0)
	if r != 255 || g != 0 || b != 0 {
		t.Fatalf("(0,0) = %d,%d,%d", r, g, b)
	}
	// u=1.25 wraps to 0.25 (first texel), v=-0.75 wraps to 0.25.
	r2, g2, b2 := sampleTexture(tex, 1.25, -0.75)
	if r2 != 255 || g2 != 0 || b2 != 0 {
		t.Fatalf("wrapped = %d,%d,%d", r2, g2, b2)
	}
}

func TestNewPanicsOnBadViewport(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(0, 10)
}

func TestClearResetsDepth(t *testing.T) {
	m := mesh.Generate(mesh.Spec{Name: "c", Segments: 6, Seed: 3})
	r := New(48, 48)
	first := r.Draw(m, Identity(), DefaultCamera())
	r.Clear(color.RGBA{A: 255})
	second := r.Draw(m, Identity(), DefaultCamera())
	if second.Pixels != first.Pixels {
		t.Fatalf("redraw after Clear: %d pixels vs %d", second.Pixels, first.Pixels)
	}
}
