package render

import (
	"testing"

	"github.com/edge-immersion/coic/internal/mesh"
)

// BenchmarkDraw measures rasterising a mid-size model into a 320x320
// framebuffer — the client's "draw objects on the display" step.
func BenchmarkDraw(b *testing.B) {
	m := mesh.Generate(mesh.Spec{Name: "bench", Segments: 20, TextureSize: 32, TextureCount: 1, Seed: 1})
	r := New(320, 320)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Draw(m, Identity(), DefaultCamera())
	}
}
