// Package render is a software 3D rasteriser: the "draw objects on the
// display" half of the paper's rendering task ("the renderer has to load
// the 3D model into memory first and draw objects on the display"). It is
// a classic fixed-function pipeline — model/view/projection transform,
// back-face culling, z-buffered triangle fill with Gouraud-shaded diffuse
// lighting and optional texture sampling — implemented over the vision
// Frame type so AR examples can composite annotations onto camera frames.
package render

import (
	"fmt"
	"image/color"
	"math"

	"github.com/edge-immersion/coic/internal/mesh"
	"github.com/edge-immersion/coic/internal/vision"
)

// Mat4 is a column-vector 4x4 transform matrix: y = M·x with row-major
// storage (m[row][col]).
type Mat4 [4][4]float32

// Identity returns the identity transform.
func Identity() Mat4 {
	var m Mat4
	for i := 0; i < 4; i++ {
		m[i][i] = 1
	}
	return m
}

// Mul returns a·b (apply b first, then a).
func (a Mat4) Mul(b Mat4) Mat4 {
	var out Mat4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			var s float32
			for k := 0; k < 4; k++ {
				s += a[r][k] * b[k][c]
			}
			out[r][c] = s
		}
	}
	return out
}

// Apply transforms a point (w=1) and returns the homogeneous result.
func (a Mat4) Apply(v mesh.Vec3) (x, y, z, w float32) {
	x = a[0][0]*v.X + a[0][1]*v.Y + a[0][2]*v.Z + a[0][3]
	y = a[1][0]*v.X + a[1][1]*v.Y + a[1][2]*v.Z + a[1][3]
	z = a[2][0]*v.X + a[2][1]*v.Y + a[2][2]*v.Z + a[2][3]
	w = a[3][0]*v.X + a[3][1]*v.Y + a[3][2]*v.Z + a[3][3]
	return
}

// ApplyDir transforms a direction (w=0), for normals under rigid
// transforms.
func (a Mat4) ApplyDir(v mesh.Vec3) mesh.Vec3 {
	return mesh.Vec3{
		X: a[0][0]*v.X + a[0][1]*v.Y + a[0][2]*v.Z,
		Y: a[1][0]*v.X + a[1][1]*v.Y + a[1][2]*v.Z,
		Z: a[2][0]*v.X + a[2][1]*v.Y + a[2][2]*v.Z,
	}
}

// Translate returns a translation matrix.
func Translate(t mesh.Vec3) Mat4 {
	m := Identity()
	m[0][3], m[1][3], m[2][3] = t.X, t.Y, t.Z
	return m
}

// Scale returns a uniform scale matrix.
func Scale(s float32) Mat4 {
	m := Identity()
	m[0][0], m[1][1], m[2][2] = s, s, s
	return m
}

// RotateY returns a rotation about the Y axis by angle radians.
func RotateY(angle float64) Mat4 {
	c, s := float32(math.Cos(angle)), float32(math.Sin(angle))
	m := Identity()
	m[0][0], m[0][2] = c, s
	m[2][0], m[2][2] = -s, c
	return m
}

// RotateX returns a rotation about the X axis by angle radians.
func RotateX(angle float64) Mat4 {
	c, s := float32(math.Cos(angle)), float32(math.Sin(angle))
	m := Identity()
	m[1][1], m[1][2] = c, -s
	m[2][1], m[2][2] = s, c
	return m
}

// LookAt builds a view matrix for a camera at eye looking at target with
// the given up hint.
func LookAt(eye, target, up mesh.Vec3) Mat4 {
	f := target.Sub(eye).Normalize() // forward
	r := f.Cross(up).Normalize()     // right
	u := r.Cross(f)                  // true up
	m := Identity()
	m[0][0], m[0][1], m[0][2] = r.X, r.Y, r.Z
	m[1][0], m[1][1], m[1][2] = u.X, u.Y, u.Z
	m[2][0], m[2][1], m[2][2] = -f.X, -f.Y, -f.Z
	m[0][3] = -r.Dot(eye)
	m[1][3] = -u.Dot(eye)
	m[2][3] = f.Dot(eye)
	return m
}

// Perspective builds a projection matrix with vertical FOV fovY (radians),
// aspect w/h, and near/far planes.
func Perspective(fovY, aspect, near, far float64) Mat4 {
	f := float32(1 / math.Tan(fovY/2))
	var m Mat4
	m[0][0] = f / float32(aspect)
	m[1][1] = f
	m[2][2] = float32((far + near) / (near - far))
	m[2][3] = float32(2 * far * near / (near - far))
	m[3][2] = -1
	return m
}

// Camera bundles view parameters.
type Camera struct {
	Eye, Target, Up mesh.Vec3
	FOVY            float64 // radians
	Near, Far       float64
}

// DefaultCamera frames the unit-ish procedural models.
func DefaultCamera() Camera {
	return Camera{
		Eye:    mesh.Vec3{X: 0, Y: 1.2, Z: 3.2},
		Target: mesh.Vec3{},
		Up:     mesh.Vec3{Y: 1},
		FOVY:   60 * math.Pi / 180,
		Near:   0.1, Far: 100,
	}
}

// Stats reports what a Draw call did.
type Stats struct {
	Triangles  int // submitted
	Culled     int // back-facing or clipped
	Rasterised int // actually filled
	Pixels     int // pixels that passed the depth test
}

// Renderer rasterises meshes into an RGBA frame with a depth buffer.
type Renderer struct {
	W, H  int
	Frame *vision.Frame
	depth []float32
	// Light is the directional light (pointing from surface toward the
	// light), in world space.
	Light mesh.Vec3
	// Ambient is the floor of the diffuse term (0..1).
	Ambient float32
}

// New allocates a renderer with a sky-grey clear colour and a default
// key light.
func New(w, h int) *Renderer {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("render: invalid viewport %dx%d", w, h))
	}
	r := &Renderer{
		W: w, H: h,
		Frame:   vision.NewFrame(w, h),
		depth:   make([]float32, w*h),
		Light:   mesh.Vec3{X: 0.4, Y: 0.8, Z: 0.45}.Normalize(),
		Ambient: 0.25,
	}
	r.Clear(color.RGBA{R: 30, G: 34, B: 40, A: 255})
	return r
}

// Clear resets colour and depth.
func (r *Renderer) Clear(c color.RGBA) {
	r.Frame.Fill(c)
	for i := range r.depth {
		r.depth[i] = math.MaxFloat32
	}
}

// Draw rasterises m under the model transform and camera. It returns
// draw statistics (used by the experiments' compute-cost model and by
// tests to prove something was actually rendered).
func (r *Renderer) Draw(m *mesh.Mesh, model Mat4, cam Camera) Stats {
	view := LookAt(cam.Eye, cam.Target, cam.Up)
	proj := Perspective(cam.FOVY, float64(r.W)/float64(r.H), cam.Near, cam.Far)
	mv := view.Mul(model)
	mvp := proj.Mul(mv)

	var st Stats
	type projected struct {
		sx, sy, z, invW float32
		lit             float32
		u, v            float32
		visible         bool
	}
	verts := make([]projected, len(m.Verts))
	for i, v := range m.Verts {
		x, y, z, w := mvp.Apply(v.Pos)
		if w <= 0 {
			verts[i].visible = false
			continue
		}
		invW := 1 / w
		n := model.ApplyDir(v.Normal).Normalize()
		diffuse := n.Dot(r.Light)
		if diffuse < 0 {
			diffuse = 0
		}
		lit := r.Ambient + (1-r.Ambient)*diffuse
		verts[i] = projected{
			sx:      (x*invW + 1) * 0.5 * float32(r.W),
			sy:      (1 - y*invW) * 0.5 * float32(r.H),
			z:       z * invW,
			invW:    invW,
			lit:     lit,
			u:       v.U,
			v:       v.V,
			visible: true,
		}
	}

	for _, t := range m.Tris {
		st.Triangles++
		a, b, c := verts[t.A], verts[t.B], verts[t.C]
		if !a.visible || !b.visible || !c.visible {
			st.Culled++
			continue
		}
		// Screen-space back-face cull (CCW front).
		area := (b.sx-a.sx)*(c.sy-a.sy) - (c.sx-a.sx)*(b.sy-a.sy)
		if area >= 0 {
			st.Culled++
			continue
		}
		var mat *mesh.Material
		if int(t.Mat) < len(m.Materials) {
			mat = &m.Materials[t.Mat]
		}
		var tex *mesh.Texture
		if mat != nil && mat.Texture >= 0 && int(mat.Texture) < len(m.Textures) {
			tex = &m.Textures[mat.Texture]
		}
		st.Rasterised++
		st.Pixels += r.fillTriangle(a.sx, a.sy, a.z, a.lit, a.u, a.v,
			b.sx, b.sy, b.z, b.lit, b.u, b.v,
			c.sx, c.sy, c.z, c.lit, c.u, c.v, mat, tex)
	}
	return st
}

// fillTriangle rasterises one screen-space triangle with barycentric
// interpolation of depth, lighting and UVs. Returns pixels written.
func (r *Renderer) fillTriangle(
	ax, ay, az, al, au, av float32,
	bx, by, bz, bl, bu, bv float32,
	cx, cy, cz, cl, cu, cv float32,
	mat *mesh.Material, tex *mesh.Texture,
) int {
	minX := int(math.Floor(float64(min3(ax, bx, cx))))
	maxX := int(math.Ceil(float64(max3(ax, bx, cx))))
	minY := int(math.Floor(float64(min3(ay, by, cy))))
	maxY := int(math.Ceil(float64(max3(ay, by, cy))))
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX > r.W-1 {
		maxX = r.W - 1
	}
	if maxY > r.H-1 {
		maxY = r.H - 1
	}
	denom := (by-cy)*(ax-cx) + (cx-bx)*(ay-cy)
	if denom == 0 {
		return 0
	}
	invDenom := 1 / denom

	baseR, baseG, baseB := uint8(200), uint8(200), uint8(200)
	if mat != nil {
		baseR, baseG, baseB = mat.R, mat.G, mat.B
	}

	written := 0
	for y := minY; y <= maxY; y++ {
		fy := float32(y) + 0.5
		for x := minX; x <= maxX; x++ {
			fx := float32(x) + 0.5
			w0 := ((by-cy)*(fx-cx) + (cx-bx)*(fy-cy)) * invDenom
			w1 := ((cy-ay)*(fx-cx) + (ax-cx)*(fy-cy)) * invDenom
			w2 := 1 - w0 - w1
			if w0 < 0 || w1 < 0 || w2 < 0 {
				continue
			}
			z := w0*az + w1*bz + w2*cz
			di := y*r.W + x
			if z >= r.depth[di] {
				continue
			}
			r.depth[di] = z
			lit := w0*al + w1*bl + w2*cl
			cr, cg, cb := baseR, baseG, baseB
			if tex != nil {
				u := w0*au + w1*bu + w2*cu
				v := w0*av + w1*bv + w2*cv
				cr, cg, cb = sampleTexture(tex, u, v)
			}
			r.Frame.Set(x, y, color.RGBA{
				R: shade(cr, lit),
				G: shade(cg, lit),
				B: shade(cb, lit),
				A: 255,
			})
			written++
		}
	}
	return written
}

// sampleTexture does nearest-neighbour sampling with wrap-around UVs.
func sampleTexture(t *mesh.Texture, u, v float32) (uint8, uint8, uint8) {
	u -= float32(math.Floor(float64(u)))
	v -= float32(math.Floor(float64(v)))
	x := int(u * float32(t.W))
	y := int(v * float32(t.H))
	if x >= t.W {
		x = t.W - 1
	}
	if y >= t.H {
		y = t.H - 1
	}
	o := (y*t.W + x) * 3
	return t.Pix[o], t.Pix[o+1], t.Pix[o+2]
}

func shade(c uint8, lit float32) uint8 {
	v := float32(c) * lit
	if v > 255 {
		v = 255
	}
	return uint8(v)
}

func min3(a, b, c float32) float32 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func max3(a, b, c float32) float32 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}
