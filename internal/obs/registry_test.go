package obs

import (
	"strings"
	"testing"
	"time"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestRegistryCounterRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("coic_requests_total", "Requests by class and outcome.",
		L("class", "interactive"), L("outcome", "ok"))
	c.Add(3)
	r.Counter("coic_requests_total", "Requests by class and outcome.",
		L("class", "best_effort"), L("outcome", "shed")).Inc()

	out := render(t, r)
	for _, want := range []string{
		"# HELP coic_requests_total Requests by class and outcome.\n",
		"# TYPE coic_requests_total counter\n",
		`coic_requests_total{class="interactive",outcome="ok"} 3` + "\n",
		`coic_requests_total{class="best_effort",outcome="shed"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE must appear exactly once even with two series.
	if n := strings.Count(out, "# TYPE coic_requests_total"); n != 1 {
		t.Errorf("TYPE line count = %d, want 1", n)
	}
}

func TestRegistrySameSeriesReturnsSameHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", L("a", "1"), L("b", "2"))
	b := r.Counter("x_total", "", L("b", "2"), L("a", "1")) // label order ignored
	if a != b {
		t.Fatal("same label set should resolve to the same counter")
	}
	c := r.Counter("x_total", "", L("a", "1"), L("b", "3"))
	if a == c {
		t.Fatal("different label set should be a distinct series")
	}
}

func TestRegistryEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "line one\nline \\two", L("path", `a"b\c`+"\nd")).Inc()
	out := render(t, r)
	if !strings.Contains(out, `# HELP esc_total line one\nline \\two`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{path="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestRegistryHistogramRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("coic_stage_duration_seconds", "Stage latency.",
		[]float64{0.001, 0.01}, L("stage", "exec"))
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(time.Second)

	out := render(t, r)
	for _, want := range []string{
		"# TYPE coic_stage_duration_seconds histogram\n",
		`coic_stage_duration_seconds_bucket{stage="exec",le="0.001"} 1` + "\n",
		`coic_stage_duration_seconds_bucket{stage="exec",le="0.01"} 2` + "\n",
		`coic_stage_duration_seconds_bucket{stage="exec",le="+Inf"} 3` + "\n",
		`coic_stage_duration_seconds_sum{stage="exec"} 1.0055` + "\n",
		`coic_stage_duration_seconds_count{stage="exec"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryGaugeAndFuncs(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("coic_connections_active", "Open connections.")
	g.Set(4)
	v := 17.0
	r.GaugeFunc("coic_cache_bytes", "Resident bytes.", func() float64 { return v })
	ext := uint64(9)
	r.CounterFunc("coic_cache_queries_total", "Cache queries.", func() float64 { return float64(ext) })

	out := render(t, r)
	for _, want := range []string{
		"coic_connections_active 4\n",
		"coic_cache_bytes 17\n",
		"coic_cache_queries_total 9\n",
		"# TYPE coic_cache_bytes gauge\n",
		"# TYPE coic_cache_queries_total counter\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryRenderPassesLint(t *testing.T) {
	r := NewRegistry()
	r.Counter("coic_requests_total", "Requests.", L("class", "interactive"), L("outcome", "ok")).Inc()
	r.Gauge("coic_connections_active", "Open connections.").Set(2)
	h := r.Histogram("coic_stage_duration_seconds", "Stage latency.", nil, L("stage", "decode"))
	h.Observe(time.Millisecond)

	out := render(t, r)
	if problems := Lint(strings.NewReader(out)); len(problems) != 0 {
		t.Fatalf("self-rendered output fails lint: %v\n%s", problems, out)
	}
}

func TestRegistryInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, fn := range []func(){
		func() { r.Counter("0bad", "") },
		func() { r.Counter("has space", "") },
		func() { r.Counter("ok_total", "", L("__reserved", "x")) },
		func() { r.Gauge("ok_total", "") }, // kind mismatch with next line
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			r.Counter("ok_total", "") // establishes counter kind for the mismatch case
			fn()
		}()
	}
}
