package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name="value" pair on a metric.
type Label struct {
	Name  string
	Value string
}

// L builds a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metricKind discriminates family types in the exposition output.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metricEntry is one labelled time series inside a family. Exactly one of
// the value fields is set, matching the family's kind.
type metricEntry struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	fn      func() float64 // callback counter/gauge (reads an external counter)
	hist    *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name string
	help string
	kind metricKind

	entries []*metricEntry
	byKey   map[string]*metricEntry
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is synchronised and typically happens
// at wiring time; the returned Counter/Gauge/Histogram handles are then
// used lock-free on hot paths. Families render in registration order,
// series within a family in creation order.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// Counter registers (or finds) the counter series name{labels...}.
// Panics on an invalid name/labels or on a kind/help mismatch with an
// existing family — these are wiring bugs, not runtime conditions.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	e := r.entry(name, help, kindCounter, labels)
	if e.counter == nil {
		e.counter = &Counter{}
	}
	return e.counter
}

// Gauge registers (or finds) the gauge series name{labels...}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	e := r.entry(name, help, kindGauge, labels)
	if e.gauge == nil {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the bridge for counters that already live elsewhere
// (cache hit counters, scheduler admissions) without double accounting.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.entry(name, help, kindCounter, labels).fn = fn
}

// GaugeFunc registers a gauge series whose value is read from fn at
// scrape time (resident cache bytes, queue depths).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.entry(name, help, kindGauge, labels).fn = fn
}

// Histogram registers (or finds) the histogram series name{labels...}
// with the given bucket bounds in seconds (DefLatencyBuckets when nil).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	e := r.entry(name, help, kindHistogram, labels)
	if e.hist == nil {
		e.hist = newHistogram(bounds)
	}
	return e.hist
}

func (r *Registry) entry(name, help string, kind metricKind, labels []Label) *metricEntry {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l.Name, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byKey: map[string]*metricEntry{}}
		r.byName[name] = f
		r.fams = append(r.fams, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", name, kind, f.kind))
	}
	key := labelKey(labels)
	e := f.byKey[key]
	if e == nil {
		e = &metricEntry{labels: append([]Label(nil), labels...)}
		f.byKey[key] = e
		f.entries = append(f.entries, e)
	}
	return e
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4): # HELP and # TYPE lines followed by the series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.write(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(b *strings.Builder) {
	if f.help != "" {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
	}
	b.WriteString("# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.kind.String())
	b.WriteByte('\n')
	for _, e := range f.entries {
		switch {
		case e.hist != nil:
			writeHistogram(b, f.name, e)
		case e.fn != nil:
			writeSample(b, f.name, e.labels, formatFloat(e.fn()))
		case e.counter != nil:
			writeSample(b, f.name, e.labels, strconv.FormatUint(e.counter.Value(), 10))
		case e.gauge != nil:
			writeSample(b, f.name, e.labels, strconv.FormatInt(e.gauge.Value(), 10))
		}
	}
}

func writeHistogram(b *strings.Builder, name string, e *metricEntry) {
	cum, _, sum := e.hist.snapshot()
	for i, bound := range e.hist.bounds {
		le := formatFloat(bound)
		writeSample(b, name+"_bucket", append(append([]Label(nil), e.labels...), L("le", le)),
			strconv.FormatUint(cum[i], 10))
	}
	total := cum[len(cum)-1]
	writeSample(b, name+"_bucket", append(append([]Label(nil), e.labels...), L("le", "+Inf")),
		strconv.FormatUint(total, 10))
	writeSample(b, name+"_sum", e.labels, formatFloat(sum.Seconds()))
	writeSample(b, name+"_count", e.labels, strconv.FormatUint(total, 10))
}

func writeSample(b *strings.Builder, name string, labels []Label, value string) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabelValue(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// labelKey builds a canonical key for a label set (order-insensitive).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(';')
	}
	return b.String()
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trippable representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes backslash, double quote and newline in label
// values.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]* and
// is not reserved (double-underscore prefix).
func validLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
