package obs

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"
	"time"
)

// RequestEvent is one request's outcome as recorded by the serving path:
// enough to correlate a slow frame across client, edge and cloud logs by
// trace ID without a tracing backend.
type RequestEvent struct {
	// Time is when the request finished.
	Time time.Time `json:"time"`
	// TraceID is the client-minted trace identifier (zero when the client
	// sent none). Rendered as hex in JSON to match log output.
	TraceID uint64 `json:"-"`
	// ReqID is the per-connection wire request ID.
	ReqID uint64 `json:"req_id"`
	// Type is the wire message type name ("exec", "model_fetch", ...).
	Type string `json:"type"`
	// Tenant is the connection's authenticated tenant (empty when the
	// server runs tenantless instrumentation).
	Tenant string `json:"tenant,omitempty"`
	// Class is the QoS class name ("interactive", "best_effort").
	Class string `json:"class"`
	// Outcome is the terminal state: ok, error, canceled, deadline,
	// overloaded, quota.
	Outcome string `json:"outcome"`
	// Duration is queue wait plus execution, as measured by the server.
	Duration time.Duration `json:"-"`
}

// requestEventJSON is the wire shape of a RequestEvent at /debug/requests.
type requestEventJSON struct {
	RequestEvent
	TraceID    string  `json:"trace_id"`
	DurationMS float64 `json:"duration_ms"`
}

// RequestLog keeps the most recent events that crossed the slow threshold
// (or failed), in a fixed-capacity ring, and optionally emits them as
// structured slog records. The ring makes "what was slow in the last
// minute" answerable from /debug/requests without log aggregation.
type RequestLog struct {
	slow   time.Duration
	logger *slog.Logger

	mu   sync.Mutex
	ring []RequestEvent
	next int
	full bool
}

// NewRequestLog builds a log holding up to capacity events. Events with
// Outcome "ok" are recorded only when Duration >= slow (slow <= 0 keeps
// successes out entirely); non-ok outcomes are always recorded. logger
// may be nil to keep the ring without emitting log lines.
func NewRequestLog(capacity int, slow time.Duration, logger *slog.Logger) *RequestLog {
	if capacity <= 0 {
		capacity = 64
	}
	return &RequestLog{slow: slow, logger: logger, ring: make([]RequestEvent, capacity)}
}

// Record files one event if it qualifies (failed, or slower than the
// threshold). Safe for concurrent use.
func (l *RequestLog) Record(ev RequestEvent) {
	if l == nil {
		return
	}
	if ev.Outcome == "ok" && (l.slow <= 0 || ev.Duration < l.slow) {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	l.mu.Lock()
	l.ring[l.next] = ev
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
	if l.logger != nil {
		l.logger.Warn("slow request",
			slog.String("trace_id", fmt.Sprintf("%016x", ev.TraceID)),
			slog.Uint64("req_id", ev.ReqID),
			slog.String("type", ev.Type),
			slog.String("tenant", ev.Tenant),
			slog.String("class", ev.Class),
			slog.String("outcome", ev.Outcome),
			slog.Duration("duration", ev.Duration),
		)
	}
}

// Recent returns the retained events, oldest first.
func (l *RequestLog) Recent() []RequestEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []RequestEvent
	if l.full {
		out = append(out, l.ring[l.next:]...)
	}
	out = append(out, l.ring[:l.next]...)
	return out
}

// MarshalJSON renders the retained events for /debug/requests.
func (l *RequestLog) MarshalJSON() ([]byte, error) {
	evs := l.Recent()
	out := make([]requestEventJSON, len(evs))
	for i, ev := range evs {
		out[i] = requestEventJSON{
			RequestEvent: ev,
			TraceID:      fmt.Sprintf("%016x", ev.TraceID),
			DurationMS:   float64(ev.Duration) / float64(time.Millisecond),
		}
	}
	return json.Marshal(out)
}
