package obs

import (
	"context"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler builds the ops-plane HTTP handler:
//
//	/metrics         Prometheus text exposition of reg
//	/healthz         liveness — 200 as long as the process serves HTTP
//	/readyz          readiness — 200 when ready() returns nil, 503 with
//	                 the error text otherwise (nil ready() means always
//	                 ready once the listener is up)
//	/debug/requests  JSON ring of recent slow/failed requests (404 when
//	                 rlog is nil)
//	/debug/pprof/*   net/http/pprof profiles
//
// It is mounted on a sidecar listener, never on the CoIC wire port.
func Handler(reg *Registry, ready func(context.Context) error, rlog *RequestLog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil {
			ctx, cancel := context.WithTimeout(r.Context(), 3*time.Second)
			defer cancel()
			if err := ready(ctx); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				_, _ = w.Write([]byte("not ready: " + err.Error() + "\n"))
				return
			}
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		if rlog == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		b, err := rlog.MarshalJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(b)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
