package obs

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("coic_requests_total", "Requests.", L("class", "interactive"), L("outcome", "ok")).Add(7)
	rlog := NewRequestLog(8, time.Millisecond, nil)
	rlog.Record(RequestEvent{TraceID: 0xabc, ReqID: 3, Type: "exec", Class: "interactive", Outcome: "deadline", Duration: 40 * time.Millisecond})

	var unready atomic.Bool
	ready := func(ctx context.Context) error {
		if unready.Load() {
			return errors.New("cloud link down")
		}
		return nil
	}
	srv := httptest.NewServer(Handler(reg, ready, rlog))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("/readyz = %d, want 200", code)
	}
	unready.Store(true)
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "cloud link down") {
		t.Fatalf("/readyz after drop = %d %q, want 503 with reason", code, body)
	}
	unready.Store(false)
	if code, _ := get("/readyz"); code != 200 {
		t.Fatal("/readyz should recover when the dependency returns")
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, `coic_requests_total{class="interactive",outcome="ok"} 7`) {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if problems := Lint(strings.NewReader(body)); len(problems) != 0 {
		t.Fatalf("/metrics fails lint: %v", problems)
	}

	code, body = get("/debug/requests")
	if code != 200 {
		t.Fatalf("/debug/requests = %d", code)
	}
	var evs []map[string]any
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("/debug/requests not JSON: %v\n%s", err, body)
	}
	if len(evs) != 1 || evs[0]["trace_id"] != "0000000000000abc" || evs[0]["outcome"] != "deadline" {
		t.Fatalf("/debug/requests = %v", evs)
	}

	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestHandlerNoRequestLog(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("/debug/requests without ring = %d, want 404", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/readyz with nil ready = %d, want 200", resp.StatusCode)
	}
}

func TestRequestLogRing(t *testing.T) {
	l := NewRequestLog(3, 10*time.Millisecond, nil)
	l.Record(RequestEvent{ReqID: 1, Outcome: "ok", Duration: time.Millisecond}) // fast ok: dropped
	for i := uint64(2); i <= 5; i++ {
		l.Record(RequestEvent{ReqID: i, Outcome: "error"})
	}
	evs := l.Recent()
	if len(evs) != 3 {
		t.Fatalf("ring holds %d, want 3", len(evs))
	}
	for i, want := range []uint64{3, 4, 5} {
		if evs[i].ReqID != want {
			t.Fatalf("ring order = %v, want oldest-first 3,4,5", evs)
		}
	}
	l2 := NewRequestLog(4, 0, nil)
	l2.Record(RequestEvent{ReqID: 1, Outcome: "ok", Duration: time.Hour})
	if len(l2.Recent()) != 0 {
		t.Fatal("slow<=0 should keep successes out of the ring")
	}
}

func TestRequestLogSlogEmission(t *testing.T) {
	var buf strings.Builder
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	l := NewRequestLog(4, time.Millisecond, logger)
	l.Record(RequestEvent{TraceID: 0xdead, ReqID: 9, Type: "exec", Class: "interactive", Outcome: "ok", Duration: 50 * time.Millisecond})
	out := buf.String()
	if !strings.Contains(out, "000000000000dead") || !strings.Contains(out, "slow request") {
		t.Fatalf("slog line missing trace: %s", out)
	}
}
