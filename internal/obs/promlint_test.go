package obs

import (
	"strings"
	"testing"
)

func lintStr(s string) []string { return Lint(strings.NewReader(s)) }

func TestLintCleanPayload(t *testing.T) {
	payload := `# HELP coic_requests_total Requests.
# TYPE coic_requests_total counter
coic_requests_total{class="interactive",outcome="ok"} 12
# HELP coic_stage_duration_seconds Stage latency.
# TYPE coic_stage_duration_seconds histogram
coic_stage_duration_seconds_bucket{stage="exec",le="0.01"} 3
coic_stage_duration_seconds_bucket{stage="exec",le="+Inf"} 4
coic_stage_duration_seconds_sum{stage="exec"} 0.05
coic_stage_duration_seconds_count{stage="exec"} 4
`
	if problems := lintStr(payload); len(problems) != 0 {
		t.Fatalf("clean payload flagged: %v", problems)
	}
}

func TestLintCatchesProblems(t *testing.T) {
	cases := []struct {
		name    string
		payload string
		wantSub string
	}{
		{
			"samples without TYPE",
			"mystery_metric 3\n",
			"no TYPE",
		},
		{
			"counter without _total",
			"# TYPE hits counter\nhits 3\n",
			"should end in _total",
		},
		{
			"bad value",
			"# TYPE x_total counter\nx_total three\n",
			"unparseable value",
		},
		{
			"histogram missing +Inf",
			"# TYPE lat histogram\nlat_bucket{le=\"1\"} 2\nlat_sum 1\nlat_count 2\n",
			"missing +Inf",
		},
		{
			"histogram missing _count",
			"# TYPE lat histogram\nlat_bucket{le=\"+Inf\"} 2\nlat_sum 1\n",
			"missing _count",
		},
		{
			"HELP after samples",
			"# TYPE x_total counter\nx_total 1\n# HELP x_total late help\n",
			"after its samples",
		},
		{
			"bad metric name",
			"# TYPE 9bad counter\n",
			"invalid metric name",
		},
		{
			"unterminated label set",
			"# TYPE x_total counter\nx_total{a=\"b\" 1\n",
			"unterminated",
		},
		{
			"reserved label name",
			"# TYPE x_total counter\nx_total{__name__=\"y\"} 1\n",
			"invalid label name",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := lintStr(tc.payload)
			for _, p := range problems {
				if strings.Contains(p, tc.wantSub) {
					return
				}
			}
			t.Fatalf("want a problem containing %q, got %v", tc.wantSub, problems)
		})
	}
}

func TestLintAcceptsEscapedLabelValues(t *testing.T) {
	payload := "# TYPE x_total counter\nx_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"
	if problems := lintStr(payload); len(problems) != 0 {
		t.Fatalf("escaped label value flagged: %v", problems)
	}
}
