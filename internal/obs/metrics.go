package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use; all methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefLatencyBuckets are the default histogram bounds for request-latency
// observations, in seconds: half a millisecond to ten seconds, roughly
// exponential. Everything above the last bound lands in the implicit +Inf
// bucket.
func DefLatencyBuckets() []float64 {
	return []float64{
		0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// Histogram is a fixed-bound bucketed latency histogram: one atomic
// counter per bucket, an atomic sample count and an atomic nanosecond
// sum. Observing is a binary search over the bounds plus three atomic
// adds — no lock, no allocation — so the serving hot path can observe
// every request. Quantiles are bucket-approximated; the exact-sample
// metrics.Histogram remains the tool for offline experiments.
//
// Build one through Registry.Histogram; the zero value is not usable.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, in seconds
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets()
	}
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	return &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1), // +1 for +Inf
	}
}

// Observe records one duration. Negative durations clamp to zero (clock
// misuse must not corrupt the distribution).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	// First bound >= s; beyond every bound lands in the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, s)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// ObserveValue records one dimensionless sample — e.g. a batch size —
// against the same bounds/count/sum machinery. Bounds are then plain
// values rather than seconds, and the rendered _sum accumulates the
// plain value (stored at nanosecond scale so the exposition path divides
// it back out). Negative samples clamp to zero like Observe.
func (h *Histogram) ObserveValue(v float64) {
	if v < 0 {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(v * float64(time.Second)))
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// ApproxQuantile reports the q-quantile (0 ≤ q ≤ 1) as the upper bound of
// the bucket the quantile rank falls in — the standard bucketed
// approximation. Returns 0 with no samples; a rank in the +Inf bucket
// reports the highest finite bound (there is no better estimate).
func (h *Histogram) ApproxQuantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return time.Duration(h.bounds[i] * float64(time.Second))
			}
			break
		}
	}
	return time.Duration(h.bounds[len(h.bounds)-1] * float64(time.Second))
}

// snapshot returns cumulative bucket counts (le semantics, +Inf last),
// the count and the sum — read without a lock; buckets may trail count by
// in-flight observations, which Prometheus scrape semantics tolerate.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum time.Duration) {
	cum = make([]uint64, len(h.buckets))
	var running uint64
	for i := range h.buckets {
		running += h.buckets[i].Load()
		cum[i] = running
	}
	return cum, h.count.Load(), time.Duration(h.sum.Load())
}
