package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text-exposition payload the way
// `promtool check metrics` would, without the promtool dependency:
// metric/label name syntax, HELP/TYPE before samples of the same family,
// parseable sample values, histograms complete with a +Inf bucket and
// _sum/_count, counters named *_total (warning-grade in promtool,
// error-grade here so our own catalog stays consistent). It returns one
// message per problem; an empty slice means the payload is clean.
func Lint(r io.Reader) []string {
	var problems []string
	addf := func(line int, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type famState struct {
		typ     string
		samples bool
		// histogram completeness tracking
		hasInf, hasSum, hasCount bool
	}
	fams := map[string]*famState{}
	order := []string{} // first-appearance order for final checks
	fam := func(name string) *famState {
		f := fams[name]
		if f == nil {
			f = &famState{}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				// Plain comment; the format allows it.
				continue
			}
			name := fields[2]
			if !validMetricName(name) {
				addf(n, "invalid metric name %q in %s line", name, fields[1])
				continue
			}
			f := fam(name)
			if f.samples {
				addf(n, "%s for %s after its samples", fields[1], name)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					addf(n, "TYPE line for %s missing type", name)
					continue
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					if f.typ != "" {
						addf(n, "duplicate TYPE for %s", name)
					}
					f.typ = fields[3]
				default:
					addf(n, "unknown type %q for %s", fields[3], name)
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			addf(n, "%v", err)
			continue
		}
		if !validMetricName(name) {
			addf(n, "invalid metric name %q", name)
			continue
		}
		for _, l := range labels {
			if !validLabelName(l.Name) {
				addf(n, "invalid label name %q on %s", l.Name, name)
			}
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			addf(n, "unparseable value %q for %s", value, name)
		}

		// Resolve histogram series to their base family.
		base := name
		var suffix string
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, s)
			if trimmed != name {
				if bf, ok := fams[trimmed]; ok && bf.typ == "histogram" {
					base, suffix = trimmed, s
				}
				break
			}
		}
		f := fam(base)
		f.samples = true
		switch suffix {
		case "_bucket":
			for _, l := range labels {
				if l.Name == "le" && l.Value == "+Inf" {
					f.hasInf = true
				}
			}
		case "_sum":
			f.hasSum = true
		case "_count":
			f.hasCount = true
		}
		if f.typ == "histogram" && suffix == "" {
			addf(n, "bare sample %s for histogram family", name)
		}
		if f.typ == "counter" && !strings.HasSuffix(base, "_total") {
			addf(n, "counter %s should end in _total", base)
		}
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("read: %v", err))
	}

	for _, name := range order {
		f := fams[name]
		if f.typ == "" && f.samples {
			problems = append(problems, fmt.Sprintf("metric %s has samples but no TYPE", name))
		}
		if f.typ == "histogram" && f.samples {
			if !f.hasInf {
				problems = append(problems, fmt.Sprintf("histogram %s missing +Inf bucket", name))
			}
			if !f.hasSum {
				problems = append(problems, fmt.Sprintf("histogram %s missing _sum", name))
			}
			if !f.hasCount {
				problems = append(problems, fmt.Sprintf("histogram %s missing _count", name))
			}
		}
	}
	return problems
}

// parseSample splits `name{l1="v1",...} value [timestamp]` into parts.
func parseSample(line string) (name string, labels []Label, value string, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i >= 0 {
		name, rest = rest[:i], rest[i:]
	} else {
		return "", nil, "", fmt.Errorf("sample %q has no value", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote, escaped := false, false
		for i := 1; i < len(rest); i++ {
			c := rest[i]
			switch {
			case escaped:
				escaped = false
			case c == '\\' && inQuote:
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, "", fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err = parseLabels(rest[1:end])
		if err != nil {
			return "", nil, "", fmt.Errorf("%v in %q", err, line)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, "", fmt.Errorf("sample %q needs a value and optional timestamp", line)
	}
	return name, labels, fields[0], nil
}

func parseLabels(s string) ([]Label, error) {
	var labels []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label %q missing '='", s)
		}
		lname := s[:eq]
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("label %s value not quoted", lname)
		}
		s = s[1:]
		var val strings.Builder
		i := 0
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[i])
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %s", s[i], lname)
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i == len(s) {
			return nil, fmt.Errorf("unterminated value for label %s", lname)
		}
		labels = append(labels, Label{Name: lname, Value: val.String()})
		s = s[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return labels, nil
}
