// Package obs is the live operations plane of the CoIC daemons: lock-cheap
// counters, gauges and bounded-bucket latency histograms rendered in
// Prometheus text exposition format, an HTTP sidecar handler exposing
// /metrics, /healthz, /readyz, /debug/requests and net/http/pprof, and a
// ring buffer of recent slow requests for cross-tier correlation by trace
// ID.
//
// It is deliberately not a Prometheus client library dependency: the
// container images bake in no third-party modules, and the subset a
// scraper needs — counter/gauge/histogram families with labels, HELP/TYPE
// metadata, correct escaping — is small. metrics.Histogram (exact samples,
// single-goroutine) remains the tool for offline experiments; obs.Histogram
// trades exact quantiles for atomic per-bucket counters so the serving hot
// path can observe every request without a lock.
package obs
