package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // <= 0.001
	h.Observe(1 * time.Millisecond)   // boundary: le=0.001 bucket
	h.Observe(5 * time.Millisecond)   // <= 0.01
	h.Observe(2 * time.Second)        // +Inf
	h.Observe(-time.Second)           // clamps to 0, first bucket

	cum, count, sum := h.snapshot()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	want := []uint64{3, 4, 4, 5} // cumulative: le=0.001, le=0.01, le=0.1, +Inf
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
	wantSum := 500*time.Microsecond + time.Millisecond + 5*time.Millisecond + 2*time.Second
	if sum != wantSum {
		t.Fatalf("sum = %v, want %v", sum, wantSum)
	}
}

func TestHistogramApproxQuantile(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01, 0.1})
	if q := h.ApproxQuantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	if q := h.ApproxQuantile(0.5); q != time.Millisecond {
		t.Fatalf("p50 = %v, want upper bound 1ms", q)
	}
	if q := h.ApproxQuantile(0.99); q != 100*time.Millisecond {
		t.Fatalf("p99 = %v, want upper bound 100ms", q)
	}
	h.Observe(time.Minute) // +Inf bucket
	if q := h.ApproxQuantile(1); q != 100*time.Millisecond {
		t.Fatalf("p100 in +Inf bucket = %v, want highest finite bound", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(nil)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
	cum, _, _ := h.snapshot()
	if got := cum[len(cum)-1]; got != goroutines*per {
		t.Fatalf("+Inf cumulative = %d, want %d", got, goroutines*per)
	}
}

func TestDefaultBucketsSorted(t *testing.T) {
	b := DefLatencyBuckets()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("default buckets not strictly ascending at %d: %v", i, b)
		}
	}
}
