package track

import (
	"testing"

	"github.com/edge-immersion/coic/internal/vision"
)

// movingScene renders a frame with the object at (x, y).
func movingScene(x, y int) *vision.Frame {
	f := vision.RenderObject(vision.ClassStopSign, vision.View{
		Scale: 0.6, Brightness: 1,
		OffsetX: float64(x)/128 - 0.5,
		OffsetY: float64(y)/128 - 0.5,
	}, 128, 128)
	return f
}

func TestTrackerFollowsTranslation(t *testing.T) {
	first := movingScene(64, 64)
	// The object occupies the frame centre; box around it.
	box := Box{X: 44, Y: 44, W: 40, H: 40}
	tr, err := New(first, box, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Move the object right by 10 px per frame; the tracker must follow.
	for step := 1; step <= 3; step++ {
		frame := movingScene(64+10*step, 64)
		got, score, ok := tr.Track(frame)
		if !ok {
			t.Fatalf("step %d: lost track (score %v)", step, score)
		}
		wantX := box.X + 10*step
		if abs(got.X-wantX) > 4 {
			t.Fatalf("step %d: box.X = %d, want ≈%d", step, got.X, wantX)
		}
	}
}

func TestTrackerStationary(t *testing.T) {
	f := movingScene(64, 64)
	tr, err := New(f, Box{X: 44, Y: 44, W: 40, H: 40}, 12)
	if err != nil {
		t.Fatal(err)
	}
	got, score, ok := tr.Track(f.Clone())
	if !ok || score < 0.99 {
		t.Fatalf("self-match score = %v", score)
	}
	if got.X != 44 || got.Y != 44 {
		t.Fatalf("drifted to %+v on identical frame", got)
	}
}

func TestTrackerReportsLoss(t *testing.T) {
	f := movingScene(64, 64)
	tr, err := New(f, Box{X: 44, Y: 44, W: 40, H: 40}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// A completely different scene (different class, far offset).
	other := vision.RenderObject(vision.ClassTree, vision.View{Scale: 1, Brightness: 1}, 128, 128)
	_, score, ok := tr.Track(other)
	if ok && score > 0.9 {
		t.Fatalf("tracker claimed confident match on unrelated scene (score %v)", score)
	}
}

func TestTrackerRejectsBadBox(t *testing.T) {
	f := movingScene(64, 64)
	cases := []Box{
		{X: -1, Y: 0, W: 10, H: 10},
		{X: 0, Y: 0, W: 0, H: 10},
		{X: 120, Y: 120, W: 20, H: 20},
	}
	for _, b := range cases {
		if _, err := New(f, b, 8); err == nil {
			t.Errorf("box %+v accepted", b)
		}
	}
}

func TestBoxCenter(t *testing.T) {
	cx, cy := (Box{X: 10, Y: 20, W: 8, H: 6}).Center()
	if cx != 14 || cy != 23 {
		t.Fatalf("center = (%d,%d)", cx, cy)
	}
}

func TestTrackerSearchWindowClamped(t *testing.T) {
	// Box near the frame edge: tracking must not index out of bounds.
	f := movingScene(20, 20)
	tr, err := New(f, Box{X: 0, Y: 0, W: 30, H: 30}, 50)
	if err != nil {
		t.Fatal(err)
	}
	tr.Track(movingScene(25, 25)) // must not panic
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
