// Package track is the on-device object tracker. The paper is explicit
// that tracking results are NOT cached: "tracking is less computation-
// intensive as compared to recognition. Thus tracking is doable to be
// efficiently and accurately executed on mobile devices." CoIC clients
// therefore recognise through the edge once, then track locally between
// recognitions; this package supplies that local step with a normalised
// cross-correlation (NCC) template matcher over luma planes.
package track

import (
	"fmt"
	"math"

	"github.com/edge-immersion/coic/internal/vision"
)

// Box is an axis-aligned region in pixel coordinates.
type Box struct {
	X, Y, W, H int
}

// Center returns the box centre.
func (b Box) Center() (int, int) { return b.X + b.W/2, b.Y + b.H/2 }

// Tracker follows a template across frames using NCC within a bounded
// search window (classic short-term tracker; the window keeps per-frame
// cost proportional to motion, not frame size).
type Tracker struct {
	template []float64 // zero-mean template luma
	tplNorm  float64
	w, h     int
	box      Box
	// SearchRadius bounds per-frame motion in pixels.
	SearchRadius int
	// MinScore is the NCC score below which tracking reports lost.
	MinScore float64
}

// New initialises a tracker from the target's bounding box in the first
// frame. It returns an error when the box does not fit inside the frame.
func New(first *vision.Frame, target Box, searchRadius int) (*Tracker, error) {
	if target.W <= 0 || target.H <= 0 ||
		target.X < 0 || target.Y < 0 ||
		target.X+target.W > first.W || target.Y+target.H > first.H {
		return nil, fmt.Errorf("track: box %+v does not fit %dx%d frame", target, first.W, first.H)
	}
	if searchRadius <= 0 {
		searchRadius = 16
	}
	t := &Tracker{
		w: target.W, h: target.H,
		box:          target,
		SearchRadius: searchRadius,
		MinScore:     0.35,
	}
	t.setTemplate(first, target)
	return t, nil
}

func (t *Tracker) setTemplate(f *vision.Frame, b Box) {
	luma := f.Gray()
	tpl := make([]float64, b.W*b.H)
	var mean float64
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			v := float64(luma[(b.Y+y)*f.W+(b.X+x)])
			tpl[y*b.W+x] = v
			mean += v
		}
	}
	mean /= float64(len(tpl))
	var norm float64
	for i := range tpl {
		tpl[i] -= mean
		norm += tpl[i] * tpl[i]
	}
	t.template = tpl
	t.tplNorm = math.Sqrt(norm)
}

// Box returns the current estimate of the target location.
func (t *Tracker) Box() Box { return t.box }

// Track locates the template in the next frame. It returns the new box,
// the NCC score in [-1, 1], and whether the target is still considered
// tracked (score ≥ MinScore). On success the box estimate advances; on
// loss it stays where it was, which is when an AR app would issue a fresh
// recognition through CoIC.
func (t *Tracker) Track(frame *vision.Frame) (Box, float64, bool) {
	luma := frame.Gray()
	bestScore := math.Inf(-1)
	best := t.box

	x0 := clampInt(t.box.X-t.SearchRadius, 0, frame.W-t.w)
	x1 := clampInt(t.box.X+t.SearchRadius, 0, frame.W-t.w)
	y0 := clampInt(t.box.Y-t.SearchRadius, 0, frame.H-t.h)
	y1 := clampInt(t.box.Y+t.SearchRadius, 0, frame.H-t.h)

	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			score := t.ncc(luma, frame.W, cx, cy)
			if score > bestScore {
				bestScore = score
				best = Box{X: cx, Y: cy, W: t.w, H: t.h}
			}
		}
	}
	ok := bestScore >= t.MinScore
	if ok {
		t.box = best
	}
	return t.box, bestScore, ok
}

// ncc computes normalised cross-correlation between the template and the
// window at (cx, cy).
func (t *Tracker) ncc(luma []uint8, stride, cx, cy int) float64 {
	n := t.w * t.h
	var mean float64
	for y := 0; y < t.h; y++ {
		row := (cy+y)*stride + cx
		for x := 0; x < t.w; x++ {
			mean += float64(luma[row+x])
		}
	}
	mean /= float64(n)
	var dot, norm float64
	for y := 0; y < t.h; y++ {
		row := (cy+y)*stride + cx
		for x := 0; x < t.w; x++ {
			d := float64(luma[row+x]) - mean
			dot += d * t.template[y*t.w+x]
			norm += d * d
		}
	}
	if norm == 0 || t.tplNorm == 0 {
		return 0
	}
	return dot / (math.Sqrt(norm) * t.tplNorm)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
