package dnn

import (
	"reflect"
	"sync"
	"testing"

	"github.com/edge-immersion/coic/internal/tensor"
)

// TestCachedRunnerConcurrencyContract guards the documented contract
// (the counterpart of metrics.Histogram's contract test, with the
// opposite polarity): CachedRunner IS safe for concurrent use, so batch
// workers may share one runner. The test hammers Forward, ForwardBatch,
// Stats and Entries from many goroutines under -race, then checks the
// counters add up — a torn lookup/counter pair or a mutated memo entry
// shows up as a count mismatch or a race report.
func TestCachedRunnerConcurrencyContract(t *testing.T) {
	net := NewEdgeNet(testClasses[:3], 8, 5)
	cr := NewCachedRunner(net, 0)
	rng := newTestRNG()
	distinct := make([]*tensor.Tensor, 4)
	for i := range distinct {
		in := tensor.New(3, 8, 8)
		in.RandNormal(rng, 1)
		distinct[i] = in
	}
	want := make([]*tensor.Tensor, len(distinct))
	for i, in := range distinct {
		want[i] = net.Forward(in)
	}

	const goroutines, iters = 8, 6
	var wg sync.WaitGroup
	var steps sync.Map // goroutine -> layer steps it triggered
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mySteps uint64
			layers := uint64(len(net.Layers))
			for i := 0; i < iters; i++ {
				in := distinct[(g+i)%len(distinct)]
				if g%2 == 0 {
					out := cr.Forward(in)
					mySteps += layers
					requireBitEqual(t, "concurrent Forward", out, want[(g+i)%len(distinct)])
				} else {
					batch := []*tensor.Tensor{in, distinct[i%len(distinct)], in}
					outs := cr.ForwardBatch(batch)
					// One step per unique activation group per layer: the
					// duplicated member never adds steps.
					uniq := uint64(1)
					if batch[1] != in {
						uniq = 2
					}
					mySteps += uniq * layers
					for bi, b := range batch {
						wi := 0
						for di, d := range distinct {
							if d == b {
								wi = di
							}
						}
						requireBitEqual(t, "concurrent ForwardBatch", outs[bi], want[wi])
					}
				}
				cr.Stats()
				cr.Entries()
			}
			steps.Store(g, mySteps)
		}()
	}
	wg.Wait()
	var total uint64
	steps.Range(func(_, v any) bool { total += v.(uint64); return true })
	hits, misses := cr.Stats()
	if hits+misses != total {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d layer steps (torn counter update)",
			hits, misses, hits+misses, total)
	}
}

// TestCachedRunnerStaysSynchronised fails if someone removes the mutex:
// that would silently change the documented concurrent-use contract the
// batch path relies on (and defeat go vet's copylocks guard). The inverse
// of metrics.TestHistogramStaysUnsynchronised — these two types document
// opposite contracts, and each test pins its own.
func TestCachedRunnerStaysSynchronised(t *testing.T) {
	typ := reflect.TypeOf(CachedRunner{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		name := f.Type.String()
		if name == "sync.Mutex" || name == "sync.RWMutex" {
			return
		}
	}
	t.Fatal("CachedRunner has no mutex field: it is documented safe for concurrent use by batch workers; restore the lock or rewrite the contract (and this test) deliberately")
}

// TestCachedRunnerResetDuringTraffic verifies Reset can interleave with
// live traffic without corrupting results: counters may reset mid-flight
// but outputs must stay golden (entries are write-once clones, so an old
// pointer survives the map swap).
func TestCachedRunnerResetDuringTraffic(t *testing.T) {
	net := NewEdgeNet(testClasses[:2], 8, 9)
	cr := NewCachedRunner(net, 0)
	in := tensor.New(3, 8, 8)
	in.RandNormal(newTestRNG(), 1)
	want := net.Forward(in)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				cr.Reset()
			}
		}
	}()
	for i := 0; i < 50; i++ {
		requireBitEqual(t, "Forward racing Reset", cr.Forward(in), want)
	}
	close(stop)
	wg.Wait()
}
