package dnn

import (
	"math"

	"github.com/edge-immersion/coic/internal/tensor"
)

// This file implements batched network execution: N inputs advance
// through the layer stack together, and members whose activations are
// bit-identical at a layer boundary share a single forward pass of that
// layer (the paper's fine-grained reuse, applied *inside* one batch).
// Identical camera frames from co-located users collapse at the input;
// activations that only become identical mid-network — e.g. inputs that
// differ in values a ReLU clamps away — merge at the first boundary where
// their bits agree, share the remaining prefix, and fork again only at
// the output scatter.
//
// The golden contract: every output is bit-for-bit identical to a serial
// Forward of the same input. Sharing therefore requires exact equality
// (hash-bucketed, then confirmed byte-wise — a hash collision must never
// merge two genuinely different activations), and the batched Dense
// kernel (tensor.MatMulT) accumulates in MatVec's exact order.

// batchGroup is the set of batch members whose activations are
// bit-identical at the current layer boundary.
type batchGroup struct {
	x       *tensor.Tensor
	hash    uint64
	members []int
	// aliased marks x as shared with a CachedRunner memo entry: it must
	// be cloned, never handed out, so cache contents stay immutable.
	aliased bool
}

// tensorsEqual reports bit-pattern equality (shape and every element).
// Plain == would treat equal NaN bit patterns as different; batching
// compares bits, exactly like hashTensor digests them.
func tensorsEqual(a, b *tensor.Tensor) bool {
	if !tensor.EqualShape(a, b) {
		return false
	}
	for i, v := range a.Data {
		if math.Float32bits(v) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// coalesce merges groups whose current activations are bit-identical,
// concatenating their member lists. Group order (by first member) is
// preserved, keeping batched execution deterministic.
func coalesce(groups []*batchGroup) []*batchGroup {
	if len(groups) <= 1 {
		return groups
	}
	res := groups[:0:0]
	index := map[uint64][]int{}
	for _, g := range groups {
		merged := false
		for _, ri := range index[g.hash] {
			r := res[ri]
			if tensorsEqual(r.x, g.x) {
				r.members = append(r.members, g.members...)
				merged = true
				break
			}
		}
		if !merged {
			index[g.hash] = append(index[g.hash], len(res))
			res = append(res, g)
		}
	}
	return res
}

// groupInputs buckets the batch inputs into initial groups.
func groupInputs(ins []*tensor.Tensor) []*batchGroup {
	groups := make([]*batchGroup, len(ins))
	for i, t := range ins {
		groups[i] = &batchGroup{x: t, hash: hashTensor(t), members: []int{i}}
	}
	return coalesce(groups)
}

// batchedDense runs one Dense layer over every group as a single blocked
// matmul: group activations pack into an (nGroups, In) matrix, one
// MatMulT pass reuses each weight row across the whole batch, and the
// bias adds after the full sum — the exact operation order of the serial
// MatVec + AddInPlace path.
func batchedDense(d *Dense, groups []*batchGroup) {
	n := len(groups)
	xbuf := tensor.GetBuf(n * d.In)
	for gi, g := range groups {
		if g.x.Len() != d.In {
			// Mirror the serial panic path rather than batch past it.
			d.Forward(g.x)
		}
		copy(xbuf[gi*d.In:(gi+1)*d.In], g.x.Data)
	}
	ybuf := tensor.GetBuf(n * d.Out)
	tensor.MatMulTInto(ybuf, xbuf, d.W.Data, n, d.Out, d.In)
	for gi, g := range groups {
		y := tensor.New(d.Out)
		copy(y.Data, ybuf[gi*d.Out:(gi+1)*d.Out])
		y.AddInPlace(d.B)
		g.x, g.aliased = y, false
	}
	tensor.PutBuf(xbuf)
	tensor.PutBuf(ybuf)
}

// forwardGroups advances every group through layers[lo:hi], sharing one
// layer pass per unique activation and re-merging groups whose outputs
// converge. memo, when non-nil, additionally consults/fills the
// CachedRunner's cross-request layer memo. layerRuns, when non-nil,
// counts actual layer executions (the sharing ablation's numerator).
func forwardGroups(layers []Layer, lo, hi int, groups []*batchGroup, memo *CachedRunner, layerRuns *int) []*batchGroup {
	for li := lo; li < hi; li++ {
		l := layers[li]
		switch {
		case memo != nil:
			for _, g := range groups {
				out, fromCache := memo.step(li, l, g.x, g.hash)
				g.x, g.aliased = out, fromCache
				if !fromCache && layerRuns != nil {
					*layerRuns++
				}
			}
		default:
			if d, ok := l.(*Dense); ok && len(groups) > 1 {
				batchedDense(d, groups)
			} else {
				// Groups are independent, so the pass parallelises
				// without changing any group's operation order.
				tensor.ParallelFor(len(groups), 1, func(s, e int) {
					for i := s; i < e; i++ {
						groups[i].x = l.Forward(groups[i].x)
						groups[i].aliased = false
					}
				})
			}
			if layerRuns != nil {
				*layerRuns += len(groups)
			}
		}
		for _, g := range groups {
			g.hash = hashTensor(g.x)
		}
		groups = coalesce(groups)
	}
	return groups
}

// scatter hands each batch member its own output tensor: the group's
// tensor goes to its first member when exclusively owned, clones
// everywhere else, so no two members (and no memo entry) alias storage.
func scatter(groups []*batchGroup, n int) []*tensor.Tensor {
	outs := make([]*tensor.Tensor, n)
	for _, g := range groups {
		for mi, m := range g.members {
			if mi == 0 && !g.aliased {
				outs[m] = g.x
			} else {
				outs[m] = g.x.Clone()
			}
		}
	}
	return outs
}

// ForwardBatch runs the full network over a batch of inputs and returns
// one output per input, each bit-for-bit identical to Forward of that
// input alone. Members with identical activations share layer passes;
// Dense layers run the whole batch as one blocked matmul.
func (n *Network) ForwardBatch(ins []*tensor.Tensor) []*tensor.Tensor {
	outs, _ := n.forwardBatch(ins, nil, nil)
	return outs
}

func (n *Network) forwardBatch(ins []*tensor.Tensor, memo *CachedRunner, layerRuns *int) ([]*tensor.Tensor, []*batchGroup) {
	if len(ins) == 0 {
		return nil, nil
	}
	groups := forwardGroups(n.Layers, 0, len(n.Layers), groupInputs(ins), memo, layerRuns)
	return scatter(groups, len(ins)), groups
}

// FeaturesBatch computes the trunk feature descriptor for a batch of
// inputs, sharing trunk passes across bit-identical activations. Each
// returned vector equals Features of that input alone.
func (n *Network) FeaturesBatch(ins []*tensor.Tensor) [][]float32 {
	if len(ins) == 0 {
		return nil
	}
	if n.FeatureLayer < 0 || n.FeatureLayer >= len(n.Layers) {
		return [][]float32{n.Features(ins[0])} // trigger the serial panic path
	}
	groups := forwardGroups(n.Layers, 0, n.FeatureLayer+1, groupInputs(ins), nil, nil)
	outs := make([][]float32, len(ins))
	for _, g := range groups {
		f := featureVector(g.x)
		for mi, m := range g.members {
			if mi == 0 {
				outs[m] = f
			} else {
				outs[m] = append([]float32(nil), f...)
			}
		}
	}
	return outs
}

// ForwardBatch is the batched form of Forward: unique activations run
// each layer once (consulting and filling the cross-request memo), and
// members fork copies only where their activations diverge. Outputs are
// bit-identical to serial Forward calls. Hits and misses count once per
// unique activation group per layer, not once per member.
func (c *CachedRunner) ForwardBatch(ins []*tensor.Tensor) []*tensor.Tensor {
	outs, _ := c.Net.forwardBatch(ins, c, nil)
	return outs
}
