package dnn

import (
	"fmt"
	"math"

	"github.com/edge-immersion/coic/internal/tensor"
	"github.com/edge-immersion/coic/internal/xrand"
)

// Network is an ordered stack of layers with a designated feature tap: the
// layer whose output is used as the CoIC feature descriptor. In the paper
// the client "pre-processes the request to generate ... a feature
// descriptor of user's input"; here that means running layers
// [0..FeatureLayer] — the trunk — on the device, while the cloud runs all
// layers to produce a classification.
type Network struct {
	// NetName identifies the model (carried in the serialised form).
	NetName string
	// InputShape is the expected CHW input, e.g. (3, 64, 64).
	InputShape []int
	// Layers run in order.
	Layers []Layer
	// FeatureLayer is the index of the layer whose output is the
	// descriptor (-1 when the network has no feature tap).
	FeatureLayer int
	// Classes names the output classes; len(Classes) must match the
	// final layer width.
	Classes []string
}

// Forward runs the full network on input and returns the final output.
func (n *Network) Forward(in *tensor.Tensor) *tensor.Tensor {
	x := in
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// ForwardAll runs the full network and returns every intermediate output,
// outs[i] being the output of Layers[i]. Used by the fine-grained layer
// cache and by tests.
func (n *Network) ForwardAll(in *tensor.Tensor) []*tensor.Tensor {
	outs := make([]*tensor.Tensor, len(n.Layers))
	x := in
	for i, l := range n.Layers {
		x = l.Forward(x)
		outs[i] = x
	}
	return outs
}

// Features runs the trunk (layers up to and including FeatureLayer) and
// returns the mean-centred, L2-normalised feature vector. Centring
// matters: ReLU activations are non-negative, so uncentred descriptors
// crowd into one orthant and lose angular separation between classes;
// subtracting the per-vector mean restores it. This is the client-side
// descriptor extraction step of the CoIC protocol.
func (n *Network) Features(in *tensor.Tensor) []float32 {
	if n.FeatureLayer < 0 || n.FeatureLayer >= len(n.Layers) {
		panic(fmt.Sprintf("dnn: network %s has no feature layer", n.NetName))
	}
	x := in
	for i := 0; i <= n.FeatureLayer; i++ {
		x = n.Layers[i].Forward(x)
	}
	return featureVector(x)
}

// featureVector post-processes a feature-layer activation into the
// descriptor: mean-centred, L2-normalised, copied out of the activation.
func featureVector(x *tensor.Tensor) []float32 {
	v := x.Clone()
	var mean float32
	for _, f := range v.Data {
		mean += f
	}
	mean /= float32(len(v.Data))
	for i := range v.Data {
		v.Data[i] -= mean
	}
	v.Normalize()
	return v.Data
}

// Classify runs the full network and returns the winning class index, its
// name and the softmax confidence.
func (n *Network) Classify(in *tensor.Tensor) (int, string, float32) {
	out := n.Forward(in)
	idx, conf := out.Argmax()
	name := ""
	if idx < len(n.Classes) {
		name = n.Classes[idx]
	}
	return idx, name, conf
}

// TrunkFLOPs reports the cost of descriptor extraction (layers up to and
// including the feature layer) for the network's input shape.
func (n *Network) TrunkFLOPs() int64 {
	return n.flopsUpTo(n.FeatureLayer)
}

// TotalFLOPs reports the cost of a full forward pass.
func (n *Network) TotalFLOPs() int64 {
	return n.flopsUpTo(len(n.Layers) - 1)
}

func (n *Network) flopsUpTo(last int) int64 {
	shape := n.InputShape
	var total int64
	for i := 0; i <= last && i < len(n.Layers); i++ {
		total += n.Layers[i].FLOPs(shape)
		shape = n.Layers[i].OutputShape(shape)
	}
	return total
}

// FeatureDim reports the length of the descriptor vector.
func (n *Network) FeatureDim() int {
	shape := n.InputShape
	for i := 0; i <= n.FeatureLayer; i++ {
		shape = n.Layers[i].OutputShape(shape)
	}
	d := 1
	for _, s := range shape {
		d *= s
	}
	return d
}

// Validate checks internal consistency: layer shapes chain, the feature
// tap exists, and the class list matches the head width. Returns an error
// rather than panicking so loaders can reject corrupt models gracefully.
func (n *Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("dnn: network %q has no layers", n.NetName)
	}
	if len(n.InputShape) != 3 {
		return fmt.Errorf("dnn: network %q input shape %v is not CHW", n.NetName, n.InputShape)
	}
	if n.FeatureLayer < -1 || n.FeatureLayer >= len(n.Layers) {
		return fmt.Errorf("dnn: network %q feature layer %d out of range", n.NetName, n.FeatureLayer)
	}
	seen := map[string]bool{}
	shape := n.InputShape
	for i, l := range n.Layers {
		if seen[l.Name()] {
			return fmt.Errorf("dnn: duplicate layer name %q", l.Name())
		}
		seen[l.Name()] = true
		next := l.OutputShape(shape)
		for _, d := range next {
			if d <= 0 {
				return fmt.Errorf("dnn: layer %d (%s) collapses shape %v to %v", i, l.Name(), shape, next)
			}
		}
		shape = next
	}
	if len(n.Classes) > 0 {
		width := 1
		for _, d := range shape {
			width *= d
		}
		if width != len(n.Classes) {
			return fmt.Errorf("dnn: %d classes but head width %d", len(n.Classes), width)
		}
	}
	return nil
}

// Trunk returns a view of the network truncated at the feature layer: the
// model a CoIC mobile client ships. Layers are shared, not copied — the
// trunk is a cheap façade over the same weights.
func (n *Network) Trunk() *Network {
	return &Network{
		NetName:      n.NetName + "-trunk",
		InputShape:   n.InputShape,
		Layers:       n.Layers[:n.FeatureLayer+1],
		FeatureLayer: n.FeatureLayer,
	}
}

// NewEdgeNet builds the reference CoIC recognition network ("EdgeNet"):
// three conv/relu blocks with pooling, a global-average-pool feature tap
// (the 64-d descriptor), and a classification head. Weights are
// He-initialised from a deterministic stream, so every process builds
// bit-identical models — the property that lets client descriptors match
// cloud-side cache keys. The GAP tap makes descriptors stable under the
// viewpoint changes two co-located users experience while their
// class-discriminating colour/texture statistics stay apart (verified by
// the A-threshold ablation).
func NewEdgeNet(classes []string, inputSize int, seed uint64) *Network {
	rng := xrand.New(seed)
	conv := func(name string, inC, outC int) *Conv2D {
		c := NewConv2D(name, inC, outC, 3, 1, 1)
		fanIn := float64(inC * 3 * 3)
		c.W.RandNormal(rng.Fork(name+"/w"), sqrt(2/fanIn))
		return c
	}
	dense := func(name string, in, out int) *Dense {
		d := NewDense(name, in, out)
		d.W.RandNormal(rng.Fork(name+"/w"), sqrt(2/float64(in)))
		return d
	}
	n := &Network{
		NetName:    "edgenet",
		InputShape: []int{3, inputSize, inputSize},
		Layers: []Layer{
			conv("conv1", 3, 16),
			&ReLU{LayerName: "relu1"},
			NewMaxPool2D("pool1", 2, 2),
			conv("conv2", 16, 32),
			&ReLU{LayerName: "relu2"},
			NewMaxPool2D("pool2", 2, 2),
			conv("conv3", 32, 64),
			&ReLU{LayerName: "relu3"},
			&GlobalAvgPool{LayerName: "gap"},
			dense("fc1", 64, 64),
			&ReLU{LayerName: "relu4"},
			dense("fc2", 64, len(classes)),
			&Softmax{LayerName: "softmax"},
		},
		FeatureLayer: 8, // output of gap: the 64-d descriptor
		Classes:      append([]string(nil), classes...),
	}
	if err := n.Validate(); err != nil {
		panic(err) // construction bug, not a runtime condition
	}
	return n
}

func sqrt(x float64) float64 { return math.Sqrt(x) }
