package dnn

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"github.com/edge-immersion/coic/internal/tensor"
)

// CachedRunner executes a network while memoising per-layer outputs keyed
// by the hash of each layer's input. This is the paper's "ongoing work":
// identifying reusable IC workload fine-grained, at the granularity of "the
// result of a specific DNN layer", instead of whole-task results. When two
// requests share a prefix of identical activations — same frame uploaded by
// co-located users, same pre-processed crop — every shared layer is a hit
// and only the divergent suffix is recomputed.
//
// Concurrency contract: a CachedRunner is safe for concurrent use by
// multiple goroutines — batch workers share one runner so intra-batch
// dedup composes with cross-request reuse. The contract rests on two
// invariants guarded by TestCachedRunnerConcurrencyContract:
//
//   - every access to entries/hits/misses happens inside a single
//     critical section per layer step, so a concurrent Reset can never
//     interleave between a lookup and its counter update (the tear the
//     pre-batching code risked with split lock acquisitions);
//   - memoised tensors are write-once — inserted as private clones and
//     never mutated after — which is what makes cloning a fetched entry
//     *outside* the lock sound.
//
// A CachedRunner must not be copied after first use (it would share the
// mutex but fork the map); go vet's copylocks check enforces this via the
// embedded sync.Mutex.
type CachedRunner struct {
	Net *Network

	mu      sync.Mutex
	entries map[layerKey]*tensor.Tensor
	maxEnts int

	hits   uint64
	misses uint64
}

type layerKey struct {
	layer int
	hash  uint64
}

// NewCachedRunner wraps net with a per-layer memo bounded to maxEntries
// cached activations (0 means a generous default).
func NewCachedRunner(net *Network, maxEntries int) *CachedRunner {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	return &CachedRunner{
		Net:     net,
		entries: make(map[layerKey]*tensor.Tensor),
		maxEnts: maxEntries,
	}
}

// hashTensor digests a tensor's shape and exact bit pattern.
func hashTensor(t *tensor.Tensor) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, d := range t.Shape() {
		binary.LittleEndian.PutUint32(b[:], uint32(d))
		h.Write(b[:])
	}
	for _, f := range t.Data {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(f))
		h.Write(b[:])
	}
	return h.Sum64()
}

// Forward runs the network, reusing memoised layer outputs where the layer
// input hash matches. Returned tensors are never aliased into the cache:
// hits are cloned out.
func (c *CachedRunner) Forward(in *tensor.Tensor) *tensor.Tensor {
	x := in
	for i, l := range c.Net.Layers {
		out, fromCache := c.step(i, l, x, hashTensor(x))
		if fromCache {
			out = out.Clone()
		}
		x = out
	}
	return x
}

// step advances one layer: a hit returns the memo entry itself (the
// caller must clone before exposing it — fromCache reports this), a miss
// computes, memoises a private clone and returns the freshly computed
// tensor. The lookup and its counter update share one critical section;
// the layer compute and the hit clone deliberately run outside the lock
// (entries are write-once, so the pointer stays valid across Reset).
func (c *CachedRunner) step(layer int, l Layer, x *tensor.Tensor, hash uint64) (out *tensor.Tensor, fromCache bool) {
	key := layerKey{layer: layer, hash: hash}
	c.mu.Lock()
	if cached, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return cached, true
	}
	c.mu.Unlock()
	out = l.Forward(x)
	c.mu.Lock()
	c.misses++
	if len(c.entries) < c.maxEnts {
		if _, dup := c.entries[key]; !dup {
			c.entries[key] = out.Clone()
		}
	}
	c.mu.Unlock()
	return out, false
}

// Stats reports cumulative layer-level hits and misses.
func (c *CachedRunner) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Reset drops all memoised activations and zeroes the counters.
func (c *CachedRunner) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[layerKey]*tensor.Tensor)
	c.hits, c.misses = 0, 0
}

// Entries reports how many activations are currently memoised.
func (c *CachedRunner) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
