package dnn

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"github.com/edge-immersion/coic/internal/tensor"
)

// CachedRunner executes a network while memoising per-layer outputs keyed
// by the hash of each layer's input. This is the paper's "ongoing work":
// identifying reusable IC workload fine-grained, at the granularity of "the
// result of a specific DNN layer", instead of whole-task results. When two
// requests share a prefix of identical activations — same frame uploaded by
// co-located users, same pre-processed crop — every shared layer is a hit
// and only the divergent suffix is recomputed.
type CachedRunner struct {
	Net *Network

	mu      sync.Mutex
	entries map[layerKey]*tensor.Tensor
	maxEnts int

	hits   uint64
	misses uint64
}

type layerKey struct {
	layer int
	hash  uint64
}

// NewCachedRunner wraps net with a per-layer memo bounded to maxEntries
// cached activations (0 means a generous default).
func NewCachedRunner(net *Network, maxEntries int) *CachedRunner {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	return &CachedRunner{
		Net:     net,
		entries: make(map[layerKey]*tensor.Tensor),
		maxEnts: maxEntries,
	}
}

// hashTensor digests a tensor's shape and exact bit pattern.
func hashTensor(t *tensor.Tensor) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, d := range t.Shape() {
		binary.LittleEndian.PutUint32(b[:], uint32(d))
		h.Write(b[:])
	}
	for _, f := range t.Data {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(f))
		h.Write(b[:])
	}
	return h.Sum64()
}

// Forward runs the network, reusing memoised layer outputs where the layer
// input hash matches. Returned tensors are never aliased into the cache:
// hits are cloned out.
func (c *CachedRunner) Forward(in *tensor.Tensor) *tensor.Tensor {
	x := in
	for i, l := range c.Net.Layers {
		key := layerKey{layer: i, hash: hashTensor(x)}
		c.mu.Lock()
		cached, ok := c.entries[key]
		c.mu.Unlock()
		if ok {
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			x = cached.Clone()
			continue
		}
		out := l.Forward(x)
		c.mu.Lock()
		c.misses++
		if len(c.entries) < c.maxEnts {
			c.entries[key] = out.Clone()
		}
		c.mu.Unlock()
		x = out
	}
	return x
}

// Stats reports cumulative layer-level hits and misses.
func (c *CachedRunner) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Reset drops all memoised activations and zeroes the counters.
func (c *CachedRunner) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[layerKey]*tensor.Tensor)
	c.hits, c.misses = 0, 0
}

// Entries reports how many activations are currently memoised.
func (c *CachedRunner) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
