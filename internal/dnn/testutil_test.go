package dnn

import "github.com/edge-immersion/coic/internal/xrand"

// newTestRNG returns the shared deterministic RNG used across dnn tests.
func newTestRNG() *xrand.RNG { return xrand.New(12345) }
