package dnn

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"github.com/edge-immersion/coic/internal/tensor"
)

func TestConv2DKnownValues(t *testing.T) {
	// 1 input channel, 1 output channel, 2x2 kernel, stride 1, no pad.
	c := NewConv2D("c", 1, 1, 2, 1, 0)
	copy(c.W.Data, []float32{1, 0, 0, 1}) // identity-ish: sums main diagonal
	c.B.Data[0] = 0.5
	in := tensor.FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	out := c.Forward(in)
	want := []float32{1 + 5 + 0.5, 2 + 6 + 0.5, 4 + 8 + 0.5, 5 + 9 + 0.5}
	if got := out.Shape(); got[0] != 1 || got[1] != 2 || got[2] != 2 {
		t.Fatalf("shape = %v", got)
	}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("out = %v, want %v", out.Data, want)
		}
	}
}

func TestConv2DPaddingKeepsSize(t *testing.T) {
	c := NewConv2D("c", 1, 1, 3, 1, 1)
	c.W.Data[4] = 1 // center tap: identity conv
	in := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	out := c.Forward(in)
	if s := out.Shape(); s[1] != 2 || s[2] != 2 {
		t.Fatalf("padded conv changed size: %v", s)
	}
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Fatalf("identity conv altered data: %v", out.Data)
		}
	}
}

func TestConv2DStride(t *testing.T) {
	c := NewConv2D("c", 1, 1, 1, 2, 0)
	c.W.Data[0] = 1
	in := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out := c.Forward(in)
	want := []float32{1, 3, 9, 11}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("stride-2 sampling = %v, want %v", out.Data, want)
		}
	}
}

func TestConv2DRejectsWrongChannels(t *testing.T) {
	c := NewConv2D("c", 3, 4, 3, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong channel count did not panic")
		}
	}()
	c.Forward(tensor.New(1, 8, 8))
}

func TestMaxPool(t *testing.T) {
	p := NewMaxPool2D("p", 2, 2)
	in := tensor.FromSlice([]float32{
		1, 5, 2, 0,
		3, 4, 1, 1,
		-1, -2, 9, 8,
		-3, -4, 7, 6,
	}, 1, 4, 4)
	out := p.Forward(in)
	want := []float32{5, 2, -1, 9}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("pool = %v, want %v", out.Data, want)
		}
	}
}

func TestMaxPoolNegativeOnly(t *testing.T) {
	p := NewMaxPool2D("p", 2, 2)
	in := tensor.FromSlice([]float32{-5, -1, -2, -9}, 1, 2, 2)
	if got := p.Forward(in).Data[0]; got != -1 {
		t.Fatalf("all-negative max = %v, want -1", got)
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{LayerName: "r"}
	in := tensor.FromSlice([]float32{-1, 0, 2}, 3)
	out := r.Forward(in)
	want := []float32{0, 0, 2}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("relu = %v", out.Data)
		}
	}
	if in.Data[0] != -1 {
		t.Fatal("ReLU mutated its input")
	}
}

func TestDense(t *testing.T) {
	d := NewDense("d", 2, 2)
	copy(d.W.Data, []float32{1, 2, 3, 4})
	copy(d.B.Data, []float32{10, 20})
	out := d.Forward(tensor.FromSlice([]float32{1, 1}, 2))
	if out.Data[0] != 13 || out.Data[1] != 27 {
		t.Fatalf("dense = %v", out.Data)
	}
}

func TestSoftmaxIsDistribution(t *testing.T) {
	s := &Softmax{LayerName: "s"}
	out := s.Forward(tensor.FromSlice([]float32{1, 2, 3, 1000}, 4))
	var sum float32
	for _, v := range out.Data {
		if v < 0 || v > 1 {
			t.Fatalf("probability out of range: %v", out.Data)
		}
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-5 {
		t.Fatalf("softmax sum = %v", sum)
	}
	if idx, _ := out.Argmax(); idx != 3 {
		t.Fatal("softmax changed the argmax")
	}
}

func TestFlatten(t *testing.T) {
	f := &Flatten{LayerName: "f"}
	out := f.Forward(tensor.New(2, 3, 4))
	if out.Rank() != 1 || out.Len() != 24 {
		t.Fatalf("flatten shape: rank=%d len=%d", out.Rank(), out.Len())
	}
}

var testClasses = []string{"stop-sign", "car", "avatar", "tree", "building", "signal", "person", "dog"}

func TestEdgeNetDeterministic(t *testing.T) {
	a := NewEdgeNet(testClasses, 32, 99)
	b := NewEdgeNet(testClasses, 32, 99)
	in := tensor.New(3, 32, 32)
	in.RandNormal(newTestRNG(), 1)
	fa, fb := a.Features(in), b.Features(in)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("same seed produced different networks")
		}
	}
	c := NewEdgeNet(testClasses, 32, 100)
	fc := c.Features(in)
	same := true
	for i := range fa {
		if fa[i] != fc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical features")
	}
}

func TestEdgeNetFeatureGeometry(t *testing.T) {
	n := NewEdgeNet(testClasses, 32, 1)
	if got := n.FeatureDim(); got != 64 {
		t.Fatalf("FeatureDim = %d, want 64", got)
	}
	in := tensor.New(3, 32, 32)
	in.Fill(0.3)
	f := n.Features(in)
	var norm float64
	for _, v := range f {
		norm += float64(v) * float64(v)
	}
	if math.Abs(math.Sqrt(norm)-1) > 1e-4 {
		t.Fatalf("features not unit-norm: %v", math.Sqrt(norm))
	}
}

func TestEdgeNetClassify(t *testing.T) {
	n := NewEdgeNet(testClasses, 32, 1)
	in := tensor.New(3, 32, 32)
	in.RandNormal(newTestRNG(), 1)
	idx, name, conf := n.Classify(in)
	if idx < 0 || idx >= len(testClasses) {
		t.Fatalf("class index %d out of range", idx)
	}
	if name != testClasses[idx] {
		t.Fatalf("name %q != classes[%d]", name, idx)
	}
	if conf <= 0 || conf > 1 {
		t.Fatalf("confidence %v out of range", conf)
	}
}

func TestTrunkSharesWeights(t *testing.T) {
	n := NewEdgeNet(testClasses, 32, 1)
	trunk := n.Trunk()
	if len(trunk.Layers) != n.FeatureLayer+1 {
		t.Fatalf("trunk has %d layers, want %d", len(trunk.Layers), n.FeatureLayer+1)
	}
	in := tensor.New(3, 32, 32)
	in.RandNormal(newTestRNG(), 1)
	fFull, fTrunk := n.Features(in), trunk.Features(in)
	for i := range fFull {
		if fFull[i] != fTrunk[i] {
			t.Fatal("trunk features diverge from full network")
		}
	}
}

func TestFLOPsAccounting(t *testing.T) {
	n := NewEdgeNet(testClasses, 32, 1)
	trunk, total := n.TrunkFLOPs(), n.TotalFLOPs()
	if trunk <= 0 || total <= 0 {
		t.Fatalf("non-positive FLOPs: trunk=%d total=%d", trunk, total)
	}
	if trunk >= total {
		t.Fatalf("trunk FLOPs %d not below total %d", trunk, total)
	}
}

func TestValidateCatchesBadNetworks(t *testing.T) {
	good := NewEdgeNet(testClasses, 32, 1)
	cases := map[string]func(*Network){
		"no layers":         func(n *Network) { n.Layers = nil },
		"bad input rank":    func(n *Network) { n.InputShape = []int{3, 32} },
		"feature layer oob": func(n *Network) { n.FeatureLayer = 99 },
		"duplicate names":   func(n *Network) { n.Layers[1] = &ReLU{LayerName: "conv1"} },
		"class count":       func(n *Network) { n.Classes = n.Classes[:3] },
	}
	for name, mutate := range cases {
		n := NewEdgeNet(testClasses, 32, 1)
		mutate(n)
		if err := n.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken network", name)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good network rejected: %v", err)
	}
}

func TestSerialRoundTrip(t *testing.T) {
	n := NewEdgeNet(testClasses, 32, 7)
	data, err := EncodeBytes(n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.NetName != n.NetName || got.FeatureLayer != n.FeatureLayer || len(got.Classes) != len(n.Classes) {
		t.Fatal("metadata did not round-trip")
	}
	in := tensor.New(3, 32, 32)
	in.RandNormal(newTestRNG(), 1)
	a, b := n.Forward(in), got.Forward(in)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("decoded network computes different outputs")
		}
	}
}

func TestSerialDeterministic(t *testing.T) {
	n := NewEdgeNet(testClasses, 32, 7)
	a, _ := EncodeBytes(n)
	b, _ := EncodeBytes(n)
	if !bytes.Equal(a, b) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	n := NewEdgeNet(testClasses, 32, 7)
	data, _ := EncodeBytes(n)

	// Flip one byte in the middle: CRC must catch it.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0xFF
	if _, err := DecodeBytes(bad); err == nil {
		t.Fatal("bit flip not detected")
	}

	// Truncations at every interesting boundary must error, not panic.
	for _, cut := range []int{0, 3, 7, 20, len(data) / 2, len(data) - 1} {
		if _, err := DecodeBytes(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}

	// Wrong magic.
	bad = append([]byte(nil), data...)
	copy(bad, "NOPE")
	if _, err := DecodeBytes(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestCachedRunnerHitsOnIdenticalInput(t *testing.T) {
	n := NewEdgeNet(testClasses, 32, 3)
	cr := NewCachedRunner(n, 0)
	in := tensor.New(3, 32, 32)
	in.RandNormal(newTestRNG(), 1)

	base := n.Forward(in)
	out1 := cr.Forward(in)
	hits1, misses1 := cr.Stats()
	if hits1 != 0 || misses1 != uint64(len(n.Layers)) {
		t.Fatalf("first pass: hits=%d misses=%d", hits1, misses1)
	}
	out2 := cr.Forward(in)
	hits2, _ := cr.Stats()
	if hits2 != uint64(len(n.Layers)) {
		t.Fatalf("second pass hits = %d, want %d", hits2, len(n.Layers))
	}
	for i := range base.Data {
		if out1.Data[i] != base.Data[i] || out2.Data[i] != base.Data[i] {
			t.Fatal("cached runner output diverges from plain forward")
		}
	}
}

func TestCachedRunnerDistinguishesInputs(t *testing.T) {
	n := NewEdgeNet(testClasses, 32, 3)
	cr := NewCachedRunner(n, 0)
	a := tensor.New(3, 32, 32)
	a.RandNormal(newTestRNG(), 1)
	b := a.Clone()
	b.Data[0] += 1 // one-element difference

	outA := cr.Forward(a)
	outB := cr.Forward(b)
	plainB := n.Forward(b)
	for i := range plainB.Data {
		if outB.Data[i] != plainB.Data[i] {
			t.Fatal("near-identical input wrongly reused cached activations")
		}
	}
	_ = outA
}

func TestCachedRunnerBounded(t *testing.T) {
	n := NewEdgeNet(testClasses, 32, 3)
	cr := NewCachedRunner(n, 5)
	for i := 0; i < 4; i++ {
		in := tensor.New(3, 32, 32)
		in.Data[0] = float32(i)
		cr.Forward(in)
	}
	if got := cr.Entries(); got > 5 {
		t.Fatalf("cache grew to %d entries, cap is 5", got)
	}
	cr.Reset()
	if cr.Entries() != 0 {
		t.Fatal("Reset left entries")
	}
	if h, m := cr.Stats(); h != 0 || m != 0 {
		t.Fatal("Reset left counters")
	}
}

func TestDecodeBytesFuzzNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = DecodeBytes(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
