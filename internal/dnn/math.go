package dnn

import "math"

// exp32 computes e^x in float32. Inference accuracy requirements here are
// loose (softmax ordering is what matters), so the stdlib float64 exp is
// plenty and keeps the code portable.
func exp32(x float32) float32 {
	return float32(math.Exp(float64(x)))
}
