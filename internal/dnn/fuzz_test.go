package dnn

import (
	"bytes"
	"testing"

	"github.com/edge-immersion/coic/internal/vision"
)

// FuzzDecodeModel feeds arbitrary bytes to the CDNN model decoder. The
// invariants: never panic whatever the input, and any model that decodes
// is valid and re-encodes deterministically (encode∘decode is the
// identity on the canonical encoding).
func FuzzDecodeModel(f *testing.F) {
	// Seed with a real (tiny) model and a few corruptions of it.
	net := NewEdgeNet(vision.ClassNames[:2], 8, 7)
	enc, err := EncodeBytes(net)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	trunc := append([]byte(nil), enc[:len(enc)/2]...)
	f.Add(trunc)
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)/3] ^= 0xff
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("CDNN"))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := DecodeBytes(data)
		if err != nil {
			return
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid model: %v", err)
		}
		re, err := EncodeBytes(n)
		if err != nil {
			t.Fatalf("decoded model fails to re-encode: %v", err)
		}
		n2, err := DecodeBytes(re)
		if err != nil {
			t.Fatalf("re-encoded model fails to decode: %v", err)
		}
		re2, err := EncodeBytes(n2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("encoding is not a fixed point after one decode/encode cycle")
		}
	})
}
