package dnn

import (
	"testing"

	"github.com/edge-immersion/coic/internal/tensor"
)

func benchInput(side int) *tensor.Tensor {
	in := tensor.New(3, side, side)
	in.RandNormal(newTestRNG(), 1)
	return in
}

// BenchmarkForward measures a full inference pass (the cloud's work).
func BenchmarkForward(b *testing.B) {
	n := NewEdgeNet(testClasses, 64, 1)
	in := benchInput(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Forward(in)
	}
}

// BenchmarkTrunkFeatures measures descriptor extraction (the client's
// work on every CoIC request).
func BenchmarkTrunkFeatures(b *testing.B) {
	n := NewEdgeNet(testClasses, 64, 1)
	in := benchInput(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Features(in)
	}
}

// BenchmarkCachedRunnerHit measures a fully-memoised pass (the A-layer
// upper bound).
func BenchmarkCachedRunnerHit(b *testing.B) {
	n := NewEdgeNet(testClasses, 64, 1)
	cr := NewCachedRunner(n, 0)
	in := benchInput(64)
	cr.Forward(in) // warm every layer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cr.Forward(in)
	}
}

// BenchmarkDecode measures model deserialisation (what an edge or client
// pays to adopt a distributed model).
func BenchmarkDecode(b *testing.B) {
	n := NewEdgeNet(testClasses, 32, 1)
	data, err := EncodeBytes(n)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBytes(data); err != nil {
			b.Fatal(err)
		}
	}
}
