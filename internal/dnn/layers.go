// Package dnn is a from-scratch convolutional neural network inference
// engine. It plays the role of the recognition DNN in the CoIC paper: the
// mobile client runs the trunk of the network to produce a feature-vector
// descriptor, and the cloud runs the full network to produce a label. The
// engine is inference-only with deterministic seeded weights, so the same
// input always yields the same descriptor — the property the edge cache
// keys on.
//
// The paper's "future work" — reusing the result of a specific DNN layer —
// is implemented by CachedRunner in this package.
package dnn

import (
	"fmt"

	"github.com/edge-immersion/coic/internal/tensor"
)

// Layer is one stage of a feed-forward network.
type Layer interface {
	// Name identifies the layer within its network (unique per network).
	Name() string
	// Forward computes the layer output for one input tensor.
	Forward(in *tensor.Tensor) *tensor.Tensor
	// OutputShape reports the output shape for a given input shape
	// without running the layer.
	OutputShape(in []int) []int
	// FLOPs estimates the floating-point operations needed for one
	// forward pass over the given input shape. The CoIC cost model
	// converts this to device-specific virtual compute time.
	FLOPs(in []int) int64
	// Params returns the layer's weight tensors for serialisation, in a
	// fixed order. Parameter-free layers return nil.
	Params() []*tensor.Tensor
}

// Conv2D is a 2-D convolution over CHW tensors with square kernels.
type Conv2D struct {
	LayerName string
	InC, OutC int
	Kernel    int
	Stride    int
	Pad       int
	W         *tensor.Tensor // shape (OutC, InC, Kernel, Kernel)
	B         *tensor.Tensor // shape (OutC)
}

// NewConv2D allocates a convolution layer with zero weights.
func NewConv2D(name string, inC, outC, kernel, stride, pad int) *Conv2D {
	if stride <= 0 || kernel <= 0 {
		panic("dnn: conv kernel and stride must be positive")
	}
	return &Conv2D{
		LayerName: name, InC: inC, OutC: outC,
		Kernel: kernel, Stride: stride, Pad: pad,
		W: tensor.New(outC, inC, kernel, kernel),
		B: tensor.New(outC),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.LayerName }

// OutputShape implements Layer for CHW inputs.
func (c *Conv2D) OutputShape(in []int) []int {
	h := (in[1]+2*c.Pad-c.Kernel)/c.Stride + 1
	w := (in[2]+2*c.Pad-c.Kernel)/c.Stride + 1
	return []int{c.OutC, h, w}
}

// FLOPs implements Layer: 2 ops (mul+add) per kernel tap per output cell.
func (c *Conv2D) FLOPs(in []int) int64 {
	out := c.OutputShape(in)
	return int64(out[0]) * int64(out[1]) * int64(out[2]) *
		int64(c.InC) * int64(c.Kernel) * int64(c.Kernel) * 2
}

// Forward implements Layer with a direct (im2col-free) convolution.
func (c *Conv2D) Forward(in *tensor.Tensor) *tensor.Tensor {
	shape := in.Shape()
	if len(shape) != 3 || shape[0] != c.InC {
		panic(fmt.Sprintf("dnn: conv %s expects (%d,H,W), got %v", c.LayerName, c.InC, shape))
	}
	inH, inW := shape[1], shape[2]
	outShape := c.OutputShape(shape)
	outH, outW := outShape[1], outShape[2]
	out := tensor.New(c.OutC, outH, outW)

	for oc := 0; oc < c.OutC; oc++ {
		bias := c.B.Data[oc]
		for oy := 0; oy < outH; oy++ {
			iy0 := oy*c.Stride - c.Pad
			for ox := 0; ox < outW; ox++ {
				ix0 := ox*c.Stride - c.Pad
				sum := bias
				for ic := 0; ic < c.InC; ic++ {
					// Weight base for (oc, ic).
					wBase := ((oc*c.InC + ic) * c.Kernel) * c.Kernel
					inBase := ic * inH * inW
					for ky := 0; ky < c.Kernel; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= inH {
							continue
						}
						rowW := c.W.Data[wBase+ky*c.Kernel : wBase+(ky+1)*c.Kernel]
						rowIn := in.Data[inBase+iy*inW : inBase+(iy+1)*inW]
						for kx := 0; kx < c.Kernel; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= inW {
								continue
							}
							sum += rowW[kx] * rowIn[ix]
						}
					}
				}
				out.Data[(oc*outH+oy)*outW+ox] = sum
			}
		}
	}
	return out
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// ReLU applies max(0, x) element-wise.
type ReLU struct{ LayerName string }

// Name implements Layer.
func (r *ReLU) Name() string { return r.LayerName }

// OutputShape implements Layer (identity).
func (r *ReLU) OutputShape(in []int) []int { return append([]int(nil), in...) }

// FLOPs implements Layer: one compare per element.
func (r *ReLU) FLOPs(in []int) int64 { return prod(in) }

// Forward implements Layer.
func (r *ReLU) Forward(in *tensor.Tensor) *tensor.Tensor {
	out := in.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// MaxPool2D is a max-pooling layer over CHW tensors.
type MaxPool2D struct {
	LayerName string
	Kernel    int
	Stride    int
}

// NewMaxPool2D builds a pooling layer; kernel and stride must be positive.
func NewMaxPool2D(name string, kernel, stride int) *MaxPool2D {
	if kernel <= 0 || stride <= 0 {
		panic("dnn: pool kernel and stride must be positive")
	}
	return &MaxPool2D{LayerName: name, Kernel: kernel, Stride: stride}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return p.LayerName }

// OutputShape implements Layer.
func (p *MaxPool2D) OutputShape(in []int) []int {
	return []int{in[0], (in[1]-p.Kernel)/p.Stride + 1, (in[2]-p.Kernel)/p.Stride + 1}
}

// FLOPs implements Layer: one compare per kernel tap per output cell.
func (p *MaxPool2D) FLOPs(in []int) int64 {
	out := p.OutputShape(in)
	return prod(out) * int64(p.Kernel) * int64(p.Kernel)
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(in *tensor.Tensor) *tensor.Tensor {
	shape := in.Shape()
	c, inH, inW := shape[0], shape[1], shape[2]
	outShape := p.OutputShape(shape)
	outH, outW := outShape[1], outShape[2]
	out := tensor.New(c, outH, outW)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				best := float32(-3.4e38)
				for ky := 0; ky < p.Kernel; ky++ {
					iy := oy*p.Stride + ky
					for kx := 0; kx < p.Kernel; kx++ {
						ix := ox*p.Stride + kx
						v := in.Data[(ch*inH+iy)*inW+ix]
						if v > best {
							best = v
						}
					}
				}
				out.Data[(ch*outH+oy)*outW+ox] = best
			}
		}
	}
	return out
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*tensor.Tensor { return nil }

// Flatten reshapes any tensor to rank 1.
type Flatten struct{ LayerName string }

// Name implements Layer.
func (f *Flatten) Name() string { return f.LayerName }

// OutputShape implements Layer.
func (f *Flatten) OutputShape(in []int) []int { return []int{int(prod(in))} }

// FLOPs implements Layer (free: it is a view).
func (f *Flatten) FLOPs(in []int) int64 { return 0 }

// Forward implements Layer.
func (f *Flatten) Forward(in *tensor.Tensor) *tensor.Tensor {
	return in.Clone().Reshape(in.Len())
}

// Params implements Layer.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// GlobalAvgPool averages each channel plane of a CHW tensor to a single
// value, producing a C-vector. As a feature tap it is what makes the CoIC
// descriptor robust to the viewpoint changes the paper's motivation
// depends on: rotation, parallax and sensor noise move activations around
// spatially but barely change their per-channel means.
type GlobalAvgPool struct{ LayerName string }

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return g.LayerName }

// OutputShape implements Layer.
func (g *GlobalAvgPool) OutputShape(in []int) []int { return []int{in[0]} }

// FLOPs implements Layer: one add per element.
func (g *GlobalAvgPool) FLOPs(in []int) int64 { return prod(in) }

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(in *tensor.Tensor) *tensor.Tensor {
	shape := in.Shape()
	if len(shape) != 3 {
		panic(fmt.Sprintf("dnn: gap %s expects CHW, got %v", g.LayerName, shape))
	}
	c, plane := shape[0], shape[1]*shape[2]
	out := tensor.New(c)
	for ch := 0; ch < c; ch++ {
		var s float32
		for i := ch * plane; i < (ch+1)*plane; i++ {
			s += in.Data[i]
		}
		out.Data[ch] = s / float32(plane)
	}
	return out
}

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*tensor.Tensor { return nil }

// Dense is a fully connected layer y = Wx + b.
type Dense struct {
	LayerName string
	In, Out   int
	W         *tensor.Tensor // shape (Out, In)
	B         *tensor.Tensor // shape (Out)
}

// NewDense allocates a fully connected layer with zero weights.
func NewDense(name string, in, out int) *Dense {
	return &Dense{LayerName: name, In: in, Out: out, W: tensor.New(out, in), B: tensor.New(out)}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.LayerName }

// OutputShape implements Layer.
func (d *Dense) OutputShape(in []int) []int { return []int{d.Out} }

// FLOPs implements Layer.
func (d *Dense) FLOPs(in []int) int64 { return int64(d.In) * int64(d.Out) * 2 }

// Forward implements Layer.
func (d *Dense) Forward(in *tensor.Tensor) *tensor.Tensor {
	if in.Len() != d.In {
		panic(fmt.Sprintf("dnn: dense %s expects %d inputs, got %d", d.LayerName, d.In, in.Len()))
	}
	y := tensor.MatVec(d.W, in.Reshape(in.Len()))
	y.AddInPlace(d.B)
	return y
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Softmax converts logits to a probability distribution.
type Softmax struct{ LayerName string }

// Name implements Layer.
func (s *Softmax) Name() string { return s.LayerName }

// OutputShape implements Layer (identity).
func (s *Softmax) OutputShape(in []int) []int { return append([]int(nil), in...) }

// FLOPs implements Layer: ~4 ops per element (max, sub, exp, div).
func (s *Softmax) FLOPs(in []int) int64 { return prod(in) * 4 }

// Forward implements Layer with the usual max-subtraction for stability.
func (s *Softmax) Forward(in *tensor.Tensor) *tensor.Tensor {
	out := in.Clone()
	maxv := out.Data[0]
	for _, v := range out.Data {
		if v > maxv {
			maxv = v
		}
	}
	var sum float32
	for i, v := range out.Data {
		e := exp32(v - maxv)
		out.Data[i] = e
		sum += e
	}
	if sum > 0 {
		inv := 1 / sum
		for i := range out.Data {
			out.Data[i] *= inv
		}
	}
	return out
}

// Params implements Layer.
func (s *Softmax) Params() []*tensor.Tensor { return nil }

func prod(shape []int) int64 {
	p := int64(1)
	for _, d := range shape {
		p *= int64(d)
	}
	return p
}
