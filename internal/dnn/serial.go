package dnn

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/edge-immersion/coic/internal/tensor"
)

// Binary model format ("CDNN"): the form in which the cloud distributes
// recognition models to edges and clients.
//
//	magic "CDNN" | version u16 | flags u16
//	name string | inputShape [3]u32 | featureLayer i32
//	classCount u32 | classes []string
//	layerCount u32 | layers...
//	crc32 (IEEE, over everything before it)
//
// Strings are u16 length + bytes. A layer is a type tag byte, the layer
// name, a type-specific config block, then its weight tensors as
// u32 length + raw float32 LE values.
const (
	magicCDNN   = "CDNN"
	versionCDNN = 1
)

// Layer type tags. Values are part of the wire format; never reorder.
const (
	tagConv2D byte = iota + 1
	tagReLU
	tagMaxPool2D
	tagFlatten
	tagDense
	tagSoftmax
	tagGlobalAvgPool
)

// ErrBadModel is wrapped by all decode failures.
var ErrBadModel = errors.New("dnn: malformed model")

// Encode serialises the network. The output is deterministic for a given
// network, so its hash can serve as a cache key.
func Encode(w io.Writer, n *Network) error {
	if err := n.Validate(); err != nil {
		return err
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)

	write := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }
	writeStr := func(s string) error {
		if len(s) > math.MaxUint16 {
			return fmt.Errorf("dnn: string too long (%d)", len(s))
		}
		if err := write(uint16(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}

	if _, err := bw.WriteString(magicCDNN); err != nil {
		return err
	}
	if err := write(uint16(versionCDNN)); err != nil {
		return err
	}
	if err := write(uint16(0)); err != nil { // flags, reserved
		return err
	}
	if err := writeStr(n.NetName); err != nil {
		return err
	}
	for _, d := range n.InputShape {
		if err := write(uint32(d)); err != nil {
			return err
		}
	}
	if err := write(int32(n.FeatureLayer)); err != nil {
		return err
	}
	if err := write(uint32(len(n.Classes))); err != nil {
		return err
	}
	for _, c := range n.Classes {
		if err := writeStr(c); err != nil {
			return err
		}
	}
	if err := write(uint32(len(n.Layers))); err != nil {
		return err
	}
	for _, l := range n.Layers {
		if err := encodeLayer(bw, write, writeStr, l); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := binary.Write(&buf, binary.LittleEndian, crc32.ChecksumIEEE(buf.Bytes())); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// EncodeBytes is Encode into a fresh byte slice.
func EncodeBytes(n *Network) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, n); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func encodeLayer(bw *bufio.Writer, write func(any) error, writeStr func(string) error, l Layer) error {
	var tag byte
	var config []int
	switch v := l.(type) {
	case *Conv2D:
		tag, config = tagConv2D, []int{v.InC, v.OutC, v.Kernel, v.Stride, v.Pad}
	case *ReLU:
		tag = tagReLU
	case *MaxPool2D:
		tag, config = tagMaxPool2D, []int{v.Kernel, v.Stride}
	case *Flatten:
		tag = tagFlatten
	case *Dense:
		tag, config = tagDense, []int{v.In, v.Out}
	case *Softmax:
		tag = tagSoftmax
	case *GlobalAvgPool:
		tag = tagGlobalAvgPool
	default:
		return fmt.Errorf("dnn: cannot encode layer type %T", l)
	}
	if err := bw.WriteByte(tag); err != nil {
		return err
	}
	if err := writeStr(l.Name()); err != nil {
		return err
	}
	for _, x := range config {
		if err := write(uint32(x)); err != nil {
			return err
		}
	}
	for _, p := range l.Params() {
		if err := write(uint32(p.Len())); err != nil {
			return err
		}
		for _, f := range p.Data {
			if err := write(math.Float32bits(f)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Decode reads a complete CDNN model from r. The stream is buffered in
// full first so the trailing CRC can be verified over the exact payload.
func Decode(r io.Reader) (*Network, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: read: %v", ErrBadModel, err)
	}
	return DecodeBytes(data)
}

// DecodeBytes parses a CDNN model, verifying magic, version, CRC, and
// shape chaining.
func DecodeBytes(data []byte) (*Network, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrBadModel, len(data))
	}
	payload, crcBytes := data[:len(data)-4], data[len(data)-4:]
	stored := binary.LittleEndian.Uint32(crcBytes)
	if got := crc32.ChecksumIEEE(payload); got != stored {
		return nil, fmt.Errorf("%w: crc mismatch (stored %08x, computed %08x)", ErrBadModel, stored, got)
	}

	d := &decoder{buf: payload}
	if string(d.bytes(4)) != magicCDNN {
		return nil, fmt.Errorf("%w: bad magic", ErrBadModel)
	}
	if v := d.u16(); v != versionCDNN {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadModel, v)
	}
	d.u16() // flags, reserved

	n := &Network{NetName: d.str()}
	n.InputShape = []int{int(d.u32()), int(d.u32()), int(d.u32())}
	n.FeatureLayer = int(int32(d.u32()))
	classCount := d.u32()
	if classCount > 1<<16 {
		return nil, fmt.Errorf("%w: absurd class count %d", ErrBadModel, classCount)
	}
	for i := uint32(0); i < classCount && d.err == nil; i++ {
		n.Classes = append(n.Classes, d.str())
	}
	layerCount := d.u32()
	if layerCount > 1<<10 {
		return nil, fmt.Errorf("%w: absurd layer count %d", ErrBadModel, layerCount)
	}
	for i := uint32(0); i < layerCount && d.err == nil; i++ {
		l, err := decodeLayer(d)
		if err != nil {
			return nil, fmt.Errorf("%w: layer %d: %v", ErrBadModel, i, err)
		}
		n.Layers = append(n.Layers, l)
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModel, d.err)
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadModel, len(d.buf)-d.off)
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModel, err)
	}
	return n, nil
}

// decoder is a cursor over the payload with sticky error handling.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail("truncated at offset %d (want %d more bytes)", d.off, n)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() byte {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) str() string {
	n := d.u16()
	return string(d.bytes(int(n)))
}

func (d *decoder) floats(n int) []float32 {
	b := d.bytes(4 * n)
	if b == nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func decodeLayer(d *decoder) (Layer, error) {
	tag := d.u8()
	name := d.str()
	if d.err != nil {
		return nil, d.err
	}
	loadParams := func(ps ...*tensor.Tensor) error {
		for _, p := range ps {
			n := int(d.u32())
			if d.err != nil {
				return d.err
			}
			if n != p.Len() {
				return fmt.Errorf("param length %d != expected %d", n, p.Len())
			}
			vals := d.floats(n)
			if d.err != nil {
				return d.err
			}
			copy(p.Data, vals)
		}
		return nil
	}
	switch tag {
	case tagConv2D:
		inC, outC := int(d.u32()), int(d.u32())
		k, s, p := int(d.u32()), int(d.u32()), int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if inC <= 0 || outC <= 0 || k <= 0 || s <= 0 || p < 0 ||
			inC > 1<<12 || outC > 1<<12 || k > 64 {
			return nil, fmt.Errorf("conv %q config out of range", name)
		}
		c := NewConv2D(name, inC, outC, k, s, p)
		return c, loadParams(c.W, c.B)
	case tagReLU:
		return &ReLU{LayerName: name}, nil
	case tagMaxPool2D:
		k, s := int(d.u32()), int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if k <= 0 || s <= 0 || k > 64 {
			return nil, fmt.Errorf("pool %q config out of range", name)
		}
		return NewMaxPool2D(name, k, s), nil
	case tagFlatten:
		return &Flatten{LayerName: name}, nil
	case tagDense:
		in, out := int(d.u32()), int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if in <= 0 || out <= 0 || in > 1<<24 || out > 1<<20 {
			return nil, fmt.Errorf("dense %q config out of range", name)
		}
		de := NewDense(name, in, out)
		return de, loadParams(de.W, de.B)
	case tagSoftmax:
		return &Softmax{LayerName: name}, nil
	case tagGlobalAvgPool:
		return &GlobalAvgPool{LayerName: name}, nil
	default:
		return nil, fmt.Errorf("unknown layer tag %d", tag)
	}
}
