package dnn

import (
	"fmt"
	"testing"

	"github.com/edge-immersion/coic/internal/tensor"
	"github.com/edge-immersion/coic/internal/xrand"
)

// batchWorkload builds a batch of camera-frame-sized inputs where
// dupEvery members share one exact frame — the paper's co-located-users
// premise (several users uploading the same view), which is where
// intra-batch sharing pays.
func batchWorkload(rng *xrand.RNG, n, side int, dupEvery int) []*tensor.Tensor {
	ins := make([]*tensor.Tensor, n)
	for i := range ins {
		if dupEvery > 1 && i%dupEvery != 0 {
			ins[i] = ins[i-i%dupEvery]
			continue
		}
		in := tensor.New(3, side, side)
		in.RandNormal(rng, 1)
		ins[i] = in
	}
	return ins
}

// BenchmarkBatchedExec contrasts serial Forward against ForwardBatch on
// the bench workload. Workers are pinned to one so ns/op is per-core
// time and the serial/batched ratio is throughput per core; the speedup
// comes from intra-batch sharing plus the blocked Dense kernel, not from
// occupying more cores. items/sec is reported per sub-benchmark:
// batched/serial at equal batch size is the acceptance ratio.
func BenchmarkBatchedExec(b *testing.B) {
	defer tensor.SetMaxWorkers(tensor.SetMaxWorkers(1))
	net := NewEdgeNet(testClasses, 64, 1)
	for _, cfg := range []struct {
		batch, dupEvery int
	}{
		{8, 2}, {8, 1}, {16, 2}, {1, 1},
	} {
		ins := batchWorkload(xrand.New(42), cfg.batch, 64, cfg.dupEvery)
		name := fmt.Sprintf("batch=%d/dupEvery=%d", cfg.batch, cfg.dupEvery)
		b.Run("serial/"+name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, in := range ins {
					net.Forward(in)
				}
			}
			b.ReportMetric(float64(cfg.batch)*float64(b.N)/b.Elapsed().Seconds(), "items/sec")
		})
		b.Run("batched/"+name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.ForwardBatch(ins)
			}
			b.ReportMetric(float64(cfg.batch)*float64(b.N)/b.Elapsed().Seconds(), "items/sec")
		})
	}
}

// BenchmarkBatchedExecParallel measures the same batch with ParallelFor
// unpinned: the wall-clock (not per-core) win when idle cores are free to
// take independent groups.
func BenchmarkBatchedExecParallel(b *testing.B) {
	net := NewEdgeNet(testClasses, 64, 1)
	ins := batchWorkload(xrand.New(42), 8, 64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(ins)
	}
	b.ReportMetric(float64(len(ins))*float64(b.N)/b.Elapsed().Seconds(), "items/sec")
}

// TestForwardBatchAllocBudget is the allocation gate: batching must not
// cost more allocations per batch than serial execution of the same
// members (pooled scratch plus shared layer passes should cost *fewer*),
// and the absolute count is pinned so an accidental per-element
// allocation in the kernels fails loudly rather than shaving the
// benchmark quietly.
func TestForwardBatchAllocBudget(t *testing.T) {
	defer tensor.SetMaxWorkers(tensor.SetMaxWorkers(1))
	net := NewEdgeNet(testClasses, 32, 1)
	ins := batchWorkload(xrand.New(42), 8, 32, 2)
	serial := testing.AllocsPerRun(5, func() {
		for _, in := range ins {
			net.Forward(in)
		}
	})
	batched := testing.AllocsPerRun(5, func() {
		net.ForwardBatch(ins)
	})
	if batched > serial {
		t.Fatalf("ForwardBatch allocates more than serial: %v > %v allocs per batch", batched, serial)
	}
	// Absolute ceiling: ~13 layers × 4 unique groups × a few allocations
	// per layer pass, plus grouping overhead. Generous headroom over the
	// measured count (~160) without room for a per-element regression.
	const budget = 400
	if batched > budget {
		t.Fatalf("ForwardBatch allocations %v exceed the pinned budget %d", batched, budget)
	}
}
