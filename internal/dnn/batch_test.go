package dnn

import (
	"fmt"
	"math"
	"testing"

	"github.com/edge-immersion/coic/internal/tensor"
	"github.com/edge-immersion/coic/internal/xrand"
)

// requireBitEqual fails unless got and want carry identical shapes and
// identical float32 bit patterns — the golden contract is ==-exact, not
// within-epsilon.
func requireBitEqual(t *testing.T, label string, got, want *tensor.Tensor) {
	t.Helper()
	if !tensor.EqualShape(got, want) {
		t.Fatalf("%s: shape %v != %v", label, got.Shape(), want.Shape())
	}
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: element %d: %v (bits %#x) != %v (bits %#x)",
				label, i, got.Data[i], math.Float32bits(got.Data[i]),
				want.Data[i], math.Float32bits(want.Data[i]))
		}
	}
}

// randomNet builds a small randomized conv+dense network so golden tests
// cover varying widths, not one hand-picked topology.
func randomNet(rng *xrand.RNG, inputSize int) *Network {
	classes := testClasses[:2+rng.Intn(len(testClasses)-2)]
	return NewEdgeNet(classes, inputSize, uint64(rng.Intn(1<<30)))
}

// randomBatch builds n inputs with some exact duplicates mixed in, the
// co-located-users workload batching exists for.
func randomBatch(rng *xrand.RNG, n, side int) []*tensor.Tensor {
	ins := make([]*tensor.Tensor, n)
	for i := range ins {
		if i > 0 && rng.Float64() < 0.4 {
			ins[i] = ins[rng.Intn(i)] // exact duplicate of an earlier member
			continue
		}
		in := tensor.New(3, side, side)
		in.RandNormal(rng, 1)
		ins[i] = in
	}
	return ins
}

// TestForwardBatchGolden asserts ForwardBatch output is element-exact
// against N serial Forward calls across randomized networks, batch sizes
// (including 1) and duplicate mixes.
func TestForwardBatchGolden(t *testing.T) {
	rng := newTestRNG()
	for trial := 0; trial < 6; trial++ {
		side := 8 * (1 + rng.Intn(2))
		net := randomNet(rng, side)
		for _, n := range []int{1, 2, 5, 9} {
			ins := randomBatch(rng, n, side)
			outs := net.ForwardBatch(ins)
			if len(outs) != n {
				t.Fatalf("trial %d: %d outputs for %d inputs", trial, len(outs), n)
			}
			for i, in := range ins {
				requireBitEqual(t, fmt.Sprintf("trial %d batch %d member %d", trial, n, i),
					outs[i], net.Forward(in))
			}
		}
	}
}

// TestForwardBatchOutputsUnaliased guards the scatter contract: members
// of a merged group must not share backing storage — mutating one output
// must not corrupt another.
func TestForwardBatchOutputsUnaliased(t *testing.T) {
	rng := newTestRNG()
	net := randomNet(rng, 8)
	in := tensor.New(3, 8, 8)
	in.RandNormal(rng, 1)
	outs := net.ForwardBatch([]*tensor.Tensor{in, in, in})
	want := outs[1].Clone()
	for i := range outs[0].Data {
		outs[0].Data[i] = -1
	}
	requireBitEqual(t, "member 1 after mutating member 0", outs[1], want)
}

// sharedPrefixNet starts with a ReLU so inputs that differ only in
// negative values converge after layer 0: the batch engine must merge
// them there, share every later layer, and fork at the output.
func sharedPrefixNet(rng *xrand.RNG) *Network {
	d := NewDense("fc", 12, 5)
	d.W.RandNormal(rng, 1)
	d.B.RandNormal(rng, 1)
	return &Network{
		NetName:    "prefixnet",
		InputShape: []int{3, 2, 2},
		Layers: []Layer{
			&ReLU{LayerName: "relu0"},
			&Flatten{LayerName: "flat"},
			d,
			&Softmax{LayerName: "softmax"},
		},
		FeatureLayer: 1,
		Classes:      []string{"a", "b", "c", "d", "e"},
	}
}

// TestForwardBatchSharedPrefixFork exercises the fork path: two distinct
// inputs whose activations become bit-identical mid-network must produce
// serial-exact outputs AND actually share the converged layers.
func TestForwardBatchSharedPrefixFork(t *testing.T) {
	rng := newTestRNG()
	net := sharedPrefixNet(rng)
	a := tensor.New(3, 2, 2)
	a.RandNormal(rng, 1)
	b := a.Clone()
	// Flip positives so ReLU collapses both to the same activation while
	// the raw inputs stay different.
	changed := false
	for i, v := range a.Data {
		if v < 0 {
			b.Data[i] = v * 3
			changed = true
		}
	}
	if !changed || tensorsEqual(a, b) {
		t.Fatal("test setup: inputs must differ only in ReLU-clamped values")
	}
	ins := []*tensor.Tensor{a, b}
	var layerRuns int
	outs, groups := net.forwardBatch(ins, nil, &layerRuns)
	for i, in := range ins {
		requireBitEqual(t, fmt.Sprintf("member %d", i), outs[i], net.Forward(in))
	}
	// Layer 0 runs once per input (2 runs); the remaining 3 layers run
	// once for the merged group.
	if want := 2 + (len(net.Layers) - 1); layerRuns != want {
		t.Fatalf("layerRuns = %d, want %d (prefix not shared)", layerRuns, want)
	}
	if len(groups) != 1 || len(groups[0].members) != 2 {
		t.Fatalf("final groups = %+v, want one group holding both members", groups)
	}
}

// TestFeaturesBatchGolden asserts the batched trunk descriptor is
// element-exact against serial Features, duplicates included.
func TestFeaturesBatchGolden(t *testing.T) {
	rng := newTestRNG()
	net := randomNet(rng, 16)
	ins := randomBatch(rng, 7, 16)
	feats := net.FeaturesBatch(ins)
	for i, in := range ins {
		want := net.Features(in)
		if len(feats[i]) != len(want) {
			t.Fatalf("member %d: feature dim %d != %d", i, len(feats[i]), len(want))
		}
		for j := range want {
			if math.Float32bits(feats[i][j]) != math.Float32bits(want[j]) {
				t.Fatalf("member %d feature %d: %v != %v", i, j, feats[i][j], want[j])
			}
		}
	}
	// Duplicate members must get independent storage.
	feats[0][0] = 42
	if feats[1][0] == 42 && ins[0] == ins[1] {
		t.Fatal("duplicate members share feature storage")
	}
}

// TestCachedRunnerForwardBatchGolden asserts the memoised batch path is
// element-exact against serial Forward — both against a cold runner and
// against a runner pre-warmed by serial traffic (cross-request reuse).
func TestCachedRunnerForwardBatchGolden(t *testing.T) {
	rng := newTestRNG()
	net := randomNet(rng, 8)
	ins := randomBatch(rng, 6, 8)
	want := make([]*tensor.Tensor, len(ins))
	for i, in := range ins {
		want[i] = net.Forward(in)
	}

	cold := NewCachedRunner(net, 0)
	for i, out := range cold.ForwardBatch(ins) {
		requireBitEqual(t, fmt.Sprintf("cold member %d", i), out, want[i])
	}
	if hits, misses := cold.Stats(); hits+misses == 0 {
		t.Fatal("cold batch recorded no layer steps")
	}

	warm := NewCachedRunner(net, 0)
	warm.Forward(ins[0]) // pre-warm: batch members hitting the memo get cloned entries
	outs := warm.ForwardBatch(ins)
	for i, out := range outs {
		requireBitEqual(t, fmt.Sprintf("warm member %d", i), out, want[i])
	}
	hits, _ := warm.Stats()
	if hits == 0 {
		t.Fatal("warm batch never hit the memo")
	}
	// Outputs must not alias memo entries: mutating one cannot change a
	// later run's result.
	for i := range outs[0].Data {
		outs[0].Data[i] = -99
	}
	requireBitEqual(t, "rerun after output mutation", warm.Forward(ins[0]), want[0])
}

// TestForwardBatchEmpty pins the trivial edges: nil and empty batches.
func TestForwardBatchEmpty(t *testing.T) {
	net := randomNet(newTestRNG(), 8)
	if out := net.ForwardBatch(nil); out != nil {
		t.Fatalf("ForwardBatch(nil) = %v", out)
	}
	if out := net.FeaturesBatch([]*tensor.Tensor{}); out != nil {
		t.Fatalf("FeaturesBatch(empty) = %v", out)
	}
}
