package feature

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Kind discriminates descriptor types on the wire.
type Kind uint8

// Descriptor kinds. Values are part of the wire format.
const (
	KindVector Kind = 1 // DNN feature vector (recognition)
	KindHash   Kind = 2 // content hash (3D model, panorama)
)

// Descriptor is the cache key a CoIC client attaches to a request.
type Descriptor struct {
	Kind Kind
	// Vec is set when Kind == KindVector. It should be L2-normalised;
	// NewVector enforces this.
	Vec []float32
	// Sum is set when Kind == KindHash.
	Sum [32]byte
}

// NewVector builds a vector descriptor, normalising a copy of v to unit
// L2 norm so distances are scale-free.
func NewVector(v []float32) Descriptor {
	c := make([]float32, len(v))
	copy(c, v)
	var n float64
	for _, x := range c {
		n += float64(x) * float64(x)
	}
	if n > 0 {
		inv := float32(1 / math.Sqrt(n))
		for i := range c {
			c[i] *= inv
		}
	}
	return Descriptor{Kind: KindVector, Vec: c}
}

// NewHash builds a hash descriptor over content.
func NewHash(content []byte) Descriptor {
	return Descriptor{Kind: KindHash, Sum: sha256.Sum256(content)}
}

// HashOf returns the raw digest used by NewHash, for callers that already
// track content identity separately.
func HashOf(content []byte) [32]byte { return sha256.Sum256(content) }

// Key returns a compact string form usable as an exact-match map key.
// Vector descriptors hash their exact bit pattern — exact duplicates
// short-circuit without a similarity search.
func (d Descriptor) Key() string {
	switch d.Kind {
	case KindHash:
		return string(d.Sum[:])
	case KindVector:
		h := sha256.New()
		var b [4]byte
		for _, f := range d.Vec {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(f))
			h.Write(b[:])
		}
		return string(h.Sum(nil))
	default:
		return ""
	}
}

// L2Distance returns the Euclidean distance between two equal-length
// vectors. For unit vectors it is monotone in cosine distance:
// ‖a−b‖² = 2(1−cosθ).
func L2Distance(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("feature: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// CosineSimilarity returns a·b/(‖a‖‖b‖), or 0 when either vector is zero.
func CosineSimilarity(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("feature: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Wire encoding: kind u8 | (vector: dim u32, float32 LE ...) or
// (hash: 32 bytes).

// ErrBadDescriptor is returned for malformed descriptor encodings.
var ErrBadDescriptor = errors.New("feature: malformed descriptor")

// Marshal encodes the descriptor for the CoIC probe message.
func (d Descriptor) Marshal() ([]byte, error) {
	switch d.Kind {
	case KindVector:
		out := make([]byte, 1+4+4*len(d.Vec))
		out[0] = byte(KindVector)
		binary.LittleEndian.PutUint32(out[1:], uint32(len(d.Vec)))
		for i, f := range d.Vec {
			binary.LittleEndian.PutUint32(out[5+4*i:], math.Float32bits(f))
		}
		return out, nil
	case KindHash:
		out := make([]byte, 1+32)
		out[0] = byte(KindHash)
		copy(out[1:], d.Sum[:])
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrBadDescriptor, d.Kind)
	}
}

// Unmarshal decodes a descriptor produced by Marshal.
func Unmarshal(data []byte) (Descriptor, error) {
	if len(data) < 1 {
		return Descriptor{}, fmt.Errorf("%w: empty", ErrBadDescriptor)
	}
	switch Kind(data[0]) {
	case KindVector:
		if len(data) < 5 {
			return Descriptor{}, fmt.Errorf("%w: truncated vector header", ErrBadDescriptor)
		}
		dim := binary.LittleEndian.Uint32(data[1:])
		if dim > 1<<20 {
			return Descriptor{}, fmt.Errorf("%w: absurd dimension %d", ErrBadDescriptor, dim)
		}
		if len(data) != 5+4*int(dim) {
			return Descriptor{}, fmt.Errorf("%w: vector length %d != header %d", ErrBadDescriptor, len(data), dim)
		}
		v := make([]float32, dim)
		for i := range v {
			v[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[5+4*i:]))
		}
		return Descriptor{Kind: KindVector, Vec: v}, nil
	case KindHash:
		if len(data) != 33 {
			return Descriptor{}, fmt.Errorf("%w: hash length %d", ErrBadDescriptor, len(data))
		}
		var d Descriptor
		d.Kind = KindHash
		copy(d.Sum[:], data[1:])
		return d, nil
	default:
		return Descriptor{}, fmt.Errorf("%w: unknown kind %d", ErrBadDescriptor, data[0])
	}
}

// SizeBytes reports the marshalled size, the number CoIC charges to the
// uplink when a client sends a probe.
func (d Descriptor) SizeBytes() int {
	switch d.Kind {
	case KindVector:
		return 5 + 4*len(d.Vec)
	case KindHash:
		return 33
	default:
		return 1
	}
}
