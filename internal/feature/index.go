package feature

import (
	"fmt"
	"sync"

	"github.com/edge-immersion/coic/internal/xrand"
)

// Index is a nearest-neighbour search structure over vector descriptors.
// The edge cache consults an Index to decide whether an incoming
// recognition descriptor is "close enough" to a cached one. Implementations
// must be safe for concurrent use.
type Index interface {
	// Add inserts a vector under id, replacing any previous vector with
	// the same id.
	Add(id uint64, vec []float32)
	// Remove deletes id; removing an absent id is a no-op.
	Remove(id uint64)
	// Nearest returns the id of the closest stored vector and its L2
	// distance. ok is false when the index is empty or (for approximate
	// implementations) no candidate was found.
	Nearest(vec []float32) (id uint64, dist float64, ok bool)
	// Len reports how many vectors are stored.
	Len() int
}

// Linear is the exact brute-force index: ground truth for tests and the
// right choice for small caches where a scan beats hashing overhead.
type Linear struct {
	mu   sync.RWMutex
	vecs map[uint64][]float32
}

// NewLinear returns an empty exact index.
func NewLinear() *Linear {
	return &Linear{vecs: make(map[uint64][]float32)}
}

// Add implements Index.
func (l *Linear) Add(id uint64, vec []float32) {
	c := make([]float32, len(vec))
	copy(c, vec)
	l.mu.Lock()
	l.vecs[id] = c
	l.mu.Unlock()
}

// Remove implements Index.
func (l *Linear) Remove(id uint64) {
	l.mu.Lock()
	delete(l.vecs, id)
	l.mu.Unlock()
}

// Nearest implements Index with a full scan. Ties break toward the lowest
// id so results are deterministic.
func (l *Linear) Nearest(vec []float32) (uint64, float64, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var (
		bestID   uint64
		bestDist = -1.0
	)
	for id, v := range l.vecs {
		if len(v) != len(vec) {
			continue
		}
		d := L2Distance(vec, v)
		if bestDist < 0 || d < bestDist || (d == bestDist && id < bestID) {
			bestID, bestDist = id, d
		}
	}
	if bestDist < 0 {
		return 0, 0, false
	}
	return bestID, bestDist, true
}

// Len implements Index.
func (l *Linear) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.vecs)
}

// LSH is a random-hyperplane locality-sensitive hash index. Each of
// Tables hash tables assigns a vector a Bits-bit signature (the sign
// pattern of Bits random projections); near vectors collide in at least
// one table with high probability. Lookup cost is independent of index
// size as long as buckets stay small, which is what makes a big edge
// cache affordable (the A-index ablation quantifies this).
type LSH struct {
	dim    int
	tables int
	bits   int
	planes [][][]float32 // [table][bit][dim]

	mu      sync.RWMutex
	vecs    map[uint64][]float32
	buckets []map[uint64][]uint64 // per table: signature -> ids
}

// NewLSH builds an LSH index for dim-dimensional vectors. tables and bits
// trade recall for speed; NewLSH panics on non-positive parameters since
// they are build-time constants.
func NewLSH(dim, tables, bits int, seed uint64) *LSH {
	if dim <= 0 || tables <= 0 || bits <= 0 || bits > 64 {
		panic(fmt.Sprintf("feature: invalid LSH parameters dim=%d tables=%d bits=%d", dim, tables, bits))
	}
	rng := xrand.New(seed)
	planes := make([][][]float32, tables)
	for t := range planes {
		planes[t] = make([][]float32, bits)
		for b := range planes[t] {
			p := make([]float32, dim)
			for i := range p {
				p[i] = float32(rng.NormFloat64())
			}
			planes[t][b] = p
		}
	}
	l := &LSH{
		dim: dim, tables: tables, bits: bits, planes: planes,
		vecs:    make(map[uint64][]float32),
		buckets: make([]map[uint64][]uint64, tables),
	}
	for t := range l.buckets {
		l.buckets[t] = make(map[uint64][]uint64)
	}
	return l
}

// signature computes the sign pattern of vec against table t's planes.
func (l *LSH) signature(t int, vec []float32) uint64 {
	var sig uint64
	for b, plane := range l.planes[t] {
		var dot float32
		for i, p := range plane {
			dot += p * vec[i]
		}
		if dot >= 0 {
			sig |= 1 << uint(b)
		}
	}
	return sig
}

// Add implements Index.
func (l *LSH) Add(id uint64, vec []float32) {
	if len(vec) != l.dim {
		panic(fmt.Sprintf("feature: LSH expects dim %d, got %d", l.dim, len(vec)))
	}
	c := make([]float32, len(vec))
	copy(c, vec)
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, exists := l.vecs[id]; exists {
		l.removeLocked(id)
	}
	l.vecs[id] = c
	for t := 0; t < l.tables; t++ {
		sig := l.signature(t, c)
		l.buckets[t][sig] = append(l.buckets[t][sig], id)
	}
}

// Remove implements Index.
func (l *LSH) Remove(id uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.removeLocked(id)
}

func (l *LSH) removeLocked(id uint64) {
	vec, ok := l.vecs[id]
	if !ok {
		return
	}
	delete(l.vecs, id)
	for t := 0; t < l.tables; t++ {
		sig := l.signature(t, vec)
		ids := l.buckets[t][sig]
		for i, v := range ids {
			if v == id {
				ids[i] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
				break
			}
		}
		if len(ids) == 0 {
			delete(l.buckets[t], sig)
		} else {
			l.buckets[t][sig] = ids
		}
	}
}

// Nearest implements Index: the union of the query's buckets across all
// tables is scanned exactly. A vector in no shared bucket is invisible —
// that is the approximation.
func (l *LSH) Nearest(vec []float32) (uint64, float64, bool) {
	if len(vec) != l.dim {
		return 0, 0, false
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	var (
		bestID   uint64
		bestDist = -1.0
		seen     = make(map[uint64]struct{})
	)
	for t := 0; t < l.tables; t++ {
		sig := l.signature(t, vec)
		for _, id := range l.buckets[t][sig] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			d := L2Distance(vec, l.vecs[id])
			if bestDist < 0 || d < bestDist || (d == bestDist && id < bestID) {
				bestID, bestDist = id, d
			}
		}
	}
	if bestDist < 0 {
		return 0, 0, false
	}
	return bestID, bestDist, true
}

// Len implements Index.
func (l *LSH) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.vecs)
}
