package feature

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/edge-immersion/coic/internal/xrand"
)

func TestNewVectorNormalises(t *testing.T) {
	d := NewVector([]float32{3, 4})
	var n float64
	for _, v := range d.Vec {
		n += float64(v) * float64(v)
	}
	if math.Abs(math.Sqrt(n)-1) > 1e-6 {
		t.Fatalf("norm = %v", math.Sqrt(n))
	}
}

func TestNewVectorCopies(t *testing.T) {
	src := []float32{1, 0}
	d := NewVector(src)
	src[0] = 99
	if d.Vec[0] != 1 {
		t.Fatal("NewVector aliased caller slice")
	}
}

func TestNewVectorZeroSafe(t *testing.T) {
	d := NewVector([]float32{0, 0, 0})
	for _, v := range d.Vec {
		if v != 0 || math.IsNaN(float64(v)) {
			t.Fatalf("zero vector mangled: %v", d.Vec)
		}
	}
}

func TestHashDescriptorIdentity(t *testing.T) {
	a := NewHash([]byte("model-1"))
	b := NewHash([]byte("model-1"))
	c := NewHash([]byte("model-2"))
	if a.Sum != b.Sum {
		t.Fatal("same content, different hash")
	}
	if a.Sum == c.Sum {
		t.Fatal("different content, same hash")
	}
	if a.Key() == c.Key() {
		t.Fatal("Key collision for different content")
	}
}

func TestVectorKeyExactness(t *testing.T) {
	a := NewVector([]float32{1, 2, 3})
	b := NewVector([]float32{1, 2, 3})
	c := NewVector([]float32{1, 2, 3.0001})
	if a.Key() != b.Key() {
		t.Fatal("identical vectors, different keys")
	}
	if a.Key() == c.Key() {
		t.Fatal("different vectors, same key")
	}
}

func TestDistances(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if got := L2Distance(a, b); math.Abs(got-math.Sqrt2) > 1e-9 {
		t.Fatalf("L2 = %v", got)
	}
	if got := CosineSimilarity(a, b); got != 0 {
		t.Fatalf("cos = %v", got)
	}
	if got := CosineSimilarity(a, a); math.Abs(got-1) > 1e-9 {
		t.Fatalf("self cos = %v", got)
	}
	if got := CosineSimilarity(a, []float32{0, 0}); got != 0 {
		t.Fatalf("zero-vec cos = %v", got)
	}
}

func TestL2PanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	L2Distance([]float32{1}, []float32{1, 2})
}

func TestMarshalRoundTripVector(t *testing.T) {
	f := func(raw []float32) bool {
		for i, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				raw[i] = 0.5
			}
		}
		d := NewVector(raw)
		data, err := d.Marshal()
		if err != nil {
			return false
		}
		if len(data) != d.SizeBytes() {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil || got.Kind != KindVector || len(got.Vec) != len(d.Vec) {
			return false
		}
		for i := range d.Vec {
			if got.Vec[i] != d.Vec[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalRoundTripHash(t *testing.T) {
	d := NewHash([]byte("panorama-frame-7"))
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != d.SizeBytes() {
		t.Fatalf("SizeBytes %d != marshalled %d", d.SizeBytes(), len(data))
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindHash || got.Sum != d.Sum {
		t.Fatal("hash did not round-trip")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99},                                   // unknown kind
		{byte(KindVector)},                     // truncated header
		{byte(KindHash), 1, 2},                 // short hash
		{byte(KindVector), 255, 255, 255, 255}, // absurd dim
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Length mismatch.
	d := NewVector([]float32{1, 2})
	data, _ := d.Marshal()
	if _, err := Unmarshal(data[:len(data)-1]); err == nil {
		t.Error("truncated vector accepted")
	}
}

func randomVecs(n, dim int, seed uint64) map[uint64][]float32 {
	rng := xrand.New(seed)
	out := make(map[uint64][]float32, n)
	for i := 0; i < n; i++ {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		out[uint64(i+1)] = NewVector(v).Vec
	}
	return out
}

func TestLinearNearestIsGroundTruth(t *testing.T) {
	idx := NewLinear()
	vecs := randomVecs(200, 16, 1)
	for id, v := range vecs {
		idx.Add(id, v)
	}
	rng := xrand.New(2)
	for trial := 0; trial < 20; trial++ {
		q := make([]float32, 16)
		for j := range q {
			q[j] = float32(rng.NormFloat64())
		}
		q = NewVector(q).Vec
		gotID, gotDist, ok := idx.Nearest(q)
		if !ok {
			t.Fatal("nearest not found")
		}
		// Brute force verify.
		best := math.Inf(1)
		var bestID uint64
		for id, v := range vecs {
			if d := L2Distance(q, v); d < best || (d == best && id < bestID) {
				best, bestID = d, id
			}
		}
		if gotID != bestID || math.Abs(gotDist-best) > 1e-12 {
			t.Fatalf("linear nearest (%d,%v) != brute force (%d,%v)", gotID, gotDist, bestID, best)
		}
	}
}

func TestLinearEmptyAndRemove(t *testing.T) {
	idx := NewLinear()
	if _, _, ok := idx.Nearest([]float32{1}); ok {
		t.Fatal("empty index returned a result")
	}
	idx.Add(7, []float32{1, 0})
	idx.Remove(7)
	idx.Remove(7) // double remove is fine
	if idx.Len() != 0 {
		t.Fatalf("Len = %d after remove", idx.Len())
	}
}

func TestLinearAddCopies(t *testing.T) {
	idx := NewLinear()
	v := []float32{1, 0}
	idx.Add(1, v)
	v[0] = 0
	id, dist, _ := idx.Nearest([]float32{1, 0})
	if id != 1 || dist > 1e-9 {
		t.Fatal("index aliased caller slice")
	}
}

func TestLSHFindsExactDuplicate(t *testing.T) {
	idx := NewLSH(16, 8, 12, 3)
	vecs := randomVecs(500, 16, 4)
	for id, v := range vecs {
		idx.Add(id, v)
	}
	// Querying with a stored vector must find it at distance 0: identical
	// vectors share every signature.
	for id, v := range vecs {
		gotID, d, ok := idx.Nearest(v)
		if !ok {
			t.Fatalf("id %d: no result", id)
		}
		if d > 1e-9 && gotID != id {
			t.Fatalf("id %d: found %d at distance %v", id, gotID, d)
		}
	}
}

func TestLSHFindsNearNeighbourMostly(t *testing.T) {
	idx := NewLSH(32, 10, 10, 5)
	vecs := randomVecs(300, 32, 6)
	for id, v := range vecs {
		idx.Add(id, v)
	}
	rng := xrand.New(7)
	found := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		// Perturb a stored vector slightly: a realistic "same object,
		// different viewpoint" query.
		target := uint64(rng.Intn(300) + 1)
		q := make([]float32, 32)
		copy(q, vecs[target])
		for j := range q {
			q[j] += float32(rng.NormFloat64() * 0.02)
		}
		q = NewVector(q).Vec
		id, _, ok := idx.Nearest(q)
		if ok && id == target {
			found++
		}
	}
	if found < trials*85/100 {
		t.Fatalf("LSH recall %d/%d below 85%%", found, trials)
	}
}

func TestLSHNeverUnderestimatesDistance(t *testing.T) {
	// Property: whatever LSH returns, the reported distance matches the
	// true L2 distance to that id's vector, and the true nearest distance
	// (from Linear) is never larger.
	lin := NewLinear()
	lsh := NewLSH(8, 6, 8, 9)
	vecs := randomVecs(200, 8, 10)
	for id, v := range vecs {
		lin.Add(id, v)
		lsh.Add(id, v)
	}
	rng := xrand.New(11)
	for trial := 0; trial < 50; trial++ {
		q := make([]float32, 8)
		for j := range q {
			q[j] = float32(rng.NormFloat64())
		}
		q = NewVector(q).Vec
		lshID, lshDist, ok := lsh.Nearest(q)
		if !ok {
			continue
		}
		if math.Abs(L2Distance(q, vecs[lshID])-lshDist) > 1e-12 {
			t.Fatal("LSH reported a wrong distance")
		}
		_, linDist, _ := lin.Nearest(q)
		if lshDist < linDist-1e-12 {
			t.Fatal("LSH found something closer than exact search — impossible")
		}
	}
}

func TestLSHRemove(t *testing.T) {
	idx := NewLSH(4, 4, 6, 1)
	v := NewVector([]float32{1, 2, 3, 4}).Vec
	idx.Add(42, v)
	if idx.Len() != 1 {
		t.Fatal("add failed")
	}
	idx.Remove(42)
	if idx.Len() != 0 {
		t.Fatal("remove failed")
	}
	if _, _, ok := idx.Nearest(v); ok {
		t.Fatal("removed vector still findable")
	}
	idx.Remove(42) // no-op
}

func TestLSHReAddReplaces(t *testing.T) {
	idx := NewLSH(2, 4, 4, 1)
	idx.Add(1, NewVector([]float32{1, 0}).Vec)
	idx.Add(1, NewVector([]float32{0, 1}).Vec)
	if idx.Len() != 1 {
		t.Fatalf("Len = %d after re-add", idx.Len())
	}
	id, d, ok := idx.Nearest(NewVector([]float32{0, 1}).Vec)
	if !ok || id != 1 || d > 1e-9 {
		t.Fatalf("re-added vector not found: id=%d d=%v ok=%v", id, d, ok)
	}
}

func TestLSHWrongDimension(t *testing.T) {
	idx := NewLSH(4, 2, 4, 1)
	if _, _, ok := idx.Nearest([]float32{1, 2}); ok {
		t.Fatal("wrong-dimension query returned a result")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-dimension Add did not panic")
		}
	}()
	idx.Add(1, []float32{1, 2})
}

func TestNewLSHValidatesParams(t *testing.T) {
	for _, params := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {4, 2, 65}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLSH(%v) did not panic", params)
				}
			}()
			NewLSH(params[0], params[1], params[2], 1)
		}()
	}
}
