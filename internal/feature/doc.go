// Package feature defines CoIC feature descriptors and the nearest-
// neighbour indexes the edge uses to match incoming requests against
// cached results. The paper specifies two descriptor kinds: the DNN
// feature vector of the input image for recognition tasks, and the hash of
// the required 3D model or panoramic frame for rendering and VR streaming
// tasks.
//
// Descriptor.Key() — the hash descriptor's digest, or a digest of a
// vector's exact bit pattern — is the identity everything above this
// package agrees on: the cache store key, the snapshot entry key, and the
// unit the federation's consistent-hash ring partitions across edges.
//
// Two Index implementations serve the similarity path: Linear, an exact
// scan, and LSH, a locality-sensitive hash approximation whose
// cost/recall trade-off the A-index ablation measures.
package feature
