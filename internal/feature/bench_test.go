package feature

import (
	"fmt"
	"testing"

	"github.com/edge-immersion/coic/internal/xrand"
)

func benchIndex(idx Index, n, dim int, seed uint64) []float32 {
	rng := xrand.New(seed)
	var last []float32
	for i := 0; i < n; i++ {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		last = NewVector(v).Vec
		idx.Add(uint64(i+1), last)
	}
	q := make([]float32, dim)
	copy(q, last)
	q[0] += 0.01
	return NewVector(q).Vec
}

// BenchmarkLinearNearest scales linearly with residency — the default
// matcher for small edge caches.
func BenchmarkLinearNearest(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			idx := NewLinear()
			q := benchIndex(idx, n, 64, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Nearest(q)
			}
		})
	}
}

// BenchmarkLSHNearest stays near-flat with residency — the metro-scale
// matcher (A-index ablation).
func BenchmarkLSHNearest(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			idx := NewLSH(64, 8, 14, 7)
			q := benchIndex(idx, n, 64, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Nearest(q)
			}
		})
	}
}
