package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/edge-immersion/coic/internal/xrand"
)

func TestNewShapeAndZero(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Len() != 24 || tt.Rank() != 3 || tt.Dim(1) != 3 {
		t.Fatalf("bad geometry: len=%d rank=%d", tt.Len(), tt.Rank())
	}
	for _, v := range tt.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][]int{{}, {0}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(3, 4, 5)
	tt.Set(7.5, 2, 1, 3)
	if got := tt.At(2, 1, 3); got != 7.5 {
		t.Fatalf("At = %v", got)
	}
	// Row-major layout: offset = (2*4+1)*5+3 = 48.
	if tt.Data[48] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	tt := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, -1}, {0}, {0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%v) did not panic", idx)
				}
			}()
			tt.At(idx...)
		}()
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := New(4)
	a.Fill(1)
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := New(2, 6)
	b := a.Reshape(3, 4)
	b.Data[5] = 3
	if a.Data[5] != 3 {
		t.Fatal("Reshape must alias data")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad reshape did not panic")
			}
		}()
		a.Reshape(5, 5)
	}()
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice mismatch did not panic")
		}
	}()
	FromSlice(make([]float32, 5), 2, 3)
}

func TestArgmax(t *testing.T) {
	tt := FromSlice([]float32{1, 5, 3, 5}, 4)
	i, v := tt.Argmax()
	if i != 1 || v != 5 {
		t.Fatalf("Argmax = (%d, %v), want (1, 5) — first max wins ties", i, v)
	}
}

func TestDotAndNorm(t *testing.T) {
	a := FromSlice([]float32{3, 4}, 2)
	b := FromSlice([]float32{1, 2}, 2)
	if got := Dot(a, b); got != 11 {
		t.Fatalf("Dot = %v", got)
	}
	if got := a.L2Norm(); got != 5 {
		t.Fatalf("L2Norm = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	a := FromSlice([]float32{3, 4}, 2)
	a.Normalize()
	if math.Abs(float64(a.L2Norm())-1) > 1e-6 {
		t.Fatalf("norm after Normalize = %v", a.L2Norm())
	}
	z := New(3)
	z.Normalize() // must not NaN
	for _, v := range z.Data {
		if v != 0 {
			t.Fatal("zero tensor mutated by Normalize")
		}
	}
}

func TestMatVec(t *testing.T) {
	w := FromSlice([]float32{
		1, 2,
		3, 4,
		5, 6,
	}, 3, 2)
	x := FromSlice([]float32{1, 1}, 2)
	y := MatVec(w, x)
	want := []float32{3, 7, 11}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("MatVec = %v, want %v", y.Data, want)
		}
	}
}

func TestMatVecPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatVec mismatch did not panic")
		}
	}()
	MatVec(New(3, 2), New(3))
}

func TestAddInPlaceAndScale(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{10, 20}, 2)
	a.AddInPlace(b)
	a.Scale(2)
	if a.Data[0] != 22 || a.Data[1] != 44 {
		t.Fatalf("got %v", a.Data)
	}
}

func TestRandNormalDeterministic(t *testing.T) {
	a, b := New(100), New(100)
	a.RandNormal(xrand.New(5), 0.1)
	b.RandNormal(xrand.New(5), 0.1)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("RandNormal not deterministic for equal seeds")
		}
	}
}

func TestDotSymmetryProperty(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		// Clamp crazy values so the float comparison stays meaningful.
		vals := make([]float32, len(raw))
		for i, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 1
			}
			if v > 1e3 {
				v = 1e3
			}
			if v < -1e3 {
				v = -1e3
			}
			vals[i] = v
		}
		a := FromSlice(vals, len(vals))
		b := a.Clone()
		return Dot(a, b) == Dot(b, a) && Dot(a, b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqualShape(t *testing.T) {
	if !EqualShape(New(2, 3), New(2, 3)) {
		t.Fatal("equal shapes reported unequal")
	}
	if EqualShape(New(2, 3), New(3, 2)) || EqualShape(New(6), New(2, 3)) {
		t.Fatal("unequal shapes reported equal")
	}
}
