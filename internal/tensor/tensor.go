// Package tensor implements the dense float32 arrays underneath the DNN
// inference engine. Tensors are row-major; a CHW image tensor has shape
// (channels, height, width). Only what inference needs is implemented —
// there is no autograd, because CoIC ships fixed pre-trained weights.
package tensor

import (
	"fmt"
	"math"

	"github.com/edge-immersion/coic/internal/xrand"
)

// Tensor is a dense row-major float32 array with an explicit shape.
type Tensor struct {
	shape []int
	Data  []float32
}

// New allocates a zero tensor with the given shape. It panics on empty or
// non-positive dimensions: a mis-shaped tensor is a programming error, not
// a runtime condition.
func New(shape ...int) *Tensor {
	if len(shape) == 0 {
		panic("tensor: New with no dimensions")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in %v", shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data with shape. The slice is used directly (no copy);
// it panics if the element count does not match the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	t := &Tensor{shape: append([]int(nil), shape...), Data: data}
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: %d elements cannot have shape %v", len(data), shape))
	}
	return t
}

// Shape returns the tensor's dimensions. The caller must not mutate it.
func (t *Tensor) Shape() []int { return t.shape }

// Len reports the total element count.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank reports the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of the same data with a new shape. It panics if
// element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	return FromSlice(t.Data, shape...)
}

// At reads the element at the given multi-index (rank must match).
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set writes the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// RandNormal fills the tensor with normal(0, std) variates from rng.
func (t *Tensor) RandNormal(rng *xrand.RNG, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// Argmax returns the index of the largest element (first on ties) and its
// value. It panics on an empty tensor (impossible via New).
func (t *Tensor) Argmax() (int, float32) {
	best, bv := 0, t.Data[0]
	for i, v := range t.Data {
		if v > bv {
			best, bv = i, v
		}
	}
	return best, bv
}

// Dot returns the inner product of two equal-length tensors viewed as flat
// vectors.
func Dot(a, b *Tensor) float32 {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a.Data), len(b.Data)))
	}
	var s float32
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

// L2Norm returns the Euclidean norm of the flat vector.
func (t *Tensor) L2Norm() float32 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// Normalize scales the tensor to unit L2 norm in place. A zero tensor is
// left untouched (there is no direction to normalise).
func (t *Tensor) Normalize() {
	n := t.L2Norm()
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range t.Data {
		t.Data[i] *= inv
	}
}

// AddInPlace adds other element-wise into t.
func (t *Tensor) AddInPlace(other *Tensor) {
	if len(t.Data) != len(other.Data) {
		panic("tensor: AddInPlace length mismatch")
	}
	for i := range t.Data {
		t.Data[i] += other.Data[i]
	}
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// EqualShape reports whether two tensors have identical shapes.
func EqualShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// MatVec computes y = W·x where W has shape (out, in) and x has length in.
// It returns a new tensor of shape (out).
func MatVec(w *Tensor, x *Tensor) *Tensor {
	if w.Rank() != 2 {
		panic("tensor: MatVec weight must be rank 2")
	}
	out, in := w.shape[0], w.shape[1]
	if x.Len() != in {
		panic(fmt.Sprintf("tensor: MatVec input %d != weight columns %d", x.Len(), in))
	}
	y := New(out)
	for o := 0; o < out; o++ {
		row := w.Data[o*in : (o+1)*in]
		var s float32
		for i, xv := range x.Data {
			s += row[i] * xv
		}
		y.Data[o] = s
	}
	return y
}
