package tensor

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file holds the batched kernels behind dnn's ForwardBatch path.
// The contract that shapes everything here is bit-exactness: a batched
// kernel must produce the same float32 bit patterns as the serial kernel
// it replaces, so golden-equivalence tests can compare outputs with ==
// instead of a tolerance. Two rules follow:
//
//   - additions into one output element always run in ascending-k order
//     with a single float32 accumulator, exactly like MatVec — blocking
//     may tile the loops for cache locality but never reorders the sum;
//   - parallelism only splits work across *independent* output rows,
//     never across the reduction dimension.

// Blocking factors for MatMulT. kBlock keeps a strip of each B row in L1
// while a panel of A rows streams past it; nBlock bounds how many B rows
// that strip spans so the working set stays cache-sized.
const (
	kBlock = 256
	nBlock = 64
)

// maxWorkers caps ParallelFor's fan-out. 0 means GOMAXPROCS. It is a
// package global (not a parameter) so benchmarks and per-core ablations
// can pin kernels to one core without threading a knob through every
// layer type.
var maxWorkersVar atomic.Int32

// SetMaxWorkers caps the goroutines ParallelFor may use; n <= 0 restores
// the default (GOMAXPROCS). It returns the previous cap so callers can
// defer-restore.
func SetMaxWorkers(n int) int {
	old := maxWorkersVar.Swap(int32(n))
	return int(old)
}

func workerCap() int {
	n := int(maxWorkersVar.Load())
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ParallelFor runs fn over the half-open ranges that partition [0, n),
// using up to min(workerCap, n/minPerWorker) goroutines. Ranges are
// contiguous and disjoint, so fn invocations may not overlap indices;
// results are deterministic whenever fn writes only to its own range.
// With one worker (or a small n) it runs inline on the caller's
// goroutine.
func ParallelFor(n, minPerWorker int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if minPerWorker < 1 {
		minPerWorker = 1
	}
	workers := workerCap()
	if byWork := n / minPerWorker; workers > byWork {
		workers = byWork
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}

// bufPools holds sync.Pools of []float32 bucketed by power-of-two
// capacity, so batch kernels can reuse packing scratch across calls
// instead of allocating per batch.
var bufPools [33]sync.Pool

func poolIndex(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1)) // smallest p with 1<<p >= n
}

// GetBuf returns a zeroed []float32 of length n, reusing pooled backing
// storage when available. Pair with PutBuf when the buffer is dead.
func GetBuf(n int) []float32 {
	idx := poolIndex(n)
	if v := bufPools[idx].Get(); v != nil {
		b := v.([]float32)[:n]
		for i := range b {
			b[i] = 0
		}
		return b
	}
	return make([]float32, n, 1<<idx)
}

// PutBuf returns a buffer obtained from GetBuf to its pool.
func PutBuf(b []float32) {
	if cap(b) == 0 {
		return
	}
	idx := poolIndex(cap(b))
	if 1<<idx != cap(b) {
		idx-- // non-power-of-two cap: park in the bucket it can satisfy
	}
	bufPools[idx].Put(b[:0])
}

// MatMulT computes C = A·Bᵀ where A has shape (m, k) and B has shape
// (n, k): c[r,o] = Σ_j a[r,j]·b[o,j]. This is the batched form of MatVec
// (each row of A is one MatVec against the same weight matrix B), blocked
// over k and n for cache reuse and parallelised over rows of A. For every
// (r, o) the reduction runs in ascending-j order through one float32
// accumulator, so MatMulT of a single row is bit-identical to MatVec.
func MatMulT(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT operands must be rank 2")
	}
	m, k := a.shape[0], a.shape[1]
	n, bk := b.shape[0], b.shape[1]
	if k != bk {
		panic(fmt.Sprintf("tensor: MatMulT inner dims %d vs %d", k, bk))
	}
	c := New(m, n)
	MatMulTInto(c.Data, a.Data, b.Data, m, n, k)
	return c
}

// MatMulTInto is MatMulT writing into a caller-provided (and zeroed)
// buffer of length m*n, letting hot paths reuse pooled storage.
func MatMulTInto(c, a, b []float32, m, n, k int) {
	if len(c) < m*n || len(a) < m*k || len(b) < n*k {
		panic("tensor: MatMulTInto buffer too small")
	}
	// Each worker owns a contiguous strip of A rows, so writes into c
	// never overlap. 8 rows per worker keeps tiny batches inline.
	ParallelFor(m, 8, func(rs, re int) {
		for k0 := 0; k0 < k; k0 += kBlock {
			k1 := k0 + kBlock
			if k1 > k {
				k1 = k
			}
			for n0 := 0; n0 < n; n0 += nBlock {
				n1 := n0 + nBlock
				if n1 > n {
					n1 = n
				}
				for r := rs; r < re; r++ {
					arow := a[r*k+k0 : r*k+k1]
					crow := c[r*n : (r+1)*n]
					for o := n0; o < n1; o++ {
						brow := b[o*k+k0 : o*k+k1]
						// Resuming from crow[o] keeps the global
						// per-(r,o) addition order ascending in j even
						// though j is tiled: float32 rounds identically
						// whether the partial sits in a register or in
						// memory between tiles.
						acc := crow[o]
						for j, av := range arow {
							acc += av * brow[j]
						}
						crow[o] = acc
					}
				}
			}
		}
	})
}
