package tensor

import (
	"math"
	"sync/atomic"
	"testing"

	"github.com/edge-immersion/coic/internal/xrand"
)

// TestMatMulTMatchesMatVec is the kernel-level golden contract: every row
// of the blocked batched product must be bit-identical to a serial MatVec
// of that row, across shapes small enough to stay in one block and large
// enough to tile both k and n.
func TestMatMulTMatchesMatVec(t *testing.T) {
	rng := xrand.New(7)
	shapes := []struct{ m, n, k int }{
		{1, 1, 1}, {3, 5, 7}, {8, 64, 64},
		{4, nBlock + 9, kBlock + 33}, // forces n and k tiling
		{17, 130, 301},
	}
	for _, s := range shapes {
		a := New(s.m, s.k)
		b := New(s.n, s.k)
		a.RandNormal(rng, 1)
		b.RandNormal(rng, 1)
		c := MatMulT(a, b)
		if c.Dim(0) != s.m || c.Dim(1) != s.n {
			t.Fatalf("shape %v: got %v", s, c.Shape())
		}
		for r := 0; r < s.m; r++ {
			row := FromSlice(a.Data[r*s.k:(r+1)*s.k], s.k)
			want := MatVec(b, row)
			for o := 0; o < s.n; o++ {
				got := c.At(r, o)
				if math.Float32bits(got) != math.Float32bits(want.Data[o]) {
					t.Fatalf("shape %v row %d col %d: %v != MatVec %v", s, r, o, got, want.Data[o])
				}
			}
		}
	}
}

// TestMatMulTSingleWorkerIdentical pins determinism across parallelism:
// the parallel product must equal the single-worker product bit for bit.
func TestMatMulTSingleWorkerIdentical(t *testing.T) {
	rng := xrand.New(11)
	a := New(33, 90)
	b := New(40, 90)
	a.RandNormal(rng, 1)
	b.RandNormal(rng, 1)
	parallel := MatMulT(a, b)
	defer SetMaxWorkers(SetMaxWorkers(1))
	serial := MatMulT(a, b)
	for i := range serial.Data {
		if math.Float32bits(parallel.Data[i]) != math.Float32bits(serial.Data[i]) {
			t.Fatalf("element %d: parallel %v != serial %v", i, parallel.Data[i], serial.Data[i])
		}
	}
}

// TestParallelForPartition verifies [0, n) is covered exactly once for
// assorted n and worker caps.
func TestParallelForPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 16} {
		defer SetMaxWorkers(SetMaxWorkers(workers))
		for _, n := range []int{0, 1, 7, 64, 1001} {
			counts := make([]atomic.Int32, n)
			ParallelFor(n, 1, func(s, e int) {
				for i := s; i < e; i++ {
					counts[i].Add(1)
				}
			})
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestGetBufZeroedAfterReuse guards the pool contract: a recycled buffer
// comes back zeroed at the requested length.
func TestGetBufZeroedAfterReuse(t *testing.T) {
	b := GetBuf(100)
	for i := range b {
		b[i] = 3.5
	}
	PutBuf(b)
	c := GetBuf(70)
	if len(c) != 70 {
		t.Fatalf("len = %d, want 70", len(c))
	}
	for i, v := range c {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
		}
	}
	PutBuf(c)
}
