//go:build race

package core

// raceEnabled reports that this binary was built with -race. The heavy
// deterministic experiment replays skip under the race detector: they are
// single-threaded discrete-event runs whose value is numeric (hit-ratio
// monotonicity), already covered without -race, and the detector makes
// them ~10× slower. Concurrency coverage lives in the cache hammer tests
// and the TCP federation tests, which do run under -race.
const raceEnabled = true
