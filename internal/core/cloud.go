package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/edge-immersion/coic/internal/dnn"
	"github.com/edge-immersion/coic/internal/feature"
	"github.com/edge-immersion/coic/internal/mesh"
	"github.com/edge-immersion/coic/internal/pano"
	"github.com/edge-immersion/coic/internal/tensor"
	"github.com/edge-immersion/coic/internal/vision"
	"github.com/edge-immersion/coic/internal/wire"
	"github.com/edge-immersion/coic/internal/xrand"
)

// Fig2bModelKB lists the 3D model sizes (KB) of the paper's Figure 2b.
var Fig2bModelKB = []int{231, 1073, 1949, 7050, 13072, 15053}

// AnnotationModelKB sizes the per-class AR annotation models served after
// recognition (small high-quality overlays).
const AnnotationModelKB = 231

// Cloud is the cloud computing platform: it owns the full recognition
// DNN, the 3D model repository (OBJX sources) and the VR video source.
// All methods are safe for concurrent use and return both the result and
// the virtual compute time the operation costs on the cloud's hardware.
type Cloud struct {
	Params Params
	Net    *dnn.Network

	// centroids holds one reference descriptor per class, the mean of
	// several canonical-ish viewpoints. Classification is
	// nearest-centroid in descriptor space: with fixed random conv
	// weights the raw softmax head would assign arbitrary labels, while
	// centroids give the correct, deterministic labels the AR
	// application needs.
	centroids [][]float32

	mu     sync.Mutex
	models map[string]*modelEntry

	// ComputeBusy accumulates virtual compute time for utilisation
	// reporting.
	computeBusy time.Duration
}

type modelEntry struct {
	// spec defers generation: the repository registers every model at
	// startup but only materialises the ones an experiment touches.
	spec mesh.Spec
	objx []byte
	// cmf memoises the parsed runtime form so repeated origin requests
	// do not re-parse for real each time (the *virtual* parse cost is
	// still charged per request — the paper's origin pays the load every
	// time).
	cmf []byte
}

// NewCloud builds the cloud: recognition network plus a model repository
// holding one annotation model per recognisable class and the Figure 2b
// size ladder.
func NewCloud(p Params) *Cloud {
	c := &Cloud{
		Params: p,
		Net:    dnn.NewEdgeNet(p.Classes(), p.DNNInput, p.Seed),
		models: map[string]*modelEntry{},
	}
	c.buildCentroids()
	for i, name := range p.Classes() {
		id := AnnotationModelID(name)
		c.addModel(id, AnnotationModelKB*1024, p.Seed+uint64(1000+i))
	}
	for _, kb := range Fig2bModelKB {
		c.addModel(Fig2bModelID(kb), kb*1024, p.Seed+uint64(kb))
	}
	return c
}

// AnnotationModelID names the AR overlay model for a class label.
func AnnotationModelID(class string) string { return "annotation/" + class }

// Fig2bModelID names a Figure 2b ladder model.
func Fig2bModelID(kb int) string { return fmt.Sprintf("scene/%dkb", kb) }

func (c *Cloud) addModel(id string, targetBytes int, seed uint64) {
	spec := mesh.SpecForTargetSize(id, targetBytes, seed)
	c.mu.Lock()
	c.models[id] = &modelEntry{spec: spec}
	c.mu.Unlock()
}

// objxOf materialises (and memoises) a model's OBJX source.
func (c *Cloud) objxOf(entry *modelEntry) []byte {
	c.mu.Lock()
	objx := entry.objx
	c.mu.Unlock()
	if objx != nil {
		return objx
	}
	m := mesh.Generate(entry.spec)
	objx, err := mesh.EncodeOBJX(m)
	if err != nil {
		panic(err) // deterministic generator output must encode
	}
	c.mu.Lock()
	entry.objx = objx
	c.mu.Unlock()
	return objx
}

// AnnotationModelIDs lists the per-class AR annotation models (the small
// overlays traces use for render tasks).
func (c *Cloud) AnnotationModelIDs() []string {
	ids := make([]string, 0, len(c.Params.Classes()))
	for _, name := range c.Params.Classes() {
		ids = append(ids, AnnotationModelID(name))
	}
	return ids
}

// ModelIDs lists the repository contents in sorted order.
func (c *Cloud) ModelIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.models))
	for id := range c.models {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// buildCentroids derives the per-class reference descriptors from a few
// deterministic training views each.
func (c *Cloud) buildCentroids() {
	classes := c.Params.Classes()
	c.centroids = make([][]float32, len(classes))
	const views = 4
	for ci := range classes {
		sum := make([]float32, c.Net.FeatureDim())
		for v := 0; v < views; v++ {
			view := vision.RandomView(xrand.New(c.Params.Seed ^ uint64(ci*131+v)))
			frame := vision.RenderObject(vision.Class(ci), view, 2*c.Params.DNNInput, 2*c.Params.DNNInput)
			f := c.Net.Features(vision.ToTensor(frame, c.Params.DNNInput))
			for i, x := range f {
				sum[i] += x
			}
		}
		cen := feature.NewVector(sum) // normalises the mean direction
		c.centroids[ci] = cen.Vec
	}
}

// Recognize executes the full recognition task on a raw RGBA camera
// frame: the real DNN trunk runs and the nearest class centroid decides
// the label. The result is serialised exactly as it will be cached.
// Returns the result bytes and the virtual compute cost.
func (c *Cloud) Recognize(payload []byte) ([]byte, time.Duration, error) {
	frame, err := vision.FromBytes(c.Params.CameraW, c.Params.CameraH, payload)
	if err != nil {
		return nil, 0, fmt.Errorf("core: cloud recognize: %w", err)
	}
	input := vision.ToTensor(frame, c.Params.DNNInput)
	f := c.Net.Features(input)
	idx, conf := c.classify(f)
	label := c.Params.Classes()[idx]
	res := wire.RecognitionResult{
		ClassIndex:        int32(idx),
		Label:             label,
		Confidence:        conf,
		AnnotationModelID: AnnotationModelID(label),
	}
	body, err := res.Marshal()
	if err != nil {
		return nil, 0, err
	}
	cost := c.Params.flopsTime(c.Net.TotalFLOPs(), c.Params.CloudGFLOPS)
	c.addBusy(cost)
	return body, cost, nil
}

// RecognizeBatch executes recognition over a batch of raw frames in one
// batched trunk pass (dnn.FeaturesBatch): bit-identical frames share
// every layer, distinct frames share the blocked Dense kernels. Each
// result is byte-identical to a serial Recognize of that payload; errs
// is per-payload (one bad frame never fails its batchmates). The virtual
// compute cost charges one full pass per *unique* payload — the batch
// savings the serving stack actually sees.
func (c *Cloud) RecognizeBatch(payloads [][]byte) (results [][]byte, errs []error, cost time.Duration) {
	results = make([][]byte, len(payloads))
	errs = make([]error, len(payloads))
	inputs := make([]*tensor.Tensor, 0, len(payloads))
	members := make([]int, 0, len(payloads))
	unique := map[string]struct{}{}
	for i, payload := range payloads {
		frame, err := vision.FromBytes(c.Params.CameraW, c.Params.CameraH, payload)
		if err != nil {
			errs[i] = fmt.Errorf("core: cloud recognize: %w", err)
			continue
		}
		inputs = append(inputs, vision.ToTensor(frame, c.Params.DNNInput))
		members = append(members, i)
		unique[string(payload)] = struct{}{}
	}
	if len(inputs) == 0 {
		return results, errs, 0
	}
	feats := c.Net.FeaturesBatch(inputs)
	for fi, i := range members {
		idx, conf := c.classify(feats[fi])
		label := c.Params.Classes()[idx]
		body, err := (wire.RecognitionResult{
			ClassIndex:        int32(idx),
			Label:             label,
			Confidence:        conf,
			AnnotationModelID: AnnotationModelID(label),
		}).Marshal()
		if err != nil {
			errs[i] = err
			continue
		}
		results[i] = body
	}
	cost = time.Duration(len(unique)) * c.Params.flopsTime(c.Net.TotalFLOPs(), c.Params.CloudGFLOPS)
	c.addBusy(cost)
	return results, errs, cost
}

// classify returns the nearest centroid and a softmax-over-similarity
// confidence.
func (c *Cloud) classify(f []float32) (int, float32) {
	best, bestDist := 0, math.MaxFloat64
	var expSum, expBest float64
	for i, cen := range c.centroids {
		d := feature.L2Distance(f, cen)
		e := math.Exp(-d * d / 0.02)
		expSum += e
		if d < bestDist {
			best, bestDist = i, d
			expBest = e
		}
	}
	if expSum == 0 {
		return best, 0
	}
	return best, float32(expBest / expSum)
}

// FetchModel loads a model from the repository: parse the OBJX source
// (the real parser runs; the result is memoised) and return the runtime
// CMF bytes. The virtual cost charges the full parse every call — the
// origin baseline re-loads per request, which is exactly the waste CoIC's
// edge cache removes.
func (c *Cloud) FetchModel(id string) ([]byte, time.Duration, error) {
	c.mu.Lock()
	entry, ok := c.models[id]
	c.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("core: unknown model %q", id)
	}
	objx := c.objxOf(entry)
	cost := bytesTime(len(objx), c.Params.CloudOBJXParseBps)
	c.mu.Lock()
	cmf := entry.cmf
	c.mu.Unlock()
	if cmf == nil {
		m, err := mesh.DecodeOBJX(objx)
		if err != nil {
			return nil, 0, fmt.Errorf("core: repository OBJX for %q corrupt: %w", id, err)
		}
		cmf, err = mesh.EncodeCMF(m)
		if err != nil {
			return nil, 0, err
		}
		c.mu.Lock()
		entry.cmf = cmf
		c.mu.Unlock()
	}
	c.addBusy(cost)
	return cmf, cost, nil
}

// ModelSizes reports the OBJX and CMF byte sizes of a repository model
// (generating and parsing if needed); experiments use them for table
// columns.
func (c *Cloud) ModelSizes(id string) (objx, cmf int, err error) {
	data, _, err := c.FetchModel(id)
	if err != nil {
		return 0, 0, err
	}
	c.mu.Lock()
	entry := c.models[id]
	c.mu.Unlock()
	return len(c.objxOf(entry)), len(data), nil
}

// FetchPano renders one panoramic frame of a VR video and returns its
// RLE encoding plus the virtual render cost.
func (c *Cloud) FetchPano(videoID string, frameIdx int) ([]byte, time.Duration, error) {
	if frameIdx < 0 {
		return nil, 0, fmt.Errorf("core: negative pano frame %d", frameIdx)
	}
	p := pano.Synthesize(videoID, frameIdx, c.Params.PanoWidth)
	data := pano.EncodeRLE(p.Frame)
	cost := c.Params.CloudPanoRenderTime
	c.addBusy(cost)
	return data, cost, nil
}

func (c *Cloud) addBusy(d time.Duration) {
	c.mu.Lock()
	c.computeBusy += d
	c.mu.Unlock()
}

// ComputeBusy reports accumulated virtual compute time.
func (c *Cloud) ComputeBusy() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.computeBusy
}
