package core

import (
	"context"
	"fmt"
	"time"

	"github.com/edge-immersion/coic/internal/cache"
	"github.com/edge-immersion/coic/internal/feature"
	"github.com/edge-immersion/coic/internal/netsim"
	"github.com/edge-immersion/coic/internal/wire"
)

// This file assembles virtual-time edge federations: N edges partition
// the descriptor keyspace via consistent hashing, probe the key's home
// edge on a local miss (one cheap edge↔edge hop, modelled on a netsim
// Mesh), publish freshly computed results to the home, and optionally
// replicate peer hits locally. The TCP counterpart lives in serve.go —
// both drive the same cache.Federation routing policy.

// FederationConfig shapes a virtual-time federation.
type FederationConfig struct {
	// Mesh models the edge↔edge links; nil charges only the remote
	// EdgeLookupTime per hop (free network — useful for isolating cache
	// effects from transport).
	Mesh *netsim.Mesh
	// Partitioned enables consistent-hash keyspace routing: lookups probe
	// only the key's home edge and inserts are published there. False
	// falls back to broadcast cooperation (probe every peer in order).
	Partitioned bool
	// Replicate adopts peer hits into the probing edge's local cache.
	Replicate bool
	// Vnodes tunes ring smoothness (cache.DefaultVnodes when <= 0).
	Vnodes int
}

// EdgeID names edge i in a federation; ring ownership and experiment
// output both use these names.
func EdgeID(i int) string { return fmt.Sprintf("edge-%d", i) }

// Federate wires the given edges into one federation. Edge i is named
// EdgeID(i); the mesh, when present, must span at least len(edges) nodes.
// Existing cache contents are untouched — federating warm edges is legal.
func Federate(edges []*Edge, cfg FederationConfig) {
	if len(edges) == 0 {
		panic("core: federating zero edges")
	}
	if cfg.Mesh != nil && cfg.Mesh.Size() < len(edges) {
		panic(fmt.Sprintf("core: mesh spans %d edges, federation needs %d", cfg.Mesh.Size(), len(edges)))
	}
	var ring *cache.Ring
	if cfg.Partitioned {
		ids := make([]string, len(edges))
		for i := range edges {
			ids[i] = EdgeID(i)
		}
		ring = cache.NewRing(ids, cfg.Vnodes)
	}
	for i, e := range edges {
		fed := cache.NewFederation(EdgeID(i), ring)
		for j, p := range edges {
			if j == i {
				continue
			}
			var link *netsim.Duplex
			if cfg.Mesh != nil {
				link = cfg.Mesh.Link(i, j)
			}
			fed.AddPeer(EdgeID(j), cache.Peer{
				Probe:  peerProbe(p, link),
				Insert: peerInsert(p, link),
			})
		}
		e.SetFederation(fed, cfg.Replicate)
	}
}

// peerProbe builds the virtual-time probe of remote edge p over link:
// ship a PeerLookup frame, run the remote local-only lookup, ship the
// PeerReply back. Costs are contention-free link estimates — edge↔edge
// links are fat enough that FIFO queueing there is second-order, and an
// estimate keeps probes free of shared queueing state, so federated
// experiments stay deterministic under any event interleaving.
func peerProbe(p *Edge, link *netsim.Duplex) cache.PeerProbe {
	return func(_ context.Context, requester int, task uint8, desc feature.Descriptor) ([]byte, cache.LookupResult, time.Duration) {
		cost := p.Params.EdgeLookupTime
		if link != nil {
			if body, err := (wire.PeerLookup{Task: wire.Task(task), Desc: desc}).Marshal(); err == nil {
				cost += link.Up.EstimateCost((wire.Message{Type: wire.MsgPeerLookup, Body: body}).WireSize())
			}
		}
		v, res := p.PeerProbe(requester, desc)
		if link != nil {
			if body, err := (wire.PeerReply{Outcome: outcomeToProbe(res.Outcome), Distance: res.Distance, Result: v}).Marshal(); err == nil {
				cost += link.Down.EstimateCost((wire.Message{Type: wire.MsgPeerReply, Body: body}).WireSize())
			}
		}
		return v, res, cost
	}
}

// peerInsert builds the publish path to remote edge p. Publishing is off
// the requester's critical path, so no cost is returned; the transfer
// itself is modelled as background replication traffic.
func peerInsert(p *Edge, link *netsim.Duplex) cache.PeerInsert {
	return func(desc feature.Descriptor, value []byte, cost float64) {
		p.AdoptRemote(desc, value, cost)
	}
}

// outcomeToProbe maps a cache outcome onto its wire encoding.
func outcomeToProbe(o cache.Outcome) uint8 {
	switch o {
	case cache.OutcomeExact:
		return wire.ProbeExact
	case cache.OutcomeSimilar:
		return wire.ProbeSimilar
	default:
		return wire.ProbeMiss
	}
}

// probeToOutcome maps a wire probe outcome back to a cache outcome.
func probeToOutcome(o uint8) cache.Outcome {
	switch o {
	case wire.ProbeExact:
		return cache.OutcomeExact
	case wire.ProbeSimilar:
		return cache.OutcomeSimilar
	default:
		return cache.OutcomeMiss
	}
}
