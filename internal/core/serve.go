package core

import (
	"context"
	"errors"
	"fmt"

	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/edge-immersion/coic/internal/cache"
	"github.com/edge-immersion/coic/internal/feature"
	"github.com/edge-immersion/coic/internal/pano"
	"github.com/edge-immersion/coic/internal/scene"
	"github.com/edge-immersion/coic/internal/vision"
	"github.com/edge-immersion/coic/internal/wire"
)

// This file runs the same CoIC protocol over real TCP sockets: the
// deployment mode of the cmd/ daemons, where tc-style shaping comes from
// netsim.Shaper and latency is wall-clock. The virtual-time Session is
// for experiments; these servers are for running the system.
//
// Each connection is served pipelined: a reader goroutine tags incoming
// requests with an arrival sequence number and feeds a bounded worker
// pool, and replies are written back strictly in arrival order through a
// wire.ReplyBuffer. Concurrent cache misses on the same (or similar)
// descriptor coalesce into one upstream fetch via the edge's in-flight
// table, and the upstream connection itself is multiplexed, so a burst of
// distinct misses overlaps its cloud round trips instead of serialising
// them.
//
// Cancellation flows through every stage. Each request is dispatched
// under its own context, cancelled by a MsgCancel frame naming it, by the
// client disconnecting mid-pipeline, or by the caller's deadline; a
// cancelled request still occupies its slot in the reply order and
// answers with CodeCanceled. Coalesced fetches follow last-waiter-cancels
// (cache.InflightTable): one departing waiter leaves the flight alone,
// the last departure aborts the upstream round trip and forwards a
// MsgCancel to the cloud. Cancelling the context passed to ServeContext
// triggers graceful shutdown: the listener closes, readers stop accepting
// new requests, queued and in-flight requests drain, replies flush, and
// only then do connections close.

// Serving tunables. Workers bounds how many requests one connection
// processes concurrently; QueueDepth bounds how many more may be buffered
// awaiting a worker before the server sheds load with CodeOverloaded;
// FetchTimeout bounds one upstream (cloud) round trip so a hung cloud
// fails its coalesced waiters instead of wedging them.
const (
	DefaultWorkers      = 8
	DefaultQueueDepth   = 32
	DefaultFetchTimeout = 15 * time.Second
)

// ConnWrapper optionally wraps accepted/dialed connections (e.g. with a
// netsim.Shaper); nil means unwrapped.
type ConnWrapper func(net.Conn) net.Conn

// overloadReply is the admission-control rejection for one request; it
// takes the rejected request's place in the connection's reply order.
func overloadReply(msg wire.Message, inFlight int) wire.Message {
	body, _ := (wire.ErrorReply{
		Code: wire.CodeOverloaded,
		Msg:  fmt.Sprintf("server overloaded: %d requests in flight on this connection", inFlight),
	}).Marshal()
	return wire.Message{Type: wire.MsgError, RequestID: msg.RequestID, Body: body}
}

// canceledReply answers a request whose context died before (or while)
// it was being processed; it keeps the request's place in the reply
// order.
func canceledReply(reqID uint64) wire.Message {
	body, _ := (wire.ErrorReply{Code: wire.CodeCanceled, Msg: "request canceled"}).Marshal()
	return wire.Message{Type: wire.MsgError, RequestID: reqID, Body: body}
}

// deadlineShedReply answers a request shed because its wall-clock
// deadline passed while it was queued: no worker executed it, no
// upstream fetch was issued, and the reply keeps its place in the
// connection's reply order.
func deadlineShedReply(reqID uint64) wire.Message {
	body, _ := (wire.ErrorReply{
		Code: wire.CodeDeadlineExceeded,
		Msg:  "deadline passed while queued; request shed unexecuted",
	}).Marshal()
	return wire.Message{Type: wire.MsgError, RequestID: reqID, Body: body}
}

// quotaReply answers a request rejected by its tenant's token bucket: it
// never entered the scheduler, and the reply keeps the request's place
// in the connection's reply order.
func quotaReply(reqID uint64, tenant string) wire.Message {
	body, _ := (wire.ErrorReply{
		Code: wire.CodeQuotaExceeded,
		Msg:  fmt.Sprintf("tenant %q admission quota exceeded; retry after backing off", tenant),
	}).Marshal()
	return wire.Message{Type: wire.MsgError, RequestID: reqID, Body: body}
}

// pipelineHooks observes one connection pipeline's admission decisions;
// any hook may be nil. onAdmit sees every request entering the scheduler
// with the connection's tenant and the request's service class; onShed
// sees every request dropped because its deadline expired in the queue;
// onOverload sees every request rejected because the queue was full of
// live work; onQuota sees every request rejected by its tenant's token
// bucket.
type pipelineHooks struct {
	onAdmit    func(tenant string, q wire.QoS)
	onShed     func()
	onOverload func()
	onQuota    func(tenant string)
	// onBatch sees the live size of every batch a worker executes
	// through the batch dispatcher (including size 1).
	onBatch func(n int)
}

// isCanceled reports whether err is a context cancellation/expiry.
func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// connPipeline serves one connection with the reader → priority
// scheduler → worker pool → ordered writer topology. MsgHello is handled
// inline on the reader (its mode switch must stay ordered with the
// requests around it), and so is MsgCancel (it must observe the
// registration of every request read before it); every other message is
// admitted to the schedQueue with its QoS class and wall-clock deadline
// peeked off the wire, and workers pop strictly by class, then
// deficit-round-robin across tenants within the class, then
// earliest-deadline-first. A request whose deadline passes while queued
// is shed with CodeDeadlineExceeded before any worker executes it. When
// the queue is full of live work, the request is rejected with
// CodeOverloaded instead of stalling the reader, keeping the connection
// responsive under load; expired queued work is evicted first to make
// room.
//
// tenants (nil = open policy) governs the connection's tenant identity:
// the first hello frame authenticates a tenant onto the connection
// (structured hellos carry an explicit claim; legacy and absent hellos
// run as DefaultTenant), a failed authentication answers CodeBadRequest
// and closes the connection, and each subsequent request spends a token
// from the tenant's bucket before entering the scheduler — an empty
// bucket answers CodeQuotaExceeded without queueing. Peer federation
// frames are quota-exempt: they spend another edge's client budget, not
// this tenant's.
//
// hooks observe admissions, deadline sheds, overloads and quota
// rejections; obsv (nil-safe) feeds the live metrics plane — per-stage
// histograms, per-tenant-and-class outcome counters, connection gauges
// and the slow-request ring.
//
// ctx is the serving context: its cancellation stops the reader (no new
// requests) but deliberately does NOT cancel per-request contexts —
// admitted work drains, replies flush, then the connection closes. A
// client disconnect, by contrast, cancels every in-flight request on the
// connection: nobody is left to read the replies, so the work (and any
// coalesced fetch it alone keeps alive) is abandoned.
//
// scenes, when non-nil, lets this connection host shared-scene traffic:
// join/publish/leave frames dispatch against the registry, pushed
// MsgSceneEvent frames from any member's publish ride this connection's
// writer, and the connection's memberships are torn down when the
// reader exits (disconnect, shutdown, or a poisoned preamble alike).
// Servers that host no scenes (the cloud) pass nil and scene frames
// fall through to their dispatcher's default rejection.
func connPipeline(ctx context.Context, conn net.Conn, workers, depth int, tenants *TenantPolicy, dispatch func(ctx context.Context, msg wire.Message, mode Mode, tenant string) wire.Message, batch *batchPlan, hooks pipelineHooks, obsv *ServerObs, scenes *scene.Registry) {
	defer conn.Close()
	obsv.connOpened()
	defer obsv.connClosed()
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if depth <= 0 {
		depth = DefaultQueueDepth
	}

	// connCtx is the parent of every per-request context on this
	// connection. It is detached from the serving ctx (graceful shutdown
	// drains rather than aborts) and cancelled when the client goes away.
	connCtx, connCancel := context.WithCancel(context.Background())
	defer connCancel()

	// Graceful shutdown: unblock the reader so it stops admitting new
	// requests; everything already admitted runs to completion.
	stopReader := context.AfterFunc(ctx, func() { conn.SetReadDeadline(time.Now()) })
	defer stopReader()

	// cancels maps in-flight RequestIDs to their cancel functions, the
	// MsgCancel lookup table. Only the reader inserts; workers remove.
	var cancelMu sync.Mutex
	cancels := map[uint64]context.CancelFunc{}

	sched := newSchedQueueWeighted(depth, tenants.Weight)
	replies := make(chan wire.SequencedMessage, workers+depth+1)
	// slots bounds replies outstanding anywhere in the pipeline — being
	// processed, queued, or parked out-of-order in the reorder buffer.
	// The reader acquires one per request and the writer releases one per
	// reply flushed, so when the head-of-line request stalls (a slow
	// fetch), a fast sender is eventually blocked at the reader (TCP
	// backpressure) instead of growing the reorder buffer without bound
	// on overload replies. The headroom beyond workers+depth is what
	// keeps overload shedding responsive while the pool is merely full.
	slots := make(chan struct{}, 2*(workers+depth))

	// unordered is set by the connection's first hello frame
	// (HelloFlagUnordered): clients that match replies by RequestID skip
	// the reorder buffer, so a completed interactive reply is never
	// head-of-line blocked behind a queued best-effort one.
	var unordered atomic.Bool

	// connID and outbox are the connection's scene identity: the registry
	// addresses pushes to the outbox, and the writer below drains it.
	connID := nextConnID.Add(1)
	outbox := newPushOutbox()

	// Writer ordering contract. Exactly ONE goroutine — this one — ever
	// writes to conn or touches the ReplyBuffer (which panics on misuse;
	// see wire/sequence.go). It now serves two producers:
	//
	//   1. In-order replies: the reader acquires a slot per request, and
	//      emit releases one per reply written. Ordered connections flow
	//      through the ReplyBuffer; unordered ones emit on completion.
	//   2. Scene pushes: server-minted frames enqueued on the outbox by
	//      any room member's publish. They consume NO slot (there is no
	//      request behind them) and never enter the ReplyBuffer (they
	//      have no seq). They are only ever sent on unordered
	//      connections — dispatchScene refuses joins without the flag —
	//      so interleaving them between reply frames cannot desynchronize
	//      a positional client.
	//
	// Because both producers funnel through this single goroutine, frames
	// stay whole on the wire: a push can land between two replies, never
	// inside one.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		buf := wire.NewReplyBuffer(1)
		dead := false
		write := func(m wire.Message) bool {
			if dead {
				return false
			}
			if err := wire.WriteMessage(conn, m); err != nil {
				// Keep draining so workers never block behind a dead
				// connection; closing it also unsticks the reader.
				dead = true
				conn.Close()
				return false
			}
			return true
		}
		emit := func(m wire.Message) {
			<-slots
			start := time.Now()
			if write(m) {
				obsv.observeReplyWrite(time.Since(start))
			}
		}
		emitPushes := func() {
			for _, p := range outbox.drain() {
				if write(p.msg) {
					obsv.observeSceneFanout(time.Since(p.enq))
				}
			}
		}
		for {
			select {
			case r, ok := <-replies:
				if !ok {
					return
				}
				if unordered.Load() {
					emit(r.Msg)
					continue
				}
				for _, m := range buf.Add(r.Seq, r.Msg) {
					emit(m)
				}
			case <-outbox.wake:
				emitPushes()
			}
		}
	}()

	// Scene frames dispatch locally against the registry, with this
	// connection's identity and outbox; everything else flows to the
	// server's dispatcher. A server without a registry rejects them here
	// rather than learning about scenes.
	baseDispatch := dispatch
	dispatch = func(jctx context.Context, msg wire.Message, mode Mode, tnt string) wire.Message {
		switch msg.Type {
		case wire.MsgSceneJoin, wire.MsgScenePublish, wire.MsgSceneLeave:
			if scenes == nil {
				return errorReply(msg.RequestID, wire.CodeBadRequest, "this server hosts no scenes")
			}
			return dispatchScene(scenes, tenants, obsv, connID, outbox, &unordered, msg, tnt)
		}
		return baseDispatch(jctx, msg, mode, tnt)
	}

	// finishJob releases a job's cancel registration, accounts it and
	// hands its reply to the writer — every job exits through here
	// exactly once, serial or batched.
	finishJob := func(j schedJob, m wire.Message) {
		j.finish()
		obsv.request(j.tenant, j.class, j.msg, j.trace, m, time.Since(j.admitted))
		replies <- wire.SequencedMessage{Seq: j.seq, Msg: m}
	}

	// runBatchHead assembles and executes a batch around a live,
	// batchable head job: first every compatible job already queued
	// (strictly in scheduler order — tryDrain stops at the first
	// incompatible head), then, for a best-effort head only, whatever
	// arrives inside the deadline-capped slack window. Members that were
	// cancelled or expired while the batch formed shed individually,
	// exactly as the serial path would have shed them.
	runBatchHead := func(head schedJob, picked time.Time) {
		jobs := []schedJob{head}
		drained, _ := sched.tryDrain(batch.max-1, batch.match)
		jobs = append(jobs, drained...)
		var waited time.Duration
		if budget := batch.waitBudget(&head, picked); budget > 0 && len(jobs) < batch.max {
			waitStart := time.Now()
			timer := time.NewTimer(budget)
			for len(jobs) < batch.max {
				more, blocked := sched.tryDrain(batch.max-len(jobs), batch.match)
				jobs = append(jobs, more...)
				if blocked || len(jobs) >= batch.max {
					break
				}
				stop := false
				select {
				case <-sched.arrivals:
				case <-timer.C:
					stop = true
				case <-sched.done:
					stop = true
				}
				if stop {
					// Final sweep for anything that raced the timer.
					more, _ := sched.tryDrain(batch.max-len(jobs), batch.match)
					jobs = append(jobs, more...)
					break
				}
			}
			timer.Stop()
			waited = time.Since(waitStart)
		}
		obsv.observeBatchWait(waited)

		now := time.Now()
		live := make([]*batchJob, 0, len(jobs))
		liveJobs := make([]schedJob, 0, len(jobs))
		for i, j := range jobs {
			if i > 0 {
				// Drained members left the queue here, not via pop.
				obsv.observeSchedWait(now.Sub(j.admitted))
			}
			switch {
			case j.ctx.Err() != nil:
				finishJob(j, canceledReply(j.msg.RequestID))
			case j.expired(now):
				if hooks.onShed != nil {
					hooks.onShed()
				}
				finishJob(j, deadlineShedReply(j.msg.RequestID))
			default:
				live = append(live, &batchJob{ctx: j.ctx, msg: j.msg, mode: j.mode, tenant: j.tenant})
				liveJobs = append(liveJobs, j)
			}
		}
		if len(live) == 0 {
			return
		}
		obsv.observeBatchSize(len(live))
		if hooks.onBatch != nil {
			hooks.onBatch(len(live))
		}
		execStart := time.Now()
		batch.run(live)
		execDur := time.Since(execStart)
		for i, bj := range live {
			m := bj.reply
			if m.Type == 0 {
				// A dispatcher that misses a member is a server bug, but
				// the client still deserves an answer over a hang.
				m = errorReply(bj.msg.RequestID, wire.CodeInternal, "batch dispatcher produced no reply")
			}
			obsv.observeExec(execDur)
			finishJob(liveJobs[i], m)
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j, ok := sched.pop()
				if !ok {
					return
				}
				picked := time.Now()
				obsv.observeSchedWait(picked.Sub(j.admitted))
				if j.ctx.Err() == nil && !j.expired(picked) && batch.batchable(&j) {
					runBatchHead(j, picked)
					continue
				}
				var m wire.Message
				switch {
				case j.ctx.Err() != nil:
					// Cancelled while queued: skip the work entirely.
					m = canceledReply(j.msg.RequestID)
				case j.expired(picked):
					// Shed-before-work: the deadline passed in the queue,
					// so the result would be stale on arrival. No dispatch,
					// no upstream fetch.
					if hooks.onShed != nil {
						hooks.onShed()
					}
					m = deadlineShedReply(j.msg.RequestID)
				default:
					m = dispatch(j.ctx, j.msg, j.mode, j.tenant)
					obsv.observeExec(time.Since(picked))
				}
				finishJob(j, m)
			}
		}()
	}

	mode := ModeCoIC
	tenant := DefaultTenant
	var seq uint64
	for {
		msg, err := wire.ReadMessage(conn)
		if err != nil {
			break // connection closed, corrupt, or shutdown deadline
		}
		slots <- struct{}{}
		seq++
		if msg.Type == wire.MsgHello {
			h, herr := wire.UnmarshalHello(msg.Body)
			if herr != nil {
				replies <- wire.SequencedMessage{Seq: seq,
					Msg: errorReply(msg.RequestID, wire.CodeBadRequest, "bad hello: %v", herr)}
				break // the preamble is garbage; drop the connection
			}
			if h.Mode == wire.HelloModeOrigin {
				mode = ModeOrigin
			}
			// Tenant identity and the unordered-replies flag are only
			// honoured on the very first frame: rebinding the tenant
			// mid-connection would let a throttled tenant launder requests
			// through a cheap re-hello, and flipping the reply order could
			// strand replies parked in the reorder buffer. Later hellos
			// remain pure mode switches, as before tenancy existed.
			if seq == 1 {
				authed, aerr := tenants.Authenticate(h.Tenant, h.Token)
				if aerr != nil {
					replies <- wire.SequencedMessage{Seq: seq,
						Msg: errorReply(msg.RequestID, wire.CodeBadRequest, "hello rejected: %v", aerr)}
					break // unauthenticated connections do not proceed
				}
				tenant = authed
				if h.Flags&wire.HelloFlagUnordered != 0 {
					unordered.Store(true)
				}
			}
			replies <- wire.SequencedMessage{Seq: seq, Msg: wire.Message{Type: wire.MsgHello, RequestID: msg.RequestID}}
			continue
		}
		if msg.Type == wire.MsgCancel {
			// Abort the named request if it is still in flight; ack with
			// an echo either way (the target may have already replied).
			if cr, cerr := wire.UnmarshalCancelRequest(msg.Body); cerr == nil {
				cancelMu.Lock()
				cancel := cancels[cr.TargetID]
				cancelMu.Unlock()
				if cancel != nil {
					cancel()
				}
			}
			replies <- wire.SequencedMessage{Seq: seq, Msg: wire.Message{Type: wire.MsgCancel, RequestID: msg.RequestID}}
			continue
		}
		jctx, jcancel := context.WithCancel(connCtx)
		reqID := msg.RequestID
		cancelMu.Lock()
		cancels[reqID] = jcancel
		cancelMu.Unlock()
		finish := func() {
			cancelMu.Lock()
			delete(cancels, reqID)
			cancelMu.Unlock()
			jcancel()
		}
		class, deadlineMicros := wire.PeekQoS(msg.Type, msg.Body)
		trace := wire.PeekTrace(msg.Type, msg.Body)
		// Federation frames carry no trailer but sit on another edge's
		// client critical path (or carry the fleet's failure detector):
		// schedule them as interactive, or a sustained interactive stream
		// here would starve peer probes and gossip into timeout+backoff
		// and silently degrade the federation.
		if isFederationFrame(msg.Type) {
			class = wire.QoSInteractive
		}
		var deadline time.Time
		if deadlineMicros != 0 {
			deadline = time.UnixMicro(deadlineMicros)
		}
		// Per-tenant rationing runs before global admission: a request the
		// tenant's token bucket rejects never competes for queue room.
		// Federation frames ride another edge's client critical path and
		// are exempt — they are not this tenant's traffic to ration.
		if !isFederationFrame(msg.Type) && !tenants.Admit(tenant) {
			if hooks.onQuota != nil {
				hooks.onQuota(tenant)
			}
			obsv.observeTenantQuota(tenant)
			finish()
			m := quotaReply(msg.RequestID, tenant)
			obsv.request(tenant, class, msg, trace, m, 0)
			replies <- wire.SequencedMessage{Seq: seq, Msg: m}
			continue
		}
		shed, ok := sched.push(schedJob{
			seq: seq, msg: msg, mode: mode, ctx: jctx, finish: finish,
			class: class, deadline: deadline, tenant: tenant,
			admitted: time.Now(), trace: trace,
		})
		// Expired queued work evicted to make room answers in its own
		// reply slot; it never reaches a worker.
		for _, s := range shed {
			if hooks.onShed != nil {
				hooks.onShed()
			}
			s.finish()
			m := deadlineShedReply(s.msg.RequestID)
			obsv.request(s.tenant, s.class, s.msg, s.trace, m, time.Since(s.admitted))
			replies <- wire.SequencedMessage{Seq: s.seq, Msg: m}
		}
		if !ok {
			if hooks.onOverload != nil {
				hooks.onOverload()
			}
			finish()
			m := overloadReply(msg, workers+depth)
			obsv.request(tenant, class, msg, trace, m, 0)
			replies <- wire.SequencedMessage{Seq: seq, Msg: m}
		} else {
			if hooks.onAdmit != nil {
				hooks.onAdmit(tenant, class)
			}
			obsv.observeTenantAdmit(tenant, class)
		}
	}
	if ctx.Err() == nil {
		// The client went away on its own: abandon its in-flight work so
		// coalesced fetches it alone keeps alive can abort.
		connCancel()
	}
	// Membership dies with the connection: close the outbox so room
	// publishers stop targeting it, then leave every joined scene (the
	// last member out garbage-collects the room).
	outbox.close()
	if scenes != nil {
		scenes.Disconnect(connID)
	}
	sched.close()
	wg.Wait()
	close(replies)
	<-writerDone
}

// serveLoop accepts connections until ln closes or ctx is cancelled,
// handing each to handle; on shutdown it waits for every active
// connection pipeline to drain before returning.
func serveLoop(ctx context.Context, ln net.Listener, wrap ConnWrapper, handle func(ctx context.Context, conn net.Conn)) error {
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	var conns sync.WaitGroup
	defer conns.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if wrap != nil {
			conn = wrap(conn)
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			handle(ctx, conn)
		}()
	}
}

// CloudServer exposes a Cloud over TCP.
type CloudServer struct {
	Cloud *Cloud
	// Wrap shapes each accepted connection when non-nil.
	Wrap ConnWrapper
	// Workers / QueueDepth bound per-connection concurrency (defaults
	// DefaultWorkers / DefaultQueueDepth). One edge funnels all its
	// misses over a single multiplexed connection, so this is the knob
	// that lets those fetches actually execute in parallel cloud-side.
	Workers    int
	QueueDepth int
	// Batch, when > 1, lets a worker drain up to Batch compatible exec
	// requests from the scheduler and run them as one batched DNN pass;
	// BatchSlack bounds how long a best-effort batch head may wait for
	// the batch to fill (interactive heads never wait). See batch.go.
	Batch      int
	BatchSlack time.Duration
	// Tenants, when non-nil, authenticates tenants on the hello
	// handshake and meters their admission (token buckets) and
	// fair-share (DRR weights); nil is the open single-tenant policy.
	Tenants *TenantPolicy
	// Obs, when non-nil, feeds the live metrics plane (see NewServerObs).
	Obs *ServerObs

	sched schedCounters
}

// schedCounters aggregates one server's scheduler decisions across every
// connection pipeline it runs.
type schedCounters struct {
	admitted  [wire.NumQoSClasses]atomic.Uint64
	sheds     atomic.Uint64
	overloads atomic.Uint64
	quota     atomic.Uint64
	// batches counts multi-request batches executed; batched counts the
	// requests that rode them (size-1 batch-path dispatches count in
	// neither — they are serial work that found no companions).
	batches atomic.Uint64
	batched atomic.Uint64

	// Per-tenant admission ledger. Tenants appear lazily at their first
	// admitted (or quota-rejected) request; the hot path is one mutex
	// acquisition plus two map hits.
	mu      sync.Mutex
	tenants map[string]*tenantCounters
}

type tenantCounters struct {
	admitted [wire.NumQoSClasses]atomic.Uint64
	quota    atomic.Uint64
}

// TenantCounters is one tenant's admission ledger, as read by the stats
// surface.
type TenantCounters struct {
	Admitted        [wire.NumQoSClasses]uint64
	QuotaRejections uint64
}

func (c *schedCounters) tenant(t string) *tenantCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	tc := c.tenants[t]
	if tc == nil {
		if c.tenants == nil {
			c.tenants = make(map[string]*tenantCounters)
		}
		tc = &tenantCounters{}
		c.tenants[t] = tc
	}
	return tc
}

// tenantCounts snapshots the per-tenant ledger.
func (c *schedCounters) tenantCounts() map[string]TenantCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]TenantCounters, len(c.tenants))
	for t, tc := range c.tenants {
		var tv TenantCounters
		for i := range tv.Admitted {
			tv.Admitted[i] = tc.admitted[i].Load()
		}
		tv.QuotaRejections = tc.quota.Load()
		out[t] = tv
	}
	return out
}

func (c *schedCounters) hooks() pipelineHooks {
	return pipelineHooks{
		onAdmit: func(t string, q wire.QoS) {
			c.admitted[classIndex(q)].Add(1)
			c.tenant(t).admitted[classIndex(q)].Add(1)
		},
		onShed:     func() { c.sheds.Add(1) },
		onOverload: func() { c.overloads.Add(1) },
		onQuota: func(t string) {
			c.quota.Add(1)
			c.tenant(t).quota.Add(1)
		},
		onBatch: func(n int) {
			if n > 1 {
				c.batches.Add(1)
				c.batched.Add(uint64(n))
			}
		},
	}
}

// DeadlineSheds reports how many queued requests this server dropped —
// unexecuted — because their wall-clock deadline passed in the queue.
func (s *CloudServer) DeadlineSheds() uint64 { return s.sched.sheds.Load() }

// Overloads reports how many requests admission control rejected with
// CodeOverloaded.
func (s *CloudServer) Overloads() uint64 { return s.sched.overloads.Load() }

// Admitted reports how many requests entered the scheduler in the given
// service class.
func (s *CloudServer) Admitted(q wire.QoS) uint64 {
	return s.sched.admitted[classIndex(q)].Load()
}

// QuotaRejections reports how many requests per-tenant admission control
// rejected with CodeQuotaExceeded.
func (s *CloudServer) QuotaRejections() uint64 { return s.sched.quota.Load() }

// TenantCounts snapshots the per-tenant admission ledger.
func (s *CloudServer) TenantCounts() map[string]TenantCounters { return s.sched.tenantCounts() }

// Serve accepts connections until the listener is closed.
func (s *CloudServer) Serve(ln net.Listener) error {
	return s.ServeContext(context.Background(), ln)
}

// ServeContext accepts connections until the listener closes or ctx is
// cancelled; on cancellation it shuts down gracefully — in-flight
// requests drain, replies flush, connections close, then it returns nil.
func (s *CloudServer) ServeContext(ctx context.Context, ln net.Listener) error {
	return serveLoop(ctx, ln, s.Wrap, s.handle)
}

func (s *CloudServer) handle(ctx context.Context, conn net.Conn) {
	connPipeline(ctx, conn, s.Workers, s.QueueDepth, s.Tenants, func(jctx context.Context, msg wire.Message, _ Mode, _ string) wire.Message {
		return s.dispatch(jctx, msg)
	}, s.batchPlan(), s.sched.hooks(), s.Obs, nil)
}

// Batches reports how many multi-request batches this server executed;
// BatchedRequests reports how many requests those batches carried.
func (s *CloudServer) Batches() uint64         { return s.sched.batches.Load() }
func (s *CloudServer) BatchedRequests() uint64 { return s.sched.batched.Load() }

func (s *CloudServer) dispatch(ctx context.Context, msg wire.Message) wire.Message {
	fail := func(code uint16, format string, args ...any) wire.Message {
		body, _ := (wire.ErrorReply{Code: code, Msg: fmt.Sprintf(format, args...)}).Marshal()
		return wire.Message{Type: wire.MsgError, RequestID: msg.RequestID, Body: body}
	}
	switch msg.Type {
	case wire.MsgExec:
		decodeStart := time.Now()
		req, err := wire.UnmarshalExecRequest(msg.Body)
		s.Obs.observeDecode(time.Since(decodeStart))
		if err != nil {
			return fail(wire.CodeBadRequest, "bad exec: %v", err)
		}
		if req.Task != wire.TaskRecognize {
			return fail(wire.CodeBadRequest, "cloud exec supports recognition only, got %v", req.Task)
		}
		result, _, err := s.Cloud.Recognize(req.Payload)
		if err != nil {
			return fail(wire.CodeInternal, "recognize: %v", err)
		}
		if ctx.Err() != nil {
			// The edge abandoned the fetch mid-compute; a full reply would
			// only be dropped by its read loop, so answer small.
			return canceledReply(msg.RequestID)
		}
		body, _ := (wire.ExecReply{Source: wire.SourceCloud, Result: result}).Marshal()
		return wire.Message{Type: wire.MsgExecReply, RequestID: msg.RequestID, Body: body}
	case wire.MsgModelFetch:
		req, err := wire.UnmarshalModelFetch(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad model fetch: %v", err)
		}
		data, _, err := s.Cloud.FetchModel(req.ModelID)
		if err != nil {
			return fail(wire.CodeUnknownModel, "%v", err)
		}
		if ctx.Err() != nil {
			return canceledReply(msg.RequestID)
		}
		body, _ := (wire.ModelReply{Format: wire.FormatCMF, Source: wire.SourceCloud, Data: data}).Marshal()
		return wire.Message{Type: wire.MsgModelReply, RequestID: msg.RequestID, Body: body}
	case wire.MsgPanoFetch:
		req, err := wire.UnmarshalPanoFetch(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad pano fetch: %v", err)
		}
		data, _, err := s.Cloud.FetchPano(req.VideoID, int(req.FrameIndex))
		if err != nil {
			return fail(wire.CodeInternal, "pano: %v", err)
		}
		if ctx.Err() != nil {
			return canceledReply(msg.RequestID)
		}
		body, _ := (wire.PanoReply{Source: wire.SourceCloud, Data: data}).Marshal()
		return wire.Message{Type: wire.MsgPanoReply, RequestID: msg.RequestID, Body: body}
	case wire.MsgHello:
		return wire.Message{Type: wire.MsgHello, RequestID: msg.RequestID}
	default:
		return fail(wire.CodeBadRequest, "cloud cannot handle %v", msg.Type)
	}
}

// EdgeServer exposes an Edge over TCP, forwarding misses to a cloud
// address over a single multiplexed upstream connection. With peers
// configured (SetupFederation) the edge first asks the descriptor's home
// peer — a cheap edge-to-edge hop — before paying for the cloud.
type EdgeServer struct {
	Edge      *Edge
	CloudAddr string
	// WrapClient shapes accepted client connections; WrapCloud shapes
	// the upstream connection (the tc knobs of the paper's testbed).
	WrapClient ConnWrapper
	WrapCloud  ConnWrapper
	// WrapPeer shapes edge↔edge connections.
	WrapPeer ConnWrapper
	// Workers / QueueDepth bound per-connection concurrency (defaults
	// DefaultWorkers / DefaultQueueDepth); see connPipeline.
	Workers    int
	QueueDepth int
	// Batch / BatchSlack enable batched exec dispatch exactly as on
	// CloudServer; edge-side the batch members run concurrently so
	// identical descriptors coalesce and misses burst upstream together.
	Batch      int
	BatchSlack time.Duration
	// FetchTimeout bounds one cloud fetch end to end — upstream slot
	// wait, dialing, and the round trip (DefaultFetchTimeout when zero).
	// On expiry the upstream connection is torn down, failing every
	// pending fetch — and therefore every waiter coalesced behind one —
	// fast, and the next miss re-dials.
	FetchTimeout time.Duration
	// MaxUpstream caps concurrent fetches on the multiplexed cloud
	// connection (DefaultWorkers+DefaultQueueDepth when 0 — the cloud's
	// default per-connection admission budget). Edge-side fetch demand is
	// connections × Workers, which can exceed what the cloud will admit
	// on one connection; excess fetches queue here instead of being shed
	// upstream as hard overload errors. Raise it in lockstep with the
	// cloud's -workers/-queue.
	MaxUpstream int
	// Tenants, when non-nil, authenticates tenants on the hello
	// handshake and meters their admission (token buckets) and
	// fair-share (DRR weights); nil is the open single-tenant policy.
	Tenants *TenantPolicy
	// Obs, when non-nil, feeds the live metrics plane (see NewServerObs).
	Obs *ServerObs
	// Replication is how many ring owners each published key is copied
	// to (the federation's replication factor); 0 or 1 is home-only.
	// Read by SetupFederation and SetupGossip.
	Replication int
	// GossipInterval is the membership protocol period (the member
	// package's default when 0); MigrateRate caps background key
	// migration in keys/second (0 is unthrottled). Both only matter
	// after SetupGossip.
	GossipInterval time.Duration
	MigrateRate    int

	mu     sync.Mutex
	cloud  *cloudMux
	peers  map[string]*peerConn
	scenes *scene.Registry
	gossip *gossipState

	cloudFetches atomic.Uint64
	sched        schedCounters
}

func (s *EdgeServer) fetchTimeout() time.Duration {
	if s.FetchTimeout > 0 {
		return s.FetchTimeout
	}
	return DefaultFetchTimeout
}

// CloudFetches reports how many upstream round trips this edge has
// issued — the denominator of coalescing: K concurrent misses on one
// descriptor should raise it by exactly 1.
func (s *EdgeServer) CloudFetches() uint64 { return s.cloudFetches.Load() }

// Overloads reports how many requests admission control has shed with
// CodeOverloaded.
func (s *EdgeServer) Overloads() uint64 { return s.sched.overloads.Load() }

// DeadlineSheds reports how many queued requests this edge dropped —
// unexecuted, no worker and no upstream fetch consumed — because their
// wall-clock deadline passed in the queue.
func (s *EdgeServer) DeadlineSheds() uint64 { return s.sched.sheds.Load() }

// Admitted reports how many requests entered the scheduler in the given
// service class.
func (s *EdgeServer) Admitted(q wire.QoS) uint64 {
	return s.sched.admitted[classIndex(q)].Load()
}

// QuotaRejections reports how many requests per-tenant admission control
// rejected with CodeQuotaExceeded.
func (s *EdgeServer) QuotaRejections() uint64 { return s.sched.quota.Load() }

// TenantCounts snapshots the per-tenant admission ledger.
func (s *EdgeServer) TenantCounts() map[string]TenantCounters { return s.sched.tenantCounts() }

// cloudDialTimeout bounds establishing the upstream connection.
const cloudDialTimeout = 10 * time.Second

// cloudMux is the pipelined, multiplexed upstream connection: many
// workers issue fetches concurrently over one TCP stream, a reader
// goroutine matches replies to waiters by RequestID, and each fetch is
// bounded by timeout. The seed implementation held a mutex across the
// whole cloud round trip, so concurrent misses on *different* keys
// serialised on the WAN RTT; here they overlap.
type cloudMux struct {
	addr    string
	wrap    ConnWrapper
	timeout time.Duration
	// gate caps concurrent round trips so the edge never exceeds the
	// cloud's per-connection admission budget (which would surface as
	// hard overload errors to coalesced waiters), and partitions the
	// slots across tenants by weighted share — the upstream link is the
	// one bottleneck every tenant's misses meet, and the per-connection
	// scheduler cannot see across connections.
	gate  *upstreamGate
	limit int

	mu  sync.Mutex
	cur *muxConn
	seq uint64
}

// muxConn is one generation of the upstream connection with its in-flight
// request table. A new generation replaces it after any failure.
type muxConn struct {
	conn net.Conn
	wmu  sync.Mutex // serialises frame writes

	mu      sync.Mutex
	pending map[uint64]chan wire.Message
	closed  bool
}

// get returns the live generation, dialing a fresh one if needed. The
// dial is bounded by the caller's remaining fetch budget (capped at
// cloudDialTimeout) so dialing cannot extend a fetch past its deadline.
func (m *cloudMux) get(budget time.Duration) (*muxConn, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cur != nil {
		return m.cur, nil
	}
	dialTimeout := cloudDialTimeout
	if budget < dialTimeout {
		dialTimeout = budget
	}
	if dialTimeout <= 0 {
		return nil, fmt.Errorf("core: cloud fetch budget exhausted before dialing")
	}
	conn, err := net.DialTimeout("tcp", m.addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("core: edge cannot reach cloud: %w", err)
	}
	if m.wrap != nil {
		conn = m.wrap(conn)
	}
	// First frame: request completion-order replies. This mux matches by
	// RequestID, and in-order delivery would head-of-line block an
	// interactive fetch's reply behind earlier best-effort ones, undoing
	// the cloud scheduler's prioritisation. The edge speaks the versioned
	// hello upstream and runs as the cloud's default tenant — per-client
	// tenancy is enforced at the edge, not re-litigated per fetch. The ack
	// is dropped by the read loop (no pending entry for id 0).
	helloBody, _ := (wire.Hello{
		Version: wire.HelloVersion,
		Mode:    wire.HelloModeCoIC,
		Flags:   wire.HelloFlagUnordered,
	}).Marshal()
	hello := wire.Message{Type: wire.MsgHello, Body: helloBody}
	if err := wire.WriteMessage(conn, hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("core: cloud hello: %w", err)
	}
	mc := &muxConn{conn: conn, pending: map[uint64]chan wire.Message{}}
	m.cur = mc
	go m.readLoop(mc)
	return mc, nil
}

// drop retires a generation: every pending fetch fails fast (closed
// channel), and the next roundTrip re-dials.
func (m *cloudMux) drop(mc *muxConn) {
	m.mu.Lock()
	if m.cur == mc {
		m.cur = nil
	}
	m.mu.Unlock()
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.closed {
		return
	}
	mc.closed = true
	mc.conn.Close()
	for id, ch := range mc.pending {
		delete(mc.pending, id)
		close(ch)
	}
}

func (m *cloudMux) readLoop(mc *muxConn) {
	for {
		reply, err := wire.ReadMessage(mc.conn)
		if err != nil {
			m.drop(mc)
			return
		}
		mc.mu.Lock()
		ch := mc.pending[reply.RequestID]
		delete(mc.pending, reply.RequestID)
		mc.mu.Unlock()
		if ch != nil {
			ch <- reply // buffered; never blocks the read loop
		}
		// Replies to abandoned (cancelled or timed-out) requests are
		// dropped.
	}
}

// abandon withdraws one pending fetch whose caller's context died: the
// reply slot is forgotten and a best-effort MsgCancel tells the cloud to
// skip work it has not started. Unlike a timeout, an abandonment says
// nothing about the connection's health, so the generation survives.
func (m *cloudMux) abandon(mc *muxConn, id uint64) {
	mc.mu.Lock()
	_, pending := mc.pending[id]
	delete(mc.pending, id)
	mc.mu.Unlock()
	if !pending {
		return // reply already arrived (and was or will be delivered)
	}
	m.mu.Lock()
	m.seq++
	cancelID := m.seq
	m.mu.Unlock()
	body, _ := (wire.CancelRequest{TargetID: id}).Marshal()
	mc.wmu.Lock()
	wire.WriteMessage(mc.conn, wire.Message{Type: wire.MsgCancel, RequestID: cancelID, Body: body})
	mc.wmu.Unlock()
	// The cloud acks the cancel and answers the target with CodeCanceled
	// (or its completed result); both land on the read loop, which drops
	// replies without a pending entry.
}

// roundTrip sends one fetch upstream and awaits its reply. One deadline
// of m.timeout covers the whole fetch — waiting for an upstream slot,
// dialing, and the round trip itself — so the caller (and any coalesced
// group behind it) is never wedged longer than the configured timeout.
// ctx aborts the fetch early: for a coalesced miss it is the flight
// context, which dies only when the last interested waiter departs
// (last-waiter-cancels), and its death withdraws the fetch and forwards
// the cancellation upstream. tenant is who the slot wait is charged to:
// the flight leader's tenant for coalesced misses, so the gate's fair
// share follows whoever's quota paid for the fetch.
func (m *cloudMux) roundTrip(ctx context.Context, tenant string, msg wire.Message) (wire.Message, error) {
	deadline := time.Now().Add(m.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	slotTimer := time.NewTimer(time.Until(deadline))
	defer slotTimer.Stop()
	if err := m.gate.acquire(ctx, tenant, slotTimer.C); err != nil {
		if errors.Is(err, errUpstreamSaturated) {
			return wire.Message{}, fmt.Errorf("core: upstream saturated for %v (%d fetches in flight)", m.timeout, m.limit)
		}
		return wire.Message{}, err
	}
	defer m.gate.release(tenant)

	mc, err := m.get(time.Until(deadline))
	if err != nil {
		return wire.Message{}, err
	}
	m.mu.Lock()
	m.seq++
	id := m.seq
	m.mu.Unlock()

	ch := make(chan wire.Message, 1)
	mc.mu.Lock()
	if mc.closed {
		mc.mu.Unlock()
		return wire.Message{}, fmt.Errorf("core: cloud connection lost")
	}
	mc.pending[id] = ch
	mc.mu.Unlock()

	msg.RequestID = id
	mc.wmu.Lock()
	err = wire.WriteMessage(mc.conn, msg)
	mc.wmu.Unlock()
	if err != nil {
		m.drop(mc)
		return wire.Message{}, fmt.Errorf("core: cloud write: %w", err)
	}

	wait := time.Until(deadline)
	if wait <= 0 {
		m.drop(mc)
		return wire.Message{}, fmt.Errorf("core: cloud fetch timed out after %v", m.timeout)
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case reply, ok := <-ch:
		if !ok {
			return wire.Message{}, fmt.Errorf("core: cloud connection lost mid-fetch")
		}
		return reply, nil
	case <-ctx.Done():
		m.abandon(mc, id)
		return wire.Message{}, ctx.Err()
	case <-timer.C:
		// A hung cloud must not wedge the coalesced group waiting on this
		// fetch: tear the generation down (failing every other pending
		// fetch fast too) and let the next miss re-dial.
		m.drop(mc)
		return wire.Message{}, fmt.Errorf("core: cloud fetch timed out after %v", m.timeout)
	}
}

// peerConn is one lazily dialed, persistent edge↔edge connection.
// Requests to the same peer serialise on its mutex (peer probes are small
// and rare relative to client traffic); a dial failure backs the peer off
// so an unreachable edge degrades this one to single-edge behaviour
// instead of stalling every miss on dial timeouts.
type peerConn struct {
	addr string
	wrap ConnWrapper

	mu      sync.Mutex
	conn    net.Conn
	seq     uint64
	downTil time.Time
}

// peerDialTimeout bounds how long a miss waits for an unresponsive peer
// (both dialing and the round trip itself); peerBackoff is how long a
// failed peer is left alone afterwards.
const (
	peerDialTimeout = 2 * time.Second
	peerBackoff     = 10 * time.Second
)

// roundTrip sends one frame to the peer and awaits its reply. The whole
// exchange runs under a deadline — peerDialTimeout, tightened further by
// ctx's deadline if it has one, and interrupted outright if ctx is
// cancelled mid-flight (a coalesced flight whose last waiter departed
// must not hold the connection mutex and stall every other miss probing
// this peer). A peer that accepted the connection but stopped responding
// is treated exactly like one that refused it — close, back off, let the
// caller degrade to the cloud; a probe cut short by *our own*
// cancellation also closes the connection (its reply is now orphaned on
// the lock-step stream) but does not back the healthy peer off. Because
// concurrent misses on one key coalesce (cache.Federation's in-flight
// table), at most one waiter group rides on any single probe.
func (p *peerConn) roundTrip(ctx context.Context, msg wire.Message) (wire.Message, error) {
	if err := ctx.Err(); err != nil {
		return wire.Message{}, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.downTil.IsZero() && time.Now().Before(p.downTil) {
		return wire.Message{}, fmt.Errorf("core: peer %s backing off", p.addr)
	}
	deadline := time.Now().Add(peerDialTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if p.conn == nil {
		conn, err := net.DialTimeout("tcp", p.addr, time.Until(deadline))
		if err != nil {
			p.downTil = time.Now().Add(peerBackoff)
			return wire.Message{}, fmt.Errorf("core: edge cannot reach peer %s: %w", p.addr, err)
		}
		if p.wrap != nil {
			conn = p.wrap(conn)
		}
		p.conn = conn
		p.downTil = time.Time{}
	}
	conn := p.conn
	drop := func() {
		conn.Close()
		p.conn = nil
	}
	fail := func(err error) (wire.Message, error) {
		drop()
		p.downTil = time.Now().Add(peerBackoff)
		return wire.Message{}, err
	}
	p.seq++
	msg.RequestID = p.seq
	conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{}) // no-op on a closed conn
	// Cancellation mid-exchange yanks the deadline so the blocking
	// write/read below returns promptly instead of waiting it out.
	stopWatch := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Unix(1, 0)) })
	if err := wire.WriteMessage(conn, msg); err != nil {
		if !stopWatch() || ctx.Err() != nil {
			drop()
			return wire.Message{}, ctx.Err()
		}
		return fail(err)
	}
	reply, err := wire.ReadMessage(conn)
	// stopWatch()==false means the cancellation callback has started: the
	// connection's deadline is (or is about to be) clobbered, so it must
	// be retired either way — but without backing off the healthy peer.
	if !stopWatch() {
		drop()
		if err != nil {
			return wire.Message{}, ctx.Err()
		}
		return reply, nil // the answer beat the cancellation; use it
	}
	if err != nil {
		return fail(err)
	}
	return reply, nil
}

// SetupFederation joins this edge to a federation: self is this edge's
// advertised (dialable) address — its federation identity — and peerAddrs
// are the other members'. All members must name each other consistently,
// since the consistent-hash ring is built over exactly these strings and
// every edge must agree on each key's home. Call before Serve. It
// rejects membership mistakes (empty self, self listed as a peer,
// duplicate peers) as errors — these come straight from CLI flags.
func (s *EdgeServer) SetupFederation(self string, peerAddrs []string) error {
	if self == "" {
		return fmt.Errorf("core: federated edge needs its advertised self address")
	}
	seen := map[string]bool{self: true}
	for _, addr := range peerAddrs {
		if addr == self {
			return fmt.Errorf("core: federation peer list contains this edge itself (%s); list only the other members", self)
		}
		if seen[addr] {
			return fmt.Errorf("core: duplicate federation peer %s", addr)
		}
		seen[addr] = true
	}
	nodes := append([]string{self}, peerAddrs...)
	ring := cache.NewRing(nodes, 0)
	fed := cache.NewFederation(self, ring)
	fed.SetReplication(s.Replication)
	s.peers = map[string]*peerConn{}
	for _, addr := range peerAddrs {
		pc := &peerConn{addr: addr, wrap: s.WrapPeer}
		s.peers[addr] = pc
		fed.AddPeer(addr, cache.Peer{
			Probe:  s.probePeer(pc),
			Insert: s.insertPeer(pc),
		})
	}
	s.Edge.SetFederation(fed, true)
	return nil
}

// probePeer builds the TCP probe of one peer: a MsgPeerLookup round trip
// bounded by the requesting caller's context. Errors (unreachable peer,
// corrupt reply, expired caller) read as misses — the caller falls back
// to the cloud, degrading to single-edge behaviour. Cost is zero because
// TCP mode measures wall-clock time, not virtual time.
func (s *EdgeServer) probePeer(pc *peerConn) cache.PeerProbe {
	return func(ctx context.Context, requester int, task uint8, desc feature.Descriptor) ([]byte, cache.LookupResult, time.Duration) {
		miss := cache.LookupResult{Outcome: cache.OutcomeMiss}
		body, err := (wire.PeerLookup{Task: wire.Task(task), Desc: desc}).Marshal()
		if err != nil {
			return nil, miss, 0
		}
		reply, err := pc.roundTrip(ctx, wire.Message{Type: wire.MsgPeerLookup, Body: body})
		if err != nil || reply.Type != wire.MsgPeerReply {
			return nil, miss, 0
		}
		pr, err := wire.UnmarshalPeerReply(reply.Body)
		if err != nil || pr.Outcome == wire.ProbeMiss {
			return nil, miss, 0
		}
		return pr.Result, cache.LookupResult{
			Outcome:  probeToOutcome(pr.Outcome),
			Distance: pr.Distance,
		}, 0
	}
}

// insertPeer builds the publish path to one peer: a MsgPeerInsert round
// trip run on its own goroutine, keeping replication off the client's
// miss reply path (the result is already cached locally; the client must
// not wait on a peer RTT). Publishing is deliberately detached from the
// requesting context — the request that computed the value may be long
// gone. Publish failures are dropped silently — replication is
// best-effort.
func (s *EdgeServer) insertPeer(pc *peerConn) cache.PeerInsert {
	return func(desc feature.Descriptor, value []byte, cost float64) {
		body, err := (wire.PeerInsert{Desc: desc, Cost: cost, Value: value}).Marshal()
		if err != nil {
			return
		}
		go pc.roundTrip(context.Background(), wire.Message{Type: wire.MsgPeerInsert, Body: body})
	}
}

// Serve accepts client connections until the listener is closed.
func (s *EdgeServer) Serve(ln net.Listener) error {
	return s.ServeContext(context.Background(), ln)
}

// ServeContext accepts client connections until the listener closes or
// ctx is cancelled; cancellation drains in-flight requests before
// returning nil (graceful shutdown). With gossip configured
// (SetupGossip) it also runs the membership protocol and the migration
// worker, and on cancellation performs the graceful decommission —
// drain home keys to ring successors, broadcast member-leave — before
// returning, so a SIGTERMed edge exits without losing the fleet's keys.
func (s *EdgeServer) ServeContext(ctx context.Context, ln net.Listener) error {
	if g := s.gossip; g != nil {
		gctx, gcancel := context.WithCancel(context.Background())
		defer gcancel()
		go g.agent.Run(gctx)
		go s.migrateLoop(gctx)
		// Decommission runs after serveLoop has drained in-flight work
		// but before gcancel (LIFO), while outbound transports still work.
		defer func() {
			if ctx.Err() != nil {
				s.Decommission()
			}
		}()
	}
	return serveLoop(ctx, ln, s.WrapClient, s.handle)
}

// roundTripCloud forwards one message upstream over the multiplexed
// connection and awaits its reply, bounded by FetchTimeout and ctx.
// tenant is charged for the upstream slot wait (see upstreamGate).
func (s *EdgeServer) roundTripCloud(ctx context.Context, tenant string, msg wire.Message) (wire.Message, error) {
	s.mu.Lock()
	if s.cloud == nil {
		limit := s.MaxUpstream
		if limit <= 0 {
			limit = DefaultWorkers + DefaultQueueDepth
		}
		s.cloud = &cloudMux{
			addr:    s.CloudAddr,
			wrap:    s.WrapCloud,
			timeout: s.fetchTimeout(),
			gate:    newUpstreamGate(limit, s.Tenants),
			limit:   limit,
		}
	}
	mux := s.cloud
	s.mu.Unlock()
	s.cloudFetches.Add(1)
	return mux.roundTrip(ctx, tenant, msg)
}

func (s *EdgeServer) handle(ctx context.Context, conn net.Conn) {
	connPipeline(ctx, conn, s.Workers, s.QueueDepth, s.Tenants, s.dispatch, s.batchPlan(), s.sched.hooks(), s.Obs, s.sceneRegistry())
}

// sceneRegistry lazily builds the edge's shared-scene room registry —
// every client connection shares one, which is what makes rooms span
// connections.
func (s *EdgeServer) sceneRegistry() *scene.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.scenes == nil {
		s.scenes = scene.NewRegistry()
	}
	return s.scenes
}

// SceneStats reports the edge's live scene rooms and members plus the
// publish total, for the stats surface and the metrics bridges.
func (s *EdgeServer) SceneStats() (rooms, members int, publishes uint64) {
	s.mu.Lock()
	reg := s.scenes
	s.mu.Unlock()
	if reg == nil {
		return 0, 0, 0
	}
	return reg.Stats()
}

// Batches reports how many multi-request batches this server executed;
// BatchedRequests reports how many requests those batches carried.
func (s *EdgeServer) Batches() uint64 { return s.sched.batches.Load() }
func (s *EdgeServer) BatchedRequests() uint64 {
	return s.sched.batched.Load()
}

// edgeError carries a protocol error code through the in-flight table so
// every coalesced waiter replies with the leader's true failure.
type edgeError struct {
	code uint16
	msg  string
}

func (e *edgeError) Error() string { return e.msg }

// fetchCoalesced resolves a cache miss: concurrent misses on the same (or
// similar, for vector descriptors) descriptor share one cloud round trip
// through the edge's in-flight table. The leader inserts the result into
// the cache and reports SourceCloud; waiters that joined its flight
// report SourceEdge (the edge held the result for them). A failed fetch
// propagates its error to every waiter and leaves the descriptor clean
// for the next attempt. The fetch runs under the flight context: it
// survives any individual waiter's departure (ctx here only detaches the
// caller) and aborts — withdrawing the upstream round trip — when the
// last waiter is gone.
func (s *EdgeServer) fetchCoalesced(ctx context.Context, tenant string, desc feature.Descriptor, msg wire.Message, want wire.MsgType, extract func(wire.Message) ([]byte, error)) ([]byte, uint8, error) {
	start := time.Now()
	defer func() { s.Obs.observeCloudFetch(time.Since(start)) }()
	val, leader, err := s.Edge.Inflight().Do(ctx, desc, func(fctx context.Context) ([]byte, error) {
		reply, err := s.roundTripCloud(fctx, tenant, msg)
		if err != nil {
			if isCanceled(err) {
				return nil, err
			}
			return nil, &edgeError{code: wire.CodeUnavailable, msg: fmt.Sprintf("cloud: %v", err)}
		}
		if reply.Type == wire.MsgError {
			if er, uerr := wire.UnmarshalErrorReply(reply.Body); uerr == nil {
				return nil, &edgeError{code: er.Code, msg: er.Msg}
			}
			return nil, &edgeError{code: wire.CodeInternal, msg: "malformed cloud error reply"}
		}
		if reply.Type != want {
			return nil, &edgeError{code: wire.CodeInternal, msg: fmt.Sprintf("cloud replied %v, want %v", reply.Type, want)}
		}
		data, err := extract(reply)
		if err != nil {
			return nil, &edgeError{code: wire.CodeInternal, msg: fmt.Sprintf("corrupt cloud reply: %v", err)}
		}
		// The flight's leader inserts on behalf of its own tenant: the
		// fetch was charged to that tenant's quota, so the resident bytes
		// land on its cache share too.
		s.Edge.InsertTenant(tenant, desc, data, 1)
		return data, nil
	})
	src := wire.SourceCloud
	if !leader {
		src = wire.SourceEdge
	}
	return val, src, err
}

func (s *EdgeServer) dispatch(ctx context.Context, msg wire.Message, mode Mode, tenant string) wire.Message {
	fail := func(code uint16, format string, args ...any) wire.Message {
		body, _ := (wire.ErrorReply{Code: code, Msg: fmt.Sprintf(format, args...)}).Marshal()
		return wire.Message{Type: wire.MsgError, RequestID: msg.RequestID, Body: body}
	}
	failErr := func(err error) wire.Message {
		if isCanceled(err) {
			return canceledReply(msg.RequestID)
		}
		var ee *edgeError
		if errors.As(err, &ee) {
			return fail(ee.code, "%s", ee.msg)
		}
		return fail(wire.CodeUnavailable, "cloud: %v", err)
	}
	// forward is the origin-mode path: a plain upstream round trip with
	// no cache interaction and no coalescing (origin requests carry no
	// meaningful descriptor to coalesce on).
	forward := func() wire.Message {
		reply, err := s.roundTripCloud(ctx, tenant, msg)
		if err != nil {
			return failErr(err)
		}
		reply.RequestID = msg.RequestID
		return reply
	}

	switch msg.Type {
	case wire.MsgExec:
		decodeStart := time.Now()
		req, err := wire.UnmarshalExecRequest(msg.Body)
		s.Obs.observeDecode(time.Since(decodeStart))
		if err != nil {
			return fail(wire.CodeBadRequest, "bad exec: %v", err)
		}
		if mode != ModeCoIC {
			return forward()
		}
		lookupStart := time.Now()
		lr := s.Edge.LookupTenant(ctx, tenant, req.Task, req.Desc)
		s.Obs.observeCacheLookup(time.Since(lookupStart))
		if lr.Hit() {
			body, _ := (wire.ExecReply{Source: wire.SourceEdge, Result: lr.Value}).Marshal()
			return wire.Message{Type: wire.MsgExecReply, RequestID: msg.RequestID, Body: body}
		}
		result, src, err := s.fetchCoalesced(ctx, tenant, req.Desc, msg, wire.MsgExecReply, func(r wire.Message) ([]byte, error) {
			er, err := wire.UnmarshalExecReply(r.Body)
			if err != nil {
				return nil, err
			}
			return er.Result, nil
		})
		if err != nil {
			return failErr(err)
		}
		body, _ := (wire.ExecReply{Source: src, Result: result}).Marshal()
		return wire.Message{Type: wire.MsgExecReply, RequestID: msg.RequestID, Body: body}

	case wire.MsgModelFetch:
		decodeStart := time.Now()
		req, err := wire.UnmarshalModelFetch(msg.Body)
		s.Obs.observeDecode(time.Since(decodeStart))
		if err != nil {
			return fail(wire.CodeBadRequest, "bad model fetch: %v", err)
		}
		if mode != ModeCoIC {
			return forward()
		}
		desc := ModelDescriptor(req.ModelID)
		lookupStart := time.Now()
		lr := s.Edge.LookupTenant(ctx, tenant, wire.TaskRender, desc)
		s.Obs.observeCacheLookup(time.Since(lookupStart))
		if lr.Hit() {
			body, _ := (wire.ModelReply{Format: wire.FormatCMF, Source: wire.SourceEdge, Data: lr.Value}).Marshal()
			return wire.Message{Type: wire.MsgModelReply, RequestID: msg.RequestID, Body: body}
		}
		data, src, err := s.fetchCoalesced(ctx, tenant, desc, msg, wire.MsgModelReply, func(r wire.Message) ([]byte, error) {
			mr, err := wire.UnmarshalModelReply(r.Body)
			if err != nil {
				return nil, err
			}
			return mr.Data, nil
		})
		if err != nil {
			return failErr(err)
		}
		body, _ := (wire.ModelReply{Format: wire.FormatCMF, Source: src, Data: data}).Marshal()
		return wire.Message{Type: wire.MsgModelReply, RequestID: msg.RequestID, Body: body}

	case wire.MsgPanoFetch:
		decodeStart := time.Now()
		req, err := wire.UnmarshalPanoFetch(msg.Body)
		s.Obs.observeDecode(time.Since(decodeStart))
		if err != nil {
			return fail(wire.CodeBadRequest, "bad pano fetch: %v", err)
		}
		if mode != ModeCoIC {
			return forward()
		}
		desc := PanoDescriptor(req.VideoID, int(req.FrameIndex))
		lookupStart := time.Now()
		lr := s.Edge.LookupTenant(ctx, tenant, wire.TaskPano, desc)
		s.Obs.observeCacheLookup(time.Since(lookupStart))
		if lr.Hit() {
			body, _ := (wire.PanoReply{Source: wire.SourceEdge, Data: lr.Value}).Marshal()
			return wire.Message{Type: wire.MsgPanoReply, RequestID: msg.RequestID, Body: body}
		}
		data, src, err := s.fetchCoalesced(ctx, tenant, desc, msg, wire.MsgPanoReply, func(r wire.Message) ([]byte, error) {
			pr, err := wire.UnmarshalPanoReply(r.Body)
			if err != nil {
				return nil, err
			}
			return pr.Data, nil
		})
		if err != nil {
			return failErr(err)
		}
		body, _ := (wire.PanoReply{Source: src, Data: data}).Marshal()
		return wire.Message{Type: wire.MsgPanoReply, RequestID: msg.RequestID, Body: body}

	case wire.MsgPeerLookup:
		// A federated peer probing this edge: answer from the local cache
		// only — never our own peers, never the cloud — so federated
		// lookups stay single-hop and cannot loop.
		req, err := wire.UnmarshalPeerLookup(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad peer lookup: %v", err)
		}
		v, res := s.Edge.PeerProbe(-1, req.Desc)
		body, _ := (wire.PeerReply{
			Outcome:  outcomeToProbe(res.Outcome),
			Distance: res.Distance,
			Result:   v,
		}).Marshal()
		return wire.Message{Type: wire.MsgPeerReply, RequestID: msg.RequestID, Body: body}

	case wire.MsgPeerInsert:
		// A federated peer publishing a result whose consistent-hash home
		// is this edge. The ack is an empty PeerReply.
		req, err := wire.UnmarshalPeerInsert(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad peer insert: %v", err)
		}
		s.Edge.AdoptRemote(req.Desc, req.Value, req.Cost)
		body, _ := (wire.PeerReply{Outcome: wire.ProbeMiss}).Marshal()
		return wire.Message{Type: wire.MsgPeerReply, RequestID: msg.RequestID, Body: body}

	case wire.MsgMemberPing, wire.MsgMemberGossip, wire.MsgMemberLeave:
		// A fleet member gossiping its view (the kinds differ only in
		// intent — a leave is just the sender marked dead). Merge it and
		// ack with ours: every exchange is bidirectional anti-entropy.
		g := s.gossip
		if g == nil {
			return fail(wire.CodeBadRequest, "membership gossip not enabled on this edge")
		}
		req, err := wire.UnmarshalMembership(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad membership frame: %v", err)
		}
		ack := g.agent.HandleDigest(digestFromWire(req))
		body, err := digestToWire(ack).Marshal()
		if err != nil {
			return fail(wire.CodeInternal, "membership ack: %v", err)
		}
		return wire.Message{Type: wire.MsgMemberAck, RequestID: msg.RequestID, Body: body}

	default:
		return fail(wire.CodeBadRequest, "edge cannot handle %v", msg.Type)
	}
}

// TCPClient is the lock-step, positional reference client: one request
// in flight, replies matched by arrival order — the ordered reply mode
// every pre-streaming client speaks, which servers must keep supporting.
// The public API now rides MuxClient (demultiplexed, completion-order
// replies); TCPClient remains as the in-repo exerciser of the ordered
// path and its cancel/drain protocol — the *Context methods abort a
// pending request when ctx dies by sending a MsgCancel frame and
// draining the cancelled reply plus its ack, so the connection stays
// usable afterwards. Pipelined load generators write sequence-numbered
// frames directly — see docs/PROTOCOL.md.
type TCPClient struct {
	Client *Client
	Mode   Mode

	conn  net.Conn
	reqID uint64
}

// DialEdge connects a client to an edge server and announces its mode.
func DialEdge(addr string, client *Client, mode Mode, wrap ConnWrapper) (*TCPClient, error) {
	return DialEdgeContext(context.Background(), addr, client, mode, wrap)
}

// DialEdgeContext is DialEdge bounded by ctx (dial and hello exchange).
func DialEdgeContext(ctx context.Context, addr string, client *Client, mode Mode, wrap ConnWrapper) (*TCPClient, error) {
	d := net.Dialer{Timeout: 10 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("core: dial edge: %w", err)
	}
	if wrap != nil {
		conn = wrap(conn)
	}
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
		defer conn.SetDeadline(time.Time{})
	}
	t := &TCPClient{Client: client, Mode: mode, conn: conn}
	hello := wire.Message{Type: wire.MsgHello, RequestID: t.next(), Body: []byte{byte(mode)}}
	if err := wire.WriteMessage(conn, hello); err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := wire.ReadMessage(conn); err != nil {
		conn.Close()
		return nil, err
	}
	return t, nil
}

// Close releases the connection.
func (t *TCPClient) Close() error { return t.conn.Close() }

func (t *TCPClient) next() uint64 {
	t.reqID++
	return t.reqID
}

// cancelDrainTimeout bounds how long a cancelling client waits for the
// edge to flush the cancelled reply and the cancel ack; a server that
// cannot manage even that forfeits the connection.
const cancelDrainTimeout = 5 * time.Second

// errRemote converts an error reply into a client-side error.
func errRemote(reply wire.Message) error {
	if reply.Type != wire.MsgError {
		return nil
	}
	er, uerr := wire.UnmarshalErrorReply(reply.Body)
	if uerr != nil {
		return fmt.Errorf("core: malformed error reply: %v", uerr)
	}
	return fmt.Errorf("core: remote error %d: %s", er.Code, er.Msg)
}

// roundTrip ships one request and awaits its reply, aborting through the
// cancel protocol when ctx dies first. An already-expired ctx costs no
// round trip at all.
func (t *TCPClient) roundTrip(ctx context.Context, msg wire.Message) (wire.Message, error) {
	if err := ctx.Err(); err != nil {
		return wire.Message{}, err
	}
	if err := wire.WriteMessage(t.conn, msg); err != nil {
		return wire.Message{}, err
	}
	if ctx.Done() == nil {
		// Uncancellable context: plain blocking read (the v1 path).
		reply, err := wire.ReadMessage(t.conn)
		if err != nil {
			return wire.Message{}, err
		}
		if err := errRemote(reply); err != nil {
			return wire.Message{}, err
		}
		return reply, nil
	}

	type readResult struct {
		msg wire.Message
		err error
	}
	ch := make(chan readResult, 1)
	go func() {
		m, err := wire.ReadMessage(t.conn)
		ch <- readResult{m, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			return wire.Message{}, r.err
		}
		if err := errRemote(r.msg); err != nil {
			return wire.Message{}, err
		}
		return r.msg, nil
	case <-ctx.Done():
	}

	// Abort: tell the edge, then drain our (now cancelled) reply and the
	// cancel ack so the lock-step connection stays aligned.
	body, _ := (wire.CancelRequest{TargetID: msg.RequestID}).Marshal()
	cancelMsg := wire.Message{Type: wire.MsgCancel, RequestID: t.next(), Body: body}
	if err := wire.WriteMessage(t.conn, cancelMsg); err != nil {
		t.conn.Close()
		return wire.Message{}, ctx.Err()
	}
	t.conn.SetReadDeadline(time.Now().Add(cancelDrainTimeout))
	defer t.conn.SetReadDeadline(time.Time{})
	if r := <-ch; r.err != nil { // the aborted request's reply
		t.conn.Close()
		return wire.Message{}, ctx.Err()
	}
	if _, err := wire.ReadMessage(t.conn); err != nil { // the cancel ack
		t.conn.Close()
	}
	return wire.Message{}, ctx.Err()
}

// RecognizeContext captures a frame, extracts the descriptor (CoIC mode),
// ships the request and returns the result with measured wall-clock
// latency, honouring ctx for cancellation and deadline.
func (t *TCPClient) RecognizeContext(ctx context.Context, class vision.Class, viewSeed uint64) (wire.RecognitionResult, time.Duration, error) {
	frame := t.Client.CaptureFrame(class, viewSeed)
	start := time.Now()
	desc := originDescriptor
	if t.Mode == ModeCoIC {
		desc, _ = t.Client.Extract(frame)
	}
	body, err := (wire.ExecRequest{Task: wire.TaskRecognize, Desc: desc, Payload: frame.Bytes()}).Marshal()
	if err != nil {
		return wire.RecognitionResult{}, 0, err
	}
	reply, err := t.roundTrip(ctx, wire.Message{Type: wire.MsgExec, RequestID: t.next(), Body: body})
	if err != nil {
		return wire.RecognitionResult{}, 0, err
	}
	er, err := wire.UnmarshalExecReply(reply.Body)
	if err != nil {
		return wire.RecognitionResult{}, 0, err
	}
	res, err := wire.UnmarshalRecognitionResult(er.Result)
	return res, time.Since(start), err
}

// Recognize is RecognizeContext without cancellation.
func (t *TCPClient) Recognize(class vision.Class, viewSeed uint64) (wire.RecognitionResult, time.Duration, error) {
	return t.RecognizeContext(context.Background(), class, viewSeed)
}

// RenderContext fetches, loads and draws a model, returning measured
// latency, honouring ctx for cancellation and deadline.
func (t *TCPClient) RenderContext(ctx context.Context, modelID string) (time.Duration, error) {
	start := time.Now()
	body, err := (wire.ModelFetch{ModelID: modelID, Format: wire.FormatCMF}).Marshal()
	if err != nil {
		return 0, err
	}
	reply, err := t.roundTrip(ctx, wire.Message{Type: wire.MsgModelFetch, RequestID: t.next(), Body: body})
	if err != nil {
		return 0, err
	}
	mr, err := wire.UnmarshalModelReply(reply.Body)
	if err != nil {
		return 0, err
	}
	m, _, err := t.Client.LoadModel(mr.Data)
	if err != nil {
		return 0, err
	}
	if st, _ := t.Client.Draw(m); st.Pixels == 0 {
		return 0, fmt.Errorf("core: %q drew nothing", modelID)
	}
	return time.Since(start), nil
}

// Render is RenderContext without cancellation.
func (t *TCPClient) Render(modelID string) (time.Duration, error) {
	return t.RenderContext(context.Background(), modelID)
}

// PanoContext fetches a panoramic frame and crops the viewport, returning
// measured latency, honouring ctx for cancellation and deadline.
func (t *TCPClient) PanoContext(ctx context.Context, videoID string, frameIdx int, vp pano.Viewport) (time.Duration, error) {
	start := time.Now()
	body, err := (wire.PanoFetch{VideoID: videoID, FrameIndex: uint32(frameIdx)}).Marshal()
	if err != nil {
		return 0, err
	}
	reply, err := t.roundTrip(ctx, wire.Message{Type: wire.MsgPanoFetch, RequestID: t.next(), Body: body})
	if err != nil {
		return 0, err
	}
	pr, err := wire.UnmarshalPanoReply(reply.Body)
	if err != nil {
		return 0, err
	}
	if _, _, err := t.Client.CropPano(pr.Data, vp, 256, 256); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// Pano is PanoContext without cancellation.
func (t *TCPClient) Pano(videoID string, frameIdx int, vp pano.Viewport) (time.Duration, error) {
	return t.PanoContext(context.Background(), videoID, frameIdx, vp)
}
