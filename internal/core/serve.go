package core

import (
	"errors"
	"fmt"

	"net"
	"sync"
	"time"

	"github.com/edge-immersion/coic/internal/cache"
	"github.com/edge-immersion/coic/internal/feature"
	"github.com/edge-immersion/coic/internal/pano"
	"github.com/edge-immersion/coic/internal/vision"
	"github.com/edge-immersion/coic/internal/wire"
)

// This file runs the same CoIC protocol over real TCP sockets: the
// deployment mode of the cmd/ daemons, where tc-style shaping comes from
// netsim.Shaper and latency is wall-clock. The virtual-time Session is
// for experiments; these servers are for running the system.

// ConnWrapper optionally wraps accepted/dialed connections (e.g. with a
// netsim.Shaper); nil means unwrapped.
type ConnWrapper func(net.Conn) net.Conn

// CloudServer exposes a Cloud over TCP.
type CloudServer struct {
	Cloud *Cloud
	// Wrap shapes each accepted connection when non-nil.
	Wrap ConnWrapper
}

// Serve accepts connections until the listener is closed.
func (s *CloudServer) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if s.Wrap != nil {
			conn = s.Wrap(conn)
		}
		go s.handle(conn)
	}
}

func (s *CloudServer) handle(conn net.Conn) {
	defer conn.Close()
	for {
		msg, err := wire.ReadMessage(conn)
		if err != nil {
			return // connection closed or corrupt; peer re-dials
		}
		reply := s.dispatch(msg)
		if err := wire.WriteMessage(conn, reply); err != nil {
			return
		}
	}
}

func (s *CloudServer) dispatch(msg wire.Message) wire.Message {
	fail := func(code uint16, format string, args ...any) wire.Message {
		body, _ := (wire.ErrorReply{Code: code, Msg: fmt.Sprintf(format, args...)}).Marshal()
		return wire.Message{Type: wire.MsgError, RequestID: msg.RequestID, Body: body}
	}
	switch msg.Type {
	case wire.MsgExec:
		req, err := wire.UnmarshalExecRequest(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad exec: %v", err)
		}
		if req.Task != wire.TaskRecognize {
			return fail(wire.CodeBadRequest, "cloud exec supports recognition only, got %v", req.Task)
		}
		result, _, err := s.Cloud.Recognize(req.Payload)
		if err != nil {
			return fail(wire.CodeInternal, "recognize: %v", err)
		}
		body, _ := (wire.ExecReply{Source: wire.SourceCloud, Result: result}).Marshal()
		return wire.Message{Type: wire.MsgExecReply, RequestID: msg.RequestID, Body: body}
	case wire.MsgModelFetch:
		req, err := wire.UnmarshalModelFetch(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad model fetch: %v", err)
		}
		data, _, err := s.Cloud.FetchModel(req.ModelID)
		if err != nil {
			return fail(wire.CodeUnknownModel, "%v", err)
		}
		body, _ := (wire.ModelReply{Format: wire.FormatCMF, Source: wire.SourceCloud, Data: data}).Marshal()
		return wire.Message{Type: wire.MsgModelReply, RequestID: msg.RequestID, Body: body}
	case wire.MsgPanoFetch:
		req, err := wire.UnmarshalPanoFetch(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad pano fetch: %v", err)
		}
		data, _, err := s.Cloud.FetchPano(req.VideoID, int(req.FrameIndex))
		if err != nil {
			return fail(wire.CodeInternal, "pano: %v", err)
		}
		body, _ := (wire.PanoReply{Source: wire.SourceCloud, Data: data}).Marshal()
		return wire.Message{Type: wire.MsgPanoReply, RequestID: msg.RequestID, Body: body}
	case wire.MsgHello:
		return wire.Message{Type: wire.MsgHello, RequestID: msg.RequestID}
	default:
		return fail(wire.CodeBadRequest, "cloud cannot handle %v", msg.Type)
	}
}

// EdgeServer exposes an Edge over TCP, forwarding misses to a cloud
// address over a single multiplexed upstream connection. With peers
// configured (SetupFederation) the edge first asks the descriptor's home
// peer — a cheap edge-to-edge hop — before paying for the cloud.
type EdgeServer struct {
	Edge      *Edge
	CloudAddr string
	// WrapClient shapes accepted client connections; WrapCloud shapes
	// the upstream connection (the tc knobs of the paper's testbed).
	WrapClient ConnWrapper
	WrapCloud  ConnWrapper
	// WrapPeer shapes edge↔edge connections.
	WrapPeer ConnWrapper

	mu    sync.Mutex
	cloud net.Conn
	seq   uint64

	peers map[string]*peerConn
}

// peerConn is one lazily dialed, persistent edge↔edge connection.
// Requests to the same peer serialise on its mutex (matching the cloud
// uplink's discipline); a dial failure backs the peer off so an
// unreachable edge degrades this one to single-edge behaviour instead of
// stalling every miss on dial timeouts.
type peerConn struct {
	addr string
	wrap ConnWrapper

	mu      sync.Mutex
	conn    net.Conn
	seq     uint64
	downTil time.Time
}

// peerDialTimeout bounds how long a miss waits for an unresponsive peer
// (both dialing and the round trip itself); peerBackoff is how long a
// failed peer is left alone afterwards.
const (
	peerDialTimeout = 2 * time.Second
	peerBackoff     = 10 * time.Second
)

// roundTrip sends one frame to the peer and awaits its reply. The whole
// exchange runs under a deadline: a peer that accepted the connection but
// stopped responding is treated exactly like one that refused it — close,
// back off, let the caller degrade to the cloud — rather than wedging
// every miss behind the connection mutex.
func (p *peerConn) roundTrip(msg wire.Message) (wire.Message, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.downTil.IsZero() && time.Now().Before(p.downTil) {
		return wire.Message{}, fmt.Errorf("core: peer %s backing off", p.addr)
	}
	if p.conn == nil {
		conn, err := net.DialTimeout("tcp", p.addr, peerDialTimeout)
		if err != nil {
			p.downTil = time.Now().Add(peerBackoff)
			return wire.Message{}, fmt.Errorf("core: edge cannot reach peer %s: %w", p.addr, err)
		}
		if p.wrap != nil {
			conn = p.wrap(conn)
		}
		p.conn = conn
		p.downTil = time.Time{}
	}
	conn := p.conn
	fail := func(err error) (wire.Message, error) {
		conn.Close()
		p.conn = nil
		p.downTil = time.Now().Add(peerBackoff)
		return wire.Message{}, err
	}
	p.seq++
	msg.RequestID = p.seq
	conn.SetDeadline(time.Now().Add(peerDialTimeout))
	defer conn.SetDeadline(time.Time{}) // no-op on a closed conn
	if err := wire.WriteMessage(conn, msg); err != nil {
		return fail(err)
	}
	reply, err := wire.ReadMessage(conn)
	if err != nil {
		return fail(err)
	}
	return reply, nil
}

// SetupFederation joins this edge to a federation: self is this edge's
// advertised (dialable) address — its federation identity — and peerAddrs
// are the other members'. All members must name each other consistently,
// since the consistent-hash ring is built over exactly these strings and
// every edge must agree on each key's home. Call before Serve. It
// rejects membership mistakes (empty self, self listed as a peer,
// duplicate peers) as errors — these come straight from CLI flags.
func (s *EdgeServer) SetupFederation(self string, peerAddrs []string) error {
	if self == "" {
		return fmt.Errorf("core: federated edge needs its advertised self address")
	}
	seen := map[string]bool{self: true}
	for _, addr := range peerAddrs {
		if addr == self {
			return fmt.Errorf("core: federation peer list contains this edge itself (%s); list only the other members", self)
		}
		if seen[addr] {
			return fmt.Errorf("core: duplicate federation peer %s", addr)
		}
		seen[addr] = true
	}
	nodes := append([]string{self}, peerAddrs...)
	ring := cache.NewRing(nodes, 0)
	fed := cache.NewFederation(self, ring)
	s.peers = map[string]*peerConn{}
	for _, addr := range peerAddrs {
		pc := &peerConn{addr: addr, wrap: s.WrapPeer}
		s.peers[addr] = pc
		fed.AddPeer(addr, cache.Peer{
			Probe:  s.probePeer(pc),
			Insert: s.insertPeer(pc),
		})
	}
	s.Edge.SetFederation(fed, true)
	return nil
}

// probePeer builds the TCP probe of one peer: a MsgPeerLookup round trip.
// Errors (unreachable peer, corrupt reply) read as misses — the caller
// falls back to the cloud, degrading to single-edge behaviour. Cost is
// zero because TCP mode measures wall-clock time, not virtual time.
func (s *EdgeServer) probePeer(pc *peerConn) cache.PeerProbe {
	return func(requester int, task uint8, desc feature.Descriptor) ([]byte, cache.LookupResult, time.Duration) {
		miss := cache.LookupResult{Outcome: cache.OutcomeMiss}
		body, err := (wire.PeerLookup{Task: wire.Task(task), Desc: desc}).Marshal()
		if err != nil {
			return nil, miss, 0
		}
		reply, err := pc.roundTrip(wire.Message{Type: wire.MsgPeerLookup, Body: body})
		if err != nil || reply.Type != wire.MsgPeerReply {
			return nil, miss, 0
		}
		pr, err := wire.UnmarshalPeerReply(reply.Body)
		if err != nil || pr.Outcome == wire.ProbeMiss {
			return nil, miss, 0
		}
		return pr.Result, cache.LookupResult{
			Outcome:  probeToOutcome(pr.Outcome),
			Distance: pr.Distance,
		}, 0
	}
}

// insertPeer builds the publish path to one peer: a MsgPeerInsert round
// trip run on its own goroutine, keeping replication off the client's
// miss reply path (the result is already cached locally; the client must
// not wait on a peer RTT). Publish failures are dropped silently —
// replication is best-effort.
func (s *EdgeServer) insertPeer(pc *peerConn) cache.PeerInsert {
	return func(desc feature.Descriptor, value []byte, cost float64) {
		body, err := (wire.PeerInsert{Desc: desc, Cost: cost, Value: value}).Marshal()
		if err != nil {
			return
		}
		go pc.roundTrip(wire.Message{Type: wire.MsgPeerInsert, Body: body})
	}
}

// Serve accepts client connections until the listener is closed.
func (s *EdgeServer) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if s.WrapClient != nil {
			conn = s.WrapClient(conn)
		}
		go s.handle(conn)
	}
}

// roundTripCloud forwards one message upstream and awaits its reply.
// Requests are serialised on one connection: the edge-cloud link is the
// bottleneck resource in CoIC anyway, and ordering keeps the code clear.
func (s *EdgeServer) roundTripCloud(msg wire.Message) (wire.Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cloud == nil {
		conn, err := net.DialTimeout("tcp", s.CloudAddr, 10*time.Second)
		if err != nil {
			return wire.Message{}, fmt.Errorf("core: edge cannot reach cloud: %w", err)
		}
		if s.WrapCloud != nil {
			conn = s.WrapCloud(conn)
		}
		s.cloud = conn
	}
	s.seq++
	msg.RequestID = s.seq
	if err := wire.WriteMessage(s.cloud, msg); err != nil {
		s.cloud.Close()
		s.cloud = nil
		return wire.Message{}, err
	}
	reply, err := wire.ReadMessage(s.cloud)
	if err != nil {
		s.cloud.Close()
		s.cloud = nil
		return wire.Message{}, err
	}
	return reply, nil
}

func (s *EdgeServer) handle(conn net.Conn) {
	defer conn.Close()
	mode := ModeCoIC
	for {
		msg, err := wire.ReadMessage(conn)
		if err != nil {
			return
		}
		var reply wire.Message
		switch msg.Type {
		case wire.MsgHello:
			if len(msg.Body) == 1 && msg.Body[0] == byte(ModeOrigin) {
				mode = ModeOrigin
			}
			reply = wire.Message{Type: wire.MsgHello, RequestID: msg.RequestID}
		default:
			reply = s.dispatch(msg, mode)
		}
		if err := wire.WriteMessage(conn, reply); err != nil {
			return
		}
	}
}

func (s *EdgeServer) dispatch(msg wire.Message, mode Mode) wire.Message {
	fail := func(code uint16, format string, args ...any) wire.Message {
		body, _ := (wire.ErrorReply{Code: code, Msg: fmt.Sprintf(format, args...)}).Marshal()
		return wire.Message{Type: wire.MsgError, RequestID: msg.RequestID, Body: body}
	}
	forward := func() wire.Message {
		reply, err := s.roundTripCloud(msg)
		if err != nil {
			return fail(wire.CodeUnavailable, "cloud: %v", err)
		}
		reply.RequestID = msg.RequestID
		return reply
	}

	switch msg.Type {
	case wire.MsgExec:
		req, err := wire.UnmarshalExecRequest(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad exec: %v", err)
		}
		if mode == ModeCoIC {
			if lr := s.Edge.Lookup(req.Task, req.Desc); lr.Hit() {
				body, _ := (wire.ExecReply{Source: wire.SourceEdge, Result: lr.Value}).Marshal()
				return wire.Message{Type: wire.MsgExecReply, RequestID: msg.RequestID, Body: body}
			}
		}
		reply := forward()
		if mode == ModeCoIC && reply.Type == wire.MsgExecReply {
			if er, err := wire.UnmarshalExecReply(reply.Body); err == nil {
				s.Edge.Insert(req.Desc, er.Result, 1)
			}
		}
		return reply

	case wire.MsgModelFetch:
		req, err := wire.UnmarshalModelFetch(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad model fetch: %v", err)
		}
		desc := ModelDescriptor(req.ModelID)
		if mode == ModeCoIC {
			if lr := s.Edge.Lookup(wire.TaskRender, desc); lr.Hit() {
				body, _ := (wire.ModelReply{Format: wire.FormatCMF, Source: wire.SourceEdge, Data: lr.Value}).Marshal()
				return wire.Message{Type: wire.MsgModelReply, RequestID: msg.RequestID, Body: body}
			}
		}
		reply := forward()
		if mode == ModeCoIC && reply.Type == wire.MsgModelReply {
			if mr, err := wire.UnmarshalModelReply(reply.Body); err == nil {
				s.Edge.Insert(desc, mr.Data, 1)
			}
		}
		return reply

	case wire.MsgPanoFetch:
		req, err := wire.UnmarshalPanoFetch(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad pano fetch: %v", err)
		}
		desc := PanoDescriptor(req.VideoID, int(req.FrameIndex))
		if mode == ModeCoIC {
			if lr := s.Edge.Lookup(wire.TaskPano, desc); lr.Hit() {
				body, _ := (wire.PanoReply{Source: wire.SourceEdge, Data: lr.Value}).Marshal()
				return wire.Message{Type: wire.MsgPanoReply, RequestID: msg.RequestID, Body: body}
			}
		}
		reply := forward()
		if mode == ModeCoIC && reply.Type == wire.MsgPanoReply {
			if pr, err := wire.UnmarshalPanoReply(reply.Body); err == nil {
				s.Edge.Insert(desc, pr.Data, 1)
			}
		}
		return reply

	case wire.MsgPeerLookup:
		// A federated peer probing this edge: answer from the local cache
		// only — never our own peers, never the cloud — so federated
		// lookups stay single-hop and cannot loop.
		req, err := wire.UnmarshalPeerLookup(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad peer lookup: %v", err)
		}
		v, res := s.Edge.PeerProbe(-1, req.Desc)
		body, _ := (wire.PeerReply{
			Outcome:  outcomeToProbe(res.Outcome),
			Distance: res.Distance,
			Result:   v,
		}).Marshal()
		return wire.Message{Type: wire.MsgPeerReply, RequestID: msg.RequestID, Body: body}

	case wire.MsgPeerInsert:
		// A federated peer publishing a result whose consistent-hash home
		// is this edge. The ack is an empty PeerReply.
		req, err := wire.UnmarshalPeerInsert(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad peer insert: %v", err)
		}
		s.Edge.AdoptRemote(req.Desc, req.Value, req.Cost)
		body, _ := (wire.PeerReply{Outcome: wire.ProbeMiss}).Marshal()
		return wire.Message{Type: wire.MsgPeerReply, RequestID: msg.RequestID, Body: body}

	default:
		return fail(wire.CodeBadRequest, "edge cannot handle %v", msg.Type)
	}
}

// TCPClient drives a CoIC client against a live edge over TCP, measuring
// wall-clock latency (the role of the paper's Pixel phone).
type TCPClient struct {
	Client *Client
	Mode   Mode

	conn  net.Conn
	reqID uint64
}

// DialEdge connects a client to an edge server and announces its mode.
func DialEdge(addr string, client *Client, mode Mode, wrap ConnWrapper) (*TCPClient, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("core: dial edge: %w", err)
	}
	if wrap != nil {
		conn = wrap(conn)
	}
	t := &TCPClient{Client: client, Mode: mode, conn: conn}
	hello := wire.Message{Type: wire.MsgHello, RequestID: t.next(), Body: []byte{byte(mode)}}
	if err := wire.WriteMessage(conn, hello); err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := wire.ReadMessage(conn); err != nil {
		conn.Close()
		return nil, err
	}
	return t, nil
}

// Close releases the connection.
func (t *TCPClient) Close() error { return t.conn.Close() }

func (t *TCPClient) next() uint64 {
	t.reqID++
	return t.reqID
}

func (t *TCPClient) roundTrip(msg wire.Message) (wire.Message, error) {
	if err := wire.WriteMessage(t.conn, msg); err != nil {
		return wire.Message{}, err
	}
	reply, err := wire.ReadMessage(t.conn)
	if err != nil {
		return wire.Message{}, err
	}
	if reply.Type == wire.MsgError {
		er, uerr := wire.UnmarshalErrorReply(reply.Body)
		if uerr != nil {
			return wire.Message{}, fmt.Errorf("core: malformed error reply: %v", uerr)
		}
		return wire.Message{}, fmt.Errorf("core: remote error %d: %s", er.Code, er.Msg)
	}
	return reply, nil
}

// Recognize captures a frame, extracts the descriptor (CoIC mode), ships
// the request and returns the result with measured wall-clock latency.
func (t *TCPClient) Recognize(class vision.Class, viewSeed uint64) (wire.RecognitionResult, time.Duration, error) {
	frame := t.Client.CaptureFrame(class, viewSeed)
	start := time.Now()
	desc := originDescriptor
	if t.Mode == ModeCoIC {
		desc, _ = t.Client.Extract(frame)
	}
	body, err := (wire.ExecRequest{Task: wire.TaskRecognize, Desc: desc, Payload: frame.Bytes()}).Marshal()
	if err != nil {
		return wire.RecognitionResult{}, 0, err
	}
	reply, err := t.roundTrip(wire.Message{Type: wire.MsgExec, RequestID: t.next(), Body: body})
	if err != nil {
		return wire.RecognitionResult{}, 0, err
	}
	er, err := wire.UnmarshalExecReply(reply.Body)
	if err != nil {
		return wire.RecognitionResult{}, 0, err
	}
	res, err := wire.UnmarshalRecognitionResult(er.Result)
	return res, time.Since(start), err
}

// Render fetches, loads and draws a model, returning measured latency.
func (t *TCPClient) Render(modelID string) (time.Duration, error) {
	start := time.Now()
	body, err := (wire.ModelFetch{ModelID: modelID, Format: wire.FormatCMF}).Marshal()
	if err != nil {
		return 0, err
	}
	reply, err := t.roundTrip(wire.Message{Type: wire.MsgModelFetch, RequestID: t.next(), Body: body})
	if err != nil {
		return 0, err
	}
	mr, err := wire.UnmarshalModelReply(reply.Body)
	if err != nil {
		return 0, err
	}
	m, _, err := t.Client.LoadModel(mr.Data)
	if err != nil {
		return 0, err
	}
	if st, _ := t.Client.Draw(m); st.Pixels == 0 {
		return 0, fmt.Errorf("core: %q drew nothing", modelID)
	}
	return time.Since(start), nil
}

// Pano fetches a panoramic frame and crops the viewport, returning
// measured latency.
func (t *TCPClient) Pano(videoID string, frameIdx int, vp pano.Viewport) (time.Duration, error) {
	start := time.Now()
	body, err := (wire.PanoFetch{VideoID: videoID, FrameIndex: uint32(frameIdx)}).Marshal()
	if err != nil {
		return 0, err
	}
	reply, err := t.roundTrip(wire.Message{Type: wire.MsgPanoFetch, RequestID: t.next(), Body: body})
	if err != nil {
		return 0, err
	}
	pr, err := wire.UnmarshalPanoReply(reply.Body)
	if err != nil {
		return 0, err
	}
	if _, _, err := t.Client.CropPano(pr.Data, vp, 256, 256); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
