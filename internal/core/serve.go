package core

import (
	"errors"
	"fmt"

	"net"
	"sync"
	"time"

	"github.com/edge-immersion/coic/internal/pano"
	"github.com/edge-immersion/coic/internal/vision"
	"github.com/edge-immersion/coic/internal/wire"
)

// This file runs the same CoIC protocol over real TCP sockets: the
// deployment mode of the cmd/ daemons, where tc-style shaping comes from
// netsim.Shaper and latency is wall-clock. The virtual-time Session is
// for experiments; these servers are for running the system.

// ConnWrapper optionally wraps accepted/dialed connections (e.g. with a
// netsim.Shaper); nil means unwrapped.
type ConnWrapper func(net.Conn) net.Conn

// CloudServer exposes a Cloud over TCP.
type CloudServer struct {
	Cloud *Cloud
	// Wrap shapes each accepted connection when non-nil.
	Wrap ConnWrapper
}

// Serve accepts connections until the listener is closed.
func (s *CloudServer) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if s.Wrap != nil {
			conn = s.Wrap(conn)
		}
		go s.handle(conn)
	}
}

func (s *CloudServer) handle(conn net.Conn) {
	defer conn.Close()
	for {
		msg, err := wire.ReadMessage(conn)
		if err != nil {
			return // connection closed or corrupt; peer re-dials
		}
		reply := s.dispatch(msg)
		if err := wire.WriteMessage(conn, reply); err != nil {
			return
		}
	}
}

func (s *CloudServer) dispatch(msg wire.Message) wire.Message {
	fail := func(code uint16, format string, args ...any) wire.Message {
		body, _ := (wire.ErrorReply{Code: code, Msg: fmt.Sprintf(format, args...)}).Marshal()
		return wire.Message{Type: wire.MsgError, RequestID: msg.RequestID, Body: body}
	}
	switch msg.Type {
	case wire.MsgExec:
		req, err := wire.UnmarshalExecRequest(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad exec: %v", err)
		}
		if req.Task != wire.TaskRecognize {
			return fail(wire.CodeBadRequest, "cloud exec supports recognition only, got %v", req.Task)
		}
		result, _, err := s.Cloud.Recognize(req.Payload)
		if err != nil {
			return fail(wire.CodeInternal, "recognize: %v", err)
		}
		body, _ := (wire.ExecReply{Source: wire.SourceCloud, Result: result}).Marshal()
		return wire.Message{Type: wire.MsgExecReply, RequestID: msg.RequestID, Body: body}
	case wire.MsgModelFetch:
		req, err := wire.UnmarshalModelFetch(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad model fetch: %v", err)
		}
		data, _, err := s.Cloud.FetchModel(req.ModelID)
		if err != nil {
			return fail(wire.CodeUnknownModel, "%v", err)
		}
		body, _ := (wire.ModelReply{Format: wire.FormatCMF, Source: wire.SourceCloud, Data: data}).Marshal()
		return wire.Message{Type: wire.MsgModelReply, RequestID: msg.RequestID, Body: body}
	case wire.MsgPanoFetch:
		req, err := wire.UnmarshalPanoFetch(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad pano fetch: %v", err)
		}
		data, _, err := s.Cloud.FetchPano(req.VideoID, int(req.FrameIndex))
		if err != nil {
			return fail(wire.CodeInternal, "pano: %v", err)
		}
		body, _ := (wire.PanoReply{Source: wire.SourceCloud, Data: data}).Marshal()
		return wire.Message{Type: wire.MsgPanoReply, RequestID: msg.RequestID, Body: body}
	case wire.MsgHello:
		return wire.Message{Type: wire.MsgHello, RequestID: msg.RequestID}
	default:
		return fail(wire.CodeBadRequest, "cloud cannot handle %v", msg.Type)
	}
}

// EdgeServer exposes an Edge over TCP, forwarding misses to a cloud
// address over a single multiplexed upstream connection.
type EdgeServer struct {
	Edge      *Edge
	CloudAddr string
	// WrapClient shapes accepted client connections; WrapCloud shapes
	// the upstream connection (the tc knobs of the paper's testbed).
	WrapClient ConnWrapper
	WrapCloud  ConnWrapper

	mu    sync.Mutex
	cloud net.Conn
	seq   uint64
}

// Serve accepts client connections until the listener is closed.
func (s *EdgeServer) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if s.WrapClient != nil {
			conn = s.WrapClient(conn)
		}
		go s.handle(conn)
	}
}

// roundTripCloud forwards one message upstream and awaits its reply.
// Requests are serialised on one connection: the edge-cloud link is the
// bottleneck resource in CoIC anyway, and ordering keeps the code clear.
func (s *EdgeServer) roundTripCloud(msg wire.Message) (wire.Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cloud == nil {
		conn, err := net.DialTimeout("tcp", s.CloudAddr, 10*time.Second)
		if err != nil {
			return wire.Message{}, fmt.Errorf("core: edge cannot reach cloud: %w", err)
		}
		if s.WrapCloud != nil {
			conn = s.WrapCloud(conn)
		}
		s.cloud = conn
	}
	s.seq++
	msg.RequestID = s.seq
	if err := wire.WriteMessage(s.cloud, msg); err != nil {
		s.cloud.Close()
		s.cloud = nil
		return wire.Message{}, err
	}
	reply, err := wire.ReadMessage(s.cloud)
	if err != nil {
		s.cloud.Close()
		s.cloud = nil
		return wire.Message{}, err
	}
	return reply, nil
}

func (s *EdgeServer) handle(conn net.Conn) {
	defer conn.Close()
	mode := ModeCoIC
	for {
		msg, err := wire.ReadMessage(conn)
		if err != nil {
			return
		}
		var reply wire.Message
		switch msg.Type {
		case wire.MsgHello:
			if len(msg.Body) == 1 && msg.Body[0] == byte(ModeOrigin) {
				mode = ModeOrigin
			}
			reply = wire.Message{Type: wire.MsgHello, RequestID: msg.RequestID}
		default:
			reply = s.dispatch(msg, mode)
		}
		if err := wire.WriteMessage(conn, reply); err != nil {
			return
		}
	}
}

func (s *EdgeServer) dispatch(msg wire.Message, mode Mode) wire.Message {
	fail := func(code uint16, format string, args ...any) wire.Message {
		body, _ := (wire.ErrorReply{Code: code, Msg: fmt.Sprintf(format, args...)}).Marshal()
		return wire.Message{Type: wire.MsgError, RequestID: msg.RequestID, Body: body}
	}
	forward := func() wire.Message {
		reply, err := s.roundTripCloud(msg)
		if err != nil {
			return fail(wire.CodeUnavailable, "cloud: %v", err)
		}
		reply.RequestID = msg.RequestID
		return reply
	}

	switch msg.Type {
	case wire.MsgExec:
		req, err := wire.UnmarshalExecRequest(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad exec: %v", err)
		}
		if mode == ModeCoIC {
			if lr := s.Edge.Lookup(req.Task, req.Desc); lr.Hit() {
				body, _ := (wire.ExecReply{Source: wire.SourceEdge, Result: lr.Value}).Marshal()
				return wire.Message{Type: wire.MsgExecReply, RequestID: msg.RequestID, Body: body}
			}
		}
		reply := forward()
		if mode == ModeCoIC && reply.Type == wire.MsgExecReply {
			if er, err := wire.UnmarshalExecReply(reply.Body); err == nil {
				s.Edge.Insert(req.Desc, er.Result, 1)
			}
		}
		return reply

	case wire.MsgModelFetch:
		req, err := wire.UnmarshalModelFetch(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad model fetch: %v", err)
		}
		desc := ModelDescriptor(req.ModelID)
		if mode == ModeCoIC {
			if lr := s.Edge.Lookup(wire.TaskRender, desc); lr.Hit() {
				body, _ := (wire.ModelReply{Format: wire.FormatCMF, Source: wire.SourceEdge, Data: lr.Value}).Marshal()
				return wire.Message{Type: wire.MsgModelReply, RequestID: msg.RequestID, Body: body}
			}
		}
		reply := forward()
		if mode == ModeCoIC && reply.Type == wire.MsgModelReply {
			if mr, err := wire.UnmarshalModelReply(reply.Body); err == nil {
				s.Edge.Insert(desc, mr.Data, 1)
			}
		}
		return reply

	case wire.MsgPanoFetch:
		req, err := wire.UnmarshalPanoFetch(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad pano fetch: %v", err)
		}
		desc := PanoDescriptor(req.VideoID, int(req.FrameIndex))
		if mode == ModeCoIC {
			if lr := s.Edge.Lookup(wire.TaskPano, desc); lr.Hit() {
				body, _ := (wire.PanoReply{Source: wire.SourceEdge, Data: lr.Value}).Marshal()
				return wire.Message{Type: wire.MsgPanoReply, RequestID: msg.RequestID, Body: body}
			}
		}
		reply := forward()
		if mode == ModeCoIC && reply.Type == wire.MsgPanoReply {
			if pr, err := wire.UnmarshalPanoReply(reply.Body); err == nil {
				s.Edge.Insert(desc, pr.Data, 1)
			}
		}
		return reply

	default:
		return fail(wire.CodeBadRequest, "edge cannot handle %v", msg.Type)
	}
}

// TCPClient drives a CoIC client against a live edge over TCP, measuring
// wall-clock latency (the role of the paper's Pixel phone).
type TCPClient struct {
	Client *Client
	Mode   Mode

	conn  net.Conn
	reqID uint64
}

// DialEdge connects a client to an edge server and announces its mode.
func DialEdge(addr string, client *Client, mode Mode, wrap ConnWrapper) (*TCPClient, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("core: dial edge: %w", err)
	}
	if wrap != nil {
		conn = wrap(conn)
	}
	t := &TCPClient{Client: client, Mode: mode, conn: conn}
	hello := wire.Message{Type: wire.MsgHello, RequestID: t.next(), Body: []byte{byte(mode)}}
	if err := wire.WriteMessage(conn, hello); err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := wire.ReadMessage(conn); err != nil {
		conn.Close()
		return nil, err
	}
	return t, nil
}

// Close releases the connection.
func (t *TCPClient) Close() error { return t.conn.Close() }

func (t *TCPClient) next() uint64 {
	t.reqID++
	return t.reqID
}

func (t *TCPClient) roundTrip(msg wire.Message) (wire.Message, error) {
	if err := wire.WriteMessage(t.conn, msg); err != nil {
		return wire.Message{}, err
	}
	reply, err := wire.ReadMessage(t.conn)
	if err != nil {
		return wire.Message{}, err
	}
	if reply.Type == wire.MsgError {
		er, uerr := wire.UnmarshalErrorReply(reply.Body)
		if uerr != nil {
			return wire.Message{}, fmt.Errorf("core: malformed error reply: %v", uerr)
		}
		return wire.Message{}, fmt.Errorf("core: remote error %d: %s", er.Code, er.Msg)
	}
	return reply, nil
}

// Recognize captures a frame, extracts the descriptor (CoIC mode), ships
// the request and returns the result with measured wall-clock latency.
func (t *TCPClient) Recognize(class vision.Class, viewSeed uint64) (wire.RecognitionResult, time.Duration, error) {
	frame := t.Client.CaptureFrame(class, viewSeed)
	start := time.Now()
	desc := originDescriptor
	if t.Mode == ModeCoIC {
		desc, _ = t.Client.Extract(frame)
	}
	body, err := (wire.ExecRequest{Task: wire.TaskRecognize, Desc: desc, Payload: frame.Bytes()}).Marshal()
	if err != nil {
		return wire.RecognitionResult{}, 0, err
	}
	reply, err := t.roundTrip(wire.Message{Type: wire.MsgExec, RequestID: t.next(), Body: body})
	if err != nil {
		return wire.RecognitionResult{}, 0, err
	}
	er, err := wire.UnmarshalExecReply(reply.Body)
	if err != nil {
		return wire.RecognitionResult{}, 0, err
	}
	res, err := wire.UnmarshalRecognitionResult(er.Result)
	return res, time.Since(start), err
}

// Render fetches, loads and draws a model, returning measured latency.
func (t *TCPClient) Render(modelID string) (time.Duration, error) {
	start := time.Now()
	body, err := (wire.ModelFetch{ModelID: modelID, Format: wire.FormatCMF}).Marshal()
	if err != nil {
		return 0, err
	}
	reply, err := t.roundTrip(wire.Message{Type: wire.MsgModelFetch, RequestID: t.next(), Body: body})
	if err != nil {
		return 0, err
	}
	mr, err := wire.UnmarshalModelReply(reply.Body)
	if err != nil {
		return 0, err
	}
	m, _, err := t.Client.LoadModel(mr.Data)
	if err != nil {
		return 0, err
	}
	if st, _ := t.Client.Draw(m); st.Pixels == 0 {
		return 0, fmt.Errorf("core: %q drew nothing", modelID)
	}
	return time.Since(start), nil
}

// Pano fetches a panoramic frame and crops the viewport, returning
// measured latency.
func (t *TCPClient) Pano(videoID string, frameIdx int, vp pano.Viewport) (time.Duration, error) {
	start := time.Now()
	body, err := (wire.PanoFetch{VideoID: videoID, FrameIndex: uint32(frameIdx)}).Marshal()
	if err != nil {
		return 0, err
	}
	reply, err := t.roundTrip(wire.Message{Type: wire.MsgPanoFetch, RequestID: t.next(), Body: body})
	if err != nil {
		return 0, err
	}
	pr, err := wire.UnmarshalPanoReply(reply.Body)
	if err != nil {
		return 0, err
	}
	if _, _, err := t.Client.CropPano(pr.Data, vp, 256, 256); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
