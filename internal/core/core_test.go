package core

import (
	"context"
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/cache"
	"github.com/edge-immersion/coic/internal/netsim"
	"github.com/edge-immersion/coic/internal/pano"
	"github.com/edge-immersion/coic/internal/trace"
	"github.com/edge-immersion/coic/internal/vision"
	"github.com/edge-immersion/coic/internal/wire"
)

// testParams shrinks frames and panoramas so unit tests stay fast; the
// protocol and cache behaviour are size-independent. The mobile compute
// rate is scaled up in proportion to the smaller payloads so the latency
// ordering of the full-size system (extraction cheaper than the cloud
// round trip) is preserved at test scale.
func testParams() Params {
	p := DefaultParams()
	p.CameraW, p.CameraH = 128, 128
	p.DNNInput = 32
	p.PanoWidth = 256
	p.MobileGFLOPS = 28
	return p
}

func testRig(t *testing.T, cond netsim.Condition, p Params) (*Session, *Edge, *Cloud) {
	t.Helper()
	cloud := NewCloud(p)
	edge := NewEdge(p)
	client := NewClient(0, p)
	topo := netsim.NewTopology(cond, p.Seed)
	return NewSession(client, edge, cloud, topo), edge, cloud
}

var testCond = netsim.Condition{Name: "200/20", MobileEdge: 200, EdgeCloud: 20}

func TestRecognizeMissThenSimilarHit(t *testing.T) {
	p := testParams()
	sess, edge, _ := testRig(t, testCond, p)

	miss, missRes, err := sess.Recognize(context.Background(), epoch, vision.ClassCar, 11, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if miss.Outcome != cache.OutcomeMiss {
		t.Fatalf("cold request outcome = %v", miss.Outcome)
	}
	if missRes.AnnotationModelID == "" {
		t.Fatal("recognition result missing annotation model")
	}

	hit, hitRes, err := sess.Recognize(context.Background(), epoch.Add(time.Minute), vision.ClassCar, 22, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Outcome != cache.OutcomeSimilar && hit.Outcome != cache.OutcomeExact {
		t.Fatalf("warm request outcome = %v", hit.Outcome)
	}
	if hitRes.Label != missRes.Label {
		t.Fatalf("cached label %q != computed %q", hitRes.Label, missRes.Label)
	}
	if hit.Total() >= miss.Total() {
		t.Fatalf("hit (%v) not faster than miss (%v)", hit.Total(), miss.Total())
	}
	if hit.UpEC != 0 || hit.Cloud != 0 || hit.DownEC != 0 {
		t.Fatalf("hit touched the cloud: %+v", hit)
	}
	st := edge.Stats()
	if st.Lookups[wire.TaskRecognize] != 2 || st.Misses[wire.TaskRecognize] != 1 {
		t.Fatalf("edge stats: %+v", st)
	}
}

func TestRecognizeDifferentObjectsDoNotAlias(t *testing.T) {
	p := testParams()
	sess, _, _ := testRig(t, testCond, p)
	if _, _, err := sess.Recognize(context.Background(), epoch, vision.ClassCar, 1, ModeCoIC); err != nil {
		t.Fatal(err)
	}
	b, res, err := sess.Recognize(context.Background(), epoch.Add(time.Minute), vision.ClassTree, 2, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if b.Outcome != cache.OutcomeMiss {
		t.Fatalf("different class matched the cache (outcome %v, label %q)", b.Outcome, res.Label)
	}
}

func TestRecognizeOriginSkipsEverything(t *testing.T) {
	p := testParams()
	sess, edge, _ := testRig(t, testCond, p)
	b, _, err := sess.Recognize(context.Background(), epoch, vision.ClassDog, 5, ModeOrigin)
	if err != nil {
		t.Fatal(err)
	}
	if b.Extract != 0 {
		t.Fatal("origin mode extracted a descriptor")
	}
	if b.Cloud == 0 || b.UpEC == 0 {
		t.Fatal("origin request did not reach the cloud")
	}
	if st := edge.Stats(); st.Lookups[wire.TaskRecognize] != 0 || st.Inserts != 0 {
		t.Fatalf("origin mode touched the cache: %+v", st)
	}
}

func TestBreakdownAddsUp(t *testing.T) {
	p := testParams()
	sess, _, _ := testRig(t, testCond, p)
	b, _, err := sess.Recognize(context.Background(), epoch, vision.ClassPerson, 7, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	sum := b.Extract + b.UpME + b.EdgeProc + b.UpEC + b.Cloud + b.DownEC + b.DownME + b.ClientProc
	if diff := (b.Total() - sum); diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("breakdown sum %v != total %v", sum, b.Total())
	}
	if !b.End.After(b.Start) || b.BytesUp == 0 || b.BytesDown == 0 {
		t.Fatalf("degenerate breakdown: %+v", b)
	}
}

func TestRenderHitServesFromEdge(t *testing.T) {
	p := testParams()
	sess, _, _ := testRig(t, testCond, p)
	id := AnnotationModelID("car")

	miss, err := sess.Render(context.Background(), epoch, id, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if miss.Outcome != cache.OutcomeMiss || miss.Cloud == 0 {
		t.Fatalf("cold render: %+v", miss)
	}
	hit, err := sess.Render(context.Background(), epoch.Add(time.Minute), id, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Outcome != cache.OutcomeExact {
		t.Fatalf("warm render outcome = %v", hit.Outcome)
	}
	if hit.Cloud != 0 || hit.UpEC != 0 {
		t.Fatal("hit render touched the cloud")
	}
	if hit.Total() >= miss.Total() {
		t.Fatalf("hit %v not faster than miss %v", hit.Total(), miss.Total())
	}
	if hit.ClientProc == 0 {
		t.Fatal("render skipped client load+draw")
	}
}

func TestRenderUnknownModel(t *testing.T) {
	p := testParams()
	sess, _, _ := testRig(t, testCond, p)
	if _, err := sess.Render(context.Background(), epoch, "no-such-model", ModeCoIC); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestPanoSharedAcrossUsers(t *testing.T) {
	p := testParams()
	cloud := NewCloud(p)
	edge := NewEdge(p)
	topo := netsim.NewTopology(testCond, p.Seed)
	alice := NewSession(NewClient(1, p), edge, cloud, topo)
	bob := NewSession(NewClient(2, p), edge, cloud, topo)

	vpA := pano.Viewport{Yaw: 0.3, FOV: 1.5}
	vpB := pano.Viewport{Yaw: -1.2, Pitch: 0.2, FOV: 1.5} // different viewport!

	first, err := alice.Pano(context.Background(), epoch, "vr-concert", 10, vpA, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if first.Outcome != cache.OutcomeMiss {
		t.Fatalf("first pano outcome = %v", first.Outcome)
	}
	second, err := bob.Pano(context.Background(), epoch.Add(time.Second), "vr-concert", 10, vpB, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if second.Outcome != cache.OutcomeExact {
		t.Fatalf("same frame, second user: outcome = %v — panorama not shared", second.Outcome)
	}
	if second.Total() >= first.Total() {
		t.Fatal("shared panorama was not faster")
	}
	// Different frame must miss.
	third, err := bob.Pano(context.Background(), epoch.Add(2*time.Second), "vr-concert", 11, vpB, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if third.Outcome != cache.OutcomeMiss {
		t.Fatal("different frame hit the cache")
	}
}

func TestCooperativeEdgePeering(t *testing.T) {
	p := testParams()
	cloud := NewCloud(p)
	edgeA := NewEdge(p)
	edgeB := NewEdge(p)
	edgeB.Peer(edgeA)
	topoA := netsim.NewTopology(testCond, p.Seed)
	topoB := netsim.NewTopology(testCond, p.Seed+1)

	// User at edge A warms A's cache.
	sessA := NewSession(NewClient(1, p), edgeA, cloud, topoA)
	if _, err := sessA.Render(context.Background(), epoch, AnnotationModelID("dog"), ModeCoIC); err != nil {
		t.Fatal(err)
	}
	// User at edge B: local miss, peer hit.
	sessB := NewSession(NewClient(2, p), edgeB, cloud, topoB)
	b, err := sessB.Render(context.Background(), epoch.Add(time.Second), AnnotationModelID("dog"), ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if b.Outcome == cache.OutcomeMiss {
		t.Fatal("peer cache not consulted")
	}
	if st := edgeB.Stats(); st.PeerHits != 1 {
		t.Fatalf("peer hits = %d", st.PeerHits)
	}
	// The peer hit is adopted locally: next lookup hits edge B directly.
	b2, err := sessB.Render(context.Background(), epoch.Add(2*time.Second), AnnotationModelID("dog"), ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if st := edgeB.Stats(); st.PeerHits != 1 {
		t.Fatalf("second lookup went to peer again: %+v", st)
	}
	_ = b2
}

func TestThresholdSweepMonotonic(t *testing.T) {
	p := testParams()
	pts := RunThresholdSweep(p, []float64{0.05, 0.12, 0.3, 0.6}, 8)
	for i := 1; i < len(pts); i++ {
		if pts[i].TruePositive < pts[i-1].TruePositive || pts[i].FalsePositive < pts[i-1].FalsePositive {
			t.Fatalf("rates not monotone in threshold: %+v", pts)
		}
	}
	for _, pt := range pts {
		if pt.TruePositive < pt.FalsePositive {
			t.Fatalf("tp < fp at threshold %v — descriptors useless", pt.Threshold)
		}
	}
	// At the configured threshold, same-object matching must be reliable
	// and cross-object matching rare.
	cfg := RunThresholdSweep(p, []float64{p.Threshold}, 12)[0]
	if cfg.TruePositive < 0.9 {
		t.Fatalf("true-positive rate %.2f at configured threshold", cfg.TruePositive)
	}
	if cfg.FalsePositive > 0.2 {
		t.Fatalf("false-positive rate %.2f at configured threshold", cfg.FalsePositive)
	}
}

func TestRunTraceCoICBeatsOrigin(t *testing.T) {
	p := testParams()
	events, err := trace.Generate(trace.Config{
		Users: 6, Cells: 2, Duration: 20 * time.Second,
		RatePerUser: 1.2, Objects: 12, ZipfAlpha: 0.9,
		Locality: 0.8, HotSetSize: 4,
		TaskMix: trace.TaskMix{Recognize: 0.6, Render: 0.25, Pano: 0.15},
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 40 {
		t.Fatalf("trace too small: %d events", len(events))
	}

	coic, err := RunTrace(p, testCond, events, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	origin, err := RunTrace(p, testCond, events, ModeOrigin)
	if err != nil {
		t.Fatal(err)
	}
	if coic.Errors != 0 || origin.Errors != 0 {
		t.Fatalf("errors: coic=%d origin=%d", coic.Errors, origin.Errors)
	}
	if coic.Events != len(events) || origin.Events != len(events) {
		t.Fatal("event counts wrong")
	}
	if coic.HitRatio() < 0.25 {
		t.Fatalf("hit ratio %.2f too low for a high-locality trace", coic.HitRatio())
	}
	if coic.All.Mean() >= origin.All.Mean() {
		t.Fatalf("CoIC mean %v not below origin mean %v", coic.All.Mean(), origin.All.Mean())
	}
	hits := coic.Outcomes[cache.OutcomeExact] + coic.Outcomes[cache.OutcomeSimilar]
	if hits == 0 {
		t.Fatal("no cache hits recorded")
	}
}

func TestRunTraceDeterministic(t *testing.T) {
	p := testParams()
	events, _ := trace.Generate(trace.Config{
		Users: 3, Cells: 2, Duration: 10 * time.Second,
		RatePerUser: 1, Objects: 8, Locality: 0.7, Seed: 3,
	})
	a, err := RunTrace(p, testCond, events, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrace(p, testCond, events, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if a.All.Mean() != b.All.Mean() || a.HitRatio() != b.HitRatio() {
		t.Fatal("trace replay not deterministic")
	}
}

func TestCloudErrorPaths(t *testing.T) {
	p := testParams()
	cloud := NewCloud(p)
	if _, _, err := cloud.Recognize([]byte{1, 2, 3}); err == nil {
		t.Fatal("bad payload accepted")
	}
	if _, _, err := cloud.FetchModel("ghost"); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, _, err := cloud.FetchPano("v", -1); err == nil {
		t.Fatal("negative frame accepted")
	}
	if len(cloud.ModelIDs()) < len(p.Classes())+len(Fig2bModelKB) {
		t.Fatal("repository incomplete")
	}
}

func TestEdgeStatsHitRatio(t *testing.T) {
	s := newEdgeStats()
	if s.HitRatio() != 0 {
		t.Fatal("empty ratio")
	}
	s.Lookups[wire.TaskRender] = 4
	s.Exact[wire.TaskRender] = 2
	s.Similar[wire.TaskRender] = 1
	if s.HitRatio() != 0.75 {
		t.Fatalf("ratio = %v", s.HitRatio())
	}
}

func TestDescriptorsStableAcrossProcessesAndUsers(t *testing.T) {
	// Two clients built independently (same Params) must produce the
	// same descriptor for the same frame — the deployment invariant that
	// lets one user's cached result serve another.
	p := testParams()
	a := NewClient(1, p)
	b := NewClient(2, p)
	frame := a.CaptureFrame(vision.ClassAvatar, 99)
	da, _ := a.Extract(frame)
	db, _ := b.Extract(frame)
	if da.Key() != db.Key() {
		t.Fatal("clients disagree on descriptors")
	}
}

func TestRecognitionAccuracy(t *testing.T) {
	// The cloud's nearest-centroid classifier must label every class
	// correctly under viewpoint variation — otherwise cached labels
	// would poison other users.
	p := testParams()
	cloud := NewCloud(p)
	client := NewClient(0, p)
	correct, total := 0, 0
	for ci := 0; ci < int(vision.NumClasses); ci++ {
		for v := uint64(0); v < 5; v++ {
			frame := client.CaptureFrame(vision.Class(ci), 7000+v*31+uint64(ci))
			body, _, err := cloud.Recognize(frame.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			res, err := wire.UnmarshalRecognitionResult(body)
			if err != nil {
				t.Fatal(err)
			}
			total++
			if int(res.ClassIndex) == ci {
				correct++
			}
		}
	}
	if correct < total*9/10 {
		t.Fatalf("recognition accuracy %d/%d below 90%%", correct, total)
	}
}

func TestPrivacyKGate(t *testing.T) {
	// K=3: an entry unlocks for strangers only after three distinct
	// users have requested it. Hash-keyed render tasks make the flow
	// deterministic.
	p := testParams()
	cloud := NewCloud(p)
	edge := NewEdge(p, WithPrivacyK(3))
	topo := netsim.NewTopology(testCond, p.Seed)
	id := AnnotationModelID("car")

	sess := func(user int) *Session {
		return NewSession(NewClient(user, p), edge, cloud, topo)
	}

	// User 1 computes and caches the result.
	b, err := sess(1).Render(context.Background(), epoch, id, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if b.Outcome != cache.OutcomeMiss {
		t.Fatalf("first request: %v", b.Outcome)
	}
	// User 1 again: own results are always visible.
	b, err = sess(1).Render(context.Background(), epoch.Add(time.Second), id, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if b.Outcome != cache.OutcomeExact {
		t.Fatalf("inserter blocked from own entry: %v", b.Outcome)
	}
	// User 2 (stranger, interest=1): blocked.
	b, err = sess(2).Render(context.Background(), epoch.Add(2*time.Second), id, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if b.Outcome != cache.OutcomeMiss {
		t.Fatalf("gate leaked at interest=1: %v", b.Outcome)
	}
	// User 3 (interest=2): still blocked.
	b, err = sess(3).Render(context.Background(), epoch.Add(3*time.Second), id, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if b.Outcome != cache.OutcomeMiss {
		t.Fatalf("gate leaked at interest=2: %v", b.Outcome)
	}
	// User 4 (interest=3 >= K): shared.
	b, err = sess(4).Render(context.Background(), epoch.Add(4*time.Second), id, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if b.Outcome != cache.OutcomeExact {
		t.Fatalf("gate did not unlock at K=3: %v", b.Outcome)
	}
	st := edge.Stats()
	if st.PrivacyBlocked != 2 {
		t.Fatalf("PrivacyBlocked = %d, want 2", st.PrivacyBlocked)
	}
}

func TestPrivacyKDisabledByDefault(t *testing.T) {
	p := testParams()
	sess, _, _ := testRig(t, testCond, p)
	id := AnnotationModelID("dog")
	if _, err := sess.Render(context.Background(), epoch, id, ModeCoIC); err != nil {
		t.Fatal(err)
	}
	b, err := sess.Render(context.Background(), epoch.Add(time.Second), id, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if b.Outcome != cache.OutcomeExact {
		t.Fatalf("default edge blocked sharing: %v", b.Outcome)
	}
}
