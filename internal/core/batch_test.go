package core

import (
	"bytes"
	"net"
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/vision"
	"github.com/edge-immersion/coic/internal/wire"
)

// TestRecognizeBatchMatchesSerial is the cloud-side golden contract:
// every batch member's result bytes must equal a serial Recognize of the
// same payload, a malformed member fails alone, and the virtual cost
// charges one pass per unique payload.
func TestRecognizeBatchMatchesSerial(t *testing.T) {
	p := testParams()
	cloud := NewCloud(p)
	golden := NewCloud(p) // fresh twin: serial answers with untouched counters

	cli := NewClient(0, p)
	payloads := make([][]byte, 0, 7)
	for i := 0; i < 3; i++ {
		frame := cli.CaptureFrame(vision.Class(i%int(vision.NumClasses)), uint64(40+i))
		payloads = append(payloads, frame.Bytes())
		payloads = append(payloads, frame.Bytes()) // bit-exact duplicate
	}
	payloads = append(payloads, []byte("not a frame")) // malformed member

	results, errs, cost := cloud.RecognizeBatch(payloads)
	if len(results) != len(payloads) || len(errs) != len(payloads) {
		t.Fatalf("result lengths = %d/%d, want %d", len(results), len(errs), len(payloads))
	}
	for i := 0; i < 6; i++ {
		if errs[i] != nil {
			t.Fatalf("member %d failed: %v", i, errs[i])
		}
		want, _, err := golden.Recognize(payloads[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(results[i], want) {
			t.Fatalf("member %d result diverges from serial Recognize", i)
		}
	}
	if errs[6] == nil {
		t.Fatal("malformed member did not fail")
	}
	if results[6] != nil {
		t.Fatal("malformed member produced a result")
	}

	// 3 unique valid payloads → exactly 3 serial-equivalent passes of cost.
	_, serialCost, err := golden.Recognize(payloads[0])
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * serialCost; cost != want {
		t.Fatalf("batch cost = %v, want %v (one pass per unique payload)", cost, want)
	}
}

func execMsg(t testing.TB, cli *Client, reqID uint64, class vision.Class, viewSeed uint64) (wire.Message, []byte) {
	t.Helper()
	frame := cli.CaptureFrame(class, viewSeed)
	desc, _ := cli.Extract(frame)
	body, err := (wire.ExecRequest{
		Task:    wire.TaskRecognize,
		Desc:    desc,
		Payload: frame.Bytes(),
		QoS:     wire.QoSBestEffort,
	}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return wire.Message{Type: wire.MsgExec, RequestID: reqID, Body: body}, frame.Bytes()
}

// TestTCPCloudBatchGolden pipelines a burst of exec requests at a
// batching cloud: replies must come back in order, byte-identical to
// serial Recognize, and at least one multi-request batch must actually
// have formed.
func TestTCPCloudBatchGolden(t *testing.T) {
	p := testParams()
	cs := &CloudServer{
		Cloud:      NewCloud(p),
		Workers:    1, // one worker so the burst lands in its drain window
		Batch:      8,
		BatchSlack: 200 * time.Millisecond,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go cs.Serve(ln)

	golden := NewCloud(p)
	cli := NewClient(0, p)
	conn := rawEdgeConn(t, ln.Addr().String(), ModeCoIC)
	defer conn.Close()

	const requests = 8
	payloads := make([][]byte, requests)
	for i := 0; i < requests; i++ {
		// Pairs of bit-identical frames: co-located users.
		msg, payload := execMsg(t, cli, uint64(i+1), vision.Class((i/2)%int(vision.NumClasses)), uint64(7+i/2))
		payloads[i] = payload
		if err := wire.WriteMessage(conn, msg); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < requests; i++ {
		reply, err := wire.ReadMessage(conn)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if reply.RequestID != uint64(i+1) {
			t.Fatalf("reply %d carries request id %d — out of order", i, reply.RequestID)
		}
		if reply.Type != wire.MsgExecReply {
			t.Fatalf("reply %d type = %v", i, reply.Type)
		}
		er, err := wire.UnmarshalExecReply(reply.Body)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := golden.Recognize(payloads[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(er.Result, want) {
			t.Fatalf("reply %d result diverges from serial Recognize", i)
		}
	}
	if cs.Batches() == 0 {
		t.Fatal("no multi-request batch formed for a pipelined burst")
	}
	if cs.BatchedRequests() < 2 {
		t.Fatalf("batched requests = %d, want >= 2", cs.BatchedRequests())
	}
}

// TestTCPEdgeBatchCoalesces pipelines identical recognize requests at a
// batching edge: the batch members dispatch concurrently, so their
// identical descriptors must coalesce into a single cloud fetch.
func TestTCPEdgeBatchCoalesces(t *testing.T) {
	p := testParams()
	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cloudLn.Close()
	go (&CloudServer{Cloud: NewCloud(p)}).Serve(cloudLn)

	es := &EdgeServer{
		Edge:       NewEdge(p),
		CloudAddr:  cloudLn.Addr().String(),
		Workers:    1,
		Batch:      4,
		BatchSlack: 200 * time.Millisecond,
	}
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer edgeLn.Close()
	go es.Serve(edgeLn)

	cli := NewClient(0, p)
	conn := rawEdgeConn(t, edgeLn.Addr().String(), ModeCoIC)
	defer conn.Close()

	const requests = 4
	for i := 0; i < requests; i++ {
		// The same frame every time: one descriptor, one cloud answer.
		msg, _ := execMsg(t, cli, uint64(i+1), vision.ClassStopSign, 11)
		if err := wire.WriteMessage(conn, msg); err != nil {
			t.Fatal(err)
		}
	}
	var label string
	for i := 0; i < requests; i++ {
		reply, err := wire.ReadMessage(conn)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if reply.Type != wire.MsgExecReply {
			t.Fatalf("reply %d type = %v", i, reply.Type)
		}
		er, err := wire.UnmarshalExecReply(reply.Body)
		if err != nil {
			t.Fatal(err)
		}
		res, err := wire.UnmarshalRecognitionResult(er.Result)
		if err != nil {
			t.Fatal(err)
		}
		if label == "" {
			label = res.Label
		} else if res.Label != label {
			t.Fatalf("reply %d label %q diverges from %q", i, res.Label, label)
		}
	}
	if es.Batches() == 0 {
		t.Fatal("no multi-request batch formed on the edge")
	}
	// All four were in flight together (cache empty, identical
	// descriptor), so the inflight table must have collapsed them into
	// one upstream round trip.
	if got := es.CloudFetches(); got != 1 {
		t.Fatalf("cloud fetches = %d, want 1 (batch members must coalesce)", got)
	}
}

// TestBatchWaitBudget pins the slack policy: interactive heads never
// wait, best-effort heads wait the configured slack capped by their
// deadline, and an expired deadline yields zero.
func TestBatchWaitBudget(t *testing.T) {
	plan := &batchPlan{max: 8, slack: 10 * time.Millisecond}
	now := time.Now()

	interactive := &schedJob{class: wire.QoSInteractive}
	if got := plan.waitBudget(interactive, now); got != 0 {
		t.Fatalf("interactive wait budget = %v, want 0", got)
	}
	be := &schedJob{class: wire.QoSBestEffort}
	if got := plan.waitBudget(be, now); got != plan.slack {
		t.Fatalf("best-effort wait budget = %v, want %v", got, plan.slack)
	}
	be.deadline = now.Add(3 * time.Millisecond)
	if got := plan.waitBudget(be, now); got != 3*time.Millisecond {
		t.Fatalf("deadline-capped budget = %v, want 3ms", got)
	}
	be.deadline = now.Add(-time.Millisecond)
	if got := plan.waitBudget(be, now); got != 0 {
		t.Fatalf("expired-deadline budget = %v, want 0", got)
	}
	var nilPlan *batchPlan
	if nilPlan.batchable(&schedJob{msg: wire.Message{Type: wire.MsgExec}}) {
		t.Fatal("nil plan reported batchable")
	}
}
