package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/edge-immersion/coic/internal/cache"
	"github.com/edge-immersion/coic/internal/member"
	"github.com/edge-immersion/coic/internal/wire"
)

// This file glues the transport-agnostic member.Agent into the TCP
// EdgeServer: membership frames ride the same peerConn streams as peer
// cache traffic, every view change deterministically rebuilds the
// federation's consistent-hash ring from the sorted alive set, and a
// background migrator re-homes cached keys whenever ownership moves.

// decommissionTimeout bounds the graceful-leave work (draining home keys
// to ring successors, broadcasting member-leave) a cancelled edge does
// before giving up — SIGTERM must not hang on a slow or dead fleet.
const decommissionTimeout = 10 * time.Second

// isFederationFrame reports whether t is edge↔edge federation traffic —
// peer cache frames or membership gossip — rather than client traffic.
// These frames sit on another edge's critical path (or keep the fleet's
// failure detector honest), so the pipeline schedules them as
// interactive and exempts them from tenant rationing.
func isFederationFrame(t wire.MsgType) bool {
	switch t {
	case wire.MsgPeerLookup, wire.MsgPeerInsert,
		wire.MsgMemberPing, wire.MsgMemberAck, wire.MsgMemberGossip, wire.MsgMemberLeave:
		return true
	}
	return false
}

// gossipState bundles what SetupGossip wires together: the agent owning
// the membership view, the federation whose ring tracks it, and the
// migrator that re-homes keys after every ring change.
type gossipState struct {
	agent *member.Agent
	fed   *cache.Federation
	mig   *cache.Migrator

	mu sync.Mutex
	// pending is the oldest ring not yet swept against — if several view
	// changes land between sweeps, diffing the current ring against the
	// oldest covers every move at once.
	pending *cache.Ring
	kick    chan struct{}
}

// SetupGossip joins this edge to a dynamically-membered federation: self
// is its advertised (dialable) address — both its gossip identity and
// its ring position — and seeds are addresses to contact for the initial
// join (typically one or two stable fleet members; self may be listed,
// it is skipped). Unlike SetupFederation the fleet is discovered, not
// declared: the edge boots alone on a single-node ring and grows it as
// gossip finds members. Call before Serve; ServeContext runs the
// protocol and performs the graceful decommission on cancellation.
func (s *EdgeServer) SetupGossip(self string, seeds []string) error {
	if self == "" {
		return fmt.Errorf("core: gossiped edge needs its advertised self address")
	}
	seen := map[string]bool{}
	for _, addr := range seeds {
		if addr == "" {
			return fmt.Errorf("core: empty gossip seed address")
		}
		if seen[addr] {
			return fmt.Errorf("core: duplicate gossip seed %s", addr)
		}
		seen[addr] = true
	}
	fed := cache.NewFederation(self, cache.NewRingVersion([]string{self}, 0, 1))
	fed.SetReplication(s.Replication)
	g := &gossipState{
		fed:  fed,
		mig:  cache.NewMigrator(s.Edge.Cache, fed, s.MigrateRate),
		kick: make(chan struct{}, 1),
	}
	agent, err := member.NewAgent(member.Config{
		Self:     self,
		Seeds:    seeds,
		Interval: s.GossipInterval,
		Probe:    s.memberProbe,
		OnChange: func() { s.syncMembership() },
	})
	if err != nil {
		return err
	}
	g.agent = agent
	s.mu.Lock()
	if s.peers == nil {
		s.peers = map[string]*peerConn{}
	}
	s.mu.Unlock()
	s.gossip = g
	s.Edge.SetFederation(fed, true)
	return nil
}

// memberConn returns the persistent connection to addr, creating it on
// first use. Gossip shares peerConn streams with peer cache traffic —
// membership frames are tiny, and sharing means the failure detector
// exercises exactly the path data traffic needs alive.
func (s *EdgeServer) memberConn(addr string) *peerConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.peers == nil {
		s.peers = map[string]*peerConn{}
	}
	pc := s.peers[addr]
	if pc == nil {
		pc = &peerConn{addr: addr, wrap: s.WrapPeer}
		s.peers[addr] = pc
	}
	return pc
}

// memberProbe is the member.ProbeFunc transport: one membership frame
// out, one member-ack back, over the peer connection. Any failure —
// dial, backoff, a non-ack reply — reads as an unreachable peer.
func (s *EdgeServer) memberProbe(ctx context.Context, addr string, kind member.Kind, d member.Digest) (member.Digest, error) {
	body, err := digestToWire(d).Marshal()
	if err != nil {
		return member.Digest{}, err
	}
	mt := wire.MsgMemberPing
	switch kind {
	case member.KindGossip:
		mt = wire.MsgMemberGossip
	case member.KindLeave:
		mt = wire.MsgMemberLeave
	}
	pctx, cancel := context.WithTimeout(ctx, peerDialTimeout)
	defer cancel()
	reply, err := s.memberConn(addr).roundTrip(pctx, wire.Message{Type: mt, Body: body})
	if err != nil {
		return member.Digest{}, err
	}
	if reply.Type != wire.MsgMemberAck {
		return member.Digest{}, fmt.Errorf("core: peer %s answered %v with %v", addr, mt, reply.Type)
	}
	m, err := wire.UnmarshalMembership(reply.Body)
	if err != nil {
		return member.Digest{}, err
	}
	return digestFromWire(m), nil
}

// syncMembership is the agent's OnChange hook: when the ring member set
// (every non-dead member — a suspect keeps its arc until death, so one
// dropped probe cannot trigger a migration storm) differs from the
// current ring it registers transports for new members, swaps in a ring
// rebuilt at the view's epoch, retires dead members' routing, and kicks
// the migrator. Serialised on g.mu — change notifications can race in
// from the gossip loop and request workers.
func (s *EdgeServer) syncMembership() {
	g := s.gossip
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	view := g.agent.View()
	members := view.RingMembers()
	cur := g.fed.Ring()
	if sameNodes(cur.Nodes(), members) {
		return
	}
	// Transports first, ring second: routing must never select an owner
	// the federation has no path to.
	memberSet := map[string]bool{}
	for _, id := range members {
		memberSet[id] = true
		if id == g.fed.Self() {
			continue
		}
		pc := s.memberConn(id)
		g.fed.AddPeer(id, cache.Peer{
			Probe:  s.probePeer(pc),
			Insert: s.insertPeer(pc),
		})
	}
	g.fed.SetRing(cache.NewRingVersion(members, 0, view.Epoch()))
	for _, id := range g.fed.Peers() {
		if !memberSet[id] {
			g.fed.RemovePeer(id)
		}
	}
	if g.pending == nil {
		g.pending = cur
	}
	select {
	case g.kick <- struct{}{}:
	default:
	}
}

// migrateLoop is the background re-homing worker: each kick sweeps the
// local cache against the oldest un-swept ring, pushing every key whose
// owner set gained members. Runs for the life of the gossip protocol.
func (s *EdgeServer) migrateLoop(ctx context.Context) {
	g := s.gossip
	for {
		select {
		case <-ctx.Done():
			return
		case <-g.kick:
		}
		g.mu.Lock()
		prev := g.pending
		g.pending = nil
		g.mu.Unlock()
		if prev != nil {
			g.mig.Sweep(ctx, prev)
		}
	}
}

// Decommission performs the graceful leave: drain every co-owned key to
// the members that inherit it once this edge is gone, then broadcast
// member-leave so peers drop us without a suspicion phase. Bounded by
// decommissionTimeout; returns how many keys the drain pushed. Invoked
// automatically by ServeContext when its context is cancelled (the
// SIGTERM path); calling it twice is a no-op.
func (s *EdgeServer) Decommission() int {
	g := s.gossip
	if g == nil || g.agent.View().Left() {
		return 0
	}
	ctx, cancel := context.WithTimeout(context.Background(), decommissionTimeout)
	defer cancel()
	// Drain before announcing: peers keep routing reads to us while the
	// keys copy out, and only stop once they merge the leave.
	moved := g.mig.Drain(ctx)
	g.agent.Leave(ctx)
	return moved
}

// RingVersion reports the version of the federation's consistent-hash
// ring (0 when standalone or on the legacy broadcast topology). Under
// gossip it equals the view epoch of the last rebuild and is node-local:
// versions grow monotonically on each edge but need not match across the
// fleet — ring contents are what converge.
func (s *EdgeServer) RingVersion() uint64 {
	if fed := s.Edge.Federation(); fed != nil {
		return fed.RingVersion()
	}
	return 0
}

// MemberCounts reports the fleet as this edge sees it: gossiped edges
// count their live view; statically federated edges report the declared
// ring as all-alive (the static topology has no failure detector); a
// standalone edge is a fleet of one.
func (s *EdgeServer) MemberCounts() (alive, suspect, dead int) {
	if g := s.gossip; g != nil {
		return g.agent.View().Counts()
	}
	if fed := s.Edge.Federation(); fed != nil {
		if r := fed.Ring(); r != nil && r.Len() > 0 {
			return r.Len(), 0, 0
		}
	}
	return 1, 0, 0
}

// MigratedKeys reports how many cached keys the migrator has re-homed
// (sweeps after ring changes plus the decommission drain).
func (s *EdgeServer) MigratedKeys() uint64 {
	if g := s.gossip; g != nil {
		return g.mig.Migrated()
	}
	return 0
}

// sameNodes reports whether two sorted node lists are identical.
func sameNodes(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// digestToWire converts the member package's native digest to its wire
// frame body (statuses share the same numeric encoding by construction).
func digestToWire(d member.Digest) wire.Membership {
	m := wire.Membership{From: d.From, Epoch: d.Epoch}
	for _, e := range d.Entries {
		m.Members = append(m.Members, wire.MemberEntry{
			ID:          e.ID,
			Incarnation: e.Incarnation,
			Status:      uint8(e.Status),
		})
	}
	return m
}

// digestFromWire is the inverse; the wire decoder has already validated
// every status.
func digestFromWire(m wire.Membership) member.Digest {
	d := member.Digest{From: m.From, Epoch: m.Epoch}
	for _, e := range m.Members {
		d.Entries = append(d.Entries, member.Entry{
			ID:          e.ID,
			Incarnation: e.Incarnation,
			Status:      member.Status(e.Status),
		})
	}
	return d
}
