package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/edge-immersion/coic/internal/cache"
	"github.com/edge-immersion/coic/internal/feature"
	"github.com/edge-immersion/coic/internal/wire"
)

// Edge is the mobile-edge node of Figure 1: it holds the IC cache keyed
// by feature descriptor and either answers requests from it or forwards
// them to the cloud. One Edge serves many clients; cooperation across
// users falls out of the shared cache, and cooperation across edges is
// the optional peer list.
type Edge struct {
	Params Params
	Cache  *cache.SimilarityCache

	// PrivacyK is the k-anonymity gate on cross-user sharing, this
	// reproduction's take on the paper's "security/privacy protection"
	// future work: a cached result is only served to a user other than
	// its contributors once at least PrivacyK distinct users have
	// requested it. Below the threshold, other users miss (and add
	// themselves as contributors via the insert path); a user always
	// sees their own cached results. 0 or 1 disables the gate.
	PrivacyK int

	// inflight coalesces concurrent wall-clock misses on the same (or
	// similar) descriptor into one upstream fetch; the TCP EdgeServer
	// resolves every miss through it.
	inflight *cache.InflightTable
	// inflightMode governs how *virtual-time* lookups treat entries whose
	// producing fetch has not yet completed at the lookup instant.
	inflightMode InflightMode

	mu        sync.Mutex
	fed       *cache.Federation
	replicate bool
	peerSeq   int
	stats     EdgeStats
	// readyAt records, per store key, the virtual instant the fetch that
	// inserted it completed. Only consulted when inflightMode is not
	// InflightInstant; entries are dropped lazily once they mature.
	readyAt map[string]time.Time
	// inserters tracks which users computed (and inserted) each entry;
	// interest tracks every distinct user who has asked for it. The gate
	// opens once len(interest) reaches PrivacyK — content K users
	// demonstrably want is no longer attributable to any one of them.
	inserters map[string]map[int]struct{}
	interest  map[string]map[int]struct{}
}

// InflightMode selects how a virtual-time lookup treats a cache entry
// whose producing fetch has not yet completed at the lookup's virtual
// instant. The discrete-event engine replays requests one at a time, so
// without this knob an insert made while "processing" request A is
// instantly visible to request B even when B's virtual timestamp falls
// inside A's cloud round trip — optimistically hiding the redundant
// fetches that concurrent bursts really cause.
type InflightMode int

// Virtual-time in-flight handling.
const (
	// InflightInstant is the seed behaviour: inserts are visible to every
	// later-processed event regardless of virtual timing. Kept as the
	// default so calibrated figures (2a/2b, hit-ratio sweeps) are
	// unchanged.
	InflightInstant InflightMode = iota
	// InflightSerial is the honest no-coalescing replay: an entry still in
	// flight at the lookup instant reads as a miss, and the request pays
	// its own full fetch — what a serial edge really does under a burst.
	InflightSerial
	// InflightCoalesce joins the in-flight fetch: the lookup waits until
	// the fetch's virtual completion and shares its result, paying the
	// residual wait instead of a second upstream fetch.
	InflightCoalesce
)

// String names the mode for experiment output.
func (m InflightMode) String() string {
	switch m {
	case InflightSerial:
		return "serial"
	case InflightCoalesce:
		return "coalesce"
	default:
		return "instant"
	}
}

// EdgeStats counts per-task outcomes at the edge.
type EdgeStats struct {
	Lookups  map[wire.Task]uint64
	Exact    map[wire.Task]uint64
	Similar  map[wire.Task]uint64
	Misses   map[wire.Task]uint64
	PeerHits uint64
	// Coalesced counts virtual-time lookups that joined an in-flight
	// fetch instead of paying their own (InflightCoalesce mode only);
	// each one is an upstream fetch saved. Wall-clock coalescing is
	// counted by the Inflight() table instead.
	Coalesced uint64
	Inserts   uint64
	// RemoteInserts counts inserts published to this edge by federated
	// peers (this edge is the key's consistent-hash home); they are also
	// included in Inserts.
	RemoteInserts uint64
	// PrivacyBlocked counts hits withheld by the k-anonymity gate.
	PrivacyBlocked uint64
}

func newEdgeStats() EdgeStats {
	return EdgeStats{
		Lookups: map[wire.Task]uint64{},
		Exact:   map[wire.Task]uint64{},
		Similar: map[wire.Task]uint64{},
		Misses:  map[wire.Task]uint64{},
	}
}

// EdgeOption configures an Edge.
type EdgeOption func(*Edge)

// WithCachePolicy overrides the default LRU eviction policy.
func WithCachePolicy(p cache.Policy) EdgeOption {
	return func(e *Edge) {
		e.Cache = cache.NewSimilarity(cache.SimilarityConfig{
			Capacity:  e.Params.EdgeCacheBytes,
			Policy:    p,
			Threshold: e.Params.Threshold,
		})
	}
}

// WithCacheIndex overrides the vector index (e.g. feature.NewLSH for the
// A-index ablation).
func WithCacheIndex(idx feature.Index) EdgeOption {
	return func(e *Edge) {
		e.Cache = cache.NewSimilarity(cache.SimilarityConfig{
			Capacity:  e.Params.EdgeCacheBytes,
			Index:     idx,
			Threshold: e.Params.Threshold,
		})
	}
}

// WithCacheCapacity overrides the capacity in bytes.
func WithCacheCapacity(capacity int64) EdgeOption {
	return func(e *Edge) {
		e.Params.EdgeCacheBytes = capacity
		e.Cache = cache.NewSimilarity(cache.SimilarityConfig{
			Capacity:  capacity,
			Threshold: e.Params.Threshold,
		})
	}
}

// WithPrivacyK enables the k-anonymity sharing gate.
func WithPrivacyK(k int) EdgeOption {
	return func(e *Edge) { e.PrivacyK = k }
}

// WithInflightMode selects the virtual-time in-flight policy (burst
// experiments use InflightSerial vs InflightCoalesce; the default
// InflightInstant preserves the calibrated single-request figures).
func WithInflightMode(m InflightMode) EdgeOption {
	return func(e *Edge) { e.inflightMode = m }
}

// DefaultStoreShards stripes the default edge cache so the concurrent
// request handlers of the TCP server (and peer probes from federated
// edges) don't serialise on one store mutex. 8 stripes keep the per-shard
// capacity (EdgeCacheBytes/8 = 32 MB at defaults) above the largest
// cacheable value, the 15 MB scene model.
const DefaultStoreShards = 8

// minShardBytes floors the per-stripe capacity: a stripe is an eviction
// domain and must comfortably hold the largest cacheable values, so
// small caches (capacity-ablation edges) shed stripes down to a single
// mutex rather than fragment into stripes nothing fits in.
const minShardBytes = 16 << 20

// storeShards picks the stripe count for an edge cache of the given
// capacity.
func storeShards(capacity int64) int {
	shards := DefaultStoreShards
	for shards > 1 && capacity/int64(shards) < minShardBytes {
		shards /= 2
	}
	return shards
}

// NewEdge builds an edge with the configured IC cache.
func NewEdge(p Params, opts ...EdgeOption) *Edge {
	e := &Edge{
		Params: p,
		Cache: cache.NewSimilarity(cache.SimilarityConfig{
			Capacity:  p.EdgeCacheBytes,
			Threshold: p.Threshold,
			Shards:    storeShards(p.EdgeCacheBytes),
		}),
		inflight:  cache.NewInflightTable(p.Threshold),
		replicate: true,
		stats:     newEdgeStats(),
		inserters: map[string]map[int]struct{}{},
		interest:  map[string]map[int]struct{}{},
		readyAt:   map[string]time.Time{},
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Peer registers other edges for broadcast cooperative lookup: on a local
// miss every peer is probed in registration order, at a flat
// EdgeLookupTime per hop (no modelled peer network). Peering is symmetric
// only if both sides call Peer. This is the seed reproduction's
// cooperation mode; federations built by Federate replace it with
// consistent-hash routing over modelled edge↔edge links.
func (e *Edge) Peer(others ...*Edge) {
	e.mu.Lock()
	if e.fed == nil {
		e.fed = cache.NewFederation("", nil)
	}
	fed := e.fed
	seq := e.peerSeq
	e.peerSeq += len(others)
	e.mu.Unlock()
	for i, p := range others {
		p := p
		fed.AddPeer(fmt.Sprintf("peer-%d", seq+i), cache.Peer{
			Probe: func(_ context.Context, requester int, task uint8, desc feature.Descriptor) ([]byte, cache.LookupResult, time.Duration) {
				v, res := p.PeerProbe(requester, desc)
				return v, res, p.Params.EdgeLookupTime
			},
		})
	}
}

// SetFederation attaches a federation view built by Federate (virtual
// time) or an EdgeServer (TCP). replicate controls whether peer hits are
// adopted into the local cache so the next local request hits directly.
func (e *Edge) SetFederation(fed *cache.Federation, replicate bool) {
	e.mu.Lock()
	e.fed = fed
	e.replicate = replicate
	e.mu.Unlock()
}

// Federation returns the attached federation view (nil when standalone).
func (e *Edge) Federation() *cache.Federation {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fed
}

// LookupResult describes where an edge lookup resolved.
type LookupResult struct {
	Value   []byte
	Outcome cache.Outcome
	// Distance is the descriptor distance on similar hits.
	Distance float64
	// FromPeer is set when a peer edge supplied the value.
	FromPeer bool
	// Peer names the federated edge that answered (empty otherwise).
	Peer string
	// Cost is the total virtual edge processing time consumed, peer hops
	// included.
	Cost time.Duration
	// PeerCost is the share of Cost spent on edge↔edge hops (lookup and
	// reply transfer plus the remote cache query); misses charge it too —
	// a failed probe is not free.
	PeerCost time.Duration
	// Coalesced is set when the lookup joined an in-flight fetch
	// (InflightCoalesce mode): the value was shared rather than refetched.
	Coalesced bool
	// Wait is the residual virtual time a coalesced lookup spent waiting
	// for the in-flight fetch to complete. Not included in Cost.
	Wait time.Duration
}

// Hit reports whether a usable cached value was found.
func (r LookupResult) Hit() bool { return r.Outcome != cache.OutcomeMiss }

// Lookup queries the cache anonymously (no privacy gating) under the
// default tenant; it is the path pre-tenant TCP callers use. ctx bounds
// any federation probe the lookup makes on a local miss.
func (e *Edge) Lookup(ctx context.Context, task wire.Task, desc feature.Descriptor) LookupResult {
	return e.LookupAs(ctx, anonymousUser, task, desc)
}

// LookupTenant is Lookup with the requesting tenant named: the tenant's
// cache ledger counts the query and any hit, and a peer hit adopted into
// the local cache charges the tenant's byte share (their traffic pulled
// it in). The match itself is tenant-blind — cross-tenant reuse is the
// point of the shared edge cache.
func (e *Edge) LookupTenant(ctx context.Context, tenant string, task wire.Task, desc feature.Descriptor) LookupResult {
	return e.lookupAtAs(ctx, anonymousUser, tenant, task, desc, time.Time{})
}

// anonymousUser marks lookups without an authenticated identity; the
// privacy gate treats every anonymous request as a fresh stranger.
const anonymousUser = -1

// LookupAs queries the cache with no virtual timestamp; in-flight
// awareness is bypassed (wall-clock callers coalesce through Inflight()
// instead).
func (e *Edge) LookupAs(ctx context.Context, user int, task wire.Task, desc feature.Descriptor) LookupResult {
	return e.LookupAtAs(ctx, user, task, desc, time.Time{})
}

// LookupAtAs is the virtual-time lookup under the default tenant; see
// lookupAtAs for the full semantics.
func (e *Edge) LookupAtAs(ctx context.Context, user int, task wire.Task, desc feature.Descriptor, now time.Time) LookupResult {
	return e.lookupAtAs(ctx, user, DefaultTenant, task, desc, now)
}

// lookupAtAs queries the local cache for user at virtual instant now,
// then the federation: the key's home edge under consistent-hash routing,
// or every peer in order under broadcast cooperation. A peer hit is (by
// default) copied into the local cache so the next local request hits
// directly — the cooperative sharing of the paper's title. When PrivacyK
// is set, results contributed by fewer than K distinct users are withheld
// from strangers. A non-zero now engages the virtual in-flight policy
// (see InflightMode); a zero now behaves as InflightInstant. ctx bounds
// the federation probe phase: TCP peers honour its deadline and
// cancellation, virtual-time probes ignore it. tenant names whose cache
// ledger the query is accounted to.
func (e *Edge) lookupAtAs(ctx context.Context, user int, tenant string, task wire.Task, desc feature.Descriptor, now time.Time) LookupResult {
	e.mu.Lock()
	e.stats.Lookups[task]++
	fed := e.fed
	replicate := e.replicate
	e.mu.Unlock()

	cost := e.Params.EdgeLookupTime
	if v, res := e.Cache.LookupAs(tenant, desc); res.Hit() {
		if !e.shareAllowed(user, res.Key) {
			e.mu.Lock()
			e.stats.PrivacyBlocked++
			e.stats.Misses[task]++
			e.mu.Unlock()
			return LookupResult{Outcome: cache.OutcomeMiss, Cost: cost}
		}
		wait, pending := e.virtualPending(res.Key, now)
		if !pending || e.inflightMode == InflightCoalesce {
			e.mu.Lock()
			if res.Outcome == cache.OutcomeExact {
				e.stats.Exact[task]++
			} else {
				e.stats.Similar[task]++
			}
			if pending {
				e.stats.Coalesced++
			}
			e.mu.Unlock()
			return LookupResult{
				Value: v, Outcome: res.Outcome, Distance: res.Distance,
				Cost: cost, Coalesced: pending, Wait: wait,
			}
		}
		// InflightSerial: the producing fetch has not completed at this
		// virtual instant, so an honest serial edge misses and pays its
		// own fetch — fall through to the federation/cloud path.
	}
	var peerCost time.Duration
	if fed != nil {
		v, res, peer, pc, ok := fed.Lookup(ctx, user, uint8(task), desc.Key(), desc)
		peerCost = pc
		cost += peerCost
		if ok {
			if replicate {
				// Adopt the result locally (cooperative fill), charged to
				// the tenant whose traffic pulled it in.
				_ = e.Cache.InsertAs(tenant, desc, v, 1)
			}
			e.mu.Lock()
			e.stats.PeerHits++
			if res.Outcome == cache.OutcomeExact {
				e.stats.Exact[task]++
			} else {
				e.stats.Similar[task]++
			}
			e.mu.Unlock()
			return LookupResult{
				Value: v, Outcome: res.Outcome, Distance: res.Distance,
				FromPeer: true, Peer: peer, Cost: cost, PeerCost: peerCost,
			}
		}
	}
	e.mu.Lock()
	e.stats.Misses[task]++
	e.mu.Unlock()
	return LookupResult{Outcome: cache.OutcomeMiss, Cost: cost, PeerCost: peerCost}
}

// virtualPending reports whether key's producing fetch is still in
// flight at virtual instant now, and the residual wait until it lands.
// Matured entries are dropped so the map tracks only open fetches.
func (e *Edge) virtualPending(key string, now time.Time) (time.Duration, bool) {
	if now.IsZero() || e.inflightMode == InflightInstant {
		return 0, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ready, ok := e.readyAt[key]
	if !ok {
		return 0, false
	}
	if !ready.After(now) {
		delete(e.readyAt, key)
		return 0, false
	}
	return ready.Sub(now), true
}

// Inflight is the wall-clock miss-coalescing table: the TCP EdgeServer
// resolves every cache miss through it so concurrent misses on the same
// (or similar) descriptor trigger exactly one upstream fetch.
func (e *Edge) Inflight() *cache.InflightTable { return e.inflight }

// InflightModeSet reports the configured virtual-time in-flight policy.
func (e *Edge) InflightModeSet() InflightMode { return e.inflightMode }

// PeerProbe is the lookup a federated peer performs on this edge's
// behalf: local cache only — never this edge's own peers, never the
// cloud — so a federated lookup is bounded at one hop and cannot loop.
// The requester's identity passes through the privacy gate exactly as a
// local lookup would; blocked entries read as misses. Peer probes do not
// count toward this edge's Lookups/Misses (they are the *requesting*
// edge's traffic), but blocked ones do count PrivacyBlocked here, where
// the blocking happened.
func (e *Edge) PeerProbe(requester int, desc feature.Descriptor) ([]byte, cache.LookupResult) {
	v, res := e.Cache.Lookup(desc)
	if !res.Hit() {
		return nil, cache.LookupResult{Outcome: cache.OutcomeMiss}
	}
	if !e.shareAllowed(requester, res.Key) {
		e.mu.Lock()
		e.stats.PrivacyBlocked++
		e.mu.Unlock()
		return nil, cache.LookupResult{Outcome: cache.OutcomeMiss}
	}
	return v, res
}

// AdoptRemote inserts a result published by a federated peer (this edge
// is the key's consistent-hash home). The contributor is anonymous: the
// inserting user's identity never crosses the edge↔edge boundary.
func (e *Edge) AdoptRemote(desc feature.Descriptor, value []byte, costHint float64) {
	if err := e.Cache.Insert(desc, value, costHint); err == nil {
		e.mu.Lock()
		e.stats.Inserts++
		e.stats.RemoteInserts++
		e.mu.Unlock()
	}
}

// shareAllowed applies the k-anonymity gate. A user may read an entry if
// they inserted it themselves, or once PrivacyK distinct users have
// previously requested it (the membership check runs before the caller
// is registered, so the gate genuinely withholds the first K-1
// strangers). Blocked requests register interest, moving the entry
// toward unlocking.
func (e *Edge) shareAllowed(user int, key string) bool {
	if e.PrivacyK <= 1 {
		return true
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if user != anonymousUser {
		if _, mine := e.inserters[key][user]; mine {
			return true
		}
	}
	allowed := len(e.interest[key]) >= e.PrivacyK
	if user != anonymousUser {
		if e.interest[key] == nil {
			e.interest[key] = map[int]struct{}{}
		}
		e.interest[key][user] = struct{}{}
	}
	return allowed
}

// Insert stores a task result anonymously under the default tenant.
func (e *Edge) Insert(desc feature.Descriptor, value []byte, costHint float64) time.Duration {
	return e.InsertAs(anonymousUser, desc, value, costHint)
}

// InsertTenant stores a task result charged against tenant's cache byte
// share; a tenant at its cap serves the value through uncached (the
// insert is silently skipped, like any other best-effort insert failure).
func (e *Edge) InsertTenant(tenant string, desc feature.Descriptor, value []byte, costHint float64) time.Duration {
	return e.insertAtAs(anonymousUser, tenant, desc, value, costHint, time.Time{})
}

// InsertAs stores a task result with no virtual timestamp (wall-clock
// callers; the entry is immediately visible).
func (e *Edge) InsertAs(user int, desc feature.Descriptor, value []byte, costHint float64) time.Duration {
	return e.InsertAtAs(user, desc, value, costHint, time.Time{})
}

// InsertAtAs is the virtual-time insert under the default tenant; see
// insertAtAs.
func (e *Edge) InsertAtAs(user int, desc feature.Descriptor, value []byte, costHint float64, at time.Time) time.Duration {
	return e.insertAtAs(user, DefaultTenant, desc, value, costHint, at)
}

// insertAtAs stores a task result under its descriptor on behalf of user,
// returning the virtual insertion cost. at is the virtual instant the
// insert begins; when an in-flight policy is active, the entry is
// considered ready — visible to honestly-replayed lookups — only from
// at + EdgeInsertTime. Values too large for the cache (or over tenant's
// byte share) are silently skipped (the request already has its answer;
// caching is best-effort). Under consistent-hash federation the result is
// also published to the key's home edge — off the critical path, so the
// publish adds no user-visible latency.
func (e *Edge) insertAtAs(user int, tenant string, desc feature.Descriptor, value []byte, costHint float64, at time.Time) time.Duration {
	if err := e.Cache.InsertAs(tenant, desc, value, costHint); err == nil {
		e.mu.Lock()
		e.stats.Inserts++
		if !at.IsZero() && e.inflightMode != InflightInstant {
			// Keep the earliest maturity: once any fetch's copy of the
			// value is ready, a serial edge hits — a duplicate fetch
			// completing later must not re-open the in-flight window.
			key := desc.Key()
			ready := at.Add(e.Params.EdgeInsertTime)
			if cur, ok := e.readyAt[key]; !ok || ready.Before(cur) {
				e.readyAt[key] = ready
			}
		}
		if user != anonymousUser {
			key := desc.Key()
			if e.inserters[key] == nil {
				e.inserters[key] = map[int]struct{}{}
			}
			e.inserters[key][user] = struct{}{}
			if e.interest[key] == nil {
				e.interest[key] = map[int]struct{}{}
			}
			e.interest[key][user] = struct{}{}
		}
		fed := e.fed
		e.mu.Unlock()
		if fed != nil {
			fed.Publish(desc, value, costHint)
		}
	}
	return e.Params.EdgeInsertTime
}

// Stats returns a snapshot of edge counters.
func (e *Edge) Stats() EdgeStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := newEdgeStats()
	for k, v := range e.stats.Lookups {
		out.Lookups[k] = v
	}
	for k, v := range e.stats.Exact {
		out.Exact[k] = v
	}
	for k, v := range e.stats.Similar {
		out.Similar[k] = v
	}
	for k, v := range e.stats.Misses {
		out.Misses[k] = v
	}
	out.PeerHits = e.stats.PeerHits
	out.Coalesced = e.stats.Coalesced
	out.Inserts = e.stats.Inserts
	out.RemoteInserts = e.stats.RemoteInserts
	out.PrivacyBlocked = e.stats.PrivacyBlocked
	return out
}

// HitRatio reports (exact+similar)/lookups across all tasks.
func (s EdgeStats) HitRatio() float64 {
	var hits, total uint64
	for _, v := range s.Lookups {
		total += v
	}
	for _, v := range s.Exact {
		hits += v
	}
	for _, v := range s.Similar {
		hits += v
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
