package core

import (
	"context"
	"fmt"
	"time"

	"github.com/edge-immersion/coic/internal/cache"
	"github.com/edge-immersion/coic/internal/dnn"
	"github.com/edge-immersion/coic/internal/feature"
	"github.com/edge-immersion/coic/internal/metrics"
	"github.com/edge-immersion/coic/internal/netsim"
	"github.com/edge-immersion/coic/internal/pano"
	"github.com/edge-immersion/coic/internal/sim"
	"github.com/edge-immersion/coic/internal/trace"
	"github.com/edge-immersion/coic/internal/vision"
	"github.com/edge-immersion/coic/internal/wire"
)

// epoch anchors all virtual-time experiments.
var epoch = time.Date(2018, 8, 20, 9, 0, 0, 0, time.UTC)

// Fig2aRow is one network condition of Figure 2a: recognition latency for
// the Origin baseline, a CoIC cache hit and a CoIC cache miss.
type Fig2aRow struct {
	Condition netsim.Condition
	Origin    Breakdown
	Hit       Breakdown
	Miss      Breakdown
}

// Reduction is the paper's headline metric: the relative latency saving
// of a cache hit over the origin baseline.
func (r Fig2aRow) Reduction() float64 {
	o := r.Origin.Total()
	if o == 0 {
		return 0
	}
	return 1 - float64(r.Hit.Total())/float64(o)
}

// RunFig2a regenerates Figure 2a: one recognition request per mode per
// network condition. The "miss" request runs first on a cold cache (and
// fills it); the "hit" request observes the same object from a different
// viewpoint, exercising the similarity match; the origin request bypasses
// the cache. Each measurement runs on freshly reset links so queueing
// from one mode cannot pollute another.
func RunFig2a(p Params) ([]Fig2aRow, error) {
	cloud := NewCloud(p)
	var rows []Fig2aRow
	for _, cond := range netsim.Fig2aConditions() {
		topo := netsim.NewTopology(cond, p.Seed)
		edge := NewEdge(p)
		client := NewClient(0, p)
		sess := NewSession(client, edge, cloud, topo)

		const class = vision.ClassStopSign
		// Cold cache: this is the Cache Miss bar (and it fills the cache).
		miss, missRes, err := sess.Recognize(context.Background(), epoch, class, 1001, ModeCoIC)
		if err != nil {
			return nil, fmt.Errorf("fig2a %s miss: %w", cond.Name, err)
		}
		if miss.Outcome != cache.OutcomeMiss {
			return nil, fmt.Errorf("fig2a %s: cold request was not a miss (%v)", cond.Name, miss.Outcome)
		}

		// Same object, different viewpoint: the Cache Hit bar.
		topo.Reset()
		hit, hitRes, err := sess.Recognize(context.Background(), epoch, class, 2002, ModeCoIC)
		if err != nil {
			return nil, fmt.Errorf("fig2a %s hit: %w", cond.Name, err)
		}
		if hit.Outcome == cache.OutcomeMiss {
			return nil, fmt.Errorf("fig2a %s: warm request missed — threshold %v too tight", cond.Name, p.Threshold)
		}
		if hitRes.Label != missRes.Label {
			return nil, fmt.Errorf("fig2a %s: cached label %q != cloud label %q", cond.Name, hitRes.Label, missRes.Label)
		}

		// Origin baseline.
		topo.Reset()
		origin, _, err := sess.Recognize(context.Background(), epoch, class, 3003, ModeOrigin)
		if err != nil {
			return nil, fmt.Errorf("fig2a %s origin: %w", cond.Name, err)
		}

		rows = append(rows, Fig2aRow{Condition: cond, Origin: origin, Hit: hit, Miss: miss})
	}
	return rows, nil
}

// Fig2bRow is one model size of Figure 2b: load latency for Origin, hit
// and miss.
type Fig2bRow struct {
	ModelKB   int
	OBJXBytes int
	CMFBytes  int
	Origin    Breakdown
	Hit       Breakdown
	Miss      Breakdown
}

// Reduction mirrors Fig2aRow.Reduction for the rendering task.
func (r Fig2bRow) Reduction() float64 {
	o := r.Origin.Total()
	if o == 0 {
		return 0
	}
	return 1 - float64(r.Hit.Total())/float64(o)
}

// Fig2bCondition is the fixed network condition used for Figure 2b
// (the paper does not vary the network in 2b; 200/20 sits mid-sweep).
var Fig2bCondition = netsim.Condition{Name: "200/20", MobileEdge: 200, EdgeCloud: 20}

// RunFig2b regenerates Figure 2b: load latency of the full model-size
// ladder under Origin / Cache Hit / Cache Miss.
func RunFig2b(p Params) ([]Fig2bRow, error) {
	return RunFig2bSizes(p, Fig2bModelKB)
}

// RunFig2bSizes runs the Figure 2b experiment over a custom subset of the
// ladder (tests use a trimmed one; the harness runs all six sizes).
func RunFig2bSizes(p Params, sizesKB []int) ([]Fig2bRow, error) {
	cloud := NewCloud(p)
	var rows []Fig2bRow
	for _, kb := range sizesKB {
		id := Fig2bModelID(kb)
		topo := netsim.NewTopology(Fig2bCondition, p.Seed)
		edge := NewEdge(p)
		client := NewClient(0, p)
		sess := NewSession(client, edge, cloud, topo)

		miss, err := sess.Render(context.Background(), epoch, id, ModeCoIC)
		if err != nil {
			return nil, fmt.Errorf("fig2b %dKB miss: %w", kb, err)
		}
		if miss.Outcome != cache.OutcomeMiss {
			return nil, fmt.Errorf("fig2b %dKB: cold request was not a miss", kb)
		}

		topo.Reset()
		hit, err := sess.Render(context.Background(), epoch, id, ModeCoIC)
		if err != nil {
			return nil, fmt.Errorf("fig2b %dKB hit: %w", kb, err)
		}
		if hit.Outcome != cache.OutcomeExact {
			return nil, fmt.Errorf("fig2b %dKB: warm request was %v, want exact hit", kb, hit.Outcome)
		}

		topo.Reset()
		origin, err := sess.Render(context.Background(), epoch, id, ModeOrigin)
		if err != nil {
			return nil, fmt.Errorf("fig2b %dKB origin: %w", kb, err)
		}

		objx, cmf, err := cloud.ModelSizes(id)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig2bRow{
			ModelKB: kb, OBJXBytes: objx, CMFBytes: cmf,
			Origin: origin, Hit: hit, Miss: miss,
		})
	}
	return rows, nil
}

// SimResult aggregates a trace-driven multi-user simulation.
type SimResult struct {
	Events   int
	Errors   int
	PerTask  map[wire.Task]*metrics.Histogram
	All      *metrics.Histogram
	Outcomes map[cache.Outcome]int
	Edge     EdgeStats
	// SimulatedSpan is the virtual time covered by the trace replay.
	SimulatedSpan time.Duration
}

// HitRatio reports the share of CoIC lookups answered from cache.
func (r *SimResult) HitRatio() float64 { return r.Edge.HitRatio() }

// RunTrace replays a workload trace through one edge with any number of
// users, using the discrete-event engine so requests contend for links
// and share the cache in timestamp order.
func RunTrace(p Params, cond netsim.Condition, events []trace.Event, mode Mode, opts ...EdgeOption) (*SimResult, error) {
	cloud := NewCloud(p)
	edge := NewEdge(p, opts...)
	topo := netsim.NewTopology(cond, p.Seed)

	// All clients share trunk weights (one network build, many users).
	full := dnn.NewEdgeNet(p.Classes(), p.DNNInput, p.Seed)
	trunk := full.Trunk()
	clients := map[int]*Client{}
	sessions := map[int]*Session{}
	clientFor := func(user int) *Session {
		if s, ok := sessions[user]; ok {
			return s
		}
		c := &Client{ID: user, Params: p, Trunk: trunk}
		clients[user] = c
		s := NewSession(c, edge, cloud, topo)
		sessions[user] = s
		return s
	}

	res := &SimResult{
		PerTask:  map[wire.Task]*metrics.Histogram{},
		All:      &metrics.Histogram{},
		Outcomes: map[cache.Outcome]int{},
	}
	for _, task := range []wire.Task{wire.TaskRecognize, wire.TaskRender, wire.TaskPano} {
		res.PerTask[task] = &metrics.Histogram{}
	}

	eng := sim.New(epoch)
	// Traces render the per-class annotation models: realistic AR
	// overlays, and small enough that a long trace stays cheap to
	// replay (the Figure 2b ladder is exercised by RunFig2b).
	renderModels := cloud.AnnotationModelIDs()
	var lastEnd time.Time
	for _, ev := range events {
		ev := ev
		eng.Schedule(epoch.Add(ev.At), func() {
			sess := clientFor(ev.User)
			var (
				b   Breakdown
				err error
			)
			switch ev.Task {
			case wire.TaskRecognize:
				class := vision.Class(ev.Object % int(vision.NumClasses))
				b, _, err = sess.Recognize(context.Background(), eng.Now(), class, ev.ViewSeed, mode)
			case wire.TaskRender:
				id := renderModels[ev.Object%len(renderModels)]
				b, err = sess.Render(context.Background(), eng.Now(), id, mode)
			case wire.TaskPano:
				video := fmt.Sprintf("video-%d", ev.Object%4)
				vp := pano.Viewport{Yaw: float64(ev.ViewSeed%628) / 100, FOV: 1.6}
				b, err = sess.Pano(context.Background(), eng.Now(), video, ev.Frame, vp, mode)
			default:
				err = fmt.Errorf("core: unknown task %v", ev.Task)
			}
			res.Events++
			if err != nil {
				res.Errors++
				return
			}
			res.PerTask[ev.Task].Record(b.Total())
			res.All.Record(b.Total())
			res.Outcomes[b.Outcome]++
			if b.End.After(lastEnd) {
				lastEnd = b.End
			}
		})
	}
	eng.Run()
	res.Edge = edge.Stats()
	if !lastEnd.IsZero() {
		res.SimulatedSpan = lastEnd.Sub(epoch)
	}
	return res, nil
}

// Placement decides which edge serves which user in a multi-edge
// deployment.
type Placement int

// Client placement strategies.
const (
	// PlaceByCell maps a user's cell to an edge, so users who share
	// physical locality (and therefore content interest, per the trace
	// generator's locality model) land on the same edge. This is the
	// deployment the paper implies: an edge per access point.
	PlaceByCell Placement = iota
	// PlaceScatter spreads users over edges round-robin regardless of
	// cell — the adversarial placement where co-interested users end up
	// behind different edges, so only federation can recover the sharing.
	PlaceScatter
)

// String names the placement for experiment output.
func (p Placement) String() string {
	if p == PlaceByCell {
		return "by-cell"
	}
	return "scatter"
}

// FederationRow is one point of the federation ablation.
type FederationRow struct {
	Edges     int
	Placement Placement
	Federated bool
	Events    int
	Errors    int
	// HitRatio aggregates exact+similar+peer hits over lookups across
	// every edge.
	HitRatio float64
	// PeerHits counts lookups answered by a federated peer; Published
	// counts results pushed to their consistent-hash home edge.
	PeerHits  uint64
	Published uint64
	// CloudFetches counts requests that fell through to the cloud — the
	// offload metric: fewer cloud fetches means less WAN traffic and
	// cloud compute.
	CloudFetches int
	P50, P99     time.Duration
}

// FederationConfigExp parameterises RunFederation.
type FederationConfigExp struct {
	// Cond is the per-edge client/cloud network condition (the 200/20
	// mid-sweep when zero).
	Cond netsim.Condition
	// PeerCond shapes the edge↔edge mesh (DefaultPeerCondition when
	// zero).
	PeerCond netsim.PeerCondition
	// EdgeCounts sweeps the federation size (e.g. 1,2,4,8).
	EdgeCounts []int
	// Placements sweeps client placement (both when empty).
	Placements []Placement
	// Events is the shared workload replayed at every point, so rows are
	// comparable.
	Events []trace.Event
	// Baseline also runs each point with federation disabled (isolated
	// edges), quantifying what cooperation buys.
	Baseline bool
}

// RunFederation is the multi-edge ablation: the same workload replayed
// over 1..N edges × client placement, with edges federated via consistent
// hashing (and, optionally, isolated as a baseline). As edges are added,
// aggregate cache capacity grows; federation keeps the keyspace unified
// (one peer hop instead of a cloud round trip), so the aggregate hit
// ratio rises and cloud traffic falls — the multi-edge extension of the
// paper's single-edge cooperative claim.
func RunFederation(p Params, cfg FederationConfigExp) ([]FederationRow, error) {
	if cfg.Cond.MobileEdge == 0 {
		cfg.Cond = netsim.Condition{Name: "200/20", MobileEdge: 200, EdgeCloud: 20}
	}
	if cfg.PeerCond.BandwidthMbps == 0 {
		cfg.PeerCond = netsim.DefaultPeerCondition()
	}
	if len(cfg.Placements) == 0 {
		cfg.Placements = []Placement{PlaceByCell, PlaceScatter}
	}
	var rows []FederationRow
	for _, n := range cfg.EdgeCounts {
		for _, placement := range cfg.Placements {
			modes := []bool{true}
			if cfg.Baseline {
				modes = []bool{false, true}
			}
			if n == 1 {
				// A single edge has nobody to federate with; one row.
				modes = []bool{false}
			}
			for _, federated := range modes {
				row, err := runFederationPoint(p, cfg, n, placement, federated)
				if err != nil {
					return nil, fmt.Errorf("federation %d edges %s federated=%v: %w", n, placement, federated, err)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

func runFederationPoint(p Params, cfg FederationConfigExp, n int, placement Placement, federated bool) (FederationRow, error) {
	cloud := NewCloud(p)
	edges := make([]*Edge, n)
	topos := make([]*netsim.Topology, n)
	for i := range edges {
		edges[i] = NewEdge(p)
		topos[i] = netsim.NewTopology(cfg.Cond, p.Seed+uint64(i))
	}
	if federated && n > 1 {
		Federate(edges, FederationConfig{
			Mesh:        netsim.NewMesh(n, cfg.PeerCond, p.Seed),
			Partitioned: true,
			Replicate:   true,
		})
	}

	edgeFor := func(ev trace.Event) int {
		if placement == PlaceByCell {
			return ev.Cell % n
		}
		return ev.User % n
	}

	// All clients share trunk weights (one network build, many users).
	full := dnn.NewEdgeNet(p.Classes(), p.DNNInput, p.Seed)
	trunk := full.Trunk()
	sessions := map[int]*Session{}
	sessionFor := func(user, edge int) *Session {
		if s, ok := sessions[user]; ok {
			return s
		}
		c := &Client{ID: user, Params: p, Trunk: trunk}
		s := NewSession(c, edges[edge], cloud, topos[edge])
		sessions[user] = s
		return s
	}

	row := FederationRow{Edges: n, Placement: placement, Federated: federated && n > 1}
	all := &metrics.Histogram{}
	renderModels := cloud.AnnotationModelIDs()
	eng := sim.New(epoch)
	for _, ev := range cfg.Events {
		ev := ev
		eng.Schedule(epoch.Add(ev.At), func() {
			sess := sessionFor(ev.User, edgeFor(ev))
			var (
				b   Breakdown
				err error
			)
			switch ev.Task {
			case wire.TaskRecognize:
				class := vision.Class(ev.Object % int(vision.NumClasses))
				b, _, err = sess.Recognize(context.Background(), eng.Now(), class, ev.ViewSeed, ModeCoIC)
			case wire.TaskRender:
				id := renderModels[ev.Object%len(renderModels)]
				b, err = sess.Render(context.Background(), eng.Now(), id, ModeCoIC)
			case wire.TaskPano:
				video := fmt.Sprintf("video-%d", ev.Object%4)
				vp := pano.Viewport{Yaw: float64(ev.ViewSeed%628) / 100, FOV: 1.6}
				b, err = sess.Pano(context.Background(), eng.Now(), video, ev.Frame, vp, ModeCoIC)
			default:
				err = fmt.Errorf("core: unknown task %v", ev.Task)
			}
			row.Events++
			if err != nil {
				row.Errors++
				return
			}
			if b.Cloud > 0 {
				row.CloudFetches++
			}
			all.Record(b.Total())
		})
	}
	eng.Run()

	var lookups, hits uint64
	for _, e := range edges {
		st := e.Stats()
		row.PeerHits += st.PeerHits
		for _, v := range st.Lookups {
			lookups += v
		}
		for _, v := range st.Exact {
			hits += v
		}
		for _, v := range st.Similar {
			hits += v
		}
		if fed := e.Federation(); fed != nil {
			row.Published += fed.Stats().Published
		}
	}
	if lookups > 0 {
		row.HitRatio = float64(hits) / float64(lookups)
	}
	row.P50, row.P99 = all.Median(), all.P99()
	return row, nil
}

// ThresholdPoint is one row of the A-threshold ablation: true-hit and
// false-hit rates at a candidate similarity threshold.
type ThresholdPoint struct {
	Threshold float64
	// TruePositive: same object (different view) matched.
	TruePositive float64
	// FalsePositive: different object matched.
	FalsePositive float64
}

// RunThresholdSweep measures descriptor-distance separation: for each
// candidate threshold, how often do same-object pairs fall inside it
// (good) and different-object pairs fall inside it (bad). This is the
// experiment that justifies DefaultParams().Threshold.
func RunThresholdSweep(p Params, thresholds []float64, pairs int) []ThresholdPoint {
	client := NewClient(0, p)
	type sample struct {
		same bool
		dist float64
	}
	var samples []sample
	for i := 0; i < pairs; i++ {
		classA := vision.Class(i % int(vision.NumClasses))
		frameA := client.CaptureFrame(classA, uint64(9000+i))
		descA, _ := client.Extract(frameA)

		// Same object, new viewpoint.
		frameB := client.CaptureFrame(classA, uint64(50000+i))
		descB, _ := client.Extract(frameB)
		samples = append(samples, sample{same: true, dist: dist(descA, descB)})

		// Different object.
		classC := vision.Class((i + 1 + i/int(vision.NumClasses)) % int(vision.NumClasses))
		frameC := client.CaptureFrame(classC, uint64(90000+i))
		descC, _ := client.Extract(frameC)
		samples = append(samples, sample{same: false, dist: dist(descA, descC)})
	}

	var out []ThresholdPoint
	for _, th := range thresholds {
		var tp, tpn, fp, fpn float64
		for _, s := range samples {
			if s.same {
				tpn++
				if s.dist <= th {
					tp++
				}
			} else {
				fpn++
				if s.dist <= th {
					fp++
				}
			}
		}
		out = append(out, ThresholdPoint{Threshold: th, TruePositive: tp / tpn, FalsePositive: fp / fpn})
	}
	return out
}

func dist(a, b feature.Descriptor) float64 {
	return feature.L2Distance(a.Vec, b.Vec)
}

// ChurnRow is one point of the membership-churn ablation.
type ChurnRow struct {
	Edges int
	// Cycles is how many crash+rejoin cycles hit the fleet mid-run.
	Cycles int
	// Dynamic: the ring is rebuilt (and keys migrated) on every
	// membership change — the gossip pipeline's routing behaviour.
	// False is the static-ring baseline: dead members keep their ring
	// arc and every lookup homed there pays a cloud fetch.
	Dynamic bool
	// RF is the replication factor both modes run with.
	RF     int
	Events int
	Errors int
	// HitRatio aggregates exact+similar+peer hits over lookups across
	// every edge.
	HitRatio  float64
	PeerHits  uint64
	Published uint64
	// Repaired counts read-repair inserts (a replica answered a probe
	// its home missed).
	Repaired uint64
	// Migrated counts keys re-homed by post-change migration sweeps.
	Migrated int
	// RingVersion is the final ring version (1 when the ring never moved).
	RingVersion  uint64
	CloudFetches int
	P50, P99     time.Duration
}

// ChurnConfigExp parameterises RunChurn.
type ChurnConfigExp struct {
	// Cond is the per-edge client/cloud network condition (the 200/20
	// mid-sweep when zero); PeerCond shapes the edge↔edge mesh.
	Cond     netsim.Condition
	PeerCond netsim.PeerCondition
	// Edges is the fleet size (4 when 0); RF the replication factor
	// (2 when 0).
	Edges int
	RF    int
	// CycleCounts sweeps how many crash+rejoin cycles are spread across
	// the run (0 = stable fleet).
	CycleCounts []int
	// Events is the shared workload replayed at every point.
	Events []trace.Event
	// Baseline also runs each point against a static ring.
	Baseline bool
}

// RunChurn is the dynamic-membership ablation: the same workload
// replayed over a replicated federation while members crash and rejoin
// mid-run. In dynamic mode the ring is rebuilt on every change and
// migration sweeps re-home the moved keys (what the gossip protocol
// automates over TCP); the static baseline keeps the boot-time ring, so
// a dead member's arc of the keyspace degrades to cloud fetches until it
// returns. The gap between the two rows is what dynamic membership buys.
func RunChurn(p Params, cfg ChurnConfigExp) ([]ChurnRow, error) {
	if cfg.Cond.MobileEdge == 0 {
		cfg.Cond = netsim.Condition{Name: "200/20", MobileEdge: 200, EdgeCloud: 20}
	}
	if cfg.PeerCond.BandwidthMbps == 0 {
		cfg.PeerCond = netsim.DefaultPeerCondition()
	}
	if cfg.Edges <= 0 {
		cfg.Edges = 4
	}
	if cfg.RF <= 0 {
		cfg.RF = 2
	}
	if len(cfg.CycleCounts) == 0 {
		cfg.CycleCounts = []int{0, 1, 2}
	}
	var rows []ChurnRow
	for _, cycles := range cfg.CycleCounts {
		modes := []bool{true}
		if cfg.Baseline && cycles > 0 {
			// A stable fleet makes both modes identical; one row suffices.
			modes = []bool{false, true}
		}
		for _, dynamic := range modes {
			row, err := runChurnPoint(p, cfg, cycles, dynamic)
			if err != nil {
				return nil, fmt.Errorf("churn %d cycles dynamic=%v: %w", cycles, dynamic, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runChurnPoint(p Params, cfg ChurnConfigExp, cycles int, dynamic bool) (ChurnRow, error) {
	n := cfg.Edges
	cloud := NewCloud(p)
	edges := make([]*Edge, n)
	topos := make([]*netsim.Topology, n)
	for i := range edges {
		edges[i] = NewEdge(p)
		topos[i] = netsim.NewTopology(cfg.Cond, p.Seed+uint64(i))
	}
	mesh := netsim.NewMesh(n, cfg.PeerCond, p.Seed)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = EdgeID(i)
	}

	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	row := ChurnRow{Edges: n, Cycles: cycles, Dynamic: dynamic, RF: cfg.RF}
	staticRing := cache.NewRing(ids, 0)
	curRing := staticRing
	version := uint64(1)
	var published, repaired uint64

	// deadPeer keeps a crashed member addressable on the static ring:
	// probes miss and publishes vanish, exactly what routing to a dead
	// TCP peer degrades to after its dial backoff.
	deadPeer := cache.Peer{
		Probe: func(context.Context, int, uint8, feature.Descriptor) ([]byte, cache.LookupResult, time.Duration) {
			return nil, cache.LookupResult{Outcome: cache.OutcomeMiss}, 0
		},
		Insert: func(feature.Descriptor, []byte, float64) {},
	}

	// refederate rebuilds every live edge's federation over the current
	// membership. Dynamic mode shrinks the ring to the alive set at a
	// bumped version; the baseline keeps the full boot-time ring and
	// swaps dead members' transports for tombstones.
	refederate := func() {
		if dynamic {
			var liveIDs []string
			for i, ok := range alive {
				if ok {
					liveIDs = append(liveIDs, ids[i])
				}
			}
			curRing = cache.NewRingVersion(liveIDs, 0, version)
		}
		for i, e := range edges {
			if dynamic && !alive[i] {
				continue // a crashed member routes nothing until it rejoins
			}
			fed := cache.NewFederation(ids[i], curRing)
			fed.SetReplication(cfg.RF)
			for j, pe := range edges {
				if j == i {
					continue
				}
				if alive[j] {
					link := mesh.Link(i, j)
					fed.AddPeer(ids[j], cache.Peer{
						Probe:  peerProbe(pe, link),
						Insert: peerInsert(pe, link),
					})
				} else if !dynamic {
					fed.AddPeer(ids[j], deadPeer)
				}
			}
			if old := e.Federation(); old != nil {
				st := old.Stats()
				published += st.Published
				repaired += st.Repaired
			}
			e.SetFederation(fed, true)
		}
	}
	refederate()

	// Crash drops a member without warning (no drain — that is the
	// graceful path); in dynamic mode the survivors rebuild the ring and
	// sweep their residents so keys the dead member owned re-home from
	// surviving replicas. Rejoin brings it back warm (a restart that kept
	// its disk cache); survivors sweep again to hand over its arc.
	applyChange := func(victim int, up bool) {
		alive[victim] = up
		if !dynamic {
			refederate()
			return
		}
		version++
		prev := curRing
		refederate()
		for i, e := range edges {
			if !alive[i] {
				continue
			}
			mig := cache.NewMigrator(e.Cache, e.Federation(), 0)
			row.Migrated += mig.Sweep(context.Background(), prev)
		}
	}

	// Route each client to its cell's edge, falling over to the next
	// live one while it is down (the client reconnects elsewhere).
	edgeFor := func(ev trace.Event) int {
		base := ev.Cell % n
		for k := 0; k < n; k++ {
			if alive[(base+k)%n] {
				return (base + k) % n
			}
		}
		return base
	}

	full := dnn.NewEdgeNet(p.Classes(), p.DNNInput, p.Seed)
	trunk := full.Trunk()
	sessions := map[int]*Session{}
	sessionFor := func(user, edge int) *Session {
		key := user*n + edge
		if s, ok := sessions[key]; ok {
			return s
		}
		c := &Client{ID: user, Params: p, Trunk: trunk}
		s := NewSession(c, edges[edge], cloud, topos[edge])
		sessions[key] = s
		return s
	}

	var last time.Duration
	for _, ev := range cfg.Events {
		if ev.At > last {
			last = ev.At
		}
	}

	all := &metrics.Histogram{}
	renderModels := cloud.AnnotationModelIDs()
	eng := sim.New(epoch)
	// Spread 2*cycles membership changes evenly through the run: cycle k
	// crashes member 1+k%(n-1) (member 0 is the stable seed) and rejoins
	// it one slot later.
	for j := 0; j < 2*cycles; j++ {
		victim := 1 + (j/2)%(n-1)
		up := j%2 == 1
		at := last * time.Duration(j+1) / time.Duration(2*cycles+1)
		eng.Schedule(epoch.Add(at), func() { applyChange(victim, up) })
	}
	for _, ev := range cfg.Events {
		ev := ev
		eng.Schedule(epoch.Add(ev.At), func() {
			sess := sessionFor(ev.User, edgeFor(ev))
			var (
				b   Breakdown
				err error
			)
			switch ev.Task {
			case wire.TaskRecognize:
				class := vision.Class(ev.Object % int(vision.NumClasses))
				b, _, err = sess.Recognize(context.Background(), eng.Now(), class, ev.ViewSeed, ModeCoIC)
			case wire.TaskRender:
				id := renderModels[ev.Object%len(renderModels)]
				b, err = sess.Render(context.Background(), eng.Now(), id, ModeCoIC)
			case wire.TaskPano:
				video := fmt.Sprintf("video-%d", ev.Object%4)
				vp := pano.Viewport{Yaw: float64(ev.ViewSeed%628) / 100, FOV: 1.6}
				b, err = sess.Pano(context.Background(), eng.Now(), video, ev.Frame, vp, ModeCoIC)
			default:
				err = fmt.Errorf("core: unknown task %v", ev.Task)
			}
			row.Events++
			if err != nil {
				row.Errors++
				return
			}
			if b.Cloud > 0 {
				row.CloudFetches++
			}
			all.Record(b.Total())
		})
	}
	eng.Run()

	var lookups, hits uint64
	for _, e := range edges {
		st := e.Stats()
		row.PeerHits += st.PeerHits
		for _, v := range st.Lookups {
			lookups += v
		}
		for _, v := range st.Exact {
			hits += v
		}
		for _, v := range st.Similar {
			hits += v
		}
		if fed := e.Federation(); fed != nil {
			fst := fed.Stats()
			published += fst.Published
			repaired += fst.Repaired
		}
	}
	row.Published, row.Repaired = published, repaired
	if lookups > 0 {
		row.HitRatio = float64(hits) / float64(lookups)
	}
	row.RingVersion = curRing.Version()
	row.P50, row.P99 = all.Median(), all.P99()
	return row, nil
}
