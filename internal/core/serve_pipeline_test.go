package core

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/netsim"
	"github.com/edge-immersion/coic/internal/pano"
	"github.com/edge-immersion/coic/internal/wire"
)

// startSlowStack brings up a cloud + edge where every edge→cloud frame
// pays an extra one-way delay, stretching the fetch window so concurrency
// tests observe requests genuinely in flight together.
func startSlowStack(t testing.TB, p Params, cloudDelay time.Duration, tune func(*EdgeServer)) (string, *EdgeServer, func()) {
	t.Helper()
	cloud := NewCloud(p)
	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go (&CloudServer{Cloud: cloud}).Serve(cloudLn)

	es := &EdgeServer{
		Edge:      NewEdge(p),
		CloudAddr: cloudLn.Addr().String(),
		WrapCloud: func(c net.Conn) net.Conn { return netsim.NewShaper(c, 0, cloudDelay) },
	}
	if tune != nil {
		tune(es)
	}
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go es.Serve(edgeLn)
	return edgeLn.Addr().String(), es, func() {
		edgeLn.Close()
		cloudLn.Close()
	}
}

// startHungCloud listens and swallows every byte without ever replying —
// the pathological upstream that per-fetch timeouts exist for.
func startHungCloud(t *testing.T) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// TestTCPSimultaneousClientsOneCloudFetch is the coalescing acceptance
// test: two clients missing on the same descriptor at the same moment
// must cost exactly one cloud computation.
func TestTCPSimultaneousClientsOneCloudFetch(t *testing.T) {
	p := testParams()
	addr, es, stop := startSlowStack(t, p, 150*time.Millisecond, nil)
	defer stop()

	const clients = 2
	vp := pano.Viewport{Yaw: 0.3, FOV: 1.5}
	clis := make([]*TCPClient, clients)
	for i := range clis {
		cli, err := DialEdge(addr, NewClient(i, p), ModeCoIC, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		clis[i] = cli
	}

	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(clients)
	errs := make(chan error, clients)
	for _, cli := range clis {
		cli := cli
		go func() {
			defer done.Done()
			start.Wait()
			_, err := cli.Pano("coalesce-video", 7, vp)
			errs <- err
		}()
	}
	start.Done()
	done.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if got := es.CloudFetches(); got != 1 {
		t.Fatalf("cloud fetches = %d, want exactly 1 (the other request must coalesce)", got)
	}
	st := es.Edge.Inflight().Stats()
	if st.Fetches != 1 || st.Coalesced != clients-1 {
		t.Fatalf("inflight stats = %+v, want 1 fetch and %d coalesced", st, clients-1)
	}
}

// rawEdgeConn dials the edge and completes the hello exchange, returning
// the bare connection for pipelined frame-level tests.
func rawEdgeConn(t testing.TB, addr string, mode Mode) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	hello := wire.Message{Type: wire.MsgHello, RequestID: 1, Body: []byte{byte(mode)}}
	if err := wire.WriteMessage(conn, hello); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadMessage(conn); err != nil {
		t.Fatal(err)
	}
	return conn
}

func panoFetchMsg(t testing.TB, reqID uint64, video string, frame int) wire.Message {
	t.Helper()
	body, err := (wire.PanoFetch{VideoID: video, FrameIndex: uint32(frame)}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return wire.Message{Type: wire.MsgPanoFetch, RequestID: reqID, Body: body}
}

// TestTCPPipelinedRepliesInOrder writes a burst of requests back-to-back
// before reading anything; the replies must come back complete and in
// arrival order even though the misses resolve concurrently upstream.
func TestTCPPipelinedRepliesInOrder(t *testing.T) {
	p := testParams()
	addr, _, stop := startSlowStack(t, p, 30*time.Millisecond, nil)
	defer stop()

	conn := rawEdgeConn(t, addr, ModeCoIC)
	defer conn.Close()

	const requests = 6
	for i := 1; i <= requests; i++ {
		// Distinct frames: every request is a miss with its own fetch.
		if err := wire.WriteMessage(conn, panoFetchMsg(t, uint64(i), "pipeline-video", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= requests; i++ {
		reply, err := wire.ReadMessage(conn)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if reply.RequestID != uint64(i) {
			t.Fatalf("reply %d carries request id %d — out of order", i, reply.RequestID)
		}
		if reply.Type != wire.MsgPanoReply {
			t.Fatalf("reply %d type = %v", i, reply.Type)
		}
	}
}

// TestTCPOverloadReply floods a deliberately tiny worker pool backed by a
// hung cloud: excess requests must be rejected with CodeOverloaded, in
// order, while admitted ones fail with the fetch timeout instead of
// wedging the connection.
func TestTCPOverloadReply(t *testing.T) {
	p := testParams()
	cloudAddr, stopCloud := startHungCloud(t)
	defer stopCloud()

	es := &EdgeServer{
		Edge:         NewEdge(p),
		CloudAddr:    cloudAddr,
		Workers:      1,
		QueueDepth:   1,
		FetchTimeout: 400 * time.Millisecond,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go es.Serve(ln)

	conn := rawEdgeConn(t, ln.Addr().String(), ModeCoIC)
	defer conn.Close()

	const requests = 8
	for i := 1; i <= requests; i++ {
		if err := wire.WriteMessage(conn, panoFetchMsg(t, uint64(i), "overload-video", i)); err != nil {
			t.Fatal(err)
		}
	}
	overloaded, unavailable := 0, 0
	for i := 1; i <= requests; i++ {
		reply, err := wire.ReadMessage(conn)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if reply.RequestID != uint64(i) {
			t.Fatalf("reply %d carries request id %d — out of order", i, reply.RequestID)
		}
		if reply.Type != wire.MsgError {
			t.Fatalf("reply %d type = %v, want error", i, reply.Type)
		}
		er, err := wire.UnmarshalErrorReply(reply.Body)
		if err != nil {
			t.Fatal(err)
		}
		switch er.Code {
		case wire.CodeOverloaded:
			overloaded++
		case wire.CodeUnavailable:
			unavailable++
		default:
			t.Fatalf("reply %d code = %d", i, er.Code)
		}
	}
	// Every request gets exactly one of the two failure replies. The
	// shed/timeout split is timing-dependent: once the reply-slot budget
	// (2×(workers+queue)) is consumed the reader applies TCP backpressure
	// instead of shedding further, so later requests are admitted as the
	// stalled head drains. Both behaviours must be visible.
	if overloaded+unavailable != requests {
		t.Fatalf("replies = %d overloaded + %d unavailable, want %d total", overloaded, unavailable, requests)
	}
	if overloaded == 0 {
		t.Fatal("no request was shed with an overload reply")
	}
	if unavailable == 0 {
		t.Fatal("no admitted request surfaced the cloud fetch timeout")
	}
	if got := es.Overloads(); got != uint64(overloaded) {
		t.Fatalf("server overload counter = %d, client saw %d", got, overloaded)
	}
}

// TestTCPHungCloudFailsCoalescedGroup verifies the per-fetch timeout
// propagates to every waiter of a coalesced flight — a hung cloud must
// not wedge the group — and that the failure does not poison the
// descriptor.
func TestTCPHungCloudFailsCoalescedGroup(t *testing.T) {
	p := testParams()
	cloudAddr, stopCloud := startHungCloud(t)
	defer stopCloud()

	es := &EdgeServer{
		Edge:         NewEdge(p),
		CloudAddr:    cloudAddr,
		FetchTimeout: 300 * time.Millisecond,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go es.Serve(ln)

	const clients = 3
	vp := pano.Viewport{Yaw: 0.1, FOV: 1.4}
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(clients)
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		cli, err := DialEdge(ln.Addr().String(), NewClient(i, p), ModeCoIC, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		go func() {
			defer done.Done()
			start.Wait()
			_, err := cli.Pano("hung-video", 1, vp)
			errs <- err
		}()
	}
	start.Done()
	finished := make(chan struct{})
	go func() { done.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("coalesced group wedged behind the hung cloud")
	}
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("request against a hung cloud succeeded")
		}
	}
	if st := es.Edge.Inflight().Stats(); st.Failures == 0 {
		t.Fatalf("inflight stats = %+v, want the failed flight recorded", st)
	}
	if es.Edge.Inflight().Len() != 0 {
		t.Fatal("failed fetch left the descriptor in flight (poisoned)")
	}
}

// TestTCPOriginModeStillForwards covers the origin passthrough on the
// reworked dispatch: no cache reads, no coalescing, plain forwarding.
func TestTCPOriginModeStillForwards(t *testing.T) {
	p := testParams()
	addr, es, stop := startSlowStack(t, p, 0, nil)
	defer stop()

	conn := rawEdgeConn(t, addr, ModeOrigin)
	defer conn.Close()
	for i := 1; i <= 2; i++ {
		if err := wire.WriteMessage(conn, panoFetchMsg(t, uint64(i), "origin-video", 5)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 2; i++ {
		reply, err := wire.ReadMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		if reply.Type != wire.MsgPanoReply {
			t.Fatalf("reply type = %v", reply.Type)
		}
	}
	// Identical origin requests must both hit the cloud (no cache, no
	// coalescing on the origin path).
	if got := es.CloudFetches(); got != 2 {
		t.Fatalf("origin cloud fetches = %d, want 2", got)
	}
	if got := es.Edge.Stats().Inserts; got != 0 {
		t.Fatalf("origin mode inserted %d entries into the cache", got)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTCPClientCancelAbortsFetchAndKeepsConnection: a client whose
// context dies mid-fetch gets ctx.Err() promptly, the edge aborts the
// now-waiterless coalesced flight (last-waiter-cancels), and the same
// connection serves the next request cleanly thanks to the cancel/ack
// drain protocol.
func TestTCPClientCancelAbortsFetchAndKeepsConnection(t *testing.T) {
	p := testParams()
	addr, es, stop := startSlowStack(t, p, 400*time.Millisecond, nil)
	defer stop()

	cli, err := DialEdge(addr, NewClient(0, p), ModeCoIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	vp := pano.Viewport{Yaw: 0.2, FOV: 1.5}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		waitFor(t, "the fetch to start", func() bool { return es.Edge.Inflight().Len() == 1 })
		cancel()
	}()
	start := time.Now()
	if _, err := cli.PanoContext(ctx, "cancel-video", 3, vp); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — the client waited out the fetch instead of aborting", elapsed)
	}
	waitFor(t, "the abandoned flight to abort", func() bool {
		return es.Edge.Inflight().Stats().Canceled == 1 && es.Edge.Inflight().Len() == 0
	})

	// The connection must still be aligned: the next request round-trips.
	if _, err := cli.Pano("cancel-video", 4, vp); err != nil {
		t.Fatalf("post-cancel request failed: %v", err)
	}
}

// TestTCPCoalescedFetchSurvivesOneWaiterCancel: with two clients
// coalesced onto one cloud fetch, the canceller departs with ctx.Err()
// while the survivor still receives the result from the single shared
// round trip.
func TestTCPCoalescedFetchSurvivesOneWaiterCancel(t *testing.T) {
	p := testParams()
	addr, es, stop := startSlowStack(t, p, 400*time.Millisecond, nil)
	defer stop()

	survivor, err := DialEdge(addr, NewClient(0, p), ModeCoIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()
	quitter, err := DialEdge(addr, NewClient(1, p), ModeCoIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer quitter.Close()

	vp := pano.Viewport{Yaw: 0.4, FOV: 1.5}
	survivorErr := make(chan error, 1)
	go func() {
		_, err := survivor.Pano("survivor-video", 9, vp)
		survivorErr <- err
	}()
	waitFor(t, "the leader fetch to start", func() bool { return es.Edge.Inflight().Len() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	quitterErr := make(chan error, 1)
	go func() {
		_, err := quitter.PanoContext(ctx, "survivor-video", 9, vp)
		quitterErr <- err
	}()
	waitFor(t, "the second client to coalesce", func() bool {
		return es.Edge.Inflight().Stats().Coalesced == 1
	})
	cancel()

	if err := <-quitterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("quitter error = %v, want context.Canceled", err)
	}
	if err := <-survivorErr; err != nil {
		t.Fatalf("survivor failed after co-waiter cancelled: %v", err)
	}
	if got := es.CloudFetches(); got != 1 {
		t.Fatalf("cloud fetches = %d, want 1 (one departure must not restart the fetch)", got)
	}
	if st := es.Edge.Inflight().Stats(); st.Canceled != 0 {
		t.Fatalf("inflight stats = %+v: the flight completed, nothing should count as canceled", st)
	}
}

// TestTCPClientDisconnectAbortsInflightFetch: a client that vanishes
// mid-pipeline abandons its in-flight work — the edge cancels the
// request contexts, the sole waiter departs, and the coalesced fetch
// aborts long before the fetch timeout.
func TestTCPClientDisconnectAbortsInflightFetch(t *testing.T) {
	p := testParams()
	cloudAddr, stopCloud := startHungCloud(t)
	defer stopCloud()

	es := &EdgeServer{
		Edge:      NewEdge(p),
		CloudAddr: cloudAddr,
		// Deliberately enormous: only cancellation, not this timeout, can
		// explain a prompt abort below.
		FetchTimeout: 5 * time.Minute,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go es.Serve(ln)

	conn := rawEdgeConn(t, ln.Addr().String(), ModeCoIC)
	if err := wire.WriteMessage(conn, panoFetchMsg(t, 2, "vanish-video", 1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the fetch to start", func() bool { return es.Edge.Inflight().Len() == 1 })
	conn.Close() // the user walked away

	deadline := time.Now().Add(10 * time.Second)
	for es.Edge.Inflight().Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnected client's fetch still in flight — disconnect did not cancel it")
		}
		time.Sleep(time.Millisecond)
	}
	if st := es.Edge.Inflight().Stats(); st.Canceled != 1 {
		t.Fatalf("inflight stats = %+v, want the abandoned flight counted as canceled", st)
	}
}

// TestTCPGracefulShutdownDrains: cancelling the serve context must close
// the listener to new connections but let the admitted in-flight request
// finish and deliver its reply before the connection closes.
func TestTCPGracefulShutdownDrains(t *testing.T) {
	p := testParams()
	cloud := NewCloud(p)
	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cloudLn.Close()
	go (&CloudServer{Cloud: cloud}).Serve(cloudLn)

	es := &EdgeServer{
		Edge:      NewEdge(p),
		CloudAddr: cloudLn.Addr().String(),
		WrapCloud: func(c net.Conn) net.Conn { return netsim.NewShaper(c, 0, 300*time.Millisecond) },
	}
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- es.ServeContext(ctx, edgeLn) }()

	cli, err := DialEdge(edgeLn.Addr().String(), NewClient(0, p), ModeCoIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	vp := pano.Viewport{Yaw: 0.1, FOV: 1.5}
	replyErr := make(chan error, 1)
	go func() {
		_, err := cli.Pano("drain-video", 5, vp)
		replyErr <- err
	}()
	waitFor(t, "the request to be in flight", func() bool { return es.Edge.Inflight().Len() == 1 })
	cancel() // SIGTERM equivalent

	if err := <-replyErr; err != nil {
		t.Fatalf("in-flight request lost during graceful shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("ServeContext = %v, want nil on graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeContext did not return after drain")
	}
	if _, err := net.DialTimeout("tcp", edgeLn.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
