package core

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/netsim"
	"github.com/edge-immersion/coic/internal/pano"
	"github.com/edge-immersion/coic/internal/wire"
)

// startSlowStack brings up a cloud + edge where every edge→cloud frame
// pays an extra one-way delay, stretching the fetch window so concurrency
// tests observe requests genuinely in flight together.
func startSlowStack(t testing.TB, p Params, cloudDelay time.Duration, tune func(*EdgeServer)) (string, *EdgeServer, func()) {
	t.Helper()
	cloud := NewCloud(p)
	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go (&CloudServer{Cloud: cloud}).Serve(cloudLn)

	es := &EdgeServer{
		Edge:      NewEdge(p),
		CloudAddr: cloudLn.Addr().String(),
		WrapCloud: func(c net.Conn) net.Conn { return netsim.NewShaper(c, 0, cloudDelay) },
	}
	if tune != nil {
		tune(es)
	}
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go es.Serve(edgeLn)
	return edgeLn.Addr().String(), es, func() {
		edgeLn.Close()
		cloudLn.Close()
	}
}

// startHungCloud listens and swallows every byte without ever replying —
// the pathological upstream that per-fetch timeouts exist for.
func startHungCloud(t *testing.T) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// TestTCPSimultaneousClientsOneCloudFetch is the coalescing acceptance
// test: two clients missing on the same descriptor at the same moment
// must cost exactly one cloud computation.
func TestTCPSimultaneousClientsOneCloudFetch(t *testing.T) {
	p := testParams()
	addr, es, stop := startSlowStack(t, p, 150*time.Millisecond, nil)
	defer stop()

	const clients = 2
	vp := pano.Viewport{Yaw: 0.3, FOV: 1.5}
	clis := make([]*TCPClient, clients)
	for i := range clis {
		cli, err := DialEdge(addr, NewClient(i, p), ModeCoIC, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		clis[i] = cli
	}

	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(clients)
	errs := make(chan error, clients)
	for _, cli := range clis {
		cli := cli
		go func() {
			defer done.Done()
			start.Wait()
			_, err := cli.Pano("coalesce-video", 7, vp)
			errs <- err
		}()
	}
	start.Done()
	done.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if got := es.CloudFetches(); got != 1 {
		t.Fatalf("cloud fetches = %d, want exactly 1 (the other request must coalesce)", got)
	}
	st := es.Edge.Inflight().Stats()
	if st.Fetches != 1 || st.Coalesced != clients-1 {
		t.Fatalf("inflight stats = %+v, want 1 fetch and %d coalesced", st, clients-1)
	}
}

// rawEdgeConn dials the edge and completes the hello exchange, returning
// the bare connection for pipelined frame-level tests.
func rawEdgeConn(t testing.TB, addr string, mode Mode) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	hello := wire.Message{Type: wire.MsgHello, RequestID: 1, Body: []byte{byte(mode)}}
	if err := wire.WriteMessage(conn, hello); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadMessage(conn); err != nil {
		t.Fatal(err)
	}
	return conn
}

func panoFetchMsg(t testing.TB, reqID uint64, video string, frame int) wire.Message {
	t.Helper()
	body, err := (wire.PanoFetch{VideoID: video, FrameIndex: uint32(frame)}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return wire.Message{Type: wire.MsgPanoFetch, RequestID: reqID, Body: body}
}

// TestTCPPipelinedRepliesInOrder writes a burst of requests back-to-back
// before reading anything; the replies must come back complete and in
// arrival order even though the misses resolve concurrently upstream.
func TestTCPPipelinedRepliesInOrder(t *testing.T) {
	p := testParams()
	addr, _, stop := startSlowStack(t, p, 30*time.Millisecond, nil)
	defer stop()

	conn := rawEdgeConn(t, addr, ModeCoIC)
	defer conn.Close()

	const requests = 6
	for i := 1; i <= requests; i++ {
		// Distinct frames: every request is a miss with its own fetch.
		if err := wire.WriteMessage(conn, panoFetchMsg(t, uint64(i), "pipeline-video", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= requests; i++ {
		reply, err := wire.ReadMessage(conn)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if reply.RequestID != uint64(i) {
			t.Fatalf("reply %d carries request id %d — out of order", i, reply.RequestID)
		}
		if reply.Type != wire.MsgPanoReply {
			t.Fatalf("reply %d type = %v", i, reply.Type)
		}
	}
}

// TestTCPOverloadReply floods a deliberately tiny worker pool backed by a
// hung cloud: excess requests must be rejected with CodeOverloaded, in
// order, while admitted ones fail with the fetch timeout instead of
// wedging the connection.
func TestTCPOverloadReply(t *testing.T) {
	p := testParams()
	cloudAddr, stopCloud := startHungCloud(t)
	defer stopCloud()

	es := &EdgeServer{
		Edge:         NewEdge(p),
		CloudAddr:    cloudAddr,
		Workers:      1,
		QueueDepth:   1,
		FetchTimeout: 400 * time.Millisecond,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go es.Serve(ln)

	conn := rawEdgeConn(t, ln.Addr().String(), ModeCoIC)
	defer conn.Close()

	const requests = 8
	for i := 1; i <= requests; i++ {
		if err := wire.WriteMessage(conn, panoFetchMsg(t, uint64(i), "overload-video", i)); err != nil {
			t.Fatal(err)
		}
	}
	overloaded, unavailable := 0, 0
	for i := 1; i <= requests; i++ {
		reply, err := wire.ReadMessage(conn)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if reply.RequestID != uint64(i) {
			t.Fatalf("reply %d carries request id %d — out of order", i, reply.RequestID)
		}
		if reply.Type != wire.MsgError {
			t.Fatalf("reply %d type = %v, want error", i, reply.Type)
		}
		er, err := wire.UnmarshalErrorReply(reply.Body)
		if err != nil {
			t.Fatal(err)
		}
		switch er.Code {
		case wire.CodeOverloaded:
			overloaded++
		case wire.CodeUnavailable:
			unavailable++
		default:
			t.Fatalf("reply %d code = %d", i, er.Code)
		}
	}
	// Every request gets exactly one of the two failure replies. The
	// shed/timeout split is timing-dependent: once the reply-slot budget
	// (2×(workers+queue)) is consumed the reader applies TCP backpressure
	// instead of shedding further, so later requests are admitted as the
	// stalled head drains. Both behaviours must be visible.
	if overloaded+unavailable != requests {
		t.Fatalf("replies = %d overloaded + %d unavailable, want %d total", overloaded, unavailable, requests)
	}
	if overloaded == 0 {
		t.Fatal("no request was shed with an overload reply")
	}
	if unavailable == 0 {
		t.Fatal("no admitted request surfaced the cloud fetch timeout")
	}
	if got := es.Overloads(); got != uint64(overloaded) {
		t.Fatalf("server overload counter = %d, client saw %d", got, overloaded)
	}
}

// TestTCPHungCloudFailsCoalescedGroup verifies the per-fetch timeout
// propagates to every waiter of a coalesced flight — a hung cloud must
// not wedge the group — and that the failure does not poison the
// descriptor.
func TestTCPHungCloudFailsCoalescedGroup(t *testing.T) {
	p := testParams()
	cloudAddr, stopCloud := startHungCloud(t)
	defer stopCloud()

	es := &EdgeServer{
		Edge:         NewEdge(p),
		CloudAddr:    cloudAddr,
		FetchTimeout: 300 * time.Millisecond,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go es.Serve(ln)

	const clients = 3
	vp := pano.Viewport{Yaw: 0.1, FOV: 1.4}
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(clients)
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		cli, err := DialEdge(ln.Addr().String(), NewClient(i, p), ModeCoIC, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		go func() {
			defer done.Done()
			start.Wait()
			_, err := cli.Pano("hung-video", 1, vp)
			errs <- err
		}()
	}
	start.Done()
	finished := make(chan struct{})
	go func() { done.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("coalesced group wedged behind the hung cloud")
	}
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("request against a hung cloud succeeded")
		}
	}
	if st := es.Edge.Inflight().Stats(); st.Failures == 0 {
		t.Fatalf("inflight stats = %+v, want the failed flight recorded", st)
	}
	if es.Edge.Inflight().Len() != 0 {
		t.Fatal("failed fetch left the descriptor in flight (poisoned)")
	}
}

// TestTCPOriginModeStillForwards covers the origin passthrough on the
// reworked dispatch: no cache reads, no coalescing, plain forwarding.
func TestTCPOriginModeStillForwards(t *testing.T) {
	p := testParams()
	addr, es, stop := startSlowStack(t, p, 0, nil)
	defer stop()

	conn := rawEdgeConn(t, addr, ModeOrigin)
	defer conn.Close()
	for i := 1; i <= 2; i++ {
		if err := wire.WriteMessage(conn, panoFetchMsg(t, uint64(i), "origin-video", 5)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 2; i++ {
		reply, err := wire.ReadMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		if reply.Type != wire.MsgPanoReply {
			t.Fatalf("reply type = %v", reply.Type)
		}
	}
	// Identical origin requests must both hit the cloud (no cache, no
	// coalescing on the origin path).
	if got := es.CloudFetches(); got != 2 {
		t.Fatalf("origin cloud fetches = %d, want 2", got)
	}
	if got := es.Edge.Stats().Inserts; got != 0 {
		t.Fatalf("origin mode inserted %d entries into the cache", got)
	}
}
