package core

import (
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/clock"
)

// TestTokenBucketRefillDeterministic drives a tenant's admission bucket
// on a virtual clock: every refill is an exact function of advanced
// time, so the admitted/denied sequence is fully deterministic.
func TestTokenBucketRefillDeterministic(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1000, 0))
	p := NewTenantPolicy(clk)
	p.Set("metered", TenantLimit{Rate: 5, Burst: 2})

	// The bucket starts full at its burst of 2.
	for i := 0; i < 2; i++ {
		if !p.Admit("metered") {
			t.Fatalf("admit %d: denied with %d tokens banked", i, 2-i)
		}
	}
	if p.Admit("metered") {
		t.Fatal("admitted on an empty bucket")
	}

	// 200ms at 5 req/s refills exactly one token — and only one.
	clk.Advance(200 * time.Millisecond)
	if !p.Admit("metered") {
		t.Fatal("denied after refilling one token")
	}
	if p.Admit("metered") {
		t.Fatal("admitted a second request off a single refilled token")
	}

	// A long idle period refills to burst, never beyond it.
	clk.Advance(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if p.Admit("metered") {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("after idle refill admitted %d, want burst of 2", admitted)
	}

	// Unmetered tenants never consult a bucket.
	for i := 0; i < 100; i++ {
		if !p.Admit("open") {
			t.Fatal("unmetered tenant denied")
		}
	}
}

// TestTenantAuthenticate covers the three hello outcomes: empty claims
// collapse to the default tenant, configured tokens must match, and
// unknown tenants are accepted openly.
func TestTenantAuthenticate(t *testing.T) {
	p := NewTenantPolicy(nil)
	p.Set("secure", TenantLimit{Token: "s3cret"})

	if got, err := p.Authenticate("", ""); err != nil || got != DefaultTenant {
		t.Fatalf("empty claim: got %q, %v", got, err)
	}
	if got, err := p.Authenticate("secure", "s3cret"); err != nil || got != "secure" {
		t.Fatalf("good token: got %q, %v", got, err)
	}
	if _, err := p.Authenticate("secure", "wrong"); err == nil {
		t.Fatal("bad token accepted")
	}
	if _, err := p.Authenticate("secure", ""); err == nil {
		t.Fatal("missing token accepted")
	}
	if got, err := p.Authenticate("unknown", "whatever"); err != nil || got != "unknown" {
		t.Fatalf("unknown tenant: got %q, %v", got, err)
	}

	var nilPolicy *TenantPolicy
	if got, err := nilPolicy.Authenticate("anyone", ""); err != nil || got != "anyone" {
		t.Fatalf("nil policy: got %q, %v", got, err)
	}
}

// TestSlotCap checks the standing weighted partition of upstream slots.
func TestSlotCap(t *testing.T) {
	p := NewTenantPolicy(nil)
	p.Set("victim", TenantLimit{Weight: 4})
	p.Set("noisy", TenantLimit{Weight: 1})

	cases := []struct {
		tenant string
		slots  int
		want   int
	}{
		{"victim", 2, 2}, // ceil(2*4/5)
		{"noisy", 2, 1},  // ceil(2*1/5)
		{"victim", 10, 8},
		{"noisy", 10, 2},
		{"stranger", 2, 1}, // unconfigured: weight 1 of 6
		{"noisy", 1, 1},    // never below one slot
	}
	for _, c := range cases {
		if got := p.SlotCap(c.tenant, c.slots); got != c.want {
			t.Errorf("SlotCap(%q, %d) = %d, want %d", c.tenant, c.slots, got, c.want)
		}
	}

	var nilPolicy *TenantPolicy
	if got := nilPolicy.SlotCap("anyone", 7); got != 7 {
		t.Errorf("nil policy SlotCap = %d, want the whole budget", got)
	}
	empty := NewTenantPolicy(nil)
	if got := empty.SlotCap("anyone", 7); got != 7 {
		t.Errorf("empty policy SlotCap = %d, want the whole budget", got)
	}
}
