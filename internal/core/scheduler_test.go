package core

import (
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/wire"
)

func schedJobWith(class wire.QoS, deadline time.Time) schedJob {
	return schedJob{class: class, deadline: deadline}
}

func TestSchedQueueStrictClassOrder(t *testing.T) {
	q := newSchedQueue(8)
	for i := 0; i < 3; i++ {
		if _, ok := q.push(schedJobWith(wire.QoSBestEffort, time.Time{})); !ok {
			t.Fatal("push rejected with room to spare")
		}
	}
	if _, ok := q.push(schedJobWith(wire.QoSInteractive, time.Time{})); !ok {
		t.Fatal("interactive push rejected")
	}
	j, ok := q.pop()
	if !ok || j.class != wire.QoSInteractive {
		t.Fatalf("first pop = class %v, want interactive before any best-effort", j.class)
	}
	for i := 0; i < 3; i++ {
		j, ok := q.pop()
		if !ok || j.class != wire.QoSBestEffort {
			t.Fatalf("pop %d = class %v, want best-effort", i, j.class)
		}
	}
}

func TestSchedQueueEDFWithinClass(t *testing.T) {
	q := newSchedQueue(8)
	base := time.Now().Add(time.Hour)
	// Push deadlines out of order, plus two deadline-less jobs.
	deadlines := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	for _, d := range deadlines {
		q.push(schedJobWith(wire.QoSInteractive, base.Add(d)))
	}
	q.push(schedJobWith(wire.QoSInteractive, time.Time{}))
	q.push(schedJobWith(wire.QoSInteractive, time.Time{}))

	var got []time.Time
	for i := 0; i < 5; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		got = append(got, j.deadline)
	}
	want := []time.Time{base.Add(time.Second), base.Add(2 * time.Second), base.Add(3 * time.Second), {}, {}}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("pop order %d = %v, want %v (EDF, deadline-less last)", i, got[i], want[i])
		}
	}
	// The two deadline-less jobs must have come out in admission order.
}

func TestSchedQueueFIFOTiebreak(t *testing.T) {
	q := newSchedQueue(8)
	for i := 0; i < 4; i++ {
		q.push(schedJobWith(wire.QoSBestEffort, time.Time{}))
	}
	var last uint64
	for i := 0; i < 4; i++ {
		j, _ := q.pop()
		if j.order <= last && i > 0 {
			t.Fatalf("deadline-less jobs popped out of admission order: %d after %d", j.order, last)
		}
		last = j.order
	}
}

func TestSchedQueueOverloadAndExpiredEviction(t *testing.T) {
	q := newSchedQueue(2)
	q.push(schedJobWith(wire.QoSBestEffort, time.Time{}))
	q.push(schedJobWith(wire.QoSBestEffort, time.Time{}))
	// Full of live work: the new job is rejected, nothing shed.
	if shed, ok := q.push(schedJobWith(wire.QoSInteractive, time.Time{})); ok || len(shed) != 0 {
		t.Fatalf("push on full live queue: shed=%d ok=%v, want rejection", len(shed), ok)
	}

	// A queue holding expired work makes room instead of rejecting.
	q2 := newSchedQueue(2)
	expired := schedJobWith(wire.QoSBestEffort, time.Now().Add(-time.Second))
	expired.finish = func() {}
	q2.push(expired)
	q2.push(schedJobWith(wire.QoSBestEffort, time.Time{}))
	shed, ok := q2.push(schedJobWith(wire.QoSInteractive, time.Time{}))
	if !ok {
		t.Fatal("push rejected although an expired job could be evicted")
	}
	if len(shed) != 1 || shed[0].deadline.IsZero() {
		t.Fatalf("shed = %+v, want exactly the expired job", shed)
	}
	j, _ := q2.pop()
	if j.class != wire.QoSInteractive {
		t.Fatalf("pop = class %v, want the newly admitted interactive job", j.class)
	}
}

func TestSchedQueueCloseDrains(t *testing.T) {
	q := newSchedQueue(4)
	q.push(schedJobWith(wire.QoSBestEffort, time.Time{}))
	q.push(schedJobWith(wire.QoSInteractive, time.Time{}))
	q.close()
	if _, ok := q.push(schedJobWith(wire.QoSBestEffort, time.Time{})); ok {
		t.Fatal("push accepted after close")
	}
	if j, ok := q.pop(); !ok || j.class != wire.QoSInteractive {
		t.Fatalf("drain pop 1 = %v/%v", j.class, ok)
	}
	if j, ok := q.pop(); !ok || j.class != wire.QoSBestEffort {
		t.Fatalf("drain pop 2 = %v/%v", j.class, ok)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop succeeded on a closed empty queue")
	}
}

func TestClassIndexClampsUnknownClasses(t *testing.T) {
	if classIndex(wire.QoS(200)) != wire.NumQoSClasses-1 {
		t.Fatal("future class not clamped to the highest known class")
	}
	if classIndex(wire.QoSBestEffort) != 0 || classIndex(wire.QoSInteractive) != 1 {
		t.Fatal("known classes misindexed")
	}
}
