// Package core implements CoIC itself: the cooperative mobile-edge-cloud
// framework of the paper. A Client extracts feature descriptors and issues
// IC requests; an Edge answers them from its similarity cache or forwards
// to the Cloud, inserting results on the way back (Figure 1 of the paper);
// an Origin mode bypasses the cache entirely (the paper's baseline). The
// Session type composes these nodes over simulated links in virtual time,
// and the experiment runners regenerate every figure.
package core

import (
	"time"

	"github.com/edge-immersion/coic/internal/vision"
)

// Params carries every calibration constant in one place. The paper's
// testbed (Pixel phone, two Linux machines, 802.11ac, an unnamed DNN) is
// not available, so absolute speeds are modelled; every value below is a
// named, documented knob rather than a magic number in a pipeline.
// DESIGN.md and EXPERIMENTS.md discuss how they were chosen.
type Params struct {
	// --- recognition task -------------------------------------------

	// CameraW/CameraH size the captured camera frame; the upload payload
	// is W·H·4 bytes of raw RGBA (720×720 ≈ 2.07 MB, producing the ~2.4s
	// origin latency of Figure 2a's most constrained condition).
	CameraW, CameraH int
	// DNNInput is the square side the frame is resized to before feature
	// extraction / classification.
	DNNInput int
	// Seed makes the whole system (weights, scenes, workloads)
	// reproducible.
	Seed uint64
	// FLOPsScale relates the in-repo EdgeNet to the production-size DNN
	// it stands in for: virtual compute time charges
	// FLOPs·FLOPsScale/deviceFLOPS. EdgeNet is ~22 MFLOP; a scale of
	// 220 models a ~5 GFLOP production recogniser.
	FLOPsScale float64
	// MobileGFLOPS is the phone's effective DNN throughput. 7 GFLOPS
	// effective puts descriptor extraction at ~700 ms — a 2017-class
	// phone CPU running a large CNN.
	MobileGFLOPS float64
	// CloudGFLOPS is the cloud server's effective DNN throughput (the
	// paper's cloud is a plain Linux machine, not a GPU box; 14.2
	// effective GFLOPS puts full-model inference at ~350 ms).
	CloudGFLOPS float64

	// --- edge ---------------------------------------------------------

	// EdgeLookupTime is the per-request cache query cost (descriptor
	// match + store fetch).
	EdgeLookupTime time.Duration
	// EdgeInsertTime is the cache insertion cost on the miss path.
	EdgeInsertTime time.Duration
	// EdgeCacheBytes is the IC-cache capacity.
	EdgeCacheBytes int64
	// Threshold is the maximum L2 distance between unit-norm feature
	// vectors treated as "the same computation" (paper §2). Calibrated
	// by the A-threshold ablation.
	Threshold float64

	// --- rendering task ----------------------------------------------

	// CloudOBJXParseBps is the cloud's model-load rate: parsing the OBJX
	// source into the runtime CMF form, charged per OBJX byte.
	CloudOBJXParseBps float64
	// ClientCMFLoadBps is the client's model-load rate: deserialising
	// CMF into memory, charged per CMF byte (~15 MB/s puts the 15 MB
	// model at ~1 s, landing Figure 2b's ~76% max reduction).
	ClientCMFLoadBps float64
	// ClientDrawTime is the fixed cost of drawing a loaded model once.
	ClientDrawTime time.Duration

	// --- panorama task -------------------------------------------------

	// PanoWidth is the equirect frame width (height = width/2).
	PanoWidth int
	// CloudPanoRenderTime is the cloud cost of producing one panoramic
	// frame.
	CloudPanoRenderTime time.Duration
	// ClientCropTime is the device cost of cropping the panorama to the
	// viewport.
	ClientCropTime time.Duration
}

// DefaultParams returns the calibration used throughout the reproduction.
func DefaultParams() Params {
	return Params{
		CameraW: 720, CameraH: 720,
		DNNInput:   64,
		Seed:       20180820, // SIGCOMM'18 poster session, day one
		FLOPsScale: 220,

		MobileGFLOPS: 7,
		CloudGFLOPS:  14.2,

		EdgeLookupTime: 3 * time.Millisecond,
		EdgeInsertTime: 2 * time.Millisecond,
		EdgeCacheBytes: 256 << 20,
		Threshold:      0.12,

		CloudOBJXParseBps: 150e6,
		ClientCMFLoadBps:  15e6,
		ClientDrawTime:    150 * time.Millisecond,

		PanoWidth:           1024,
		CloudPanoRenderTime: 90 * time.Millisecond,
		ClientCropTime:      12 * time.Millisecond,
	}
}

// Classes returns the recognisable object labels.
func (p Params) Classes() []string { return vision.ClassNames }

// flopsTime converts raw EdgeNet FLOPs to virtual compute time on a
// device with the given effective GFLOPS.
func (p Params) flopsTime(flops int64, gflops float64) time.Duration {
	sec := float64(flops) * p.FLOPsScale / (gflops * 1e9)
	return time.Duration(sec * float64(time.Second))
}

// bytesTime converts a byte count processed at rate (bytes/s) to time.
func bytesTime(n int, bps float64) time.Duration {
	if bps <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bps * float64(time.Second))
}
