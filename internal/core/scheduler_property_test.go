package core

import (
	"sync"
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/wire"
	"github.com/edge-immersion/coic/internal/xrand"
)

// This file model-checks the scheduler against a reference
// implementation and audits its accounting under concurrency. The
// invariants the batch executor leans on:
//
//  1. pop and tryDrain dispatch in strict class-then-EDF order — a
//     drained batch is exactly the prefix a run of pops would return;
//  2. no admitted job is ever lost or dispatched twice, whatever mix of
//     pop, tryDrain and close races over the queue.

// schedModel is the obviously-correct reference: a flat slice scanned
// for the scheduling-best job on every take.
type schedModel struct {
	jobs []schedJob
}

func (m *schedModel) push(j schedJob) { m.jobs = append(m.jobs, j) }

// headIdx locates the job pop must return: highest class, before()
// within it.
func (m *schedModel) headIdx() int {
	best := -1
	for i := range m.jobs {
		switch {
		case best < 0:
			best = i
		case classIndex(m.jobs[i].class) != classIndex(m.jobs[best].class):
			if classIndex(m.jobs[i].class) > classIndex(m.jobs[best].class) {
				best = i
			}
		case m.jobs[i].before(&m.jobs[best]):
			best = i
		}
	}
	return best
}

func (m *schedModel) pop() (schedJob, bool) {
	i := m.headIdx()
	if i < 0 {
		return schedJob{}, false
	}
	j := m.jobs[i]
	m.jobs = append(m.jobs[:i], m.jobs[i+1:]...)
	return j, true
}

// TestSchedQueuePropertyModelCheck drives randomized push / pop /
// tryDrain traces through the real queue and the reference model in
// lockstep; every dispatched job must match the model's choice exactly
// (identified by trace, which the test uses as a job serial).
func TestSchedQueuePropertyModelCheck(t *testing.T) {
	rng := xrand.New(20260808)
	base := time.Now().Add(time.Hour) // far future: expiry never interferes
	for trial := 0; trial < 50; trial++ {
		q := newSchedQueue(1 << 20) // effectively unbounded: no shed path here
		model := &schedModel{}
		var serial uint64
		matchExec := func(j *schedJob) bool { return j.msg.Type == wire.MsgExec }
		for step := 0; step < 200; step++ {
			switch op := rng.Intn(10); {
			case op < 5: // push
				serial++
				j := schedJob{
					msg:   wire.Message{Type: wire.MsgExec},
					class: wire.QoS(rng.Intn(wire.NumQoSClasses)),
					trace: serial,
				}
				if rng.Intn(4) == 0 {
					j.msg.Type = wire.MsgModelFetch // non-batchable oddball
				}
				if rng.Intn(3) > 0 {
					j.deadline = base.Add(time.Duration(rng.Intn(5)) * time.Second)
				}
				if _, ok := q.push(j); !ok {
					t.Fatal("push rejected below depth")
				}
				model.push(j)
			case op < 8: // pop (only when non-empty: pop blocks)
				if len(model.jobs) == 0 {
					continue
				}
				got, ok := q.pop()
				want, _ := model.pop()
				if !ok || got.trace != want.trace {
					t.Fatalf("trial %d step %d: pop = job %d, model says %d", trial, step, got.trace, want.trace)
				}
			default: // tryDrain
				max := 1 + rng.Intn(4)
				jobs, blocked := q.tryDrain(max, matchExec)
				for i, got := range jobs {
					want, _ := model.pop()
					if got.trace != want.trace {
						t.Fatalf("trial %d step %d: drain[%d] = job %d, model says %d", trial, step, i, got.trace, want.trace)
					}
					if got.msg.Type != wire.MsgExec {
						t.Fatalf("trial %d step %d: drained a non-matching job", trial, step)
					}
				}
				// blocked iff a non-matching head stopped a non-full drain.
				if i := model.headIdx(); len(jobs) < max {
					wantBlocked := i >= 0 && model.jobs[i].msg.Type != wire.MsgExec
					if blocked != wantBlocked {
						t.Fatalf("trial %d step %d: blocked = %v, want %v", trial, step, blocked, wantBlocked)
					}
				}
			}
		}
		// Drain the remainder: the full dispatch order must match.
		for len(model.jobs) > 0 {
			got, ok := q.pop()
			want, _ := model.pop()
			if !ok || got.trace != want.trace {
				t.Fatalf("trial %d final drain: pop = job %d, model says %d", trial, got.trace, want.trace)
			}
		}
		if j, ok := q.tryDrain(1, matchExec); len(j) != 0 || ok {
			t.Fatal("queue non-empty after model emptied")
		}
	}
}

// TestSchedQueuePropertyNoJobLost hammers one queue with concurrent
// producers, poppers and batch drainers, then audits the accounting:
// every job a producer pushed is dispatched exactly once (popped or
// drained), shed by admission, or rejected — never lost, never doubled.
func TestSchedQueuePropertyNoJobLost(t *testing.T) {
	const (
		producers   = 4
		jobsPerProd = 300
		consumers   = 4
	)
	q := newSchedQueue(32)
	var (
		mu         sync.Mutex
		dispatched = map[uint64]int{} // trace → times seen by a consumer
		shed       = map[uint64]int{} // trace → times shed at admission
		rejected   uint64
		pushed     uint64
	)
	var prod sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		prod.Add(1)
		go func(pr int) {
			defer prod.Done()
			rng := xrand.New(uint64(1000 + pr))
			for i := 0; i < jobsPerProd; i++ {
				j := schedJob{
					msg:   wire.Message{Type: wire.MsgExec},
					class: wire.QoS(rng.Intn(wire.NumQoSClasses)),
					trace: uint64(pr*jobsPerProd + i + 1),
				}
				switch rng.Intn(3) {
				case 0: // already expired: sheddable under pressure
					j.deadline = time.Now().Add(-time.Hour)
				case 1:
					j.deadline = time.Now().Add(time.Hour)
				}
				shedJobs, ok := q.push(j)
				mu.Lock()
				for _, s := range shedJobs {
					shed[s.trace]++
				}
				if ok {
					pushed++
				} else {
					rejected++
				}
				mu.Unlock()
			}
		}(pr)
	}
	var cons sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cons.Add(1)
		go func(c int) {
			defer cons.Done()
			rng := xrand.New(uint64(2000 + c))
			match := func(j *schedJob) bool { return j.msg.Type == wire.MsgExec }
			for {
				if rng.Intn(2) == 0 {
					j, ok := q.pop()
					if !ok {
						return
					}
					mu.Lock()
					dispatched[j.trace]++
					mu.Unlock()
				} else {
					jobs, _ := q.tryDrain(1+rng.Intn(8), match)
					mu.Lock()
					for _, j := range jobs {
						dispatched[j.trace]++
					}
					mu.Unlock()
					if len(jobs) == 0 {
						// Blocking pop is the only wait primitive; cycle
						// through it so the goroutine parks until close.
						j, ok := q.pop()
						if !ok {
							return
						}
						mu.Lock()
						dispatched[j.trace]++
						mu.Unlock()
					}
				}
			}
		}(c)
	}
	prod.Wait()
	q.close()
	cons.Wait()

	mu.Lock()
	defer mu.Unlock()
	for trace, n := range dispatched {
		if n != 1 {
			t.Fatalf("job %d dispatched %d times", trace, n)
		}
		if shed[trace] != 0 {
			t.Fatalf("job %d both dispatched and shed", trace)
		}
	}
	for trace, n := range shed {
		if n != 1 {
			t.Fatalf("job %d shed %d times", trace, n)
		}
	}
	if got := uint64(len(dispatched) + len(shed)); got != pushed {
		t.Fatalf("accounted for %d admitted jobs (%d dispatched + %d shed), pushed %d",
			got, len(dispatched), len(shed), pushed)
	}
	if pushed+rejected != producers*jobsPerProd {
		t.Fatalf("pushed %d + rejected %d != %d offered", pushed, rejected, producers*jobsPerProd)
	}
}

// TestSchedQueueTryDrainStopsAtMismatch pins the priority-preserving
// property directly: a drain must never take a best-effort job past a
// non-matching interactive head.
func TestSchedQueueTryDrainStopsAtMismatch(t *testing.T) {
	q := newSchedQueue(8)
	q.push(schedJob{msg: wire.Message{Type: wire.MsgExec}, class: wire.QoSBestEffort, trace: 1})
	q.push(schedJob{msg: wire.Message{Type: wire.MsgModelFetch}, class: wire.QoSInteractive, trace: 2})
	q.push(schedJob{msg: wire.Message{Type: wire.MsgExec}, class: wire.QoSBestEffort, trace: 3})

	match := func(j *schedJob) bool { return j.msg.Type == wire.MsgExec }
	jobs, blocked := q.tryDrain(4, match)
	if len(jobs) != 0 || !blocked {
		t.Fatalf("drain took %d jobs past an interactive non-exec head (blocked=%v)", len(jobs), blocked)
	}
	if j, ok := q.pop(); !ok || j.trace != 2 {
		t.Fatalf("head = job %d, want the interactive fetch", j.trace)
	}
	jobs, blocked = q.tryDrain(4, match)
	if len(jobs) != 2 || blocked {
		t.Fatalf("post-head drain = %d jobs (blocked=%v), want both exec jobs", len(jobs), blocked)
	}
}
