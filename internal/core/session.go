package core

import (
	"context"
	"fmt"
	"time"

	"github.com/edge-immersion/coic/internal/cache"
	"github.com/edge-immersion/coic/internal/feature"
	"github.com/edge-immersion/coic/internal/netsim"
	"github.com/edge-immersion/coic/internal/pano"
	"github.com/edge-immersion/coic/internal/vision"
	"github.com/edge-immersion/coic/internal/wire"
)

// Session binds one client to an edge and cloud over a simulated
// topology and executes IC requests in virtual time. Message sizes are
// the true wire encodings; compute costs come from Params; transfer times
// come from the topology's links (with FIFO queueing, so concurrent
// sessions over the same links contend).
type Session struct {
	Client *Client
	Edge   *Edge
	Cloud  *Cloud
	Topo   *netsim.Topology

	reqID uint64
}

// NewSession wires the three tiers together.
func NewSession(client *Client, edge *Edge, cloud *Cloud, topo *netsim.Topology) *Session {
	return &Session{Client: client, Edge: edge, Cloud: cloud, Topo: topo}
}

func (s *Session) nextID() uint64 {
	s.reqID++
	return s.reqID
}

// originDescriptor is attached to origin-mode requests, which carry no
// meaningful descriptor (the baseline extracts nothing); the edge never
// looks at it.
var originDescriptor = feature.NewHash([]byte("origin"))

// Recognize executes one recognition request and returns the latency
// breakdown plus the (validated) recognition result. ctx gates the
// expensive stages: an expired context returns promptly — before the
// (real) DNN runs — rather than computing a result nobody wants.
func (s *Session) Recognize(ctx context.Context, at time.Time, class vision.Class, viewSeed uint64, mode Mode) (Breakdown, wire.RecognitionResult, error) {
	b := Breakdown{Task: wire.TaskRecognize, Mode: mode, Start: at, Outcome: cache.OutcomeMiss}
	if err := ctx.Err(); err != nil {
		return b, wire.RecognitionResult{}, err
	}
	frame := s.Client.CaptureFrame(class, viewSeed)

	desc := originDescriptor
	t := at
	if mode == ModeCoIC {
		var extractCost time.Duration
		desc, extractCost = s.Client.Extract(frame)
		b.Extract = extractCost
		t = t.Add(extractCost)
	}

	req := wire.ExecRequest{Task: wire.TaskRecognize, Desc: desc, Payload: frame.Bytes()}
	body, err := req.Marshal()
	if err != nil {
		return b, wire.RecognitionResult{}, err
	}
	upMsg := wire.Message{Type: wire.MsgExec, RequestID: s.nextID(), Body: body}
	b.BytesUp = upMsg.WireSize()

	tEdge := s.Topo.MobileEdge.Up.Transfer(t, upMsg.WireSize())
	b.UpME = tEdge.Sub(t)
	t = tEdge

	var resultBytes []byte
	if mode == ModeCoIC {
		lr := s.Edge.LookupAtAs(ctx, s.Client.ID, wire.TaskRecognize, desc, t)
		b.EdgeProc += lr.Cost - lr.PeerCost
		b.PeerHop += lr.PeerCost
		b.Wait += lr.Wait
		t = t.Add(lr.Cost + lr.Wait)
		if lr.Hit() {
			b.Outcome = lr.Outcome
			b.Coalesced = lr.Coalesced
			resultBytes = lr.Value
		}
	}

	if resultBytes == nil { // miss or origin: forward the request to the cloud
		if err := ctx.Err(); err != nil {
			// The caller departed before the cloud round trip: abandon the
			// request instead of paying for work nobody will read.
			return b, wire.RecognitionResult{}, err
		}
		tCloud := s.Topo.EdgeCloud.Up.Transfer(t, upMsg.WireSize())
		b.UpEC = tCloud.Sub(t)
		t = tCloud

		res, cloudCost, err := s.Cloud.Recognize(frame.Bytes())
		if err != nil {
			return b, wire.RecognitionResult{}, err
		}
		b.Cloud = cloudCost
		t = t.Add(cloudCost)
		resultBytes = res

		replySize := replyWireSize(wire.SourceCloud, resultBytes)
		tBack := s.Topo.EdgeCloud.Down.Transfer(t, replySize)
		b.DownEC = tBack.Sub(t)
		t = tBack

		if mode == ModeCoIC {
			insertCost := s.Edge.InsertAtAs(s.Client.ID, desc, resultBytes, cloudCost.Seconds()*1000, t)
			b.EdgeProc += insertCost
			t = t.Add(insertCost)
		}
	}

	replySize := replyWireSize(wire.SourceEdge, resultBytes)
	b.BytesDown = replySize
	tClient := s.Topo.MobileEdge.Down.Transfer(t, replySize)
	b.DownME = tClient.Sub(t)
	t = tClient

	b.End = t
	result, err := wire.UnmarshalRecognitionResult(resultBytes)
	if err != nil {
		return b, result, fmt.Errorf("core: recognition result corrupt: %w", err)
	}
	return b, result, nil
}

// replyWireSize computes the framed size of an ExecReply carrying result.
func replyWireSize(source uint8, result []byte) int {
	body, err := (wire.ExecReply{Source: source, Result: result}).Marshal()
	if err != nil {
		panic(err) // length-checked inputs only
	}
	return (wire.Message{Type: wire.MsgExecReply, Body: body}).WireSize()
}

// ModelDescriptor is the cache key for a rendering task: the hash of the
// required 3D model's identity (paper §2: "the hash value of the required
// 3D model ... as the feature descriptor").
func ModelDescriptor(modelID string) feature.Descriptor {
	return feature.NewHash([]byte("model:" + modelID))
}

// Render executes one 3D-model load-and-draw task. An expired ctx
// returns promptly, and a ctx that expires before the cloud fetch
// abandons the request without paying for it.
func (s *Session) Render(ctx context.Context, at time.Time, modelID string, mode Mode) (Breakdown, error) {
	b := Breakdown{Task: wire.TaskRender, Mode: mode, Start: at, Outcome: cache.OutcomeMiss}
	if err := ctx.Err(); err != nil {
		return b, err
	}
	desc := ModelDescriptor(modelID)

	fetch := wire.ModelFetch{ModelID: modelID, Format: wire.FormatCMF}
	body, err := fetch.Marshal()
	if err != nil {
		return b, err
	}
	upMsg := wire.Message{Type: wire.MsgModelFetch, RequestID: s.nextID(), Body: body}
	b.BytesUp = upMsg.WireSize()

	t := s.Topo.MobileEdge.Up.Transfer(at, upMsg.WireSize())
	b.UpME = t.Sub(at)

	var cmf []byte
	var source uint8 = wire.SourceCloud
	if mode == ModeCoIC {
		lr := s.Edge.LookupAtAs(ctx, s.Client.ID, wire.TaskRender, desc, t)
		b.EdgeProc += lr.Cost - lr.PeerCost
		b.PeerHop += lr.PeerCost
		b.Wait += lr.Wait
		t = t.Add(lr.Cost + lr.Wait)
		if lr.Hit() {
			b.Outcome = lr.Outcome
			b.Coalesced = lr.Coalesced
			cmf = lr.Value
			source = wire.SourceEdge
		}
	}

	if cmf == nil {
		if err := ctx.Err(); err != nil {
			return b, err
		}
		tCloud := s.Topo.EdgeCloud.Up.Transfer(t, upMsg.WireSize())
		b.UpEC = tCloud.Sub(t)
		t = tCloud

		data, cloudCost, err := s.Cloud.FetchModel(modelID)
		if err != nil {
			return b, err
		}
		b.Cloud = cloudCost
		t = t.Add(cloudCost)
		cmf = data

		replySize := modelReplyWireSize(wire.SourceCloud, cmf)
		tBack := s.Topo.EdgeCloud.Down.Transfer(t, replySize)
		b.DownEC = tBack.Sub(t)
		t = tBack

		if mode == ModeCoIC {
			// The edge caches the loaded (parsed) form: next user skips
			// both the WAN hop and the cloud-side load.
			insertCost := s.Edge.InsertAtAs(s.Client.ID, desc, cmf, cloudCost.Seconds()*1000, t)
			b.EdgeProc += insertCost
			t = t.Add(insertCost)
		}
	}

	replySize := modelReplyWireSize(source, cmf)
	b.BytesDown = replySize
	tClient := s.Topo.MobileEdge.Down.Transfer(t, replySize)
	b.DownME = tClient.Sub(t)
	t = tClient

	// Client-side: load into memory, then draw.
	m, loadCost, err := s.Client.LoadModel(cmf)
	if err != nil {
		return b, err
	}
	st, drawCost := s.Client.Draw(m)
	if st.Pixels == 0 {
		return b, fmt.Errorf("core: model %q drew no pixels", modelID)
	}
	b.ClientProc = loadCost + drawCost
	b.End = t.Add(b.ClientProc)
	return b, nil
}

func modelReplyWireSize(source uint8, cmf []byte) int {
	body, err := (wire.ModelReply{Format: wire.FormatCMF, Source: source, Data: cmf}).Marshal()
	if err != nil {
		panic(err)
	}
	return (wire.Message{Type: wire.MsgModelReply, Body: body}).WireSize()
}

// PanoDescriptor is the cache key for a VR streaming task: the hash of
// the required panoramic frame's identity.
func PanoDescriptor(videoID string, frameIdx int) feature.Descriptor {
	return feature.NewHash([]byte(fmt.Sprintf("pano:%s:%d", videoID, frameIdx)))
}

// Pano executes one VR panorama fetch-and-crop task. An expired ctx
// returns promptly, and a ctx that expires before the cloud fetch
// abandons the request without paying for it.
func (s *Session) Pano(ctx context.Context, at time.Time, videoID string, frameIdx int, vp pano.Viewport, mode Mode) (Breakdown, error) {
	b := Breakdown{Task: wire.TaskPano, Mode: mode, Start: at, Outcome: cache.OutcomeMiss}
	if err := ctx.Err(); err != nil {
		return b, err
	}
	desc := PanoDescriptor(videoID, frameIdx)

	fetch := wire.PanoFetch{VideoID: videoID, FrameIndex: uint32(frameIdx)}
	body, err := fetch.Marshal()
	if err != nil {
		return b, err
	}
	upMsg := wire.Message{Type: wire.MsgPanoFetch, RequestID: s.nextID(), Body: body}
	b.BytesUp = upMsg.WireSize()

	t := s.Topo.MobileEdge.Up.Transfer(at, upMsg.WireSize())
	b.UpME = t.Sub(at)

	var rle []byte
	var source uint8 = wire.SourceCloud
	if mode == ModeCoIC {
		lr := s.Edge.LookupAtAs(ctx, s.Client.ID, wire.TaskPano, desc, t)
		b.EdgeProc += lr.Cost - lr.PeerCost
		b.PeerHop += lr.PeerCost
		b.Wait += lr.Wait
		t = t.Add(lr.Cost + lr.Wait)
		if lr.Hit() {
			b.Outcome = lr.Outcome
			b.Coalesced = lr.Coalesced
			rle = lr.Value
			source = wire.SourceEdge
		}
	}

	if rle == nil {
		if err := ctx.Err(); err != nil {
			return b, err
		}
		tCloud := s.Topo.EdgeCloud.Up.Transfer(t, upMsg.WireSize())
		b.UpEC = tCloud.Sub(t)
		t = tCloud

		data, cloudCost, err := s.Cloud.FetchPano(videoID, frameIdx)
		if err != nil {
			return b, err
		}
		b.Cloud = cloudCost
		t = t.Add(cloudCost)
		rle = data

		replySize := panoReplyWireSize(wire.SourceCloud, rle)
		tBack := s.Topo.EdgeCloud.Down.Transfer(t, replySize)
		b.DownEC = tBack.Sub(t)
		t = tBack

		if mode == ModeCoIC {
			insertCost := s.Edge.InsertAtAs(s.Client.ID, desc, rle, cloudCost.Seconds()*1000, t)
			b.EdgeProc += insertCost
			t = t.Add(insertCost)
		}
	}

	replySize := panoReplyWireSize(source, rle)
	b.BytesDown = replySize
	tClient := s.Topo.MobileEdge.Down.Transfer(t, replySize)
	b.DownME = tClient.Sub(t)
	t = tClient

	out, cropCost, err := s.Client.CropPano(rle, vp, 256, 256)
	if err != nil {
		return b, err
	}
	if out.W != 256 {
		return b, fmt.Errorf("core: bad crop size %d", out.W)
	}
	b.ClientProc = cropCost
	b.End = t.Add(cropCost)
	return b, nil
}

func panoReplyWireSize(source uint8, rle []byte) int {
	body, err := (wire.PanoReply{Source: source, Data: rle}).Marshal()
	if err != nil {
		panic(err)
	}
	return (wire.Message{Type: wire.MsgPanoReply, Body: body}).WireSize()
}
