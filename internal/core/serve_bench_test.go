package core

import (
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/metrics"
	"github.com/edge-immersion/coic/internal/wire"
)

// BenchmarkPipelinedServe measures what per-connection pipelining buys on
// the miss path: one client pipelines a burst of distinct misses, each of
// which costs a shaped cloud round trip. With one worker the fetches
// serialise (the pre-pipelining edge), so the burst's tail request waits
// for every fetch ahead of it; with a pool the fetches overlap on the
// multiplexed upstream connection and tail latency collapses. Reported
// p50-ms / p99-ms are per-request latencies from burst start to reply
// arrival.
func BenchmarkPipelinedServe(b *testing.B) {
	const burst = 16
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial-1worker", 1},
		{"pipelined-16workers", 16},
	} {
		b.Run(bc.name, func(b *testing.B) {
			p := DefaultParams()
			p.CameraW, p.CameraH = 128, 128
			p.DNNInput = 32
			p.PanoWidth = 256
			addr, _, stop := startSlowStack(b, p, 10*time.Millisecond, func(es *EdgeServer) {
				es.Workers = bc.workers
				es.QueueDepth = burst
			})
			defer stop()

			hist := &metrics.Histogram{}
			frame := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				conn := rawEdgeConn(b, addr, ModeCoIC)
				start := time.Now()
				for j := 1; j <= burst; j++ {
					frame++ // distinct frames: every request is a fresh miss
					if err := wire.WriteMessage(conn, panoFetchMsg(b, uint64(j), "bench-video", frame)); err != nil {
						b.Fatal(err)
					}
				}
				for j := 1; j <= burst; j++ {
					reply, err := wire.ReadMessage(conn)
					if err != nil {
						b.Fatal(err)
					}
					if reply.Type != wire.MsgPanoReply {
						b.Fatalf("reply type = %v", reply.Type)
					}
					hist.Record(time.Since(start))
				}
				conn.Close()
			}
			b.StopTimer()
			b.ReportMetric(float64(hist.Median())/float64(time.Millisecond), "p50-ms")
			b.ReportMetric(float64(hist.P99())/float64(time.Millisecond), "p99-ms")
		})
	}
}
