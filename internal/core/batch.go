package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/edge-immersion/coic/internal/wire"
)

// This file is the batch executor between the QoS scheduler and the
// exec dispatchers. Batching is entirely server-local: the wire protocol
// is untouched, clients see one reply per request, and replies keep their
// per-request sequencing — a batch is just several queued jobs sharing
// one worker's dispatch pass. Cloud-side that pass is a genuinely batched
// DNN run (dnn.ForwardBatch: one blocked matmul per Dense layer, shared
// passes for bit-identical activations); edge-side the members fan out
// concurrently so identical descriptors collapse in the singleflight
// table and the misses arrive at the cloud together — where they batch.
//
// Drain policy: a worker that pops a batchable job first takes every
// compatible job already queued (schedQueue.tryDrain — strictly in
// class-then-EDF order, stopping at the first incompatible head, so
// batching never reorders dispatch). Only a best-effort head then waits,
// up to the deadline-capped slack window, for more arrivals; an
// interactive head never waits — its batch is whatever was already there.

// batchJob is one live member of a drained batch. The batch dispatcher
// (batchPlan.run) must set reply for every member before returning.
type batchJob struct {
	ctx    context.Context
	msg    wire.Message
	mode   Mode
	tenant string
	reply  wire.Message
}

// batchPlan configures batching for one connection pipeline. A nil plan
// (or max <= 1) means serial dispatch.
type batchPlan struct {
	max   int           // largest batch a worker may assemble
	slack time.Duration // longest a best-effort head waits for fill
	match func(*schedJob) bool
	run   func([]*batchJob)
}

// batchable reports whether a job may join a batch on this plan.
func (p *batchPlan) batchable(j *schedJob) bool {
	return p != nil && p.max > 1 && p.match(j)
}

// waitBudget caps the slack window by the head's wall-clock deadline:
// waiting must never turn a live job into a shed one.
func (p *batchPlan) waitBudget(head *schedJob, now time.Time) time.Duration {
	if head.class != wire.QoSBestEffort || p.slack <= 0 {
		return 0
	}
	budget := p.slack
	if !head.deadline.IsZero() {
		if until := head.deadline.Sub(now); until < budget {
			budget = until
		}
	}
	if budget < 0 {
		return 0
	}
	return budget
}

// errorReply builds an error frame, the batch dispatchers' counterpart of
// the serial dispatchers' local fail closures.
func errorReply(reqID uint64, code uint16, format string, args ...any) wire.Message {
	body, _ := (wire.ErrorReply{Code: code, Msg: fmt.Sprintf(format, args...)}).Marshal()
	return wire.Message{Type: wire.MsgError, RequestID: reqID, Body: body}
}

// batchPlan returns the cloud's batching configuration: exec requests
// batch into one ForwardBatch pass; model/pano fetches stay serial.
func (s *CloudServer) batchPlan() *batchPlan {
	if s.Batch <= 1 {
		return nil
	}
	return &batchPlan{
		max:   s.Batch,
		slack: s.BatchSlack,
		match: func(j *schedJob) bool { return j.msg.Type == wire.MsgExec },
		run:   s.runBatch,
	}
}

// runBatch dispatches a batch of exec requests through one batched
// recognition pass. Per-member decode failures answer individually —
// one malformed frame must not poison its batchmates.
func (s *CloudServer) runBatch(jobs []*batchJob) {
	payloads := make([][]byte, 0, len(jobs))
	members := make([]*batchJob, 0, len(jobs))
	for _, bj := range jobs {
		decodeStart := time.Now()
		req, err := wire.UnmarshalExecRequest(bj.msg.Body)
		s.Obs.observeDecode(time.Since(decodeStart))
		switch {
		case err != nil:
			bj.reply = errorReply(bj.msg.RequestID, wire.CodeBadRequest, "bad exec: %v", err)
		case req.Task != wire.TaskRecognize:
			bj.reply = errorReply(bj.msg.RequestID, wire.CodeBadRequest,
				"cloud exec supports recognition only, got %v", req.Task)
		default:
			payloads = append(payloads, req.Payload)
			members = append(members, bj)
		}
	}
	if len(members) == 0 {
		return
	}
	results, errs, _ := s.Cloud.RecognizeBatch(payloads)
	for i, bj := range members {
		switch {
		case errs[i] != nil:
			bj.reply = errorReply(bj.msg.RequestID, wire.CodeInternal, "recognize: %v", errs[i])
		case bj.ctx.Err() != nil:
			bj.reply = canceledReply(bj.msg.RequestID)
		default:
			body, _ := (wire.ExecReply{Source: wire.SourceCloud, Result: results[i]}).Marshal()
			bj.reply = wire.Message{Type: wire.MsgExecReply, RequestID: bj.msg.RequestID, Body: body}
		}
	}
}

// batchPlan returns the edge's batching configuration for exec requests.
func (s *EdgeServer) batchPlan() *batchPlan {
	if s.Batch <= 1 {
		return nil
	}
	return &batchPlan{
		max:   s.Batch,
		slack: s.BatchSlack,
		match: func(j *schedJob) bool { return j.msg.Type == wire.MsgExec },
		run:   s.runBatch,
	}
}

// runBatch on the edge dispatches the members concurrently: the edge
// runs no DNN, so the win is overlap — cache probes run together,
// identical descriptors coalesce into one upstream fetch via the
// inflight table, and distinct misses reach the cloud as one burst the
// cloud-side batcher can drain into a single ForwardBatch pass.
func (s *EdgeServer) runBatch(jobs []*batchJob) {
	if len(jobs) == 1 {
		jobs[0].reply = s.dispatch(jobs[0].ctx, jobs[0].msg, jobs[0].mode, jobs[0].tenant)
		return
	}
	var wg sync.WaitGroup
	for _, bj := range jobs {
		bj := bj
		wg.Add(1)
		go func() {
			defer wg.Done()
			bj.reply = s.dispatch(bj.ctx, bj.msg, bj.mode, bj.tenant)
		}()
	}
	wg.Wait()
}
