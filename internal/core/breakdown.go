package core

import (
	"fmt"
	"time"

	"github.com/edge-immersion/coic/internal/cache"
	"github.com/edge-immersion/coic/internal/wire"
)

// Mode selects between the CoIC framework and the paper's baseline.
type Mode int

// Execution modes.
const (
	// ModeOrigin offloads the complete IC task to the cloud with no
	// cache — "an origin version which offloads complete IC tasks to the
	// cloud without cache as the baseline".
	ModeOrigin Mode = iota
	// ModeCoIC runs the full CoIC protocol: descriptor extraction, edge
	// cache lookup, miss forwarding, result insertion.
	ModeCoIC
)

// String names the mode the way the paper's figures label it.
func (m Mode) String() string {
	if m == ModeOrigin {
		return "Origin"
	}
	return "CoIC"
}

// Breakdown decomposes one request's latency. Fields are virtual-time
// durations; Total is their sum, which equals End.Sub(Start).
type Breakdown struct {
	Task    wire.Task
	Mode    Mode
	Outcome cache.Outcome // miss for origin-mode requests

	// Extract is client-side descriptor extraction (CoIC only).
	Extract time.Duration
	// UpME is the client->edge transfer.
	UpME time.Duration
	// EdgeProc is cache lookup plus (on misses) insertion.
	EdgeProc time.Duration
	// PeerHop is the edge↔edge share of a federated lookup: peer-lookup
	// and reply transfer plus the remote cache query. Charged on peer
	// hits and on probes that still missed (a failed probe is not free).
	PeerHop time.Duration
	// Wait is time spent blocked on another request's in-flight fetch of
	// the same descriptor (miss coalescing under InflightCoalesce): the
	// request paid the residual fetch latency but saved the fetch itself.
	Wait time.Duration
	// Coalesced marks a request whose result came from joining an
	// in-flight fetch rather than the cache or its own fetch.
	Coalesced bool
	// UpEC is the edge->cloud transfer (miss/origin only).
	UpEC time.Duration
	// Cloud is cloud-side task execution.
	Cloud time.Duration
	// DownEC is the cloud->edge result transfer.
	DownEC time.Duration
	// DownME is the edge->client result transfer.
	DownME time.Duration
	// ClientProc is client-side result processing: model load + draw,
	// panorama crop. Zero for recognition (annotation rendering is
	// measured by the render task).
	ClientProc time.Duration

	// BytesUp / BytesDown count the client's airtime in each direction.
	BytesUp, BytesDown int

	Start, End time.Time
}

// Total is the user-perceived latency of the request.
func (b Breakdown) Total() time.Duration { return b.End.Sub(b.Start) }

// String summarises the breakdown for logs and examples.
func (b Breakdown) String() string {
	return fmt.Sprintf("%s/%s %s total=%s (extract=%s upME=%s edge=%s peer=%s wait=%s upEC=%s cloud=%s downEC=%s downME=%s client=%s)",
		b.Mode, b.Task, b.Outcome,
		ms(b.Total()), ms(b.Extract), ms(b.UpME), ms(b.EdgeProc), ms(b.PeerHop), ms(b.Wait), ms(b.UpEC),
		ms(b.Cloud), ms(b.DownEC), ms(b.DownME), ms(b.ClientProc))
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}
