package core

// Shape tests: assertions that the regenerated figures reproduce the
// paper's qualitative results. EXPERIMENTS.md records the quantitative
// comparison; these tests keep the shape from regressing.

import (
	"testing"
)

func TestFigure2aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size Figure 2a in -short mode")
	}
	p := DefaultParams()
	rows, err := RunFig2a(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d conditions, want 5", len(rows))
	}

	var maxRed float64
	prevOrigin := rows[0].Origin.Total() + 1
	for _, r := range rows {
		origin, hit, miss := r.Origin.Total(), r.Hit.Total(), r.Miss.Total()
		// Who wins: hit < origin < miss under every condition.
		if hit >= origin {
			t.Errorf("%s: cache hit (%v) not below origin (%v)", r.Condition.Name, hit, origin)
		}
		if miss <= origin {
			t.Errorf("%s: cache miss (%v) not above origin (%v)", r.Condition.Name, miss, origin)
		}
		// Miss pays exactly extraction + edge processing over origin
		// (plus the descriptor bytes, which are noise): check the
		// overhead structurally rather than as a loose ratio.
		overhead := miss - origin
		expected := r.Miss.Extract + r.Miss.EdgeProc
		if overhead < expected/2 || overhead > expected*2 {
			t.Errorf("%s: miss overhead %v, expected ≈ extract+edge %v", r.Condition.Name, overhead, expected)
		}
		// Origin latency falls as bandwidth grows.
		if origin >= prevOrigin {
			t.Errorf("%s: origin latency did not fall with more bandwidth", r.Condition.Name)
		}
		prevOrigin = origin
		if red := r.Reduction(); red > maxRed {
			maxRed = red
		}
	}
	// Paper: "up to 52.28% recognition latency reduction". Our
	// calibration lands the maximum in the 45-70% band (see
	// EXPERIMENTS.md for why the exact figure is not recoverable).
	if maxRed < 0.45 || maxRed > 0.70 {
		t.Errorf("max recognition reduction %.1f%% outside the expected band", maxRed*100)
	}
	// The most constrained network must be paper-scale (~2.4s origin).
	if o := rows[0].Origin.Total().Seconds(); o < 1.5 || o > 3.5 {
		t.Errorf("origin at 90/9 = %.2fs, expected paper-scale ~2.4s", o)
	}
}

func TestFigure2bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size Figure 2b in -short mode")
	}
	p := DefaultParams()
	// Trimmed ladder keeps the test under a few seconds; the harness
	// runs all six sizes.
	rows, err := RunFig2bSizes(p, []int{231, 1949, 7050})
	if err != nil {
		t.Fatal(err)
	}

	prevRed := -1.0
	for _, r := range rows {
		origin, hit, miss := r.Origin.Total(), r.Hit.Total(), r.Miss.Total()
		if hit >= origin {
			t.Errorf("%dKB: hit (%v) not below origin (%v)", r.ModelKB, hit, origin)
		}
		if miss < origin {
			t.Errorf("%dKB: miss (%v) below origin (%v)", r.ModelKB, miss, origin)
		}
		// Miss ≈ origin for renders (probe is tiny; no extraction).
		if float64(miss) > 1.1*float64(origin) {
			t.Errorf("%dKB: render miss overhead too large", r.ModelKB)
		}
		// Source format is bigger than runtime format.
		if r.OBJXBytes <= r.CMFBytes {
			t.Errorf("%dKB: OBJX (%d) not larger than CMF (%d)", r.ModelKB, r.OBJXBytes, r.CMFBytes)
		}
		// CMF size tracks the paper's ladder within 10%.
		target := r.ModelKB * 1024
		if dev := absf(float64(r.CMFBytes-target)) / float64(target); dev > 0.10 {
			t.Errorf("%dKB: CMF %d deviates %.1f%% from ladder", r.ModelKB, r.CMFBytes, dev*100)
		}
		// Reduction grows with model size (the paper's "for 3D models
		// differed in size" trend).
		red := r.Reduction()
		if red <= prevRed {
			t.Errorf("%dKB: reduction %.1f%% did not grow with size", r.ModelKB, red*100)
		}
		prevRed = red
	}
	// Paper: "up to 75.86% load latency reduction". The largest model in
	// the trimmed ladder should already reach the 65-85% band.
	if prevRed < 0.65 || prevRed > 0.85 {
		t.Errorf("max load reduction %.1f%% outside the expected band", prevRed*100)
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
