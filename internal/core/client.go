package core

import (
	"fmt"
	"time"

	"github.com/edge-immersion/coic/internal/dnn"
	"github.com/edge-immersion/coic/internal/feature"
	"github.com/edge-immersion/coic/internal/mesh"
	"github.com/edge-immersion/coic/internal/pano"
	"github.com/edge-immersion/coic/internal/render"
	"github.com/edge-immersion/coic/internal/vision"
	"github.com/edge-immersion/coic/internal/xrand"
)

// Client is the mobile device: it captures camera frames, extracts
// descriptors with the DNN trunk, loads and draws 3D models, and crops
// panoramas. Methods return results plus the virtual compute time they
// cost on the phone.
type Client struct {
	// ID distinguishes clients in multi-user simulations.
	ID     int
	Params Params
	// Trunk is the descriptor extractor: the full network's layers up to
	// the feature tap (shared weights with the cloud model — in a real
	// deployment the cloud distributes the trunk to devices).
	Trunk *dnn.Network
}

// NewClient builds a client whose trunk matches the cloud network for the
// same Params (identical seed → identical weights → identical
// descriptors, the invariant the cache depends on).
func NewClient(id int, p Params) *Client {
	full := dnn.NewEdgeNet(p.Classes(), p.DNNInput, p.Seed)
	return &Client{ID: id, Params: p, Trunk: full.Trunk()}
}

// CaptureFrame renders the camera input for observing `class` under the
// viewpoint drawn from viewSeed: the stand-in for pointing a phone at a
// real object (see DESIGN.md substitution table).
func (c *Client) CaptureFrame(class vision.Class, viewSeed uint64) *vision.Frame {
	view := vision.RandomView(xrand.New(viewSeed))
	return vision.RenderObject(class, view, c.Params.CameraW, c.Params.CameraH)
}

// Extract runs the DNN trunk over a frame and returns the feature-vector
// descriptor plus the extraction cost — step one of the CoIC protocol.
func (c *Client) Extract(frame *vision.Frame) (feature.Descriptor, time.Duration) {
	input := vision.ToTensor(frame, c.Params.DNNInput)
	vec := c.Trunk.Features(input)
	cost := c.Params.flopsTime(c.Trunk.TrunkFLOPs(), c.Params.MobileGFLOPS)
	return feature.NewVector(vec), cost
}

// LoadModel deserialises a CMF model into memory ("the renderer has to
// load the 3D model into memory first").
func (c *Client) LoadModel(cmf []byte) (*mesh.Mesh, time.Duration, error) {
	m, err := mesh.DecodeCMF(cmf)
	if err != nil {
		return nil, 0, fmt.Errorf("core: client model load: %w", err)
	}
	return m, bytesTime(len(cmf), c.Params.ClientCMFLoadBps), nil
}

// Draw rasterises a loaded model once ("and draw objects on the
// display"). The returned stats prove real pixels were produced.
func (c *Client) Draw(m *mesh.Mesh) (render.Stats, time.Duration) {
	r := render.New(320, 320)
	st := r.Draw(m, render.Identity(), render.DefaultCamera())
	return st, c.Params.ClientDrawTime
}

// CropPano decodes an RLE panorama and crops the user's viewport from it
// ("the client crops the panorama to generate the final frame").
func (c *Client) CropPano(rle []byte, vp pano.Viewport, w, h int) (*vision.Frame, time.Duration, error) {
	frame, err := pano.DecodeRLE(rle)
	if err != nil {
		return nil, 0, fmt.Errorf("core: client pano decode: %w", err)
	}
	p := &pano.Panorama{Frame: frame}
	out := p.Crop(vp, w, h)
	return out, c.Params.ClientCropTime, nil
}
