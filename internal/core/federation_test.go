package core

import (
	"context"
	"net"
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/cache"
	"github.com/edge-immersion/coic/internal/netsim"
	"github.com/edge-immersion/coic/internal/trace"
	"github.com/edge-immersion/coic/internal/wire"
)

// fedRig builds n federated edges (consistent hashing over a default
// mesh) with one session per edge, all sharing one cloud.
func fedRig(t *testing.T, p Params, n int) ([]*Session, []*Edge, *Cloud) {
	t.Helper()
	cloud := NewCloud(p)
	edges := make([]*Edge, n)
	sessions := make([]*Session, n)
	for i := range edges {
		edges[i] = NewEdge(p)
	}
	Federate(edges, FederationConfig{
		Mesh:        netsim.NewMesh(n, netsim.DefaultPeerCondition(), p.Seed),
		Partitioned: true,
		Replicate:   true,
	})
	for i := range edges {
		topo := netsim.NewTopology(netsim.Condition{Name: "200/20", MobileEdge: 200, EdgeCloud: 20}, p.Seed+uint64(i))
		sessions[i] = NewSession(NewClient(i, p), edges[i], cloud, topo)
	}
	return sessions, edges, cloud
}

// modelOwnedBy finds a repository model whose descriptor's ring home is
// EdgeID(want) in an n-edge federation.
func modelOwnedBy(t *testing.T, cloud *Cloud, n, want int) string {
	t.Helper()
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = EdgeID(i)
	}
	ring := cache.NewRing(ids, 0)
	for _, id := range cloud.ModelIDs() {
		if ring.Owner(ModelDescriptor(id).Key()) == EdgeID(want) {
			return id
		}
	}
	t.Fatalf("no repository model homed at %s", EdgeID(want))
	return ""
}

func TestFederationPeerHitVirtual(t *testing.T) {
	p := testParams()
	sessions, edges, cloud := fedRig(t, p, 2)
	model := modelOwnedBy(t, cloud, 2, 0)

	// Edge 0's user computes the result: cloud fetch, cached at edge 0
	// (which is also the key's home, so no publish traffic).
	warm, err := sessions[0].Render(context.Background(), epoch, model, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cloud == 0 {
		t.Fatal("cold request must reach the cloud")
	}

	// Edge 1's user wants the same model: local miss, one peer hop to the
	// home edge, no cloud.
	b, err := sessions[1].Render(context.Background(), epoch, model, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if b.Outcome == cache.OutcomeMiss {
		t.Fatalf("peer lookup missed: %+v", b)
	}
	if b.Cloud != 0 || b.UpEC != 0 {
		t.Fatalf("peer hit still paid for the cloud: %+v", b)
	}
	if b.PeerHop <= 0 {
		t.Fatalf("peer hop cost not charged: %+v", b)
	}
	st := edges[1].Stats()
	if st.PeerHits != 1 {
		t.Fatalf("edge 1 peer hits = %d, want 1", st.PeerHits)
	}
	fs := edges[1].Federation().Stats()
	if fs.Probes != 1 || fs.Hits != 1 {
		t.Fatalf("federation stats = %+v", fs)
	}

	// Replication: the peer hit was adopted locally, so the next request
	// from edge 1 resolves without any peer traffic.
	b2, err := sessions[1].Render(context.Background(), epoch, model, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Outcome != cache.OutcomeExact || b2.PeerHop != 0 {
		t.Fatalf("replicated entry not served locally: %+v", b2)
	}
}

func TestFederationPublishToHome(t *testing.T) {
	p := testParams()
	sessions, edges, cloud := fedRig(t, p, 2)
	// The model's home is edge 1, but edge 0's user computes it first:
	// the result must be published to edge 1.
	model := modelOwnedBy(t, cloud, 2, 1)

	if _, err := sessions[0].Render(context.Background(), epoch, model, ModeCoIC); err != nil {
		t.Fatal(err)
	}
	if pub := edges[0].Federation().Stats().Published; pub != 1 {
		t.Fatalf("published = %d, want 1", pub)
	}
	if ri := edges[1].Stats().RemoteInserts; ri != 1 {
		t.Fatalf("edge 1 remote inserts = %d, want 1", ri)
	}

	// Edge 1's user now hits locally — the publish seeded the home.
	b, err := sessions[1].Render(context.Background(), epoch, model, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if b.Outcome != cache.OutcomeExact || b.Cloud != 0 || b.PeerHop != 0 {
		t.Fatalf("home edge did not hit locally: %+v", b)
	}
}

func TestFederationMissFallsBackToCloud(t *testing.T) {
	p := testParams()
	sessions, edges, cloud := fedRig(t, p, 2)
	model := modelOwnedBy(t, cloud, 2, 0)

	// Nobody has computed this model: edge 1 misses locally, probes the
	// home (edge 0) fruitlessly — paying for the hop — then goes to the
	// cloud.
	b, err := sessions[1].Render(context.Background(), epoch, model, ModeCoIC)
	if err != nil {
		t.Fatal(err)
	}
	if b.Outcome != cache.OutcomeMiss || b.Cloud == 0 {
		t.Fatalf("expected cloud fallback: %+v", b)
	}
	if b.PeerHop <= 0 {
		t.Fatalf("failed probe must still cost a hop: %+v", b)
	}
	fs := edges[1].Federation().Stats()
	if fs.Probes != 1 || fs.Misses != 1 || fs.Hits != 0 {
		t.Fatalf("federation stats = %+v", fs)
	}
}

func TestRunFederationCooperationWins(t *testing.T) {
	// The acceptance experiment at test scale: a shared workload over
	// capacity-constrained edges. Federation must (a) beat isolated edges
	// at the same edge count, and (b) raise the aggregate hit ratio and
	// cut cloud fetches as edges are added.
	if raceEnabled {
		t.Skip("deterministic single-threaded replay; ~10x slower and redundant under -race")
	}
	p := testParams()
	// 1 MB edges against a ~2.5 MB working set (eight 236 KB annotation
	// models plus pano frames): a lone edge churns, a federation pools.
	p.EdgeCacheBytes = 1 << 20
	events, err := trace.Generate(trace.Config{
		Users: 16, Cells: 8, Duration: 30 * time.Second,
		RatePerUser: 1, Objects: 96, ZipfAlpha: 0.8,
		Locality: 0.7, HotSetSize: 12,
		TaskMix: trace.TaskMix{Recognize: 0.3, Render: 0.5, Pano: 0.2},
		Seed:    p.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunFederation(p, FederationConfigExp{
		EdgeCounts: []int{1, 4},
		Placements: []Placement{PlaceByCell},
		Events:     events,
		Baseline:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]FederationRow{}
	for _, r := range rows {
		if r.Errors > 0 {
			t.Fatalf("row %+v has errors", r)
		}
		key := "iso"
		if r.Federated {
			key = "fed"
		}
		byKey[fmtKey(r.Edges, key)] = r
	}
	one, iso4, fed4 := byKey[fmtKey(1, "iso")], byKey[fmtKey(4, "iso")], byKey[fmtKey(4, "fed")]
	if fed4.HitRatio <= iso4.HitRatio {
		t.Fatalf("federation did not beat isolation at 4 edges: %.3f vs %.3f", fed4.HitRatio, iso4.HitRatio)
	}
	if fed4.CloudFetches >= iso4.CloudFetches {
		t.Fatalf("federation did not offload the cloud at 4 edges: %d vs %d", fed4.CloudFetches, iso4.CloudFetches)
	}
	if fed4.HitRatio < one.HitRatio {
		t.Fatalf("adding federated edges lowered the hit ratio: %.3f (4 edges) vs %.3f (1)", fed4.HitRatio, one.HitRatio)
	}
	if fed4.CloudFetches > one.CloudFetches {
		t.Fatalf("adding federated edges raised cloud traffic: %d (4 edges) vs %d (1)", fed4.CloudFetches, one.CloudFetches)
	}
	if fed4.PeerHits == 0 || fed4.Published == 0 {
		t.Fatalf("federation ran but never cooperated: %+v", fed4)
	}

	// Determinism: the whole sweep replays identically.
	again, err := RunFederation(p, FederationConfigExp{
		EdgeCounts: []int{1, 4},
		Placements: []Placement{PlaceByCell},
		Events:     events,
		Baseline:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != again[i] {
			t.Fatalf("row %d not deterministic:\n%+v\n%+v", i, rows[i], again[i])
		}
	}
}

func fmtKey(edges int, mode string) string {
	return mode + string(rune('0'+edges))
}

func TestSetupFederationRejectsBadMembership(t *testing.T) {
	p := testParams()
	for _, tc := range []struct {
		name  string
		self  string
		peers []string
	}{
		{"empty self", "", []string{"b:1"}},
		{"self in peers", "a:1", []string{"b:1", "a:1"}},
		{"duplicate peer", "a:1", []string{"b:1", "b:1"}},
	} {
		srv := &EdgeServer{Edge: NewEdge(p)}
		if err := srv.SetupFederation(tc.self, tc.peers); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// startFedStack brings up a cloud plus n federated TCP edges.
func startFedStack(t *testing.T, p Params, n int) ([]string, []*Edge, func()) {
	t.Helper()
	cloud := NewCloud(p)
	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go (&CloudServer{Cloud: cloud}).Serve(cloudLn)

	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	edges := make([]*Edge, n)
	servers := make([]*EdgeServer, n)
	for i := 0; i < n; i++ {
		lns[i], err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = lns[i].Addr().String()
		edges[i] = NewEdge(p)
		servers[i] = &EdgeServer{Edge: edges[i], CloudAddr: cloudLn.Addr().String()}
	}
	for i, srv := range servers {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		if err := srv.SetupFederation(addrs[i], peers); err != nil {
			t.Fatal(err)
		}
		go srv.Serve(lns[i])
	}
	return addrs, edges, func() {
		for _, ln := range lns {
			ln.Close()
		}
		cloudLn.Close()
	}
}

func TestTCPFederationSharesAcrossEdges(t *testing.T) {
	p := testParams()
	addrs, edges, stop := startFedStack(t, p, 2)
	defer stop()

	cliA, err := DialEdge(addrs[0], NewClient(0, p), ModeCoIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cliA.Close()
	cliB, err := DialEdge(addrs[1], NewClient(1, p), ModeCoIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cliB.Close()

	model := AnnotationModelID("car")
	if _, err := cliA.Render(model); err != nil {
		t.Fatal(err)
	}
	// Edge B has never seen the model, but the federation has: either the
	// publish already seeded B (B is the key's home) or B's probe reaches
	// A. Both ways B answers without the cloud. Publishing is
	// asynchronous, so when B is the home, wait for the insert to land
	// before asking.
	ring := cache.NewRing(addrs, 0)
	if ring.Owner(ModelDescriptor(model).Key()) == addrs[1] {
		deadline := time.Now().Add(5 * time.Second)
		for edges[1].Stats().RemoteInserts == 0 {
			if time.Now().After(deadline) {
				t.Fatal("publish to home edge never arrived")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if _, err := cliB.Render(model); err != nil {
		t.Fatal(err)
	}
	stB := edges[1].Stats()
	hits := stB.Exact[wire.TaskRender] + stB.Similar[wire.TaskRender]
	if hits != 1 {
		t.Fatalf("edge B hits = %d, want 1 (federation must answer)", hits)
	}
	fedCooperated := edges[1].Stats().PeerHits+edges[1].Stats().RemoteInserts > 0
	if !fedCooperated {
		t.Fatal("no peer hit and no remote insert — where did B's hit come from?")
	}
}

func TestTCPFederationPeerDownDegrades(t *testing.T) {
	p := testParams()
	// A federation of one live edge and one address nobody listens on:
	// every probe to the dead peer must fail fast and fall back to the
	// cloud — degraded single-edge behaviour, not an outage.
	cloud := NewCloud(p)
	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cloudLn.Close()
	go (&CloudServer{Cloud: cloud}).Serve(cloudLn)

	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close() // nobody home

	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer edgeLn.Close()
	edge := NewEdge(p)
	srv := &EdgeServer{Edge: edge, CloudAddr: cloudLn.Addr().String()}
	if err := srv.SetupFederation(edgeLn.Addr().String(), []string{deadAddr}); err != nil {
		t.Fatal(err)
	}
	go srv.Serve(edgeLn)

	cli, err := DialEdge(edgeLn.Addr().String(), NewClient(0, p), ModeCoIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Render every annotation model: some are homed at the dead peer, so
	// their probes fail; all requests must still succeed via the cloud.
	for _, id := range cloud.AnnotationModelIDs() {
		if _, err := cli.Render(id); err != nil {
			t.Fatalf("render %s with dead peer: %v", id, err)
		}
	}
	// And the cache still works: repeats are local hits.
	for _, id := range cloud.AnnotationModelIDs() {
		if _, err := cli.Render(id); err != nil {
			t.Fatal(err)
		}
	}
	st := edge.Stats()
	if hits := st.Exact[wire.TaskRender]; hits < uint64(len(cloud.AnnotationModelIDs())) {
		t.Fatalf("repeat renders did not hit locally: %d", hits)
	}
}
