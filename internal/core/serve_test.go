package core

import (
	"net"
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/netsim"
	"github.com/edge-immersion/coic/internal/pano"
	"github.com/edge-immersion/coic/internal/vision"
	"github.com/edge-immersion/coic/internal/wire"
)

// startStack brings up an in-process cloud + edge over loopback TCP and
// returns the edge address plus a shutdown func.
func startStack(t *testing.T, p Params) (string, *Edge, func()) {
	t.Helper()
	cloud := NewCloud(p)
	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go (&CloudServer{Cloud: cloud}).Serve(cloudLn)

	edge := NewEdge(p)
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	es := &EdgeServer{Edge: edge, CloudAddr: cloudLn.Addr().String()}
	go es.Serve(edgeLn)

	return edgeLn.Addr().String(), edge, func() {
		edgeLn.Close()
		cloudLn.Close()
	}
}

func TestTCPRecognizeMissThenHit(t *testing.T) {
	p := testParams()
	addr, edge, stop := startStack(t, p)
	defer stop()

	cli, err := DialEdge(addr, NewClient(0, p), ModeCoIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	res1, lat1, err := cli.Recognize(vision.ClassStopSign, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Label == "" || res1.AnnotationModelID == "" {
		t.Fatalf("empty result: %+v", res1)
	}
	res2, _, err := cli.Recognize(vision.ClassStopSign, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Label != res1.Label {
		t.Fatalf("labels diverge: %q vs %q", res2.Label, res1.Label)
	}
	st := edge.Stats()
	if st.Lookups[wire.TaskRecognize] != 2 {
		t.Fatalf("lookups = %d", st.Lookups[wire.TaskRecognize])
	}
	hits := st.Exact[wire.TaskRecognize] + st.Similar[wire.TaskRecognize]
	if hits != 1 {
		t.Fatalf("hits = %d, want 1 (second request must hit)", hits)
	}
	_ = lat1
}

func TestTCPRenderAndPano(t *testing.T) {
	p := testParams()
	addr, edge, stop := startStack(t, p)
	defer stop()

	cli, err := DialEdge(addr, NewClient(0, p), ModeCoIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if _, err := cli.Render(AnnotationModelID("tree")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Render(AnnotationModelID("tree")); err != nil {
		t.Fatal(err)
	}
	if got := edge.Stats().Exact[wire.TaskRender]; got != 1 {
		t.Fatalf("render hits = %d", got)
	}

	vp := pano.Viewport{Yaw: 0.4, FOV: 1.5}
	if _, err := cli.Pano("tcp-video", 3, vp); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Pano("tcp-video", 3, vp); err != nil {
		t.Fatal(err)
	}
	if got := edge.Stats().Exact[wire.TaskPano]; got != 1 {
		t.Fatalf("pano hits = %d", got)
	}
}

func TestTCPOriginModeBypassesCache(t *testing.T) {
	p := testParams()
	addr, edge, stop := startStack(t, p)
	defer stop()

	cli, err := DialEdge(addr, NewClient(0, p), ModeOrigin, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if _, _, err := cli.Recognize(vision.ClassCar, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.Recognize(vision.ClassCar, 2); err != nil {
		t.Fatal(err)
	}
	st := edge.Stats()
	if st.Lookups[wire.TaskRecognize] != 0 || st.Inserts != 0 {
		t.Fatalf("origin mode touched the cache: %+v", st)
	}
}

func TestTCPUnknownModelError(t *testing.T) {
	p := testParams()
	addr, _, stop := startStack(t, p)
	defer stop()

	cli, err := DialEdge(addr, NewClient(0, p), ModeCoIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if _, err := cli.Render("not-a-model"); err == nil {
		t.Fatal("unknown model did not error")
	}
	// The connection must still be usable after an error reply.
	if _, err := cli.Render(AnnotationModelID("dog")); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

func TestTCPShapedConnectionStillCorrect(t *testing.T) {
	p := testParams()
	addr, _, stop := startStack(t, p)
	defer stop()

	// Client uplink shaped to 20 Mbit: the 64KB frame takes ~25ms extra.
	wrap := func(c net.Conn) net.Conn { return netsim.NewShaper(c, 20_000_000, time.Millisecond) }
	cli, err := DialEdge(addr, NewClient(0, p), ModeCoIC, wrap)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	res, lat, err := cli.Recognize(vision.ClassPerson, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Label == "" {
		t.Fatal("no result over shaped conn")
	}
	if lat <= 0 {
		t.Fatal("latency not measured")
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	p := testParams()
	addr, edge, stop := startStack(t, p)
	defer stop()

	const n = 4
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			cli, err := DialEdge(addr, NewClient(i, p), ModeCoIC, nil)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			for j := 0; j < 3; j++ {
				if _, err := cli.Render(AnnotationModelID("car")); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st := edge.Stats()
	if st.Lookups[wire.TaskRender] != n*3 {
		t.Fatalf("lookups = %d, want %d", st.Lookups[wire.TaskRender], n*3)
	}
	hits := st.Exact[wire.TaskRender]
	if hits < n*3-n { // at most one miss per concurrent first-request race
		t.Fatalf("hits = %d, want ≥ %d — cross-user sharing broken", hits, n*3-n)
	}
}

func TestTCPCloudUnreachable(t *testing.T) {
	// Edge with a dead cloud address: cache hits must still be served,
	// misses must fail with a protocol error rather than hanging.
	p := testParams()
	edge := NewEdge(p)
	// Pre-warm the cache directly so one request can hit.
	id := AnnotationModelID("car")
	cloud := NewCloud(p)
	data, _, err := cloud.FetchModel(id)
	if err != nil {
		t.Fatal(err)
	}
	edge.Insert(ModelDescriptor(id), data, 1)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	es := &EdgeServer{Edge: edge, CloudAddr: "127.0.0.1:1"} // nothing listens there
	go es.Serve(ln)

	cli, err := DialEdge(ln.Addr().String(), NewClient(0, p), ModeCoIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Hit path works without the cloud.
	if _, err := cli.Render(id); err != nil {
		t.Fatalf("cache hit needed the cloud: %v", err)
	}
	// Miss path errors out cleanly.
	if _, err := cli.Render(AnnotationModelID("tree")); err == nil {
		t.Fatal("miss with dead cloud did not error")
	}
}
