package core

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/cache"
	"github.com/edge-immersion/coic/internal/wire"
)

// gossipEdge is one TCP edge of a gossip-membered fleet, with handles to
// stop it gracefully (the SIGTERM decommission path) or crash it hard
// (listener and every accepted connection severed, gossip silenced, no
// leave broadcast — what a power failure looks like to the peers).
type gossipEdge struct {
	addr string
	edge *Edge
	srv  *EdgeServer
	done chan error

	cancel context.CancelFunc

	mu    sync.Mutex
	ln    net.Listener
	conns []net.Conn
}

// stop is the graceful path: cancel the serve context and wait for
// ServeContext to drain, decommission and return.
func (g *gossipEdge) stop(t *testing.T) {
	t.Helper()
	g.cancel()
	select {
	case err := <-g.done:
		if err != nil {
			t.Fatalf("edge %s: %v", g.addr, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("edge %s did not shut down", g.addr)
	}
}

// kill is the crash: no decommission runs (the serve context stays
// live), the listener and all accepted connections are torn down so
// peers' probes fail from now on.
func (g *gossipEdge) kill() {
	g.mu.Lock()
	g.ln.Close()
	for _, c := range g.conns {
		c.Close()
	}
	g.mu.Unlock()
	<-g.done
}

// startGossipEdge boots one edge with gossip membership at a fast test
// cadence and serves it until stopped or killed.
func startGossipEdge(t *testing.T, p Params, cloudAddr string, seeds []string, rf int) *gossipEdge {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	g := &gossipEdge{addr: ln.Addr().String(), ln: ln, done: make(chan error, 1)}
	g.edge = NewEdge(p)
	g.srv = &EdgeServer{
		Edge:           g.edge,
		CloudAddr:      cloudAddr,
		Replication:    rf,
		GossipInterval: 25 * time.Millisecond,
		// Track accepted connections so kill() can sever them: a crashed
		// process drops its sockets, a closed listener alone does not.
		WrapClient: func(c net.Conn) net.Conn {
			g.mu.Lock()
			g.conns = append(g.conns, c)
			g.mu.Unlock()
			return c
		},
	}
	if err := g.srv.SetupGossip(g.addr, seeds); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	g.cancel = cancel
	go func() { g.done <- g.srv.ServeContext(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		ln.Close()
		select {
		case <-g.done:
		case <-time.After(5 * time.Second):
		}
	})
	return g
}

// startGossipFleet boots a cloud and n edges, all seeded at the first
// edge, and waits until every member sees the full fleet alive.
func startGossipFleet(t *testing.T, p Params, n, rf int) (fleet []*gossipEdge, cloudAddr string) {
	t.Helper()
	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cloudLn.Close() })
	go (&CloudServer{Cloud: NewCloud(p)}).Serve(cloudLn)
	cloudAddr = cloudLn.Addr().String()

	seedEdge := startGossipEdge(t, p, cloudAddr, nil, rf)
	fleet = []*gossipEdge{seedEdge}
	for i := 1; i < n; i++ {
		fleet = append(fleet, startGossipEdge(t, p, cloudAddr, []string{seedEdge.addr}, rf))
	}
	waitFleetAlive(t, fleet, n)
	return fleet, cloudAddr
}

// waitFleetAlive waits until every listed edge counts want members alive
// and its ring spans exactly them.
func waitFleetAlive(t *testing.T, fleet []*gossipEdge, want int) {
	t.Helper()
	for _, g := range fleet {
		g := g
		waitFor(t, "fleet convergence", func() bool {
			alive, _, _ := g.srv.MemberCounts()
			return alive == want && g.edge.Federation().Ring().Len() == want
		})
	}
}

// warmModels renders every annotation model through a client on the
// given edge and waits until each publish has landed on every ring
// owner, so later assertions see a fully replicated fleet.
func warmModels(t *testing.T, p Params, fleet []*gossipEdge, via int, rf int) []string {
	t.Helper()
	cli, err := DialEdge(fleet[via].addr, NewClient(100+via, p), ModeCoIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	models := NewCloud(p).AnnotationModelIDs()
	for _, id := range models {
		if _, err := cli.Render(id); err != nil {
			t.Fatal(err)
		}
	}
	addrs := make([]string, len(fleet))
	edgeAt := map[string]*Edge{}
	for i, g := range fleet {
		addrs[i] = g.addr
		edgeAt[g.addr] = g.edge
	}
	ring := cache.NewRing(addrs, 0)
	for _, id := range models {
		desc := ModelDescriptor(id)
		for _, owner := range ring.OwnersFor(desc.Key(), rf) {
			owner := owner
			waitFor(t, "publish to land on "+owner, func() bool {
				_, res := edgeAt[owner].PeerProbe(-1, desc)
				return res.Hit()
			})
		}
	}
	return models
}

func TestGossipFleetConvergesFromOneSeed(t *testing.T) {
	p := testParams()
	fleet, _ := startGossipFleet(t, p, 3, 2)

	// All three views agree, nobody is suspect or dead, and the rings
	// carry identical membership (versions are node-local and may differ).
	want := map[string]bool{}
	for _, g := range fleet {
		want[g.addr] = true
	}
	for _, g := range fleet {
		alive, suspect, dead := g.srv.MemberCounts()
		if alive != 3 || suspect != 0 || dead != 0 {
			t.Fatalf("%s counts = %d/%d/%d, want 3/0/0", g.addr, alive, suspect, dead)
		}
		nodes := g.edge.Federation().Ring().Nodes()
		if len(nodes) != 3 {
			t.Fatalf("%s ring spans %v", g.addr, nodes)
		}
		for _, n := range nodes {
			if !want[n] {
				t.Fatalf("%s ring contains stranger %s", g.addr, n)
			}
		}
		if v := g.srv.RingVersion(); v < 2 {
			t.Fatalf("%s ring version = %d, want >= 2 (grew from the solo ring)", g.addr, v)
		}
	}

	// The discovered federation routes like a declared one: a render
	// through any member works and is cached.
	cli, err := DialEdge(fleet[1].addr, NewClient(0, p), ModeCoIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	id := NewCloud(p).AnnotationModelIDs()[0]
	if _, err := cli.Render(id); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Render(id); err != nil {
		t.Fatal(err)
	}
	st := fleet[1].edge.Stats()
	if st.Exact[wire.TaskRender] == 0 {
		t.Fatal("repeat render missed the local cache")
	}
}

func TestGossipJoinMigratesOwnershipWithoutKeyLoss(t *testing.T) {
	p := testParams()
	fleet, cloudAddr := startGossipFleet(t, p, 2, 2)
	models := warmModels(t, p, fleet, 0, 2)

	// A third edge joins via the seed. The fleet converges and the keys
	// the newcomer now co-owns are pushed to it by migration sweeps.
	joiner := startGossipEdge(t, p, cloudAddr, []string{fleet[0].addr}, 2)
	fleet = append(fleet, joiner)
	waitFleetAlive(t, fleet, 3)

	addrs := []string{fleet[0].addr, fleet[1].addr, joiner.addr}
	ring := cache.NewRing(addrs, 0)
	owned := 0
	for _, id := range models {
		desc := ModelDescriptor(id)
		for _, owner := range ring.OwnersFor(desc.Key(), 2) {
			if owner != joiner.addr {
				continue
			}
			owned++
			waitFor(t, "migration of "+id+" to the joiner", func() bool {
				_, res := joiner.edge.PeerProbe(-1, desc)
				return res.Hit()
			})
		}
	}
	if owned > 0 {
		var migrated uint64
		for _, g := range fleet[:2] {
			migrated += g.srv.MigratedKeys()
		}
		if migrated == 0 {
			t.Fatal("keys re-homed to the joiner but no sweep counted them")
		}
	}

	// No key was lost in the shuffle: replaying the workload through the
	// other original member stays inside the fleet — zero new cloud
	// round trips across every edge.
	before := fleet[0].srv.CloudFetches() + fleet[1].srv.CloudFetches() + joiner.srv.CloudFetches()
	cli, err := DialEdge(fleet[1].addr, NewClient(7, p), ModeCoIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for _, id := range models {
		if _, err := cli.Render(id); err != nil {
			t.Fatal(err)
		}
	}
	after := fleet[0].srv.CloudFetches() + fleet[1].srv.CloudFetches() + joiner.srv.CloudFetches()
	if after != before {
		t.Fatalf("join leaked %d requests to the cloud", after-before)
	}
}

func TestGossipDeathConvergesAndLosesNoKeys(t *testing.T) {
	p := testParams()
	fleet, _ := startGossipFleet(t, p, 4, 2)
	models := warmModels(t, p, fleet, 0, 2)

	// Crash an edge that is not the warm edge (0) nor the replay edge
	// (1): its sockets drop mid-fleet with no leave broadcast.
	victim := fleet[2]
	victim.kill()
	survivors := []*gossipEdge{fleet[0], fleet[1], fleet[3]}

	// Every survivor independently runs suspect → dead and shrinks its
	// ring to the three live members.
	waitFleetAlive(t, survivors, 3)
	for _, g := range survivors {
		_, _, dead := g.srv.MemberCounts()
		if dead == 0 {
			t.Fatalf("%s converged without declaring the victim dead", g.addr)
		}
		for _, n := range g.edge.Federation().Ring().Nodes() {
			if n == victim.addr {
				t.Fatalf("%s still routes to the dead member", g.addr)
			}
		}
	}

	// rf=2 means every published key survives on a live replica: the full
	// replay through a survivor is answered inside the fleet — locally,
	// by a replica probe, or by a key migration/read-repair copy — with
	// zero new cloud round trips.
	var before uint64
	for _, g := range survivors {
		before += g.srv.CloudFetches()
	}
	cli, err := DialEdge(fleet[1].addr, NewClient(8, p), ModeCoIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for _, id := range models {
		if _, err := cli.Render(id); err != nil {
			t.Fatal(err)
		}
	}
	var after uint64
	for _, g := range survivors {
		after += g.srv.CloudFetches()
	}
	if after != before {
		t.Fatalf("death lost %d keys to the cloud", after-before)
	}
}

func TestGossipDecommissionDrainsBeforeExit(t *testing.T) {
	p := testParams()
	fleet, _ := startGossipFleet(t, p, 3, 1)
	models := warmModels(t, p, fleet, 0, 1)

	// With rf=1 each key lives at its home (plus the warm edge's local
	// copy): a member that vanished without draining would take its arc
	// of the keyspace with it. Decommission instead: home keys must land
	// on their new owners before the process exits.
	victim := fleet[2]
	addrs := []string{fleet[0].addr, fleet[1].addr, victim.addr}
	ring := cache.NewRing(addrs, 0)
	next := ring.Without(victim.addr)
	type moved struct {
		id    string
		owner string
	}
	var handoffs []moved
	for _, id := range models {
		if ring.Owner(ModelDescriptor(id).Key()) == victim.addr {
			handoffs = append(handoffs, moved{id, next.Owner(ModelDescriptor(id).Key())})
		}
	}

	victim.stop(t) // the SIGTERM path: drain, leave, exit

	if len(handoffs) > 0 && victim.srv.MigratedKeys() == 0 {
		t.Fatal("victim owned keys but drained none")
	}
	edgeAt := map[string]*Edge{fleet[0].addr: fleet[0].edge, fleet[1].addr: fleet[1].edge}
	for _, h := range handoffs {
		desc := ModelDescriptor(h.id)
		if _, res := edgeAt[h.owner].PeerProbe(-1, desc); !res.Hit() {
			t.Fatalf("%s was not drained to its successor %s", h.id, h.owner)
		}
	}

	// The leave broadcast retires the victim with no suspicion phase and
	// the survivors' rings shrink.
	survivors := fleet[:2]
	waitFleetAlive(t, survivors, 2)
	for _, g := range survivors {
		_, _, dead := g.srv.MemberCounts()
		if dead == 0 {
			t.Fatalf("%s never saw the leave", g.addr)
		}
	}
}

func TestMembershipFramesRejectedWithoutGossip(t *testing.T) {
	p := testParams()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srv := &EdgeServer{Edge: NewEdge(p)}
	go srv.Serve(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body, err := (wire.Membership{From: "stranger:1", Epoch: 1}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteMessage(conn, wire.Message{Type: wire.MsgMemberPing, RequestID: 1, Body: body}); err != nil {
		t.Fatal(err)
	}
	reply, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.MsgError {
		t.Fatalf("gossip-less edge answered %v, want error", reply.Type)
	}
}

func TestMembershipFrameAnsweredWithAck(t *testing.T) {
	p := testParams()
	cloudLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cloudLn.Close()
	go (&CloudServer{Cloud: NewCloud(p)}).Serve(cloudLn)
	g := startGossipEdge(t, p, cloudLn.Addr().String(), nil, 1)

	conn, err := net.Dial("tcp", g.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body, err := (wire.Membership{
		From:    "newcomer:1",
		Epoch:   1,
		Members: []wire.MemberEntry{{ID: "newcomer:1", Incarnation: 1, Status: wire.MemberAlive}},
	}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteMessage(conn, wire.Message{Type: wire.MsgMemberPing, RequestID: 9, Body: body}); err != nil {
		t.Fatal(err)
	}
	reply, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.MsgMemberAck || reply.RequestID != 9 {
		t.Fatalf("reply = %v id %d, want member-ack id 9", reply.Type, reply.RequestID)
	}
	ack, err := wire.UnmarshalMembership(reply.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ack.From != g.addr {
		t.Fatalf("ack.From = %q, want %q", ack.From, g.addr)
	}
	seen := map[string]uint8{}
	for _, m := range ack.Members {
		seen[m.ID] = m.Status
	}
	if seen[g.addr] != wire.MemberAlive || seen["newcomer:1"] != wire.MemberAlive {
		t.Fatalf("ack did not merge the newcomer: %+v", ack.Members)
	}
}
