package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/pano"
	"github.com/edge-immersion/coic/internal/vision"
	"github.com/edge-immersion/coic/internal/wire"
)

// TestMuxClientTasksRoundTrip drives all three task kinds through the
// demultiplexed client: build → RoundTrip → finish, against a live
// edge+cloud stack.
func TestMuxClientTasksRoundTrip(t *testing.T) {
	p := testParams()
	addr, _, stop := startSlowStack(t, p, 0, nil)
	defer stop()

	ctx := context.Background()
	m, err := DialMuxEdge(ctx, addr, NewClient(0, p), ModeCoIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Recognition (exec path), with QoS metadata on the wire.
	msg, err := m.BuildRecognize(vision.ClassCar, 7, wire.QoSInteractive, time.Now().Add(time.Minute), 0)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := m.RoundTrip(ctx, msg)
	if err != nil {
		t.Fatal(err)
	}
	res, src, err := m.FinishRecognize(reply)
	if err != nil || res.Label == "" {
		t.Fatalf("recognize = %+v, %v", res, err)
	}
	if src != wire.SourceCloud {
		t.Fatalf("first recognition source = %d, want cloud", src)
	}

	// Render (model fetch + load + draw).
	msg, err = m.BuildRender(AnnotationModelID(vision.ClassCar.String()), wire.QoSBestEffort, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reply, err = m.RoundTrip(ctx, msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FinishRender(reply); err != nil {
		t.Fatal(err)
	}

	// Pano (fetch + crop).
	msg, err = m.BuildPano("mux-video", 1, wire.QoSBestEffort, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reply, err = m.RoundTrip(ctx, msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FinishPano(reply, pano.Viewport{FOV: 1.5}); err != nil {
		t.Fatal(err)
	}

	// A remote failure surfaces as *RemoteError with the wire code.
	msg, err = m.BuildRender("no/such/model", wire.QoSBestEffort, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.RoundTrip(ctx, msg)
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeUnknownModel {
		t.Fatalf("unknown model error = %v, want RemoteError{CodeUnknownModel}", err)
	}
	if !strings.Contains(re.Error(), "remote error") {
		t.Fatalf("RemoteError.Error() = %q", re.Error())
	}
}

// TestMuxClientCancelMidFlight: a context death mid-round-trip returns
// promptly, cancels server-side, and leaves the connection usable for
// the next request.
func TestMuxClientCancelMidFlight(t *testing.T) {
	p := testParams()
	addr, es, stop := startSlowStack(t, p, 400*time.Millisecond, nil)
	defer stop()

	m, err := DialMuxEdge(context.Background(), addr, NewClient(0, p), ModeCoIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		waitFor(t, "the fetch to start", func() bool { return es.Edge.Inflight().Len() == 1 })
		cancel()
	}()
	msg, err := m.BuildPano("mux-cancel", 3, wire.QoSBestEffort, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := m.RoundTrip(ctx, msg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled round trip = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation waited out the fetch")
	}
	waitFor(t, "the abandoned flight to abort", func() bool {
		return es.Edge.Inflight().Len() == 0
	})

	// The connection survives: the next request round-trips fine.
	msg, err = m.BuildPano("mux-cancel", 4, wire.QoSBestEffort, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RoundTrip(context.Background(), msg); err != nil {
		t.Fatalf("post-cancel request failed: %v", err)
	}
}

// TestMuxClientCloseFailsInflight: closing the connection fails pending
// round trips with ErrConnClosed and further Starts too.
func TestMuxClientCloseFailsInflight(t *testing.T) {
	p := testParams()
	cloudAddr, stopCloud := startHungCloud(t)
	defer stopCloud()
	addr, _, stop := startQoSEdge(t, cloudAddr, 1, 4)
	defer stop()

	m, err := DialMuxEdge(context.Background(), addr, NewClient(0, p), ModeCoIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := m.BuildPano("mux-close", 1, wire.QoSBestEffort, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ch, err := m.Start(msg)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("closed connection delivered a reply")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pending reply channel never closed after Close")
	}
	if _, _, err := m.Start(msg); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("Start after close = %v, want ErrConnClosed", err)
	}
	if err := m.SendCancel(1); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("SendCancel after close = %v, want ErrConnClosed", err)
	}
}

// TestMuxClientForgetDropsReply: a forgotten request's reply is dropped
// by the read loop instead of being delivered.
func TestMuxClientForgetDropsReply(t *testing.T) {
	p := testParams()
	addr, _, stop := startSlowStack(t, p, 100*time.Millisecond, nil)
	defer stop()

	m, err := DialMuxEdge(context.Background(), addr, NewClient(0, p), ModeCoIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	msg, err := m.BuildPano("mux-forget", 1, wire.QoSBestEffort, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	id, ch, err := m.Start(msg)
	if err != nil {
		t.Fatal(err)
	}
	m.Forget(id)
	select {
	case reply := <-ch:
		t.Fatalf("forgotten request delivered %v", reply.Type)
	case <-time.After(time.Second):
	}
	// The connection is still aligned for later requests.
	msg, err = m.BuildPano("mux-forget", 2, wire.QoSBestEffort, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RoundTrip(context.Background(), msg); err != nil {
		t.Fatal(err)
	}
}
