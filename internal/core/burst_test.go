package core

import (
	"context"
	"testing"

	"github.com/edge-immersion/coic/internal/wire"
)

func burstRowFor(t *testing.T, rows []BurstRow, users int, dup float64, mode InflightMode) BurstRow {
	t.Helper()
	for _, r := range rows {
		if r.Users == users && r.DupRatio == dup && r.Mode == mode {
			return r
		}
	}
	t.Fatalf("no row users=%d dup=%v mode=%v", users, dup, mode)
	return BurstRow{}
}

// TestRunBurstCoalesces is the virtual-time coalescing acceptance test:
// K users bursting on one uncached descriptor must cost exactly one cloud
// computation under coalescing (K−1 joins), K under the serial baseline —
// and coalescing must win on tail latency.
func TestRunBurstCoalesces(t *testing.T) {
	p := testParams()
	const users = 8
	rows, err := RunBurstExp(p, BurstConfig{
		UserCounts: []int{users},
		DupRatios:  []float64{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}

	serial := burstRowFor(t, rows, users, 1, InflightSerial)
	coalesce := burstRowFor(t, rows, users, 1, InflightCoalesce)
	if serial.Errors+coalesce.Errors != 0 {
		t.Fatalf("burst errors: serial=%d coalesce=%d", serial.Errors, coalesce.Errors)
	}
	if serial.CloudFetches != users {
		t.Fatalf("serial cloud fetches = %d, want %d (every duplicate pays its own)", serial.CloudFetches, users)
	}
	if coalesce.CloudFetches != 1 {
		t.Fatalf("coalesced cloud fetches = %d, want exactly 1", coalesce.CloudFetches)
	}
	if coalesce.CoalescedJoins != users-1 {
		t.Fatalf("coalesced joins = %d, want %d", coalesce.CoalescedJoins, users-1)
	}
	if coalesce.SavedFetches() != users-1 {
		t.Fatalf("saved fetches = %d, want %d", coalesce.SavedFetches(), users-1)
	}
	if coalesce.P99 >= serial.P99 {
		t.Fatalf("coalesced p99 %v not better than serial p99 %v", coalesce.P99, serial.P99)
	}

	// With zero duplication there is nothing to coalesce: both modes pay
	// one fetch per user.
	for _, mode := range []InflightMode{InflightSerial, InflightCoalesce} {
		r := burstRowFor(t, rows, users, 0, mode)
		if r.CloudFetches != users || r.CoalescedJoins != 0 {
			t.Fatalf("dup=0 %s: fetches=%d joins=%d, want %d/0", mode, r.CloudFetches, r.CoalescedJoins, users)
		}
	}
}

// TestVirtualInflightModesOnEdge pins the Edge-level semantics the burst
// experiment rides on: a lookup inside the producing fetch's window reads
// as a miss under InflightSerial, a waiting join under InflightCoalesce,
// and an instant hit under the seed default.
func TestVirtualInflightModesOnEdge(t *testing.T) {
	p := testParams()
	desc := PanoDescriptor("window-video", 1)
	value := []byte("rle")

	for _, tc := range []struct {
		mode     InflightMode
		wantHit  bool
		wantJoin bool
		wantWait bool
	}{
		{InflightInstant, true, false, false},
		{InflightSerial, false, false, false},
		{InflightCoalesce, true, true, true},
	} {
		edge := NewEdge(p, WithInflightMode(tc.mode))
		insertAt := epoch
		edge.InsertAtAs(1, desc, value, 1, insertAt)
		// Look up halfway through the insert's completion window.
		lr := edge.LookupAtAs(context.Background(), 2, wire.TaskPano, desc, insertAt.Add(p.EdgeInsertTime/2))
		if lr.Hit() != tc.wantHit {
			t.Fatalf("%s: hit = %v, want %v", tc.mode, lr.Hit(), tc.wantHit)
		}
		if lr.Coalesced != tc.wantJoin {
			t.Fatalf("%s: coalesced = %v, want %v", tc.mode, lr.Coalesced, tc.wantJoin)
		}
		if (lr.Wait > 0) != tc.wantWait {
			t.Fatalf("%s: wait = %v, want wait>0 == %v", tc.mode, lr.Wait, tc.wantWait)
		}
		// Once the window has matured, every mode serves a plain hit.
		lr = edge.LookupAtAs(context.Background(), 3, wire.TaskPano, desc, insertAt.Add(2*p.EdgeInsertTime))
		if !lr.Hit() || lr.Coalesced || lr.Wait != 0 {
			t.Fatalf("%s: matured lookup = %+v, want plain hit", tc.mode, lr)
		}
	}
}
