package core

import (
	"context"
	"errors"
	"sync"
	"time"
)

// errUpstreamSaturated reports a fetch that timed out waiting for an
// upstream slot; roundTrip wraps it with the configured timeout and
// slot budget.
var errUpstreamSaturated = errors.New("core: upstream saturated")

// upstreamGate rations the edge's concurrent cloud fetches. Capacity is
// the MaxUpstream slot budget; tenancy partitions it: a tenant may hold
// at most its weighted share of the slots (TenantPolicy.SlotCap, never
// below one), with waiters queued FIFO per tenant and freed slots
// granted to the most underserved eligible tenant by holdings-to-weight
// ratio. The per-connection scheduler cannot arbitrate here — each
// connection carries one tenant, and the upstream link is where their
// misses meet — so the cap is what keeps one tenant's miss flood from
// monopolizing the uplink: isolation is standing, not reactive, which
// is exactly what a paced interactive tenant needs against a saturating
// one (by the time it asks, a reactive scheme has already handed every
// slot to the flood). With a nil policy every cap is the whole budget
// and a single wait queue drains FIFO — the semaphore this replaces.
type upstreamGate struct {
	tenants *TenantPolicy // nil is the open policy: no partitioning
	slots   int

	mu       sync.Mutex
	free     int
	holdings map[string]int
	waiting  map[string][]chan struct{}
	order    []string // tenants with waiters, in first-wait order
}

func newUpstreamGate(slots int, tenants *TenantPolicy) *upstreamGate {
	return &upstreamGate{
		tenants:  tenants,
		slots:    slots,
		free:     slots,
		holdings: map[string]int{},
		waiting:  map[string][]chan struct{}{},
	}
}

// acquire obtains one slot for tenant, blocking until granted, ctx
// dies, or expire fires. expire is the caller's overall fetch deadline
// timer (not stopped here). Every successful acquire must be paired
// with release(tenant).
func (g *upstreamGate) acquire(ctx context.Context, tenant string, expire <-chan time.Time) error {
	g.mu.Lock()
	if g.free > 0 && g.holdings[tenant] < g.tenants.SlotCap(tenant, g.slots) {
		g.free--
		g.holdings[tenant]++
		g.mu.Unlock()
		return nil
	}
	ch := make(chan struct{}, 1)
	if len(g.waiting[tenant]) == 0 {
		g.order = append(g.order, tenant)
	}
	g.waiting[tenant] = append(g.waiting[tenant], ch)
	g.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		if !g.withdraw(tenant, ch) {
			g.release(tenant) // the grant raced our departure; hand it on
		}
		return ctx.Err()
	case <-expire:
		if !g.withdraw(tenant, ch) {
			g.release(tenant)
		}
		return errUpstreamSaturated
	}
}

// withdraw removes ch from tenant's wait queue, reporting whether it
// was still queued. False means a grant raced the withdrawal: the
// caller owns a slot it must release.
func (g *upstreamGate) withdraw(tenant string, ch chan struct{}) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	q := g.waiting[tenant]
	for i, c := range q {
		if c == ch {
			g.waiting[tenant] = append(q[:i], q[i+1:]...)
			if len(g.waiting[tenant]) == 0 {
				g.dropWaiterLocked(tenant)
			}
			return true
		}
	}
	return false
}

// dropWaiterLocked removes a tenant whose wait queue emptied from the
// scan order.
func (g *upstreamGate) dropWaiterLocked(tenant string) {
	delete(g.waiting, tenant)
	for i, t := range g.order {
		if t == tenant {
			g.order = append(g.order[:i], g.order[i+1:]...)
			return
		}
	}
}

// release returns tenant's slot and grants it onward. A freed slot goes
// to the waiting tenant that is furthest under its fair share — lowest
// holdings-to-weight ratio among tenants below their cap — with FIFO
// order within the tenant; it is banked only when no waiter is
// eligible.
func (g *upstreamGate) release(tenant string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.holdings[tenant] <= 1 {
		delete(g.holdings, tenant)
	} else {
		g.holdings[tenant]--
	}
	g.free++
	g.grantLocked()
}

func (g *upstreamGate) grantLocked() {
	for g.free > 0 {
		best := ""
		bestRatio := 0.0
		for _, t := range g.order {
			if g.holdings[t] >= g.tenants.SlotCap(t, g.slots) {
				continue
			}
			ratio := float64(g.holdings[t]) / float64(g.tenants.Weight(t))
			if best == "" || ratio < bestRatio {
				best, bestRatio = t, ratio
			}
		}
		if best == "" {
			return // every waiter is at its cap; the slot stays banked
		}
		q := g.waiting[best]
		ch := q[0]
		g.waiting[best] = q[1:]
		if len(g.waiting[best]) == 0 {
			g.dropWaiterLocked(best)
		}
		g.free--
		g.holdings[best]++
		ch <- struct{}{} // buffered; the waiter may already have left
	}
}
