package core

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/wire"
)

// startRecordingCloud is a hand-rolled cloud that records the order pano
// fetches arrive in — the observable trace of the edge scheduler's
// dispatch order — and can delay its first reply to hold the edge's
// worker busy while later requests queue.
func startRecordingCloud(t testing.TB, firstDelay time.Duration) (string, func() []uint32, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []uint32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					msg, err := wire.ReadMessage(conn)
					if err != nil {
						return
					}
					if msg.Type != wire.MsgPanoFetch {
						continue
					}
					pf, err := wire.UnmarshalPanoFetch(msg.Body)
					if err != nil {
						continue
					}
					mu.Lock()
					first := len(order) == 0
					order = append(order, pf.FrameIndex)
					mu.Unlock()
					if first && firstDelay > 0 {
						time.Sleep(firstDelay)
					}
					body, _ := (wire.PanoReply{Source: wire.SourceCloud, Data: []byte{1, 2, 3}}).Marshal()
					wire.WriteMessage(conn, wire.Message{Type: wire.MsgPanoReply, RequestID: msg.RequestID, Body: body})
				}
			}()
		}
	}()
	snapshot := func() []uint32 {
		mu.Lock()
		defer mu.Unlock()
		return append([]uint32(nil), order...)
	}
	return ln.Addr().String(), snapshot, func() { ln.Close() }
}

func startQoSEdge(t testing.TB, cloudAddr string, workers, queue int) (string, *EdgeServer, func()) {
	t.Helper()
	es := &EdgeServer{
		Edge:       NewEdge(testParams()),
		CloudAddr:  cloudAddr,
		Workers:    workers,
		QueueDepth: queue,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go es.Serve(ln)
	return ln.Addr().String(), es, func() { ln.Close() }
}

func qosPanoMsg(t testing.TB, reqID uint64, frame int, class wire.QoS, deadline time.Time) wire.Message {
	t.Helper()
	pf := wire.PanoFetch{VideoID: "qos-video", FrameIndex: uint32(frame), QoS: class}
	if !deadline.IsZero() {
		pf.Deadline = deadline.UnixMicro()
	}
	body, err := pf.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return wire.Message{Type: wire.MsgPanoFetch, RequestID: reqID, Body: body}
}

// TestTCPInteractiveJumpsBestEffortQueue pins the strict class ordering:
// with one worker held busy, a later interactive request must be
// dispatched — and therefore reach the cloud — before earlier-queued
// best-effort ones.
func TestTCPInteractiveJumpsBestEffortQueue(t *testing.T) {
	cloudAddr, order, stopCloud := startRecordingCloud(t, 600*time.Millisecond)
	defer stopCloud()
	addr, es, stop := startQoSEdge(t, cloudAddr, 1, 16)
	defer stop()

	conn := rawEdgeConn(t, addr, ModeCoIC)
	defer conn.Close()

	// Request 1 occupies the lone worker (its fetch stalls at the cloud).
	if err := wire.WriteMessage(conn, qosPanoMsg(t, 1, 100, wire.QoSBestEffort, time.Time{})); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the first fetch to reach the cloud", func() bool { return len(order()) == 1 })

	// Two best-effort requests queue, then an interactive one arrives.
	// (Ordered writes: this is an ordered-mode connection, so the reply
	// stream mirrors the id sequence below.)
	for id, frame := uint64(2), 101; id <= 3; id, frame = id+1, frame+1 {
		if err := wire.WriteMessage(conn, qosPanoMsg(t, id, frame, wire.QoSBestEffort, time.Time{})); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "the best-effort requests to queue", func() bool {
		return es.Admitted(wire.QoSBestEffort) == 3
	})
	if err := wire.WriteMessage(conn, qosPanoMsg(t, 4, 200, wire.QoSInteractive, time.Time{})); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the interactive request to queue", func() bool {
		return es.Admitted(wire.QoSInteractive) == 1
	})

	// Drain all four replies (arrival order on the wire, by protocol).
	for i := 1; i <= 4; i++ {
		reply, err := wire.ReadMessage(conn)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if reply.RequestID != uint64(i) || reply.Type != wire.MsgPanoReply {
			t.Fatalf("reply %d = id %d type %v", i, reply.RequestID, reply.Type)
		}
	}
	got := order()
	if len(got) != 4 {
		t.Fatalf("cloud saw %d fetches, want 4", len(got))
	}
	if got[1] != 200 {
		t.Fatalf("cloud fetch order = %v: the interactive frame (200) must be dispatched before queued best-effort ones", got)
	}
}

// TestTCPExpiredDeadlineShedBeforeWork pins shed-before-work: a request
// whose deadline passes while queued is answered CodeDeadlineExceeded
// without consuming a worker or an upstream fetch, and the shed is
// visible in the server's counters.
func TestTCPExpiredDeadlineShedBeforeWork(t *testing.T) {
	cloudAddr, order, stopCloud := startRecordingCloud(t, 500*time.Millisecond)
	defer stopCloud()
	addr, es, stop := startQoSEdge(t, cloudAddr, 1, 16)
	defer stop()

	conn := rawEdgeConn(t, addr, ModeCoIC)
	defer conn.Close()

	if err := wire.WriteMessage(conn, qosPanoMsg(t, 1, 300, wire.QoSBestEffort, time.Time{})); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the first fetch to reach the cloud", func() bool { return len(order()) == 1 })

	// This deadline expires long before the worker frees up.
	if err := wire.WriteMessage(conn, qosPanoMsg(t, 2, 301, wire.QoSInteractive, time.Now().Add(50*time.Millisecond))); err != nil {
		t.Fatal(err)
	}

	reply1, err := wire.ReadMessage(conn)
	if err != nil || reply1.Type != wire.MsgPanoReply || reply1.RequestID != 1 {
		t.Fatalf("reply 1 = %v type %v err %v", reply1.RequestID, reply1.Type, err)
	}
	reply2, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply2.RequestID != 2 || reply2.Type != wire.MsgError {
		t.Fatalf("reply 2 = id %d type %v, want an error reply", reply2.RequestID, reply2.Type)
	}
	er, err := wire.UnmarshalErrorReply(reply2.Body)
	if err != nil || er.Code != wire.CodeDeadlineExceeded {
		t.Fatalf("reply 2 code = %d err %v, want CodeDeadlineExceeded", er.Code, err)
	}

	if got := es.DeadlineSheds(); got != 1 {
		t.Fatalf("DeadlineSheds = %d, want 1", got)
	}
	if got := es.CloudFetches(); got != 1 {
		t.Fatalf("cloud fetches = %d, want 1 — the shed request must not fetch", got)
	}
	if got := order(); len(got) != 1 {
		t.Fatalf("cloud saw frames %v — the shed request reached the cloud", got)
	}
	if es.Admitted(wire.QoSInteractive) != 1 || es.Admitted(wire.QoSBestEffort) != 1 {
		t.Fatalf("admitted = %d interactive / %d best-effort, want 1/1",
			es.Admitted(wire.QoSInteractive), es.Admitted(wire.QoSBestEffort))
	}
}

// TestTCPLegacyFramesScheduleBestEffort: frames without a QoS trailer
// (pre-QoS clients) keep flowing and land in the best-effort class.
func TestTCPLegacyFramesScheduleBestEffort(t *testing.T) {
	cloudAddr, _, stopCloud := startRecordingCloud(t, 0)
	defer stopCloud()
	addr, es, stop := startQoSEdge(t, cloudAddr, 2, 8)
	defer stop()

	conn := rawEdgeConn(t, addr, ModeCoIC)
	defer conn.Close()
	if err := wire.WriteMessage(conn, panoFetchMsg(t, 1, "legacy-video", 1)); err != nil {
		t.Fatal(err)
	}
	reply, err := wire.ReadMessage(conn)
	if err != nil || reply.Type != wire.MsgPanoReply {
		t.Fatalf("legacy request reply = %v, %v", reply.Type, err)
	}
	if es.Admitted(wire.QoSBestEffort) != 1 || es.Admitted(wire.QoSInteractive) != 0 {
		t.Fatalf("legacy frame admitted as %d/%d (be/int), want 1/0",
			es.Admitted(wire.QoSBestEffort), es.Admitted(wire.QoSInteractive))
	}
}
