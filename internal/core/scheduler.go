package core

import (
	"container/heap"
	"context"
	"sync"
	"time"

	"github.com/edge-immersion/coic/internal/wire"
)

// This file is the per-connection request scheduler behind the pipelined
// TCP servers. The seed served each connection through a plain FIFO
// channel, which is exactly wrong for continuous immersive workloads: a
// best-effort prefetch burst queued ahead of an interactive frame makes
// the frame miss its motion-to-photon budget even though a worker could
// have served it in time. The schedQueue replaces the channel with
// deadline-aware priority dispatch:
//
//   - strict class ordering — every queued QoSInteractive request is
//     dispatched before any QoSBestEffort one;
//   - earliest-deadline-first within a class, with deadline-less
//     requests after all deadlined ones in admission order;
//   - shed-before-work — a request whose wall-clock deadline passed
//     while it queued is answered CodeDeadlineExceeded without a worker
//     executing it (and without an upstream fetch), and admission prefers
//     evicting already-expired queued work over rejecting a live request
//     with CodeOverloaded.

// schedJob is one admitted request waiting for (or holding) a worker.
type schedJob struct {
	seq    uint64
	msg    wire.Message
	mode   Mode
	ctx    context.Context
	finish context.CancelFunc

	class    wire.QoS
	deadline time.Time // zero = none
	order    uint64    // admission order, the FIFO tiebreak

	// admitted stamps when the reader pushed the job, feeding the
	// sched_wait stage histogram; trace is the client-minted trace ID
	// peeked off the wire for log correlation. Both are observability
	// payload — the scheduler itself never reads them.
	admitted time.Time
	trace    uint64
}

// expired reports whether the job's result would be stale if started now.
func (j *schedJob) expired(now time.Time) bool {
	return !j.deadline.IsZero() && now.After(j.deadline)
}

// before orders two jobs of the same class: earliest deadline first,
// deadline-less jobs after every deadlined one, admission order as the
// tiebreak.
func (j *schedJob) before(k *schedJob) bool {
	switch {
	case j.deadline.IsZero() && k.deadline.IsZero():
		return j.order < k.order
	case j.deadline.IsZero():
		return false
	case k.deadline.IsZero():
		return true
	case j.deadline.Equal(k.deadline):
		return j.order < k.order
	default:
		return j.deadline.Before(k.deadline)
	}
}

// jobHeap is one class's EDF queue.
type jobHeap []schedJob

func (h jobHeap) Len() int            { return len(h) }
func (h jobHeap) Less(i, j int) bool  { return h[i].before(&h[j]) }
func (h jobHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)         { *h = append(*h, x.(schedJob)) }
func (h *jobHeap) Pop() any           { old := *h; n := len(old); j := old[n-1]; *h = old[:n-1]; return j }
func (h jobHeap) peek() *schedJob     { return &h[0] }
func (h *jobHeap) popJob() schedJob   { return heap.Pop(h).(schedJob) }
func (h *jobHeap) pushJob(j schedJob) { heap.Push(h, j) }

// schedQueue is the bounded priority queue feeding one connection's
// worker pool. depth bounds queued (not yet popped) jobs, matching the
// old FIFO channel's buffer semantics.
type schedQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heaps  [wire.NumQoSClasses]jobHeap
	size   int
	depth  int
	closed bool
	order  uint64

	// arrivals gets a non-blocking token per push so a batching worker
	// can wait out its slack window in a select (sync.Cond has no timed
	// wait); done closes with the queue so that wait never outlives
	// shutdown.
	arrivals chan struct{}
	done     chan struct{}
}

func newSchedQueue(depth int) *schedQueue {
	q := &schedQueue{
		depth:    depth,
		arrivals: make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// classIndex clamps unknown (future) classes into the scheduler's range
// so a newer client never crashes an older server; anything above the
// known ceiling schedules as the highest known class.
func classIndex(c wire.QoS) int {
	if int(c) >= wire.NumQoSClasses {
		return wire.NumQoSClasses - 1
	}
	return int(c)
}

// push admits j, stamping its admission order. When the queue is full it
// first sheds queued jobs whose deadlines have already passed — returned
// to the caller to answer with CodeDeadlineExceeded — and admits j into
// the freed room. ok=false means the queue is full of live work: the
// caller sheds j itself with CodeOverloaded.
func (q *schedQueue) push(j schedJob) (shed []schedJob, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, false
	}
	if q.size >= q.depth {
		now := time.Now()
		for i := range q.heaps {
			// EDF ordering puts expired jobs at each class's head.
			for q.heaps[i].Len() > 0 && q.heaps[i].peek().expired(now) {
				shed = append(shed, q.heaps[i].popJob())
				q.size--
			}
		}
		if q.size >= q.depth {
			return shed, false
		}
	}
	q.order++
	j.order = q.order
	q.heaps[classIndex(j.class)].pushJob(j)
	q.size++
	q.cond.Signal()
	select {
	case q.arrivals <- struct{}{}:
	default:
	}
	return shed, true
}

// pop blocks for the highest-priority queued job: the highest non-empty
// class, EDF within it. ok=false once the queue is closed and drained.
func (q *schedQueue) pop() (schedJob, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.size == 0 {
		return schedJob{}, false
	}
	for i := len(q.heaps) - 1; i >= 0; i-- {
		if q.heaps[i].Len() > 0 {
			q.size--
			return q.heaps[i].popJob(), true
		}
	}
	return schedJob{}, false // unreachable: size > 0 implies a non-empty heap
}

// tryDrain pops up to max additional jobs for a batch without blocking.
// It only ever takes the queue's current head — the highest non-empty
// class, EDF within it — and stops at the first head match fails on, so
// a drained batch is exactly the prefix a sequence of pop calls would
// have returned: batching never lets a lower-priority job overtake a
// higher-priority one it is incompatible with. blocked reports that a
// non-matching head (not an empty queue) ended the drain, which tells a
// slack-waiting worker to stop waiting and free its slot for that job.
func (q *schedQueue) tryDrain(max int, match func(*schedJob) bool) (jobs []schedJob, blocked bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(jobs) < max && q.size > 0 {
		var h *jobHeap
		for i := len(q.heaps) - 1; i >= 0; i-- {
			if q.heaps[i].Len() > 0 {
				h = &q.heaps[i]
				break
			}
		}
		if !match(h.peek()) {
			return jobs, true
		}
		jobs = append(jobs, h.popJob())
		q.size--
	}
	return jobs, false
}

// close stops admission and wakes every waiting worker; queued jobs are
// still drained by pop (graceful shutdown completes admitted work).
func (q *schedQueue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	close(q.done)
	q.mu.Unlock()
	q.cond.Broadcast()
}
