package core

import (
	"container/heap"
	"context"
	"sync"
	"time"

	"github.com/edge-immersion/coic/internal/wire"
)

// This file is the per-connection request scheduler behind the pipelined
// TCP servers. The seed served each connection through a plain FIFO
// channel, which is exactly wrong for continuous immersive workloads: a
// best-effort prefetch burst queued ahead of an interactive frame makes
// the frame miss its motion-to-photon budget even though a worker could
// have served it in time. The schedQueue replaces the channel with
// deadline-aware priority dispatch:
//
//   - strict class ordering — every queued QoSInteractive request is
//     dispatched before any QoSBestEffort one;
//   - deficit-round-robin across tenants within a class — one tenant's
//     flood cannot starve another tenant of the same class; weights set
//     the drain ratio under contention (weight 4 drains four requests
//     per weight-1 request);
//   - earliest-deadline-first within a tenant's class queue, with
//     deadline-less requests after all deadlined ones in admission order;
//   - shed-before-work — a request whose wall-clock deadline passed
//     while it queued is answered CodeDeadlineExceeded without a worker
//     executing it (and without an upstream fetch), and admission prefers
//     evicting already-expired queued work over rejecting a live request
//     with CodeOverloaded.
//
// With a single tenant (every pre-tenant caller lands on one), the DRR
// ring has one member and the queue degenerates to exactly the old
// class-then-EDF order — the property tests pin that equivalence.

// schedJob is one admitted request waiting for (or holding) a worker.
type schedJob struct {
	seq    uint64
	msg    wire.Message
	mode   Mode
	ctx    context.Context
	finish context.CancelFunc

	class    wire.QoS
	deadline time.Time // zero = none
	order    uint64    // admission order, the FIFO tiebreak
	tenant   string    // DRR key; the connection's authenticated tenant

	// admitted stamps when the reader pushed the job, feeding the
	// sched_wait stage histogram; trace is the client-minted trace ID
	// peeked off the wire for log correlation. Both are observability
	// payload — the scheduler itself never reads them.
	admitted time.Time
	trace    uint64
}

// expired reports whether the job's result would be stale if started now.
func (j *schedJob) expired(now time.Time) bool {
	return !j.deadline.IsZero() && now.After(j.deadline)
}

// before orders two jobs of the same class and tenant: earliest deadline
// first, deadline-less jobs after every deadlined one, admission order as
// the tiebreak.
func (j *schedJob) before(k *schedJob) bool {
	switch {
	case j.deadline.IsZero() && k.deadline.IsZero():
		return j.order < k.order
	case j.deadline.IsZero():
		return false
	case k.deadline.IsZero():
		return true
	case j.deadline.Equal(k.deadline):
		return j.order < k.order
	default:
		return j.deadline.Before(k.deadline)
	}
}

// jobHeap is one tenant's EDF queue within one class.
type jobHeap []schedJob

func (h jobHeap) Len() int            { return len(h) }
func (h jobHeap) Less(i, j int) bool  { return h[i].before(&h[j]) }
func (h jobHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)         { *h = append(*h, x.(schedJob)) }
func (h *jobHeap) Pop() any           { old := *h; n := len(old); j := old[n-1]; *h = old[:n-1]; return j }
func (h jobHeap) peek() *schedJob     { return &h[0] }
func (h *jobHeap) popJob() schedJob   { return heap.Pop(h).(schedJob) }
func (h *jobHeap) pushJob(j schedJob) { heap.Push(h, j) }

// classQueue is one QoS class's queue: an EDF heap per tenant, drained
// deficit-round-robin across the tenants that have work queued. The ring
// holds active tenants in arrival order; cur is the tenant currently
// being served and credit its remaining deficit (in requests — the DRR
// quantum is the tenant's weight). Invariants between calls: every ring
// member's heap is non-empty, and credit > 0 whenever the ring is
// non-empty — so head() is pure and always agrees with the next pop().
type classQueue struct {
	byTenant map[string]*jobHeap
	ring     []string
	cur      int
	credit   int
	size     int
}

func (c *classQueue) push(j schedJob, weightOf func(string) int) {
	h := c.byTenant[j.tenant]
	if h == nil {
		if c.byTenant == nil {
			c.byTenant = make(map[string]*jobHeap)
		}
		h = new(jobHeap)
		c.byTenant[j.tenant] = h
		c.ring = append(c.ring, j.tenant)
		if len(c.ring) == 1 {
			c.cur = 0
			c.credit = weightOf(j.tenant)
		}
	}
	h.pushJob(j)
	c.size++
}

// head returns the job the next pop would dispatch, without side effects.
func (c *classQueue) head() *schedJob {
	if c.size == 0 {
		return nil
	}
	return c.byTenant[c.ring[c.cur]].peek()
}

func (c *classQueue) pop(weightOf func(string) int) schedJob {
	h := c.byTenant[c.ring[c.cur]]
	j := h.popJob()
	c.size--
	if h.Len() == 0 {
		c.remove(c.cur, weightOf)
	} else {
		c.credit--
		if c.credit <= 0 {
			c.advance(weightOf)
		}
	}
	return j
}

// advance moves service to the next ring tenant and refills its deficit.
func (c *classQueue) advance(weightOf func(string) int) {
	c.cur++
	if c.cur >= len(c.ring) {
		c.cur = 0
	}
	c.credit = weightOf(c.ring[c.cur])
}

// remove drops ring[i] (its heap is empty) and keeps cur pointing at the
// tenant being served — or, when the served tenant itself left, at its
// successor with a fresh deficit.
func (c *classQueue) remove(i int, weightOf func(string) int) {
	delete(c.byTenant, c.ring[i])
	c.ring = append(c.ring[:i], c.ring[i+1:]...)
	if len(c.ring) == 0 {
		c.cur, c.credit = 0, 0
		return
	}
	switch {
	case i < c.cur:
		c.cur--
	case i == c.cur:
		if c.cur >= len(c.ring) {
			c.cur = 0
		}
		c.credit = weightOf(c.ring[c.cur])
	}
}

// evictExpired sheds every queued job whose deadline already passed (EDF
// puts them at each tenant heap's head) and prunes emptied tenants.
func (c *classQueue) evictExpired(now time.Time, weightOf func(string) int, shed []schedJob) []schedJob {
	for i := 0; i < len(c.ring); {
		h := c.byTenant[c.ring[i]]
		for h.Len() > 0 && h.peek().expired(now) {
			shed = append(shed, h.popJob())
			c.size--
		}
		if h.Len() == 0 {
			c.remove(i, weightOf)
			continue
		}
		i++
	}
	return shed
}

// schedQueue is the bounded priority queue feeding one connection's
// worker pool. depth bounds queued (not yet popped) jobs, matching the
// old FIFO channel's buffer semantics.
type schedQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	classes  [wire.NumQoSClasses]classQueue
	weightOf func(string) int
	size     int
	depth    int
	closed   bool
	order    uint64

	// arrivals gets a non-blocking token per push so a batching worker
	// can wait out its slack window in a select (sync.Cond has no timed
	// wait); done closes with the queue so that wait never outlives
	// shutdown.
	arrivals chan struct{}
	done     chan struct{}
}

func newSchedQueue(depth int) *schedQueue {
	return newSchedQueueWeighted(depth, nil)
}

// newSchedQueueWeighted builds a queue whose DRR quanta come from
// weightOf (nil = every tenant weight 1). Weights are read under the
// queue mutex at tenant-rotation points only — the callback must be fast
// and must never call back into the queue.
func newSchedQueueWeighted(depth int, weightOf func(string) int) *schedQueue {
	if weightOf == nil {
		weightOf = func(string) int { return 1 }
	}
	q := &schedQueue{
		depth:    depth,
		weightOf: func(t string) int { return max(1, weightOf(t)) },
		arrivals: make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// classIndex clamps unknown (future) classes into the scheduler's range
// so a newer client never crashes an older server; anything above the
// known ceiling schedules as the highest known class.
func classIndex(c wire.QoS) int {
	if int(c) >= wire.NumQoSClasses {
		return wire.NumQoSClasses - 1
	}
	return int(c)
}

// push admits j, stamping its admission order. When the queue is full it
// first sheds queued jobs whose deadlines have already passed — returned
// to the caller to answer with CodeDeadlineExceeded — and admits j into
// the freed room. ok=false means the queue is full of live work: the
// caller sheds j itself with CodeOverloaded.
func (q *schedQueue) push(j schedJob) (shed []schedJob, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, false
	}
	if q.size >= q.depth {
		now := time.Now()
		for i := range q.classes {
			before := q.classes[i].size
			shed = q.classes[i].evictExpired(now, q.weightOf, shed)
			q.size -= before - q.classes[i].size
		}
		if q.size >= q.depth {
			return shed, false
		}
	}
	q.order++
	j.order = q.order
	q.classes[classIndex(j.class)].push(j, q.weightOf)
	q.size++
	q.cond.Signal()
	select {
	case q.arrivals <- struct{}{}:
	default:
	}
	return shed, true
}

// pop blocks for the highest-priority queued job: the highest non-empty
// class, the DRR ring's current tenant within it, EDF within that
// tenant. ok=false once the queue is closed and drained.
func (q *schedQueue) pop() (schedJob, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.size == 0 {
		return schedJob{}, false
	}
	for i := len(q.classes) - 1; i >= 0; i-- {
		if q.classes[i].size > 0 {
			q.size--
			return q.classes[i].pop(q.weightOf), true
		}
	}
	return schedJob{}, false // unreachable: size > 0 implies a non-empty class
}

// tryDrain pops up to max additional jobs for a batch without blocking.
// It only ever takes the queue's current head — the highest non-empty
// class, the DRR tenant within it, EDF within that tenant — and stops at
// the first head match fails on, so a drained batch is exactly the
// prefix a sequence of pop calls would have returned: batching never
// lets a lower-priority job overtake a higher-priority one it is
// incompatible with (and never lets one tenant raid another's DRR
// share). blocked reports that a non-matching head (not an empty queue)
// ended the drain, which tells a slack-waiting worker to stop waiting
// and free its slot for that job.
func (q *schedQueue) tryDrain(max int, match func(*schedJob) bool) (jobs []schedJob, blocked bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(jobs) < max && q.size > 0 {
		var c *classQueue
		for i := len(q.classes) - 1; i >= 0; i-- {
			if q.classes[i].size > 0 {
				c = &q.classes[i]
				break
			}
		}
		if !match(c.head()) {
			return jobs, true
		}
		jobs = append(jobs, c.pop(q.weightOf))
		q.size--
	}
	return jobs, false
}

// close stops admission and wakes every waiting worker; queued jobs are
// still drained by pop (graceful shutdown completes admitted work).
func (q *schedQueue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	close(q.done)
	q.mu.Unlock()
	q.cond.Broadcast()
}
