package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/edge-immersion/coic/internal/clock"
)

// DefaultTenant is the identity of every connection that does not
// authenticate an explicit tenant: legacy clients speaking the 0–2 byte
// hello, tenantless dials of the current client, and the edge's own
// upstream/peer connections. It exists so single-tenant deployments run
// the exact pre-tenant fast path — one bucket, one DRR ring entry —
// while still showing up under a tenant label in metrics and stats.
const DefaultTenant = "default"

// TenantLimit configures one tenant's share of a server. The zero value
// means "no limits": no token required, unlimited admission, weight 1,
// unbounded cache share — exactly what unknown tenants get, so adding a
// limit for one tenant never locks the others out.
type TenantLimit struct {
	// Token, when nonempty, is the shared secret the tenant's hello must
	// present. Tenants without a configured token authenticate by name
	// alone (quotas without secrets — fine inside one trust domain).
	Token string
	// Rate is the sustained admission rate in requests per second; 0
	// disables the token bucket for this tenant.
	Rate float64
	// Burst is the bucket capacity in requests. 0 with a nonzero Rate
	// defaults to the larger of 1 and one second's worth of Rate.
	Burst int
	// Weight is the tenant's deficit-round-robin share within each QoS
	// class; <= 0 means 1. A tenant with weight 4 drains four queued
	// requests for every one of a weight-1 tenant under contention.
	Weight int
	// CacheBytes bounds the tenant's resident bytes in the edge cache;
	// 0 means unbounded (shares the global capacity like before).
	CacheBytes int64
	// SceneMembers caps how many scene members (joined connections,
	// summed across the tenant's rooms) the tenant may hold at once; 0
	// means unlimited. Publish rates need no extra knob — every
	// MsgScenePublish spends a token from the same bucket as any other
	// request.
	SceneMembers int
}

// TenantPolicy authenticates tenants and meters their admission. All
// methods are safe on a nil receiver, which behaves as the open policy:
// every tenant authenticates, nothing is rate-limited, every weight is 1
// — so servers built without tenant options pay one nil check.
type TenantPolicy struct {
	clk clock.Clock

	mu      sync.Mutex
	limits  map[string]TenantLimit
	buckets map[string]*tokenBucket
}

// NewTenantPolicy builds an empty policy metering time with clk
// (clock.Real{} when nil; tests pass a clock.Virtual for deterministic
// refill).
func NewTenantPolicy(clk clock.Clock) *TenantPolicy {
	if clk == nil {
		clk = clock.Real{}
	}
	return &TenantPolicy{
		clk:     clk,
		limits:  make(map[string]TenantLimit),
		buckets: make(map[string]*tokenBucket),
	}
}

// Set installs (or replaces) a tenant's limit. An empty tenant names the
// default tenant. Replacing a limit resets the tenant's bucket so a new
// rate takes effect immediately.
func (p *TenantPolicy) Set(tenant string, lim TenantLimit) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.limits[tenant] = lim
	delete(p.buckets, tenant)
}

// Authenticate resolves a hello's tenant claim to the tenant identity
// the connection runs as, or rejects it. Empty claims resolve to
// DefaultTenant; tenants with no configured limit are accepted openly
// (rationing is opt-in per tenant); a tenant configured with a Token
// must present exactly that token.
func (p *TenantPolicy) Authenticate(tenant, token string) (string, error) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	if p == nil {
		return tenant, nil
	}
	p.mu.Lock()
	lim, ok := p.limits[tenant]
	p.mu.Unlock()
	if ok && lim.Token != "" && lim.Token != token {
		return "", fmt.Errorf("tenant %q: bad token", tenant)
	}
	return tenant, nil
}

// Admit spends one token from the tenant's bucket, reporting whether the
// request may enter the scheduler. Tenants without a configured rate are
// always admitted.
func (p *TenantPolicy) Admit(tenant string) bool {
	if p == nil {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	lim, ok := p.limits[tenant]
	if !ok || lim.Rate <= 0 {
		return true
	}
	b, ok := p.buckets[tenant]
	if !ok {
		burst := float64(lim.Burst)
		if burst <= 0 {
			burst = max(1, lim.Rate)
		}
		b = &tokenBucket{rate: lim.Rate, burst: burst, tokens: burst, last: p.clk.Now()}
		p.buckets[tenant] = b
	}
	return b.take(p.clk.Now())
}

// Weight reports the tenant's DRR weight (>= 1).
func (p *TenantPolicy) Weight(tenant string) int {
	if p == nil {
		return 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if lim, ok := p.limits[tenant]; ok && lim.Weight > 0 {
		return lim.Weight
	}
	return 1
}

// SlotCap reports how many of slots concurrent upstream fetches the
// tenant may hold: its ceiling-rounded weighted share of the total
// configured weight, never below 1 (every tenant can always make
// progress) and never above slots. Tenants outside the policy count as
// weight 1 against the configured total. The cap is standing — it does
// not grow while other tenants are idle — because upstream isolation
// must already be in place when a latency-sensitive tenant's next
// request arrives, not rebuilt after it is stuck behind a flood. A nil
// policy (or one with nothing configured) returns slots: single-tenant
// deployments keep the whole budget.
func (p *TenantPolicy) SlotCap(tenant string, slots int) int {
	if p == nil {
		return slots
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.limits) == 0 {
		return slots
	}
	total := 0
	for _, lim := range p.limits {
		total += max(1, lim.Weight)
	}
	w := 1
	if lim, ok := p.limits[tenant]; ok {
		w = max(1, lim.Weight)
	} else {
		total++
	}
	cap := (slots*w + total - 1) / total
	return min(max(cap, 1), slots)
}

// SceneMemberCap reports the tenant's cap on concurrently joined scene
// members across all of its rooms (0 = unlimited).
func (p *TenantPolicy) SceneMemberCap(tenant string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if lim, ok := p.limits[tenant]; ok {
		return lim.SceneMembers
	}
	return 0
}

// CacheShares returns the configured per-tenant cache byte bounds
// (tenants with CacheBytes == 0 are omitted — unbounded needs no entry).
func (p *TenantPolicy) CacheShares() map[string]int64 {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	shares := make(map[string]int64)
	for t, lim := range p.limits {
		if lim.CacheBytes > 0 {
			shares[t] = lim.CacheBytes
		}
	}
	return shares
}

// tokenBucket is the standard leaky-bucket-as-meter: tokens refill at
// rate per second up to burst, and each admission spends one. Callers
// hold the policy mutex; time comes in from outside so a clock.Virtual
// drives refill deterministically in tests.
type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func (b *tokenBucket) take(now time.Time) bool {
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens = min(b.burst, b.tokens+b.rate*dt.Seconds())
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
