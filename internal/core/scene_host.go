package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/edge-immersion/coic/internal/scene"
	"github.com/edge-immersion/coic/internal/wire"
)

// This file adapts internal/scene to the connection pipeline: each
// connection gets a process-unique identity for room membership and a
// pushOutbox — the scene-push producer feeding the connection's single
// writer goroutine — and the scene request frames (join/publish/leave)
// are dispatched here against the edge's registry.

// nextConnID mints per-process connection identities for scene
// membership; 0 is never issued, so it can mean "no connection".
var nextConnID atomic.Uint64

// pushOutbox buffers server-push frames for one connection. It is the
// second producer on the connection writer (the first being in-order
// replies) and is deliberately not a channel: enqueue never blocks the
// publisher's worker, and when a member consumes slower than the room
// publishes, queued events coalesce last-writer-wins per scene key —
// exactly the semantics the LWW document already guarantees, so a slow
// member costs bounded memory (one pending event per live key) and
// still converges.
type pushOutbox struct {
	// wake (capacity 1) tells the connection writer there is something
	// to drain; it is a level signal, not a count.
	wake chan struct{}

	mu     sync.Mutex
	closed bool
	items  []pushItem
	byKey  map[string]int // scene\x00key -> index into items
}

type pushItem struct {
	msg wire.Message
	enq time.Time // when the publisher handed the event over (fan-out stage start)
}

func newPushOutbox() *pushOutbox {
	return &pushOutbox{wake: make(chan struct{}, 1)}
}

// enqueue queues one push frame, replacing any queued frame for the
// same scene key (the newer write supersedes it). Returns false once
// the outbox is closed — the member is gone and delivery is dropped.
func (q *pushOutbox) enqueue(key string, m wire.Message) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	it := pushItem{msg: m, enq: time.Now()}
	if i, ok := q.byKey[key]; ok {
		q.items[i] = it
	} else {
		if q.byKey == nil {
			q.byKey = make(map[string]int)
		}
		q.byKey[key] = len(q.items)
		q.items = append(q.items, it)
	}
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
	return true
}

// drain takes everything queued, in enqueue order.
func (q *pushOutbox) drain() []pushItem {
	q.mu.Lock()
	items := q.items
	q.items = nil
	q.byKey = nil
	q.mu.Unlock()
	return items
}

// close stops accepting pushes; anything already queued may still be
// drained (or not — the connection is going away either way).
func (q *pushOutbox) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
}

// scenePusher converts registry events into MsgSceneEvent frames on the
// member's outbox. Pushed frames are server-minted: RequestID 0 (client
// request IDs start at 1, and the distinct frame type is what clients
// demux on), with the publisher's trace riding the traced trailer.
func scenePusher(out *pushOutbox) scene.Pusher {
	return func(ev scene.Event) bool {
		body, err := (wire.SceneEvent{
			Scene: ev.Scene, Key: ev.Key, Value: ev.Value,
			Seq: ev.Seq, Version: ev.Version, TraceID: ev.Trace,
		}).Marshal()
		if err != nil {
			return false
		}
		return out.enqueue(ev.Scene+"\x00"+ev.Key, wire.Message{Type: wire.MsgSceneEvent, Body: body})
	}
}

// dispatchScene serves one scene request frame (join/publish/leave) for
// a connection. It runs on a worker like any other dispatch, after the
// reader has already spent the tenant's admission token — publish rates
// are metered by the same bucket as every other request type.
//
// Joins are refused on connections that did not negotiate
// HelloFlagUnordered: a positional client counts replies by arrival
// order, and an interleaved push would corrupt that count. The flag is
// the real capability gate — a version-0 hello without it never
// receives a push, it just gets the join rejected up front instead of
// silently missing events.
func dispatchScene(reg *scene.Registry, tenants *TenantPolicy, obsv *ServerObs,
	connID uint64, out *pushOutbox, unordered *atomic.Bool,
	msg wire.Message, tenant string) wire.Message {

	fail := func(code uint16, format string, args ...any) wire.Message {
		return errorReply(msg.RequestID, code, format, args...)
	}
	switch msg.Type {
	case wire.MsgSceneJoin:
		req, err := wire.UnmarshalSceneJoin(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad scene join: %v", err)
		}
		if !unordered.Load() {
			return fail(wire.CodeBadRequest,
				"scene frames need completion-order replies: hello with HelloFlagUnordered first")
		}
		entries, version, err := reg.Join(tenant, req.Scene, connID,
			tenants.SceneMemberCap(tenant), scenePusher(out))
		if err != nil {
			if errors.Is(err, scene.ErrMemberQuota) {
				return fail(wire.CodeQuotaExceeded, "%v", err)
			}
			return fail(wire.CodeBadRequest, "scene join: %v", err)
		}
		snap := wire.SceneSnapshot{Scene: req.Scene, Version: version}
		for _, e := range entries {
			snap.Entries = append(snap.Entries, wire.SceneEntry{Key: e.Key, Value: e.Value, Seq: e.Seq})
		}
		body, err := snap.Marshal()
		if err != nil {
			return fail(wire.CodeInternal, "scene snapshot: %v", err)
		}
		return wire.Message{Type: wire.MsgSceneJoin, RequestID: msg.RequestID, Body: body}

	case wire.MsgScenePublish:
		req, err := wire.UnmarshalScenePublish(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad scene publish: %v", err)
		}
		seq, version, _, err := reg.Publish(tenant, req.Scene, connID, req.Key, req.Value, req.TraceID)
		if err != nil {
			return fail(wire.CodeBadRequest, "scene publish: %v", err)
		}
		body, _ := (wire.ScenePublishAck{Seq: seq, Version: version}).Marshal()
		return wire.Message{Type: wire.MsgScenePublish, RequestID: msg.RequestID, Body: body}

	case wire.MsgSceneLeave:
		req, err := wire.UnmarshalSceneLeave(msg.Body)
		if err != nil {
			return fail(wire.CodeBadRequest, "bad scene leave: %v", err)
		}
		reg.Leave(tenant, req.Scene, connID)
		return wire.Message{Type: wire.MsgSceneLeave, RequestID: msg.RequestID}

	default:
		return fail(wire.CodeInternal, "dispatchScene got %v", msg.Type)
	}
}
