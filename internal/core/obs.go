package core

import (
	"sync"
	"time"

	"github.com/edge-immersion/coic/internal/obs"
	"github.com/edge-immersion/coic/internal/wire"
)

// Pipeline stages instrumented with latency histograms. Each maps to one
// coic_stage_duration_seconds{stage=...} series.
const (
	StageDecode      = "decode"       // request body unmarshal
	StageCacheLookup = "cache_lookup" // edge cache probe (local + peers)
	StageSchedWait   = "sched_wait"   // admission to worker pickup
	StageExec        = "exec"         // worker dispatch end to end
	StageCloudFetch  = "cloud_fetch"  // upstream round trip (incl. coalesced wait)
	StageReplyWrite  = "reply_write"  // frame write back to the client
	StageBatchWait   = "batch_wait"   // slack a batch head spent waiting for fill
	StageSceneFanout = "scene_fanout" // scene publish to push frame on a member's socket
)

// batchSizeBuckets bound the coic_batch_size histogram: executed batch
// sizes in requests (powers of two up to the largest sane -batch).
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// Request outcomes counted in coic_requests_total{tenant,class,outcome}.
const (
	outcomeOK = iota
	outcomeError
	outcomeCanceled
	outcomeDeadline
	outcomeOverloaded
	outcomeQuota
	numOutcomes
)

var outcomeNames = [numOutcomes]string{"ok", "error", "canceled", "deadline", "overloaded", "quota"}

// ServerObs is one server's live instrumentation: per-stage latency
// histograms, per-class request outcome counters, connection gauges and
// the slow-request ring. All methods are nil-safe — a server built
// without an observability registry pays only a nil check per call site,
// which is what keeps the serving hot path benchmark-neutral.
type ServerObs struct {
	decode      *obs.Histogram
	cacheLookup *obs.Histogram
	schedWait   *obs.Histogram
	exec        *obs.Histogram
	cloudFetch  *obs.Histogram
	replyWrite  *obs.Histogram
	batchWait   *obs.Histogram
	batchSize   *obs.Histogram
	sceneFanout *obs.Histogram

	// Per-tenant counter sets, registered lazily on a tenant's first
	// request (tenants arrive at runtime via the hello handshake, so the
	// full label space is not knowable at construction). DefaultTenant is
	// pre-registered so tenantless deployments expose every family from
	// the first scrape. reg is retained only for this lazy registration.
	reg      *obs.Registry
	tenantMu sync.RWMutex
	byTenant map[string]*tenantObs

	connsActive *obs.Gauge
	connsTotal  *obs.Counter

	reqLog *obs.RequestLog
}

// tenantObs is one tenant's counter set: request outcomes, scheduler
// admissions, and quota rejections.
type tenantObs struct {
	requests [wire.NumQoSClasses][numOutcomes]*obs.Counter
	admitted [wire.NumQoSClasses]*obs.Counter
	quota    *obs.Counter
}

// NewServerObs registers the serving-path metric families on reg and
// returns the handle the pipeline observes through. rlog may be nil to
// skip slow-request recording.
func NewServerObs(reg *obs.Registry, rlog *obs.RequestLog) *ServerObs {
	o := &ServerObs{reqLog: rlog}
	stage := func(name string) *obs.Histogram {
		return reg.Histogram("coic_stage_duration_seconds",
			"Serving-pipeline stage latency in seconds.", nil, obs.L("stage", name))
	}
	o.decode = stage(StageDecode)
	o.cacheLookup = stage(StageCacheLookup)
	o.schedWait = stage(StageSchedWait)
	o.exec = stage(StageExec)
	o.cloudFetch = stage(StageCloudFetch)
	o.replyWrite = stage(StageReplyWrite)
	o.batchWait = stage(StageBatchWait)
	o.sceneFanout = stage(StageSceneFanout)
	o.batchSize = reg.Histogram("coic_batch_size",
		"Executed batch sizes, in requests per batch.", batchSizeBuckets)
	o.reg = reg
	o.byTenant = map[string]*tenantObs{}
	o.registerTenant(DefaultTenant)
	o.connsActive = reg.Gauge("coic_connections_active",
		"Client connections currently being served.")
	o.connsTotal = reg.Counter("coic_connections_total",
		"Client connections accepted since start.")
	return o
}

// registerTenant builds (and registers) tenant's counter set. Callers
// must not hold tenantMu; racing registrations converge because the
// registry itself is find-or-create.
func (o *ServerObs) registerTenant(tenant string) *tenantObs {
	t := &tenantObs{}
	for c := 0; c < wire.NumQoSClasses; c++ {
		for i, name := range outcomeNames {
			t.requests[c][i] = o.reg.Counter("coic_requests_total",
				"Requests completed, by tenant, service class and outcome.",
				obs.L("tenant", tenant), obs.L("class", wire.QoS(c).String()), obs.L("outcome", name))
		}
		t.admitted[c] = o.reg.Counter("coic_tenant_admitted_total",
			"Requests admitted to the scheduler, by tenant and service class.",
			obs.L("tenant", tenant), obs.L("class", wire.QoS(c).String()))
	}
	t.quota = o.reg.Counter("coic_tenant_quota_rejections_total",
		"Requests rejected by per-tenant admission quota, by tenant.",
		obs.L("tenant", tenant))
	o.tenantMu.Lock()
	defer o.tenantMu.Unlock()
	if existing := o.byTenant[tenant]; existing != nil {
		return existing
	}
	o.byTenant[tenant] = t
	return t
}

// tenant returns tenant's counter set, registering it on first sight.
func (o *ServerObs) tenant(tenant string) *tenantObs {
	o.tenantMu.RLock()
	t := o.byTenant[tenant]
	o.tenantMu.RUnlock()
	if t != nil {
		return t
	}
	return o.registerTenant(tenant)
}

// observeTenantAdmit counts one scheduler admission for tenant.
func (o *ServerObs) observeTenantAdmit(tenant string, class wire.QoS) {
	if o == nil {
		return
	}
	o.tenant(tenant).admitted[classIndex(class)].Inc()
}

// observeTenantQuota counts one quota rejection for tenant.
func (o *ServerObs) observeTenantQuota(tenant string) {
	if o == nil {
		return
	}
	o.tenant(tenant).quota.Inc()
}

func (o *ServerObs) connOpened() {
	if o == nil {
		return
	}
	o.connsActive.Inc()
	o.connsTotal.Inc()
}

func (o *ServerObs) connClosed() {
	if o == nil {
		return
	}
	o.connsActive.Dec()
}

func (o *ServerObs) observeDecode(d time.Duration) {
	if o != nil {
		o.decode.Observe(d)
	}
}

func (o *ServerObs) observeCacheLookup(d time.Duration) {
	if o != nil {
		o.cacheLookup.Observe(d)
	}
}

func (o *ServerObs) observeSchedWait(d time.Duration) {
	if o != nil {
		o.schedWait.Observe(d)
	}
}

func (o *ServerObs) observeExec(d time.Duration) {
	if o != nil {
		o.exec.Observe(d)
	}
}

func (o *ServerObs) observeCloudFetch(d time.Duration) {
	if o != nil {
		o.cloudFetch.Observe(d)
	}
}

func (o *ServerObs) observeReplyWrite(d time.Duration) {
	if o != nil {
		o.replyWrite.Observe(d)
	}
}

func (o *ServerObs) observeBatchWait(d time.Duration) {
	if o != nil {
		o.batchWait.Observe(d)
	}
}

// observeSceneFanout records one pushed scene event's fan-out delay: the
// time from the publisher's worker handing the event to a member's
// outbox until the frame is on that member's socket.
func (o *ServerObs) observeSceneFanout(d time.Duration) {
	if o != nil {
		o.sceneFanout.Observe(d)
	}
}

func (o *ServerObs) observeBatchSize(n int) {
	if o != nil {
		o.batchSize.ObserveValue(float64(n))
	}
}

// outcomeOf classifies a reply frame: non-error replies are ok, error
// replies map by code. Unmarshal runs only on the (rare) error path.
func outcomeOf(m wire.Message) int {
	if m.Type != wire.MsgError {
		return outcomeOK
	}
	er, err := wire.UnmarshalErrorReply(m.Body)
	if err != nil {
		return outcomeError
	}
	switch er.Code {
	case wire.CodeCanceled:
		return outcomeCanceled
	case wire.CodeDeadlineExceeded:
		return outcomeDeadline
	case wire.CodeOverloaded:
		return outcomeOverloaded
	case wire.CodeQuotaExceeded:
		return outcomeQuota
	default:
		return outcomeError
	}
}

// request accounts one finished request: outcome counter plus the
// slow-request ring (which itself decides whether the event qualifies).
// It is called wherever a reply takes a request's slot — the worker for
// dispatched work, the reader for sheds and overload rejections.
func (o *ServerObs) request(tenant string, class wire.QoS, msg wire.Message, trace uint64, reply wire.Message, dur time.Duration) {
	if o == nil {
		return
	}
	out := outcomeOf(reply)
	o.tenant(tenant).requests[classIndex(class)][out].Inc()
	if o.reqLog != nil {
		o.reqLog.Record(obs.RequestEvent{
			TraceID:  trace,
			ReqID:    msg.RequestID,
			Type:     msg.Type.String(),
			Tenant:   tenant,
			Class:    class.String(),
			Outcome:  outcomeNames[out],
			Duration: dur,
		})
	}
}
