package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/edge-immersion/coic/internal/pano"
	"github.com/edge-immersion/coic/internal/vision"
	"github.com/edge-immersion/coic/internal/wire"
)

// MuxClient is the demultiplexed mobile-side connection under the public
// streaming API: any number of requests in flight on one TCP connection,
// replies matched to waiters by RequestID on a background read loop. It
// subsumes the lock-step TCPClient — a sync round trip is just a
// one-request window — and adds what streams need: out-of-order
// completion, per-request service class and wall-clock deadline, and
// cancellation of one in-flight request without disturbing the others.
type MuxClient struct {
	Client *Client
	Mode   Mode

	conn net.Conn
	wmu  sync.Mutex // serialises frame writes

	mu      sync.Mutex
	pending map[uint64]chan wire.Message
	seq     uint64
	closed  bool

	// onPush, when set, receives server-initiated frames (scene events)
	// before the pending-reply lookup. It runs on the read loop and must
	// not block; handlers hand the frame to their own pump. onClose runs
	// once when the read loop exits, after pending waiters are failed.
	onPush  func(wire.Message)
	onClose func()
}

// SetPushHandler installs the handler for server-initiated frames
// (MsgSceneEvent) and an optional connection-loss callback. Install
// before the first push can arrive — in practice, before any scene
// join is sent. The handler runs on the read loop: it must not block.
func (m *MuxClient) SetPushHandler(onPush func(wire.Message), onClose func()) {
	m.mu.Lock()
	m.onPush = onPush
	m.onClose = onClose
	m.mu.Unlock()
}

// ErrConnClosed reports a request whose connection died before its reply
// arrived.
var ErrConnClosed = errors.New("core: connection closed")

// RemoteError is a protocol-level error reply surfaced to the caller,
// carrying the wire error code so upper layers can map well-known codes
// (deadline-shed, overload, cancel) to typed errors.
type RemoteError struct {
	Code uint16
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("core: remote error %d: %s", e.Code, e.Msg)
}

// DialMuxEdge connects to an edge, announces the execution mode, and
// starts the demultiplexing read loop. ctx bounds the dial and the hello
// exchange only. The connection runs as the default tenant; see
// DialMuxEdgeTenant to authenticate one.
func DialMuxEdge(ctx context.Context, addr string, client *Client, mode Mode, wrap ConnWrapper) (*MuxClient, error) {
	return DialMuxEdgeTenant(ctx, addr, client, mode, wrap, "", "")
}

// DialMuxEdgeTenant is DialMuxEdge with a tenant claim: the versioned
// hello carries tenant and token, the server authenticates them before
// any request is served, and a rejected claim fails the dial with the
// server's error. An empty tenant runs as the default tenant.
func DialMuxEdgeTenant(ctx context.Context, addr string, client *Client, mode Mode, wrap ConnWrapper, tenant, token string) (*MuxClient, error) {
	helloBody, err := (wire.Hello{
		Version: wire.HelloVersion,
		Mode:    uint8(mode),
		Flags:   wire.HelloFlagUnordered,
		Tenant:  tenant,
		Token:   token,
	}).Marshal()
	if err != nil {
		return nil, fmt.Errorf("core: hello: %w", err)
	}
	d := net.Dialer{Timeout: 10 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("core: dial edge: %w", err)
	}
	if wrap != nil {
		conn = wrap(conn)
	}
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
		defer conn.SetDeadline(time.Time{})
	}
	m := &MuxClient{Client: client, Mode: mode, conn: conn, pending: map[uint64]chan wire.Message{}}
	// HelloFlagUnordered requests completion-order replies: this client
	// matches replies by RequestID, so a finished interactive reply must
	// never wait behind a queued best-effort one.
	hello := wire.Message{Type: wire.MsgHello, RequestID: 1, Body: helloBody}
	m.seq = 1
	if err := wire.WriteMessage(conn, hello); err != nil {
		conn.Close()
		return nil, err
	}
	ack, err := wire.ReadMessage(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := ReplyError(ack); err != nil {
		// The server refused the handshake (bad token, malformed hello)
		// and is dropping the connection; surface its reason.
		conn.Close()
		return nil, err
	}
	go m.readLoop()
	return m, nil
}

// Close releases the connection; every in-flight request fails with
// ErrConnClosed (its reply channel closes).
func (m *MuxClient) Close() error { return m.conn.Close() }

func (m *MuxClient) readLoop() {
	for {
		reply, err := wire.ReadMessage(m.conn)
		if err != nil {
			m.mu.Lock()
			m.closed = true
			for id, ch := range m.pending {
				delete(m.pending, id)
				close(ch)
			}
			onClose := m.onClose
			m.mu.Unlock()
			m.conn.Close()
			if onClose != nil {
				onClose()
			}
			return
		}
		// Server-initiated frames (scene pushes ride RequestID 0, which
		// Start never assigns) are demuxed by type before the pending
		// lookup — they answer no request.
		if reply.Type == wire.MsgSceneEvent {
			m.mu.Lock()
			onPush := m.onPush
			m.mu.Unlock()
			if onPush != nil {
				onPush(reply)
			}
			continue
		}
		m.mu.Lock()
		ch := m.pending[reply.RequestID]
		delete(m.pending, reply.RequestID)
		m.mu.Unlock()
		if ch != nil {
			ch <- reply // buffered; never blocks the read loop
		}
		// Replies nobody waits for — forgotten (cancelled) requests,
		// cancel acks — are dropped.
	}
}

// Start registers a reply slot and ships msg, returning the assigned
// RequestID and the channel its reply (exactly one message, or a close
// on connection loss) will arrive on.
func (m *MuxClient) Start(msg wire.Message) (uint64, <-chan wire.Message, error) {
	ch := make(chan wire.Message, 1)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, nil, ErrConnClosed
	}
	m.seq++
	id := m.seq
	m.pending[id] = ch
	m.mu.Unlock()

	msg.RequestID = id
	m.wmu.Lock()
	err := wire.WriteMessage(m.conn, msg)
	m.wmu.Unlock()
	if err != nil {
		m.mu.Lock()
		delete(m.pending, id)
		m.mu.Unlock()
		m.conn.Close() // a broken write poisons the framing; fail everything
		return 0, nil, err
	}
	return id, ch, nil
}

// Forget withdraws interest in a reply: if it has not arrived yet, the
// read loop will drop it on arrival.
func (m *MuxClient) Forget(id uint64) {
	m.mu.Lock()
	delete(m.pending, id)
	m.mu.Unlock()
}

// SendCancel asks the server to abort the named in-flight request. The
// target still answers in its reply slot — CodeCanceled, or its result
// if the cancel lost the race — so a waiter that keeps listening observes
// the outcome; the cancel's own ack is dropped by the read loop.
func (m *MuxClient) SendCancel(target uint64) error {
	body, err := (wire.CancelRequest{TargetID: target}).Marshal()
	if err != nil {
		return err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrConnClosed
	}
	m.seq++
	id := m.seq
	m.mu.Unlock()
	m.wmu.Lock()
	defer m.wmu.Unlock()
	return wire.WriteMessage(m.conn, wire.Message{Type: wire.MsgCancel, RequestID: id, Body: body})
}

// RoundTrip ships one request and awaits its reply. When ctx dies first
// the request is cancelled server-side (best effort) and ctx.Err()
// returns; the eventual reply is dropped. Error replies surface as
// *RemoteError.
func (m *MuxClient) RoundTrip(ctx context.Context, msg wire.Message) (wire.Message, error) {
	if err := ctx.Err(); err != nil {
		return wire.Message{}, err
	}
	id, ch, err := m.Start(msg)
	if err != nil {
		return wire.Message{}, err
	}
	select {
	case reply, ok := <-ch:
		if !ok {
			return wire.Message{}, ErrConnClosed
		}
		if err := ReplyError(reply); err != nil {
			return wire.Message{}, err
		}
		return reply, nil
	case <-ctx.Done():
		m.Forget(id)
		m.SendCancel(id)
		return wire.Message{}, ctx.Err()
	}
}

// ReplyError converts an error reply into a *RemoteError (nil for any
// other frame type).
func ReplyError(reply wire.Message) error {
	if reply.Type != wire.MsgError {
		return nil
	}
	er, uerr := wire.UnmarshalErrorReply(reply.Body)
	if uerr != nil {
		return fmt.Errorf("core: malformed error reply: %v", uerr)
	}
	return &RemoteError{Code: er.Code, Msg: er.Msg}
}

// --- request builders and reply finishers ------------------------------
//
// Builders construct the wire frame for one task (including the client's
// on-device work: frame capture and descriptor extraction for
// recognition); finishers decode a reply and run the client-side half of
// the task (model load + draw, panorama crop). The split is what lets a
// Stream overlap many requests: build → Start → ... → finish, with the
// network round trips in between shared and out of order.

// BuildRecognize captures the camera frame for (class, viewSeed),
// extracts the descriptor in CoIC mode, and frames the exec request.
// trace, when non-zero, rides the traced trailer so the edge and cloud
// log this request under the same ID.
func (m *MuxClient) BuildRecognize(class vision.Class, viewSeed uint64, qos wire.QoS, deadline time.Time, trace uint64) (wire.Message, error) {
	frame := m.Client.CaptureFrame(class, viewSeed)
	desc := originDescriptor
	if m.Mode == ModeCoIC {
		desc, _ = m.Client.Extract(frame)
	}
	req := wire.ExecRequest{Task: wire.TaskRecognize, Desc: desc, Payload: frame.Bytes(), QoS: qos, TraceID: trace}
	if !deadline.IsZero() {
		req.Deadline = deadline.UnixMicro()
	}
	body, err := req.Marshal()
	if err != nil {
		return wire.Message{}, err
	}
	return wire.Message{Type: wire.MsgExec, Body: body}, nil
}

// FinishRecognize decodes an exec reply into the recognition result.
func (m *MuxClient) FinishRecognize(reply wire.Message) (wire.RecognitionResult, uint8, error) {
	if err := ReplyError(reply); err != nil {
		return wire.RecognitionResult{}, 0, err
	}
	er, err := wire.UnmarshalExecReply(reply.Body)
	if err != nil {
		return wire.RecognitionResult{}, 0, err
	}
	res, err := wire.UnmarshalRecognitionResult(er.Result)
	return res, er.Source, err
}

// BuildRender frames a model fetch.
func (m *MuxClient) BuildRender(modelID string, qos wire.QoS, deadline time.Time, trace uint64) (wire.Message, error) {
	req := wire.ModelFetch{ModelID: modelID, Format: wire.FormatCMF, QoS: qos, TraceID: trace}
	if !deadline.IsZero() {
		req.Deadline = deadline.UnixMicro()
	}
	body, err := req.Marshal()
	if err != nil {
		return wire.Message{}, err
	}
	return wire.Message{Type: wire.MsgModelFetch, Body: body}, nil
}

// FinishRender decodes a model reply, loads the model and rasterises it
// once — the client-side half of the render task.
func (m *MuxClient) FinishRender(reply wire.Message) (uint8, error) {
	if err := ReplyError(reply); err != nil {
		return 0, err
	}
	mr, err := wire.UnmarshalModelReply(reply.Body)
	if err != nil {
		return 0, err
	}
	mesh, _, err := m.Client.LoadModel(mr.Data)
	if err != nil {
		return 0, err
	}
	if st, _ := m.Client.Draw(mesh); st.Pixels == 0 {
		return 0, fmt.Errorf("core: model drew nothing")
	}
	return mr.Source, nil
}

// BuildPano frames a panorama fetch.
func (m *MuxClient) BuildPano(videoID string, frameIdx int, qos wire.QoS, deadline time.Time, trace uint64) (wire.Message, error) {
	req := wire.PanoFetch{VideoID: videoID, FrameIndex: uint32(frameIdx), QoS: qos, TraceID: trace}
	if !deadline.IsZero() {
		req.Deadline = deadline.UnixMicro()
	}
	body, err := req.Marshal()
	if err != nil {
		return wire.Message{}, err
	}
	return wire.Message{Type: wire.MsgPanoFetch, Body: body}, nil
}

// FinishPano decodes a pano reply and crops the viewport locally.
func (m *MuxClient) FinishPano(reply wire.Message, vp pano.Viewport) (uint8, error) {
	if err := ReplyError(reply); err != nil {
		return 0, err
	}
	pr, err := wire.UnmarshalPanoReply(reply.Body)
	if err != nil {
		return 0, err
	}
	if _, _, err := m.Client.CropPano(pr.Data, vp, 256, 256); err != nil {
		return 0, err
	}
	return pr.Source, nil
}
