package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// never is an expire channel that does not fire.
var never = make(chan time.Time)

func mustAcquire(t *testing.T, g *upstreamGate, tenant string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := g.acquire(ctx, tenant, never); err != nil {
		t.Fatalf("acquire(%q): %v", tenant, err)
	}
}

// TestUpstreamGateStandingCap verifies the heart of upstream isolation:
// a tenant cannot hold slots beyond its weighted share even when the
// rest of the budget is idle, so another tenant always finds a slot
// free.
func TestUpstreamGateStandingCap(t *testing.T) {
	p := NewTenantPolicy(nil)
	p.Set("victim", TenantLimit{Weight: 4})
	p.Set("noisy", TenantLimit{Weight: 1})
	g := newUpstreamGate(2, p) // caps: victim 2, noisy 1

	mustAcquire(t, g, "noisy")

	// The second noisy acquire must queue despite a free slot.
	blocked := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		blocked <- g.acquire(ctx, "noisy", never)
	}()
	select {
	case err := <-blocked:
		t.Fatalf("noisy acquired beyond its cap: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// The victim takes the free slot immediately, ahead of the queued
	// noisy waiter.
	mustAcquire(t, g, "victim")

	// Releasing noisy's held slot unblocks its queued waiter (its own
	// release is the only way a capped tenant progresses).
	g.release("noisy")
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatalf("queued noisy waiter: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued noisy waiter never granted after release")
	}
}

// TestUpstreamGateOpenPolicy checks that without a tenant policy the
// gate is a plain counting semaphore: the pre-tenant behavior.
func TestUpstreamGateOpenPolicy(t *testing.T) {
	g := newUpstreamGate(2, nil)
	mustAcquire(t, g, DefaultTenant)
	mustAcquire(t, g, DefaultTenant)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- g.acquire(ctx, DefaultTenant, never)
	}()
	select {
	case err := <-done:
		t.Fatalf("third acquire succeeded past the budget: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	g.release(DefaultTenant)
	if err := <-done; err != nil {
		t.Fatalf("waiter after release: %v", err)
	}
}

// TestUpstreamGateExpiry covers both abandonment paths: the expire
// timer surfaces errUpstreamSaturated, context death surfaces its
// error, and neither leaks the slot.
func TestUpstreamGateExpiry(t *testing.T) {
	g := newUpstreamGate(1, nil)
	mustAcquire(t, g, "a")

	expire := make(chan time.Time, 1)
	expire <- time.Time{}
	if err := g.acquire(context.Background(), "a", expire); !errors.Is(err, errUpstreamSaturated) {
		t.Fatalf("expired acquire: %v, want errUpstreamSaturated", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.acquire(ctx, "a", never); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire: %v, want context.Canceled", err)
	}

	// The slot survives both abandonments.
	g.release("a")
	mustAcquire(t, g, "a")
	g.release("a")
}

// TestUpstreamGateChurn hammers the gate from competing tenants with
// aggressive timeouts so grants race withdrawals, then checks no slot
// was leaked or double-granted. Run under -race this is the gate's
// concurrency proof.
func TestUpstreamGateChurn(t *testing.T) {
	p := NewTenantPolicy(nil)
	p.Set("a", TenantLimit{Weight: 3})
	p.Set("b", TenantLimit{Weight: 1})
	g := newUpstreamGate(3, p)

	var wg sync.WaitGroup
	for _, tenant := range []string{"a", "b", "c"} {
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(tenant string, w int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%3)*100*time.Microsecond)
					err := g.acquire(ctx, tenant, never)
					cancel()
					if err == nil {
						if i%2 == 0 {
							time.Sleep(10 * time.Microsecond)
						}
						g.release(tenant)
					}
				}
			}(tenant, w)
		}
	}
	wg.Wait()

	// Quiesced: every slot must be home and grantable again.
	g.mu.Lock()
	free, held, waiting := g.free, len(g.holdings), len(g.waiting)
	g.mu.Unlock()
	if free != 3 || held != 0 || waiting != 0 {
		t.Fatalf("after churn: free=%d holdings=%d waiting=%d, want 3/0/0", free, held, waiting)
	}
	// Reacquire the full budget across tenants ("a" alone caps at 2).
	mustAcquire(t, g, "a")
	mustAcquire(t, g, "a")
	mustAcquire(t, g, "b")
}
