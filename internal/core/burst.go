package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/edge-immersion/coic/internal/dnn"
	"github.com/edge-immersion/coic/internal/metrics"
	"github.com/edge-immersion/coic/internal/netsim"
	"github.com/edge-immersion/coic/internal/pano"
	"github.com/edge-immersion/coic/internal/sim"
)

// This file is the burst ablation: what happens when K users fire
// requests at the edge in the same instant — the correlated-arrival
// pattern of multi-user immersive workloads (a crowd at one landmark, an
// audience scrubbing to the same VR scene). The experiment replays one
// burst under the honest serial miss policy (every in-flight duplicate
// pays its own cloud fetch) and under miss coalescing (duplicates join
// the one in-flight fetch), quantifying the cloud fetches saved and the
// tail-latency effect.

// BurstConfig parameterises RunBurstExp.
type BurstConfig struct {
	// Cond is the network condition (200/20 mid-sweep when zero).
	Cond netsim.Condition
	// UserCounts sweeps the burst size (concurrent users).
	UserCounts []int
	// DupRatios sweeps content duplication: 0 means every user wants a
	// distinct result, 1 means the whole burst wants the same one. The
	// burst uses max(1, round(users·(1−dup))) distinct descriptors.
	DupRatios []float64
	// Spacing separates consecutive arrivals (default 10µs — effectively
	// simultaneous relative to a cloud round trip, but deterministic).
	Spacing time.Duration
}

// BurstRow is one (users, duplication, mode) point of the sweep.
type BurstRow struct {
	Users    int
	DupRatio float64
	// Mode is the virtual in-flight policy the point ran under:
	// InflightSerial (no coalescing) or InflightCoalesce.
	Mode     InflightMode
	Events   int
	Errors   int
	Distinct int
	// CloudFetches counts requests that paid a cloud computation.
	CloudFetches int
	// CoalescedJoins counts requests served by joining an in-flight
	// fetch.
	CoalescedJoins uint64
	P50, P99       time.Duration
}

// SavedFetches is the offload delta of coalescing: requests that produced
// no cloud computation of their own. In a single cold burst every
// non-fetching request was either coalesced or (serial mode) zero.
func (r BurstRow) SavedFetches() int { return r.Events - r.CloudFetches }

// RunBurstExp sweeps burst size × duplication ratio, running every point
// once with coalescing off (InflightSerial: the honest serial baseline)
// and once with coalescing on (InflightCoalesce). All requests are VR
// panorama fetches — the task whose descriptor space is unbounded, so any
// duplication level is expressible — against a cold edge.
func RunBurstExp(p Params, cfg BurstConfig) ([]BurstRow, error) {
	if cfg.Cond.MobileEdge == 0 {
		cfg.Cond = netsim.Condition{Name: "200/20", MobileEdge: 200, EdgeCloud: 20}
	}
	if cfg.Spacing <= 0 {
		cfg.Spacing = 10 * time.Microsecond
	}
	cloud := NewCloud(p)
	// Pano tasks never touch the DNN trunk, but Client requires one;
	// build it once and share across all burst users.
	trunk := dnn.NewEdgeNet(p.Classes(), p.DNNInput, p.Seed).Trunk()

	var rows []BurstRow
	for _, users := range cfg.UserCounts {
		if users <= 0 {
			return nil, fmt.Errorf("core: burst with %d users", users)
		}
		for _, dup := range cfg.DupRatios {
			if dup < 0 || dup > 1 {
				return nil, fmt.Errorf("core: duplication ratio %v outside [0,1]", dup)
			}
			for _, mode := range []InflightMode{InflightSerial, InflightCoalesce} {
				row, err := runBurstPoint(p, cfg, cloud, trunk, users, dup, mode)
				if err != nil {
					return nil, fmt.Errorf("burst users=%d dup=%.2f %s: %w", users, dup, mode, err)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

func runBurstPoint(p Params, cfg BurstConfig, cloud *Cloud, trunk *dnn.Network, users int, dup float64, mode InflightMode) (BurstRow, error) {
	distinct := int(math.Round(float64(users) * (1 - dup)))
	if distinct < 1 {
		distinct = 1
	}
	row := BurstRow{Users: users, DupRatio: dup, Mode: mode, Distinct: distinct}

	edge := NewEdge(p, WithInflightMode(mode))
	topo := netsim.NewTopology(cfg.Cond, p.Seed)
	hist := &metrics.Histogram{}
	eng := sim.New(epoch)
	var firstErr error
	for i := 0; i < users; i++ {
		i := i
		sess := NewSession(&Client{ID: i, Params: p, Trunk: trunk}, edge, cloud, topo)
		at := epoch.Add(time.Duration(i) * cfg.Spacing)
		eng.Schedule(at, func() {
			// User i wants frame i%distinct: the duplication knob decides
			// how many users collide on each descriptor.
			vp := pano.Viewport{Yaw: float64(i%6) / 2, FOV: 1.6}
			b, err := sess.Pano(context.Background(), eng.Now(), "burst-video", i%distinct, vp, ModeCoIC)
			row.Events++
			if err != nil {
				row.Errors++
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if b.Cloud > 0 {
				row.CloudFetches++
			}
			hist.Record(b.Total())
		})
	}
	eng.Run()
	if firstErr != nil {
		return row, firstErr
	}
	row.CoalescedJoins = edge.Stats().Coalesced
	row.P50, row.P99 = hist.Median(), hist.P99()
	return row, nil
}

// SortBurstRows orders rows for stable rendering: users, then dup ratio,
// then mode (serial before coalesce).
func SortBurstRows(rows []BurstRow) {
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Users != b.Users {
			return a.Users < b.Users
		}
		if a.DupRatio != b.DupRatio {
			return a.DupRatio < b.DupRatio
		}
		return a.Mode < b.Mode
	})
}
