package cache

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/edge-immersion/coic/internal/feature"
)

// This file is the federation lookup path: how one edge's cache consults
// its peers before conceding a miss to the cloud. The Federation owns the
// routing decision (which peer, in which order) and the counters; the
// transport — a direct call in virtual time, a MsgPeerLookup frame over
// TCP — is injected as callbacks, so the same policy drives both modes.

// PeerProbe resolves a descriptor at one remote peer. ctx carries the
// requesting caller's deadline and cancellation — a TCP probe must abort
// when ctx dies rather than stall the miss path (virtual-time probes may
// ignore it). requester is an opaque user identity forwarded to the
// peer's privacy gate (pass -1 when anonymous); task is an opaque
// workload tag carried on the wire for the peer's accounting — the cache
// layer interprets neither. The returned cost is the virtual time of the
// hop: transfer of the lookup and reply over the edge↔edge link plus the
// peer's own cache query time. Probes must be safe for concurrent use.
type PeerProbe func(ctx context.Context, requester int, task uint8, desc feature.Descriptor) ([]byte, LookupResult, time.Duration)

// PeerInsert publishes a freshly computed result to a remote peer (one of
// the key's owners). It runs off the request's critical path —
// replication is asynchronous in spirit — so it returns nothing.
type PeerInsert func(desc feature.Descriptor, value []byte, cost float64)

// Peer bundles the two directions of cooperation with one remote edge.
type Peer struct {
	Probe  PeerProbe
	Insert PeerInsert // optional; nil disables publishing to this peer
}

// FederationStats counts cooperative-lookup outcomes.
type FederationStats struct {
	// Probes is how many peer lookups were issued.
	Probes uint64
	// Hits is how many probes returned a usable value.
	Hits uint64
	// Misses is how many probes came back empty.
	Misses uint64
	// Coalesced counts lookups that joined an in-flight probe for the
	// same key instead of issuing their own (concurrent TCP misses).
	Coalesced uint64
	// Published counts inserts routed to a key's owners (one count per
	// peer insert, so rf=2 publishes from a non-owner count twice).
	Published uint64
	// Repaired counts read-repair inserts: an owner earlier in a key's
	// successor list missed while a later replica hit, so the value was
	// pushed back to the peer that should have had it.
	Repaired uint64
}

// Federation routes cache misses across a set of cooperating edges. With
// a Ring, every key has an owner list (the home plus rf-1 successors):
// lookups probe the owners in order and inserts are published to the
// first rf of them, so the federation behaves like one partitioned,
// rf-way replicated cache. Without a Ring it degrades to the broadcast
// cooperation of the seed reproduction: probe every registered peer in
// order until one hits.
//
// The ring is swappable (SetRing): a membership layer rebuilds it on
// every epoch change, and in-flight lookups simply use whichever ring
// they started with — at worst a probe lands on a peer that no longer
// owns the key and misses.
type Federation struct {
	self string

	mu    sync.Mutex
	ring  *Ring
	rf    int // replication factor; <=1 means home-only
	order []string
	peers map[string]Peer
	stats FederationStats

	// inflight coalesces concurrent probes for the same key: N requests
	// missing locally at once cost the federation one peer round trip,
	// not N. Virtual-time experiments are single-threaded, so there every
	// lookup is its own leader and behaviour is unchanged.
	inflight Inflight[probeOutcome]
}

// probeOutcome is the fan-out payload of one coalesced probe round.
type probeOutcome struct {
	value []byte
	res   LookupResult
	peer  string
	cost  time.Duration
	ok    bool
}

// NewFederation builds the federation view of node `self`. ring may be
// nil for broadcast cooperation. Replication factor starts at 1
// (home-only); raise it with SetReplication.
func NewFederation(self string, ring *Ring) *Federation {
	return &Federation{self: self, ring: ring, rf: 1, peers: map[string]Peer{}}
}

// Self reports this node's federation ID.
func (f *Federation) Self() string { return f.self }

// Ring exposes the current keyspace partition (nil in broadcast mode).
func (f *Federation) Ring() *Ring {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring
}

// SetRing swaps in a new keyspace partition. The membership layer calls
// this on every epoch change; Lookup/Publish pick up the new ring on
// their next routing decision.
func (f *Federation) SetRing(r *Ring) {
	f.mu.Lock()
	f.ring = r
	f.mu.Unlock()
}

// RingVersion reports the current ring's version (0 in broadcast mode).
func (f *Federation) RingVersion() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ring == nil {
		return 0
	}
	return f.ring.Version()
}

// SetReplication sets the replication factor: keys are published to, and
// probed at, their first rf ring owners. Values <= 1 mean home-only.
func (f *Federation) SetReplication(rf int) {
	f.mu.Lock()
	if rf < 1 {
		rf = 1
	}
	f.rf = rf
	f.mu.Unlock()
}

// Replication reports the configured replication factor.
func (f *Federation) Replication() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rf
}

// AddPeer registers a remote edge. Re-registering an ID replaces its
// callbacks (a reconnecting TCP peer).
func (f *Federation) AddPeer(id string, p Peer) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.peers[id]; !ok {
		f.order = append(f.order, id)
	}
	f.peers[id] = p
}

// RemovePeer forgets a remote edge (a member declared dead). Probes and
// publishes stop routing to it immediately; re-adding later is fine.
func (f *Federation) RemovePeer(id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.peers[id]; !ok {
		return
	}
	delete(f.peers, id)
	for i, o := range f.order {
		if o == id {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
}

// Peers lists the registered peer IDs in registration order.
func (f *Federation) Peers() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.order...)
}

// Owner reports the home node of key: ring owner when partitioned, ""
// (no single owner) in broadcast mode.
func (f *Federation) Owner(key string) string {
	f.mu.Lock()
	ring := f.ring
	f.mu.Unlock()
	if ring == nil {
		return ""
	}
	return ring.Owner(key)
}

// probeOrder lists the peers to consult for key, most promising first:
// the key's owners in successor order, minus this node and any owner with
// no registered peer. A nil return means nobody else is worth asking —
// the caller degrades to its own fallback (local result, then cloud).
func (f *Federation) probeOrder(key string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ring != nil {
		var order []string
		for _, owner := range f.ring.OwnersFor(key, f.rf) {
			if owner == f.self {
				continue
			}
			if _, ok := f.peers[owner]; ok {
				order = append(order, owner)
			}
		}
		return order
	}
	return append([]string(nil), f.order...)
}

// Lookup runs the peer phase of a cache miss: probe the key's owners in
// successor order (or every peer in broadcast mode) and return the first
// usable value, bounded by ctx — probes inherit the caller's deadline,
// and a caller that departs mid-probe detaches from the coalesced round.
// peer names who answered; cost accumulates over every hop taken, hit or
// not. When a later replica hits after an earlier owner missed, the value
// is pushed back to the owners that missed (read-repair), so a home
// recovering from a restart or a freshly promoted successor converges
// back to full coverage without waiting for republication.
// Concurrent lookups for the same (requester, key) coalesce onto one
// probe round whose outcome fans out to all of them; the requester is
// part of the flight key because the remote privacy gate answers per
// requester — a stranger must not ride a contributor's probe to a value
// the gate would withhold from them. (TCP edges probe anonymously, so in
// practice all of a TCP edge's misses on a key still share one flight.)
// A (LookupResult{}, ok=false) return means the federation has nothing —
// the caller falls back to the cloud.
func (f *Federation) Lookup(ctx context.Context, requester int, task uint8, key string, desc feature.Descriptor) (value []byte, res LookupResult, peer string, cost time.Duration, ok bool) {
	flight := fmt.Sprintf("%d|%s", requester, key)
	out, leader, err := f.inflight.Do(ctx, flight, func(fctx context.Context) (probeOutcome, error) {
		return f.probeRound(fctx, requester, task, key, desc), nil
	})
	if !leader {
		f.addStat(func(s *FederationStats) { s.Coalesced++ })
	}
	if err != nil {
		// The caller departed (its context died) before the probe round
		// finished: report a miss so it degrades to its own fallback path.
		return nil, LookupResult{Outcome: OutcomeMiss}, "", 0, false
	}
	return out.value, out.res, out.peer, out.cost, out.ok
}

// probeRound issues the actual peer probes for one coalesced flight. ctx
// is the flight context: it dies when the last coalesced caller departs,
// aborting any probe still on the wire.
func (f *Federation) probeRound(ctx context.Context, requester int, task uint8, key string, desc feature.Descriptor) probeOutcome {
	var cost time.Duration
	var missed []string // owners probed before the hit, for read-repair
	for _, id := range f.probeOrder(key) {
		if ctx.Err() != nil {
			break
		}
		f.mu.Lock()
		p, registered := f.peers[id]
		f.mu.Unlock()
		if !registered || p.Probe == nil {
			continue
		}
		f.addStat(func(s *FederationStats) { s.Probes++ })
		v, r, c := p.Probe(ctx, requester, task, desc)
		cost += c
		if r.Hit() {
			f.addStat(func(s *FederationStats) { s.Hits++ })
			f.readRepair(missed, desc, v)
			return probeOutcome{value: v, res: r, peer: id, cost: cost, ok: true}
		}
		f.addStat(func(s *FederationStats) { s.Misses++ })
		missed = append(missed, id)
	}
	return probeOutcome{res: LookupResult{Outcome: OutcomeMiss}, cost: cost}
}

// readRepair pushes a value a replica served back to the owners earlier
// in its successor list that missed.
func (f *Federation) readRepair(missed []string, desc feature.Descriptor, value []byte) {
	for _, id := range missed {
		f.mu.Lock()
		p, ok := f.peers[id]
		f.mu.Unlock()
		if !ok || p.Insert == nil {
			continue
		}
		p.Insert(desc, value, 0)
		f.addStat(func(s *FederationStats) { s.Repaired++ })
	}
}

// Publish routes a freshly computed result to the first rf owners of its
// key so future lookups from any edge find it in one hop even when one
// owner dies. This node is skipped (it already holds the value locally),
// as are owners with no insert path. It is a no-op in broadcast mode.
// Returns the peers published to, if any.
func (f *Federation) Publish(desc feature.Descriptor, value []byte, cost float64) []string {
	f.mu.Lock()
	ring, rf := f.ring, f.rf
	f.mu.Unlock()
	if ring == nil {
		return nil
	}
	return f.publishTo(ring.OwnersFor(desc.Key(), rf), desc, value, cost)
}

// publishTo inserts the value at every listed owner except this node,
// counting each successful routing. It is the shared sink for Publish,
// read-repair-style migration sweeps and decommission drains.
func (f *Federation) publishTo(owners []string, desc feature.Descriptor, value []byte, cost float64) []string {
	var sent []string
	for _, owner := range owners {
		if owner == f.self {
			continue
		}
		f.mu.Lock()
		p, ok := f.peers[owner]
		f.mu.Unlock()
		if !ok || p.Insert == nil {
			continue
		}
		p.Insert(desc, value, cost)
		f.addStat(func(s *FederationStats) { s.Published++ })
		sent = append(sent, owner)
	}
	return sent
}

func (f *Federation) addStat(fn func(*FederationStats)) {
	f.mu.Lock()
	fn(&f.stats)
	f.mu.Unlock()
}

// Stats returns a counter snapshot.
func (f *Federation) Stats() FederationStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}
