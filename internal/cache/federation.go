package cache

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/edge-immersion/coic/internal/feature"
)

// This file is the federation lookup path: how one edge's cache consults
// its peers before conceding a miss to the cloud. The Federation owns the
// routing decision (which peer, in which order) and the counters; the
// transport — a direct call in virtual time, a MsgPeerLookup frame over
// TCP — is injected as callbacks, so the same policy drives both modes.

// PeerProbe resolves a descriptor at one remote peer. ctx carries the
// requesting caller's deadline and cancellation — a TCP probe must abort
// when ctx dies rather than stall the miss path (virtual-time probes may
// ignore it). requester is an opaque user identity forwarded to the
// peer's privacy gate (pass -1 when anonymous); task is an opaque
// workload tag carried on the wire for the peer's accounting — the cache
// layer interprets neither. The returned cost is the virtual time of the
// hop: transfer of the lookup and reply over the edge↔edge link plus the
// peer's own cache query time. Probes must be safe for concurrent use.
type PeerProbe func(ctx context.Context, requester int, task uint8, desc feature.Descriptor) ([]byte, LookupResult, time.Duration)

// PeerInsert publishes a freshly computed result to a remote peer (the
// key's home node). It runs off the request's critical path — replication
// is asynchronous in spirit — so it returns nothing.
type PeerInsert func(desc feature.Descriptor, value []byte, cost float64)

// Peer bundles the two directions of cooperation with one remote edge.
type Peer struct {
	Probe  PeerProbe
	Insert PeerInsert // optional; nil disables publishing to this peer
}

// FederationStats counts cooperative-lookup outcomes.
type FederationStats struct {
	// Probes is how many peer lookups were issued.
	Probes uint64
	// Hits is how many probes returned a usable value.
	Hits uint64
	// Misses is how many probes came back empty.
	Misses uint64
	// Coalesced counts lookups that joined an in-flight probe for the
	// same key instead of issuing their own (concurrent TCP misses).
	Coalesced uint64
	// Published counts inserts routed to a key's home peer.
	Published uint64
}

// Federation routes cache misses across a set of cooperating edges. With
// a Ring, every key has a home node: lookups probe only the home (one
// cheap hop) and inserts are published to it, so the federation behaves
// like one partitioned cache. Without a Ring it degrades to the broadcast
// cooperation of the seed reproduction: probe every registered peer in
// order until one hits.
type Federation struct {
	self string
	ring *Ring

	mu    sync.Mutex
	order []string
	peers map[string]Peer
	stats FederationStats

	// inflight coalesces concurrent probes for the same key: N requests
	// missing locally at once cost the federation one peer round trip,
	// not N. Virtual-time experiments are single-threaded, so there every
	// lookup is its own leader and behaviour is unchanged.
	inflight Inflight[probeOutcome]
}

// probeOutcome is the fan-out payload of one coalesced probe round.
type probeOutcome struct {
	value []byte
	res   LookupResult
	peer  string
	cost  time.Duration
	ok    bool
}

// NewFederation builds the federation view of node `self`. ring may be
// nil for broadcast cooperation.
func NewFederation(self string, ring *Ring) *Federation {
	return &Federation{self: self, ring: ring, peers: map[string]Peer{}}
}

// Self reports this node's federation ID.
func (f *Federation) Self() string { return f.self }

// Ring exposes the keyspace partition (nil in broadcast mode).
func (f *Federation) Ring() *Ring { return f.ring }

// AddPeer registers a remote edge. Re-registering an ID replaces its
// callbacks (a reconnecting TCP peer).
func (f *Federation) AddPeer(id string, p Peer) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.peers[id]; !ok {
		f.order = append(f.order, id)
	}
	f.peers[id] = p
}

// Owner reports the home node of key: ring owner when partitioned, ""
// (no single owner) in broadcast mode.
func (f *Federation) Owner(key string) string {
	if f.ring == nil {
		return ""
	}
	return f.ring.Owner(key)
}

// probeOrder lists the peers to consult for key, most promising first.
func (f *Federation) probeOrder(key string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ring != nil {
		owner := f.ring.Owner(key)
		if owner == f.self {
			return nil // we are the home; nobody else should have it
		}
		if _, ok := f.peers[owner]; ok {
			return []string{owner}
		}
		return nil // owner unreachable/unregistered: degrade to local-only
	}
	return append([]string(nil), f.order...)
}

// Lookup runs the peer phase of a cache miss: probe the key's home (or
// every peer in broadcast mode) and return the first usable value,
// bounded by ctx — probes inherit the caller's deadline, and a caller
// that departs mid-probe detaches from the coalesced round. peer
// names who answered; cost accumulates over every hop taken, hit or not.
// Concurrent lookups for the same (requester, key) coalesce onto one
// probe round whose outcome fans out to all of them; the requester is
// part of the flight key because the remote privacy gate answers per
// requester — a stranger must not ride a contributor's probe to a value
// the gate would withhold from them. (TCP edges probe anonymously, so in
// practice all of a TCP edge's misses on a key still share one flight.)
// A (LookupResult{}, ok=false) return means the federation has nothing —
// the caller falls back to the cloud.
func (f *Federation) Lookup(ctx context.Context, requester int, task uint8, key string, desc feature.Descriptor) (value []byte, res LookupResult, peer string, cost time.Duration, ok bool) {
	flight := fmt.Sprintf("%d|%s", requester, key)
	out, leader, err := f.inflight.Do(ctx, flight, func(fctx context.Context) (probeOutcome, error) {
		return f.probeRound(fctx, requester, task, key, desc), nil
	})
	if !leader {
		f.addStat(func(s *FederationStats) { s.Coalesced++ })
	}
	if err != nil {
		// The caller departed (its context died) before the probe round
		// finished: report a miss so it degrades to its own fallback path.
		return nil, LookupResult{Outcome: OutcomeMiss}, "", 0, false
	}
	return out.value, out.res, out.peer, out.cost, out.ok
}

// probeRound issues the actual peer probes for one coalesced flight. ctx
// is the flight context: it dies when the last coalesced caller departs,
// aborting any probe still on the wire.
func (f *Federation) probeRound(ctx context.Context, requester int, task uint8, key string, desc feature.Descriptor) probeOutcome {
	var cost time.Duration
	for _, id := range f.probeOrder(key) {
		if ctx.Err() != nil {
			break
		}
		f.mu.Lock()
		p, registered := f.peers[id]
		f.mu.Unlock()
		if !registered || p.Probe == nil {
			continue
		}
		f.addStat(func(s *FederationStats) { s.Probes++ })
		v, r, c := p.Probe(ctx, requester, task, desc)
		cost += c
		if r.Hit() {
			f.addStat(func(s *FederationStats) { s.Hits++ })
			return probeOutcome{value: v, res: r, peer: id, cost: cost, ok: true}
		}
		f.addStat(func(s *FederationStats) { s.Misses++ })
	}
	return probeOutcome{res: LookupResult{Outcome: OutcomeMiss}, cost: cost}
}

// Publish routes a freshly computed result to its home peer so future
// lookups from any edge find it in one hop. It is a no-op in broadcast
// mode, when the home is this node, or when the home peer has no insert
// path. Returns the peer published to, if any.
func (f *Federation) Publish(desc feature.Descriptor, value []byte, cost float64) (string, bool) {
	if f.ring == nil {
		return "", false
	}
	owner := f.ring.Owner(desc.Key())
	if owner == f.self {
		return "", false
	}
	f.mu.Lock()
	p, ok := f.peers[owner]
	f.mu.Unlock()
	if !ok || p.Insert == nil {
		return "", false
	}
	p.Insert(desc, value, cost)
	f.addStat(func(s *FederationStats) { s.Published++ })
	return owner, true
}

func (f *Federation) addStat(fn func(*FederationStats)) {
	f.mu.Lock()
	fn(&f.stats)
	f.mu.Unlock()
}

// Stats returns a counter snapshot.
func (f *Federation) Stats() FederationStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}
