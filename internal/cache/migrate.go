package cache

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/edge-immersion/coic/internal/feature"
)

// ForEachResident visits every resident entry whose descriptor was
// retained (the same population Snapshot persists), stopping early when
// fn returns false. The key list is snapshotted once, then each entry is
// read under its own lock epoch, so concurrent inserts and evictions
// never block behind the walk; an entry evicted mid-walk is simply
// skipped. This is the residency source for ring-change key migration.
func (sc *SimilarityCache) ForEachResident(fn func(desc feature.Descriptor, value []byte, cost float64) bool) {
	sc.mu.Lock()
	keys := make([]string, 0, len(sc.descs))
	for k := range sc.descs {
		keys = append(keys, k)
	}
	sc.mu.Unlock()

	for _, k := range keys {
		sc.mu.Lock()
		raw := sc.descs[k]
		sc.mu.Unlock()
		if raw == nil {
			continue
		}
		desc, err := feature.Unmarshal(raw)
		if err != nil {
			continue // retained descriptor is authoritative; skip if torn
		}
		value, ok := sc.store.Get(k)
		if !ok {
			continue // evicted between listing and reading
		}
		meta, _ := sc.store.Meta(k)
		if !fn(desc, value, meta.Cost) {
			return
		}
	}
}

// Migrator re-homes resident cache entries when the federation's ring
// changes. A membership layer calls Sweep with the superseded ring after
// every rebuild: the migrator walks local residency and pushes each key
// whose owner set gained a node — a join taking over part of the
// keyspace, or a successor promoted by a death — to the new owners, so
// the federation's one-hop lookup invariant survives churn without
// waiting for natural republication. Drain is the decommission variant:
// it pushes every key this node co-owns to the owners that remain once
// this node leaves the ring.
//
// Sweeps are rate-limited (Rate keys/second, 0 = unthrottled) so a big
// rebalance trickles out instead of flooding peer links that are also
// serving interactive traffic. One sweep runs at a time; callers that
// kick during a sweep should re-kick after it returns (see the serving
// glue), since the walk uses the ring current at each key.
type Migrator struct {
	cache *SimilarityCache
	fed   *Federation
	rate  int

	mu       sync.Mutex // serialises Sweep/Drain
	migrated atomic.Uint64
}

// NewMigrator wires a migrator over one edge's cache and federation.
// rate caps migration pushes in keys/second; <= 0 means unthrottled.
func NewMigrator(sc *SimilarityCache, fed *Federation, rate int) *Migrator {
	return &Migrator{cache: sc, fed: fed, rate: rate}
}

// Migrated reports the total number of keys pushed by sweeps and drains
// since construction (the coic_migration_keys_total counter).
func (m *Migrator) Migrated() uint64 { return m.migrated.Load() }

// Sweep pushes every resident key whose owner set under the federation's
// current ring includes nodes that did not own it under prev. prev may be
// nil (no prior ring — e.g. first ring after solo operation), which
// pushes each key to all its current remote owners. Returns the number
// of keys pushed; a dead ctx stops the walk early.
func (m *Migrator) Sweep(ctx context.Context, prev *Ring) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.fed.Ring()
	if cur == nil {
		return 0
	}
	rf := m.fed.Replication()
	return m.walk(ctx, func(key string) []string {
		owners := cur.OwnersFor(key, rf)
		if prev == nil {
			return owners
		}
		return ownerDiff(owners, prev.OwnersFor(key, rf))
	})
}

// Drain pushes every key this node co-owns to the owners it would have
// on the current ring with this node removed — the successor promotion a
// graceful decommission performs before exit. Keys this node merely
// caches but does not own are left alone; their owners already have them.
func (m *Migrator) Drain(ctx context.Context) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.fed.Ring()
	if cur == nil {
		return 0
	}
	rf := m.fed.Replication()
	next := cur.Without(m.fed.Self())
	return m.walk(ctx, func(key string) []string {
		owners := cur.OwnersFor(key, rf)
		if !containsOwner(owners, m.fed.Self()) {
			return nil
		}
		// Push to owners promoted by our departure; survivors that
		// already co-owned the key keep their copy.
		return ownerDiff(next.OwnersFor(key, rf), owners)
	})
}

// walk visits residency, publishing each key to targets(key) and pacing
// by the configured rate. The per-key target computation runs inside the
// walk so an unthrottled sweep is one pass.
func (m *Migrator) walk(ctx context.Context, targets func(key string) []string) int {
	var interval time.Duration
	if m.rate > 0 {
		interval = time.Second / time.Duration(m.rate)
	}
	moved := 0
	m.cache.ForEachResident(func(desc feature.Descriptor, value []byte, cost float64) bool {
		if ctx.Err() != nil {
			return false
		}
		dst := targets(desc.Key())
		if len(dst) == 0 {
			return true
		}
		if sent := m.fed.publishTo(dst, desc, value, cost); len(sent) > 0 {
			moved++
			m.migrated.Add(1)
			if interval > 0 {
				select {
				case <-ctx.Done():
					return false
				case <-time.After(interval):
				}
			}
		}
		return true
	})
	return moved
}

// ownerDiff returns the members of cur that are absent from prev,
// preserving cur's order.
func ownerDiff(cur, prev []string) []string {
	var out []string
	for _, c := range cur {
		if !containsOwner(prev, c) {
			out = append(out, c)
		}
	}
	return out
}

func containsOwner(owners []string, id string) bool {
	for _, o := range owners {
		if o == id {
			return true
		}
	}
	return false
}
