package cache

import (
	"context"
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/feature"
)

// fakePeer records probes and serves a canned answer.
type fakePeer struct {
	probes  int
	inserts int
	value   []byte // nil = always miss
}

func (f *fakePeer) peer() Peer {
	return Peer{
		Probe: func(_ context.Context, requester int, task uint8, desc feature.Descriptor) ([]byte, LookupResult, time.Duration) {
			f.probes++
			if f.value == nil {
				return nil, LookupResult{Outcome: OutcomeMiss}, time.Millisecond
			}
			return f.value, LookupResult{Outcome: OutcomeExact, Key: desc.Key()}, time.Millisecond
		},
		Insert: func(desc feature.Descriptor, value []byte, cost float64) {
			f.inserts++
		},
	}
}

// ownedBy finds a descriptor whose ring home is the wanted node.
func ownedBy(t *testing.T, r *Ring, want string) feature.Descriptor {
	t.Helper()
	for i := 0; i < 10000; i++ {
		d := descForTest(i)
		if r.Owner(d.Key()) == want {
			return d
		}
	}
	t.Fatalf("no key owned by %s in 10000 tries", want)
	return feature.Descriptor{}
}

func TestFederationPartitionedProbesOnlyOwner(t *testing.T) {
	ring := NewRing([]string{"self", "a", "b"}, 0)
	fed := NewFederation("self", ring)
	pa, pb := &fakePeer{value: []byte("va")}, &fakePeer{value: []byte("vb")}
	fed.AddPeer("a", pa.peer())
	fed.AddPeer("b", pb.peer())

	desc := ownedBy(t, ring, "a")
	v, res, peer, cost, ok := fed.Lookup(context.Background(), -1, 0, desc.Key(), desc)
	if !ok || string(v) != "va" || peer != "a" || !res.Hit() {
		t.Fatalf("lookup = %q from %q ok=%v", v, peer, ok)
	}
	if cost != time.Millisecond {
		t.Fatalf("cost = %v", cost)
	}
	if pa.probes != 1 || pb.probes != 0 {
		t.Fatalf("probes a=%d b=%d, want owner-only routing", pa.probes, pb.probes)
	}

	// Keys homed here must not generate peer traffic at all.
	local := ownedBy(t, ring, "self")
	if _, _, _, _, ok := fed.Lookup(context.Background(), -1, 0, local.Key(), local); ok {
		t.Fatal("self-owned key resolved remotely")
	}
	if pa.probes != 1 || pb.probes != 0 {
		t.Fatalf("self-owned key probed a peer (a=%d b=%d)", pa.probes, pb.probes)
	}
}

func TestFederationBroadcastProbesInOrder(t *testing.T) {
	fed := NewFederation("self", nil)
	miss, hit := &fakePeer{}, &fakePeer{value: []byte("v")}
	fed.AddPeer("first", miss.peer())
	fed.AddPeer("second", hit.peer())

	d := descForTest(1)
	v, _, peer, cost, ok := fed.Lookup(context.Background(), -1, 0, d.Key(), d)
	if !ok || string(v) != "v" || peer != "second" {
		t.Fatalf("lookup = %q from %q ok=%v", v, peer, ok)
	}
	if miss.probes != 1 || hit.probes != 1 {
		t.Fatalf("probes = %d,%d", miss.probes, hit.probes)
	}
	if cost != 2*time.Millisecond {
		t.Fatalf("cost must accumulate over failed hops, got %v", cost)
	}
	st := fed.Stats()
	if st.Probes != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFederationPublishRoutesToOwner(t *testing.T) {
	ring := NewRing([]string{"self", "a", "b"}, 0)
	fed := NewFederation("self", ring)
	pa, pb := &fakePeer{}, &fakePeer{}
	fed.AddPeer("a", pa.peer())
	fed.AddPeer("b", pb.peer())

	remote := ownedBy(t, ring, "b")
	if sent := fed.Publish(remote, []byte("v"), 1); len(sent) != 1 || sent[0] != "b" {
		t.Fatalf("publish = %v", sent)
	}
	if pb.inserts != 1 || pa.inserts != 0 {
		t.Fatalf("inserts a=%d b=%d", pa.inserts, pb.inserts)
	}

	// rf=1: a self-owned key has no other owner to publish to.
	local := ownedBy(t, ring, "self")
	if sent := fed.Publish(local, []byte("v"), 1); len(sent) != 0 {
		t.Fatalf("self-owned key published to %v at rf=1", sent)
	}
	if got := fed.Stats().Published; got != 1 {
		t.Fatalf("published = %d", got)
	}

	// Broadcast mode never publishes.
	bfed := NewFederation("self", nil)
	bfed.AddPeer("a", pa.peer())
	if sent := bfed.Publish(remote, []byte("v"), 1); len(sent) != 0 {
		t.Fatal("broadcast federation must not publish")
	}
}

func TestFederationReplicatedPublishAndProbe(t *testing.T) {
	ring := NewRing([]string{"self", "a", "b"}, 0)
	fed := NewFederation("self", ring)
	fed.SetReplication(2)
	pa, pb := &fakePeer{}, &fakePeer{}
	fed.AddPeer("a", pa.peer())
	fed.AddPeer("b", pb.peer())

	// Find a key whose first two owners are both remote peers.
	var desc feature.Descriptor
	found := false
	for i := 0; i < 10000 && !found; i++ {
		d := descForTest(i)
		owners := ring.OwnersFor(d.Key(), 2)
		if owners[0] == "a" && owners[1] == "b" {
			desc, found = d, true
		}
	}
	if !found {
		t.Fatal("no key with owners [a b] in 10000 tries")
	}

	if sent := fed.Publish(desc, []byte("v"), 1); len(sent) != 2 {
		t.Fatalf("rf=2 publish reached %v, want both owners", sent)
	}
	if pa.inserts != 1 || pb.inserts != 1 {
		t.Fatalf("inserts a=%d b=%d", pa.inserts, pb.inserts)
	}

	// With the home dead (unregistered), the replica still answers.
	fed.RemovePeer("a")
	pb.value = []byte("vb")
	v, _, peer, _, ok := fed.Lookup(context.Background(), -1, 0, desc.Key(), desc)
	if !ok || peer != "b" || string(v) != "vb" {
		t.Fatalf("replica lookup = %q from %q ok=%v", v, peer, ok)
	}

	// Self-owned keys still replicate to their successor at rf=2.
	selfHome := ownedBy(t, ring, "self")
	if sent := fed.Publish(selfHome, []byte("v"), 1); len(sent) != 1 {
		t.Fatalf("self-homed rf=2 publish = %v, want one successor", sent)
	}
}

func TestFederationReadRepair(t *testing.T) {
	ring := NewRing([]string{"self", "a", "b"}, 0)
	fed := NewFederation("self", ring)
	fed.SetReplication(2)
	// Home "a" lost the value (restart); replica "b" still has it.
	pa, pb := &fakePeer{}, &fakePeer{value: []byte("v")}
	fed.AddPeer("a", pa.peer())
	fed.AddPeer("b", pb.peer())

	var desc feature.Descriptor
	found := false
	for i := 0; i < 10000 && !found; i++ {
		d := descForTest(i)
		owners := ring.OwnersFor(d.Key(), 2)
		if owners[0] == "a" && owners[1] == "b" {
			desc, found = d, true
		}
	}
	if !found {
		t.Fatal("no key with owners [a b] in 10000 tries")
	}

	v, _, peer, _, ok := fed.Lookup(context.Background(), -1, 0, desc.Key(), desc)
	if !ok || peer != "b" || string(v) != "v" {
		t.Fatalf("lookup = %q from %q ok=%v", v, peer, ok)
	}
	if pa.inserts != 1 {
		t.Fatalf("home received %d read-repair inserts, want 1", pa.inserts)
	}
	if st := fed.Stats(); st.Repaired != 1 {
		t.Fatalf("Repaired = %d, want 1", st.Repaired)
	}
}

func TestFederationSetRingRedirectsRouting(t *testing.T) {
	ring := NewRing([]string{"self", "a"}, 0)
	fed := NewFederation("self", ring)
	pa, pb := &fakePeer{}, &fakePeer{}
	fed.AddPeer("a", pa.peer())
	fed.AddPeer("b", pb.peer())
	if fed.RingVersion() != 1 {
		t.Fatalf("ring version = %d", fed.RingVersion())
	}

	desc := ownedBy(t, ring, "a")
	fed.Publish(desc, []byte("v"), 1)
	if pa.inserts != 1 {
		t.Fatalf("pre-swap publish went to a=%d b=%d", pa.inserts, pb.inserts)
	}

	// Membership change: "a" left, "b" joined. Publishes must re-route.
	next := NewRingVersion([]string{"self", "b"}, 0, 2)
	fed.SetRing(next)
	fed.RemovePeer("a")
	if fed.RingVersion() != 2 {
		t.Fatalf("ring version after swap = %d", fed.RingVersion())
	}
	moved := ownedBy(t, next, "b")
	fed.Publish(moved, []byte("v"), 1)
	if pb.inserts != 1 || pa.inserts != 1 {
		t.Fatalf("post-swap publish went to a=%d b=%d", pa.inserts, pb.inserts)
	}
}

func TestFederationUnregisteredOwnerDegrades(t *testing.T) {
	// The ring says "a" owns the key, but "a" never registered (down,
	// never connected): the lookup degrades to a local-only miss rather
	// than probing the wrong node.
	ring := NewRing([]string{"self", "a"}, 0)
	fed := NewFederation("self", ring)
	d := ownedBy(t, ring, "a")
	if _, _, _, _, ok := fed.Lookup(context.Background(), -1, 0, d.Key(), d); ok {
		t.Fatal("lookup resolved against an unregistered owner")
	}
	if st := fed.Stats(); st.Probes != 0 {
		t.Fatalf("probes = %d, want 0", st.Probes)
	}
}
