package cache

import (
	"fmt"
	"testing"

	"github.com/edge-immersion/coic/internal/feature"
	"github.com/edge-immersion/coic/internal/xrand"
)

// BenchmarkStorePut measures insertion with LRU eviction under steady
// churn.
func BenchmarkStorePut(b *testing.B) {
	s := NewStore(1<<20, NewLRU())
	v := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(fmt.Sprintf("k%d", i%4096), v, 1)
	}
}

// BenchmarkStoreGetHit measures the hot-path read.
func BenchmarkStoreGetHit(b *testing.B) {
	s := NewStore(1<<20, NewLRU())
	s.Put("k", make([]byte, 1024), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get("k")
	}
}

// BenchmarkSimilarityLookup measures the edge's per-request descriptor
// match (exact map probe + vector index search) at a realistic cache
// population.
func BenchmarkSimilarityLookup(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("resident=%d", n), func(b *testing.B) {
			sc := NewSimilarity(SimilarityConfig{Capacity: 1 << 30, Threshold: 0.12})
			rng := xrand.New(1)
			var last feature.Descriptor
			for i := 0; i < n; i++ {
				v := make([]float32, 64)
				for j := range v {
					v[j] = float32(rng.NormFloat64())
				}
				last = feature.NewVector(v)
				sc.Insert(last, make([]byte, 64), 1)
			}
			q := make([]float32, 64)
			copy(q, last.Vec)
			q[0] += 0.01
			query := feature.NewVector(q)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.Lookup(query)
			}
		})
	}
}
