package cache

import (
	"fmt"
	"testing"

	"github.com/edge-immersion/coic/internal/feature"
	"github.com/edge-immersion/coic/internal/xrand"
)

// BenchmarkStorePut measures insertion with LRU eviction under steady
// churn.
func BenchmarkStorePut(b *testing.B) {
	s := NewStore(1<<20, NewLRU())
	v := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(fmt.Sprintf("k%d", i%4096), v, 1)
	}
}

// BenchmarkStoreGetHit measures the hot-path read.
func BenchmarkStoreGetHit(b *testing.B) {
	s := NewStore(1<<20, NewLRU())
	s.Put("k", make([]byte, 1024), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get("k")
	}
}

// BenchmarkConcurrentGet contrasts the single-mutex Store with the
// striped ShardedStore under parallel lookups — the TCP edge's actual
// access pattern, one goroutine per client connection. The mutex store
// serialises every Get; the sharded store only contends when two
// goroutines land on the same stripe, so throughput scales with
// GOMAXPROCS (on a single-core host the two are equivalent and only the
// stripe-hash overhead shows).
func BenchmarkConcurrentGet(b *testing.B) {
	const resident = 4096
	keys := make([]string, resident)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	run := func(b *testing.B, get func(string) ([]byte, bool), put func(string, []byte, float64) error) {
		for _, k := range keys {
			put(k, make([]byte, 256), 1)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				get(keys[i%resident])
				i++
			}
		})
	}
	b.Run("mutex", func(b *testing.B) {
		s := NewStore(64<<20, NewLRU())
		run(b, s.Get, s.Put)
	})
	b.Run("sharded", func(b *testing.B) {
		s := NewSharded(64<<20, 8, NewLRU)
		run(b, s.Get, s.Put)
	})
}

// BenchmarkConcurrentMixed repeats the comparison with a write-heavy mix
// (70% Get / 30% Put), where mutex convoying hurts most.
func BenchmarkConcurrentMixed(b *testing.B) {
	const resident = 4096
	keys := make([]string, resident)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	run := func(b *testing.B, get func(string) ([]byte, bool), put func(string, []byte, float64) error) {
		v := make([]byte, 256)
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if i%10 < 7 {
					get(keys[i%resident])
				} else {
					put(keys[i%resident], v, 1)
				}
				i++
			}
		})
	}
	b.Run("mutex", func(b *testing.B) {
		s := NewStore(64<<20, NewLRU())
		run(b, s.Get, s.Put)
	})
	b.Run("sharded", func(b *testing.B) {
		s := NewSharded(64<<20, 8, NewLRU)
		run(b, s.Get, s.Put)
	})
}

// BenchmarkSimilarityLookup measures the edge's per-request descriptor
// match (exact map probe + vector index search) at a realistic cache
// population.
func BenchmarkSimilarityLookup(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("resident=%d", n), func(b *testing.B) {
			sc := NewSimilarity(SimilarityConfig{Capacity: 1 << 30, Threshold: 0.12})
			rng := xrand.New(1)
			var last feature.Descriptor
			for i := 0; i < n; i++ {
				v := make([]float32, 64)
				for j := range v {
					v[j] = float32(rng.NormFloat64())
				}
				last = feature.NewVector(v)
				sc.Insert(last, make([]byte, 64), 1)
			}
			q := make([]float32, 64)
			copy(q, last.Vec)
			q[0] += 0.01
			query := feature.NewVector(q)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.Lookup(query)
			}
		})
	}
}
