package cache

import (
	"fmt"
	"testing"
)

func TestRingOwnerIsMemberOrderInvariant(t *testing.T) {
	a := NewRing([]string{"edge-0", "edge-1", "edge-2", "edge-3"}, 0)
	b := NewRing([]string{"edge-3", "edge-1", "edge-0", "edge-2"}, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("ownership depends on construction order for %q: %s vs %s",
				key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingCoversAllNodesRoughlyEvenly(t *testing.T) {
	nodes := []string{"edge-0", "edge-1", "edge-2", "edge-3"}
	r := NewRing(nodes, 0)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("node %s owns %.0f%% of the keyspace; partition too skewed: %v",
				n, share*100, counts)
		}
	}
}

func TestRingSingleNodeOwnsEverything(t *testing.T) {
	r := NewRing([]string{"solo"}, 0)
	for i := 0; i < 32; i++ {
		if got := r.Owner(fmt.Sprintf("k%d", i)); got != "solo" {
			t.Fatalf("owner = %q", got)
		}
	}
}

func TestRingRejectsDuplicateMembership(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewRing with duplicate nodes must panic")
		}
	}()
	NewRing([]string{"a", "a"}, 0)
}

// Regression: an empty membership used to panic, crashing a node whose
// last peer died. It must instead degrade to a ring that owns nothing so
// the federation falls back to local-only operation.
func TestRingEmptyMembershipDegrades(t *testing.T) {
	r := NewRing(nil, 0)
	if r.Len() != 0 {
		t.Fatalf("Len = %d, want 0", r.Len())
	}
	if got := r.Owner("k"); got != "" {
		t.Fatalf("Owner on empty ring = %q, want \"\"", got)
	}
	if got := r.OwnersFor("k", 2); got != nil {
		t.Fatalf("OwnersFor on empty ring = %v, want nil", got)
	}
	// A federation over an empty ring must serve local-only, not crash.
	f := NewFederation("solo", r)
	if order := f.probeOrder("k"); len(order) != 0 {
		t.Fatalf("probeOrder over empty ring = %v, want none", order)
	}
}

func TestRingOwnersFor(t *testing.T) {
	nodes := []string{"edge-0", "edge-1", "edge-2", "edge-3"}
	r := NewRing(nodes, 0)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := r.OwnersFor(key, 2)
		if len(owners) != 2 {
			t.Fatalf("OwnersFor(%q, 2) = %v", key, owners)
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("first owner %q != Owner %q for %q", owners[0], r.Owner(key), key)
		}
		if owners[0] == owners[1] {
			t.Fatalf("duplicate owners for %q: %v", key, owners)
		}
		// rf beyond the member count clamps; all members appear once.
		all := r.OwnersFor(key, 99)
		if len(all) != len(nodes) {
			t.Fatalf("OwnersFor(%q, 99) = %v, want all %d members", key, all, len(nodes))
		}
		seen := map[string]bool{}
		for _, o := range all {
			if seen[o] {
				t.Fatalf("member %q repeated in %v", o, all)
			}
			seen[o] = true
		}
	}
}

// The successor list must be stable under unrelated membership changes:
// removing a node only reassigns keys that node owned.
func TestRingOwnersForStableUnderRemoval(t *testing.T) {
	full := NewRing([]string{"edge-0", "edge-1", "edge-2", "edge-3"}, 0)
	reduced := full.Without("edge-3")
	if reduced.Version() != full.Version()+1 {
		t.Fatalf("Without must bump version: %d -> %d", full.Version(), reduced.Version())
	}
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, after := full.Owner(key), reduced.Owner(key)
		if before != "edge-3" && before != after {
			t.Fatalf("key %q moved %s -> %s though its owner stayed alive", key, before, after)
		}
		if before == "edge-3" {
			moved++
			if after == "edge-3" {
				t.Fatalf("key %q still owned by removed node", key)
			}
		}
	}
	if moved == 0 {
		t.Fatal("sweep never exercised a removed-owner key")
	}
}

func TestRingVersion(t *testing.T) {
	if v := NewRing([]string{"a"}, 0).Version(); v != 1 {
		t.Fatalf("NewRing version = %d, want 1", v)
	}
	if v := NewRingVersion([]string{"a"}, 0, 7).Version(); v != 7 {
		t.Fatalf("NewRingVersion(7) = %d", v)
	}
	r := NewRingVersion([]string{"a", "b"}, 0, 3)
	if !r.Contains("a") || r.Contains("c") {
		t.Fatalf("Contains misreports membership")
	}
}
