package cache

import (
	"fmt"
	"testing"
)

func TestRingOwnerIsMemberOrderInvariant(t *testing.T) {
	a := NewRing([]string{"edge-0", "edge-1", "edge-2", "edge-3"}, 0)
	b := NewRing([]string{"edge-3", "edge-1", "edge-0", "edge-2"}, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("ownership depends on construction order for %q: %s vs %s",
				key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingCoversAllNodesRoughlyEvenly(t *testing.T) {
	nodes := []string{"edge-0", "edge-1", "edge-2", "edge-3"}
	r := NewRing(nodes, 0)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("node %s owns %.0f%% of the keyspace; partition too skewed: %v",
				n, share*100, counts)
		}
	}
}

func TestRingSingleNodeOwnsEverything(t *testing.T) {
	r := NewRing([]string{"solo"}, 0)
	for i := 0; i < 32; i++ {
		if got := r.Owner(fmt.Sprintf("k%d", i)); got != "solo" {
			t.Fatalf("owner = %q", got)
		}
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	for _, nodes := range [][]string{{}, {"a", "a"}} {
		nodes := nodes
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewRing(%v) must panic", nodes)
				}
			}()
			NewRing(nodes, 0)
		}()
	}
}
