package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/feature"
)

// waitForJoins blocks (inside a leader fetch) until n callers have
// coalesced onto the table, so coalescing tests are deterministic instead
// of sleep-based.
func waitForJoins(t *testing.T, stats func() uint64, n uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for stats() < n {
		if time.Now().After(deadline) {
			t.Errorf("only %d joins arrived, want %d", stats(), n)
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestInflightTableSingleKeyHammer(t *testing.T) {
	const goroutines = 300
	tab := NewInflightTable(0)
	desc := feature.NewHash([]byte("one-key"))

	var fetches atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer wg.Done()
			v, _, err := tab.Do(context.Background(), desc, func(context.Context) ([]byte, error) {
				fetches.Add(1)
				// Hold the flight open until every other goroutine has
				// joined it, so exactly one fetch can run.
				waitForJoins(t, func() uint64 { return tab.Stats().Coalesced }, goroutines-1)
				return []byte("value"), nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if string(v) != "value" {
				t.Errorf("Do = %q", v)
			}
		}()
	}
	wg.Wait()

	if got := fetches.Load(); got != 1 {
		t.Fatalf("fetch ran %d times, want exactly 1", got)
	}
	st := tab.Stats()
	if st.Fetches != 1 || st.Coalesced != goroutines-1 {
		t.Fatalf("stats = %+v, want 1 fetch, %d coalesced", st, goroutines-1)
	}
	if tab.Len() != 0 {
		t.Fatalf("table still holds %d in-flight entries", tab.Len())
	}
}

func TestInflightTableErrorFansOutWithoutPoisoning(t *testing.T) {
	const waiters = 32
	tab := NewInflightTable(0)
	desc := feature.NewHash([]byte("failing-key"))
	fetchErr := errors.New("cloud unreachable")

	var wg sync.WaitGroup
	errs := make(chan error, waiters+1)
	wg.Add(waiters + 1)
	for i := 0; i < waiters+1; i++ {
		go func() {
			defer wg.Done()
			_, _, err := tab.Do(context.Background(), desc, func(context.Context) ([]byte, error) {
				waitForJoins(t, func() uint64 { return tab.Stats().Coalesced }, waiters)
				return nil, fetchErr
			})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, fetchErr) {
			t.Fatalf("waiter error = %v, want %v", err, fetchErr)
		}
	}

	// The failure must not poison the key: the next Do fetches afresh and
	// succeeds.
	v, leaderAgain, err := tab.Do(context.Background(), desc, func(context.Context) ([]byte, error) { return []byte("ok"), nil })
	if err != nil || !leaderAgain || string(v) != "ok" {
		t.Fatalf("post-failure Do = (%q, leader=%v, %v), want fresh successful fetch", v, leaderAgain, err)
	}
	st := tab.Stats()
	if st.Failures != 1 {
		t.Fatalf("failures = %d, want 1", st.Failures)
	}
}

func TestInflightTableSimilarDescriptorsCoalesce(t *testing.T) {
	tab := NewInflightTable(0.12)
	base := make([]float32, 16)
	base[0] = 1
	descA := feature.NewVector(base)
	near := make([]float32, 16)
	copy(near, base)
	near[1] = 0.01 // tiny perturbation, well inside the threshold
	descB := feature.NewVector(near)
	if descA.Key() == descB.Key() {
		t.Fatal("test descriptors collapsed to one key; similarity path not exercised")
	}

	var fetches atomic.Uint64
	var wg sync.WaitGroup
	results := make([][]byte, 2)
	// Closed by the leader's fetch body, which runs only after the flight
	// (and its vector) is registered — so the joiner cannot race ahead.
	leaderStarted := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		v, _, err := tab.Do(context.Background(), descA, func(context.Context) ([]byte, error) {
			fetches.Add(1)
			close(leaderStarted)
			// Hold the flight open until the similar descriptor joined
			// (joins count the moment the waiter attaches).
			waitForJoins(t, func() uint64 { return tab.Stats().Coalesced }, 1)
			return []byte("shared"), nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		results[0] = v
	}()
	go func() {
		defer wg.Done()
		<-leaderStarted
		v, leader, err := tab.Do(context.Background(), descB, func(context.Context) ([]byte, error) {
			fetches.Add(1)
			return []byte("own"), nil
		})
		if err != nil {
			t.Errorf("joiner: %v", err)
		}
		if leader {
			t.Error("similar descriptor became its own leader")
		}
		results[1] = v
	}()
	wg.Wait()

	if got := fetches.Load(); got != 1 {
		t.Fatalf("fetches = %d, want 1 (similar descriptors must share one flight)", got)
	}
	if string(results[0]) != "shared" || string(results[1]) != "shared" {
		t.Fatalf("results = %q / %q, want both %q", results[0], results[1], "shared")
	}
	if st := tab.Stats(); st.SimilarJoins != 1 {
		t.Fatalf("similar joins = %d, want 1", st.SimilarJoins)
	}
}

func TestInflightTableDistinctKeysRunIndependently(t *testing.T) {
	tab := NewInflightTable(0)
	const keys = 8
	var fetches atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(keys)
	for i := 0; i < keys; i++ {
		desc := feature.NewHash([]byte(fmt.Sprintf("key-%d", i)))
		go func() {
			defer wg.Done()
			if _, leader, err := tab.Do(context.Background(), desc, func(context.Context) ([]byte, error) {
				fetches.Add(1)
				return []byte("v"), nil
			}); err != nil || !leader {
				t.Errorf("distinct key coalesced or failed: leader=%v err=%v", leader, err)
			}
		}()
	}
	wg.Wait()
	if got := fetches.Load(); got != keys {
		t.Fatalf("fetches = %d, want %d", got, keys)
	}
}

func TestInflightGenericGroup(t *testing.T) {
	var g Inflight[int]
	const n = 64
	var fetches atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			v, _, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
				fetches.Add(1)
				deadline := time.Now().Add(10 * time.Second)
				for {
					_, coalesced, _, _ := g.Stats()
					if coalesced >= n-1 || time.Now().After(deadline) {
						return 42, nil
					}
					time.Sleep(100 * time.Microsecond)
				}
			})
			if err != nil || v != 42 {
				t.Errorf("Do = (%d, %v)", v, err)
			}
		}()
	}
	wg.Wait()
	if got := fetches.Load(); got != 1 {
		t.Fatalf("fetches = %d, want 1", got)
	}
	if g.Len() != 0 {
		t.Fatalf("group still holds %d calls", g.Len())
	}
}

// TestInflightLastWaiterCancelsAbortsFetch is the core last-waiter
// acceptance test: when every caller attached to a flight departs, the
// fetch's context must die promptly; until then it must survive.
func TestInflightLastWaiterCancelsAbortsFetch(t *testing.T) {
	tab := NewInflightTable(0)
	desc := feature.NewHash([]byte("abandoned-key"))

	fetchCtx := make(chan context.Context, 1)
	release := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := tab.Do(ctx, desc, func(fctx context.Context) ([]byte, error) {
			fetchCtx <- fctx
			<-fctx.Done() // a context-aware fetch blocks until aborted
			<-release
			return nil, fctx.Err()
		})
		errc <- err
	}()

	fctx := <-fetchCtx
	if fctx.Err() != nil {
		t.Fatal("flight context dead before any cancellation")
	}
	cancel() // sole caller departs: last-waiter-cancels fires
	select {
	case <-fctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("flight context survived its last waiter's departure")
	}
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller error = %v, want context.Canceled", err)
	}
	// The key is released the moment the last waiter departs — a new
	// caller must lead a fresh fetch even while the old one unwinds.
	if tab.group.Active(desc.Key()) {
		t.Fatal("aborted flight still holds its key")
	}
	close(release)
	if st := tab.Stats(); st.Canceled != 1 {
		t.Fatalf("canceled = %d, want 1", st.Canceled)
	}
	// An abort is not a failure: the counters must not double-book it.
	// (Give the detached fetch goroutine a beat to run its cleanup; a
	// delayed check can only miss a double-count, never fabricate one.)
	time.Sleep(50 * time.Millisecond)
	if st := tab.Stats(); st.Failures != 0 {
		t.Fatalf("failures = %d, want 0 (abort must count under Canceled only)", st.Failures)
	}
}

// TestInflightFetchSurvivesNonLastWaiterCancel: with several callers
// coalesced, one departure must not disturb the fetch; the survivors
// still receive the value.
func TestInflightFetchSurvivesNonLastWaiterCancel(t *testing.T) {
	tab := NewInflightTable(0)
	desc := feature.NewHash([]byte("survivor-key"))

	fetchCtx := make(chan context.Context, 1)
	proceed := make(chan struct{})
	quitterCtx, quitterCancel := context.WithCancel(context.Background())

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // leader: sticks around
		defer wg.Done()
		v, _, err := tab.Do(context.Background(), desc, func(fctx context.Context) ([]byte, error) {
			fetchCtx <- fctx
			select {
			case <-proceed:
			case <-fctx.Done():
				return nil, fctx.Err()
			}
			return []byte("survived"), nil
		})
		if err != nil || string(v) != "survived" {
			t.Errorf("survivor got (%q, %v)", v, err)
		}
	}()

	fctx := <-fetchCtx
	quitterDone := make(chan error, 1)
	go func() { // waiter that will abandon the flight
		_, _, err := tab.Do(quitterCtx, desc, func(context.Context) ([]byte, error) {
			t.Error("quitter became a second leader")
			return nil, nil
		})
		quitterDone <- err
	}()
	waitForJoins(t, func() uint64 { return tab.Stats().Coalesced }, 1)

	quitterCancel()
	if err := <-quitterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("quitter error = %v, want context.Canceled", err)
	}
	select {
	case <-fctx.Done():
		t.Fatal("one waiter's departure aborted a flight others still wait on")
	case <-time.After(50 * time.Millisecond):
	}
	close(proceed)
	wg.Wait()
	if st := tab.Stats(); st.Canceled != 0 {
		t.Fatalf("canceled = %d, want 0 (the flight completed)", st.Canceled)
	}
}

// TestInflightCancelHammer exercises the attach/detach/complete races
// under the race detector: many goroutines with short individual
// deadlines hammer one key whose fetches only finish when abandoned.
func TestInflightCancelHammer(t *testing.T) {
	tab := NewInflightTable(0)
	desc := feature.NewHash([]byte("hammer-key"))
	var wg sync.WaitGroup
	const goroutines = 128
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		i := i
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%7)*time.Millisecond)
			defer cancel()
			tab.Do(ctx, desc, func(fctx context.Context) ([]byte, error) {
				select {
				case <-fctx.Done():
					return nil, fctx.Err()
				case <-time.After(2 * time.Millisecond):
					return []byte("v"), nil
				}
			})
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for tab.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d flights leaked", tab.Len())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestInflightExpiredContextStillJoins: a caller with an already-expired
// context must return promptly with ctx.Err() and must not strand the
// flight bookkeeping.
func TestInflightExpiredContext(t *testing.T) {
	tab := NewInflightTable(0)
	desc := feature.NewHash([]byte("expired-key"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := tab.Do(ctx, desc, func(fctx context.Context) ([]byte, error) {
		<-fctx.Done()
		return nil, fctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tab.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("expired-context flight leaked")
		}
		time.Sleep(time.Millisecond)
	}
}
