package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/feature"
)

// waitForJoins blocks (inside a leader fetch) until n callers have
// coalesced onto the table, so coalescing tests are deterministic instead
// of sleep-based.
func waitForJoins(t *testing.T, stats func() uint64, n uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for stats() < n {
		if time.Now().After(deadline) {
			t.Errorf("only %d joins arrived, want %d", stats(), n)
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestInflightTableSingleKeyHammer(t *testing.T) {
	const goroutines = 300
	tab := NewInflightTable(0)
	desc := feature.NewHash([]byte("one-key"))

	var fetches atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer wg.Done()
			v, _, err := tab.Do(desc, func() ([]byte, error) {
				fetches.Add(1)
				// Hold the flight open until every other goroutine has
				// joined it, so exactly one fetch can run.
				waitForJoins(t, func() uint64 { return tab.Stats().Coalesced }, goroutines-1)
				return []byte("value"), nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if string(v) != "value" {
				t.Errorf("Do = %q", v)
			}
		}()
	}
	wg.Wait()

	if got := fetches.Load(); got != 1 {
		t.Fatalf("fetch ran %d times, want exactly 1", got)
	}
	st := tab.Stats()
	if st.Fetches != 1 || st.Coalesced != goroutines-1 {
		t.Fatalf("stats = %+v, want 1 fetch, %d coalesced", st, goroutines-1)
	}
	if tab.Len() != 0 {
		t.Fatalf("table still holds %d in-flight entries", tab.Len())
	}
}

func TestInflightTableErrorFansOutWithoutPoisoning(t *testing.T) {
	const waiters = 32
	tab := NewInflightTable(0)
	desc := feature.NewHash([]byte("failing-key"))
	fetchErr := errors.New("cloud unreachable")

	var wg sync.WaitGroup
	errs := make(chan error, waiters+1)
	wg.Add(waiters + 1)
	for i := 0; i < waiters+1; i++ {
		go func() {
			defer wg.Done()
			_, _, err := tab.Do(desc, func() ([]byte, error) {
				waitForJoins(t, func() uint64 { return tab.Stats().Coalesced }, waiters)
				return nil, fetchErr
			})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, fetchErr) {
			t.Fatalf("waiter error = %v, want %v", err, fetchErr)
		}
	}

	// The failure must not poison the key: the next Do fetches afresh and
	// succeeds.
	v, leaderAgain, err := tab.Do(desc, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || !leaderAgain || string(v) != "ok" {
		t.Fatalf("post-failure Do = (%q, leader=%v, %v), want fresh successful fetch", v, leaderAgain, err)
	}
	st := tab.Stats()
	if st.Failures != 1 {
		t.Fatalf("failures = %d, want 1", st.Failures)
	}
}

func TestInflightTableSimilarDescriptorsCoalesce(t *testing.T) {
	tab := NewInflightTable(0.12)
	base := make([]float32, 16)
	base[0] = 1
	descA := feature.NewVector(base)
	near := make([]float32, 16)
	copy(near, base)
	near[1] = 0.01 // tiny perturbation, well inside the threshold
	descB := feature.NewVector(near)
	if descA.Key() == descB.Key() {
		t.Fatal("test descriptors collapsed to one key; similarity path not exercised")
	}

	var fetches atomic.Uint64
	var wg sync.WaitGroup
	results := make([][]byte, 2)
	// Closed by the leader's fetch body, which runs only after the flight
	// (and its vector) is registered — so the joiner cannot race ahead.
	leaderStarted := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		v, _, err := tab.Do(descA, func() ([]byte, error) {
			fetches.Add(1)
			close(leaderStarted)
			// Hold the flight open until the similar descriptor joined
			// (joins count the moment the waiter attaches).
			waitForJoins(t, func() uint64 { return tab.Stats().Coalesced }, 1)
			return []byte("shared"), nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		results[0] = v
	}()
	go func() {
		defer wg.Done()
		<-leaderStarted
		v, leader, err := tab.Do(descB, func() ([]byte, error) {
			fetches.Add(1)
			return []byte("own"), nil
		})
		if err != nil {
			t.Errorf("joiner: %v", err)
		}
		if leader {
			t.Error("similar descriptor became its own leader")
		}
		results[1] = v
	}()
	wg.Wait()

	if got := fetches.Load(); got != 1 {
		t.Fatalf("fetches = %d, want 1 (similar descriptors must share one flight)", got)
	}
	if string(results[0]) != "shared" || string(results[1]) != "shared" {
		t.Fatalf("results = %q / %q, want both %q", results[0], results[1], "shared")
	}
	if st := tab.Stats(); st.SimilarJoins != 1 {
		t.Fatalf("similar joins = %d, want 1", st.SimilarJoins)
	}
}

func TestInflightTableDistinctKeysRunIndependently(t *testing.T) {
	tab := NewInflightTable(0)
	const keys = 8
	var fetches atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(keys)
	for i := 0; i < keys; i++ {
		desc := feature.NewHash([]byte(fmt.Sprintf("key-%d", i)))
		go func() {
			defer wg.Done()
			if _, leader, err := tab.Do(desc, func() ([]byte, error) {
				fetches.Add(1)
				return []byte("v"), nil
			}); err != nil || !leader {
				t.Errorf("distinct key coalesced or failed: leader=%v err=%v", leader, err)
			}
		}()
	}
	wg.Wait()
	if got := fetches.Load(); got != keys {
		t.Fatalf("fetches = %d, want %d", got, keys)
	}
}

func TestInflightGenericGroup(t *testing.T) {
	var g Inflight[int]
	const n = 64
	var fetches atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			v, _, err := g.Do("k", func() (int, error) {
				fetches.Add(1)
				deadline := time.Now().Add(10 * time.Second)
				for {
					_, coalesced, _ := g.Stats()
					if coalesced >= n-1 || time.Now().After(deadline) {
						return 42, nil
					}
					time.Sleep(100 * time.Microsecond)
				}
			})
			if err != nil || v != 42 {
				t.Errorf("Do = (%d, %v)", v, err)
			}
		}()
	}
	wg.Wait()
	if got := fetches.Load(); got != 1 {
		t.Fatalf("fetches = %d, want 1", got)
	}
	if g.Len() != 0 {
		t.Fatalf("group still holds %d calls", g.Len())
	}
}
