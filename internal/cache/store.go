package cache

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/edge-immersion/coic/internal/clock"
)

// ErrTooLarge is returned by Put when a value cannot fit in the cache even
// after evicting everything else.
var ErrTooLarge = errors.New("cache: value larger than capacity")

// Entry is a resident cache item. Returned copies are snapshots; the
// cached value itself is never aliased to callers.
type Entry struct {
	Key        string
	Size       int64
	Cost       float64
	InsertedAt time.Time
	LastAccess time.Time
	Hits       uint64
	ExpiresAt  time.Time // zero means no expiry
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Insertions  uint64
	Evictions   uint64
	Expirations uint64
	BytesUsed   int64
	Entries     int
}

// HitRatio reports Hits/(Hits+Misses), or 0 with no traffic.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Store is a thread-safe byte-capacity cache with pluggable eviction and
// optional TTL. It is the storage layer of the CoIC edge: values are the
// serialised IC results (recognition labels, loaded 3D models, panoramic
// frames).
type Store struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[string]*storeEntry
	policy   Policy
	clk      clock.Clock
	ttl      time.Duration
	onEvict  func(key string)
	stats    Stats
}

type storeEntry struct {
	value []byte
	meta  Entry
}

// StoreOption configures a Store.
type StoreOption func(*Store)

// WithClock makes the store use clk for timestamps and TTL; experiments
// pass the simulation's virtual clock.
func WithClock(clk clock.Clock) StoreOption {
	return func(s *Store) { s.clk = clk }
}

// WithTTL expires entries d after insertion. Zero disables expiry.
func WithTTL(d time.Duration) StoreOption {
	return func(s *Store) { s.ttl = d }
}

// WithOnEvict registers fn to run (outside the store lock) whenever a key
// leaves the cache for any reason other than an explicit overwrite: the
// SimilarityCache uses it to drop vector-index entries.
func WithOnEvict(fn func(key string)) StoreOption {
	return func(s *Store) { s.onEvict = fn }
}

// NewStore builds a cache holding at most capacity bytes, evicting with
// policy. It panics on non-positive capacity or nil policy — both are
// construction bugs.
func NewStore(capacity int64, policy Policy, opts ...StoreOption) *Store {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: non-positive capacity %d", capacity))
	}
	if policy == nil {
		panic("cache: nil policy")
	}
	s := &Store{
		capacity: capacity,
		entries:  map[string]*storeEntry{},
		policy:   policy,
		clk:      clock.Real{},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Get returns a copy of the value cached under key. Expired entries count
// as misses and are removed.
func (s *Store) Get(key string) ([]byte, bool) {
	var evicted []string
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok && s.expired(e) {
		s.removeLocked(key)
		s.stats.Expirations++
		evicted = append(evicted, key)
		ok = false
	}
	var out []byte
	if ok {
		now := s.clk.Now()
		e.meta.LastAccess = now
		e.meta.Hits++
		s.policy.OnAccess(key)
		s.stats.Hits++
		out = append([]byte(nil), e.value...)
	} else {
		s.stats.Misses++
	}
	s.mu.Unlock()
	s.notifyEvicted(evicted)
	return out, ok
}

// Contains reports residency without touching recency, hit counters or
// TTL state (expired entries report false).
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	return ok && !s.expired(e)
}

// Put caches value under key with a recomputation-cost hint (used by
// cost-aware policies; pass 1 when indifferent). The value is copied.
// Putting over an existing key replaces it. Returns ErrTooLarge when the
// value exceeds total capacity.
func (s *Store) Put(key string, value []byte, cost float64) error {
	size := int64(len(value))
	if size > s.capacity {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, size, s.capacity)
	}
	var evicted []string
	s.mu.Lock()
	if old, ok := s.entries[key]; ok {
		s.used -= old.meta.Size
		s.policy.OnRemove(key)
		delete(s.entries, key)
	}
	for s.used+size > s.capacity {
		victim, ok := s.policy.Victim()
		if !ok {
			// Impossible while accounting is consistent: used > 0 implies
			// a resident entry the policy knows about.
			s.mu.Unlock()
			panic("cache: accounting out of sync with policy")
		}
		s.removeLocked(victim)
		s.stats.Evictions++
		evicted = append(evicted, victim)
	}
	now := s.clk.Now()
	e := &storeEntry{
		value: append([]byte(nil), value...),
		meta: Entry{
			Key: key, Size: size, Cost: cost,
			InsertedAt: now, LastAccess: now,
		},
	}
	if s.ttl > 0 {
		e.meta.ExpiresAt = now.Add(s.ttl)
	}
	s.entries[key] = e
	s.used += size
	s.policy.OnInsert(key, size, cost)
	s.stats.Insertions++
	s.mu.Unlock()
	s.notifyEvicted(evicted)
	return nil
}

// Delete removes key, reporting whether it was resident.
func (s *Store) Delete(key string) bool {
	s.mu.Lock()
	_, ok := s.entries[key]
	if ok {
		s.removeLocked(key)
	}
	s.mu.Unlock()
	if ok {
		s.notifyEvicted([]string{key})
	}
	return ok
}

// removeLocked detaches key from entries, accounting and policy. Caller
// holds s.mu and is responsible for eviction callbacks.
func (s *Store) removeLocked(key string) {
	e, ok := s.entries[key]
	if !ok {
		return
	}
	s.used -= e.meta.Size
	delete(s.entries, key)
	s.policy.OnRemove(key)
}

func (s *Store) expired(e *storeEntry) bool {
	return !e.meta.ExpiresAt.IsZero() && s.clk.Now().After(e.meta.ExpiresAt)
}

func (s *Store) notifyEvicted(keys []string) {
	if s.onEvict == nil {
		return
	}
	for _, k := range keys {
		s.onEvict(k)
	}
}

// Len reports the number of resident entries (including not-yet-collected
// expired ones).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Used reports resident bytes.
func (s *Store) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Capacity reports the configured byte capacity.
func (s *Store) Capacity() int64 { return s.capacity }

// Stats returns a counter snapshot (BytesUsed and Entries filled in).
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.BytesUsed = s.used
	st.Entries = len(s.entries)
	return st
}

// Meta returns a snapshot of the entry's metadata without counting a hit.
func (s *Store) Meta(key string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return Entry{}, false
	}
	return e.meta, true
}

// PolicyName reports the active eviction policy.
func (s *Store) PolicyName() string { return s.policy.Name() }
