package cache

import (
	"fmt"
	"testing"

	"github.com/edge-immersion/coic/internal/feature"
	"github.com/edge-immersion/coic/internal/xrand"
)

func vecDesc(vals ...float32) feature.Descriptor { return feature.NewVector(vals) }

func newSim(capacity int64, threshold float64) *SimilarityCache {
	return NewSimilarity(SimilarityConfig{Capacity: capacity, Threshold: threshold})
}

func TestSimilarityExactHashHit(t *testing.T) {
	sc := newSim(1024, 0.1)
	d := feature.NewHash([]byte("model-blob"))
	if err := sc.Insert(d, []byte("loaded-model"), 1); err != nil {
		t.Fatal(err)
	}
	v, res := sc.Lookup(d)
	if res.Outcome != OutcomeExact || string(v) != "loaded-model" {
		t.Fatalf("lookup = %q, %+v", v, res)
	}
}

func TestSimilarityMissOnUnknownHash(t *testing.T) {
	sc := newSim(1024, 0.1)
	_, res := sc.Lookup(feature.NewHash([]byte("never-seen")))
	if res.Hit() {
		t.Fatal("phantom hit")
	}
}

func TestSimilarityVectorThreshold(t *testing.T) {
	sc := newSim(1024, 0.1)
	base := vecDesc(1, 0, 0, 0)
	if err := sc.Insert(base, []byte("label:stop-sign"), 1); err != nil {
		t.Fatal(err)
	}

	// Identical vector: exact hit (key match short-circuits).
	_, res := sc.Lookup(vecDesc(1, 0, 0, 0))
	if res.Outcome != OutcomeExact {
		t.Fatalf("identical vector outcome = %v", res.Outcome)
	}

	// Slightly rotated: similar hit.
	near := vecDesc(0.999, 0.04, 0, 0)
	v, res := sc.Lookup(near)
	if res.Outcome != OutcomeSimilar || string(v) != "label:stop-sign" {
		t.Fatalf("near vector = %q, %+v", v, res)
	}
	if res.Distance <= 0 || res.Distance > 0.1 {
		t.Fatalf("similar distance = %v", res.Distance)
	}

	// Orthogonal: miss.
	_, res = sc.Lookup(vecDesc(0, 1, 0, 0))
	if res.Hit() {
		t.Fatal("orthogonal vector hit")
	}
}

func TestSimilarityThresholdBoundary(t *testing.T) {
	// Distance between unit vectors at angle θ is 2sin(θ/2); pick two
	// vectors straddling the threshold.
	sc := newSim(1024, 0.2)
	sc.Insert(vecDesc(1, 0), []byte("r"), 1)
	_, res := sc.Lookup(vecDesc(0.995, 0.0999)) // dist ≈ 0.1003 < 0.2
	if !res.Hit() {
		t.Fatal("inside threshold missed")
	}
	_, res = sc.Lookup(vecDesc(0.9, 0.436)) // dist ≈ 0.45 > 0.2
	if res.Hit() {
		t.Fatal("outside threshold hit")
	}
}

func TestSimilarityEvictionRemovesFromIndex(t *testing.T) {
	sc := NewSimilarity(SimilarityConfig{Capacity: 8, Threshold: 0.5})
	a := vecDesc(1, 0)
	b := vecDesc(0, 1)
	sc.Insert(a, val(6), 1)
	sc.Insert(b, val(6), 1) // evicts a's entry
	if sc.IndexLen() != 1 {
		t.Fatalf("index holds %d vectors after eviction, want 1", sc.IndexLen())
	}
	_, res := sc.Lookup(vecDesc(0.999, 0.02))
	if res.Hit() {
		t.Fatal("evicted vector still matchable")
	}
	_, res = sc.Lookup(vecDesc(0.02, 0.999))
	if !res.Hit() {
		t.Fatal("resident vector not matchable")
	}
}

func TestSimilarityReinsertSameKey(t *testing.T) {
	sc := newSim(1024, 0.2)
	d := vecDesc(1, 0)
	sc.Insert(d, []byte("v1"), 1)
	sc.Insert(d, []byte("v2"), 1)
	if sc.IndexLen() != 1 {
		t.Fatalf("index holds %d vectors after re-insert", sc.IndexLen())
	}
	v, res := sc.Lookup(vecDesc(0.999, 0.03))
	if !res.Hit() || string(v) != "v2" {
		t.Fatalf("got %q, %+v", v, res)
	}
}

func TestSimilarityTooLargeRollsBack(t *testing.T) {
	sc := newSim(4, 0.2)
	if err := sc.Insert(vecDesc(1, 0), val(100), 1); err == nil {
		t.Fatal("oversized insert accepted")
	}
	if sc.IndexLen() != 0 {
		t.Fatal("failed insert left index residue")
	}
}

func TestSimilarityQueryStats(t *testing.T) {
	sc := newSim(1024, 0.1)
	sc.Insert(vecDesc(1, 0, 0), []byte("x"), 1)
	sc.Lookup(vecDesc(1, 0, 0))        // exact
	sc.Lookup(vecDesc(0.999, 0.04, 0)) // similar
	sc.Lookup(vecDesc(0, 1, 0))        // miss
	q, e, s := sc.QueryStats()
	if q != 3 || e != 1 || s != 1 {
		t.Fatalf("QueryStats = %d,%d,%d", q, e, s)
	}
}

func TestSimilarityWithLSHIndex(t *testing.T) {
	// The full stack with an LSH index instead of linear scan: inserts,
	// similarity hits and evictions must keep index/store consistent.
	sc := NewSimilarity(SimilarityConfig{
		Capacity:  50,
		Threshold: 0.15,
		Index:     feature.NewLSH(16, 8, 10, 42),
	})
	rng := xrand.New(9)
	mkVec := func() []float32 {
		v := make([]float32, 16)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		return v
	}
	descs := make([]feature.Descriptor, 30)
	for i := range descs {
		descs[i] = feature.NewVector(mkVec())
		sc.Insert(descs[i], val(5), 1)
	}
	if sc.IndexLen() != sc.Store().Len() {
		t.Fatalf("index %d != store %d", sc.IndexLen(), sc.Store().Len())
	}
	// Perturbed duplicates of resident vectors should mostly hit.
	hits := 0
	for i := 20; i < 30; i++ { // most recent 10 certainly resident
		perturbed := make([]float32, 16)
		copy(perturbed, descs[i].Vec)
		perturbed[0] += 0.01
		_, res := sc.Lookup(feature.NewVector(perturbed))
		if res.Hit() {
			hits++
		}
	}
	if hits < 7 {
		t.Fatalf("only %d/10 perturbed lookups hit with LSH", hits)
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeMiss.String() != "miss" || OutcomeExact.String() != "exact" || OutcomeSimilar.String() != "similar" {
		t.Fatal("bad outcome names")
	}
}

func TestSimilarityManyInsertLookupCycles(t *testing.T) {
	// Churn far beyond capacity; the index must track the store exactly.
	sc := NewSimilarity(SimilarityConfig{Capacity: 40, Threshold: 0.05})
	rng := xrand.New(77)
	for i := 0; i < 500; i++ {
		v := make([]float32, 8)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		if err := sc.Insert(feature.NewVector(v), val(4+rng.Intn(5)), 1); err != nil {
			t.Fatal(err)
		}
		if sc.IndexLen() != sc.Store().Len() {
			t.Fatalf("iteration %d: index %d != store %d", i, sc.IndexLen(), sc.Store().Len())
		}
	}
	st, _ := sc.Stats()
	if st.Evictions == 0 {
		t.Fatal("workload did not evict — test ineffective")
	}
	_ = fmt.Sprintf("%v", st)
}
