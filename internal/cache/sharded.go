package cache

import (
	"fmt"
	"hash/maphash"
)

// shardSeed makes the key→shard mapping stable across all ShardedStores
// in a process while remaining unpredictable across processes, so tests
// cannot accidentally depend on a particular placement.
var shardSeed = maphash.MakeSeed()

// ShardedStore stripes the keyspace over independent Stores so concurrent
// requests touching different keys proceed without contending on one
// mutex. The single-mutex Store serialises every edge request — fine for
// the virtual-time experiments, but the TCP edge handles each client
// connection on its own goroutine, and a federation of edges multiplies
// that concurrency. Each shard owns capacity/N bytes and its own eviction
// policy instance; eviction is therefore shard-local (an insert evicts
// within its own stripe), which approximates global policy order in
// exchange for lock independence — the trade every striped cache makes.
type ShardedStore struct {
	shards   []*Store
	capacity int64
}

// NewSharded builds a store of `shards` stripes sharing `capacity` bytes,
// each stripe evicting with its own policy from policyFor. Options apply
// to every stripe. It panics on non-positive shard counts, nil factories
// or capacities too small to give every stripe at least one byte — all
// construction bugs, matching NewStore.
func NewSharded(capacity int64, shards int, policyFor func() Policy, opts ...StoreOption) *ShardedStore {
	if shards <= 0 {
		panic(fmt.Sprintf("cache: non-positive shard count %d", shards))
	}
	if policyFor == nil {
		panic("cache: nil policy factory")
	}
	per := capacity / int64(shards)
	if per <= 0 {
		panic(fmt.Sprintf("cache: capacity %d cannot cover %d shards", capacity, shards))
	}
	s := &ShardedStore{capacity: per * int64(shards)}
	for i := 0; i < shards; i++ {
		s.shards = append(s.shards, NewStore(per, policyFor(), opts...))
	}
	return s
}

func (s *ShardedStore) shard(key string) *Store {
	return s.shards[maphash.String(shardSeed, key)%uint64(len(s.shards))]
}

// Get returns a copy of the value cached under key.
func (s *ShardedStore) Get(key string) ([]byte, bool) { return s.shard(key).Get(key) }

// Contains reports residency without touching recency or hit counters.
func (s *ShardedStore) Contains(key string) bool { return s.shard(key).Contains(key) }

// Put caches value under key in its stripe. Values larger than a single
// stripe (capacity/shards bytes) return ErrTooLarge even though the
// aggregate capacity could hold them: a stripe is the eviction domain.
func (s *ShardedStore) Put(key string, value []byte, cost float64) error {
	return s.shard(key).Put(key, value, cost)
}

// Delete removes key, reporting whether it was resident.
func (s *ShardedStore) Delete(key string) bool { return s.shard(key).Delete(key) }

// Meta returns a snapshot of the entry's metadata without counting a hit.
func (s *ShardedStore) Meta(key string) (Entry, bool) { return s.shard(key).Meta(key) }

// Len reports resident entries across all stripes.
func (s *ShardedStore) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Used reports resident bytes across all stripes.
func (s *ShardedStore) Used() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.Used()
	}
	return n
}

// Capacity reports the aggregate byte capacity (shards × stripe size).
func (s *ShardedStore) Capacity() int64 { return s.capacity }

// Shards reports the stripe count.
func (s *ShardedStore) Shards() int { return len(s.shards) }

// Stats aggregates counter snapshots across stripes. Counters from
// different stripes are read at slightly different instants; under
// concurrent traffic the aggregate is a consistent-enough snapshot for
// metrics, not an atomic cut.
func (s *ShardedStore) Stats() Stats {
	var out Stats
	for _, sh := range s.shards {
		st := sh.Stats()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Insertions += st.Insertions
		out.Evictions += st.Evictions
		out.Expirations += st.Expirations
		out.BytesUsed += st.BytesUsed
		out.Entries += st.Entries
	}
	return out
}

// PolicyName reports the eviction policy of the stripes (all stripes are
// built by the same factory).
func (s *ShardedStore) PolicyName() string { return s.shards[0].PolicyName() }
