// Package cache implements the CoIC edge IC-cache: a byte-capacity store
// with pluggable eviction policies, plus the SimilarityCache that fronts
// it with feature-descriptor matching (exact hashes for models/panoramas,
// thresholded nearest-neighbour search for DNN feature vectors).
//
// The paper ships a "simple cache management policy" and names richer
// management as future work; the Policy interface here makes the policy an
// ablation axis (the A-policy experiment compares LRU, LFU, FIFO and
// GDSF on identical traces).
package cache

import (
	"container/heap"
	"container/list"
)

// Policy decides which resident entry to evict. Implementations are not
// safe for concurrent use on their own — Store serialises all calls under
// its lock.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// OnInsert records that key became resident with the given size in
	// bytes and a recomputation cost estimate (higher = more valuable).
	OnInsert(key string, size int64, cost float64)
	// OnAccess records a hit on key.
	OnAccess(key string)
	// OnRemove records that key left the cache (eviction or deletion).
	OnRemove(key string)
	// Victim proposes the key to evict next. ok is false when the policy
	// tracks nothing.
	Victim() (key string, ok bool)
}

// lruPolicy evicts the least recently used entry.
type lruPolicy struct {
	order *list.List // front = most recent
	items map[string]*list.Element
	touch bool // false = FIFO (insertion order only)
	name  string
}

// NewLRU returns a least-recently-used policy.
func NewLRU() Policy {
	return &lruPolicy{order: list.New(), items: map[string]*list.Element{}, touch: true, name: "lru"}
}

// NewFIFO returns a first-in-first-out policy (insertion order, accesses
// ignored).
func NewFIFO() Policy {
	return &lruPolicy{order: list.New(), items: map[string]*list.Element{}, touch: false, name: "fifo"}
}

func (p *lruPolicy) Name() string { return p.name }

func (p *lruPolicy) OnInsert(key string, size int64, cost float64) {
	if el, ok := p.items[key]; ok {
		p.order.MoveToFront(el)
		return
	}
	p.items[key] = p.order.PushFront(key)
}

func (p *lruPolicy) OnAccess(key string) {
	if !p.touch {
		return
	}
	if el, ok := p.items[key]; ok {
		p.order.MoveToFront(el)
	}
}

func (p *lruPolicy) OnRemove(key string) {
	if el, ok := p.items[key]; ok {
		p.order.Remove(el)
		delete(p.items, key)
	}
}

func (p *lruPolicy) Victim() (string, bool) {
	el := p.order.Back()
	if el == nil {
		return "", false
	}
	return el.Value.(string), true
}

// lfuPolicy evicts the least frequently used entry, breaking frequency
// ties by least recent insertion.
type lfuPolicy struct {
	h     lfuHeap
	items map[string]*lfuItem
	seq   uint64
}

type lfuItem struct {
	key   string
	freq  uint64
	seq   uint64 // tie-break: smaller = older
	index int
}

type lfuHeap []*lfuItem

func (h lfuHeap) Len() int { return len(h) }
func (h lfuHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].seq < h[j].seq
}
func (h lfuHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *lfuHeap) Push(x any) {
	it := x.(*lfuItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *lfuHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// NewLFU returns a least-frequently-used policy.
func NewLFU() Policy {
	return &lfuPolicy{items: map[string]*lfuItem{}}
}

func (p *lfuPolicy) Name() string { return "lfu" }

func (p *lfuPolicy) OnInsert(key string, size int64, cost float64) {
	if it, ok := p.items[key]; ok {
		it.freq++
		heap.Fix(&p.h, it.index)
		return
	}
	p.seq++
	it := &lfuItem{key: key, freq: 1, seq: p.seq}
	p.items[key] = it
	heap.Push(&p.h, it)
}

func (p *lfuPolicy) OnAccess(key string) {
	if it, ok := p.items[key]; ok {
		it.freq++
		heap.Fix(&p.h, it.index)
	}
}

func (p *lfuPolicy) OnRemove(key string) {
	if it, ok := p.items[key]; ok {
		heap.Remove(&p.h, it.index)
		delete(p.items, key)
	}
}

func (p *lfuPolicy) Victim() (string, bool) {
	if len(p.h) == 0 {
		return "", false
	}
	return p.h[0].key, true
}

// gdsfPolicy implements Greedy-Dual-Size-Frequency: priority =
// ageFloor + freq·cost/size. Small, expensive, popular entries survive;
// the age floor (the priority of the last victim) prevents one-hit
// wonders from starving the cache forever. A natural fit for IC results,
// whose sizes span three orders of magnitude (a label vs a 15 MB model).
type gdsfPolicy struct {
	h     gdsfHeap
	items map[string]*gdsfItem
	floor float64
	seq   uint64
}

type gdsfItem struct {
	key      string
	freq     float64
	cost     float64
	size     int64
	priority float64
	seq      uint64
	index    int
}

type gdsfHeap []*gdsfItem

func (h gdsfHeap) Len() int { return len(h) }
func (h gdsfHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h gdsfHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *gdsfHeap) Push(x any) {
	it := x.(*gdsfItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *gdsfHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// NewGDSF returns a Greedy-Dual-Size-Frequency policy.
func NewGDSF() Policy {
	return &gdsfPolicy{items: map[string]*gdsfItem{}}
}

func (p *gdsfPolicy) Name() string { return "gdsf" }

func (p *gdsfPolicy) priorityOf(it *gdsfItem) float64 {
	size := it.size
	if size <= 0 {
		size = 1
	}
	cost := it.cost
	if cost <= 0 {
		cost = 1
	}
	return p.floor + it.freq*cost/float64(size)
}

func (p *gdsfPolicy) OnInsert(key string, size int64, cost float64) {
	if it, ok := p.items[key]; ok {
		it.freq++
		it.size, it.cost = size, cost
		it.priority = p.priorityOf(it)
		heap.Fix(&p.h, it.index)
		return
	}
	p.seq++
	it := &gdsfItem{key: key, freq: 1, cost: cost, size: size, seq: p.seq}
	it.priority = p.priorityOf(it)
	p.items[key] = it
	heap.Push(&p.h, it)
}

func (p *gdsfPolicy) OnAccess(key string) {
	if it, ok := p.items[key]; ok {
		it.freq++
		it.priority = p.priorityOf(it)
		heap.Fix(&p.h, it.index)
	}
}

func (p *gdsfPolicy) OnRemove(key string) {
	it, ok := p.items[key]
	if !ok {
		return
	}
	// Ageing: the floor rises to the victim's priority, but only when the
	// removal is an actual eviction (heap head). Raising it on arbitrary
	// deletions would let one unlucky Delete of a hot entry inflate every
	// future priority.
	if it.index == 0 && it.priority > p.floor {
		p.floor = it.priority
	}
	heap.Remove(&p.h, it.index)
	delete(p.items, key)
}

func (p *gdsfPolicy) Victim() (string, bool) {
	if len(p.h) == 0 {
		return "", false
	}
	return p.h[0].key, true
}
