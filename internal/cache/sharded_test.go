package cache

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/edge-immersion/coic/internal/feature"
)

// descForTest builds a distinct hash descriptor per n.
func descForTest(n int) feature.Descriptor {
	return feature.NewHash([]byte(fmt.Sprintf("entry-%d", n)))
}

func TestShardedBasics(t *testing.T) {
	s := NewSharded(8<<10, 4, NewLRU)
	if s.Shards() != 4 {
		t.Fatalf("shards = %d", s.Shards())
	}
	if s.Capacity() != 8<<10 {
		t.Fatalf("capacity = %d", s.Capacity())
	}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := s.Put(key, []byte(key), 1); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
	}
	if s.Len() != 64 {
		t.Fatalf("len = %d, want 64", s.Len())
	}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("k%d", i)
		v, ok := s.Get(key)
		if !ok || string(v) != key {
			t.Fatalf("get %s = %q, %v", key, v, ok)
		}
		if !s.Contains(key) {
			t.Fatalf("contains %s = false", key)
		}
	}
	st := s.Stats()
	if st.Hits != 64 || st.Insertions != 64 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Entries != 64 {
		t.Fatalf("entries = %d", st.Entries)
	}
	if !s.Delete("k0") || s.Delete("k0") {
		t.Fatal("delete semantics broken")
	}
}

func TestShardedTooLargeIsPerStripe(t *testing.T) {
	// 4 KB aggregate over 4 stripes = 1 KB eviction domains: a 2 KB value
	// can never live anywhere even though the aggregate could hold it.
	s := NewSharded(4<<10, 4, NewLRU)
	err := s.Put("big", make([]byte, 2<<10), 1)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestShardedEvictsWithinStripe(t *testing.T) {
	s := NewSharded(4<<10, 4, NewLRU)
	// Overfill massively; residency must never exceed capacity and every
	// stripe must stay within its own budget.
	for i := 0; i < 512; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), make([]byte, 256), 1); err != nil {
			t.Fatal(err)
		}
	}
	if used := s.Used(); used > s.Capacity() {
		t.Fatalf("used %d exceeds capacity %d", used, s.Capacity())
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("expected evictions under churn")
	}
}

// TestShardedStoreConcurrent hammers one ShardedStore from many
// goroutines; run with -race it is the federation tentpole's concurrency
// proof for the storage layer.
func TestShardedStoreConcurrent(t *testing.T) {
	s := NewSharded(1<<20, 8, NewLRU)
	const workers = 16
	const opsPerWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%512)
				switch i % 5 {
				case 0:
					s.Put(key, []byte(key), 1)
				case 1, 2, 3:
					if v, ok := s.Get(key); ok && string(v) != key {
						t.Errorf("get %s = %q", key, v)
						return
					}
				case 4:
					if i%50 == 4 {
						s.Delete(key)
					} else {
						s.Contains(key)
						s.Stats()
					}
				}
			}
		}()
	}
	wg.Wait()
	if used := s.Used(); used > s.Capacity() {
		t.Fatalf("used %d exceeds capacity %d", used, s.Capacity())
	}
}

// TestSimilaritySharded exercises the SimilarityCache over a sharded
// backend, including concurrent mixed lookups and inserts.
func TestSimilaritySharded(t *testing.T) {
	sc := NewSimilarity(SimilarityConfig{Capacity: 1 << 20, Threshold: 0.12, Shards: 8})
	if _, ok := sc.Store().(*ShardedStore); !ok {
		t.Fatalf("backend is %T, want *ShardedStore", sc.Store())
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				desc := descForTest(w*1000 + i%64)
				if i%3 == 0 {
					sc.Insert(desc, []byte{byte(i)}, 1)
				} else {
					sc.Lookup(desc)
				}
			}
		}()
	}
	wg.Wait()
	queries, _, _ := sc.QueryStats()
	if queries == 0 {
		t.Fatal("no queries recorded")
	}
}

func TestShardedPolicySharingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sharing one Policy across shards must panic")
		}
	}()
	NewSimilarity(SimilarityConfig{Capacity: 1 << 20, Shards: 4, Policy: NewLRU()})
}
