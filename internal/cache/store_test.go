package cache

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"github.com/edge-immersion/coic/internal/clock"
	"github.com/edge-immersion/coic/internal/xrand"
)

func val(n int) []byte { return make([]byte, n) }

func TestStorePutGet(t *testing.T) {
	s := NewStore(100, NewLRU())
	if err := s.Put("a", []byte("hello"), 1); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("a")
	if !ok || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("phantom hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Insertions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreValueIsolation(t *testing.T) {
	s := NewStore(100, NewLRU())
	v := []byte("abc")
	s.Put("k", v, 1)
	v[0] = 'z' // caller mutation must not reach the cache
	got, _ := s.Get("k")
	if string(got) != "abc" {
		t.Fatal("Put aliased caller bytes")
	}
	got[0] = 'q' // returned copy mutation must not reach the cache
	again, _ := s.Get("k")
	if string(again) != "abc" {
		t.Fatal("Get aliased cached bytes")
	}
}

func TestStoreCapacityNeverExceeded(t *testing.T) {
	s := NewStore(10, NewLRU())
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), val(3), 1); err != nil {
			t.Fatal(err)
		}
		if s.Used() > 10 {
			t.Fatalf("used %d exceeds capacity", s.Used())
		}
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("no evictions despite overflow")
	}
}

func TestStoreTooLarge(t *testing.T) {
	s := NewStore(10, NewLRU())
	err := s.Put("big", val(11), 1)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if s.Len() != 0 {
		t.Fatal("failed put left residue")
	}
}

func TestStoreReplaceAccounting(t *testing.T) {
	s := NewStore(10, NewLRU())
	s.Put("k", val(8), 1)
	if err := s.Put("k", val(4), 1); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 4 || s.Len() != 1 {
		t.Fatalf("used=%d len=%d after replace", s.Used(), s.Len())
	}
}

func TestStoreExactFit(t *testing.T) {
	s := NewStore(10, NewLRU())
	if err := s.Put("k", val(10), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("j", val(10), 1); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || !s.Contains("j") {
		t.Fatal("exact-fit eviction broken")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	s := NewStore(3, NewLRU())
	s.Put("a", val(1), 1)
	s.Put("b", val(1), 1)
	s.Put("c", val(1), 1)
	s.Get("a")            // a becomes most recent
	s.Put("d", val(1), 1) // evicts b
	if s.Contains("b") {
		t.Fatal("LRU evicted the wrong entry")
	}
	for _, k := range []string{"a", "c", "d"} {
		if !s.Contains(k) {
			t.Fatalf("%s missing", k)
		}
	}
}

func TestFIFOIgnoresAccess(t *testing.T) {
	s := NewStore(3, NewFIFO())
	s.Put("a", val(1), 1)
	s.Put("b", val(1), 1)
	s.Put("c", val(1), 1)
	s.Get("a")            // should not save a under FIFO
	s.Put("d", val(1), 1) // evicts a
	if s.Contains("a") {
		t.Fatal("FIFO honoured recency")
	}
}

func TestLFUEvictionOrder(t *testing.T) {
	s := NewStore(3, NewLFU())
	s.Put("a", val(1), 1)
	s.Put("b", val(1), 1)
	s.Put("c", val(1), 1)
	s.Get("a")
	s.Get("a")
	s.Get("c")
	s.Put("d", val(1), 1) // b has lowest frequency
	if s.Contains("b") {
		t.Fatal("LFU evicted the wrong entry")
	}
}

func TestLFUTieBreaksOldestFirst(t *testing.T) {
	s := NewStore(2, NewLFU())
	s.Put("old", val(1), 1)
	s.Put("new", val(1), 1)
	s.Put("x", val(1), 1) // all freq 1: evict oldest ("old")
	if s.Contains("old") {
		t.Fatal("LFU tie did not evict oldest")
	}
	if !s.Contains("new") || !s.Contains("x") {
		t.Fatal("wrong survivor set")
	}
}

func TestGDSFPrefersKeepingExpensiveSmall(t *testing.T) {
	s := NewStore(100, NewGDSF())
	s.Put("cheap-big", val(80), 1)
	s.Put("dear-small", val(10), 1000)
	// Inserting forces eviction; GDSF should sacrifice the big cheap one.
	s.Put("new", val(40), 10)
	if s.Contains("cheap-big") {
		t.Fatal("GDSF kept the low-value entry")
	}
	if !s.Contains("dear-small") {
		t.Fatal("GDSF evicted the high-value entry")
	}
}

func TestGDSFAgingFloorRises(t *testing.T) {
	s := NewStore(4, NewGDSF())
	// Fill and churn; the policy must keep functioning (no starvation
	// assertions, just behavioural sanity: recently inserted entries can
	// still enter the cache even after many evictions).
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("k%d", i), val(2), 1)
	}
	last := fmt.Sprintf("k%d", 49)
	if !s.Contains(last) {
		t.Fatal("GDSF ageing failed: fresh entry could not enter")
	}
}

func TestTTLExpiry(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	s := NewStore(100, NewLRU(), WithClock(clk), WithTTL(time.Minute))
	s.Put("k", []byte("v"), 1)
	if _, ok := s.Get("k"); !ok {
		t.Fatal("fresh entry missing")
	}
	clk.Advance(2 * time.Minute)
	if _, ok := s.Get("k"); ok {
		t.Fatal("expired entry returned")
	}
	st := s.Stats()
	if st.Expirations != 1 {
		t.Fatalf("expirations = %d", st.Expirations)
	}
	if s.Contains("k") {
		t.Fatal("expired entry still reported resident")
	}
}

func TestDelete(t *testing.T) {
	s := NewStore(10, NewLRU())
	s.Put("k", val(5), 1)
	if !s.Delete("k") {
		t.Fatal("Delete reported absent")
	}
	if s.Delete("k") {
		t.Fatal("double delete reported present")
	}
	if s.Used() != 0 {
		t.Fatalf("used = %d after delete", s.Used())
	}
}

func TestOnEvictFires(t *testing.T) {
	var evicted []string
	s := NewStore(2, NewLRU(), WithOnEvict(func(k string) { evicted = append(evicted, k) }))
	s.Put("a", val(1), 1)
	s.Put("b", val(1), 1)
	s.Put("c", val(1), 1) // evicts a
	s.Delete("b")
	if len(evicted) != 2 || evicted[0] != "a" || evicted[1] != "b" {
		t.Fatalf("evicted = %v", evicted)
	}
}

func TestMetaSnapshot(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(100, 0))
	s := NewStore(10, NewLRU(), WithClock(clk))
	s.Put("k", val(3), 2.5)
	clk.Advance(time.Second)
	s.Get("k")
	m, ok := s.Meta("k")
	if !ok {
		t.Fatal("meta missing")
	}
	if m.Size != 3 || m.Cost != 2.5 || m.Hits != 1 {
		t.Fatalf("meta = %+v", m)
	}
	if !m.LastAccess.After(m.InsertedAt) {
		t.Fatal("LastAccess not updated")
	}
}

func TestHitRatio(t *testing.T) {
	if (Stats{}).HitRatio() != 0 {
		t.Fatal("empty ratio not 0")
	}
	st := Stats{Hits: 3, Misses: 1}
	if st.HitRatio() != 0.75 {
		t.Fatalf("ratio = %v", st.HitRatio())
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero capacity": func() { NewStore(0, NewLRU()) },
		"nil policy":    func() { NewStore(1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestStoreInvariantsUnderRandomWorkload drives a store with a random
// operation sequence under every policy and checks the core invariants:
// used bytes never exceed capacity, never go negative, and always equal
// the sum of resident entry sizes.
func TestStoreInvariantsUnderRandomWorkload(t *testing.T) {
	policies := map[string]func() Policy{
		"lru": NewLRU, "lfu": NewLFU, "fifo": NewFIFO, "gdsf": NewGDSF,
	}
	for name, mk := range policies {
		t.Run(name, func(t *testing.T) {
			f := func(seed uint64) bool {
				rng := xrand.New(seed)
				s := NewStore(64, mk())
				shadow := map[string]int{} // what should be resident is unknowable without
				// replicating policy logic, but sizes of *resident* entries are checkable.
				for op := 0; op < 300; op++ {
					k := fmt.Sprintf("k%d", rng.Intn(20))
					switch rng.Intn(3) {
					case 0:
						size := rng.Intn(30)
						if err := s.Put(k, val(size), float64(rng.Intn(5)+1)); err != nil {
							return false
						}
						shadow[k] = size
					case 1:
						s.Get(k)
					case 2:
						s.Delete(k)
					}
					if s.Used() < 0 || s.Used() > 64 {
						return false
					}
				}
				// Cross-check accounting against entry metadata.
				var total int64
				for k := range shadow {
					if m, ok := s.Meta(k); ok {
						total += m.Size
					}
				}
				return total == s.Used()
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestVictimConsistencyAllPolicies(t *testing.T) {
	// Whatever the policy, a victim it proposes must be a key it was told
	// about and not yet removed.
	for _, mk := range []func() Policy{NewLRU, NewLFU, NewFIFO, NewGDSF} {
		p := mk()
		if _, ok := p.Victim(); ok {
			t.Fatalf("%s: empty policy proposed a victim", p.Name())
		}
		p.OnInsert("a", 1, 1)
		p.OnInsert("b", 2, 2)
		p.OnAccess("a")
		v, ok := p.Victim()
		if !ok || (v != "a" && v != "b") {
			t.Fatalf("%s: bogus victim %q", p.Name(), v)
		}
		p.OnRemove("a")
		p.OnRemove("b")
		if _, ok := p.Victim(); ok {
			t.Fatalf("%s: drained policy proposed a victim", p.Name())
		}
		p.OnRemove("ghost") // must not panic
		p.OnAccess("ghost") // must not panic
	}
}
