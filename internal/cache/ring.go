package cache

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring partitioning the descriptor keyspace
// across a federation of edge nodes. Every cache key has exactly one
// "home" node; an edge that misses locally asks the key's home first, and
// new results are published to the home, so one cheap edge-to-edge hop
// resolves any key the federation has seen — without broadcasting to all
// peers. Virtual nodes smooth the partition so capacity imbalance across
// edges stays small even with few members.
//
// The ring is immutable after construction: membership changes in this
// reproduction rebuild the ring (edges are provisioned, not churning), so
// reads need no locking.
type Ring struct {
	nodes  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// DefaultVnodes is the virtual-node count per member used when callers
// have no reason to tune it; 64 keeps the max/min keyspace share within a
// few percent for small federations.
const DefaultVnodes = 64

// NewRing builds a ring over the given node IDs with `vnodes` virtual
// nodes each (DefaultVnodes when <= 0). It panics on an empty or
// duplicate membership — a construction bug.
func NewRing(nodes []string, vnodes int) *Ring {
	if len(nodes) == 0 {
		panic("cache: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := map[string]bool{}
	r := &Ring{nodes: append([]string(nil), nodes...)}
	for i, n := range r.nodes {
		if seen[n] {
			panic(fmt.Sprintf("cache: duplicate ring node %q", n))
		}
		seen[n] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", n, v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// ringHash must agree across processes (every federation member builds
// its own ring and all must place a key identically), so it is a fixed
// function of the string: FNV-1a, then a splitmix64 finaliser — plain FNV
// of near-identical vnode labels ("edge-0#1", "edge-0#2", …) clusters
// badly and skews the partition.
func ringHash(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Owner returns the node ID responsible for key: the first virtual node
// clockwise from the key's hash.
func (r *Ring) Owner(key string) string {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.nodes[r.points[i].node]
}

// Nodes returns the membership in construction order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len reports the member count.
func (r *Ring) Len() int { return len(r.nodes) }
