package cache

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring partitioning the descriptor keyspace
// across a federation of edge nodes. Every cache key has exactly one
// "home" node — the first virtual node clockwise from the key's hash —
// and, for replication factor rf > 1, a successor list of rf-1 backup
// owners (OwnersFor). An edge that misses locally asks the key's owners
// in order, and new results are published to the first rf owners, so one
// cheap edge-to-edge hop resolves any key the federation has seen —
// without broadcasting to all peers. Virtual nodes smooth the partition
// so capacity imbalance across edges stays small even with few members.
//
// A Ring value is immutable after construction, so reads need no
// locking. Membership changes build a *new* ring (see Federation.SetRing)
// carrying a higher Version; the version is how migrators and metrics
// observe rebalances. Because every federation member builds its own ring
// and all must place a key identically, ring contents are a pure function
// of the (order-independent) member set, and ringHash is fixed forever.
type Ring struct {
	nodes   []string
	points  []ringPoint // sorted by hash
	vnodes  int
	version uint64
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// DefaultVnodes is the virtual-node count per member used when callers
// have no reason to tune it; 64 keeps the max/min keyspace share within a
// few percent for small federations.
const DefaultVnodes = 64

// NewRing builds a ring over the given node IDs with `vnodes` virtual
// nodes each (DefaultVnodes when <= 0), at Version 1. An empty membership
// yields an empty ring — no owners for any key, so a federation degrades
// to local-only operation rather than crashing (a node whose last peer
// died keeps serving its own cache). Duplicate members still panic — that
// is a construction bug, not a runtime condition.
func NewRing(nodes []string, vnodes int) *Ring {
	return NewRingVersion(nodes, vnodes, 1)
}

// NewRingVersion is NewRing with an explicit version, used by membership
// layers that rebuild the ring on every epoch change.
func NewRingVersion(nodes []string, vnodes int, version uint64) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := map[string]bool{}
	r := &Ring{nodes: append([]string(nil), nodes...), vnodes: vnodes, version: version}
	for i, n := range r.nodes {
		if seen[n] {
			panic(fmt.Sprintf("cache: duplicate ring node %q", n))
		}
		seen[n] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", n, v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// ringHash must agree across processes (every federation member builds
// its own ring and all must place a key identically), so it is a fixed
// function of the string: FNV-1a, then a splitmix64 finaliser — plain FNV
// of near-identical vnode labels ("edge-0#1", "edge-0#2", …) clusters
// badly and skews the partition.
func ringHash(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Owner returns the node ID responsible for key: the first virtual node
// clockwise from the key's hash. An empty ring owns nothing ("").
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.nodes[r.points[i].node]
}

// OwnersFor returns the first rf distinct nodes clockwise from key's hash
// — the home followed by its successors, the replica set for replication
// factor rf. rf is clamped to the member count; an empty ring returns
// nil. OwnersFor(key, 1)[0] == Owner(key).
func (r *Ring) OwnersFor(key string, rf int) []string {
	if len(r.points) == 0 || rf <= 0 {
		return nil
	}
	if rf > len(r.nodes) {
		rf = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, rf)
	taken := make(map[int]bool, rf)
	for i := 0; i < len(r.points) && len(owners) < rf; i++ {
		p := r.points[(start+i)%len(r.points)]
		if taken[p.node] {
			continue
		}
		taken[p.node] = true
		owners = append(owners, r.nodes[p.node])
	}
	return owners
}

// Without derives the ring that results from removing node — same vnode
// count, version bumped by one. Used at decommission time to compute
// where this node's home keys go once it leaves. Removing an absent node
// just reproduces the ring at the bumped version.
func (r *Ring) Without(node string) *Ring {
	nodes := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != node {
			nodes = append(nodes, n)
		}
	}
	return NewRingVersion(nodes, r.vnodes, r.version+1)
}

// Version reports the ring's membership epoch. Rings built by NewRing
// start at 1; membership layers bump it on every rebuild so observers
// (migrator, metrics) can detect rebalances.
func (r *Ring) Version() uint64 { return r.version }

// Contains reports whether node is a ring member.
func (r *Ring) Contains(node string) bool {
	for _, n := range r.nodes {
		if n == node {
			return true
		}
	}
	return false
}

// Nodes returns the membership in construction order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len reports the member count.
func (r *Ring) Len() int { return len(r.nodes) }
