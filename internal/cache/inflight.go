package cache

import (
	"sync"

	"github.com/edge-immersion/coic/internal/feature"
)

// This file is the miss-coalescing layer: when N concurrent requests miss
// on the same descriptor, only one of them (the leader) performs the
// expensive fetch — a cloud round trip, a peer probe — and the result fans
// out to the other N-1 (the waiters). Multi-user immersive workloads
// arrive in correlated bursts (everyone at the same landmark recognises
// the same object at the same moment), which is exactly the pattern that
// rewards in-flight deduplication: without it the edge forwards N
// identical computations upstream before the first result lands in the
// cache.

// inflightCall is one outstanding fetch. done closes when val/err are
// final; waiters never write, only read after done.
type inflightCall[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Inflight coalesces concurrent executions of the same keyed operation
// (a minimal generic singleflight). The zero value is ready to use.
type Inflight[T any] struct {
	mu    sync.Mutex
	calls map[string]*inflightCall[T]

	fetches   uint64
	coalesced uint64
	failures  uint64
}

// Do executes fn under key, coalescing with any in-flight call for the
// same key: the first caller runs fn (leader=true), concurrent callers
// block until it completes and receive the same value and error
// (leader=false). The key is forgotten as soon as the call completes —
// errors propagate to every waiter of that flight but never poison the
// key, so the next Do after a failure fetches afresh.
func (g *Inflight[T]) Do(key string, fn func() (T, error)) (val T, leader bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*inflightCall[T]{}
	}
	if c, ok := g.calls[key]; ok {
		g.coalesced++
		g.mu.Unlock()
		<-c.done
		return c.val, false, c.err
	}
	c := &inflightCall[T]{done: make(chan struct{})}
	g.calls[key] = c
	g.fetches++
	g.mu.Unlock()

	defer func() {
		// Runs even if fn panics: unblock waiters (they observe err==nil
		// and a zero value only on panic, which is propagating anyway) and
		// drop the key so nothing is wedged or poisoned.
		g.mu.Lock()
		delete(g.calls, key)
		if c.err != nil {
			g.failures++
		}
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	return c.val, true, c.err
}

// Active reports whether a call for key is currently in flight.
func (g *Inflight[T]) Active(key string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.calls[key]
	return ok
}

// Stats reports leader fetches, coalesced joins and failed fetches.
// Joins are counted the moment the waiter attaches, so a leader can
// observe its own waiters arriving mid-fetch.
func (g *Inflight[T]) Stats() (fetches, coalesced, failures uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.fetches, g.coalesced, g.failures
}

// Len reports how many fetches are currently in flight.
func (g *Inflight[T]) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}

// InflightStats counts InflightTable outcomes.
type InflightStats struct {
	// Fetches is how many leader fetches ran.
	Fetches uint64
	// Coalesced is how many callers joined an in-flight fetch instead of
	// issuing their own (exact-key joins plus similar-descriptor joins).
	Coalesced uint64
	// SimilarJoins is the subset of Coalesced that matched an in-flight
	// fetch through descriptor similarity rather than key equality.
	SimilarJoins uint64
	// Failures is how many leader fetches returned an error (each error
	// also failed that flight's waiters).
	Failures uint64
}

// InflightTable coalesces concurrent fetches keyed by feature descriptor.
// It is the descriptor-aware flavour of Inflight: exact keys always
// coalesce, and when a similarity threshold is configured, a vector
// descriptor within that L2 distance of an in-flight vector descriptor
// joins its flight too — the same "close enough means the same
// computation" rule the SimilarityCache applies to resident entries,
// applied to entries that are still being computed. The call lifecycle
// (leader election, fan-out, error propagation, cleanup) is Inflight's;
// this type only maps descriptors onto flight keys via a small index of
// in-flight vectors.
type InflightTable struct {
	threshold float64
	group     Inflight[[]byte]

	mu           sync.Mutex
	index        feature.Index     // in-flight vector descriptors only
	ids          map[string]uint64 // key -> index id
	keys         map[uint64]string // index id -> key
	nextID       uint64
	similarJoins uint64
}

// NewInflightTable builds a table. threshold > 0 enables
// similar-descriptor coalescing for vector descriptors (the in-flight set
// is small, so an exact linear scan is the right index).
func NewInflightTable(threshold float64) *InflightTable {
	return &InflightTable{
		threshold: threshold,
		index:     feature.NewLinear(),
		ids:       map[string]uint64{},
		keys:      map[uint64]string{},
	}
}

// flightKey maps desc onto the flight to join: its own key, or the key of
// a similar-enough in-flight vector descriptor. The similarity redirect
// is best-effort — if the neighbouring flight completes between this
// decision and Do's registration, the caller simply leads a fresh fetch
// under the neighbour's (now free) key, which is correct, just not
// deduplicated.
func (t *InflightTable) flightKey(desc feature.Descriptor) string {
	key := desc.Key()
	if t.threshold <= 0 || desc.Kind != feature.KindVector || t.group.Active(key) {
		return key
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id, dist, ok := t.index.Nearest(desc.Vec)
	if !ok || dist > t.threshold {
		return key
	}
	neighbour, ok := t.keys[id]
	if !ok || !t.group.Active(neighbour) {
		return key
	}
	return neighbour
}

// track registers a leader's vector descriptor in the in-flight index for
// the duration of its fetch, so similar descriptors can find the flight.
func (t *InflightTable) track(key string, desc feature.Descriptor) (untrack func()) {
	if t.threshold <= 0 || desc.Kind != feature.KindVector {
		return func() {}
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.ids[key] = id
	t.keys[id] = key
	t.mu.Unlock()
	t.index.Add(id, desc.Vec)
	return func() {
		t.mu.Lock()
		delete(t.ids, key)
		delete(t.keys, id)
		t.mu.Unlock()
		t.index.Remove(id)
	}
}

// Do resolves desc through the table: join an in-flight fetch for the
// same (or similar) descriptor, or become the leader and run fetch. The
// leader's value and error fan out to every caller that joined before the
// fetch completed. Completion — success or failure — removes the entry,
// so a failed fetch never poisons the descriptor.
func (t *InflightTable) Do(desc feature.Descriptor, fetch func() ([]byte, error)) (val []byte, leader bool, err error) {
	flight := t.flightKey(desc)
	val, leader, err = t.group.Do(flight, func() ([]byte, error) {
		defer t.track(flight, desc)()
		return fetch()
	})
	if !leader && flight != desc.Key() {
		t.mu.Lock()
		t.similarJoins++
		t.mu.Unlock()
	}
	return val, leader, err
}

// Stats returns a counter snapshot.
func (t *InflightTable) Stats() InflightStats {
	fetches, coalesced, failures := t.group.Stats()
	t.mu.Lock()
	defer t.mu.Unlock()
	return InflightStats{
		Fetches:      fetches,
		Coalesced:    coalesced,
		SimilarJoins: t.similarJoins,
		Failures:     failures,
	}
}

// Len reports how many fetches are currently in flight.
func (t *InflightTable) Len() int { return t.group.Len() }
