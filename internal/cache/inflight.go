package cache

import (
	"context"
	"errors"
	"sync"

	"github.com/edge-immersion/coic/internal/feature"
)

// This file is the miss-coalescing layer: when N concurrent requests miss
// on the same descriptor, only one fetch — a cloud round trip, a peer
// probe — actually runs, and the result fans out to all N callers.
// Multi-user immersive workloads arrive in correlated bursts (everyone at
// the same landmark recognises the same object at the same moment), which
// is exactly the pattern that rewards in-flight deduplication: without it
// the edge forwards N identical computations upstream before the first
// result lands in the cache.
//
// Coalescing is context-aware with last-waiter-cancels semantics: every
// caller attaches with its own context, a departing caller leaves the
// flight without disturbing it, and only when the *last* interested
// caller departs is the underlying fetch's context cancelled. Interactive
// AR/VR clients abandon work constantly (a user looks away
// mid-recognition); the fetch must survive any one departure but not
// outlive the demand for its result.

// inflightCall is one outstanding fetch. done closes when val/err are
// final; callers never write, only read after done.
type inflightCall[T any] struct {
	done chan struct{}
	val  T
	err  error

	// waiters counts callers (starter included) still interested in the
	// result; guarded by the owning group's mutex. cancel aborts fctx, the
	// context the fetch function runs under, once waiters reaches zero.
	waiters int
	fctx    context.Context
	cancel  context.CancelFunc
}

// Inflight coalesces concurrent executions of the same keyed operation
// (a context-aware generic singleflight). The zero value is ready to use.
type Inflight[T any] struct {
	mu    sync.Mutex
	calls map[string]*inflightCall[T]

	fetches   uint64
	coalesced uint64
	failures  uint64
	canceled  uint64
}

// Do executes fn under key, coalescing with any in-flight call for the
// same key: the first caller starts fn (leader=true) and concurrent
// callers attach to it (leader=false); all receive the same value and
// error. fn runs on its own goroutine under a context that is detached
// from any single caller: it inherits ctx's values but not its deadline
// or cancellation, and is cancelled only when every attached caller has
// departed (last-waiter-cancels). A caller whose ctx expires before the
// fetch completes detaches immediately and returns ctx.Err(); if it was
// the last one, the flight's context is cancelled and the key released so
// the next Do starts fresh rather than joining a dying fetch. As before,
// completed keys are forgotten immediately — errors propagate to that
// flight's callers but never poison the key.
func (g *Inflight[T]) Do(ctx context.Context, key string, fn func(context.Context) (T, error)) (val T, leader bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*inflightCall[T]{}
	}
	c, ok := g.calls[key]
	if ok {
		g.coalesced++
	} else {
		fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		c = &inflightCall[T]{done: make(chan struct{}), fctx: fctx, cancel: cancel}
		g.calls[key] = c
		g.fetches++
		leader = true
		go g.run(key, c, fn)
	}
	c.waiters++
	g.mu.Unlock()

	// Prefer a completed result over a simultaneous cancellation.
	select {
	case <-c.done:
		return c.val, leader, c.err
	default:
	}
	select {
	case <-c.done:
		return c.val, leader, c.err
	case <-ctx.Done():
		g.detach(key, c)
		var zero T
		return zero, leader, ctx.Err()
	}
}

// run executes one flight's fetch, detached from every caller goroutine,
// and fans the outcome out. The deferred cleanup runs even if fn panics:
// callers unblock (observing a zero value, with the panic propagating on
// this goroutine) and the key is dropped so nothing is wedged or
// poisoned.
func (g *Inflight[T]) run(key string, c *inflightCall[T], fn func(context.Context) (T, error)) {
	defer func() {
		g.mu.Lock()
		if g.calls[key] == c {
			delete(g.calls, key)
		}
		// A fetch that unwound with a cancellation error after its last
		// waiter departed was aborted, not failed — detach already counted
		// it under canceled, and double-counting would make Failures read
		// as upstream trouble on every abandonment.
		if c.err != nil && !errors.Is(c.err, context.Canceled) && !errors.Is(c.err, context.DeadlineExceeded) {
			g.failures++
		}
		g.mu.Unlock()
		c.cancel() // release the flight context's resources
		close(c.done)
	}()
	c.val, c.err = fn(c.fctx)
}

// detach removes one departed caller from a flight; the last departure
// cancels the fetch and releases the key so new callers lead a fresh
// fetch instead of attaching to an aborting one.
func (g *Inflight[T]) detach(key string, c *inflightCall[T]) {
	g.mu.Lock()
	if g.calls[key] != c {
		// The flight completed (run already unmapped it) in the same
		// instant this caller's context fired: nothing left to cancel,
		// and it must not be counted as an abort.
		g.mu.Unlock()
		return
	}
	c.waiters--
	last := c.waiters == 0
	if last {
		if g.calls[key] == c {
			delete(g.calls, key)
		}
		g.canceled++
	}
	g.mu.Unlock()
	if last {
		c.cancel()
	}
}

// Active reports whether a call for key is currently in flight.
func (g *Inflight[T]) Active(key string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.calls[key]
	return ok
}

// Stats reports leader fetches, coalesced joins, failed fetches and
// flights aborted by their last waiter departing. Joins are counted the
// moment the caller attaches, so a leader can observe its own waiters
// arriving mid-fetch.
func (g *Inflight[T]) Stats() (fetches, coalesced, failures, canceled uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.fetches, g.coalesced, g.failures, g.canceled
}

// Len reports how many fetches are currently in flight.
func (g *Inflight[T]) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}

// InflightStats counts InflightTable outcomes.
type InflightStats struct {
	// Fetches is how many leader fetches ran.
	Fetches uint64
	// Coalesced is how many callers joined an in-flight fetch instead of
	// issuing their own (exact-key joins plus similar-descriptor joins).
	Coalesced uint64
	// SimilarJoins is the subset of Coalesced that matched an in-flight
	// fetch through descriptor similarity rather than key equality.
	SimilarJoins uint64
	// Failures is how many leader fetches returned a non-cancellation
	// error (each error also failed that flight's waiters). Aborted
	// flights count under Canceled only.
	Failures uint64
	// Canceled is how many flights were aborted because their last
	// interested caller departed before the fetch completed.
	Canceled uint64
}

// InflightTable coalesces concurrent fetches keyed by feature descriptor.
// It is the descriptor-aware flavour of Inflight: exact keys always
// coalesce, and when a similarity threshold is configured, a vector
// descriptor within that L2 distance of an in-flight vector descriptor
// joins its flight too — the same "close enough means the same
// computation" rule the SimilarityCache applies to resident entries,
// applied to entries that are still being computed. The call lifecycle
// (leader election, fan-out, error propagation, last-waiter-cancels,
// cleanup) is Inflight's; this type only maps descriptors onto flight
// keys via a small index of in-flight vectors.
type InflightTable struct {
	threshold float64
	group     Inflight[[]byte]

	mu           sync.Mutex
	index        feature.Index     // in-flight vector descriptors only
	ids          map[string]uint64 // key -> index id
	keys         map[uint64]string // index id -> key
	nextID       uint64
	similarJoins uint64
}

// NewInflightTable builds a table. threshold > 0 enables
// similar-descriptor coalescing for vector descriptors (the in-flight set
// is small, so an exact linear scan is the right index).
func NewInflightTable(threshold float64) *InflightTable {
	return &InflightTable{
		threshold: threshold,
		index:     feature.NewLinear(),
		ids:       map[string]uint64{},
		keys:      map[uint64]string{},
	}
}

// flightKey maps desc onto the flight to join: its own key, or the key of
// a similar-enough in-flight vector descriptor. The similarity redirect
// is best-effort — if the neighbouring flight completes between this
// decision and Do's registration, the caller simply leads a fresh fetch
// under the neighbour's (now free) key, which is correct, just not
// deduplicated.
func (t *InflightTable) flightKey(desc feature.Descriptor) string {
	key := desc.Key()
	if t.threshold <= 0 || desc.Kind != feature.KindVector || t.group.Active(key) {
		return key
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id, dist, ok := t.index.Nearest(desc.Vec)
	if !ok || dist > t.threshold {
		return key
	}
	neighbour, ok := t.keys[id]
	if !ok || !t.group.Active(neighbour) {
		return key
	}
	return neighbour
}

// track registers a leader's vector descriptor in the in-flight index for
// the duration of its fetch, so similar descriptors can find the flight.
func (t *InflightTable) track(key string, desc feature.Descriptor) (untrack func()) {
	if t.threshold <= 0 || desc.Kind != feature.KindVector {
		return func() {}
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.ids[key] = id
	t.keys[id] = key
	t.mu.Unlock()
	t.index.Add(id, desc.Vec)
	return func() {
		t.mu.Lock()
		delete(t.ids, key)
		delete(t.keys, id)
		t.mu.Unlock()
		t.index.Remove(id)
	}
}

// Do resolves desc through the table: join an in-flight fetch for the
// same (or similar) descriptor, or become the leader and run fetch under
// a flight context with last-waiter-cancels semantics (see Inflight.Do).
// The flight's value and error fan out to every caller still attached
// when the fetch completes; a caller whose ctx expires first detaches
// with ctx.Err(). Completion — success, failure or abort — removes the
// entry, so no outcome poisons the descriptor.
func (t *InflightTable) Do(ctx context.Context, desc feature.Descriptor, fetch func(context.Context) ([]byte, error)) (val []byte, leader bool, err error) {
	flight := t.flightKey(desc)
	val, leader, err = t.group.Do(ctx, flight, func(fctx context.Context) ([]byte, error) {
		defer t.track(flight, desc)()
		return fetch(fctx)
	})
	if !leader && flight != desc.Key() {
		t.mu.Lock()
		t.similarJoins++
		t.mu.Unlock()
	}
	return val, leader, err
}

// Stats returns a counter snapshot.
func (t *InflightTable) Stats() InflightStats {
	fetches, coalesced, failures, canceled := t.group.Stats()
	t.mu.Lock()
	defer t.mu.Unlock()
	return InflightStats{
		Fetches:      fetches,
		Coalesced:    coalesced,
		SimilarJoins: t.similarJoins,
		Failures:     failures,
		Canceled:     canceled,
	}
}

// Len reports how many fetches are currently in flight.
func (t *InflightTable) Len() int { return t.group.Len() }
