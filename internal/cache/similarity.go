package cache

import (
	"errors"
	"sync"

	"github.com/edge-immersion/coic/internal/feature"
)

// DefaultOwner is the tenant every untagged insert and lookup is
// accounted to; it matches the servers' default tenant so single-tenant
// deployments see all residency under one label.
const DefaultOwner = "default"

// ErrTenantShare rejects an insert that would push its tenant past the
// configured byte share. The request already has its answer — the value
// is served through uncached — and other tenants' residency is untouched
// (a tenant can exhaust its own share, never evict a neighbour's).
var ErrTenantShare = errors.New("cache: tenant byte share exhausted")

// Outcome classifies a SimilarityCache lookup for metrics.
type Outcome int

// Lookup outcomes.
const (
	// OutcomeMiss: no cached result is usable.
	OutcomeMiss Outcome = iota
	// OutcomeExact: descriptor key matched byte-for-byte (hash
	// descriptors, or an identical feature vector).
	OutcomeExact
	// OutcomeSimilar: a vector descriptor matched within the distance
	// threshold — the cross-user redundancy CoIC is built around.
	OutcomeSimilar
)

// String names the outcome for experiment output.
func (o Outcome) String() string {
	switch o {
	case OutcomeExact:
		return "exact"
	case OutcomeSimilar:
		return "similar"
	default:
		return "miss"
	}
}

// LookupResult describes how a lookup resolved.
type LookupResult struct {
	Outcome Outcome
	// Distance is the descriptor distance for OutcomeSimilar (0 for
	// exact hits, undefined for misses).
	Distance float64
	// Key is the store key of the matched entry on hits (the queried
	// descriptor's own key for exact hits, the neighbour's for similar
	// hits). Callers use it to attach per-entry metadata, e.g. the
	// privacy gate's contributor sets.
	Key string
}

// Hit reports whether a cached value was returned.
func (r LookupResult) Hit() bool { return r.Outcome != OutcomeMiss }

// Backend is the storage API the SimilarityCache sits on, satisfied by
// both the single-mutex Store and the striped ShardedStore. The cache is
// agnostic to the striping; the Shards config knob picks the
// implementation.
type Backend interface {
	Get(key string) ([]byte, bool)
	Contains(key string) bool
	Put(key string, value []byte, cost float64) error
	Delete(key string) bool
	Meta(key string) (Entry, bool)
	Len() int
	Used() int64
	Capacity() int64
	Stats() Stats
	PolicyName() string
}

// SimilarityCache is the edge IC cache of the paper's Figure 1: a value
// store keyed by feature descriptor, where vector descriptors also match
// approximately. "If the distance between the new feature descriptor and
// another one in the cache is under a certain threshold, CoIC determines
// that the computation result is already in the cache."
type SimilarityCache struct {
	store     Backend
	index     feature.Index
	threshold float64

	mu     sync.Mutex
	ids    map[string]uint64 // store key -> vector id
	keys   map[uint64]string // vector id -> store key
	descs  map[string][]byte // store key -> marshalled descriptor (for Snapshot)
	nextID uint64

	// Logical query counters. The store's own Stats count raw store
	// operations (a similarity hit shows up there as one miss plus one
	// hit); these count one outcome per Lookup, which is what experiment
	// hit ratios are computed from.
	queries  uint64
	exactHit uint64
	simHits  uint64

	// Tenant accounting, all under mu. owners/sizes track which tenant
	// inserted each resident key and how many bytes it holds; caps bound a
	// tenant's resident bytes (0 = unbounded); tenants holds the per-tenant
	// counters. A tenant may *hit* on any tenant's entry — cross-tenant
	// reuse is the point of the shared cache — but only its own inserts
	// charge its share.
	owners  map[string]string
	sizes   map[string]int64
	caps    map[string]int64
	tenants map[string]*tenantCacheStats
}

// tenantCacheStats is the mutable per-tenant ledger (under sc.mu).
type tenantCacheStats struct {
	queries  uint64
	hits     uint64
	inserts  uint64
	rejected uint64
	evicted  uint64
	bytes    int64
}

// TenantCacheStats is one tenant's cache ledger as exposed by
// StatsSnapshot. Hits count the tenant's lookups that resolved from the
// cache regardless of which tenant inserted the entry; Evicted counts
// the tenant's own entries dropped from residency; Rejected counts
// inserts refused because the tenant's byte share was exhausted.
type TenantCacheStats struct {
	Queries  uint64
	Hits     uint64
	Inserts  uint64
	Rejected uint64
	Evicted  uint64
	Bytes    int64
	CapBytes int64
}

// SimilarityConfig assembles a SimilarityCache.
type SimilarityConfig struct {
	// Capacity is the byte budget of the underlying store.
	Capacity int64
	// Policy is the eviction policy (NewLRU() when nil).
	Policy Policy
	// Index matches vector descriptors (feature.NewLinear() when nil).
	Index feature.Index
	// Threshold is the maximum L2 distance at which two unit-norm
	// descriptors are treated as the same computation.
	Threshold float64
	// StoreOptions pass through to the store (clock, TTL).
	StoreOptions []StoreOption
	// Shards stripes the store for lock-free-ish concurrent access
	// (ShardedStore). 0 or 1 keeps the single-mutex Store. Sharding
	// requires PolicyFactory (or neither policy field set) — a single
	// Policy instance cannot be shared across stripes.
	Shards int
	// PolicyFactory builds one eviction policy per stripe when Shards > 1
	// (NewLRU when nil). Ignored for the unsharded store.
	PolicyFactory func() Policy
}

// NewSimilarity builds the cache. The store's eviction callback is wired
// to keep the vector index consistent with residency.
func NewSimilarity(cfg SimilarityConfig) *SimilarityCache {
	if cfg.Index == nil {
		cfg.Index = feature.NewLinear()
	}
	sc := &SimilarityCache{
		index:     cfg.Index,
		threshold: cfg.Threshold,
		ids:       map[string]uint64{},
		keys:      map[uint64]string{},
		descs:     map[string][]byte{},
		owners:    map[string]string{},
		sizes:     map[string]int64{},
		caps:      map[string]int64{},
		tenants:   map[string]*tenantCacheStats{},
	}
	opts := append([]StoreOption{WithOnEvict(sc.dropKey)}, cfg.StoreOptions...)
	if cfg.Shards > 1 {
		if cfg.Policy != nil {
			panic("cache: sharded store needs PolicyFactory, not a shared Policy")
		}
		factory := cfg.PolicyFactory
		if factory == nil {
			factory = NewLRU
		}
		sc.store = NewSharded(cfg.Capacity, cfg.Shards, factory, opts...)
		return sc
	}
	if cfg.Policy == nil {
		if cfg.PolicyFactory != nil {
			cfg.Policy = cfg.PolicyFactory()
		} else {
			cfg.Policy = NewLRU()
		}
	}
	sc.store = NewStore(cfg.Capacity, cfg.Policy, opts...)
	return sc
}

// tenantStatsLocked returns tenant's ledger, creating it on first touch.
// Callers hold sc.mu.
func (sc *SimilarityCache) tenantStatsLocked(tenant string) *tenantCacheStats {
	ts := sc.tenants[tenant]
	if ts == nil {
		ts = &tenantCacheStats{}
		sc.tenants[tenant] = ts
	}
	return ts
}

// SetTenantCap bounds tenant's resident bytes; 0 removes the bound.
// Already-resident bytes are never evicted by a new cap — it gates
// future inserts only.
func (sc *SimilarityCache) SetTenantCap(tenant string, capBytes int64) {
	if tenant == "" {
		tenant = DefaultOwner
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if capBytes <= 0 {
		delete(sc.caps, tenant)
		return
	}
	sc.caps[tenant] = capBytes
}

// dropKey unlinks an evicted store key from the vector index and settles
// its owner's byte accounting. Called by the store outside its lock.
func (sc *SimilarityCache) dropKey(key string) {
	sc.mu.Lock()
	delete(sc.descs, key)
	if sz, owned := sc.sizes[key]; owned {
		owner := sc.owners[key]
		delete(sc.sizes, key)
		delete(sc.owners, key)
		ts := sc.tenantStatsLocked(owner)
		ts.bytes -= sz
		ts.evicted++
	}
	id, ok := sc.ids[key]
	if ok {
		delete(sc.ids, key)
		delete(sc.keys, id)
	}
	sc.mu.Unlock()
	if ok {
		sc.index.Remove(id)
	}
}

// Lookup resolves a descriptor to a cached value under the default
// tenant. Exact key matches win; vector descriptors then fall back to
// nearest-neighbour search within the threshold.
func (sc *SimilarityCache) Lookup(desc feature.Descriptor) ([]byte, LookupResult) {
	return sc.LookupAs(DefaultOwner, desc)
}

// LookupAs is Lookup with the querying tenant named for accounting; the
// match itself is tenant-blind (any tenant's entry can answer — the
// cross-tenant reuse the shared cache exists for).
func (sc *SimilarityCache) LookupAs(tenant string, desc feature.Descriptor) ([]byte, LookupResult) {
	if tenant == "" {
		tenant = DefaultOwner
	}
	sc.mu.Lock()
	sc.queries++
	sc.tenantStatsLocked(tenant).queries++
	sc.mu.Unlock()
	if v, ok := sc.store.Get(desc.Key()); ok {
		sc.mu.Lock()
		sc.exactHit++
		sc.tenantStatsLocked(tenant).hits++
		sc.mu.Unlock()
		return v, LookupResult{Outcome: OutcomeExact, Key: desc.Key()}
	}
	if desc.Kind != feature.KindVector {
		return nil, LookupResult{Outcome: OutcomeMiss}
	}
	id, dist, ok := sc.index.Nearest(desc.Vec)
	if !ok || dist > sc.threshold {
		return nil, LookupResult{Outcome: OutcomeMiss}
	}
	sc.mu.Lock()
	key, known := sc.keys[id]
	sc.mu.Unlock()
	if !known {
		return nil, LookupResult{Outcome: OutcomeMiss}
	}
	v, ok := sc.store.Get(key)
	if !ok {
		// Entry raced out between index lookup and fetch; treat as miss.
		return nil, LookupResult{Outcome: OutcomeMiss}
	}
	sc.mu.Lock()
	sc.simHits++
	sc.tenantStatsLocked(tenant).hits++
	sc.mu.Unlock()
	return v, LookupResult{Outcome: OutcomeSimilar, Distance: dist, Key: key}
}

// QueryStats reports logical lookup counters: total queries, exact hits
// and similarity hits. HitRatio for experiments is
// (exact+similar)/queries.
func (sc *SimilarityCache) QueryStats() (queries, exact, similar uint64) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.queries, sc.exactHit, sc.simHits
}

// Insert caches value under the descriptor with a recomputation-cost hint
// for cost-aware policies, accounted to the default tenant. Vector
// descriptors are also registered in the similarity index. Returns
// ErrTooLarge when the value can never fit.
func (sc *SimilarityCache) Insert(desc feature.Descriptor, value []byte, cost float64) error {
	return sc.InsertAs(DefaultOwner, desc, value, cost)
}

// InsertAs is Insert with the entry charged against tenant's byte share.
// A tenant at its configured cap gets ErrTenantShare — the value serves
// through uncached and no other tenant's residency is disturbed.
func (sc *SimilarityCache) InsertAs(tenant string, desc feature.Descriptor, value []byte, cost float64) error {
	if tenant == "" {
		tenant = DefaultOwner
	}
	key := desc.Key()
	descBytes, derr := desc.Marshal()
	if derr != nil {
		return derr
	}
	sc.mu.Lock()
	if capBytes, capped := sc.caps[tenant]; capped {
		projected := sc.tenantStatsLocked(tenant).bytes + int64(len(value))
		if sz, resident := sc.sizes[key]; resident && sc.owners[key] == tenant {
			projected -= sz // replacing our own entry frees its bytes
		}
		if projected > capBytes {
			sc.tenantStatsLocked(tenant).rejected++
			sc.mu.Unlock()
			return ErrTenantShare
		}
	}
	sc.descs[key] = descBytes
	sc.mu.Unlock()
	var id uint64
	isVec := desc.Kind == feature.KindVector
	if isVec {
		sc.mu.Lock()
		if old, ok := sc.ids[key]; ok {
			// Re-insert under the same key: retire the old vector id.
			delete(sc.keys, old)
			sc.index.Remove(old)
		}
		sc.nextID++
		id = sc.nextID
		sc.ids[key] = id
		sc.keys[id] = key
		sc.mu.Unlock()
		sc.index.Add(id, desc.Vec)
	}
	if err := sc.store.Put(key, value, cost); err != nil {
		if isVec {
			sc.dropKey(key)
		}
		return err
	}
	sc.mu.Lock()
	if sz, resident := sc.sizes[key]; resident {
		// Same-key replacement: release the previous owner's bytes (the
		// store updated the entry in place, so no eviction fired).
		sc.tenantStatsLocked(sc.owners[key]).bytes -= sz
	}
	sc.owners[key] = tenant
	sc.sizes[key] = int64(len(value))
	ts := sc.tenantStatsLocked(tenant)
	ts.bytes += int64(len(value))
	ts.inserts++
	sc.mu.Unlock()
	return nil
}

// Stats reports raw store counters plus the similarity-hit count. Note
// the store counts operations, not logical queries — use QueryStats for
// hit ratios.
func (sc *SimilarityCache) Stats() (Stats, uint64) {
	sc.mu.Lock()
	sim := sc.simHits
	sc.mu.Unlock()
	return sc.store.Stats(), sim
}

// StatsSnapshot is one coherent reading of the cache's counters: the raw
// store operation counters alongside the logical query counters, plus the
// store's capacity. See SimilarityCache.StatsSnapshot for the epoch
// guarantee.
type StatsSnapshot struct {
	Store       Stats
	Capacity    int64
	Queries     uint64
	ExactHits   uint64
	SimilarHits uint64
	// Tenants is the per-tenant ledger, read in the same lock epoch as
	// every other field — a tenant's Bytes never disagrees with the global
	// counters because a lookup or insert landed between two lock passes.
	Tenants map[string]TenantCacheStats
}

// StatsSnapshot reads the store counters and the logical query counters
// in a single acquisition of the cache mutex. The separate
// Stats()+QueryStats() pair takes the mutex twice, so lookups landing
// between the two calls skew one side against the other — a test that
// asserts Queries against Store.Hits+Store.Misses would flake under
// concurrent traffic. One epoch removes that cross-call drift; a lookup
// still mid-flight (queries bumped, store operation not yet issued) is
// the only residual motion a snapshot can observe.
func (sc *SimilarityCache) StatsSnapshot() StatsSnapshot {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	tenants := make(map[string]TenantCacheStats, len(sc.tenants))
	for t, ts := range sc.tenants {
		tenants[t] = TenantCacheStats{
			Queries:  ts.queries,
			Hits:     ts.hits,
			Inserts:  ts.inserts,
			Rejected: ts.rejected,
			Evicted:  ts.evicted,
			Bytes:    ts.bytes,
			CapBytes: sc.caps[t],
		}
	}
	return StatsSnapshot{
		Store:       sc.store.Stats(),
		Capacity:    sc.store.Capacity(),
		Queries:     sc.queries,
		ExactHits:   sc.exactHit,
		SimilarHits: sc.simHits,
		Tenants:     tenants,
	}
}

// Store exposes the underlying store for capacity/len inspection.
func (sc *SimilarityCache) Store() Backend { return sc.store }

// Threshold reports the configured similarity threshold.
func (sc *SimilarityCache) Threshold() float64 { return sc.threshold }

// IndexLen reports how many vectors the similarity index holds; tests use
// it to assert index/store consistency.
func (sc *SimilarityCache) IndexLen() int { return sc.index.Len() }
