package cache

import (
	"sync"

	"github.com/edge-immersion/coic/internal/feature"
)

// Outcome classifies a SimilarityCache lookup for metrics.
type Outcome int

// Lookup outcomes.
const (
	// OutcomeMiss: no cached result is usable.
	OutcomeMiss Outcome = iota
	// OutcomeExact: descriptor key matched byte-for-byte (hash
	// descriptors, or an identical feature vector).
	OutcomeExact
	// OutcomeSimilar: a vector descriptor matched within the distance
	// threshold — the cross-user redundancy CoIC is built around.
	OutcomeSimilar
)

// String names the outcome for experiment output.
func (o Outcome) String() string {
	switch o {
	case OutcomeExact:
		return "exact"
	case OutcomeSimilar:
		return "similar"
	default:
		return "miss"
	}
}

// LookupResult describes how a lookup resolved.
type LookupResult struct {
	Outcome Outcome
	// Distance is the descriptor distance for OutcomeSimilar (0 for
	// exact hits, undefined for misses).
	Distance float64
	// Key is the store key of the matched entry on hits (the queried
	// descriptor's own key for exact hits, the neighbour's for similar
	// hits). Callers use it to attach per-entry metadata, e.g. the
	// privacy gate's contributor sets.
	Key string
}

// Hit reports whether a cached value was returned.
func (r LookupResult) Hit() bool { return r.Outcome != OutcomeMiss }

// Backend is the storage API the SimilarityCache sits on, satisfied by
// both the single-mutex Store and the striped ShardedStore. The cache is
// agnostic to the striping; the Shards config knob picks the
// implementation.
type Backend interface {
	Get(key string) ([]byte, bool)
	Contains(key string) bool
	Put(key string, value []byte, cost float64) error
	Delete(key string) bool
	Meta(key string) (Entry, bool)
	Len() int
	Used() int64
	Capacity() int64
	Stats() Stats
	PolicyName() string
}

// SimilarityCache is the edge IC cache of the paper's Figure 1: a value
// store keyed by feature descriptor, where vector descriptors also match
// approximately. "If the distance between the new feature descriptor and
// another one in the cache is under a certain threshold, CoIC determines
// that the computation result is already in the cache."
type SimilarityCache struct {
	store     Backend
	index     feature.Index
	threshold float64

	mu     sync.Mutex
	ids    map[string]uint64 // store key -> vector id
	keys   map[uint64]string // vector id -> store key
	descs  map[string][]byte // store key -> marshalled descriptor (for Snapshot)
	nextID uint64

	// Logical query counters. The store's own Stats count raw store
	// operations (a similarity hit shows up there as one miss plus one
	// hit); these count one outcome per Lookup, which is what experiment
	// hit ratios are computed from.
	queries  uint64
	exactHit uint64
	simHits  uint64
}

// SimilarityConfig assembles a SimilarityCache.
type SimilarityConfig struct {
	// Capacity is the byte budget of the underlying store.
	Capacity int64
	// Policy is the eviction policy (NewLRU() when nil).
	Policy Policy
	// Index matches vector descriptors (feature.NewLinear() when nil).
	Index feature.Index
	// Threshold is the maximum L2 distance at which two unit-norm
	// descriptors are treated as the same computation.
	Threshold float64
	// StoreOptions pass through to the store (clock, TTL).
	StoreOptions []StoreOption
	// Shards stripes the store for lock-free-ish concurrent access
	// (ShardedStore). 0 or 1 keeps the single-mutex Store. Sharding
	// requires PolicyFactory (or neither policy field set) — a single
	// Policy instance cannot be shared across stripes.
	Shards int
	// PolicyFactory builds one eviction policy per stripe when Shards > 1
	// (NewLRU when nil). Ignored for the unsharded store.
	PolicyFactory func() Policy
}

// NewSimilarity builds the cache. The store's eviction callback is wired
// to keep the vector index consistent with residency.
func NewSimilarity(cfg SimilarityConfig) *SimilarityCache {
	if cfg.Index == nil {
		cfg.Index = feature.NewLinear()
	}
	sc := &SimilarityCache{
		index:     cfg.Index,
		threshold: cfg.Threshold,
		ids:       map[string]uint64{},
		keys:      map[uint64]string{},
		descs:     map[string][]byte{},
	}
	opts := append([]StoreOption{WithOnEvict(sc.dropKey)}, cfg.StoreOptions...)
	if cfg.Shards > 1 {
		if cfg.Policy != nil {
			panic("cache: sharded store needs PolicyFactory, not a shared Policy")
		}
		factory := cfg.PolicyFactory
		if factory == nil {
			factory = NewLRU
		}
		sc.store = NewSharded(cfg.Capacity, cfg.Shards, factory, opts...)
		return sc
	}
	if cfg.Policy == nil {
		if cfg.PolicyFactory != nil {
			cfg.Policy = cfg.PolicyFactory()
		} else {
			cfg.Policy = NewLRU()
		}
	}
	sc.store = NewStore(cfg.Capacity, cfg.Policy, opts...)
	return sc
}

// dropKey unlinks an evicted store key from the vector index. Called by
// the store outside its lock.
func (sc *SimilarityCache) dropKey(key string) {
	sc.mu.Lock()
	delete(sc.descs, key)
	id, ok := sc.ids[key]
	if ok {
		delete(sc.ids, key)
		delete(sc.keys, id)
	}
	sc.mu.Unlock()
	if ok {
		sc.index.Remove(id)
	}
}

// Lookup resolves a descriptor to a cached value. Exact key matches win;
// vector descriptors then fall back to nearest-neighbour search within the
// threshold.
func (sc *SimilarityCache) Lookup(desc feature.Descriptor) ([]byte, LookupResult) {
	sc.mu.Lock()
	sc.queries++
	sc.mu.Unlock()
	if v, ok := sc.store.Get(desc.Key()); ok {
		sc.mu.Lock()
		sc.exactHit++
		sc.mu.Unlock()
		return v, LookupResult{Outcome: OutcomeExact, Key: desc.Key()}
	}
	if desc.Kind != feature.KindVector {
		return nil, LookupResult{Outcome: OutcomeMiss}
	}
	id, dist, ok := sc.index.Nearest(desc.Vec)
	if !ok || dist > sc.threshold {
		return nil, LookupResult{Outcome: OutcomeMiss}
	}
	sc.mu.Lock()
	key, known := sc.keys[id]
	sc.mu.Unlock()
	if !known {
		return nil, LookupResult{Outcome: OutcomeMiss}
	}
	v, ok := sc.store.Get(key)
	if !ok {
		// Entry raced out between index lookup and fetch; treat as miss.
		return nil, LookupResult{Outcome: OutcomeMiss}
	}
	sc.mu.Lock()
	sc.simHits++
	sc.mu.Unlock()
	return v, LookupResult{Outcome: OutcomeSimilar, Distance: dist, Key: key}
}

// QueryStats reports logical lookup counters: total queries, exact hits
// and similarity hits. HitRatio for experiments is
// (exact+similar)/queries.
func (sc *SimilarityCache) QueryStats() (queries, exact, similar uint64) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.queries, sc.exactHit, sc.simHits
}

// Insert caches value under the descriptor with a recomputation-cost hint
// for cost-aware policies. Vector descriptors are also registered in the
// similarity index. Returns ErrTooLarge when the value can never fit.
func (sc *SimilarityCache) Insert(desc feature.Descriptor, value []byte, cost float64) error {
	key := desc.Key()
	descBytes, derr := desc.Marshal()
	if derr != nil {
		return derr
	}
	sc.mu.Lock()
	sc.descs[key] = descBytes
	sc.mu.Unlock()
	var id uint64
	isVec := desc.Kind == feature.KindVector
	if isVec {
		sc.mu.Lock()
		if old, ok := sc.ids[key]; ok {
			// Re-insert under the same key: retire the old vector id.
			delete(sc.keys, old)
			sc.index.Remove(old)
		}
		sc.nextID++
		id = sc.nextID
		sc.ids[key] = id
		sc.keys[id] = key
		sc.mu.Unlock()
		sc.index.Add(id, desc.Vec)
	}
	if err := sc.store.Put(key, value, cost); err != nil {
		if isVec {
			sc.dropKey(key)
		}
		return err
	}
	return nil
}

// Stats reports raw store counters plus the similarity-hit count. Note
// the store counts operations, not logical queries — use QueryStats for
// hit ratios.
func (sc *SimilarityCache) Stats() (Stats, uint64) {
	sc.mu.Lock()
	sim := sc.simHits
	sc.mu.Unlock()
	return sc.store.Stats(), sim
}

// StatsSnapshot is one coherent reading of the cache's counters: the raw
// store operation counters alongside the logical query counters, plus the
// store's capacity. See SimilarityCache.StatsSnapshot for the epoch
// guarantee.
type StatsSnapshot struct {
	Store       Stats
	Capacity    int64
	Queries     uint64
	ExactHits   uint64
	SimilarHits uint64
}

// StatsSnapshot reads the store counters and the logical query counters
// in a single acquisition of the cache mutex. The separate
// Stats()+QueryStats() pair takes the mutex twice, so lookups landing
// between the two calls skew one side against the other — a test that
// asserts Queries against Store.Hits+Store.Misses would flake under
// concurrent traffic. One epoch removes that cross-call drift; a lookup
// still mid-flight (queries bumped, store operation not yet issued) is
// the only residual motion a snapshot can observe.
func (sc *SimilarityCache) StatsSnapshot() StatsSnapshot {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return StatsSnapshot{
		Store:       sc.store.Stats(),
		Capacity:    sc.store.Capacity(),
		Queries:     sc.queries,
		ExactHits:   sc.exactHit,
		SimilarHits: sc.simHits,
	}
}

// Store exposes the underlying store for capacity/len inspection.
func (sc *SimilarityCache) Store() Backend { return sc.store }

// Threshold reports the configured similarity threshold.
func (sc *SimilarityCache) Threshold() float64 { return sc.threshold }

// IndexLen reports how many vectors the similarity index holds; tests use
// it to assert index/store consistency.
func (sc *SimilarityCache) IndexLen() int { return sc.index.Len() }
