package cache

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/edge-immersion/coic/internal/feature"
)

// Snapshot/Restore persist a SimilarityCache so an edge restart does not
// throw away the community's accumulated IC results (a cold edge punishes
// every user with cloud round trips until the cache refills).
//
// Format ("CSNP"):
//
//	magic "CSNP" | version u16 | count u32
//	per entry: descLen u32, desc bytes, valueLen u32, value bytes, cost f64
//	crc32 (IEEE, over everything before it)
//
// Only entries whose descriptor was retained can be persisted; the cache
// keeps the marshalled descriptor per key for exactly this purpose.

const (
	snapMagic   = "CSNP"
	snapVersion = 1
)

// ErrBadSnapshot is wrapped by Restore failures.
var ErrBadSnapshot = errors.New("cache: malformed snapshot")

// Snapshot writes all resident entries. Iteration order follows the
// stored key order (map order), which is fine: Restore re-inserts
// entries individually and the eviction policy re-ranks them.
func (sc *SimilarityCache) Snapshot(w io.Writer) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))

	sc.mu.Lock()
	keys := make([]string, 0, len(sc.descs))
	for k := range sc.descs {
		keys = append(keys, k)
	}
	sc.mu.Unlock()

	type entry struct {
		desc, value []byte
		cost        float64
	}
	var entries []entry
	for _, k := range keys {
		sc.mu.Lock()
		desc := sc.descs[k]
		sc.mu.Unlock()
		if desc == nil {
			continue
		}
		value, ok := sc.store.Get(k)
		if !ok {
			continue // evicted between listing and reading
		}
		meta, _ := sc.store.Meta(k)
		entries = append(entries, entry{desc: desc, value: value, cost: meta.Cost})
	}

	if _, err := bw.WriteString(snapMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(snapVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(entries))); err != nil {
		return err
	}
	for _, e := range entries {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(e.desc))); err != nil {
			return err
		}
		if _, err := bw.Write(e.desc); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(e.value))); err != nil {
			return err
		}
		if _, err := bw.Write(e.value); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, e.cost); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// Restore inserts every snapshot entry into the cache (on top of whatever
// is already resident). It verifies the trailing CRC before touching the
// cache, so a corrupt snapshot cannot half-apply.
func (sc *SimilarityCache) Restore(r io.Reader) (int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, fmt.Errorf("%w: read: %v", ErrBadSnapshot, err)
	}
	if len(data) < 14 {
		return 0, fmt.Errorf("%w: %d bytes", ErrBadSnapshot, len(data))
	}
	payload, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(tail) {
		return 0, fmt.Errorf("%w: crc mismatch", ErrBadSnapshot)
	}
	if string(payload[:4]) != snapMagic {
		return 0, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if v := binary.LittleEndian.Uint16(payload[4:]); v != snapVersion {
		return 0, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, v)
	}
	count := binary.LittleEndian.Uint32(payload[6:])
	off := 10

	take := func(n int) ([]byte, error) {
		if n < 0 || off+n > len(payload) {
			return nil, fmt.Errorf("%w: truncated at %d", ErrBadSnapshot, off)
		}
		b := payload[off : off+n]
		off += n
		return b, nil
	}
	restored := 0
	for i := uint32(0); i < count; i++ {
		lenBytes, err := take(4)
		if err != nil {
			return restored, err
		}
		descBytes, err := take(int(binary.LittleEndian.Uint32(lenBytes)))
		if err != nil {
			return restored, err
		}
		lenBytes, err = take(4)
		if err != nil {
			return restored, err
		}
		value, err := take(int(binary.LittleEndian.Uint32(lenBytes)))
		if err != nil {
			return restored, err
		}
		costBytes, err := take(8)
		if err != nil {
			return restored, err
		}
		desc, err := feature.Unmarshal(descBytes)
		if err != nil {
			return restored, fmt.Errorf("%w: entry %d: %v", ErrBadSnapshot, i, err)
		}
		cost := float64frombits(binary.LittleEndian.Uint64(costBytes))
		if err := sc.Insert(desc, value, cost); err != nil {
			// Entry no longer fits (smaller capacity than the snapshot's
			// source); skip rather than fail the whole restore.
			continue
		}
		restored++
	}
	if off != len(payload) {
		return restored, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(payload)-off)
	}
	return restored, nil
}

// float64frombits mirrors math.Float64frombits without pulling math into
// the hot import path twice.
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
