package cache

import (
	"bytes"
	"testing"

	"github.com/edge-immersion/coic/internal/feature"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := newSim(1<<20, 0.12)
	descs := []feature.Descriptor{
		feature.NewHash([]byte("model-1")),
		feature.NewHash([]byte("pano-7")),
		feature.NewVector([]float32{1, 0, 0}),
		feature.NewVector([]float32{0, 1, 0}),
	}
	for i, d := range descs {
		if err := src.Insert(d, []byte{byte(i), byte(i + 1)}, float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst := newSim(1<<20, 0.12)
	n, err := dst.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(descs) {
		t.Fatalf("restored %d of %d", n, len(descs))
	}
	// Exact and similarity lookups both work on the restored cache.
	for i, d := range descs {
		v, res := dst.Lookup(d)
		if res.Outcome != OutcomeExact || v[0] != byte(i) {
			t.Fatalf("entry %d: %v %v", i, res.Outcome, v)
		}
	}
	if _, res := dst.Lookup(feature.NewVector([]float32{0.999, 0.03, 0})); res.Outcome != OutcomeSimilar {
		t.Fatalf("similarity lost across snapshot: %v", res.Outcome)
	}
	if dst.IndexLen() != 2 {
		t.Fatalf("index holds %d vectors, want 2", dst.IndexLen())
	}
}

func TestSnapshotSurvivesEvictionChurn(t *testing.T) {
	src := newSim(64, 0.1) // tiny: only the most recent entries stay
	for i := 0; i < 20; i++ {
		src.Insert(feature.NewHash([]byte{byte(i)}), val(16), 1)
	}
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := newSim(64, 0.1)
	n, err := dst.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != src.Store().Len() {
		t.Fatalf("restored %d, source holds %d", n, src.Store().Len())
	}
}

func TestRestoreIntoSmallerCacheSkips(t *testing.T) {
	src := newSim(1<<20, 0.1)
	src.Insert(feature.NewHash([]byte("big")), val(1000), 1)
	src.Insert(feature.NewHash([]byte("small")), val(10), 1)
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := newSim(100, 0.1) // big entry cannot fit
	n, err := dst.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d, want 1 (oversized entry skipped)", n)
	}
}

func TestRestoreRejectsCorruption(t *testing.T) {
	src := newSim(1<<20, 0.1)
	src.Insert(feature.NewHash([]byte("x")), []byte("v"), 1)
	var buf bytes.Buffer
	src.Snapshot(&buf)
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)-3],
		"bit flip":  flipByte(good, 8),
		"bad magic": flipByte(good, 0),
	}
	for name, data := range cases {
		dst := newSim(1<<20, 0.1)
		if _, err := dst.Restore(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
		if dst.Store().Len() != 0 {
			t.Errorf("%s: corrupt snapshot partially applied", name)
		}
	}
}

func flipByte(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0xFF
	return c
}

func TestSnapshotEmptyCache(t *testing.T) {
	src := newSim(1024, 0.1)
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := newSim(1024, 0.1)
	n, err := dst.Restore(&buf)
	if err != nil || n != 0 {
		t.Fatalf("empty snapshot: n=%d err=%v", n, err)
	}
}
