package cache

import (
	"context"
	"testing"
	"time"

	"github.com/edge-immersion/coic/internal/feature"
)

func migratorCache(t *testing.T, n int) *SimilarityCache {
	t.Helper()
	sc := NewSimilarity(SimilarityConfig{Capacity: 1 << 20})
	for i := 0; i < n; i++ {
		if err := sc.Insert(descForTest(i), []byte{byte(i)}, 1); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return sc
}

func TestForEachResidentVisitsAll(t *testing.T) {
	sc := migratorCache(t, 16)
	seen := map[string]bool{}
	sc.ForEachResident(func(desc feature.Descriptor, value []byte, cost float64) bool {
		if len(value) != 1 || cost != 1 {
			t.Fatalf("entry %q: value %v cost %v", desc.Key(), value, cost)
		}
		seen[desc.Key()] = true
		return true
	})
	if len(seen) != 16 {
		t.Fatalf("visited %d entries, want 16", len(seen))
	}
	// Early stop honoured.
	visits := 0
	sc.ForEachResident(func(feature.Descriptor, []byte, float64) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("early stop visited %d", visits)
	}
}

// A join sweep must push exactly the keys whose owner set gained the new
// node, and nothing else.
func TestMigratorSweepPushesMovedKeys(t *testing.T) {
	sc := migratorCache(t, 64)
	prev := NewRingVersion([]string{"self", "a"}, 0, 1)
	next := NewRingVersion([]string{"self", "a", "b"}, 0, 2)
	fed := NewFederation("self", next)
	pa, pb := &fakePeer{}, &fakePeer{}
	fed.AddPeer("a", pa.peer())
	fed.AddPeer("b", pb.peer())

	want := 0
	for i := 0; i < 64; i++ {
		if next.Owner(descForTest(i).Key()) == "b" {
			want++
		}
	}
	if want == 0 {
		t.Fatal("degenerate sweep: no key moved to the joiner")
	}

	m := NewMigrator(sc, fed, 0)
	moved := m.Sweep(context.Background(), prev)
	if moved != want {
		t.Fatalf("sweep moved %d keys, want %d", moved, want)
	}
	if pb.inserts != want {
		t.Fatalf("joiner received %d inserts, want %d", pb.inserts, want)
	}
	if pa.inserts != 0 {
		t.Fatalf("unchanged owner received %d inserts", pa.inserts)
	}
	if m.Migrated() != uint64(want) {
		t.Fatalf("Migrated = %d, want %d", m.Migrated(), want)
	}

	// A second sweep against the now-current ring moves nothing.
	if again := m.Sweep(context.Background(), next); again != 0 {
		t.Fatalf("idempotent sweep moved %d keys", again)
	}
}

// Drain pushes co-owned keys to the successors promoted by our
// departure; keys we neither own nor replicate stay put.
func TestMigratorDrainPromotesSuccessors(t *testing.T) {
	sc := migratorCache(t, 64)
	ring := NewRingVersion([]string{"self", "a", "b"}, 0, 1)
	fed := NewFederation("self", ring)
	fed.SetReplication(2)
	pa, pb := &fakePeer{}, &fakePeer{}
	fed.AddPeer("a", pa.peer())
	fed.AddPeer("b", pb.peer())

	next := ring.Without("self")
	want := 0
	for i := 0; i < 64; i++ {
		key := descForTest(i).Key()
		owners := ring.OwnersFor(key, 2)
		if !containsOwner(owners, "self") {
			continue
		}
		if len(ownerDiff(next.OwnersFor(key, 2), owners)) > 0 {
			want++
		}
	}
	if want == 0 {
		t.Fatal("degenerate drain: no key needs promotion")
	}

	m := NewMigrator(sc, fed, 0)
	if moved := m.Drain(context.Background()); moved != want {
		t.Fatalf("drain moved %d keys, want %d", moved, want)
	}
	if pa.inserts+pb.inserts != want {
		t.Fatalf("survivors received %d inserts, want %d", pa.inserts+pb.inserts, want)
	}
}

// The rate limit must pace pushes, and a dead context must stop the walk.
func TestMigratorRateLimitAndCancel(t *testing.T) {
	sc := migratorCache(t, 32)
	ring := NewRingVersion([]string{"self", "a"}, 0, 2)
	fed := NewFederation("self", ring)
	pa := &fakePeer{}
	fed.AddPeer("a", pa.peer())

	// Unthrottled baseline: everything owned by "a" moves.
	baseline := NewMigrator(sc, fed, 0).Sweep(context.Background(), nil)
	if baseline < 2 {
		t.Fatalf("baseline sweep moved %d keys; fixture too small", baseline)
	}

	// 10 keys/s with the baseline's key count cannot finish inside 50ms.
	m := NewMigrator(sc, fed, 10)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	moved := m.Sweep(ctx, nil)
	if moved >= baseline {
		t.Fatalf("rate-limited sweep moved all %d keys within %v", moved, time.Since(start))
	}

	// Pre-cancelled context moves nothing.
	dead, kill := context.WithCancel(context.Background())
	kill()
	if moved := NewMigrator(sc, fed, 0).Sweep(dead, nil); moved != 0 {
		t.Fatalf("cancelled sweep moved %d keys", moved)
	}
}
