package netsim

import (
	"testing"
	"time"
)

// BenchmarkLinkTransfer measures the analytic link model's per-transfer
// cost — it must stay trivial, since trace replays call it millions of
// times.
func BenchmarkLinkTransfer(b *testing.B) {
	l := NewLink(Config{Name: "b", BandwidthBPS: Mbps(200), PropDelay: time.Millisecond})
	at := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at = l.Transfer(at, 1500)
	}
}

// BenchmarkParseTC measures the tc-spec parser used on daemon startup.
func BenchmarkParseTC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseTC("rate 90mbit delay 5ms jitter 1ms loss 0.5%"); err != nil {
			b.Fatal(err)
		}
	}
}
