package netsim

import (
	"fmt"
	"time"
)

// This file models the edge↔edge network of a cache federation. Edges in
// the same metro sit on fat, short links (a LAN or a metro fibre ring) —
// that asymmetry against the thin edge↔cloud WAN uplink is exactly why a
// peer hop is worth taking before a cloud fetch.

// PeerCondition describes the links between federated edges.
type PeerCondition struct {
	// BandwidthMbps is the edge↔edge bandwidth, per direction.
	BandwidthMbps float64
	// PropDelay is the one-way edge↔edge propagation delay.
	PropDelay time.Duration
}

// DefaultPeerCondition is a metro-area edge federation: 1 Gbps links with
// 2 ms one-way delay — far cheaper than the 10 ms, tens-of-Mbps WAN hop
// to the cloud, but far from free.
func DefaultPeerCondition() PeerCondition {
	return PeerCondition{BandwidthMbps: 1000, PropDelay: 2 * time.Millisecond}
}

// EstimateCost reports the virtual time `bytes` take to cross the link
// ignoring FIFO queueing: serialisation plus propagation, no state
// mutated. Peer hops use this instead of Transfer because a federated
// lookup is issued from inside an edge (which has no notion of absolute
// virtual time) and edge↔edge links are fat enough that queueing is a
// second-order effect there.
func (l *Link) EstimateCost(bytes int) time.Duration {
	return l.SerialisationDelay(bytes) + l.cfg.PropDelay
}

// Mesh is the full edge↔edge interconnect of a federation: one duplex
// link per ordered pair of edges, all built from the same PeerCondition.
type Mesh struct {
	n     int
	links map[[2]int]*Duplex
}

// NewMesh builds the interconnect for n edges. It panics on n < 1 (a
// construction bug).
func NewMesh(n int, cond PeerCondition, seed uint64) *Mesh {
	if n < 1 {
		panic(fmt.Sprintf("netsim: mesh needs at least one edge, got %d", n))
	}
	m := &Mesh{n: n, links: map[[2]int]*Duplex{}}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := NewDuplex(fmt.Sprintf("edge%d<->edge%d", i, j),
				Mbps(cond.BandwidthMbps), Mbps(cond.BandwidthMbps),
				cond.PropDelay, 0, seed+uint64(i*n+j))
			m.links[[2]int{i, j}] = &d
		}
	}
	return m
}

// Link returns the duplex link between edges i and j (order-insensitive).
// It panics when i == j or either index is out of range.
func (m *Mesh) Link(i, j int) *Duplex {
	if i == j || i < 0 || j < 0 || i >= m.n || j >= m.n {
		panic(fmt.Sprintf("netsim: no mesh link %d<->%d in a %d-edge mesh", i, j, m.n))
	}
	if j < i {
		i, j = j, i
	}
	return m.links[[2]int{i, j}]
}

// Size reports the number of edges the mesh connects.
func (m *Mesh) Size() int { return m.n }

// Reset clears queueing state on every link.
func (m *Mesh) Reset() {
	for _, d := range m.links {
		d.Reset()
	}
}
