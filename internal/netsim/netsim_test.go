package netsim

import (
	"bytes"
	"net"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2018, 8, 20, 0, 0, 0, 0, time.UTC)

func TestSerialisationDelayExact(t *testing.T) {
	l := NewLink(Config{Name: "l", BandwidthBPS: Mbps(8)}) // 1 MB/s
	if got := l.SerialisationDelay(1_000_000); got != time.Second {
		t.Fatalf("1MB at 8Mbps = %v, want 1s", got)
	}
	if got := l.SerialisationDelay(0); got != 0 {
		t.Fatalf("0 bytes = %v", got)
	}
}

func TestTransferIncludesPropagation(t *testing.T) {
	l := NewLink(Config{Name: "l", BandwidthBPS: Mbps(8), PropDelay: 50 * time.Millisecond})
	done := l.Transfer(t0, 1_000_000)
	want := t0.Add(time.Second + 50*time.Millisecond)
	if !done.Equal(want) {
		t.Fatalf("done = %v, want %v", done, want)
	}
}

func TestFIFOQueueing(t *testing.T) {
	l := NewLink(Config{Name: "l", BandwidthBPS: Mbps(8)})
	first := l.Transfer(t0, 1_000_000)  // finishes at t0+1s
	second := l.Transfer(t0, 1_000_000) // must queue behind the first
	if !first.Equal(t0.Add(time.Second)) {
		t.Fatalf("first = %v", first)
	}
	if !second.Equal(t0.Add(2 * time.Second)) {
		t.Fatalf("second = %v, want t0+2s (queued)", second)
	}
	// A transfer arriving after the queue drains starts immediately.
	third := l.Transfer(t0.Add(10*time.Second), 1_000_000)
	if !third.Equal(t0.Add(11 * time.Second)) {
		t.Fatalf("third = %v", third)
	}
}

func TestLossInflatesTransferTime(t *testing.T) {
	clean := NewLink(Config{Name: "c", BandwidthBPS: Mbps(8)})
	lossy := NewLink(Config{Name: "l", BandwidthBPS: Mbps(8), LossRate: 0.5})
	tc := clean.Transfer(t0, 1_000_000)
	tl := lossy.Transfer(t0, 1_000_000)
	if !tl.After(tc) {
		t.Fatal("50% loss did not slow the transfer")
	}
	ratio := tl.Sub(t0).Seconds() / tc.Sub(t0).Seconds()
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("loss inflation ratio = %v, want ~2", ratio)
	}
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	mk := func() *Link {
		return NewLink(Config{Name: "j", BandwidthBPS: Mbps(100), Jitter: 10 * time.Millisecond, Seed: 7})
	}
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		ta := a.Transfer(at, 100)
		tb := b.Transfer(at, 100)
		if !ta.Equal(tb) {
			t.Fatal("equal seeds produced different jitter")
		}
		base := at.Add(a.SerialisationDelay(100))
		if ta.Before(base) || ta.After(base.Add(10*time.Millisecond)) {
			t.Fatalf("jitter out of bounds: %v vs base %v", ta, base)
		}
	}
}

func TestTransferMonotonicProperty(t *testing.T) {
	// Arrival is never before departure plus the minimum possible time;
	// and consecutive queued transfers never reorder.
	f := func(sizes []uint16) bool {
		l := NewLink(Config{Name: "p", BandwidthBPS: Mbps(10), PropDelay: time.Millisecond})
		prevDone := time.Time{}
		at := t0
		for _, s := range sizes {
			done := l.Transfer(at, int(s))
			if done.Before(at.Add(l.cfg.PropDelay)) {
				return false
			}
			if !prevDone.IsZero() && done.Before(prevDone) {
				return false
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkCountersAndReset(t *testing.T) {
	l := NewLink(Config{Name: "c", BandwidthBPS: Mbps(8)})
	l.Transfer(t0, 500)
	l.Transfer(t0, 500)
	n, b, busy := l.Counters()
	if n != 2 || b != 1000 || busy <= 0 {
		t.Fatalf("counters = %d %d %v", n, b, busy)
	}
	l.Reset()
	n, b, _ = l.Counters()
	if n != 0 || b != 0 {
		t.Fatal("Reset left counters")
	}
	// After reset the queue is empty again.
	if done := l.Transfer(t0, 1000); done.After(t0.Add(time.Second)) {
		t.Fatal("Reset left queue state")
	}
}

func TestPathStoreAndForward(t *testing.T) {
	a := NewLink(Config{Name: "a", BandwidthBPS: Mbps(8)})
	b := NewLink(Config{Name: "b", BandwidthBPS: Mbps(4)})
	p := Path{a, b}
	done := p.Transfer(t0, 1_000_000)
	// 1s on a, then 2s on b.
	if !done.Equal(t0.Add(3 * time.Second)) {
		t.Fatalf("path arrival = %v, want t0+3s", done)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Name: "x", BandwidthBPS: 0},
		{Name: "x", BandwidthBPS: 1, PropDelay: -time.Second},
		{Name: "x", BandwidthBPS: 1, LossRate: 1},
		{Name: "x", BandwidthBPS: 1, LossRate: -0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestFig2aConditions(t *testing.T) {
	conds := Fig2aConditions()
	if len(conds) != 5 {
		t.Fatalf("%d conditions, want 5", len(conds))
	}
	for _, c := range conds {
		if c.EdgeCloud*10 != c.MobileEdge {
			t.Fatalf("condition %s: edge-cloud not a tenth of mobile-edge", c.Name)
		}
	}
	if conds[0].String() != "BM->E=90 BE->C=9" {
		t.Fatalf("label = %q", conds[0].String())
	}
}

func TestTopology(t *testing.T) {
	topo := NewTopology(Fig2aConditions()[2], 1) // 200/20
	up := topo.MobileEdge.Up.Transfer(t0, 2_000_000)
	// 2MB at 200Mbps = 80ms (+1ms prop).
	want := t0.Add(80*time.Millisecond + time.Millisecond)
	if !up.Equal(want) {
		t.Fatalf("mobile->edge = %v, want %v", up, want)
	}
	topo.Reset()
	if n, _, _ := topo.MobileEdge.Up.Counters(); n != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestParseTC(t *testing.T) {
	cfg, err := ParseTC("rate 90mbit delay 5ms jitter 1ms loss 0.5% seed 9")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BandwidthBPS != 90_000_000 || cfg.PropDelay != 5*time.Millisecond ||
		cfg.Jitter != time.Millisecond || cfg.LossRate != 0.005 || cfg.Seed != 9 {
		t.Fatalf("parsed %+v", cfg)
	}
	if _, err := ParseTC("rate 1gbit"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"", "rate", "rate 90", "speed 90mbit", "rate 90mbit loss 100%",
		"rate -5mbit", "delay 5ms", // missing rate
	} {
		if _, err := ParseTC(bad); err == nil {
			t.Errorf("ParseTC(%q) accepted", bad)
		}
	}
}

func TestShaperPacesWrites(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	shaped := NewShaper(c1, 800_000, 0) // 100 KB/s
	payload := bytes.Repeat([]byte("x"), 30_000)

	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, len(payload))
		total := 0
		for total < len(buf) {
			n, err := c2.Read(buf[total:])
			total += n
			if err != nil {
				break
			}
		}
		done <- buf[:total]
	}()

	start := time.Now()
	if _, err := shaped.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := <-done
	elapsed := time.Since(start)
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted by shaper")
	}
	// 30KB at 100KB/s with a 64KB initial bucket: the bucket covers the
	// whole payload... so use expectation from token math: initial 64KB
	// tokens > 30KB means no wait. Assert only sanity here.
	if elapsed > 2*time.Second {
		t.Fatalf("write took %v", elapsed)
	}
}

func TestShaperRateRoughlyHonoured(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	shaped := NewShaper(c1, 1_600_000, 0) // 200 KB/s
	payload := bytes.Repeat([]byte("y"), 200_000)

	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := c2.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if _, err := shaped.Write(payload); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 200KB minus the 64KB initial bucket = ~136KB at 200KB/s ≈ 0.68s.
	if elapsed < 400*time.Millisecond {
		t.Fatalf("200KB at 200KB/s finished in %v — not shaped", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("shaping too slow: %v", elapsed)
	}
}

func TestMbps(t *testing.T) {
	if Mbps(90) != 90_000_000 {
		t.Fatalf("Mbps(90) = %d", Mbps(90))
	}
}
