package netsim

import (
	"net"
	"sync"
	"time"

	"github.com/edge-immersion/coic/internal/clock"
)

// Shaper paces writes on a real net.Conn with a token bucket, emulating
// tc-tbf for the cmd/ daemons. Reads pass through untouched (shape each
// direction at its sender). An optional per-write latency models one-way
// propagation delay at message granularity: the wire protocol writes each
// frame with a single Write call, so the delay applies once per message,
// which is the granularity the analytic links use too.
type Shaper struct {
	net.Conn
	mu      sync.Mutex
	rateBPS int64
	burst   int64 // bucket depth in bytes
	tokens  float64
	last    time.Time
	delay   time.Duration
	clk     clock.Clock
}

// NewShaper wraps conn with a rate limit (bits/s) and a per-message
// delay. rateBPS <= 0 means unshaped. The default burst is 64KB.
func NewShaper(conn net.Conn, rateBPS int64, delay time.Duration) *Shaper {
	return &Shaper{
		Conn:    conn,
		rateBPS: rateBPS,
		burst:   64 << 10,
		tokens:  float64(64 << 10),
		last:    time.Now(),
		delay:   delay,
		clk:     clock.Real{},
	}
}

// Write paces p onto the wire. Large writes are split so a multi-megabyte
// model cannot burst through in one bucket refill.
func (s *Shaper) Write(p []byte) (int, error) {
	if s.delay > 0 {
		s.clk.Sleep(s.delay)
	}
	if s.rateBPS <= 0 {
		return s.Conn.Write(p)
	}
	written := 0
	for written < len(p) {
		chunk := len(p) - written
		if chunk > int(s.burst) {
			chunk = int(s.burst)
		}
		s.waitFor(int64(chunk))
		n, err := s.Conn.Write(p[written : written+chunk])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// waitFor blocks until `bytes` tokens are available, then consumes them.
func (s *Shaper) waitFor(bytes int64) {
	for {
		s.mu.Lock()
		now := s.clk.Now()
		elapsed := now.Sub(s.last).Seconds()
		s.last = now
		s.tokens += elapsed * float64(s.rateBPS) / 8
		if s.tokens > float64(s.burst) {
			s.tokens = float64(s.burst)
		}
		if s.tokens >= float64(bytes) {
			s.tokens -= float64(bytes)
			s.mu.Unlock()
			return
		}
		deficit := float64(bytes) - s.tokens
		wait := time.Duration(deficit * 8 / float64(s.rateBPS) * float64(time.Second))
		s.mu.Unlock()
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		s.clk.Sleep(wait)
	}
}

// EffectiveRate reports the configured rate in bits per second (0 =
// unshaped), for logging.
func (s *Shaper) EffectiveRate() int64 { return s.rateBPS }
