package netsim

import (
	"testing"
	"time"
)

func TestMeshLinksAllPairs(t *testing.T) {
	m := NewMesh(4, DefaultPeerCondition(), 7)
	if m.Size() != 4 {
		t.Fatalf("size = %d", m.Size())
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			if m.Link(i, j) == nil {
				t.Fatalf("no link %d<->%d", i, j)
			}
			if m.Link(i, j) != m.Link(j, i) {
				t.Fatalf("link %d<->%d not order-insensitive", i, j)
			}
		}
	}
}

func TestMeshRejectsBadIndices(t *testing.T) {
	m := NewMesh(2, DefaultPeerCondition(), 1)
	for _, pair := range [][2]int{{0, 0}, {-1, 0}, {0, 2}} {
		pair := pair
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Link(%d,%d) must panic", pair[0], pair[1])
				}
			}()
			m.Link(pair[0], pair[1])
		}()
	}
}

func TestEstimateCostIsStateless(t *testing.T) {
	l := NewLink(Config{Name: "peer", BandwidthBPS: Mbps(1000), PropDelay: 2 * time.Millisecond})
	// 1 Gbps, 125000 bytes = 1 ms serialisation + 2 ms propagation.
	want := 3 * time.Millisecond
	if got := l.EstimateCost(125000); got != want {
		t.Fatalf("cost = %v, want %v", got, want)
	}
	// Estimates never advance queueing state.
	for i := 0; i < 10; i++ {
		l.EstimateCost(125000)
	}
	if transfers, bytes, busy := l.Counters(); transfers != 0 || bytes != 0 || busy != 0 {
		t.Fatalf("EstimateCost mutated link state: %d %d %v", transfers, bytes, busy)
	}
	if got := l.EstimateCost(0); got != 2*time.Millisecond {
		t.Fatalf("zero bytes should cost only propagation, got %v", got)
	}
}
