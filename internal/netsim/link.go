package netsim

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/edge-immersion/coic/internal/xrand"
)

// Mbps converts megabits per second to bits per second.
func Mbps(m float64) int64 { return int64(m * 1e6) }

// Config describes one direction of a link.
type Config struct {
	// Name labels the link in logs ("mobile->edge up").
	Name string
	// BandwidthBPS is the available bandwidth in bits per second.
	BandwidthBPS int64
	// PropDelay is the one-way propagation delay.
	PropDelay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter] per
	// transfer, seeded deterministically.
	Jitter time.Duration
	// LossRate in [0, 1) models packet loss analytically: lost packets
	// are retransmitted, inflating effective serialisation time by
	// 1/(1-loss). (A full TCP model is out of scope; goodput inflation
	// captures the first-order effect on transfer latency.)
	LossRate float64
	// Seed drives jitter; links with equal seeds produce equal jitter
	// sequences.
	Seed uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.BandwidthBPS <= 0 {
		return fmt.Errorf("netsim: %s: bandwidth %d must be positive", c.Name, c.BandwidthBPS)
	}
	if c.PropDelay < 0 || c.Jitter < 0 {
		return fmt.Errorf("netsim: %s: negative delay", c.Name)
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("netsim: %s: loss rate %v outside [0,1)", c.Name, c.LossRate)
	}
	return nil
}

// Link is one direction of a network path with FIFO queueing: a transfer
// arriving while the link is busy waits for earlier transfers to finish
// serialising. Safe for concurrent use.
type Link struct {
	cfg Config

	mu        sync.Mutex
	busyUntil time.Time
	rng       *xrand.RNG
	// counters
	transfers uint64
	bytesSent int64
	busyTime  time.Duration
}

// NewLink builds a link; it panics on invalid configs (experiment
// construction bug, not a runtime condition).
func NewLink(cfg Config) *Link {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Link{cfg: cfg, rng: xrand.New(cfg.Seed ^ 0xC01C)}
}

// Config returns the link's configuration.
func (l *Link) Config() Config { return l.cfg }

// SerialisationDelay reports how long `bytes` occupy the link exclusive
// of queueing and propagation (loss-inflated).
func (l *Link) SerialisationDelay(bytes int) time.Duration {
	if bytes <= 0 {
		return 0
	}
	bits := float64(bytes) * 8 / (1 - l.cfg.LossRate)
	sec := bits / float64(l.cfg.BandwidthBPS)
	return time.Duration(sec * float64(time.Second))
}

// Transfer models sending `bytes` starting no earlier than `at` and
// returns the arrival time at the far end. Queueing state advances, so
// concurrent transfers on the same link contend realistically.
func (l *Link) Transfer(at time.Time, bytes int) time.Time {
	ser := l.SerialisationDelay(bytes)
	l.mu.Lock()
	start := at
	if l.busyUntil.After(start) {
		start = l.busyUntil
	}
	done := start.Add(ser)
	l.busyUntil = done
	l.transfers++
	l.bytesSent += int64(bytes)
	l.busyTime += ser
	jit := time.Duration(0)
	if l.cfg.Jitter > 0 {
		jit = time.Duration(l.rng.Float64() * float64(l.cfg.Jitter))
	}
	l.mu.Unlock()
	return done.Add(l.cfg.PropDelay).Add(jit)
}

// Reset clears queueing state and counters (fresh experiment run).
func (l *Link) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.busyUntil = time.Time{}
	l.transfers, l.bytesSent, l.busyTime = 0, 0, 0
	l.rng = xrand.New(l.cfg.Seed ^ 0xC01C)
}

// Counters reports transfers, bytes and cumulative busy time.
func (l *Link) Counters() (transfers uint64, bytes int64, busy time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.transfers, l.bytesSent, l.busyTime
}

// Duplex pairs the two directions of a link.
type Duplex struct {
	Up   *Link // toward the infrastructure (client->edge, edge->cloud)
	Down *Link // toward the client
}

// NewDuplex builds a symmetric-latency duplex link with independent
// bandwidths.
func NewDuplex(name string, upBPS, downBPS int64, prop, jitter time.Duration, seed uint64) Duplex {
	return Duplex{
		Up: NewLink(Config{
			Name: name + " up", BandwidthBPS: upBPS,
			PropDelay: prop, Jitter: jitter, Seed: seed,
		}),
		Down: NewLink(Config{
			Name: name + " down", BandwidthBPS: downBPS,
			PropDelay: prop, Jitter: jitter, Seed: seed + 1,
		}),
	}
}

// Reset clears both directions.
func (d Duplex) Reset() {
	d.Up.Reset()
	d.Down.Reset()
}

// Path is a chain of links traversed store-and-forward at message
// granularity (each hop must fully receive the message before relaying —
// how the CoIC edge actually behaves, since it inspects every message).
type Path []*Link

// Transfer relays `bytes` across every hop and returns the final arrival.
func (p Path) Transfer(at time.Time, bytes int) time.Time {
	t := at
	for _, l := range p {
		t = l.Transfer(t, bytes)
	}
	return t
}

// Condition is a named (B_M→E, B_E→C) bandwidth pair from the paper's
// Figure 2a sweep.
type Condition struct {
	Name       string
	MobileEdge float64 // Mbps between mobile and edge
	EdgeCloud  float64 // Mbps between edge and cloud
}

// Fig2aConditions reproduces the five tc settings of Figure 2a:
// B_M→E ∈ {90,100,200,300,400} with B_E→C always a tenth of it.
func Fig2aConditions() []Condition {
	return []Condition{
		{Name: "90/9", MobileEdge: 90, EdgeCloud: 9},
		{Name: "100/10", MobileEdge: 100, EdgeCloud: 10},
		{Name: "200/20", MobileEdge: 200, EdgeCloud: 20},
		{Name: "300/30", MobileEdge: 300, EdgeCloud: 30},
		{Name: "400/40", MobileEdge: 400, EdgeCloud: 40},
	}
}

// String renders the condition the way the paper labels its x-axis.
func (c Condition) String() string {
	return fmt.Sprintf("BM->E=%.0f BE->C=%.0f", c.MobileEdge, c.EdgeCloud)
}

// Topology is the standard CoIC deployment: clients on a wireless access
// link to one edge, the edge on a WAN uplink to the cloud.
type Topology struct {
	// MobileEdge carries client<->edge traffic (the paper's 802.11ac).
	MobileEdge Duplex
	// EdgeCloud carries edge<->cloud traffic.
	EdgeCloud Duplex
}

// NewTopology instantiates a Topology for a Figure 2a condition. WiFi
// propagation is ~1ms; the WAN hop gets 10ms each way, matching a nearby
// data centre.
func NewTopology(cond Condition, seed uint64) *Topology {
	return &Topology{
		MobileEdge: NewDuplex("mobile<->edge",
			Mbps(cond.MobileEdge), Mbps(cond.MobileEdge), time.Millisecond, 0, seed),
		EdgeCloud: NewDuplex("edge<->cloud",
			Mbps(cond.EdgeCloud), Mbps(cond.EdgeCloud), 10*time.Millisecond, 0, seed+100),
	}
}

// Reset clears all queueing state.
func (t *Topology) Reset() {
	t.MobileEdge.Reset()
	t.EdgeCloud.Reset()
}

// ParseTC parses a tc-netem-flavoured link spec such as
// "rate 90mbit delay 5ms jitter 1ms loss 0.5%". Unknown keys are errors.
// It exists so the cmd/ daemons take the same vocabulary the paper's
// testbed scripts would have used.
func ParseTC(spec string) (Config, error) {
	cfg := Config{Name: "tc"}
	fields := strings.Fields(spec)
	if len(fields) == 0 {
		return Config{}, fmt.Errorf("netsim: empty tc spec")
	}
	if len(fields)%2 != 0 {
		return Config{}, fmt.Errorf("netsim: tc spec %q has a key without a value", spec)
	}
	for i := 0; i < len(fields); i += 2 {
		key, val := fields[i], fields[i+1]
		switch key {
		case "rate":
			bps, err := parseRate(val)
			if err != nil {
				return Config{}, err
			}
			cfg.BandwidthBPS = bps
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil {
				return Config{}, fmt.Errorf("netsim: bad delay %q: %v", val, err)
			}
			cfg.PropDelay = d
		case "jitter":
			d, err := time.ParseDuration(val)
			if err != nil {
				return Config{}, fmt.Errorf("netsim: bad jitter %q: %v", val, err)
			}
			cfg.Jitter = d
		case "loss":
			pct := strings.TrimSuffix(val, "%")
			var f float64
			if _, err := fmt.Sscanf(pct, "%g", &f); err != nil {
				return Config{}, fmt.Errorf("netsim: bad loss %q", val)
			}
			if strings.HasSuffix(val, "%") {
				f /= 100
			}
			cfg.LossRate = f
		case "seed":
			var s uint64
			if _, err := fmt.Sscanf(val, "%d", &s); err != nil {
				return Config{}, fmt.Errorf("netsim: bad seed %q", val)
			}
			cfg.Seed = s
		default:
			return Config{}, fmt.Errorf("netsim: unknown tc key %q", key)
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

func parseRate(val string) (int64, error) {
	val = strings.ToLower(val)
	mult := int64(1)
	switch {
	case strings.HasSuffix(val, "gbit"):
		mult, val = 1e9, strings.TrimSuffix(val, "gbit")
	case strings.HasSuffix(val, "mbit"):
		mult, val = 1e6, strings.TrimSuffix(val, "mbit")
	case strings.HasSuffix(val, "kbit"):
		mult, val = 1e3, strings.TrimSuffix(val, "kbit")
	case strings.HasSuffix(val, "bit"):
		val = strings.TrimSuffix(val, "bit")
	default:
		return 0, fmt.Errorf("netsim: rate %q needs a bit/kbit/mbit/gbit suffix", val)
	}
	var f float64
	if _, err := fmt.Sscanf(val, "%g", &f); err != nil || f <= 0 {
		return 0, fmt.Errorf("netsim: bad rate value %q", val)
	}
	return int64(f * float64(mult)), nil
}
