// Package netsim models the networks between mobile clients, edges and
// the cloud. The paper conditions a real 802.11ac link with tc; here the
// same sweep runs two ways:
//
//   - analytic Links advance a virtual clock: a transfer's completion time
//     is serialisation delay (bytes/bandwidth) queued FIFO behind earlier
//     transfers, plus propagation and jitter. Deterministic and fast —
//     this is what every experiment and benchmark uses;
//   - a token-bucket Shaper (shaper.go) paces a real net.Conn for the
//     cmd/ daemons, playing the role tc plays in the paper's testbed.
//
// A Topology wires the standard three-tier deployment: clients on a
// wireless access link to one edge, the edge on a thin WAN uplink to the
// cloud. A federation adds the edge↔edge interconnect (peer.go): a Mesh
// of fat, short metro links whose cost asymmetry against the WAN uplink
// is what makes a peer cache hop worth taking before a cloud fetch. Peer
// hops are priced with Link.EstimateCost — serialisation plus propagation
// without queueing state — so federated lookups stay deterministic under
// any event interleaving.
package netsim
