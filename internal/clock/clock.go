// Package clock abstracts time so the CoIC simulator can run experiments
// in deterministic virtual time while the TCP daemons run on the wall
// clock. Everything in this repository that needs "now" or "sleep" takes a
// Clock rather than calling the time package directly.
package clock

import (
	"sync"
	"time"
)

// Clock is a minimal time source. Implementations must be safe for
// concurrent use unless documented otherwise.
type Clock interface {
	// Now reports the current instant of this clock.
	Now() time.Time
	// Sleep pauses the caller for d. A virtual clock advances itself
	// instead of blocking the goroutine.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

// Now implements Clock using time.Now.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock using time.Sleep. Negative and zero durations
// return immediately.
func (Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Virtual is a deterministic Clock for simulations. Sleep advances the
// clock immediately instead of blocking, so a single-threaded experiment
// driver can traverse hours of simulated time in microseconds of real
// time. Virtual is safe for concurrent use, but determinism is only
// guaranteed when one goroutine drives it at a time (the discrete-event
// engine in internal/sim enforces this).
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtual returns a Virtual clock positioned at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now reports the current virtual instant.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep advances the virtual clock by d without blocking. Negative
// durations are ignored so the clock never moves backwards.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// Advance is an explicit alias for Sleep, for callers where "advance the
// simulation" reads better than "sleep".
func (v *Virtual) Advance(d time.Duration) { v.Sleep(d) }

// AdvanceTo moves the clock forward to t. Moving backwards is a no-op:
// virtual time, like real time, is monotonic.
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	if t.After(v.now) {
		v.now = t
	}
	v.mu.Unlock()
}
