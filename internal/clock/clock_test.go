package clock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualStartsAtGivenInstant(t *testing.T) {
	start := time.Date(2018, 8, 20, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if got := v.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
}

func TestVirtualSleepAdvances(t *testing.T) {
	start := time.Unix(0, 0)
	v := NewVirtual(start)
	v.Sleep(150 * time.Millisecond)
	if got, want := v.Now(), start.Add(150*time.Millisecond); !got.Equal(want) {
		t.Fatalf("after Sleep: Now() = %v, want %v", got, want)
	}
}

func TestVirtualSleepIgnoresNonPositive(t *testing.T) {
	start := time.Unix(100, 0)
	v := NewVirtual(start)
	v.Sleep(0)
	v.Sleep(-time.Second)
	if got := v.Now(); !got.Equal(start) {
		t.Fatalf("non-positive Sleep moved clock: %v", got)
	}
}

func TestVirtualAdvanceTo(t *testing.T) {
	start := time.Unix(0, 0)
	v := NewVirtual(start)
	target := start.Add(3 * time.Second)
	v.AdvanceTo(target)
	if got := v.Now(); !got.Equal(target) {
		t.Fatalf("AdvanceTo: Now() = %v, want %v", got, target)
	}
	// Backwards is a no-op.
	v.AdvanceTo(start)
	if got := v.Now(); !got.Equal(target) {
		t.Fatalf("AdvanceTo moved backwards: %v", got)
	}
}

func TestVirtualMonotonicProperty(t *testing.T) {
	// Property: any sequence of Sleep calls leaves the clock exactly at
	// start + sum(max(d,0)) and never earlier than where it began.
	f := func(deltas []int32) bool {
		start := time.Unix(1000, 0)
		v := NewVirtual(start)
		var want time.Duration
		for _, d := range deltas {
			dur := time.Duration(d) * time.Microsecond
			v.Sleep(dur)
			if dur > 0 {
				want += dur
			}
		}
		return v.Now().Equal(start.Add(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualConcurrentSleepTotals(t *testing.T) {
	// Concurrent sleeps must all be accounted for (no lost updates).
	v := NewVirtual(time.Unix(0, 0))
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				v.Sleep(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	want := time.Unix(0, 0).Add(workers * perWorker * time.Microsecond)
	if got := v.Now(); !got.Equal(want) {
		t.Fatalf("concurrent sleeps lost updates: Now() = %v, want %v", got, want)
	}
}

func TestRealClockProgresses(t *testing.T) {
	var c Real
	a := c.Now()
	c.Sleep(time.Millisecond)
	b := c.Now()
	if !b.After(a) {
		t.Fatalf("real clock did not progress: %v then %v", a, b)
	}
	c.Sleep(-time.Hour) // must not block
}
