package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram records durations and answers quantile queries. It keeps the
// exact samples (experiments here record at most a few hundred thousand
// points), so quantiles are exact rather than bucket-approximated. The
// zero value is ready to use.
//
// Histogram is NOT safe for concurrent use, deliberately: the simulation
// is single-threaded, the TCP client aggregates after joining its
// workers, and keeping the type lock-free keeps offline experiment loops
// honest about their own cost. Callers that must share one instance
// across goroutines serialise every method — including the read-side
// Quantile/Median/P95/P99, which lazily sort the sample slice in place —
// behind their own mutex. Live servers should not use this type on hot
// paths at all; that is what obs.Histogram (atomic bounded buckets,
// approximate quantiles) exists for. TestHistogramConcurrencyContract
// guards this contract.
type Histogram struct {
	samples []time.Duration
	sorted  bool
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// Record adds one sample. Negative durations are clamped to zero: they can
// only arise from clock misuse and must not corrupt quantiles.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if len(h.samples) == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.sum += d
	h.samples = append(h.samples, d)
	h.sorted = false
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Sum reports the sum of all samples.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Min reports the smallest sample, or 0 if empty.
func (h *Histogram) Min() time.Duration { return h.min }

// Max reports the largest sample, or 0 if empty.
func (h *Histogram) Max() time.Duration { return h.max }

// Mean reports the arithmetic mean, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / time.Duration(len(h.samples))
}

// Quantile reports the q-quantile (0 ≤ q ≤ 1) using nearest-rank on the
// sorted samples. Out-of-range q is clamped. Returns 0 if empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return h.samples[idx]
}

// Median is shorthand for Quantile(0.5).
func (h *Histogram) Median() time.Duration { return h.Quantile(0.5) }

// P95 is shorthand for Quantile(0.95).
func (h *Histogram) P95() time.Duration { return h.Quantile(0.95) }

// P99 is shorthand for Quantile(0.99).
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// StdDev reports the population standard deviation, or 0 if fewer than two
// samples were recorded.
func (h *Histogram) StdDev() time.Duration {
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	mean := float64(h.sum) / float64(n)
	var ss float64
	for _, s := range h.samples {
		d := float64(s) - mean
		ss += d * d
	}
	return time.Duration(math.Sqrt(ss / float64(n)))
}

// Merge folds other's samples into h. other is left untouched.
func (h *Histogram) Merge(other *Histogram) {
	for _, s := range other.samples {
		h.Record(s)
	}
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.sorted = false
	h.sum, h.min, h.max = 0, 0, 0
}

// Summary returns a one-line human-readable digest, handy in examples.
func (h *Histogram) Summary() string {
	if h.Count() == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
		h.Count(), round(h.Mean()), round(h.Median()), round(h.P95()), round(h.P99()), round(h.Max()))
}

// round trims durations to a display-friendly precision.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(time.Microsecond)
	}
}
