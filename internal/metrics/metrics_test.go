package metrics

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if h.Summary() != "no samples" {
		t.Fatalf("Summary = %q", h.Summary())
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, ms := range []int{10, 20, 30, 40, 50} {
		h.Record(time.Duration(ms) * time.Millisecond)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got, want := h.Mean(), 30*time.Millisecond; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	if got, want := h.Min(), 10*time.Millisecond; got != want {
		t.Fatalf("Min = %v, want %v", got, want)
	}
	if got, want := h.Max(), 50*time.Millisecond; got != want {
		t.Fatalf("Max = %v, want %v", got, want)
	}
	if got, want := h.Median(), 30*time.Millisecond; got != want {
		t.Fatalf("Median = %v, want %v", got, want)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample not clamped: min=%v max=%v", h.Min(), h.Max())
	}
}

func TestQuantileMatchesSortedIndex(t *testing.T) {
	// Property: for any non-empty sample set, Quantile(q) equals the
	// nearest-rank element of the sorted samples, and quantiles are
	// monotone in q.
	f := func(raw []uint16, qa, qb float64) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		vals := make([]time.Duration, len(raw))
		for i, r := range raw {
			vals[i] = time.Duration(r) * time.Microsecond
			h.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		clamp := func(q float64) float64 {
			if q < 0 {
				return 0
			}
			if q > 1 {
				return 1
			}
			return q
		}
		qa, qb = clamp(qa), clamp(qb)
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb) &&
			h.Quantile(0) == vals[0] && h.Quantile(1) == vals[len(vals)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(10 * time.Millisecond)
	b.Record(30 * time.Millisecond)
	b.Record(50 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d, want 3", a.Count())
	}
	if got, want := a.Mean(), 30*time.Millisecond; got != want {
		t.Fatalf("merged mean = %v, want %v", got, want)
	}
	if b.Count() != 2 {
		t.Fatal("Merge mutated source histogram")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Sum() != 0 {
		t.Fatal("Reset left residue")
	}
}

func TestStdDev(t *testing.T) {
	var h Histogram
	for _, v := range []time.Duration{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Record(v)
	}
	if got := h.StdDev(); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestQuantileStableUnderInterleavedReads(t *testing.T) {
	// Reading a quantile sorts samples lazily; later Records must still
	// be reflected by subsequent reads.
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		h.Record(time.Duration(rng.Intn(1000)) * time.Microsecond)
		_ = h.Median()
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("Quantile(1)=%v != Max=%v", h.Quantile(1), h.Max())
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tb := NewTable("Fig X", "mode", "latency(ms)")
	tb.AddRow("origin", 1234.5)
	tb.AddRow("hit", 56.7)
	tb.AddNote("threshold=%.2f", 0.25)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig X", "mode", "origin", "1234.50", "56.70", "note: threshold=0.25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header and separator must be equal width for alignment.
	if len(lines) < 3 || len(lines[1]) != len(lines[2]) {
		t.Fatalf("misaligned header/separator:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow(1, "x,y")
	var buf bytes.Buffer
	if err := tb.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestTableJSON(t *testing.T) {
	tb := NewTable("A-qos", "mode", "p99_ms")
	tb.AddRow("fifo", 182.3)
	tb.AddRow("qos", 51.0)
	tb.AddNote("budget 120ms")
	var buf bytes.Buffer
	if err := tb.RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got TableJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("RenderJSON emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if got.Title != "A-qos" || len(got.Columns) != 2 || len(got.Rows) != 2 || len(got.Notes) != 1 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Rows[0][0] != "fifo" || got.Rows[1][1] != "51.00" {
		t.Fatalf("rows = %v", got.Rows)
	}
}

func TestTableRows(t *testing.T) {
	tb := NewTable("t", "a")
	tb.AddRow("v")
	rows := tb.Rows()
	rows[0][0] = "mutated"
	if tb.rows[0][0] != "v" {
		t.Fatal("Rows must return a copy")
	}
}
