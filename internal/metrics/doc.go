// Package metrics provides the measurement substrate for CoIC
// experiments: latency histograms with quantile estimation (the p50/p99
// columns of the experiment tables), per-task QoE scoring curves, and
// aligned-text / CSV table rendering used by cmd/coic-bench to print the
// rows behind every figure in the paper and this reproduction's
// ablations.
package metrics
