package metrics

import (
	"testing"
	"time"
)

func TestQoEScoreBands(t *testing.T) {
	q := QoE{Great: 100 * time.Millisecond, Unusable: 1100 * time.Millisecond}
	if got := q.Score(50 * time.Millisecond); got != 5 {
		t.Fatalf("below knee: %v", got)
	}
	if got := q.Score(100 * time.Millisecond); got != 5 {
		t.Fatalf("at knee: %v", got)
	}
	if got := q.Score(2 * time.Second); got != 1 {
		t.Fatalf("beyond unusable: %v", got)
	}
	// Midpoint: 600ms is halfway through the 1s ramp → score 3.
	if got := q.Score(600 * time.Millisecond); got < 2.99 || got > 3.01 {
		t.Fatalf("midpoint score = %v, want 3", got)
	}
}

func TestQoEMonotoneNonIncreasing(t *testing.T) {
	q := QoERecognition
	prev := 5.01
	for d := time.Duration(0); d <= 4*time.Second; d += 50 * time.Millisecond {
		s := q.Score(d)
		if s > prev {
			t.Fatalf("score rose with latency at %v", d)
		}
		if s < 1 || s > 5 {
			t.Fatalf("score %v out of [1,5]", s)
		}
		prev = s
	}
}

func TestQoEMeanScoreAveragesSamples(t *testing.T) {
	q := QoE{Great: 100 * time.Millisecond, Unusable: 1100 * time.Millisecond}
	var h Histogram
	h.Record(100 * time.Millisecond)  // 5.0
	h.Record(600 * time.Millisecond)  // 3.0
	h.Record(5000 * time.Millisecond) // 1.0 (clamped, not negative)
	if got := q.MeanScore(&h); got < 2.99 || got > 3.01 {
		t.Fatalf("mean score = %v, want 3", got)
	}
}

func TestQoEMeanScoreEmpty(t *testing.T) {
	var h Histogram
	if got := QoEPano.MeanScore(&h); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}
