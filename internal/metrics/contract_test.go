package metrics

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestHistogramConcurrencyContract guards the documented contract:
// Histogram has no internal synchronisation — shared use requires an
// external mutex around EVERY method, reads included (the quantile
// family sorts the sample slice in place). The test exercises exactly
// that usage under -race; unsynchronised sharing is the caller's bug,
// not a mode this type supports. Live hot paths belong on obs.Histogram
// instead.
func TestHistogramConcurrencyContract(t *testing.T) {
	var (
		mu sync.Mutex
		h  Histogram
		wg sync.WaitGroup
	)
	const goroutines, perG = 8, 1000
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				mu.Lock()
				h.Record(time.Duration(g*perG+i) * time.Microsecond)
				if i%97 == 0 {
					// Reads mutate too (lazy in-place sort), so they sit
					// under the same lock.
					h.P95()
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Count = %d, want %d (samples lost under external locking)", got, goroutines*perG)
	}
	n := goroutines * perG
	want := time.Duration(n*(n-1)/2) * time.Microsecond
	if got := h.Sum(); got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
}

// TestHistogramStaysUnsynchronised fails if someone adds a lock or
// atomics to Histogram: that would change the documented contract (and
// silently tax every single-threaded experiment loop). Concurrency-safe
// live metrics belong in internal/obs, not here — if you hit this test
// wanting thread safety, use obs.Histogram or wrap this one in a mutex
// at the call site.
func TestHistogramStaysUnsynchronised(t *testing.T) {
	typ := reflect.TypeOf(Histogram{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		name := f.Type.String()
		switch {
		case name == "sync.Mutex" || name == "sync.RWMutex":
			t.Errorf("field %s is a %s: Histogram is documented non-concurrent; see internal/obs for the live-path type", f.Name, name)
		case len(name) >= 7 && name[:7] == "atomic.":
			t.Errorf("field %s is %s: Histogram is documented non-concurrent; see internal/obs for the live-path type", f.Name, name)
		}
	}
}
