package metrics

import "time"

// QoE maps user-perceived latency to a mean-opinion-score-style rating in
// [1, 5], the currency the CoIC paper argues in ("as user's QoE
// requirements increase over time..."). Each IC task has its own
// tolerance: an AR recognition can take a moment, a VR frame cannot.
//
// The model is a piecewise-linear interpolation between a "great"
// latency (score 5) and an "unusable" latency (score 1); between them
// the score falls linearly. This is the standard shape of latency-MOS
// curves in interactive-system QoE literature, with per-task knees.
type QoE struct {
	// Great is the latency at or below which the experience is perfect.
	Great time.Duration
	// Unusable is the latency at or beyond which the score bottoms out.
	Unusable time.Duration
}

// Score rates one latency sample.
func (q QoE) Score(latency time.Duration) float64 {
	if latency <= q.Great {
		return 5
	}
	if latency >= q.Unusable {
		return 1
	}
	frac := float64(latency-q.Great) / float64(q.Unusable-q.Great)
	return 5 - 4*frac
}

// MeanScore rates a histogram by averaging per-sample scores rather than
// scoring the mean latency, so samples beyond the Unusable clamp are
// charged exactly once each instead of dragging the mean into territory
// the scale cannot express.
func (q QoE) MeanScore(h *Histogram) float64 {
	if h.Count() == 0 {
		return 0
	}
	var sum float64
	for _, s := range h.samples {
		sum += q.Score(s)
	}
	return sum / float64(h.Count())
}

// Task QoE profiles used by the experiments.
var (
	// QoERecognition: AR labels feel instant under ~300ms and are
	// useless past ~3s (the object has left the view).
	QoERecognition = QoE{Great: 300 * time.Millisecond, Unusable: 3 * time.Second}
	// QoERender: loading a 3D scene tolerates seconds, but past ~10s
	// users abandon.
	QoERender = QoE{Great: time.Second, Unusable: 10 * time.Second}
	// QoEPano: a panoramic frame fetch competes with the display loop;
	// great under 50ms, unusable past 500ms.
	QoEPano = QoE{Great: 50 * time.Millisecond, Unusable: 500 * time.Millisecond}
)
