package vision

import (
	"image/color"
	"math"

	"github.com/edge-immersion/coic/internal/tensor"
	"github.com/edge-immersion/coic/internal/xrand"
)

// Class identifies an object category the recognition DNN can label. The
// set matches the AR scenarios in the paper's motivation: road objects for
// safe-driving apps, avatars for Pokemon-Go-style games.
type Class int

// Recognisable object classes.
const (
	ClassStopSign Class = iota
	ClassCar
	ClassAvatar
	ClassTree
	ClassBuilding
	ClassTrafficLight
	ClassPerson
	ClassDog
	NumClasses // count sentinel
)

// ClassNames lists the class labels in Class order.
var ClassNames = []string{
	"stop-sign", "car", "avatar", "tree", "building", "traffic-light", "person", "dog",
}

// String returns the class label.
func (c Class) String() string {
	if c < 0 || int(c) >= len(ClassNames) {
		return "unknown"
	}
	return ClassNames[c]
}

// View describes the circumstances under which an object is observed: the
// knobs that vary between two users looking at the same thing. Two frames
// of the same class under different Views must still produce nearby
// descriptors; that is the redundancy CoIC exploits.
type View struct {
	// Angle rotates the object around its centre, in radians.
	Angle float64
	// Scale multiplies the object's base size (1 = nominal).
	Scale float64
	// OffsetX/OffsetY shift the object centre as a fraction of frame
	// size (0 = centred, ±0.2 = noticeable parallax).
	OffsetX, OffsetY float64
	// Brightness scales all pixel intensities (1 = nominal).
	Brightness float64
	// Noise is the amplitude of per-pixel uniform noise in [0, 255].
	Noise float64
	// Seed drives the noise pattern.
	Seed uint64
}

// CanonicalView is the straight-on reference viewpoint.
func CanonicalView() View {
	return View{Scale: 1, Brightness: 1}
}

// RandomView draws a plausible alternative viewpoint of the same object:
// bounded rotation, scale, parallax, lighting and sensor noise.
func RandomView(rng *xrand.RNG) View {
	return View{
		Angle:      rng.Range(-0.35, 0.35),
		Scale:      rng.Range(0.85, 1.15),
		OffsetX:    rng.Range(-0.08, 0.08),
		OffsetY:    rng.Range(-0.08, 0.08),
		Brightness: rng.Range(0.85, 1.15),
		Noise:      rng.Range(0, 12),
		Seed:       rng.Uint64(),
	}
}

// classPalette returns the background and primary colours for a class.
// Each class lives in a distinct scene context (a crossroads, a park, a
// street canyon...), so backgrounds are strongly separated in colour
// space. This mirrors reality — different objects are encountered in
// different surroundings — and it is what gives the fixed-weight CNN's
// global descriptor its class separation (the A-threshold ablation
// quantifies the margin).
func classPalette(c Class) (bg, fg, accent color.RGBA) {
	palettes := [...][3]color.RGBA{
		ClassStopSign:     {{20, 40, 120, 255}, {210, 30, 30, 255}, {245, 245, 245, 255}},
		ClassCar:          {{205, 125, 35, 255}, {30, 60, 190, 255}, {225, 225, 235, 255}},
		ClassAvatar:       {{30, 145, 60, 255}, {245, 205, 40, 255}, {250, 120, 30, 255}},
		ClassTree:         {{170, 60, 170, 255}, {40, 145, 50, 255}, {100, 70, 40, 255}},
		ClassBuilding:     {{55, 200, 200, 255}, {140, 140, 155, 255}, {60, 80, 120, 255}},
		ClassTrafficLight: {{125, 125, 25, 255}, {40, 40, 45, 255}, {235, 205, 50, 255}},
		ClassPerson:       {{235, 170, 195, 255}, {150, 60, 110, 255}, {250, 225, 190, 255}},
		ClassDog:          {{95, 50, 25, 255}, {205, 170, 120, 255}, {245, 235, 215, 255}},
	}
	p := palettes[c]
	return p[0], p[1], p[2]
}

// RenderObject draws one object of class c as seen under view v into a
// fresh w×h frame. Rendering is pure: identical arguments produce
// identical frames, which is what makes descriptor-keyed caching testable.
func RenderObject(c Class, v View, w, h int) *Frame {
	f := NewFrame(w, h)
	bg, fg, accent := classPalette(c)
	f.Fill(bg)

	cx := float64(w)/2 + v.OffsetX*float64(w)
	cy := float64(h)/2 + v.OffsetY*float64(h)
	r := 0.3 * v.Scale * float64(min(w, h))
	cosA, sinA := math.Cos(v.Angle), math.Sin(v.Angle)

	// inShape tests whether object-local coordinates fall inside the
	// class's shape. Coordinates are normalised so the shape spans
	// [-1, 1].
	inShape := func(u, q float64) (bool, color.RGBA) {
		switch c {
		case ClassStopSign:
			// Octagon with a light horizontal bar.
			if math.Abs(u)+math.Abs(q) < 1.35 && math.Abs(u) < 1 && math.Abs(q) < 1 {
				if math.Abs(q) < 0.18 {
					return true, accent
				}
				return true, fg
			}
		case ClassCar:
			// Wide body with accent roof.
			if math.Abs(u) < 1 && math.Abs(q) < 0.45 {
				return true, fg
			}
			if math.Abs(u) < 0.55 && q > -0.85 && q < -0.45 {
				return true, accent
			}
		case ClassAvatar:
			// Round head over triangular torso.
			if u*u+(q+0.45)*(q+0.45) < 0.3*0.3 {
				return true, accent
			}
			if q > -0.2 && q < 1 && math.Abs(u) < (q+0.2)*0.7 {
				return true, fg
			}
		case ClassTree:
			// Canopy disc over a trunk.
			if u*u+(q+0.25)*(q+0.25) < 0.65*0.65 {
				return true, fg
			}
			if math.Abs(u) < 0.12 && q >= 0.2 && q < 1 {
				return true, accent
			}
		case ClassBuilding:
			// Tall slab with a window grid.
			if math.Abs(u) < 0.6 && math.Abs(q) < 1 {
				wu := int(math.Floor((u + 0.6) / 0.3))
				wq := int(math.Floor((q + 1) / 0.33))
				if (wu+wq)%2 == 0 {
					return true, accent
				}
				return true, fg
			}
		case ClassTrafficLight:
			// Narrow housing with three stacked lamps.
			if math.Abs(u) < 0.3 && math.Abs(q) < 1 {
				for i, lamp := range []color.RGBA{{220, 50, 50, 255}, {230, 200, 50, 255}, {60, 200, 80, 255}} {
					ly := -0.6 + float64(i)*0.6
					if u*u+(q-ly)*(q-ly) < 0.2*0.2 {
						return true, lamp
					}
				}
				return true, fg
			}
		case ClassPerson:
			// Head over rectangular body.
			if u*u+(q+0.6)*(q+0.6) < 0.25*0.25 {
				return true, accent
			}
			if math.Abs(u) < 0.35 && q > -0.35 && q < 1 {
				return true, fg
			}
		case ClassDog:
			// Horizontal body, head blob, legs.
			if math.Abs(u) < 0.8 && math.Abs(q) < 0.35 {
				return true, fg
			}
			if (u-0.8)*(u-0.8)+(q+0.25)*(q+0.25) < 0.3*0.3 {
				return true, accent
			}
			if q >= 0.35 && q < 0.85 && (math.Abs(u-0.55) < 0.1 || math.Abs(u+0.55) < 0.1) {
				return true, fg
			}
		}
		return false, color.RGBA{}
	}

	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// Frame coords -> object-local rotated coords.
			dx, dy := float64(x)-cx, float64(y)-cy
			u := (dx*cosA + dy*sinA) / r
			q := (-dx*sinA + dy*cosA) / r
			if ok, col := inShape(u, q); ok {
				f.Set(x, y, col)
			}
		}
	}

	applyBrightness(f, v.Brightness)
	applyNoise(f, v.Noise, v.Seed)
	return f
}

func applyBrightness(f *Frame, b float64) {
	if b == 1 || b <= 0 {
		return
	}
	for i, p := range f.Pix {
		if i%4 == 3 {
			continue // alpha
		}
		v := float64(p) * b
		if v > 255 {
			v = 255
		}
		f.Pix[i] = uint8(v)
	}
}

func applyNoise(f *Frame, amp float64, seed uint64) {
	if amp <= 0 {
		return
	}
	rng := xrand.New(seed)
	for i := range f.Pix {
		if i%4 == 3 {
			continue
		}
		v := float64(f.Pix[i]) + rng.Range(-amp, amp)
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		f.Pix[i] = uint8(v)
	}
}

// ToTensor converts a frame to a CHW float32 tensor scaled to [0, 1],
// resized to side×side — the DNN's expected input.
func ToTensor(f *Frame, side int) *tensor.Tensor {
	r := f
	if f.W != side || f.H != side {
		r = f.Resize(side, side)
	}
	t := tensor.New(3, side, side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			o := (y*side + x) * 4
			t.Data[0*side*side+y*side+x] = float32(r.Pix[o]) / 255
			t.Data[1*side*side+y*side+x] = float32(r.Pix[o+1]) / 255
			t.Data[2*side*side+y*side+x] = float32(r.Pix[o+2]) / 255
		}
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
