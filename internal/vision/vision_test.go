package vision

import (
	"image/color"
	"testing"

	"github.com/edge-immersion/coic/internal/xrand"
)

func TestFrameGeometry(t *testing.T) {
	f := NewFrame(8, 4)
	if f.SizeBytes() != 8*4*4 {
		t.Fatalf("SizeBytes = %d", f.SizeBytes())
	}
	c := f.At(0, 0)
	if c.A != 0xFF || c.R != 0 {
		t.Fatalf("fresh frame not opaque black: %+v", c)
	}
}

func TestFrameSetAtRoundTrip(t *testing.T) {
	f := NewFrame(4, 4)
	want := color.RGBA{R: 10, G: 20, B: 30, A: 255}
	f.Set(2, 3, want)
	if got := f.At(2, 3); got != want {
		t.Fatalf("At = %+v, want %+v", got, want)
	}
}

func TestFrameOutOfBoundsSafe(t *testing.T) {
	f := NewFrame(2, 2)
	f.Set(-1, 0, color.RGBA{R: 9})
	f.Set(0, 5, color.RGBA{R: 9})
	if got := f.At(-3, 7); got != (color.RGBA{A: 0xFF}) {
		t.Fatalf("OOB At = %+v", got)
	}
}

func TestNewFramePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size frame did not panic")
		}
	}()
	NewFrame(0, 5)
}

func TestCloneIndependent(t *testing.T) {
	f := NewFrame(2, 2)
	g := f.Clone()
	g.Set(0, 0, color.RGBA{R: 200, A: 255})
	if f.At(0, 0).R != 0 {
		t.Fatal("Clone shares pixels")
	}
}

func TestFromBytesValidates(t *testing.T) {
	f := NewFrame(3, 3)
	g, err := FromBytes(3, 3, f.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if g.W != 3 || g.H != 3 {
		t.Fatal("bad reconstruction")
	}
	if _, err := FromBytes(3, 3, make([]byte, 5)); err == nil {
		t.Fatal("bad length accepted")
	}
}

func TestResizePreservesSolidColor(t *testing.T) {
	f := NewFrame(16, 16)
	f.Fill(color.RGBA{R: 50, G: 100, B: 150, A: 255})
	r := f.Resize(4, 4)
	if r.W != 4 || r.H != 4 {
		t.Fatalf("resize produced %dx%d", r.W, r.H)
	}
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if got := r.At(x, y); got.R != 50 || got.G != 100 || got.B != 150 {
				t.Fatalf("solid color broken at (%d,%d): %+v", x, y, got)
			}
		}
	}
}

func TestGrayLuma(t *testing.T) {
	f := NewFrame(1, 1)
	f.Set(0, 0, color.RGBA{R: 255, G: 255, B: 255, A: 255})
	if g := f.Gray(); g[0] != 255 {
		t.Fatalf("white luma = %d", g[0])
	}
	f.Set(0, 0, color.RGBA{A: 255})
	if g := f.Gray(); g[0] != 0 {
		t.Fatalf("black luma = %d", g[0])
	}
}

func TestRenderObjectDeterministic(t *testing.T) {
	v := RandomView(xrand.New(1))
	a := RenderObject(ClassStopSign, v, 64, 64)
	b := RenderObject(ClassStopSign, v, 64, 64)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("rendering is not deterministic")
		}
	}
}

func TestRenderObjectClassesDiffer(t *testing.T) {
	v := CanonicalView()
	for a := Class(0); a < NumClasses; a++ {
		for b := a + 1; b < NumClasses; b++ {
			fa := RenderObject(a, v, 32, 32)
			fb := RenderObject(b, v, 32, 32)
			diff := 0
			for i := range fa.Pix {
				if fa.Pix[i] != fb.Pix[i] {
					diff++
				}
			}
			if diff < 32 {
				t.Fatalf("classes %v and %v render nearly identically (%d bytes differ)", a, b, diff)
			}
		}
	}
}

func TestRenderObjectViewChangesPixelsNotEverything(t *testing.T) {
	base := RenderObject(ClassCar, CanonicalView(), 64, 64)
	rot := RenderObject(ClassCar, View{Angle: 0.3, Scale: 1, Brightness: 1}, 64, 64)
	same, diff := 0, 0
	for i := range base.Pix {
		if base.Pix[i] == rot.Pix[i] {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("rotation had no effect")
	}
	if same == 0 {
		t.Fatal("rotation changed every byte — object signature lost")
	}
}

func TestBrightnessClamped(t *testing.T) {
	v := CanonicalView()
	v.Brightness = 10
	f := RenderObject(ClassTree, v, 16, 16)
	for i, p := range f.Pix {
		if i%4 != 3 && p > 255 {
			t.Fatal("impossible: uint8 overflow")
		}
	}
	_ = f
}

func TestNoiseBoundedAndSeeded(t *testing.T) {
	v := CanonicalView()
	v.Noise = 10
	v.Seed = 42
	a := RenderObject(ClassDog, v, 32, 32)
	b := RenderObject(ClassDog, v, 32, 32)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same seed produced different noise")
		}
	}
	v.Seed = 43
	c := RenderObject(ClassDog, v, 32, 32)
	diff := 0
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical noise")
	}
}

func TestToTensorRangeAndShape(t *testing.T) {
	f := RenderObject(ClassAvatar, CanonicalView(), 64, 64)
	tt := ToTensor(f, 32)
	s := tt.Shape()
	if s[0] != 3 || s[1] != 32 || s[2] != 32 {
		t.Fatalf("tensor shape = %v", s)
	}
	for _, v := range tt.Data {
		if v < 0 || v > 1 {
			t.Fatalf("tensor value %v out of [0,1]", v)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassStopSign.String() != "stop-sign" {
		t.Fatalf("String = %q", ClassStopSign.String())
	}
	if Class(99).String() != "unknown" {
		t.Fatal("unknown class must stringify to unknown")
	}
}

func TestRandomViewBounded(t *testing.T) {
	rng := xrand.New(5)
	for i := 0; i < 100; i++ {
		v := RandomView(rng)
		if v.Scale < 0.85 || v.Scale > 1.15 || v.Brightness < 0.85 || v.Brightness > 1.15 {
			t.Fatalf("view out of envelope: %+v", v)
		}
	}
}
