// Package vision generates the synthetic camera input for the CoIC
// reproduction. The paper's motivating example — "two safe-driving
// applications are likely to recognize the same stop sign from different
// angles at the same crossroads" — becomes: render the same object class
// under different viewpoints and verify the DNN descriptors land within
// the cache's similarity threshold, while different classes land outside
// it. Frames carry real bytes, so wire transfer sizes are honest.
package vision

import (
	"fmt"
	"image"
	"image/color"
)

// Frame is an RGBA image with a flat pixel buffer (4 bytes per pixel,
// row-major). It mirrors image.RGBA but keeps this package free to encode
// deterministically and to convert to DNN tensors without interface hops.
type Frame struct {
	W, H int
	Pix  []uint8 // len = W*H*4
}

// NewFrame allocates a black, fully opaque frame.
func NewFrame(w, h int) *Frame {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("vision: invalid frame size %dx%d", w, h))
	}
	f := &Frame{W: w, H: h, Pix: make([]uint8, w*h*4)}
	for i := 3; i < len(f.Pix); i += 4 {
		f.Pix[i] = 0xFF
	}
	return f
}

// Set writes a pixel; out-of-bounds writes are ignored so shape drawing
// code can clip for free.
func (f *Frame) Set(x, y int, c color.RGBA) {
	if x < 0 || x >= f.W || y < 0 || y >= f.H {
		return
	}
	o := (y*f.W + x) * 4
	f.Pix[o], f.Pix[o+1], f.Pix[o+2], f.Pix[o+3] = c.R, c.G, c.B, c.A
}

// At reads a pixel; out-of-bounds reads return opaque black.
func (f *Frame) At(x, y int) color.RGBA {
	if x < 0 || x >= f.W || y < 0 || y >= f.H {
		return color.RGBA{A: 0xFF}
	}
	o := (y*f.W + x) * 4
	return color.RGBA{R: f.Pix[o], G: f.Pix[o+1], B: f.Pix[o+2], A: f.Pix[o+3]}
}

// Clone returns a deep copy.
func (f *Frame) Clone() *Frame {
	c := &Frame{W: f.W, H: f.H, Pix: make([]uint8, len(f.Pix))}
	copy(c.Pix, f.Pix)
	return c
}

// Fill paints the whole frame with c.
func (f *Frame) Fill(c color.RGBA) {
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			f.Set(x, y, c)
		}
	}
}

// Bytes returns the raw RGBA buffer. This is what the CoIC client uploads
// for a recognition request (camera frames are shipped uncompressed in the
// reproduction so payload size is exactly W·H·4 and experiments can dial
// request size by resolution).
func (f *Frame) Bytes() []byte { return f.Pix }

// SizeBytes reports the upload payload size.
func (f *Frame) SizeBytes() int { return len(f.Pix) }

// ToImage converts to a stdlib image for debugging or PNG dumps.
func (f *Frame) ToImage() *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, f.W, f.H))
	copy(img.Pix, f.Pix)
	return img
}

// FromBytes reconstructs a frame from a raw RGBA buffer.
func FromBytes(w, h int, pix []byte) (*Frame, error) {
	if len(pix) != w*h*4 {
		return nil, fmt.Errorf("vision: %d bytes cannot be a %dx%d RGBA frame", len(pix), w, h)
	}
	f := &Frame{W: w, H: h, Pix: make([]uint8, len(pix))}
	copy(f.Pix, pix)
	return f, nil
}

// Resize returns a nearest-neighbour rescale. Quality is irrelevant here —
// it feeds a feature extractor, and nearest keeps it deterministic and
// dependency-free.
func (f *Frame) Resize(w, h int) *Frame {
	out := NewFrame(w, h)
	for y := 0; y < h; y++ {
		sy := y * f.H / h
		for x := 0; x < w; x++ {
			sx := x * f.W / w
			out.Set(x, y, f.At(sx, sy))
		}
	}
	return out
}

// Gray returns the frame's luma plane (BT.601 weights, one byte per
// pixel), used by the on-device tracker.
func (f *Frame) Gray() []uint8 {
	out := make([]uint8, f.W*f.H)
	for i := 0; i < f.W*f.H; i++ {
		r, g, b := int(f.Pix[i*4]), int(f.Pix[i*4+1]), int(f.Pix[i*4+2])
		out[i] = uint8((299*r + 587*g + 114*b) / 1000)
	}
	return out
}
