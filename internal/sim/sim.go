// Package sim is a deterministic single-threaded discrete-event engine.
// CoIC experiments (many clients sharing links, edges and caches) are
// expressed as chains of events on this engine, so a parameter sweep that
// would take minutes of wall-clock time on a real testbed completes in
// milliseconds and produces the same result on every run.
//
// Events fire in (time, sequence) order: two events scheduled for the same
// instant fire in the order they were scheduled, which is what makes runs
// reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"time"

	"github.com/edge-immersion/coic/internal/clock"
)

// event is a scheduled callback.
type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler driving a virtual clock. It is not
// safe for concurrent use: all events run on the goroutine that calls Run,
// which is the point — determinism comes from the single timeline.
type Engine struct {
	clock   *clock.Virtual
	queue   eventQueue
	seq     uint64
	running bool
	stopped bool
	fired   uint64
}

// New returns an Engine whose virtual clock starts at start.
func New(start time.Time) *Engine {
	return &Engine{clock: clock.NewVirtual(start)}
}

// Clock exposes the engine's virtual clock so components built against
// clock.Clock can share the simulation timeline.
func (e *Engine) Clock() *clock.Virtual { return e.clock }

// Now reports current simulation time.
func (e *Engine) Now() time.Time { return e.clock.Now() }

// Schedule enqueues fn to run at instant at. Scheduling in the past is a
// programming error and panics: allowing it would silently reorder the
// timeline and destroy reproducibility.
func (e *Engine) Schedule(at time.Time, fn func()) {
	if fn == nil {
		panic("sim: Schedule called with nil fn")
	}
	if at.Before(e.clock.Now()) {
		panic(fmt.Sprintf("sim: Schedule at %v is before now %v", at, e.clock.Now()))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// ScheduleAfter enqueues fn to run d after the current simulation time.
// Negative delays are clamped to zero.
func (e *Engine) ScheduleAfter(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.clock.Now().Add(d), fn)
}

// Run processes events in timestamp order until the queue is empty or Stop
// is called from inside an event. It returns the number of events fired.
func (e *Engine) Run() uint64 {
	return e.RunUntil(time.Time{})
}

// RunUntil processes events in timestamp order until the queue empties,
// Stop is called, or the next event would fire after deadline. A zero
// deadline means "no deadline". It returns the number of events fired.
func (e *Engine) RunUntil(deadline time.Time) uint64 {
	if e.running {
		panic("sim: Run re-entered from inside an event")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	var fired uint64
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if !deadline.IsZero() && next.at.After(deadline) {
			break
		}
		heap.Pop(&e.queue)
		e.clock.AdvanceTo(next.at)
		next.fn()
		fired++
	}
	e.fired += fired
	return fired
}

// Stop halts the run loop after the currently executing event returns.
// Pending events stay queued; a subsequent Run resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired reports the total number of events executed across all runs.
func (e *Engine) Fired() uint64 { return e.fired }
