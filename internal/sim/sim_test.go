package sim

import (
	"testing"
	"time"
)

var epoch = time.Date(2018, 8, 20, 0, 0, 0, 0, time.UTC)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New(epoch)
	var order []int
	e.Schedule(epoch.Add(3*time.Second), func() { order = append(order, 3) })
	e.Schedule(epoch.Add(1*time.Second), func() { order = append(order, 1) })
	e.Schedule(epoch.Add(2*time.Second), func() { order = append(order, 2) })
	if n := e.Run(); n != 3 {
		t.Fatalf("Run fired %d events, want 3", n)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v, want [1 2 3]", order)
		}
	}
}

func TestSameInstantFiresInScheduleOrder(t *testing.T) {
	e := New(epoch)
	at := epoch.Add(time.Second)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(at, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestClockTracksEventTime(t *testing.T) {
	e := New(epoch)
	var seen time.Time
	e.Schedule(epoch.Add(42*time.Millisecond), func() { seen = e.Now() })
	e.Run()
	if want := epoch.Add(42 * time.Millisecond); !seen.Equal(want) {
		t.Fatalf("event observed Now()=%v, want %v", seen, want)
	}
}

func TestEventsCanScheduleMoreEvents(t *testing.T) {
	e := New(epoch)
	var hops int
	var hop func()
	hop = func() {
		hops++
		if hops < 5 {
			e.ScheduleAfter(time.Second, hop)
		}
	}
	e.ScheduleAfter(0, hop)
	e.Run()
	if hops != 5 {
		t.Fatalf("hops = %d, want 5", hops)
	}
	if want := epoch.Add(4 * time.Second); !e.Now().Equal(want) {
		t.Fatalf("final time = %v, want %v", e.Now(), want)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := New(epoch)
	var fired []int
	e.Schedule(epoch.Add(1*time.Second), func() { fired = append(fired, 1) })
	e.Schedule(epoch.Add(10*time.Second), func() { fired = append(fired, 2) })
	e.RunUntil(epoch.Add(5 * time.Second))
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if len(fired) != 2 {
		t.Fatalf("resume did not fire remaining event: %v", fired)
	}
}

func TestStopHaltsLoop(t *testing.T) {
	e := New(epoch)
	var count int
	for i := 1; i <= 10; i++ {
		e.Schedule(epoch.Add(time.Duration(i)*time.Second), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Stop ignored)", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New(epoch)
	e.Schedule(epoch.Add(time.Second), func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(epoch, func() {})
	})
	e.Run()
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil fn did not panic")
		}
	}()
	New(epoch).Schedule(epoch, nil)
}

func TestDeterministicInterleaving(t *testing.T) {
	// Two runs with identical schedules must produce identical traces.
	run := func() []int {
		e := New(epoch)
		var trace []int
		for i := 0; i < 100; i++ {
			i := i
			// Deliberately colliding timestamps.
			e.Schedule(epoch.Add(time.Duration(i%7)*time.Millisecond), func() {
				trace = append(trace, i)
			})
		}
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestFiredAccumulates(t *testing.T) {
	e := New(epoch)
	for i := 0; i < 4; i++ {
		e.ScheduleAfter(time.Duration(i)*time.Millisecond, func() {})
	}
	e.RunUntil(epoch.Add(1 * time.Millisecond))
	e.Run()
	if e.Fired() != 4 {
		t.Fatalf("Fired = %d, want 4", e.Fired())
	}
}
