// Package xrand is a small deterministic random number generator used for
// DNN weight initialisation, synthetic scene generation and workload
// sampling. It is a splitmix64/xorshift construction implemented here so
// that results are bit-identical across Go releases and platforms — the
// reproduction harness depends on every run regenerating the same figures.
package xrand

import "math"

// RNG is a deterministic pseudo-random generator. The zero value is valid
// but fixed; use New to seed. RNG is not safe for concurrent use — fork
// independent streams with Fork instead of sharing one.
type RNG struct {
	state uint64
	// spare holds a cached Box-Muller variate.
	spare    float64
	hasSpare bool
}

// New returns an RNG seeded with seed. Two RNGs with the same seed produce
// identical streams.
func New(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Warm up so that small seeds (0, 1, 2...) diverge immediately.
	r.Uint64()
	r.Uint64()
	return r
}

// Fork derives an independent deterministic stream from r and a label.
// Forking with the same label always yields the same stream, so per-layer
// or per-user sub-streams do not depend on call order.
func (r *RNG) Fork(label string) *RNG {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return New(splitmix(r.state ^ h))
}

// splitmix is the SplitMix64 output function.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state = splitmix(r.state)
	return r.state
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1). Scale by
// 1/lambda for other rates; trace generation uses this for Poisson
// arrivals.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
