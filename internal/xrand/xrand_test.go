package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	a, b := New(0), New(1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestForkIndependentOfCallOrder(t *testing.T) {
	mk := func(order []string) map[string]uint64 {
		r := New(7)
		out := map[string]uint64{}
		for _, l := range order {
			out[l] = r.Fork(l).Uint64()
		}
		return out
	}
	a := mk([]string{"conv1", "conv2", "fc"})
	b := mk([]string{"fc", "conv1", "conv2"})
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("fork %q depends on call order", k)
		}
	}
}

func TestForkLabelsDistinct(t *testing.T) {
	r := New(7)
	if r.Fork("a").Uint64() == r.Fork("b").Uint64() {
		t.Fatal("different labels produced identical streams")
	}
}

func TestFloat64Bounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := New(11)
	const n, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[int(r.Float64()*buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d count %d deviates >10%% from %v", b, c, want)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(23)
	s := []int{1, 2, 3, 4, 5}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 15 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestRange(t *testing.T) {
	r := New(29)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}
