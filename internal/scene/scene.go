// Package scene implements edge-hosted shared-scene rooms: named,
// tenant-scoped sessions whose members mirror one versioned per-key
// document. The document is CRDT-lite — per-key last-writer-wins ordered
// by a monotonic sequence number the room assigns at publish time — so
// applying the same event twice, or applying events out of order, always
// converges every mirror to the same state. The package is transport-free
// (internal/core adapts it to the wire protocol): members are push
// callbacks, and all methods are safe for concurrent use.
package scene

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrMemberQuota is wrapped by Join when the tenant's scene-member cap
// is exhausted, so the transport layer can answer with the quota error
// code rather than a generic rejection.
var ErrMemberQuota = errors.New("scene member quota exhausted")

// Entry is one key of a scene document: the value, and the sequence
// number of the write that set it.
type Entry struct {
	Key   string
	Value []byte
	Seq   uint64
}

// Event is one applied write, fanned out to every member of the room
// (including the publisher). Version is the document version after the
// write; Trace is the publishing request's trace ID, carried through so
// a push can be correlated with the publish that caused it.
type Event struct {
	Scene   string
	Key     string
	Value   []byte
	Seq     uint64
	Version uint64
	Trace   uint64
}

// Doc is the LWW-per-key scene document. The zero value is empty and
// ready to use. Publish is the authoritative path (the edge's copy);
// Apply is the mirror path (a member replaying pushed events or a
// snapshot, in any order, any number of times).
type Doc struct {
	mu      sync.Mutex
	entries map[string]Entry
	version uint64
}

// Publish assigns the next sequence number to a write, applies it, and
// returns the resulting event fields. Only the room's authoritative copy
// publishes; mirrors use Apply.
func (d *Doc) Publish(key string, value []byte) (seq, version uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.version++
	if d.entries == nil {
		d.entries = make(map[string]Entry)
	}
	d.entries[key] = Entry{Key: key, Value: value, Seq: d.version}
	return d.version, d.version
}

// Apply merges one write into a mirror if it is newer than what the
// mirror holds for that key, reporting whether the document changed.
// Replays (same seq) and reorders (older seq) are no-ops, which is what
// makes pushed events safe to deliver at-least-once and in any order.
func (d *Doc) Apply(key string, value []byte, seq uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cur, ok := d.entries[key]; ok && cur.Seq >= seq {
		return false
	}
	if d.entries == nil {
		d.entries = make(map[string]Entry)
	}
	d.entries[key] = Entry{Key: key, Value: value, Seq: seq}
	if seq > d.version {
		d.version = seq
	}
	return true
}

// Snapshot returns every entry (sorted by key, values copied) and the
// document version, atomically.
func (d *Doc) Snapshot() ([]Entry, uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Entry, 0, len(d.entries))
	for _, e := range d.entries {
		e.Value = append([]byte(nil), e.Value...)
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, d.version
}

// Version reports the highest sequence number the document has seen.
func (d *Doc) Version() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.version
}

// VersionVector returns the per-key sequence map. Two mirrors hold the
// same document exactly when their version vectors are equal — the
// convergence check the tests and the bench harness run at quiesce.
func (d *Doc) VersionVector() map[string]uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	vv := make(map[string]uint64, len(d.entries))
	for k, e := range d.entries {
		vv[k] = e.Seq
	}
	return vv
}

// Pusher delivers one event toward a member. It must not block: the
// registry calls it from the publisher's goroutine while holding room
// state. Returning false means the member is gone (its connection writer
// closed) and delivery was dropped.
type Pusher func(Event) bool

// member is one joined connection.
type member struct {
	id   uint64
	push Pusher
}

// room is one live scene: its authoritative document plus members.
type room struct {
	key     string // tenant-scoped registry key
	name    string // wire-visible scene name
	tenant  string
	doc     Doc
	members map[uint64]*member
}

// Registry owns every live room on an edge, keyed by (tenant, scene
// name) so one tenant's "lobby" never collides with another's. Rooms are
// created on first join and garbage-collected when the last member
// leaves; an idle registry holds nothing.
type Registry struct {
	mu        sync.Mutex
	rooms     map[string]*room
	byConn    map[uint64]map[string]*room // connID -> rooms joined
	members   int
	publishes uint64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		rooms:  make(map[string]*room),
		byConn: make(map[uint64]map[string]*room),
	}
}

func roomKey(tenant, name string) string { return tenant + "\x00" + name }

// Join adds a connection to a scene, creating the room on first join,
// and returns the document snapshot the member seeds its mirror from.
// The snapshot and the membership are taken under one lock, so every
// write not in the snapshot reaches the member as an event. maxMembers,
// when positive, caps the tenant's total joined members across all of
// its rooms (the tenancy quota); 0 means unlimited. Joining a scene the
// connection is already in just re-snapshots (idempotent).
func (r *Registry) Join(tenant, name string, connID uint64, maxMembers int, push Pusher) ([]Entry, uint64, error) {
	if name == "" {
		return nil, 0, fmt.Errorf("empty scene name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := roomKey(tenant, name)
	rm := r.rooms[key]
	if rm == nil {
		rm = &room{key: key, name: name, tenant: tenant, members: make(map[uint64]*member)}
	}
	if _, already := rm.members[connID]; !already {
		if maxMembers > 0 && r.tenantMembersLocked(tenant) >= maxMembers {
			return nil, 0, fmt.Errorf("tenant %q: %w (%d members)", tenant, ErrMemberQuota, maxMembers)
		}
		rm.members[connID] = &member{id: connID, push: push}
		r.rooms[key] = rm
		joined := r.byConn[connID]
		if joined == nil {
			joined = make(map[string]*room)
			r.byConn[connID] = joined
		}
		joined[key] = rm
		r.members++
	}
	entries, version := rm.doc.Snapshot()
	return entries, version, nil
}

// Leave removes a connection from one scene, garbage-collecting the room
// when it was the last member. Leaving a scene the connection is not in
// is a no-op (idempotent, like the rest of the event plane).
func (r *Registry) Leave(tenant, name string, connID uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.leaveLocked(roomKey(tenant, name), connID)
}

// Disconnect removes a connection from every scene it joined — the
// membership half of connection teardown.
func (r *Registry) Disconnect(connID uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for key := range r.byConn[connID] {
		r.leaveLocked(key, connID)
	}
}

func (r *Registry) leaveLocked(key string, connID uint64) {
	rm := r.rooms[key]
	if rm == nil {
		return
	}
	if _, ok := rm.members[connID]; !ok {
		return
	}
	delete(rm.members, connID)
	r.members--
	if joined := r.byConn[connID]; joined != nil {
		delete(joined, key)
		if len(joined) == 0 {
			delete(r.byConn, connID)
		}
	}
	if len(rm.members) == 0 {
		delete(r.rooms, key) // scene GC: last member out turns the lights off
	}
}

// Publish applies one write to a scene's authoritative document and fans
// the resulting event out to every member, returning the assigned
// sequence number and document version. The publisher must have joined
// the scene (membership is what scopes writes to the tenant's room).
// fanout reports how many members the event was handed to.
func (r *Registry) Publish(tenant, name string, connID uint64, pubKey string, value []byte, trace uint64) (seq, version uint64, fanout int, err error) {
	r.mu.Lock()
	rm := r.rooms[roomKey(tenant, name)]
	if rm == nil || rm.members[connID] == nil {
		r.mu.Unlock()
		return 0, 0, 0, fmt.Errorf("scene %q: not a member", name)
	}
	seq, version = rm.doc.Publish(pubKey, value)
	ev := Event{Scene: name, Key: pubKey, Value: value, Seq: seq, Version: version, Trace: trace}
	targets := make([]*member, 0, len(rm.members))
	for _, m := range rm.members {
		targets = append(targets, m)
	}
	r.publishes++
	r.mu.Unlock()
	// Pushers are non-blocking enqueues; calling them outside the lock
	// keeps a slow member from serializing the whole room. LWW sequence
	// numbers make the resulting cross-member interleavings safe.
	for _, m := range targets {
		if m.push(ev) {
			fanout++
		}
	}
	return seq, version, fanout, nil
}

func (r *Registry) tenantMembersLocked(tenant string) int {
	n := 0
	for _, rm := range r.rooms {
		if rm.tenant == tenant {
			n += len(rm.members)
		}
	}
	return n
}

// Stats reports live room and member counts plus the publish total, for
// metrics bridges and tests.
func (r *Registry) Stats() (rooms, members int, publishes uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.rooms), r.members, r.publishes
}
