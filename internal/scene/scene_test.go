package scene

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestDocLWWReplayAndReorderSafe(t *testing.T) {
	var authority Doc
	type write struct {
		key   string
		value []byte
		seq   uint64
	}
	var writes []write
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("k%d", i%5)
		val := []byte{byte(i)}
		seq, version := authority.Publish(key, val)
		if seq != version {
			t.Fatalf("publish %d: seq %d != version %d", i, seq, version)
		}
		if seq != uint64(i+1) {
			t.Fatalf("publish %d: seq %d not monotonic", i, seq)
		}
		writes = append(writes, write{key, val, seq})
	}

	// A mirror replaying the log in a deterministic shuffled order, with
	// every write applied twice, must converge to the authority.
	var mirror Doc
	rng := rand.New(rand.NewSource(7))
	shuffled := append([]write(nil), writes...)
	shuffled = append(shuffled, writes...) // at-least-once delivery
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	for _, w := range shuffled {
		mirror.Apply(w.key, w.value, w.seq)
	}
	if !reflect.DeepEqual(mirror.VersionVector(), authority.VersionVector()) {
		t.Fatalf("version vectors diverge:\nmirror    %v\nauthority %v",
			mirror.VersionVector(), authority.VersionVector())
	}
	me, mv := mirror.Snapshot()
	ae, av := authority.Snapshot()
	if mv != av || len(me) != len(ae) {
		t.Fatalf("snapshots diverge: version %d vs %d, %d vs %d entries", mv, av, len(me), len(ae))
	}
	for i := range ae {
		if me[i].Key != ae[i].Key || !bytes.Equal(me[i].Value, ae[i].Value) || me[i].Seq != ae[i].Seq {
			t.Fatalf("entry %d diverges: %+v vs %+v", i, me[i], ae[i])
		}
	}

	// A stale write must not regress a newer one.
	if mirror.Apply(writes[len(writes)-1].key, []byte("old"), 1) {
		t.Fatal("stale seq applied over a newer write")
	}
}

func TestRegistryJoinSnapshotAndFanout(t *testing.T) {
	r := NewRegistry()
	var got []Event
	push := func(ev Event) bool { got = append(got, ev); return true }

	entries, version, err := r.Join("default", "lobby", 1, 0, push)
	if err != nil || len(entries) != 0 || version != 0 {
		t.Fatalf("join: %v %d %v", entries, version, err)
	}
	seq, ver, fanout, err := r.Publish("default", "lobby", 1, "pose", []byte{1}, 0x42)
	if err != nil || seq != 1 || ver != 1 || fanout != 1 {
		t.Fatalf("publish: seq=%d ver=%d fanout=%d err=%v", seq, ver, fanout, err)
	}
	if len(got) != 1 || got[0].Key != "pose" || got[0].Trace != 0x42 {
		t.Fatalf("event: %+v", got)
	}

	// A second member's join snapshot carries the first write.
	entries, version, err = r.Join("default", "lobby", 2, 0, func(Event) bool { return true })
	if err != nil || version != 1 || len(entries) != 1 || entries[0].Key != "pose" {
		t.Fatalf("late join snapshot: %v %d %v", entries, version, err)
	}
	if _, _, fanout, _ := r.Publish("default", "lobby", 2, "pose", []byte{2}, 0); fanout != 2 {
		t.Fatal("fanout should reach both members")
	}
}

func TestRegistryMembershipRules(t *testing.T) {
	r := NewRegistry()
	push := func(Event) bool { return true }

	// Publishing without membership is rejected.
	if _, _, _, err := r.Publish("default", "lobby", 9, "k", nil, 0); err == nil {
		t.Fatal("non-member publish accepted")
	}
	// Empty scene names are rejected.
	if _, _, err := r.Join("default", "", 1, 0, push); err == nil {
		t.Fatal("empty scene name accepted")
	}

	// Scenes are tenant-scoped: same name, different tenants, different docs.
	if _, _, err := r.Join("acme", "lobby", 1, 0, push); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Join("initech", "lobby", 2, 0, push); err != nil {
		t.Fatal(err)
	}
	r.Publish("acme", "lobby", 1, "k", []byte("acme"), 0)
	entries, _, _ := r.Join("initech", "lobby", 3, 0, push)
	if len(entries) != 0 {
		t.Fatal("tenant scoping leaked a document across tenants")
	}

	// The member quota counts across one tenant's rooms only.
	if _, _, err := r.Join("acme", "other", 4, 2, push); err != nil {
		t.Fatalf("second member within cap rejected: %v", err)
	}
	if _, _, err := r.Join("acme", "third", 5, 2, push); err == nil {
		t.Fatal("member over tenant cap accepted")
	}
	// Rejoining an existing membership is idempotent, never double-counted.
	if _, _, err := r.Join("acme", "lobby", 1, 2, push); err != nil {
		t.Fatalf("idempotent rejoin rejected: %v", err)
	}
}

func TestRegistrySceneGC(t *testing.T) {
	r := NewRegistry()
	push := func(Event) bool { return true }
	r.Join("default", "a", 1, 0, push)
	r.Join("default", "a", 2, 0, push)
	r.Join("default", "b", 2, 0, push)

	if rooms, members, _ := r.Stats(); rooms != 2 || members != 3 {
		t.Fatalf("stats: %d rooms %d members", rooms, members)
	}
	r.Leave("default", "a", 1)
	r.Leave("default", "a", 1) // idempotent
	if rooms, members, _ := r.Stats(); rooms != 2 || members != 2 {
		t.Fatalf("after leave: %d rooms %d members", rooms, members)
	}
	// Disconnect sweeps every membership; last member out GCs the rooms.
	r.Disconnect(2)
	if rooms, members, _ := r.Stats(); rooms != 0 || members != 0 {
		t.Fatalf("after disconnect: %d rooms %d members — rooms leaked", rooms, members)
	}
	// The document is gone with the room: a rejoin starts fresh.
	r.Join("default", "a", 3, 0, push)
	r.Publish("default", "a", 3, "k", []byte{1}, 0)
	r.Disconnect(3)
	entries, version, _ := r.Join("default", "a", 4, 0, push)
	if len(entries) != 0 || version != 0 {
		t.Fatal("GC'd room kept its document")
	}
}

// TestConvergence32Members is the deterministic convergence check: a
// 32-member room absorbing interleaved publishes from several writers,
// with each member's mirror fed the fan-out events in a per-member
// deterministic shuffled order (modelling cross-connection reordering).
// At quiesce every surviving member must hold the authority's version
// vector, even after a third of the members left mid-stream.
func TestConvergence32Members(t *testing.T) {
	const members = 32
	r := NewRegistry()
	mirrors := make([]*Doc, members)
	queues := make([][]Event, members)
	for i := 0; i < members; i++ {
		mirrors[i] = &Doc{}
		i := i
		_, _, err := r.Join("default", "room", uint64(i+1), 0, func(ev Event) bool {
			queues[i] = append(queues[i], ev)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(1234))
	leavers := map[int]bool{}
	for i := 0; i < members/3; i++ {
		leavers[rng.Intn(members)] = true
	}
	for step := 0; step < 400; step++ {
		writer := rng.Intn(members)
		if leavers[writer] && step > 200 {
			continue // departed members stop writing
		}
		key := fmt.Sprintf("pose/%d", rng.Intn(40))
		if _, _, _, err := r.Publish("default", "room", uint64(writer+1), key, []byte{byte(step)}, 0); err != nil {
			t.Fatal(err)
		}
		if step == 200 {
			for id := range leavers {
				r.Leave("default", "room", uint64(id+1))
			}
		}
	}

	authorityEntries, _, err := r.Join("default", "room", 999, 0, func(Event) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	authority := map[string]uint64{}
	for _, e := range authorityEntries {
		authority[e.Key] = e.Seq
	}

	for i := 0; i < members; i++ {
		if leavers[i] {
			continue // only surviving members must converge
		}
		q := queues[i]
		rng := rand.New(rand.NewSource(int64(i))) // per-member reorder
		rng.Shuffle(len(q), func(a, b int) { q[a], q[b] = q[b], q[a] })
		for _, ev := range q {
			mirrors[i].Apply(ev.Key, ev.Value, ev.Seq)
		}
		if vv := mirrors[i].VersionVector(); !reflect.DeepEqual(vv, authority) {
			t.Fatalf("member %d diverged: %d keys vs %d", i, len(vv), len(authority))
		}
	}
}
